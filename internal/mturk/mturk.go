// Package mturk simulates the Amazon Mechanical Turk studies the paper
// uses for all quality numbers (Section V):
//
//   - Recall ground truth (V-B): five annotators per story each provide up
//     to 10 candidate facet terms; an annotation is valid when at least
//     two annotators agree on the term. Annotators draw from the story's
//     ground-truth facet set (the generation trace plays the role of the
//     annotators' world knowledge) with imperfect per-term recall and
//     occasional idiosyncratic additions — which the agreement rule
//     filters, exactly as in the paper.
//   - Qualification (V-C): prospective precision judges must classify 18
//     of 20 correct/perturbed hierarchies correctly before participating.
//   - Precision judgments (V-C): each extracted facet term is judged by
//     five qualified annotators on (a) usefulness and (b) correct
//     placement in the hierarchy; the term counts as precise when at
//     least four of five mark it precise.
package mturk

import (
	"fmt"
	"sort"

	"repro/internal/hierarchy"
	"repro/internal/lang"
	"repro/internal/newsgen"
	"repro/internal/ontology"
	"repro/internal/xrand"
)

// Config controls the simulated annotator pool.
type Config struct {
	Seed uint64
	// AnnotatorsPerStory is the paper's 5.
	AnnotatorsPerStory int
	// MaxTermsPerStory is the paper's cap of 10 candidate terms.
	MaxTermsPerStory int
	// TermRecall is the probability an annotator lists any given
	// ground-truth facet of a story. Default 0.6.
	TermRecall float64
	// NoiseTerms is the expected number of idiosyncratic terms an
	// annotator adds per story. Default 1.0.
	NoiseTerms float64
	// MinAgreement is the validation rule; the paper uses 2.
	MinAgreement int
	// JudgeAccuracy is the probability a qualified judge evaluates a
	// precision item correctly. Default 0.92.
	JudgeAccuracy float64
	// PrecisionVotes and PrecisionQuorum: 5 judges, precise at >= 4.
	PrecisionVotes  int
	PrecisionQuorum int
}

func (c *Config) defaults() {
	if c.AnnotatorsPerStory == 0 {
		c.AnnotatorsPerStory = 5
	}
	if c.MaxTermsPerStory == 0 {
		c.MaxTermsPerStory = 10
	}
	if c.TermRecall == 0 {
		c.TermRecall = 0.6
	}
	if c.NoiseTerms == 0 {
		c.NoiseTerms = 1.0
	}
	if c.MinAgreement == 0 {
		c.MinAgreement = 2
	}
	if c.JudgeAccuracy == 0 {
		c.JudgeAccuracy = 0.92
	}
	if c.PrecisionVotes == 0 {
		c.PrecisionVotes = 5
	}
	if c.PrecisionQuorum == 0 {
		c.PrecisionQuorum = 4
	}
}

// Pool is a simulated annotator population bound to a knowledge base.
type Pool struct {
	kb  *ontology.KB
	cfg Config
	rng *xrand.RNG

	// stemToFacet maps stem-normalized facet names to concepts; term
	// matching across the system happens at the stem level ("leader"
	// matches the "Leaders" facet), as annotator vocabulary varies.
	stemToFacet map[string]ontology.ConceptID
	facetIDs    []ontology.ConceptID
	isa         map[string]string

	// facetEntities[f] is the set of entities with facet ancestor f.
	facetEntities map[ontology.ConceptID]map[ontology.ConceptID]bool
}

// NewPool builds the pool.
func NewPool(kb *ontology.KB, cfg Config) *Pool {
	cfg.defaults()
	p := &Pool{
		kb:          kb,
		cfg:         cfg,
		rng:         xrand.New(cfg.Seed).Sub("mturk"),
		stemToFacet: map[string]ontology.ConceptID{},
		isa:         ontology.IsaLexicon(),
	}
	for _, f := range kb.FacetTerms() {
		stem := lang.StemPhrase(f.Name)
		if _, taken := p.stemToFacet[stem]; !taken {
			p.stemToFacet[stem] = f.ID
		}
		p.facetIDs = append(p.facetIDs, f.ID)
	}
	// Common-noun aliases for facet dimensions whose surface form differs
	// from the noun WordNet-style resources return.
	for alias, facet := range facetAliases {
		if c, ok := kb.ByName(facet); ok {
			stem := lang.StemPhrase(alias)
			if _, taken := p.stemToFacet[stem]; !taken {
				p.stemToFacet[stem] = c.ID
			}
		}
	}
	// Demonyms denote their place ("french" → France): annotators accept
	// them as facet terms (the paper's Figure 4 includes "Italian
	// culture"). Place concepts carry the demonym as their first word.
	for _, c := range kb.FacetTerms() {
		if c.Class == ontology.ClassPlace && len(c.Words) > 0 {
			stem := lang.StemPhrase(c.Words[0])
			if _, taken := p.stemToFacet[stem]; !taken {
				p.stemToFacet[stem] = c.ID
			}
		}
	}
	// Entity populations per facet, for the placement-plausibility test.
	p.facetEntities = map[ontology.ConceptID]map[ontology.ConceptID]bool{}
	for _, e := range kb.Entities() {
		for _, a := range kb.FacetAncestors(e.ID) {
			set := p.facetEntities[a]
			if set == nil {
				set = map[ontology.ConceptID]bool{}
				p.facetEntities[a] = set
			}
			set[e.ID] = true
		}
	}
	return p
}

// facetSubsumes reports whether, in the knowledge base, facet parent
// plausibly subsumes facet child: at least 80% of the entities under the
// child also fall under the parent. This captures placements human judges
// accept even across taxonomy dimensions — "Political Leaders" under
// "Government" reads as correct because (essentially) every political
// leader is a government figure.
func (p *Pool) facetSubsumes(parent, child ontology.ConceptID) bool {
	ec := p.facetEntities[child]
	if len(ec) == 0 {
		return false
	}
	ep := p.facetEntities[parent]
	if len(ep) == 0 {
		return false
	}
	both := 0
	for e := range ec {
		if ep[e] {
			both++
		}
	}
	return float64(both) >= 0.8*float64(len(ec))
}

// facetAliases maps common nouns to the facet dimension they denote.
var facetAliases = map[string]string{
	"person":       "People",
	"organization": "Institutes",
	"institution":  "Institutes",
	"company":      "Corporations",
	"corporation":  "Corporations",
	"country":      "Location",
	"region":       "Location",
	"place":        "Location",
	"nation":       "Location",
	"conflict":     "Wars",
	"disaster":     "Natural Disasters",
	"storm":        "Weather",
	"sport":        "Sports",
	"art":          "Arts and Entertainment",
	"leader":       "Leaders",
	"politician":   "Political Leaders",
	"executive":    "Business Leaders",
	"athlete":      "Athletes",
	"school":       "Education",
	"disease":      "Health",
	"church":       "Religion",
	"economy":      "Business",
	"finance":      "Money",
	"trade":        "Trade",
	"agreement":    "Treaties",
	"court":        "Law",
	"activity":     "Event",
	"meeting":      "Summits",
	"vehicle":      "Transportation",
}

// MatchFacet resolves a term (any surface form) to the facet concept it
// denotes, or (None, false). Matching is stem-normalized.
func (p *Pool) MatchFacet(term string) (ontology.ConceptID, bool) {
	id, ok := p.stemToFacet[lang.StemPhrase(lang.NormalizePhrase(term))]
	return id, ok
}

// AnnotateStory returns the raw term lists of the per-story annotators.
// storyKey makes the annotator randomness reproducible per story
// regardless of evaluation order.
func (p *Pool) AnnotateStory(storyKey int, facets []ontology.ConceptID) [][]string {
	out := make([][]string, p.cfg.AnnotatorsPerStory)
	for a := 0; a < p.cfg.AnnotatorsPerStory; a++ {
		rng := p.rng.SubInt("story", storyKey).Sub(fmt.Sprintf("annotator-%d", a))
		var terms []string
		for _, f := range facets {
			if len(terms) >= p.cfg.MaxTermsPerStory {
				break
			}
			if rng.Bool(p.cfg.TermRecall) {
				terms = append(terms, p.kb.Concept(f).Name)
			}
		}
		// Idiosyncratic additions: terms only this annotator thinks of.
		for n := rng.Poisson(p.cfg.NoiseTerms); n > 0 && len(terms) < p.cfg.MaxTermsPerStory; n-- {
			noise := p.facetIDs[rng.Intn(len(p.facetIDs))]
			terms = append(terms, p.kb.Concept(noise).Name)
		}
		out[a] = terms
	}
	return out
}

// ValidateAgreement applies the >= minAgree rule to raw annotations and
// returns the validated terms, sorted.
func ValidateAgreement(annotations [][]string, minAgree int) []string {
	counts := map[string]int{}
	for _, list := range annotations {
		seen := map[string]bool{}
		for _, t := range list {
			if !seen[t] {
				seen[t] = true
				counts[t]++
			}
		}
	}
	var out []string
	for t, c := range counts {
		if c >= minAgree {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// GroundTruth is the validated annotation of a story sample.
type GroundTruth struct {
	// Stories[i] is the validated facet-term list of sample story i.
	Stories [][]string
	// Terms is the union of all validated terms, sorted.
	Terms []string
	// stems indexes Terms by stem form for recall matching.
	stems map[string]bool
}

// Contains reports whether the ground truth contains a term equivalent to
// the given one (stem-normalized matching).
func (g *GroundTruth) Contains(term string) bool {
	return g.stems[lang.StemPhrase(lang.NormalizePhrase(term))]
}

// BuildGroundTruth annotates the given story indices of a dataset and
// aggregates the validated terms, mirroring the paper's protocol (each
// sampled story read by AnnotatorsPerStory annotators, >= 2 agreement).
func (p *Pool) BuildGroundTruth(ds *newsgen.Dataset, storyIdx []int) *GroundTruth {
	g := &GroundTruth{stems: map[string]bool{}}
	all := map[string]bool{}
	for _, i := range storyIdx {
		raw := p.AnnotateStory(i, ds.Traces[i].Facets)
		valid := ValidateAgreement(raw, p.cfg.MinAgreement)
		g.Stories = append(g.Stories, valid)
		for _, t := range valid {
			if !all[t] {
				all[t] = true
				g.Terms = append(g.Terms, t)
				g.stems[lang.StemPhrase(t)] = true
			}
		}
	}
	sort.Strings(g.Terms)
	return g
}

// Recall computes the fraction of ground-truth terms that appear (stem
// matched) in the extracted set.
func (g *GroundTruth) Recall(extracted []string) float64 {
	if len(g.Terms) == 0 {
		return 0
	}
	found := map[string]bool{}
	for _, t := range extracted {
		stem := lang.StemPhrase(lang.NormalizePhrase(t))
		if g.stems[stem] {
			found[stem] = true
		}
	}
	return float64(len(found)) / float64(len(g.stems))
}

// --- Qualification test (Section V-C) ---

// Qualify simulates one prospective judge taking the qualification test:
// 20 hierarchy judgments (half correct, half randomly perturbed subtrees),
// pass at >= 18 correct. The judge's latent accuracy is drawn around the
// pool's JudgeAccuracy; the returned boolean tells whether they passed.
func (p *Pool) Qualify(candidateKey int) bool {
	rng := p.rng.SubInt("qualify", candidateKey)
	accuracy := clamp01(rng.Norm(p.cfg.JudgeAccuracy, 0.05))
	correct := 0
	for q := 0; q < 20; q++ {
		if rng.Bool(accuracy) {
			correct++
		}
	}
	return correct >= 18
}

// QualifiedJudges returns n judge keys that passed the qualification test,
// scanning candidates in order — the paper's filtering of the Mechanical
// Turk crowd.
func (p *Pool) QualifiedJudges(n int) []int {
	var out []int
	for cand := 0; len(out) < n && cand < n*50; cand++ {
		if p.Qualify(cand) {
			out = append(out, cand)
		}
	}
	return out
}

// --- Precision judgments (Section V-C) ---

// Judgment is the verdict on one extracted facet term.
type Judgment struct {
	Term    string
	Votes   int  // judges marking it precise
	Precise bool // Votes >= PrecisionQuorum
	// Truth records the simulation's own ground assessment (useful and
	// correctly placed) — exposed for analysis, not used by callers as the
	// metric (the metric is the judges' verdict, as in the paper).
	Truth bool
}

// JudgePrecision judges every node of the extracted hierarchy with five
// qualified annotators and returns the per-term verdicts plus the overall
// precision (precise terms / all terms).
func (p *Pool) JudgePrecision(forest *hierarchy.Forest) ([]Judgment, float64) {
	judges := p.QualifiedJudges(p.cfg.PrecisionVotes)
	var out []Judgment
	var precise int
	forest.Walk(func(n *hierarchy.Node, _ int) {
		truth := p.useful(n.Term) && p.placedOK(n)
		votes := 0
		for _, j := range judges {
			rng := p.rng.SubInt("judge", j).Sub(n.Term)
			accuracy := clamp01(rng.Norm(p.cfg.JudgeAccuracy, 0.05))
			saysPrecise := truth
			if !rng.Bool(accuracy) {
				saysPrecise = !saysPrecise
			}
			if saysPrecise {
				votes++
			}
		}
		j := Judgment{Term: n.Term, Votes: votes, Precise: votes >= p.cfg.PrecisionQuorum, Truth: truth}
		if j.Precise {
			precise++
		}
		out = append(out, j)
	})
	if len(out) == 0 {
		return nil, 0
	}
	return out, float64(precise) / float64(len(out))
}

// Useful reports whether the term denotes a browsing facet: it matches a
// facet concept (stem level), a facet alias, or a common noun whose
// immediate taxonomic neighborhood matches one. Exposed for the ablation
// experiments, which need a cheap usefulness oracle without a full
// judging round.
func (p *Pool) Useful(term string) bool { return p.useful(term) }

// UsefulRate returns the fraction of terms that are Useful.
func (p *Pool) UsefulRate(terms []string) float64 {
	if len(terms) == 0 {
		return 0
	}
	n := 0
	for _, t := range terms {
		if p.useful(t) {
			n++
		}
	}
	return float64(n) / float64(len(terms))
}

// useful reports whether the term denotes a browsing facet: it matches a
// facet concept (stem level), a facet alias, or a common noun whose
// immediate taxonomic neighborhood matches one.
func (p *Pool) useful(term string) bool {
	norm := lang.NormalizePhrase(term)
	if _, ok := p.MatchFacet(norm); ok {
		return true
	}
	// A recognizable named entity is a legitimate leaf in a faceted
	// interface ("New York" and "Bush Administration" appear among the
	// paper's annotator facet terms), so judges accept it.
	if _, ok := p.kb.ByName(norm); ok {
		return true
	}
	// A common noun one step below a facet-matching noun still reads as a
	// useful facet to annotators ("senator" under political leaders).
	if parent, ok := p.isa[norm]; ok {
		if _, ok := p.MatchFacet(parent); ok {
			return true
		}
	}
	return false
}

// PlacedOK reports whether the node's position in its hierarchy is
// consistent with the knowledge base (see placedOK). Exposed for the
// ground-truth hierarchy scoring in internal/eval, which needs the
// noise-free placement oracle rather than a simulated judging round.
func (p *Pool) PlacedOK(n *hierarchy.Node) bool { return p.placedOK(n) }

// FacetAncestor reports whether, per the knowledge base, the facet
// concept denoted by parent strictly subsumes the one denoted by child —
// direct taxonomy ancestry or entity-population subsumption. Terms that
// do not denote facet concepts never participate. Exposed so
// internal/eval can enumerate the ground-truth ancestor pairs a built
// hierarchy should recover (tree recall).
func (p *Pool) FacetAncestor(parent, child string) bool {
	cID, ok := p.MatchFacet(lang.NormalizePhrase(child))
	if !ok {
		return false
	}
	pID, ok := p.MatchFacet(lang.NormalizePhrase(parent))
	if !ok || pID == cID {
		return false
	}
	return p.kb.IsAncestor(pID, cID) || p.facetSubsumes(pID, cID)
}

// placedOK reports whether the node's position in the extracted hierarchy
// is consistent with the knowledge base: roots are acceptable; a child
// must sit under a term that denotes one of its facet ancestors (or its
// taxonomic ancestor for common nouns).
func (p *Pool) placedOK(n *hierarchy.Node) bool {
	if n.Parent == nil {
		return true
	}
	childNorm := lang.NormalizePhrase(n.Term)
	parentNorm := lang.NormalizePhrase(n.Parent.Term)
	// Facet-concept ancestry, or knowledge-base placement plausibility.
	if cID, ok := p.MatchFacet(childNorm); ok {
		if pID, ok := p.MatchFacet(parentNorm); ok {
			if pID == cID || p.kb.IsAncestor(pID, cID) || p.facetSubsumes(pID, cID) {
				return true
			}
		}
	}
	// Entity child under one of its facet ancestors ("Jacques Chirac"
	// under "Political Leaders"), or a name variant under its own concept.
	if child, ok := p.kb.ByName(childNorm); ok {
		if pID, ok := p.MatchFacet(parentNorm); ok {
			if pID == child.ID || p.kb.IsAncestor(pID, child.ID) {
				return true
			}
		}
		if parent, ok := p.kb.ByName(parentNorm); ok {
			if parent.ID == child.ID || p.kb.IsAncestor(parent.ID, child.ID) {
				return true
			}
		}
	}
	// Common-noun is-a ancestry.
	parentStem := lang.StemPhrase(parentNorm)
	for cur, ok := p.isa[childNorm]; ok && cur != ""; cur, ok = p.isa[cur] {
		if lang.StemPhrase(cur) == parentStem {
			return true
		}
	}
	return false
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
