package ontology

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xrand"
)

// Config controls knowledge-base generation.
type Config struct {
	// Seed drives all random choices (entity names, counts, link wiring).
	Seed uint64
	// Scale multiplies generated entity counts; 1.0 is the default used by
	// the experiments. Values below ~0.2 produce degenerate corpora.
	Scale float64
}

func (c *Config) defaults() {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
}

// Build assembles the ground-truth knowledge base.
func Build(cfg Config) (*KB, error) {
	cfg.defaults()
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("ontology: negative scale %v", cfg.Scale)
	}
	b := &builder{
		kb:  &KB{byName: make(map[string]ConceptID)},
		rng: xrand.New(cfg.Seed),
		cfg: cfg,
	}
	b.addFacetSkeleton()
	b.addGeography()
	b.addPoliticians()
	b.addCompanies()
	b.addSportsWorld()
	b.addCulturalFigures()
	b.addInstitutions()
	b.addEvents()
	b.addMediaAndCrime()
	if err := b.kb.finalize(); err != nil {
		return nil, err
	}
	return b.kb, nil
}

type builder struct {
	kb  *KB
	rng *xrand.RNG
	cfg Config

	// Per-country working state for wiring Related edges.
	countryID   map[string]ConceptID // display name → facet concept
	cityIDs     map[string][]ConceptID
	politicians map[string][]ConceptID
	demonym     map[string]string

	usedNames map[string]bool
}

func (b *builder) n(base int) int {
	n := int(float64(base)*b.cfg.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// facet looks up a facet concept by display name; it panics on a missing
// name because the skeleton is compiled into the binary (a miss is a bug).
func (b *builder) facet(display string) ConceptID {
	c, ok := b.kb.ByName(display)
	if !ok || !c.IsFacet() {
		panic(fmt.Sprintf("ontology: unknown facet %q", display))
	}
	return c.ID
}

func (b *builder) addFacetSkeleton() {
	var add func(spec facetSpec, parent ConceptID, kind Kind)
	add = func(spec facetSpec, parent ConceptID, kind Kind) {
		c := &Concept{
			Display:  spec.display,
			Kind:     kind,
			Variants: facetVariants[spec.display],
			Words:    spec.words,
		}
		if parent != None {
			c.Parents = []ConceptID{parent}
		}
		id := b.kb.add(c)
		for _, child := range spec.children {
			add(child, id, KindFacetTerm)
		}
	}
	for _, root := range facetSkeleton {
		add(root, None, KindFacetRoot)
	}
}

func (b *builder) addGeography() {
	b.countryID = make(map[string]ConceptID)
	b.cityIDs = make(map[string][]ConceptID)
	b.demonym = make(map[string]string)
	b.usedNames = map[string]bool{}
	for _, cs := range countries {
		continent := b.facet(cs.continent)
		country := b.kb.add(&Concept{
			Display:  cs.name,
			Kind:     KindFacetTerm,
			Class:    ClassPlace,
			Parents:  []ConceptID{continent},
			Variants: countryVariants[cs.name],
			Words:    []string{cs.demonym},
		})
		b.countryID[cs.name] = country
		b.demonym[cs.name] = cs.demonym
		for _, city := range cs.cities {
			kind := KindEntity
			if facetCities[city] {
				kind = KindFacetTerm
			}
			cid := b.kb.add(&Concept{
				Display:  city,
				Kind:     kind,
				Class:    ClassPlace,
				Parents:  []ConceptID{country},
				Variants: facetVariants[city],
				Words:    []string{cs.demonym},
			})
			b.cityIDs[cs.name] = append(b.cityIDs[cs.name], cid)
		}
	}
}

// personName draws an unused first+last combination.
func (b *builder) personName(rng *xrand.RNG) (first, last string) {
	for {
		first = xrand.Pick(rng, firstNames)
		last = xrand.Pick(rng, lastNames)
		full := first + " " + last
		if !b.usedNames[full] {
			b.usedNames[full] = true
			return first, last
		}
	}
}

// personVariants builds the standard mention variants for a person.
func personVariants(first, last string) []string {
	return []string{
		last,
		first[:1] + ". " + last,
		last + ", " + first,
	}
}

var politicianRoles = []struct {
	title string
	words []string
}{
	{"President", []string{"presidency", "palace"}},
	{"Prime Minister", []string{"premier", "cabinet"}},
	{"Foreign Minister", []string{"diplomacy", "envoy"}},
	{"Finance Minister", []string{"budget", "treasury"}},
	{"Senator", []string{"senate", "legislation"}},
	{"Governor", []string{"province", "administration"}},
	{"Opposition Leader", []string{"opposition", "coalition"}},
	{"Defense Minister", []string{"defense", "forces"}},
}

func (b *builder) addPoliticians() {
	b.politicians = make(map[string][]ConceptID)
	rng := b.rng.Sub("politicians")
	polLeaders := b.facet("Political Leaders")
	government := b.facet("Government")
	for _, cs := range countries {
		country := b.countryID[cs.name]
		count := b.n(2) + rng.Intn(3)
		for i := 0; i < count; i++ {
			first, last := b.personName(rng)
			role := politicianRoles[rng.Intn(len(politicianRoles))]
			full := first + " " + last
			words := append([]string{cs.demonym}, role.words...)
			variants := personVariants(first, last)
			variants = append(variants, role.title+" "+full)
			id := b.kb.add(&Concept{
				Display:  full,
				Kind:     KindEntity,
				Class:    ClassPerson,
				Parents:  []ConceptID{polLeaders, country, government},
				Variants: variants,
				Words:    words,
			})
			b.politicians[cs.name] = append(b.politicians[cs.name], id)
		}
		// Wire same-country politicians as mutually related.
		ids := b.politicians[cs.name]
		for _, id := range ids {
			for _, other := range ids {
				if other != id {
					b.kb.concepts[id].Related = append(b.kb.concepts[id].Related, other)
				}
			}
		}
	}
}

// companyCountries weights where companies are headquartered.
var companyCountries = []string{
	"United States", "United States", "United States", "United States",
	"Japan", "Germany", "United Kingdom", "France", "China", "South Korea",
	"Switzerland", "Netherlands", "Canada", "India", "Brazil", "Italy",
}

func (b *builder) addCompanies() {
	rng := b.rng.Sub("companies")
	bizLeaders := b.facet("Business Leaders")
	sectors := make([]string, 0, len(orgNameB))
	for sector := range orgNameB {
		sectors = append(sectors, sector)
	}
	sort.Strings(sectors)
	for _, sector := range sectors {
		suffixes := orgNameB[sector]
		sectorID := b.facet(sector)
		count := b.n(18)
		for i := 0; i < count; i++ {
			var name string
			for {
				name = xrand.Pick(rng, orgNameA) + " " + xrand.Pick(rng, suffixes)
				if !b.usedNames[name] {
					b.usedNames[name] = true
					break
				}
			}
			country := companyCountries[rng.Intn(len(companyCountries))]
			countryID := b.countryID[country]
			variants := []string{strings.Fields(name)[0]}
			if rng.Bool(0.5) {
				variants = append(variants, name+" "+xrand.Pick(rng, orgSuffixes))
			}
			company := b.kb.add(&Concept{
				Display:  name,
				Kind:     KindEntity,
				Class:    ClassOrganization,
				Parents:  []ConceptID{sectorID, countryID},
				Variants: variants,
				Words:    []string{"shares", "quarter", "analysts"},
			})
			// Roughly 40% of companies get a named chief executive.
			if rng.Bool(0.4) {
				first, last := b.personName(rng)
				exec := b.kb.add(&Concept{
					Display:  first + " " + last,
					Kind:     KindEntity,
					Class:    ClassPerson,
					Parents:  []ConceptID{bizLeaders, countryID},
					Variants: personVariants(first, last),
					Words:    []string{"chief", "executive", "shareholders"},
				})
				b.kb.concepts[company].Related = append(b.kb.concepts[company].Related, exec)
				b.kb.concepts[exec].Related = append(b.kb.concepts[exec].Related, company)
			}
		}
	}
}

func (b *builder) addSportsWorld() {
	rng := b.rng.Sub("sports")
	athletes := b.facet("Athletes")
	// Team sports: build teams, then athletes attached to teams.
	sports := make([]string, 0, len(teamMascots))
	for sport := range teamMascots {
		sports = append(sports, sport)
	}
	sort.Strings(sports)
	for _, sport := range sports {
		mascots := teamMascots[sport]
		sportID := b.facet(sport)
		usCountry := b.countryID["United States"]
		count := b.n(8)
		var teams []ConceptID
		for i := 0; i < count; i++ {
			var name string
			for {
				name = xrand.Pick(rng, teamCityPool) + " " + xrand.Pick(rng, mascots)
				if !b.usedNames[name] {
					b.usedNames[name] = true
					break
				}
			}
			fields := strings.Fields(name)
			team := b.kb.add(&Concept{
				Display:  name,
				Kind:     KindEntity,
				Class:    ClassOrganization,
				Parents:  []ConceptID{sportID, usCountry},
				Variants: []string{fields[len(fields)-1]},
				Words:    []string{"roster", "season", "coach"},
			})
			teams = append(teams, team)
		}
		perTeam := b.n(2)
		for _, team := range teams {
			for i := 0; i < perTeam; i++ {
				first, last := b.personName(rng)
				country := xrand.Pick(rng, countries)
				player := b.kb.add(&Concept{
					Display:  first + " " + last,
					Kind:     KindEntity,
					Class:    ClassPerson,
					Parents:  []ConceptID{athletes, sportID, b.countryID[country.name]},
					Variants: personVariants(first, last),
					Words:    []string{"contract", "season", "scoring"},
				})
				b.kb.concepts[player].Related = append(b.kb.concepts[player].Related, team)
				b.kb.concepts[team].Related = append(b.kb.concepts[team].Related, player)
			}
		}
	}
	// Individual sports.
	for _, sport := range []string{"Tennis", "Golf", "Boxing", "Cycling", "Swimming", "Cricket"} {
		sportID := b.facet(sport)
		count := b.n(10)
		for i := 0; i < count; i++ {
			first, last := b.personName(rng)
			country := xrand.Pick(rng, countries)
			b.kb.add(&Concept{
				Display:  first + " " + last,
				Kind:     KindEntity,
				Class:    ClassPerson,
				Parents:  []ConceptID{athletes, sportID, b.countryID[country.name]},
				Variants: personVariants(first, last),
				Words:    []string{"ranking", "title", "tour"},
			})
		}
	}
}

// culturalDomains maps a People subfacet to the art-domain facet its
// members also belong to.
var culturalDomains = []struct {
	people string
	domain string
	words  []string
}{
	{"Musicians", "Music", []string{"album", "tour", "chart"}},
	{"Actors", "Film", []string{"role", "premiere", "casting"}},
	{"Writers", "Literature", []string{"novel", "publisher", "memoir"}},
	{"Artists", "Visual Arts", []string{"exhibition", "gallery", "canvas"}},
	{"Scientists", "Science and Technology", []string{"study", "journal", "findings"}},
	{"Journalists", "Television", []string{"broadcast", "column", "coverage"}},
	{"Celebrities", "Fashion", []string{"premiere", "paparazzi", "style"}},
}

func (b *builder) addCulturalFigures() {
	rng := b.rng.Sub("culture")
	for _, dom := range culturalDomains {
		peopleID := b.facet(dom.people)
		domainID := b.facet(dom.domain)
		count := b.n(16)
		for i := 0; i < count; i++ {
			first, last := b.personName(rng)
			country := xrand.Pick(rng, countries)
			person := b.kb.add(&Concept{
				Display:  first + " " + last,
				Kind:     KindEntity,
				Class:    ClassPerson,
				Parents:  []ConceptID{peopleID, domainID, b.countryID[country.name]},
				Variants: personVariants(first, last),
				Words:    dom.words,
			})
			// Creative figures produce named works ("the artist and their
			// album/novel/film"): works are entities of their domain facet,
			// related to their creator — the mention pattern arts stories
			// live on.
			if wordsFor, ok := workTitles[dom.people]; ok && rng.Bool(0.6) {
				title := xrand.Pick(rng, workTitles2) + " " + xrand.Pick(rng, wordsFor)
				if b.usedNames[title] {
					continue
				}
				b.usedNames[title] = true
				work := b.kb.add(&Concept{
					Display: title,
					Kind:    KindEntity,
					Class:   ClassOrganization, // treated as a non-person named entity
					Parents: []ConceptID{domainID},
					Words:   dom.words,
				})
				b.kb.concepts[person].Related = append(b.kb.concepts[person].Related, work)
				b.kb.concepts[work].Related = append(b.kb.concepts[work].Related, person)
			}
		}
	}
}

// workTitles supplies the second word of creative-work titles per creator
// kind; workTitles2 the first.
var workTitles = map[string][]string{
	"Musicians": {"Sessions", "Nocturnes", "Anthems", "Rhythms", "Harmonies", "Overture"},
	"Writers":   {"Letters", "Chronicles", "Testament", "Memoirs", "Fables", "Elegy"},
	"Actors":    {"Crossing", "Horizon", "Reckoning", "Voyage", "Shadows", "Daybreak"},
	"Artists":   {"Triptych", "Studies", "Canvases", "Reflections", "Fragments", "Mosaic"},
}

var workTitles2 = []string{
	"Midnight", "Crimson", "Silent", "Golden", "Broken", "Distant",
	"Winter", "Amber", "Hollow", "Radiant", "Forgotten", "Scarlet",
	"Northern", "Velvet", "Burning", "Quiet",
}

func (b *builder) addInstitutions() {
	rng := b.rng.Sub("institutions")
	universities := b.facet("Universities")
	intl := b.facet("International Organizations")
	agencies := b.facet("Government Agencies")
	museums := b.facet("Museums")

	// Universities in a sample of cities.
	for _, cs := range countries {
		if len(cs.cities) == 0 || !rng.Bool(0.55) {
			continue
		}
		city := cs.cities[rng.Intn(len(cs.cities))]
		pattern := xrand.Pick(rng, universityPatterns)
		name := fmt.Sprintf(pattern, city)
		if b.usedNames[name] {
			continue
		}
		b.usedNames[name] = true
		b.kb.add(&Concept{
			Display: name,
			Kind:    KindEntity,
			Class:   ClassOrganization,
			Parents: []ConceptID{universities, b.countryID[cs.name]},
			Words:   []string{"campus", "faculty", "tuition"},
		})
	}
	for _, o := range intlOrgs {
		b.kb.add(&Concept{
			Display:  o.name,
			Kind:     KindEntity,
			Class:    ClassOrganization,
			Parents:  []ConceptID{intl},
			Variants: o.variants,
			Words:    o.words,
		})
	}
	for _, a := range govAgencies {
		parents := []ConceptID{agencies}
		if id, ok := b.countryID[a.country]; ok {
			parents = append(parents, id)
		}
		b.kb.add(&Concept{
			Display:  a.name,
			Kind:     KindEntity,
			Class:    ClassOrganization,
			Parents:  parents,
			Variants: a.variants,
			Words:    a.words,
		})
	}
	for _, m := range museumNames {
		b.kb.add(&Concept{
			Display: m,
			Kind:    KindEntity,
			Class:   ClassOrganization,
			Parents: []ConceptID{museums},
			Words:   []string{"exhibition", "collection", "visitors"},
		})
	}
}

var hurricaneNames = []string{
	"Adele", "Bruno", "Celia", "Dmitri", "Estelle", "Farid", "Gilda",
	"Horace", "Imelda", "Jasper", "Katia", "Lorenzo",
}

func (b *builder) addEvents() {
	rng := b.rng.Sub("events")
	elections := b.facet("Elections")
	summits := b.facet("Summits")
	wars := b.facet("Wars")
	disasters := b.facet("Natural Disasters")
	sportsEvents := b.facet("Sports Events")
	festivals := b.facet("Festivals")
	ceremonies := b.facet("Ceremonies")
	diplomacy := b.facet("Diplomacy")

	// Elections in a sample of countries.
	for _, cs := range countries {
		if !rng.Bool(0.35) {
			continue
		}
		name := "2005 " + cs.name + " Election"
		id := b.kb.add(&Concept{
			Display:  name,
			Kind:     KindEntity,
			Class:    ClassEvent,
			Parents:  []ConceptID{elections, b.countryID[cs.name]},
			Variants: []string{cs.name + " Election"},
			Words:    []string{"ballot", "turnout", "runoff", cs.demonym},
		})
		for _, pol := range b.politicians[cs.name] {
			b.kb.concepts[id].Related = append(b.kb.concepts[id].Related, pol)
		}
	}

	// Summits: the G8 and a generated set.
	g8 := b.kb.add(&Concept{
		Display:  "2005 G8 Summit",
		Kind:     KindEntity,
		Class:    ClassEvent,
		Parents:  []ConceptID{summits, diplomacy, b.countryID["United Kingdom"]},
		Variants: []string{"G8 Summit", "G8"},
		Words:    []string{"communique", "agenda", "debt", "warming"},
	})
	for _, host := range []string{"France", "Germany", "Japan", "United States", "Russia", "Italy", "Canada"} {
		if len(b.politicians[host]) > 0 {
			b.kb.concepts[g8].Related = append(b.kb.concepts[g8].Related, b.politicians[host][0])
		}
	}
	summitThemes := []struct{ name, w1, w2 string }{
		{"World Trade Summit", "tariffs", "negotiators"},
		{"Climate Change Conference", "emissions", "targets"},
		{"Asia Pacific Economic Forum", "growth", "cooperation"},
		{"World Economic Forum", "davos", "globalization"},
		{"African Development Summit", "aid", "debt"},
		{"Energy Security Conference", "supplies", "pipelines"},
		{"Global Health Summit", "vaccines", "pandemic"},
		{"Digital Economy Forum", "broadband", "innovation"},
	}
	for _, s := range summitThemes {
		host := xrand.Pick(rng, countries)
		b.kb.add(&Concept{
			Display: s.name,
			Kind:    KindEntity,
			Class:   ClassEvent,
			Parents: []ConceptID{summits, b.countryID[host.name]},
			Words:   []string{s.w1, s.w2, "delegates"},
		})
	}

	// Conflicts.
	for _, war := range []struct {
		name    string
		country string
		vars    []string
	}{
		{"War in Iraq", "Iraq", []string{"Iraq War"}},
		{"Conflict in Darfur", "Sudan", []string{"Darfur Conflict"}},
		{"Afghanistan War", "Afghanistan", []string{"War in Afghanistan"}},
		{"Congo Civil War", "Congo", nil},
		{"Insurgency in Yemen", "Yemen", nil},
	} {
		id := b.kb.add(&Concept{
			Display:  war.name,
			Kind:     KindEntity,
			Class:    ClassEvent,
			Parents:  []ConceptID{wars, b.countryID[war.country]},
			Variants: war.vars,
			Words:    []string{"troops", "insurgents", "casualties", "offensive"},
		})
		for _, pol := range b.politicians[war.country] {
			b.kb.concepts[id].Related = append(b.kb.concepts[id].Related, pol)
		}
	}

	// Natural disasters.
	for i, h := range hurricaneNames {
		if i >= b.n(8) {
			break
		}
		place := xrand.Pick(rng, []string{"United States", "Mexico", "Cuba", "Haiti", "Jamaica"})
		b.kb.add(&Concept{
			Display:  "Hurricane " + h,
			Kind:     KindEntity,
			Class:    ClassEvent,
			Parents:  []ConceptID{disasters, b.countryID[place]},
			Variants: []string{h},
			Words:    []string{"landfall", "evacuation", "winds", "damage"},
		})
	}
	for _, d := range []struct{ kind, country, word string }{
		{"Earthquake", "Pakistan", "aftershocks"},
		{"Earthquake", "Japan", "magnitude"},
		{"Earthquake", "Iran", "rubble"},
		{"Floods", "Bangladesh", "monsoon"},
		{"Floods", "China", "levees"},
		{"Drought", "Ethiopia", "famine"},
		{"Tsunami", "Indonesia", "waves"},
		{"Wildfires", "Australia", "blaze"},
	} {
		name := d.country + " " + d.kind
		if b.usedNames[name] {
			continue
		}
		b.usedNames[name] = true
		b.kb.add(&Concept{
			Display: name,
			Kind:    KindEntity,
			Class:   ClassEvent,
			Parents: []ConceptID{disasters, b.countryID[d.country]},
			Words:   []string{d.word, "relief", "survivors"},
		})
	}

	// Sports events.
	for _, s := range []struct{ name, sport string }{
		{"World Cup", "Soccer"},
		{"Summer Olympics", "Olympics"},
		{"Winter Olympics", "Olympics"},
		{"World Series", "Baseball"},
		{"Super Bowl", "Football"},
		{"Champions League Final", "Soccer"},
		{"Wimbledon", "Tennis"},
		{"Tour de France", "Cycling"},
		{"Masters Tournament", "Golf"},
		{"World Athletics Championship", "Olympics"},
	} {
		b.kb.add(&Concept{
			Display: s.name,
			Kind:    KindEntity,
			Class:   ClassEvent,
			Parents: []ConceptID{sportsEvents, b.facet(s.sport)},
			Words:   []string{"final", "spectators", "title"},
		})
	}

	// Festivals and ceremonies.
	for _, f := range []struct {
		name  string
		facet ConceptID
		extra string
	}{
		{"Cannes Film Festival", festivals, "Film"},
		{"Venice Film Festival", festivals, "Film"},
		{"Sundance Film Festival", festivals, "Film"},
		{"Academy Awards", ceremonies, "Film"},
		{"Grammy Awards", ceremonies, "Music"},
		{"Nobel Prize Ceremony", ceremonies, "Science and Technology"},
		{"Edinburgh Arts Festival", festivals, "Theater"},
		{"Carnival of Rio", festivals, "Dance"},
	} {
		b.kb.add(&Concept{
			Display: f.name,
			Kind:    KindEntity,
			Class:   ClassEvent,
			Parents: []ConceptID{f.facet, b.facet(f.extra)},
			Words:   []string{"red", "carpet", "winners", "jury"},
		})
	}

}

// addMediaAndCrime populates the media, religion, crime, and energy
// subtrees with entities so those dimensions actually occur in stories.
func (b *builder) addMediaAndCrime() {
	rng := b.rng.Sub("media-crime")

	// Newspapers and broadcasters.
	newspapers := b.facet("Newspapers")
	radio := b.facet("Radio")
	for i, m := range []struct {
		name    string
		country string
	}{
		{"The Daily Courier", "United States"},
		{"The Morning Ledger", "United States"},
		{"The Evening Standard Review", "United Kingdom"},
		{"La Gazette Nationale", "France"},
		{"Der Tagesanzeiger", "Germany"},
		{"Il Corriere del Popolo", "Italy"},
		{"El Diario Central", "Spain"},
		{"The Harbour Times", "Australia"},
		{"The Continental Herald", "Belgium"},
		{"Radio Meridian", "United States"},
		{"World Service Radio", "United Kingdom"},
		{"Radio Austral", "Argentina"},
	} {
		facet := newspapers
		if i >= 9 {
			facet = radio
		}
		b.kb.add(&Concept{
			Display: m.name,
			Kind:    KindEntity,
			Class:   ClassOrganization,
			Parents: []ConceptID{facet, b.countryID[m.country]},
			Words:   []string{"editors", "readers", "masthead"},
		})
	}

	// Religious leaders get a denomination dimension.
	relLeaders := b.facet("Religious Leaders")
	denominations := []ConceptID{
		b.facet("Christianity"), b.facet("Islam"), b.facet("Judaism"),
		b.facet("Buddhism"), b.facet("Hinduism"),
	}
	count := b.n(10)
	for i := 0; i < count; i++ {
		first, last := b.personName(rng)
		country := xrand.Pick(rng, countries)
		b.kb.add(&Concept{
			Display:  first + " " + last,
			Kind:     KindEntity,
			Class:    ClassPerson,
			Parents:  []ConceptID{relLeaders, denominations[rng.Intn(len(denominations))], b.countryID[country.name]},
			Variants: personVariants(first, last),
			Words:    []string{"sermon", "congregation", "faithful"},
		})
	}

	// Crime cases as events.
	for _, c := range []struct {
		name  string
		facet string
		where string
		words []string
	}{
		{"Meridian Bank Fraud Case", "White Collar Crime", "United States", []string{"embezzlement", "auditors", "indictment"}},
		{"Harbor Port Smuggling Ring", "Organized Crime", "Italy", []string{"syndicate", "seizure", "racketeering"}},
		{"Crossborder Data Breach", "Cybercrime", "United States", []string{"hackers", "breach", "servers"}},
		{"Andean Trafficking Network", "Drug Trade", "Colombia", []string{"trafficking", "cartel", "interdiction"}},
		{"Capital Markets Insider Case", "White Collar Crime", "United Kingdom", []string{"insider", "trades", "regulator"}},
		{"Dockside Extortion Inquiry", "Organized Crime", "United States", []string{"extortion", "witnesses", "racketeering"}},
	} {
		b.kb.add(&Concept{
			Display: c.name,
			Kind:    KindEntity,
			Class:   ClassEvent,
			Parents: []ConceptID{b.facet(c.facet), b.countryID[c.where]},
			Words:   c.words,
		})
	}

	// Energy projects and fields.
	for _, e := range []struct {
		name  string
		facet string
		where string
		words []string
	}{
		{"North Basin Oil Field", "Oil and Gas", "Norway", []string{"barrels", "offshore", "platform"}},
		{"Transsteppe Pipeline", "Oil and Gas", "Kazakhstan", []string{"pipeline", "transit", "crude"}},
		{"Solara Desert Array", "Renewable Energy", "Morocco", []string{"panels", "grid", "megawatts"}},
		{"Westwind Turbine Park", "Renewable Energy", "Denmark", []string{"turbines", "offshore", "capacity"}},
		{"Bluewater Reactor Project", "Nuclear Power", "France", []string{"reactor", "uranium", "cooling"}},
		{"Copperline Mine Expansion", "Mining", "Chile", []string{"ore", "miners", "shaft"}},
	} {
		b.kb.add(&Concept{
			Display: e.name,
			Kind:    KindEntity,
			Class:   ClassOrganization,
			Parents: []ConceptID{b.facet(e.facet), b.countryID[e.where]},
			Words:   e.words,
		})
	}

	// Energy-sector companies also belong to the Oil and Gas dimension.
	oilGas := b.facet("Oil and Gas")
	energySector := b.facet("Energy Companies")
	for _, e := range b.kb.Entities() {
		for _, p := range e.Parents {
			if p == energySector {
				e.Parents = append(e.Parents, oilGas)
				break
			}
		}
	}
}
