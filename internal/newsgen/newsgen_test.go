package newsgen

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/ontology"
	"repro/internal/textdb"
)

func testKB(t *testing.T) *ontology.KB {
	t.Helper()
	kb, err := ontology.Build(ontology.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func genSmall(t *testing.T, n int) *Dataset {
	t.Helper()
	kb := testKB(t)
	ds, err := Generate(kb, SNYT.WithDocs(n), 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateBasics(t *testing.T) {
	ds := genSmall(t, 50)
	if ds.Corpus.Len() != 50 {
		t.Fatalf("got %d docs", ds.Corpus.Len())
	}
	if len(ds.Traces) != 50 {
		t.Fatalf("got %d traces", len(ds.Traces))
	}
	for i := 0; i < ds.Corpus.Len(); i++ {
		doc := ds.Corpus.Doc(textdb.DocID(i))
		if doc.Title == "" || doc.Text == "" || doc.Source == "" {
			t.Fatalf("doc %d incomplete: %+v", i, doc)
		}
		if len(ds.Traces[i].Facets) == 0 {
			t.Fatalf("doc %d has empty facet ground truth", i)
		}
		if len(ds.Traces[i].Mentioned) == 0 {
			t.Fatalf("doc %d mentions nothing", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	kb := testKB(t)
	a, _ := Generate(kb, SNYT.WithDocs(20), 5)
	b, _ := Generate(kb, SNYT.WithDocs(20), 5)
	for i := 0; i < 20; i++ {
		if a.Corpus.Doc(textdb.DocID(i)).Text != b.Corpus.Doc(textdb.DocID(i)).Text {
			t.Fatalf("doc %d differs across identical runs", i)
		}
	}
	c, _ := Generate(kb, SNYT.WithDocs(20), 6)
	same := true
	for i := 0; i < 20; i++ {
		if a.Corpus.Doc(textdb.DocID(i)).Text != c.Corpus.Doc(textdb.DocID(i)).Text {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestSeedEntitiesAppearInText(t *testing.T) {
	ds := genSmall(t, 30)
	kb := ds.KB
	for i := 0; i < 30; i++ {
		doc := ds.Corpus.Doc(textdb.DocID(i))
		trace := ds.Traces[i]
		// The primary (first mentioned) concept must literally appear, by
		// display name or variant.
		c := kb.Concept(trace.Mentioned[0])
		names := append([]string{c.Display}, c.Variants...)
		found := false
		for _, n := range names {
			if strings.Contains(doc.Title+" "+doc.Text, n) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("doc %d does not mention %q anywhere:\n%s", i, c.Display, doc.Text)
		}
	}
}

func TestFacetLeakRate(t *testing.T) {
	kb := testKB(t)
	ds, _ := Generate(kb, SNYT.WithDocs(300), 3)
	var leaked, total int
	for i := range ds.Traces {
		text := strings.ToLower(ds.Corpus.Doc(textdb.DocID(i)).Text)
		for _, f := range ds.Traces[i].Facets {
			total++
			if strings.Contains(text, kb.Concept(f).Name) {
				leaked++
			}
		}
	}
	rate := float64(leaked) / float64(total)
	// The paper reports 65% of facet terms missing; with leak prob 0.35
	// (plus incidental occurrences) the observed rate should be well below
	// 0.6 and above 0.15.
	if rate < 0.15 || rate > 0.6 {
		t.Fatalf("facet leak rate %.3f outside expected band", rate)
	}
}

func TestSNBUsesManySources(t *testing.T) {
	kb := testKB(t)
	ds, _ := Generate(kb, SNB.WithDocs(400), 9)
	sources := map[string]bool{}
	for _, d := range ds.Corpus.Docs() {
		sources[d.Source] = true
	}
	if len(sources) < 15 {
		t.Fatalf("SNB used only %d sources", len(sources))
	}
}

func TestMNYTSpansDays(t *testing.T) {
	kb := testKB(t)
	ds, _ := Generate(kb, MNYT.WithDocs(400), 9)
	days := map[string]bool{}
	for _, d := range ds.Corpus.Docs() {
		days[d.Date.Format("2006-01-02")] = true
	}
	if len(days) < 20 {
		t.Fatalf("MNYT spans only %d days", len(days))
	}
	ds2, _ := Generate(kb, SNYT.WithDocs(50), 9)
	days2 := map[string]bool{}
	for _, d := range ds2.Corpus.Docs() {
		days2[d.Date.Format("2006-01-02")] = true
	}
	if len(days2) != 1 {
		t.Fatalf("SNYT spans %d days, want 1", len(days2))
	}
}

func TestBroaderProfileCoversMoreFacets(t *testing.T) {
	kb := testKB(t)
	coverage := func(p Profile) int {
		ds, _ := Generate(kb, p.WithDocs(1200), 13)
		set := map[ontology.ConceptID]bool{}
		for _, tr := range ds.Traces {
			for _, f := range tr.Facets {
				set[f] = true
			}
		}
		return len(set)
	}
	snyt := coverage(SNYT)
	snb := coverage(SNB)
	if snb <= snyt {
		t.Fatalf("SNB facet coverage (%d) not above SNYT (%d)", snb, snyt)
	}
}

func TestFacetCoverageGrowsSublinearly(t *testing.T) {
	// The paper's sensitivity test: ~40% of facet terms at 100 docs, ~80%
	// at 500. Verify strong sublinear growth (the 100-doc sample already
	// covers a large share of the 1000-doc facet set).
	kb := testKB(t)
	cover := func(n int) map[ontology.ConceptID]bool {
		ds, _ := Generate(kb, SNYT.WithDocs(n), 21)
		set := map[ontology.ConceptID]bool{}
		for _, tr := range ds.Traces {
			for _, f := range tr.Facets {
				set[f] = true
			}
		}
		return set
	}
	c100 := len(cover(100))
	c1000 := len(cover(1000))
	ratio := float64(c100) / float64(c1000)
	if ratio < 0.25 || ratio > 0.95 {
		t.Fatalf("coverage ratio 100/1000 docs = %.2f, want sublinear growth", ratio)
	}
}

func TestEntityMentionsAreCapitalized(t *testing.T) {
	ds := genSmall(t, 20)
	// Spot check: tokens of mentioned entity names appear capitalized in
	// the text (the NE tagger depends on this).
	doc := ds.Corpus.Doc(0)
	c := ds.KB.Concept(ds.Traces[0].Mentioned[0])
	first := strings.Fields(c.Display)[0]
	if !strings.Contains(doc.Text, first) && !strings.Contains(doc.Title, first) {
		t.Skipf("primary mentioned via variant only")
	}
	if strings.Contains(doc.Text, strings.ToLower(first)+" ") && first != strings.ToLower(first) {
		t.Fatalf("entity token %q appears lowercased", first)
	}
}

func TestTracesFacetsAreFacetConcepts(t *testing.T) {
	ds := genSmall(t, 40)
	for i, tr := range ds.Traces {
		for _, f := range tr.Facets {
			if !ds.KB.Concept(f).IsFacet() {
				t.Fatalf("doc %d trace facet %q is not a facet concept", i, ds.KB.Concept(f).Name)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	kb := testKB(t)
	if _, err := Generate(kb, Profile{Name: "bad", NumDocs: 0, Sources: []string{"x"}}, 1); err == nil {
		t.Fatal("expected error for zero docs")
	}
	if _, err := Generate(kb, Profile{Name: "bad", NumDocs: 5}, 1); err == nil {
		t.Fatal("expected error for no sources")
	}
}

func TestDocLengthsReasonable(t *testing.T) {
	ds := genSmall(t, 30)
	for _, d := range ds.Corpus.Docs() {
		n := len(lang.Tokenize(d.Text))
		if n < 40 || n > 600 {
			t.Fatalf("doc %d has %d tokens", d.ID, n)
		}
	}
}
