package core

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/textdb"
)

// fakeExtractor returns fixed terms for any document containing them.
type fakeExtractor struct {
	name  string
	terms []string
}

func (f fakeExtractor) Name() string { return f.name }
func (f fakeExtractor) Extract(text string) []string {
	lower := strings.ToLower(text)
	var out []string
	for _, t := range f.terms {
		if strings.Contains(lower, t) {
			out = append(out, t)
		}
	}
	return out
}

// fakeResource maps terms to fixed context.
type fakeResource struct {
	name  string
	ctx   map[string][]string
	calls map[string]int
}

func (f *fakeResource) Name() string { return f.name }
func (f *fakeResource) Context(term string) []string {
	if f.calls != nil {
		f.calls[term]++
	}
	return f.ctx[term]
}

func miniCorpus(texts ...string) *textdb.Corpus {
	c := textdb.NewCorpus()
	for _, t := range texts {
		c.Add(&textdb.Document{Title: "story", Text: t})
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error without extractors")
	}
	if _, err := New(Config{Extractors: []Extractor{fakeExtractor{}}}); err == nil {
		t.Fatal("expected error without resources")
	}
	if _, err := New(Config{
		Extractors: []Extractor{fakeExtractor{}},
		Resources:  []Resource{&fakeResource{}},
		TopK:       -1,
	}); err == nil {
		t.Fatal("expected error for negative TopK")
	}
}

func TestRunEmptyCorpus(t *testing.T) {
	p, _ := New(Config{
		Extractors: []Extractor{fakeExtractor{name: "x"}},
		Resources:  []Resource{&fakeResource{name: "r"}},
	})
	if _, err := p.Run(textdb.NewCorpus()); err == nil {
		t.Fatal("expected error for empty corpus")
	}
}

// TestFacetTermEmerges reproduces the paper's core scenario in miniature:
// "political leaders" never appears in the documents, every document
// mentions a politician, and expansion surfaces the facet term.
func TestFacetTermEmerges(t *testing.T) {
	var texts []string
	for i := 0; i < 20; i++ {
		texts = append(texts, fmt.Sprintf("chirac discussed the budget with advisers on day %d", i))
	}
	// A few unrelated documents so the collection isn't degenerate.
	for i := 0; i < 10; i++ {
		texts = append(texts, fmt.Sprintf("the weather stayed calm across region %d with light winds", i))
	}
	corpus := miniCorpus(texts...)
	ex := fakeExtractor{name: "ne", terms: []string{"chirac"}}
	res := &fakeResource{name: "wiki", ctx: map[string][]string{
		"chirac": {"political leaders", "france"},
	}}
	p, err := New(Config{Extractors: []Extractor{ex}, Resources: []Resource{res}, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	result, err := p.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	facets := result.FacetTermStrings()
	if len(facets) == 0 {
		t.Fatal("no facet terms discovered")
	}
	found := map[string]bool{}
	for _, f := range facets {
		found[f] = true
	}
	if !found["political leaders"] || !found["france"] {
		t.Fatalf("expected facet terms missing: %v", facets)
	}
	// Check the evidence on the discovered term.
	for _, f := range result.Facets {
		if f.Term == "political leaders" {
			if f.DF != 0 {
				t.Fatalf("DF = %d, want 0 (term absent from documents)", f.DF)
			}
			if f.DFC != 20 {
				t.Fatalf("DFC = %d, want 20", f.DFC)
			}
			if f.ShiftF != 20 || f.ShiftR <= 0 || f.Score <= 0 {
				t.Fatalf("evidence wrong: %+v", f)
			}
		}
	}
}

// TestTermsAlreadyFrequentDoNotQualify: a term that appears in every
// document gains nothing from expansion and must not become a candidate.
func TestTermsAlreadyFrequentDoNotQualify(t *testing.T) {
	var texts []string
	for i := 0; i < 10; i++ {
		texts = append(texts, "chirac spoke about politics and the politics of budget")
	}
	corpus := miniCorpus(texts...)
	ex := fakeExtractor{name: "ne", terms: []string{"chirac"}}
	res := &fakeResource{name: "wiki", ctx: map[string][]string{
		"chirac": {"politics"}, // already in every doc
	}}
	p, _ := New(Config{Extractors: []Extractor{ex}, Resources: []Resource{res}})
	result, _ := p.Run(corpus)
	for _, f := range result.Candidates {
		if f.Term == "politics" {
			t.Fatalf("saturated term became a candidate: %+v", f)
		}
	}
}

func TestImportantTermsUnionAcrossExtractors(t *testing.T) {
	corpus := miniCorpus("alpha beta gamma delta")
	e1 := fakeExtractor{name: "a", terms: []string{"alpha", "beta"}}
	e2 := fakeExtractor{name: "b", terms: []string{"beta", "gamma"}}
	res := &fakeResource{name: "r", ctx: map[string][]string{}}
	p, _ := New(Config{Extractors: []Extractor{e1, e2}, Resources: []Resource{res}})
	result, err := p.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "gamma"}
	if !reflect.DeepEqual(result.Important[0], want) {
		t.Fatalf("important = %v, want %v", result.Important[0], want)
	}
}

func TestMaxImportantPerDoc(t *testing.T) {
	corpus := miniCorpus("alpha beta gamma")
	e := fakeExtractor{name: "a", terms: []string{"alpha", "beta", "gamma"}}
	res := &fakeResource{name: "r", ctx: map[string][]string{}}
	p, _ := New(Config{Extractors: []Extractor{e}, Resources: []Resource{res}, MaxImportantPerDoc: 2})
	result, _ := p.Run(corpus)
	if len(result.Important[0]) != 2 {
		t.Fatalf("cap not applied: %v", result.Important[0])
	}
}

func TestResourceCacheAvoidsRepeatQueries(t *testing.T) {
	corpus := miniCorpus("chirac here", "chirac there", "chirac again")
	e := fakeExtractor{name: "a", terms: []string{"chirac"}}
	res := &fakeResource{name: "r", ctx: map[string][]string{"chirac": {"france"}}, calls: map[string]int{}}
	p, _ := New(Config{Extractors: []Extractor{e}, Resources: []Resource{res}})
	if _, err := p.Run(corpus); err != nil {
		t.Fatal(err)
	}
	if res.calls["chirac"] != 1 {
		t.Fatalf("resource queried %d times, want 1 (cached)", res.calls["chirac"])
	}
}

func TestTopKBoundsOutput(t *testing.T) {
	var texts []string
	for i := 0; i < 20; i++ {
		texts = append(texts, fmt.Sprintf("entity%d reported news item %d", i%5, i))
	}
	corpus := miniCorpus(texts...)
	terms := []string{"entity0", "entity1", "entity2", "entity3", "entity4"}
	ctx := map[string][]string{}
	for i, tm := range terms {
		ctx[tm] = []string{fmt.Sprintf("general%d", i), fmt.Sprintf("broad%d", i)}
	}
	e := fakeExtractor{name: "a", terms: terms}
	p, _ := New(Config{Extractors: []Extractor{e}, Resources: []Resource{&fakeResource{name: "r", ctx: ctx}}, TopK: 3})
	result, _ := p.Run(corpus)
	if len(result.Facets) > 3 {
		t.Fatalf("TopK violated: %d facets", len(result.Facets))
	}
	if len(result.Candidates) < len(result.Facets) {
		t.Fatal("candidates must include facets")
	}
}

func TestScoresSortedDescending(t *testing.T) {
	var texts []string
	for i := 0; i < 30; i++ {
		who := "smith"
		if i%3 == 0 {
			who = "jones"
		}
		texts = append(texts, fmt.Sprintf("%s acted on item %d", who, i))
	}
	corpus := miniCorpus(texts...)
	e := fakeExtractor{name: "a", terms: []string{"smith", "jones"}}
	ctx := map[string][]string{
		"smith": {"actors"},  // frequent expansion → high df shift
		"jones": {"writers"}, // rarer expansion
	}
	p, _ := New(Config{Extractors: []Extractor{e}, Resources: []Resource{&fakeResource{name: "r", ctx: ctx}}})
	result, _ := p.Run(corpus)
	if len(result.Candidates) < 2 {
		t.Fatalf("candidates: %+v", result.Candidates)
	}
	for i := 1; i < len(result.Candidates); i++ {
		if result.Candidates[i].Score > result.Candidates[i-1].Score {
			t.Fatal("scores not sorted descending")
		}
	}
	if result.Candidates[0].Term != "actors" {
		t.Fatalf("highest shift should rank first: %+v", result.Candidates[0])
	}
}

func TestGlossaryExtractor(t *testing.T) {
	g, err := NewGlossaryExtractor("Finance", []string{"Due Diligence", "hedge fund", "margin"})
	if err != nil {
		t.Fatal(err)
	}
	got := g.Extract("The hedge fund performed due diligence on margin accounts.")
	want := []string{"hedge fund", "due diligence", "margin"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if _, err := NewGlossaryExtractor("empty", nil); err == nil {
		t.Fatal("expected error for empty glossary")
	}
}

func TestGlossaryExtractorLongestMatch(t *testing.T) {
	g, _ := NewGlossaryExtractor("x", []string{"stock", "stock market"})
	got := g.Extract("the stock market fell")
	if !reflect.DeepEqual(got, []string{"stock market"}) {
		t.Fatalf("got %v", got)
	}
}

func TestGlossaryResource(t *testing.T) {
	r, err := NewGlossaryResource("Finance", map[string][]string{
		"Hedge Fund": {"Investments", "investments", "Risk", "hedge fund"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Context("hedge fund")
	want := []string{"investments", "risk"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if r.Context("unknown") != nil {
		t.Fatal("unknown term should return nil")
	}
	if _, err := NewGlossaryResource("empty", nil); err == nil {
		t.Fatal("expected error for empty thesaurus")
	}
}

func TestContextVotes(t *testing.T) {
	res := &fakeResource{name: "r", ctx: map[string][]string{
		"chirac": {"politics", "france"},
		"merkel": {"politics", "germany"},
	}}
	important := [][]string{
		{"chirac", "merkel"}, // politics corroborated by both terms
		{"chirac"},
		{},
	}
	votes := ContextVotes(important, []Resource{res}, nil)
	if votes[0]["politics"] != 2 || votes[0]["france"] != 1 || votes[0]["germany"] != 1 {
		t.Fatalf("doc 0 votes = %v", votes[0])
	}
	if votes[1]["politics"] != 1 {
		t.Fatalf("doc 1 votes = %v", votes[1])
	}
	if len(votes[2]) != 0 {
		t.Fatalf("doc 2 votes = %v", votes[2])
	}
}

func TestContextVotesResourceDedup(t *testing.T) {
	// Two resources returning the same context term for the same important
	// term count as ONE vote: votes measure distinct important terms.
	r1 := &fakeResource{name: "a", ctx: map[string][]string{"x": {"general"}}}
	r2 := &fakeResource{name: "b", ctx: map[string][]string{"x": {"general"}}}
	votes := ContextVotes([][]string{{"x"}}, []Resource{r1, r2}, nil)
	if votes[0]["general"] != 1 {
		t.Fatalf("votes = %v, want 1 (deduped across resources)", votes[0])
	}
}

func TestResultResourcesRecorded(t *testing.T) {
	corpus := miniCorpus("alpha beta")
	res := &fakeResource{name: "r", ctx: map[string][]string{}}
	p, _ := New(Config{Extractors: []Extractor{fakeExtractor{name: "a", terms: []string{"alpha"}}}, Resources: []Resource{res}})
	result, err := p.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Resources) != 1 || result.Resources[0].Name() != "r" {
		t.Fatal("resources not recorded on result")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	var texts []string
	for i := 0; i < 25; i++ {
		texts = append(texts, fmt.Sprintf("entity%d met entity%d about issue %d", i%4, (i+1)%4, i))
	}
	build := func() *Result {
		corpus := miniCorpus(texts...)
		terms := []string{"entity0", "entity1", "entity2", "entity3"}
		ctx := map[string][]string{}
		for i, tm := range terms {
			ctx[tm] = []string{fmt.Sprintf("general%d", i%2), "people"}
		}
		p, _ := New(Config{
			Extractors: []Extractor{fakeExtractor{name: "a", terms: terms}},
			Resources:  []Resource{&fakeResource{name: "r", ctx: ctx}},
		})
		res, err := p.Run(corpus)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Facets, b.Facets) {
		t.Fatal("pipeline runs diverge")
	}
	if !reflect.DeepEqual(a.Candidates, b.Candidates) {
		t.Fatal("candidate lists diverge")
	}
}

func TestIdentifyImportantParallelMatchesSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var texts []string
	for i := 0; i < 64; i++ {
		texts = append(texts, fmt.Sprintf("alpha beta doc%d gamma", i))
	}
	corpus := miniCorpus(texts...)
	ex := fakeExtractor{name: "a", terms: []string{"alpha", "beta", "gamma"}}
	parallel := IdentifyImportant(corpus, []Extractor{ex}, 0)
	runtime.GOMAXPROCS(1)
	sequential := IdentifyImportant(corpus, []Extractor{ex}, 0)
	if !reflect.DeepEqual(parallel, sequential) {
		t.Fatal("parallel and sequential extraction differ")
	}
	if len(parallel) != 64 {
		t.Fatalf("%d rows", len(parallel))
	}
	for i, row := range parallel {
		if len(row) != 3 {
			t.Fatalf("row %d = %v", i, row)
		}
	}
}
