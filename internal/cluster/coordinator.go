package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/browse"
	"repro/internal/obsv"
	"repro/internal/overload"
	"repro/internal/resilient"
	"repro/internal/serve"
)

// errNeedAB mirrors the single-node cross handler's message exactly so
// coordinator and single-node validation errors are byte-identical.
var errNeedAB = errors.New("need a and b facet parameters")

// Peer names one shard server the coordinator fans out to.
type Peer struct {
	Name    string // ring name, reported in degradation envelopes
	BaseURL string // e.g. http://10.0.0.3:8081 (no trailing slash)
}

// ParsePeers parses the -peers flag syntax "name=url,name=url".
func ParsePeers(raw string) ([]Peer, error) {
	var out []Peer
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want name=url)", part)
		}
		out = append(out, Peer{Name: name, BaseURL: strings.TrimRight(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", raw)
	}
	return out, nil
}

// Config parameterizes a Coordinator.
type Config struct {
	// Timeout is the per-shard deadline for one scattered sub-query,
	// covering both the primary and any hedged attempt. 0 selects 2s.
	Timeout time.Duration
	// HedgeDelay is how long the primary attempt may run before a
	// backup attempt is launched in parallel (the hedge); whichever
	// returns first wins. A primary that FAILS before the delay triggers
	// the backup immediately. 0 selects Timeout/4.
	HedgeDelay time.Duration
	// Breaker configures the per-shard circuit breaker; a shard whose
	// breaker is open is skipped without a request (and reported in the
	// degradation envelope) until its cooldown admits a probe.
	Breaker resilient.BreakerConfig
	// Client issues the shard requests; nil selects http.DefaultClient.
	Client *http.Client
	// Governor, when set, applies per-class adaptive admission control
	// to the coordinator's public routes (reads vs. expensive cross-
	// tabulations), the same policy internal/serve applies on a single
	// node. Nil serves unthrottled.
	Governor *overload.Governor
	// Metrics, when set, receives cluster.fanout_latency and
	// cluster.merge_latency histograms, per-shard
	// cluster.shard.<name>.{errors,hedges} counters and breaker-state
	// gauges, and the cluster.degraded_responses counter. The registry
	// is also what GET /api/v1/metrics on the coordinator serves.
	Metrics *obsv.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = cfg.Timeout / 4
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obsv.NewRegistry()
	}
	return cfg
}

// shardClient is the coordinator's view of one shard: its breaker, its
// error counters, and the last epoch it reported.
type shardClient struct {
	name    string
	baseURL string
	br      *resilient.Breaker
	client  *http.Client
	errs    *obsv.Counter
	hedges  *obsv.Counter
}

// Coordinator fans browse queries out to every shard, merges the
// partial answers, and serves the same public /api/v1/ routes as a
// single node — byte-identically when all shards answer, and with an
// explicit "degraded" report naming the missing shards when some don't.
type Coordinator struct {
	cfg    Config
	shards []*shardClient

	mux       *http.ServeMux
	httpm     *obsv.HTTPMetrics
	apiRoutes map[string][]string

	fanout     *obsv.Histogram
	merge      *obsv.Histogram
	degraded   *obsv.Counter
	budgetShed *obsv.Counter
}

// NewCoordinator builds a coordinator over the given shard peers.
func NewCoordinator(peers []Peer, cfg Config) (*Coordinator, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard peer")
	}
	cfg = cfg.withDefaults()
	seen := map[string]bool{}
	c := &Coordinator{
		cfg:        cfg,
		fanout:     cfg.Metrics.Histogram("cluster.fanout_latency"),
		merge:      cfg.Metrics.Histogram("cluster.merge_latency"),
		degraded:   cfg.Metrics.Counter("cluster.degraded_responses"),
		budgetShed: cfg.Metrics.Counter("cluster.budget_shed"),
	}
	for _, p := range peers {
		if p.Name == "" || p.BaseURL == "" {
			return nil, fmt.Errorf("cluster: peer needs name and url (got %+v)", p)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		seen[p.Name] = true
		sc := &shardClient{
			name:    p.Name,
			baseURL: strings.TrimRight(p.BaseURL, "/"),
			br:      resilient.NewBreaker(cfg.Breaker, cfg.Metrics.Counter("cluster.shard."+p.Name+".trips").Inc),
			client:  cfg.Client,
			errs:    cfg.Metrics.Counter("cluster.shard." + p.Name + ".errors"),
			hedges:  cfg.Metrics.Counter("cluster.shard." + p.Name + ".hedges"),
		}
		br := sc.br
		cfg.Metrics.GaugeFunc("cluster.shard."+p.Name+".breaker_state", func() int64 {
			return int64(br.State())
		})
		c.shards = append(c.shards, sc)
	}
	c.buildMux()
	return c, nil
}

// buildMux wires the coordinator's routes: the public browse API under
// /api/v1/ (scatter-gather), plus metrics and probes, with the same
// unified-envelope fallback for unknown routes the single node uses.
// Every route passes through the robustness stack internal/serve
// exports — panic recovery, X-Deadline-Budget parsing, and (when a
// Governor is configured) per-class admission control; probes and
// metrics are exempt from admission, exactly like the single node.
func (c *Coordinator) buildMux() {
	c.httpm = obsv.NewHTTPMetrics(c.cfg.Metrics)
	c.mux = http.NewServeMux()
	c.apiRoutes = map[string][]string{}
	instrument := func(class overload.Class, h http.Handler) http.Handler {
		h = serve.Admission(c.cfg.Governor, class, h)
		h = serve.BudgetMiddleware(h)
		return serve.Recovery(c.cfg.Metrics, h)
	}
	fallback := c.httpm.Wrap("api_unmatched", instrument("", http.HandlerFunc(c.handleAPIFallback)))
	c.mux.Handle("/api/", fallback)
	c.mux.Handle("/api/v1/", fallback)
	handle := func(path, route string, class overload.Class, h http.HandlerFunc) {
		c.mux.Handle(http.MethodGet+" /api/v1/"+path, c.httpm.Wrap(route, instrument(class, h)))
		c.apiRoutes[path] = append(c.apiRoutes[path], http.MethodGet)
	}
	handle("facets", "facets", overload.ClassRead, c.handleFacets)
	handle("docs", "docs", overload.ClassRead, c.handleDocs)
	handle("dates", "dates", overload.ClassRead, c.handleDates)
	handle("cross", "cross", overload.ClassExpensive, c.handleCross)
	handle("metrics", "metrics", "", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, c.cfg.Metrics.Snapshot())
	})
	handle("healthz", "healthz", "", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, serve.HealthzResponse{Status: "ok"})
	})
	handle("readyz", "readyz", "", c.handleReadyz)
}

// admitBudget enforces deadline propagation at the cheapest possible
// point: when the caller's budget is already spent, fanning out would
// buy nothing — every shard reply would arrive past the deadline — so
// the coordinator sheds before issuing a single sub-request.
func (c *Coordinator) admitBudget(w http.ResponseWriter, r *http.Request) bool {
	remaining, ok := serve.RemainingBudget(r.Context())
	if !ok || remaining > 0 {
		return true
	}
	c.budgetShed.Inc()
	serve.WriteShed(w, http.StatusServiceUnavailable, 1,
		fmt.Errorf("deadline budget spent before fan-out"))
	return false
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// Metrics returns the coordinator's registry.
func (c *Coordinator) Metrics() *obsv.Registry { return c.cfg.Metrics }

func (c *Coordinator) handleAPIFallback(w http.ResponseWriter, r *http.Request) {
	if path, versioned := strings.CutPrefix(strings.TrimPrefix(r.URL.Path, "/api/"), "v1/"); versioned {
		if methods, ok := c.apiRoutes[path]; ok {
			allow := append([]string(nil), methods...)
			sort.Strings(allow)
			w.Header().Set("Allow", strings.Join(allow, ", "))
			serve.WriteError(w, http.StatusMethodNotAllowed, serve.ErrCodeMethodNotAllowed,
				fmt.Errorf("method %s not allowed on %s (allowed: %s)", r.Method, r.URL.Path, strings.Join(allow, ", ")))
			return
		}
	}
	serve.WriteError(w, http.StatusNotFound, serve.ErrCodeNotFound,
		fmt.Errorf("unknown API route %s", r.URL.Path))
}

// handleReadyz reports cluster health: ready while every shard's
// breaker is closed, 503 naming the tripped shards otherwise. The
// coordinator still SERVES partial results while degraded — readiness
// is the operator's signal, not a traffic gate.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := make(map[string]string, len(c.shards))
	var failing []string
	for _, sc := range c.shards {
		if st := sc.br.State(); st != resilient.Closed {
			checks[sc.name] = "breaker " + st.String()
			failing = append(failing, sc.name+": breaker "+st.String())
		} else {
			checks[sc.name] = "ok"
		}
	}
	if len(failing) > 0 {
		serve.WriteError(w, http.StatusServiceUnavailable, serve.ErrCodeNotReady,
			fmt.Errorf("not ready: %s", strings.Join(failing, "; ")))
		return
	}
	serve.WriteJSON(w, serve.ReadyzResponse{Status: "ready", Checks: checks})
}

// --- scatter ---

// maxShardResponse bounds one shard reply (a merge cannot be asked to
// buffer an unbounded body).
const maxShardResponse = 64 << 20

// shardReply is one shard's answer (or failure) to a scattered
// sub-query.
type shardReply struct {
	name   string
	body   []byte
	status int
	err    error
}

// scatter fans pathAndQuery out to every shard concurrently and waits
// for all of them (each bounded by the per-shard deadline). Replies
// come back in peer order; failed shards carry err and are summarized
// in the returned Degradation (nil when every shard answered).
func (c *Coordinator) scatter(ctx context.Context, pathAndQuery string) ([]shardReply, *Degradation) {
	start := time.Now()
	replies := make([]shardReply, len(c.shards))
	var wg sync.WaitGroup
	for i, sc := range c.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			body, status, err := c.fetch(ctx, sc, pathAndQuery)
			replies[i] = shardReply{name: sc.name, body: body, status: status, err: err}
		}(i, sc)
	}
	wg.Wait()
	c.fanout.Observe(time.Since(start))
	var degr *Degradation
	for _, rep := range replies {
		if rep.err != nil {
			if degr == nil {
				degr = &Degradation{ShardsTotal: len(c.shards), Errors: map[string]string{}}
			}
			degr.MissingShards = append(degr.MissingShards, rep.name)
			degr.Errors[rep.name] = rep.err.Error()
		}
	}
	if degr != nil {
		c.degraded.Inc()
	}
	return replies, degr
}

// fetch runs one shard sub-query under the hedging policy: a primary
// attempt, plus a backup launched either when the primary fails fast or
// when HedgeDelay elapses without an answer (tail-latency hedging);
// the first success wins. Every attempt passes through the shard's
// circuit breaker, so a dead shard is shed without a connection once
// the breaker opens, and probed again after its cooldown.
func (c *Coordinator) fetch(ctx context.Context, sc *shardClient, pathAndQuery string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	type result struct {
		body   []byte
		status int
		err    error
	}
	ch := make(chan result, 2) // both attempts can always deliver
	attempt := func() {
		body, status, err := sc.get(ctx, pathAndQuery)
		ch <- result{body, status, err}
	}
	launch := func() bool {
		if err := sc.br.Allow(); err != nil {
			return false
		}
		go attempt()
		return true
	}
	if !launch() {
		if sc.errs != nil {
			sc.errs.Inc()
		}
		return nil, 0, resilient.ErrOpen
	}
	outstanding, hedged := 1, false
	hedge := func() {
		if hedged {
			return
		}
		hedged = true
		if launch() {
			outstanding++
			sc.hedges.Inc()
		}
	}
	var lastErr error
	timerC := time.After(c.cfg.HedgeDelay)
	for {
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil && res.status < http.StatusInternalServerError {
				sc.br.Success()
				return res.body, res.status, nil
			}
			sc.br.Failure()
			sc.errs.Inc()
			if res.err != nil {
				lastErr = res.err
			} else {
				lastErr = fmt.Errorf("shard %s: HTTP %d", sc.name, res.status)
			}
			// A fast failure is a better hedge trigger than the timer.
			hedge()
			if outstanding == 0 {
				return nil, 0, lastErr
			}
		case <-timerC:
			timerC = nil
			hedge()
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
}

// get issues one HTTP attempt against the shard. When the scattered
// context carries a deadline — the caller's propagated budget and/or
// the per-shard timeout, whichever is nearer — the attempt forwards the
// REMAINING budget in X-Deadline-Budget, so the shard sheds its own
// work the moment the coordinator would no longer accept the answer.
// Hedged retries pass through here too: a hedge launched later encodes
// a smaller remaining budget, charging the hedge against the same
// allowance instead of granting it a fresh one.
func (sc *shardClient) get(ctx context.Context, pathAndQuery string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sc.baseURL+pathAndQuery, nil)
	if err != nil {
		return nil, 0, err
	}
	if remaining, ok := serve.RemainingBudget(ctx); ok {
		if remaining <= 0 {
			return nil, 0, context.DeadlineExceeded
		}
		req.Header.Set(overload.BudgetHeader, overload.FormatBudget(remaining))
	}
	resp, err := sc.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

// --- merge + routes ---

// Degradation is the partial-results report attached to a coordinator
// response when some shards did not answer: the client sees which part
// of the corpus the counts are missing, instead of an opaque error or —
// worse — silently low numbers.
type Degradation struct {
	ShardsTotal   int               `json:"shards_total"`
	MissingShards []string          `json:"missing_shards"`
	Errors        map[string]string `json:"errors,omitempty"`
}

// FacetsResponse is the coordinator's /api/v1/facets payload: the
// single-node shape plus the optional degradation report (absent —
// byte-identical to single-node — when every shard answered).
type FacetsResponse struct {
	serve.FacetsResponse
	Degraded *Degradation `json:"degraded,omitempty"`
}

// DocsResponse is the coordinator's /api/v1/docs payload.
type DocsResponse struct {
	serve.DocsResponse
	Degraded *Degradation `json:"degraded,omitempty"`
}

// DatesResponse is the coordinator's /api/v1/dates payload. The
// single-node route answers with a bare bucket array, so the degraded
// form wraps it only when the report is present.
type DatesResponse struct {
	Buckets  []serve.DateBucket `json:"buckets"`
	Degraded *Degradation       `json:"degraded"`
}

// CrossResponse is the coordinator's /api/v1/cross payload.
type CrossResponse struct {
	browse.CrossTab
	Degraded *Degradation `json:"degraded,omitempty"`
}

// relayOrDecode splits replies into decoded successes and handles the
// client-error relay: if any shard answered with a non-2xx, non-5xx
// status (e.g. 400 bad granularity — every shard validates with the
// same code, so any one speaks for all), the first such reply is
// relayed to the client verbatim and ok=false is returned. Transport
// failures were already folded into the degradation report.
func relayOrDecode[T any](w http.ResponseWriter, replies []shardReply) (decoded []T, ok bool) {
	for _, rep := range replies {
		if rep.err != nil {
			continue
		}
		if rep.status != http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(rep.status)
			_, _ = w.Write(rep.body)
			return nil, false
		}
		var v T
		if err := json.Unmarshal(rep.body, &v); err != nil {
			serve.WriteError(w, http.StatusBadGateway, serve.ErrCodeUnavailable,
				fmt.Errorf("shard %s: undecodable reply: %v", rep.name, err))
			return nil, false
		}
		decoded = append(decoded, v)
	}
	return decoded, true
}

// allShardsDown writes the full-outage error: partial results need at
// least one shard.
func (c *Coordinator) allShardsDown(w http.ResponseWriter, degr *Degradation) {
	msgs := make([]string, 0, len(degr.MissingShards))
	for _, name := range degr.MissingShards {
		msgs = append(msgs, name+": "+degr.Errors[name])
	}
	serve.WriteError(w, http.StatusServiceUnavailable, serve.ErrCodeUnavailable,
		fmt.Errorf("all %d shards unreachable: %s", degr.ShardsTotal, strings.Join(msgs, "; ")))
}

func (c *Coordinator) handleFacets(w http.ResponseWriter, r *http.Request) {
	if _, err := serve.ParseSelection(r); err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	limit, err := serve.QueryBoundedInt(r, "limit", 100, 1000)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	if !c.admitBudget(w, r) {
		return
	}
	replies, degr := c.scatter(r.Context(), "/api/v1/cluster/facets?"+r.URL.RawQuery)
	if degr != nil && len(degr.MissingShards) == len(c.shards) {
		c.allShardsDown(w, degr)
		return
	}
	parts, ok := relayOrDecode[ShardFacets](w, replies)
	if !ok {
		return
	}
	start := time.Now()
	total := 0
	counts := map[string]int{}
	for _, p := range parts {
		total += p.Total
		for _, fc := range p.Facets {
			counts[fc.Term] += fc.Count
		}
	}
	merged := make([]browse.FacetCount, 0, len(counts))
	for term, count := range counts {
		merged = append(merged, browse.FacetCount{Term: term, Count: count})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return merged[i].Term < merged[j].Term
	})
	if len(merged) > limit {
		merged = merged[:limit]
	}
	if len(merged) == 0 {
		merged = nil // single node emits null, not [], for no facets
	}
	c.merge.Observe(time.Since(start))
	serve.WriteJSON(w, FacetsResponse{
		FacetsResponse: serve.FacetsResponse{
			Parent: r.URL.Query().Get("parent"),
			Total:  total,
			Facets: merged,
		},
		Degraded: degr,
	})
}

func (c *Coordinator) handleDocs(w http.ResponseWriter, r *http.Request) {
	if _, err := serve.ParseSelection(r); err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	limit, err := serve.QueryBoundedInt(r, "limit", 20, 500)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	if !c.admitBudget(w, r) {
		return
	}
	replies, degr := c.scatter(r.Context(), "/api/v1/cluster/docs?"+r.URL.RawQuery)
	if degr != nil && len(degr.MissingShards) == len(c.shards) {
		c.allShardsDown(w, degr)
		return
	}
	parts, ok := relayOrDecode[ShardDocs](w, replies)
	if !ok {
		return
	}
	start := time.Now()
	resp := DocsResponse{Degraded: degr}
	var docs []serve.DocSummary
	for _, p := range parts {
		resp.Total += p.Total
		docs = append(docs, p.Docs...)
	}
	// Shards return ascending global ids over disjoint id sets, so the
	// global first `limit` ids are contained in the concatenation.
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
	if len(docs) > limit {
		docs = docs[:limit]
	}
	resp.Docs = docs
	c.merge.Observe(time.Since(start))
	serve.WriteJSON(w, resp)
}

func (c *Coordinator) handleDates(w http.ResponseWriter, r *http.Request) {
	if _, err := serve.ParseSelection(r); err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	if !c.admitBudget(w, r) {
		return
	}
	replies, degr := c.scatter(r.Context(), "/api/v1/cluster/dates?"+r.URL.RawQuery)
	if degr != nil && len(degr.MissingShards) == len(c.shards) {
		c.allShardsDown(w, degr)
		return
	}
	parts, ok := relayOrDecode[ShardDates](w, replies)
	if !ok {
		return
	}
	start := time.Now()
	counts := map[string]int{}
	for _, p := range parts {
		for _, b := range p.Buckets {
			counts[b.Bucket] += b.Count
		}
	}
	merged := make([]serve.DateBucket, 0, len(counts))
	for bucket, count := range counts {
		merged = append(merged, serve.DateBucket{Bucket: bucket, Count: count})
	}
	// Buckets are "2006-01-02" strings: lexicographic IS chronological.
	sort.Slice(merged, func(i, j int) bool { return merged[i].Bucket < merged[j].Bucket })
	c.merge.Observe(time.Since(start))
	if degr == nil {
		// Byte-compatible with the single node, which serves a bare array.
		serve.WriteJSON(w, merged)
		return
	}
	serve.WriteJSON(w, DatesResponse{Buckets: merged, Degraded: degr})
}

func (c *Coordinator) handleCross(w http.ResponseWriter, r *http.Request) {
	if _, err := serve.ParseSelection(r); err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	if r.URL.Query().Get("a") == "" || r.URL.Query().Get("b") == "" {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, errNeedAB)
		return
	}
	if !c.admitBudget(w, r) {
		return
	}
	replies, degr := c.scatter(r.Context(), "/api/v1/cluster/cross?"+r.URL.RawQuery)
	if degr != nil && len(degr.MissingShards) == len(c.shards) {
		c.allShardsDown(w, degr)
		return
	}
	parts, ok := relayOrDecode[ShardCross](w, replies)
	if !ok {
		return
	}
	start := time.Now()
	resp := CrossResponse{Degraded: degr}
	for i, p := range parts {
		if i == 0 {
			resp.RowTerms = p.RowTerms
			resp.ColTerms = p.ColTerms
			resp.Cells = make([][]int, len(p.RowTerms))
			for row := range resp.Cells {
				resp.Cells[row] = make([]int, len(p.ColTerms))
			}
		} else if !sameTerms(resp.RowTerms, p.RowTerms) || !sameTerms(resp.ColTerms, p.ColTerms) {
			// Shards disagree on the hierarchy axes — an epoch skew
			// mid-rollout. Summing mismatched matrices would be silently
			// wrong, so fail loudly instead.
			serve.WriteError(w, http.StatusServiceUnavailable, serve.ErrCodeUnavailable,
				fmt.Errorf("shards report different cross axes (epoch skew); retry after the rollout settles"))
			return
		}
		for row := range p.Cells {
			for col := range p.Cells[row] {
				resp.Cells[row][col] += p.Cells[row][col]
			}
		}
	}
	c.merge.Observe(time.Since(start))
	serve.WriteJSON(w, resp)
}

func sameTerms(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
