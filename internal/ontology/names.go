package ontology

// Name material for deterministic entity generation. Person names combine
// a first and a last name; the lists mix origins so that generated casts
// resemble an international news corpus. All generation is deterministic
// given the KB seed.

var firstNames = []string{
	"Jacques", "Pierre", "Marie", "Claire", "Antoine", "Louis", "Henri",
	"Jean", "Sophie", "Camille", "Hans", "Karl", "Greta", "Franz", "Otto",
	"Ingrid", "Wolfgang", "Dieter", "Giovanni", "Marco", "Lucia", "Paolo",
	"Francesca", "Alessandro", "Carlos", "Maria", "Jose", "Ana", "Miguel",
	"Elena", "Pablo", "Diego", "Vladimir", "Sergei", "Natalia", "Dmitri",
	"Olga", "Ivan", "Mikhail", "Tatiana", "Hiroshi", "Yuki", "Kenji",
	"Akira", "Naoko", "Takeshi", "Wei", "Li", "Ming", "Hua", "Jun",
	"Xiang", "Raj", "Priya", "Arjun", "Sanjay", "Deepa", "Vikram",
	"Ahmed", "Fatima", "Omar", "Layla", "Hassan", "Amira", "Tariq",
	"Kwame", "Amara", "Chidi", "Zola", "Sipho", "Nia", "Abebe",
	"James", "John", "Robert", "Michael", "William", "David", "Richard",
	"Thomas", "Charles", "Daniel", "Matthew", "Andrew", "Edward",
	"George", "Kenneth", "Steven", "Paul", "Mark", "Donald", "Anthony",
	"Mary", "Patricia", "Jennifer", "Linda", "Elizabeth", "Barbara",
	"Susan", "Jessica", "Sarah", "Karen", "Nancy", "Lisa", "Margaret",
	"Betty", "Sandra", "Ashley", "Dorothy", "Kimberly", "Emily", "Donna",
	"Erik", "Lars", "Astrid", "Bjorn", "Freya", "Nils", "Sven",
	"Piotr", "Agnieszka", "Marek", "Katarzyna", "Janusz", "Eva",
	"Mehmet", "Ayse", "Mustafa", "Zeynep", "Emre", "Leila",
	"Sun-Hee", "Min-Jun", "Ji-Woo", "Thabo", "Kofi", "Ngozi",
}

var lastNames = []string{
	"Chirac", "Dubois", "Moreau", "Laurent", "Lefevre", "Rousseau",
	"Fontaine", "Girard", "Mercier", "Blanc", "Muller", "Schmidt",
	"Schneider", "Fischer", "Weber", "Wagner", "Becker", "Hoffmann",
	"Richter", "Klein", "Rossi", "Ferrari", "Esposito", "Bianchi",
	"Romano", "Colombo", "Ricci", "Marino", "Garcia", "Rodriguez",
	"Martinez", "Hernandez", "Lopez", "Gonzalez", "Perez", "Sanchez",
	"Ramirez", "Torres", "Ivanov", "Petrov", "Volkov", "Sokolov",
	"Popov", "Kuznetsov", "Tanaka", "Suzuki", "Takahashi", "Watanabe",
	"Yamamoto", "Nakamura", "Kobayashi", "Kato", "Chen", "Wang",
	"Zhang", "Liu", "Yang", "Huang", "Zhao", "Wu", "Patel", "Sharma",
	"Singh", "Kumar", "Gupta", "Mehta", "Reddy", "Iyer", "Hassan",
	"Ali", "Ahmed", "Ibrahim", "Khalil", "Rahman", "Aziz", "Mansour",
	"Okafor", "Mensah", "Diallo", "Ndiaye", "Mwangi", "Banda",
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Miller", "Davis",
	"Wilson", "Anderson", "Taylor", "Moore", "Jackson", "Martin", "Lee",
	"Thompson", "White", "Harris", "Clark", "Lewis", "Walker", "Hall",
	"Young", "King", "Wright", "Scott", "Green", "Baker", "Adams",
	"Nelson", "Carter", "Mitchell", "Roberts", "Turner", "Phillips",
	"Campbell", "Parker", "Evans", "Edwards", "Collins", "Stewart",
	"Morris", "Murphy", "Cook", "Rogers", "Morgan", "Peterson",
	"Cooper", "Reed", "Bailey", "Bell", "Gomez", "Kelly", "Howard",
	"Ward", "Cox", "Diaz", "Richardson", "Wood", "Watson", "Brooks",
	"Bennett", "Gray", "James", "Reyes", "Cruz", "Hughes", "Price",
	"Myers", "Long", "Foster", "Sanders", "Ross", "Morales", "Powell",
	"Sullivan", "Russell", "Ortiz", "Jenkins", "Gutierrez", "Perry",
	"Butler", "Barnes", "Fisher", "Lindqvist", "Johansson", "Eriksson",
	"Nilsson", "Larsson", "Kowalski", "Nowak", "Wisniewski", "Mazur",
	"Yilmaz", "Kaya", "Demir", "Celik", "Arslan", "Kim", "Park", "Choi",
	"Jung", "Kang", "Santos", "Silva", "Oliveira", "Souza", "Pereira",
	"Costa", "Okonkwo", "Abara", "Chukwu", "Keita", "Traore",
}

// countrySpec places a country under a continent facet and provides its
// demonym plus a few city names. Cities become place entities; a handful
// of world cities are promoted to facet terms in builder.go.
type countrySpec struct {
	name      string
	continent string // display name of the continent facet node
	demonym   string
	cities    []string
}

var countries = []countrySpec{
	{"France", "Europe", "french", []string{"Paris", "Lyon", "Marseille"}},
	{"Germany", "Europe", "german", []string{"Berlin", "Munich", "Hamburg"}},
	{"Italy", "Europe", "italian", []string{"Rome", "Milan", "Naples"}},
	{"Spain", "Europe", "spanish", []string{"Madrid", "Barcelona", "Seville"}},
	{"United Kingdom", "Europe", "british", []string{"London", "Manchester", "Edinburgh"}},
	{"Ireland", "Europe", "irish", []string{"Dublin", "Cork"}},
	{"Portugal", "Europe", "portuguese", []string{"Lisbon", "Porto"}},
	{"Netherlands", "Europe", "dutch", []string{"Amsterdam", "Rotterdam"}},
	{"Belgium", "Europe", "belgian", []string{"Brussels", "Antwerp"}},
	{"Switzerland", "Europe", "swiss", []string{"Zurich", "Geneva"}},
	{"Austria", "Europe", "austrian", []string{"Vienna", "Salzburg"}},
	{"Sweden", "Europe", "swedish", []string{"Stockholm", "Gothenburg"}},
	{"Norway", "Europe", "norwegian", []string{"Oslo", "Bergen"}},
	{"Denmark", "Europe", "danish", []string{"Copenhagen", "Aarhus"}},
	{"Finland", "Europe", "finnish", []string{"Helsinki", "Tampere"}},
	{"Poland", "Europe", "polish", []string{"Warsaw", "Krakow"}},
	{"Czech Republic", "Europe", "czech", []string{"Prague", "Brno"}},
	{"Hungary", "Europe", "hungarian", []string{"Budapest", "Debrecen"}},
	{"Greece", "Europe", "greek", []string{"Athens", "Thessaloniki"}},
	{"Romania", "Europe", "romanian", []string{"Bucharest", "Cluj"}},
	{"Bulgaria", "Europe", "bulgarian", []string{"Sofia", "Plovdiv"}},
	{"Croatia", "Europe", "croatian", []string{"Zagreb", "Split"}},
	{"Serbia", "Europe", "serbian", []string{"Belgrade", "Novi Sad"}},
	{"Ukraine", "Europe", "ukrainian", []string{"Kiev", "Lviv"}},
	{"Russia", "Europe", "russian", []string{"Moscow", "Saint Petersburg", "Novosibirsk"}},
	{"China", "Asia", "chinese", []string{"Beijing", "Shanghai", "Guangzhou"}},
	{"Japan", "Asia", "japanese", []string{"Tokyo", "Osaka", "Kyoto"}},
	{"South Korea", "Asia", "korean", []string{"Seoul", "Busan"}},
	{"North Korea", "Asia", "korean", []string{"Pyongyang"}},
	{"India", "Asia", "indian", []string{"Delhi", "Mumbai", "Bangalore"}},
	{"Pakistan", "Asia", "pakistani", []string{"Karachi", "Lahore", "Islamabad"}},
	{"Bangladesh", "Asia", "bangladeshi", []string{"Dhaka", "Chittagong"}},
	{"Indonesia", "Asia", "indonesian", []string{"Jakarta", "Surabaya"}},
	{"Malaysia", "Asia", "malaysian", []string{"Kuala Lumpur", "Penang"}},
	{"Thailand", "Asia", "thai", []string{"Bangkok", "Chiang Mai"}},
	{"Vietnam", "Asia", "vietnamese", []string{"Hanoi", "Ho Chi Minh City"}},
	{"Philippines", "Asia", "filipino", []string{"Manila", "Cebu"}},
	{"Singapore", "Asia", "singaporean", []string{"Singapore City"}},
	{"Taiwan", "Asia", "taiwanese", []string{"Taipei", "Kaohsiung"}},
	{"Mongolia", "Asia", "mongolian", []string{"Ulaanbaatar"}},
	{"Kazakhstan", "Asia", "kazakh", []string{"Almaty", "Astana"}},
	{"Afghanistan", "Asia", "afghan", []string{"Kabul", "Kandahar"}},
	{"Nepal", "Asia", "nepalese", []string{"Kathmandu"}},
	{"Sri Lanka", "Asia", "sri lankan", []string{"Colombo", "Kandy"}},
	{"Myanmar", "Asia", "burmese", []string{"Yangon", "Mandalay"}},
	{"Iraq", "Middle East", "iraqi", []string{"Baghdad", "Basra", "Mosul"}},
	{"Iran", "Middle East", "iranian", []string{"Tehran", "Isfahan"}},
	{"Israel", "Middle East", "israeli", []string{"Jerusalem", "Tel Aviv"}},
	{"Jordan", "Middle East", "jordanian", []string{"Amman"}},
	{"Lebanon", "Middle East", "lebanese", []string{"Beirut"}},
	{"Syria", "Middle East", "syrian", []string{"Damascus", "Aleppo"}},
	{"Saudi Arabia", "Middle East", "saudi", []string{"Riyadh", "Jeddah"}},
	{"Turkey", "Middle East", "turkish", []string{"Istanbul", "Ankara"}},
	{"Egypt", "Middle East", "egyptian", []string{"Cairo", "Alexandria"}},
	{"Kuwait", "Middle East", "kuwaiti", []string{"Kuwait City"}},
	{"Qatar", "Middle East", "qatari", []string{"Doha"}},
	{"United Arab Emirates", "Middle East", "emirati", []string{"Dubai", "Abu Dhabi"}},
	{"Yemen", "Middle East", "yemeni", []string{"Sanaa"}},
	{"Nigeria", "Africa", "nigerian", []string{"Lagos", "Abuja", "Kano"}},
	{"South Africa", "Africa", "south african", []string{"Johannesburg", "Cape Town", "Durban"}},
	{"Kenya", "Africa", "kenyan", []string{"Nairobi", "Mombasa"}},
	{"Ethiopia", "Africa", "ethiopian", []string{"Addis Ababa"}},
	{"Ghana", "Africa", "ghanaian", []string{"Accra", "Kumasi"}},
	{"Senegal", "Africa", "senegalese", []string{"Dakar"}},
	{"Morocco", "Africa", "moroccan", []string{"Casablanca", "Rabat"}},
	{"Algeria", "Africa", "algerian", []string{"Algiers", "Oran"}},
	{"Tunisia", "Africa", "tunisian", []string{"Tunis"}},
	{"Libya", "Africa", "libyan", []string{"Tripoli", "Benghazi"}},
	{"Sudan", "Africa", "sudanese", []string{"Khartoum", "Darfur"}},
	{"Tanzania", "Africa", "tanzanian", []string{"Dar es Salaam", "Dodoma"}},
	{"Uganda", "Africa", "ugandan", []string{"Kampala"}},
	{"Zimbabwe", "Africa", "zimbabwean", []string{"Harare", "Bulawayo"}},
	{"Mozambique", "Africa", "mozambican", []string{"Maputo"}},
	{"Angola", "Africa", "angolan", []string{"Luanda"}},
	{"Congo", "Africa", "congolese", []string{"Kinshasa", "Lubumbashi"}},
	{"Mali", "Africa", "malian", []string{"Bamako", "Timbuktu"}},
	{"United States", "North America", "american", []string{"New York", "Washington", "Los Angeles", "Chicago", "Boston", "Houston", "San Francisco", "Seattle", "Miami", "Atlanta", "Philadelphia", "Detroit", "Dallas", "Denver", "Phoenix", "Baltimore", "Minneapolis", "New Orleans"}},
	{"Canada", "North America", "canadian", []string{"Toronto", "Montreal", "Vancouver", "Ottawa"}},
	{"Mexico", "North America", "mexican", []string{"Mexico City", "Guadalajara", "Monterrey"}},
	{"Cuba", "North America", "cuban", []string{"Havana"}},
	{"Guatemala", "North America", "guatemalan", []string{"Guatemala City"}},
	{"Panama", "North America", "panamanian", []string{"Panama City"}},
	{"Haiti", "North America", "haitian", []string{"Port-au-Prince"}},
	{"Jamaica", "North America", "jamaican", []string{"Kingston"}},
	{"Brazil", "South America", "brazilian", []string{"Sao Paulo", "Rio de Janeiro", "Brasilia"}},
	{"Argentina", "South America", "argentine", []string{"Buenos Aires", "Cordoba"}},
	{"Chile", "South America", "chilean", []string{"Santiago", "Valparaiso"}},
	{"Colombia", "South America", "colombian", []string{"Bogota", "Medellin"}},
	{"Peru", "South America", "peruvian", []string{"Lima", "Cusco"}},
	{"Venezuela", "South America", "venezuelan", []string{"Caracas", "Maracaibo"}},
	{"Ecuador", "South America", "ecuadorian", []string{"Quito", "Guayaquil"}},
	{"Bolivia", "South America", "bolivian", []string{"La Paz", "Sucre"}},
	{"Uruguay", "South America", "uruguayan", []string{"Montevideo"}},
	{"Australia", "Oceania", "australian", []string{"Sydney", "Melbourne", "Canberra", "Perth"}},
	{"New Zealand", "Oceania", "new zealander", []string{"Auckland", "Wellington"}},
	{"Fiji", "Oceania", "fijian", []string{"Suva"}},
}

// countryVariants are alternative names for countries, mirroring the
// redirect-rich entries real Wikipedia has for states.
var countryVariants = map[string][]string{
	"United States":        {"America", "USA", "U.S.", "United States of America"},
	"United Kingdom":       {"Britain", "UK", "Great Britain"},
	"Russia":               {"Russian Federation"},
	"China":                {"People's Republic of China", "PRC"},
	"Germany":              {"Federal Republic of Germany"},
	"South Korea":          {"Republic of Korea"},
	"North Korea":          {"DPRK"},
	"Netherlands":          {"Holland"},
	"United Arab Emirates": {"UAE", "Emirates"},
	"Congo":                {"DRC", "Democratic Republic of Congo"},
	"Myanmar":              {"Burma"},
	"Czech Republic":       {"Czechia"},
	"Switzerland":          {"Swiss Confederation"},
	"Egypt":                {"Arab Republic of Egypt"},
	"Iran":                 {"Islamic Republic of Iran", "Persia"},
	"Saudi Arabia":         {"Kingdom of Saudi Arabia"},
	"Mexico":               {"United Mexican States"},
	"Brazil":               {"Federative Republic of Brazil"},
	"Australia":            {"Commonwealth of Australia"},
	"India":                {"Republic of India", "Bharat"},
	"Japan":                {"Nippon"},
	"France":               {"French Republic"},
	"Italy":                {"Italian Republic"},
	"Spain":                {"Kingdom of Spain"},
	"Greece":               {"Hellenic Republic", "Hellas"},
}

// facetVariants are alternative names for non-geographic facet terms
// (Wikipedia redirects like "Politicians" → "Political Leaders").
var facetVariants = map[string][]string{
	"Political Leaders": {"Politicians", "Statesmen"},
	"Business Leaders":  {"Executives", "Business People"},
	"Military Leaders":  {"Military Officers"},
	"Religious Leaders": {"Clergy"},
	"Corporations":      {"Companies", "Firms"},
	"Natural Disasters": {"Catastrophes"},
	"Elections":         {"Polls"},
	"Films":             {"Movies"},
	"Film":              {"Movies", "Cinema"},
	"Soccer":            {"Association Football"},
	"Universities":      {"Colleges"},
	"Wars":              {"Armed Conflicts"},
	"Stock Markets":     {"Stock Exchanges"},
	"Climate Change":    {"Global Warming"},
	"Terrorism":         {"Terror Attacks"},
	"Labor":             {"Labour", "Organized Labor"},
	"Medicine":          {"Medical Science"},
	"Internet":          {"World Wide Web"},
	"Space Exploration": {"Spaceflight"},
	"Immigration":       {"Migration"},
	"Civil Unrest":      {"Riots"},
	"Real Estate":       {"Property Market"},
	"New York":          {"New York City", "NYC"},
	"Los Angeles":       {"LA"},
	"Washington":        {"Washington DC"},
}

// facetCities are world cities promoted to facet terms in their own right
// (the paper's Figure 4 lists "new york" among annotator facet terms).
var facetCities = map[string]bool{
	"New York": true, "Washington": true, "London": true, "Paris": true,
	"Tokyo": true, "Beijing": true, "Moscow": true, "Berlin": true,
	"Baghdad": true, "Jerusalem": true, "Rome": true, "Los Angeles": true,
	"Chicago": true, "Hong Kong": true, "Mumbai": true, "Cairo": true,
}

// Organization name material.
var orgNameA = []string{
	"Global", "United", "National", "First", "Pacific", "Atlantic",
	"Continental", "General", "Northern", "Southern", "Eastern",
	"Western", "Advanced", "Allied", "Integrated", "Premier", "Summit",
	"Pinnacle", "Horizon", "Vanguard", "Meridian", "Sterling", "Apex",
	"Crescent", "Beacon", "Cascade", "Granite", "Ironwood", "Silverline",
	"Bluepeak", "Redstone", "Clearwater", "Brightfield", "Stonebridge",
	"Fairview", "Oakmont", "Lakeshore", "Riverside", "Hillcrest",
	"Kingsway", "Broadline", "Centara", "Novara", "Arcadia", "Solaris",
	"Lumina", "Vertex", "Quantum", "Stellar", "Orion", "Polaris",
	"Zenith", "Equinox", "Aurora", "Titan", "Atlas", "Nimbus",
}

var orgNameB = map[string][]string{
	"Technology Companies":     {"Systems", "Technologies", "Software", "Computing", "Networks", "Digital", "Microsystems", "Semiconductors", "Data", "Robotics"},
	"Financial Companies":      {"Bank", "Capital", "Financial", "Holdings", "Securities", "Trust", "Investments", "Partners", "Asset Management", "Credit"},
	"Energy Companies":         {"Energy", "Petroleum", "Oil", "Gas", "Power", "Resources", "Drilling", "Utilities", "Solar", "Fuels"},
	"Media Companies":          {"Media", "Broadcasting", "Communications", "Publishing", "Entertainment", "Studios", "Press", "Cable", "News Network", "Pictures"},
	"Retail Companies":         {"Stores", "Retail", "Markets", "Outfitters", "Merchants", "Emporium", "Supply", "Wholesale", "Goods", "Mart"},
	"Automotive Companies":     {"Motors", "Automotive", "Auto Works", "Vehicles", "Motor Group", "Carriage", "Drivetrain", "Mobility", "Wheels", "Engines"},
	"Pharmaceutical Companies": {"Pharmaceuticals", "Therapeutics", "Biosciences", "Labs", "Biotech", "Genomics", "Medical", "Health Sciences", "Remedies", "Diagnostics"},
	"Airlines":                 {"Airlines", "Airways", "Air", "Aviation", "Jet", "Skyways", "Air Express", "Air Lines", "Wings", "Flights"},
}

var orgSuffixes = []string{"Inc", "Corp", "Group", "Ltd", "Co"}

var universityPatterns = []string{
	"University of %s", "%s University", "%s State University",
	"%s Institute of Technology", "%s College",
}

var intlOrgs = []struct {
	name     string
	variants []string
	words    []string
}{
	{"United Nations", []string{"UN", "U.N."}, []string{"resolution", "security", "council", "assembly"}},
	{"World Bank", nil, []string{"loans", "development", "aid"}},
	{"International Monetary Fund", []string{"IMF"}, []string{"bailout", "austerity", "lending"}},
	{"World Trade Organization", []string{"WTO"}, []string{"tariffs", "disputes", "rounds"}},
	{"World Health Organization", []string{"WHO"}, []string{"epidemic", "vaccination", "outbreak"}},
	{"North Atlantic Treaty Organization", []string{"NATO"}, []string{"alliance", "deployment", "defense"}},
	{"European Union", []string{"EU", "E.U."}, []string{"commission", "directive", "integration"}},
	{"African Union", []string{"AU"}, []string{"mediation", "charter"}},
	{"Organization of Petroleum Exporting Countries", []string{"OPEC"}, []string{"quotas", "barrels", "output"}},
	{"International Committee of the Red Cross", []string{"Red Cross", "ICRC"}, []string{"humanitarian", "relief", "aid"}},
	{"International Atomic Energy Agency", []string{"IAEA"}, []string{"inspections", "enrichment", "safeguards"}},
	{"International Criminal Court", []string{"ICC"}, []string{"indictment", "tribunal", "prosecution"}},
	{"Association of Southeast Asian Nations", []string{"ASEAN"}, []string{"bloc", "cooperation"}},
	{"Organization for Economic Cooperation and Development", []string{"OECD"}, []string{"reports", "indicators"}},
	{"Amnesty International", nil, []string{"prisoners", "rights", "campaigns"}},
	{"Doctors Without Borders", []string{"Medecins Sans Frontieres", "MSF"}, []string{"clinics", "relief", "emergency"}},
	{"Greenpeace", nil, []string{"activists", "whaling", "campaigns"}},
	{"Interpol", nil, []string{"warrants", "fugitives"}},
	{"UNESCO", nil, []string{"heritage", "sites", "culture"}},
	{"UNICEF", nil, []string{"children", "immunization", "relief"}},
}

var govAgencies = []struct {
	name     string
	variants []string
	country  string
	words    []string
}{
	{"Federal Bureau of Investigation", []string{"FBI", "F.B.I."}, "United States", []string{"agents", "probe", "warrant"}},
	{"Central Intelligence Agency", []string{"CIA", "C.I.A."}, "United States", []string{"intelligence", "covert", "analysts"}},
	{"Federal Reserve", []string{"Fed"}, "United States", []string{"rates", "monetary", "inflation"}},
	{"Securities and Exchange Commission", []string{"SEC", "S.E.C."}, "United States", []string{"filings", "enforcement", "disclosure"}},
	{"Food and Drug Administration", []string{"FDA", "F.D.A."}, "United States", []string{"approval", "recall", "labeling"}},
	{"Environmental Protection Agency", []string{"EPA", "E.P.A."}, "United States", []string{"emissions", "standards", "cleanup"}},
	{"National Aeronautics and Space Administration", []string{"NASA"}, "United States", []string{"shuttle", "launch", "mission"}},
	{"Department of Homeland Security", []string{"Homeland Security"}, "United States", []string{"alerts", "screening", "borders"}},
	{"Department of Defense", []string{"Pentagon"}, "United States", []string{"contracts", "deployment", "briefing"}},
	{"Department of Justice", []string{"Justice Department"}, "United States", []string{"prosecutors", "indictments", "antitrust"}},
	{"Internal Revenue Service", []string{"IRS", "I.R.S."}, "United States", []string{"returns", "audits", "refunds"}},
	{"Centers for Disease Control", []string{"CDC", "C.D.C."}, "United States", []string{"outbreak", "surveillance", "advisory"}},
	{"Scotland Yard", nil, "United Kingdom", []string{"detectives", "inquiry"}},
	{"Bank of England", nil, "United Kingdom", []string{"rates", "sterling", "policy"}},
	{"European Central Bank", []string{"ECB"}, "Germany", []string{"euro", "rates", "bonds"}},
	{"Bank of Japan", nil, "Japan", []string{"yen", "easing", "policy"}},
}

var museumNames = []string{
	"Metropolitan Museum of Art", "Museum of Modern Art", "Louvre",
	"British Museum", "National Gallery", "Guggenheim Museum",
	"Smithsonian Institution", "Hermitage Museum", "Prado Museum",
	"Uffizi Gallery", "Rijksmuseum", "Tate Modern",
}

// Sports league / team material.
var teamCityPool = []string{
	"New York", "Boston", "Chicago", "Los Angeles", "Houston", "Dallas",
	"Seattle", "Denver", "Miami", "Atlanta", "Detroit", "Phoenix",
	"Cleveland", "Oakland", "Baltimore", "Philadelphia", "Toronto",
	"Minnesota", "Pittsburgh", "Cincinnati", "Kansas City", "San Diego",
}

var teamMascots = map[string][]string{
	"Baseball":   {"Hawks", "Pioneers", "Mariners", "Senators", "Cougars", "Comets", "Captains", "Forgers"},
	"Football":   {"Chargers", "Stallions", "Guardians", "Wolves", "Thunder", "Knights", "Raptors", "Outlaws"},
	"Basketball": {"Flyers", "Blazers", "Storm", "Royals", "Spartans", "Cyclones", "Jets", "Monarchs"},
	"Hockey":     {"Icebreakers", "Penguins", "Frost", "Avalanche", "Sabers", "Polar Bears", "Glaciers", "Blizzard"},
	"Soccer":     {"United", "City", "Rovers", "Athletic", "Rangers", "Wanderers", "Dynamo", "Real"},
}
