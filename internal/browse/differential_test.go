package browse

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/hierarchy"
	"repro/internal/textdb"
)

// datedFixture builds a corpus with dates so the differential suite can
// exercise the binary-searched date index alongside facets and keywords.
func datedFixture(t *testing.T) *Interface {
	t.Helper()
	corpus := textdb.NewCorpus()
	day := func(d int) time.Time { return time.Date(2008, 1, d, 0, 0, 0, 0, time.UTC) }
	docs := []struct {
		text string
		d    int
	}{
		{"chirac spoke in paris about the budget", 1},
		{"berlin hosted a summit on trade", 2},
		{"the election in france drew crowds", 2}, // shares a date with doc 1
		{"a baseball game in boston went long", 3},
		{"soccer fans filled the stadium in london", 4},
		{"markets rallied while paris stayed quiet", 5},
		{"paris fashion week opened with soccer celebrities", 5},
		{"trade talks in berlin stalled over budget lines", 6},
	}
	for _, d := range docs {
		corpus.Add(&textdb.Document{Title: "t", Source: "s", Date: day(d.d), Text: d.text})
	}
	terms := []string{"europe", "france", "germany", "sports", "baseball", "soccer"}
	docTerms := [][]string{
		{"europe", "france"},
		{"europe", "germany"},
		{"europe", "france"},
		{"sports", "baseball"},
		{"sports", "soccer"},
		{"europe", "france"},
		{"europe", "france", "soccer", "sports"},
		{"europe", "germany"},
	}
	forest, err := hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(corpus, forest, docTerms)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// differentialSelections enumerates the selection shapes the suite
// compares: facet conjunctions, keyword queries (including the
// normalization edge cases), date ranges, and combinations.
func differentialSelections() []Selection {
	day := func(d int) time.Time { return time.Date(2008, 1, d, 0, 0, 0, 0, time.UTC) }
	return []Selection{
		{},
		{Terms: []string{"europe"}},
		{Terms: []string{"france"}},
		{Terms: []string{"sports"}},
		{Terms: []string{"europe", "france"}},
		{Terms: []string{"europe", "sports"}},
		{Terms: []string{"europe", "france", "soccer"}},
		{Terms: []string{"no-such-facet"}},
		{Terms: []string{"europe", "no-such-facet"}},
		{Query: "paris"},
		{Query: "paris budget"},
		{Query: "the"},        // stopword-only: normalizes to nothing
		{Query: "zzzzz"},      // token absent from the dictionary
		{Query: "paris zzzz"}, // one known + one unknown token
		{From: day(2)},
		{To: day(4)},
		{From: day(2), To: day(5)},
		{From: day(5), To: day(2)}, // inverted: empty range
		{From: day(2), To: day(2)}, // From inclusive, To exclusive: empty
		{Terms: []string{"europe"}, Query: "paris", From: day(1), To: day(6)},
		{Terms: []string{"sports"}, From: day(4)},
		{Terms: []string{"france"}, Query: "budget"},
	}
}

// TestDifferentialIndexedVsNaive compares every indexed answer — cold,
// then cached — against the full-scan reference implementation.
func TestDifferentialIndexedVsNaive(t *testing.T) {
	b := datedFixture(t)
	parents := []string{""}
	b.Forest().Walk(func(n *hierarchy.Node, _ int) { parents = append(parents, n.Term) })
	for i, sel := range differentialSelections() {
		name := fmt.Sprintf("sel%02d", i)
		wantDocs := b.ScanDocs(sel)
		wantCount := b.ScanMatchCount(sel)
		for pass, label := range []string{"cold", "cached"} {
			_ = pass
			if got := b.Docs(sel); !sameDocs(got, wantDocs) {
				t.Errorf("%s/%s: Docs = %v, naive scan = %v (sel %+v)", name, label, got, wantDocs, sel)
			}
			if got := b.MatchCount(sel); got != wantCount {
				t.Errorf("%s/%s: MatchCount = %d, naive scan = %d (sel %+v)", name, label, got, wantCount, sel)
			}
		}
		for _, parent := range parents {
			want := b.ScanChildren(parent, sel)
			if got := b.Children(parent, sel); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Children(%q) = %v, naive scan = %v (sel %+v)", name, parent, got, want, sel)
			}
		}
	}
}

// TestDifferentialConcurrent hammers the cache from many goroutines while
// comparing against precomputed naive answers; run under -race this
// proves the cached read path is safe for concurrent serving.
func TestDifferentialConcurrent(t *testing.T) {
	b := datedFixture(t)
	sels := differentialSelections()
	want := make([][]textdb.DocID, len(sels))
	for i, sel := range sels {
		want[i] = b.ScanDocs(sel)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (g + rep) % len(sels)
				if got := b.Docs(sels[i]); !sameDocs(got, want[i]) {
					select {
					case errs <- fmt.Errorf("goroutine %d sel %d: got %v want %v", g, i, got, want[i]):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// sameDocs treats nil and empty as equal (the indexed path returns an
// empty non-nil slice, the scanner returns nil).
func sameDocs(a, b []textdb.DocID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRehydrateMatchesBuild proves the warm-start constructor yields an
// engine answering identically to a from-scratch Build.
func TestRehydrateMatchesBuild(t *testing.T) {
	built := datedFixture(t)
	re, err := Rehydrate(built.Corpus(), built.Forest(), built.DocTermRows(), built.Postings())
	if err != nil {
		t.Fatal(err)
	}
	for i, sel := range differentialSelections() {
		if got, want := re.Docs(sel), built.Docs(sel); !sameDocs(got, want) {
			t.Errorf("sel%02d: rehydrated Docs = %v, built = %v", i, got, want)
		}
	}
}

// TestRehydrateValidation: missing or mis-sized posting lists must be
// rejected rather than silently serving wrong answers.
func TestRehydrateValidation(t *testing.T) {
	built := datedFixture(t)
	missing := built.Postings()
	var anyTerm string
	for term := range missing {
		anyTerm = term
		break
	}
	delete(missing, anyTerm)
	if _, err := Rehydrate(built.Corpus(), built.Forest(), built.DocTermRows(), missing); err == nil {
		t.Fatal("Rehydrate accepted postings with a missing term")
	}
	short := built.Postings()
	short[anyTerm] = bitset.New(built.Corpus().Len() - 1)
	if _, err := Rehydrate(built.Corpus(), built.Forest(), built.DocTermRows(), short); err == nil {
		t.Fatal("Rehydrate accepted a posting list of the wrong capacity")
	}
}
