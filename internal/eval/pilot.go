package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hierarchy"
	"repro/internal/mturk"
	"repro/internal/ontology"
	"repro/internal/textdb"
)

// PilotResult reproduces Table I: the facets identified by human
// annotators in the pilot study, grouped as top-level facets with
// prominent sub-facets, plus the fraction of annotator facet terms that
// never occur in their stories (the paper's 65% observation).
type PilotResult struct {
	Facets      []PilotFacet
	MissingRate float64 // fraction of validated facet terms absent from the story text
	NumStories  int
}

// PilotFacet is one row of Table I.
type PilotFacet struct {
	Name      string
	SubFacets []string
	Count     int // stories annotated with the facet (or a descendant)
}

// PilotStudy simulates the Section III pilot: annotators tag a story
// sample, validated terms are mapped to their facet roots, and the most
// common roots (with their most common sub-facets) are reported.
func PilotStudy(dr *DataRun, sampleSize int, topFacets, topSubs int) *PilotResult {
	if sampleSize == 0 {
		sampleSize = 1000
	}
	if topFacets == 0 {
		topFacets = 9
	}
	if topSubs == 0 {
		topSubs = 2
	}
	idx := dr.SampleIndices(sampleSize)
	gt := dr.Pool.BuildGroundTruth(dr.DS, idx)

	kb := dr.Lab.KB
	rootCount := map[ontology.ConceptID]int{}
	subCount := map[ontology.ConceptID]map[ontology.ConceptID]int{}
	var missing, total int
	for gi, storyIdx := range idx {
		text := strings.ToLower(dr.DS.Corpus.Doc(textdb.DocID(storyIdx)).Title + " " + dr.DS.Corpus.Doc(textdb.DocID(storyIdx)).Text)
		seenRoot := map[ontology.ConceptID]bool{}
		for _, term := range gt.Stories[gi] {
			total++
			if !strings.Contains(text, term) {
				missing++
			}
			c, ok := kb.ByName(term)
			if !ok {
				continue
			}
			root := kb.Root(c.ID)
			if root == ontology.None {
				continue
			}
			if !seenRoot[root] {
				seenRoot[root] = true
				rootCount[root]++
			}
			// Sub-facet: the nearest ancestor (or the concept itself)
			// sitting directly under the root.
			if c.ID != root {
				sub := nearestChildOfRoot(kb, c.ID, root)
				if sub != ontology.None {
					if subCount[root] == nil {
						subCount[root] = map[ontology.ConceptID]int{}
					}
					subCount[root][sub]++
				}
			}
		}
	}
	type rc struct {
		id ontology.ConceptID
		n  int
	}
	var roots []rc
	for id, n := range rootCount {
		roots = append(roots, rc{id, n})
	}
	sort.Slice(roots, func(a, b int) bool {
		if roots[a].n != roots[b].n {
			return roots[a].n > roots[b].n
		}
		return roots[a].id < roots[b].id
	})
	if len(roots) > topFacets {
		roots = roots[:topFacets]
	}
	res := &PilotResult{NumStories: len(idx)}
	if total > 0 {
		res.MissingRate = float64(missing) / float64(total)
	}
	for _, r := range roots {
		pf := PilotFacet{Name: kb.Concept(r.id).Display, Count: r.n}
		var subs []rc
		for id, n := range subCount[r.id] {
			subs = append(subs, rc{id, n})
		}
		sort.Slice(subs, func(a, b int) bool {
			if subs[a].n != subs[b].n {
				return subs[a].n > subs[b].n
			}
			return subs[a].id < subs[b].id
		})
		for i := 0; i < topSubs && i < len(subs); i++ {
			pf.SubFacets = append(pf.SubFacets, kb.Concept(subs[i].id).Display)
		}
		res.Facets = append(res.Facets, pf)
	}
	return res
}

// nearestChildOfRoot returns the facet ancestor of id (or id itself) that
// sits directly under root.
func nearestChildOfRoot(kb *ontology.KB, id, root ontology.ConceptID) ontology.ConceptID {
	check := func(c ontology.ConceptID) bool {
		for _, p := range kb.Concept(c).Parents {
			if p == root {
				return true
			}
		}
		return false
	}
	if check(id) {
		return id
	}
	for _, a := range kb.FacetAncestors(id) {
		if check(a) {
			return a
		}
	}
	return ontology.None
}

// Format renders the pilot result like Table I.
func (r *PilotResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Facets identified by annotators over %d stories (facet terms missing from text: %.0f%%)\n", r.NumStories, r.MissingRate*100)
	sb.WriteString("Facets\n------\n")
	for _, f := range r.Facets {
		fmt.Fprintf(&sb, "%s  (%d stories)\n", f.Name, f.Count)
		for _, s := range f.SubFacets {
			fmt.Fprintf(&sb, "  -> %s\n", s)
		}
	}
	return sb.String()
}

// Figure4 reproduces the paper's Figure 4: the most frequent facet terms
// selected by at least two annotators, across the ground-truth sample.
func Figure4(gt *mturk.GroundTruth, topN int) []string {
	if topN == 0 {
		topN = 80
	}
	counts := map[string]int{}
	for _, story := range gt.Stories {
		for _, t := range story {
			counts[t]++
		}
	}
	terms := make([]string, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(a, b int) bool {
		if counts[terms[a]] != counts[terms[b]] {
			return counts[terms[a]] > counts[terms[b]]
		}
		return terms[a] < terms[b]
	})
	if len(terms) > topN {
		terms = terms[:topN]
	}
	return terms
}

// Figure5 reproduces the paper's Figure 5: the terms a plain
// subsumption-based algorithm surfaces WITHOUT document expansion — the
// generic high-frequency vocabulary of the collection, demonstrating why
// expansion is necessary.
func Figure5(dr *DataRun, topN int) ([]string, *hierarchy.Forest, error) {
	if topN == 0 {
		topN = 25
	}
	corpus := dr.DS.Corpus
	// Document frequencies over the original database only.
	table := textdb.NewDFTable(corpus.Dict())
	for i := 0; i < corpus.Len(); i++ {
		table.AddDoc(corpus.DocTerms(textdb.DocID(i)))
	}
	minDF := corpus.Len() / 100
	if minDF < 2 {
		minDF = 2
	}
	top := table.TopTerms(topN, minDF)
	terms := make([]string, len(top))
	for i, id := range top {
		terms[i] = corpus.Dict().String(id)
	}
	docTerms := make([][]string, corpus.Len())
	termSet := map[string]bool{}
	for _, t := range terms {
		termSet[t] = true
	}
	for d := 0; d < corpus.Len(); d++ {
		for _, id := range corpus.DocTerms(textdb.DocID(d)) {
			if s := corpus.Dict().String(id); termSet[s] {
				docTerms[d] = append(docTerms[d], s)
			}
		}
	}
	forest, err := hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{})
	if err != nil {
		return nil, nil, err
	}
	return terms, forest, nil
}
