package serve

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/obsv"
	"repro/internal/overload"
)

// WithOverload enables adaptive admission control: every non-exempt
// route acquires a slot in the governor's limiter for its class before
// running, and is shed with a 429/503 + Retry-After (error code
// "overloaded") when the class is saturated. Probes (healthz, readyz)
// and metrics are exempt — an overloaded server must still be
// observable, and transient shedding must not flip readiness.
func WithOverload(gov *overload.Governor) Option {
	return func(s *Server) { s.gov = gov }
}

// Overload returns the governor admission control runs under (nil when
// disabled); cluster roles mounted on the same server reuse it so shard
// endpoints share the node's capacity accounting.
func (s *Server) Overload() *overload.Governor { return s.gov }

// classForRoute maps a route label to its admission class. The empty
// class means exempt: probes and metrics must answer precisely when the
// server is drowning, and the API fallback only writes 404s.
func classForRoute(route string) overload.Class {
	switch route {
	case "metrics", "healthz", "readyz", "api_unmatched":
		return ""
	case "cross", "cluster_cross":
		return overload.ClassExpensive
	case "ingest", "ingest_retry":
		return overload.ClassWrite
	default:
		return overload.ClassRead
	}
}

// instrument stacks the robustness middleware under the metrics
// wrapper: panic recovery outermost (a panic anywhere below becomes a
// 500 envelope instead of a killed connection), then deadline-budget
// parsing (so admission and the handler both see the caller's
// deadline), then admission control.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	h = Admission(s.gov, classForRoute(route), h)
	h = BudgetMiddleware(h)
	h = Recovery(s.metrics, h)
	return h
}

// Stable machine-readable error codes added by the overload layer.
const (
	// ErrCodeOverloaded marks a request shed by admission control or a
	// spent deadline budget — the server is healthy but out of
	// capacity, distinct from not_ready (a dependency is down).
	ErrCodeOverloaded = "overloaded"
	// ErrCodeInternal marks a recovered handler panic.
	ErrCodeInternal = "internal"
)

// WriteShed writes one shed response: Retry-After plus the unified
// envelope with code "overloaded". Reads shed with 503 (the server is
// momentarily out of capacity); writes shed with 429 (the producer
// should slow down).
func WriteShed(w http.ResponseWriter, status, retryAfterSeconds int, err error) {
	if retryAfterSeconds < 1 {
		retryAfterSeconds = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	WriteError(w, status, ErrCodeOverloaded, err)
}

// ShedStatus returns the HTTP status a shed request of the given class
// answers with.
func ShedStatus(class overload.Class) int {
	if class == overload.ClassWrite {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}

// Admission wraps next with the governor's admission control for one
// class. A nil governor or empty class is a no-op. The handler's
// observed service time is the latency sample driving the class's AIMD
// limit. Exported so the cluster coordinator applies the same policy to
// its scatter-gather routes.
func Admission(gov *overload.Governor, class overload.Class, next http.Handler) http.Handler {
	if gov == nil || class == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := gov.Acquire(r.Context(), class)
		if err != nil {
			WriteShed(w, ShedStatus(class), gov.RetryAfterSeconds(class), err)
			return
		}
		start := time.Now()
		defer func() { release(time.Since(start)) }()
		next.ServeHTTP(w, r)
	})
}

// BudgetMiddleware parses the X-Deadline-Budget request header into a
// context deadline, so every layer below — admission queues, ingest
// submission, coordinator fan-out — inherits the caller's remaining
// latency budget. A malformed budget is a 400; an absent one changes
// nothing. Exported so the cluster coordinator (its own mux) applies
// the identical semantics.
func BudgetMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw := r.Header.Get(overload.BudgetHeader)
		if raw == "" {
			next.ServeHTTP(w, r)
			return
		}
		budget, err := overload.ParseBudget(raw)
		if err != nil {
			badRequest(w, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// RemainingBudget reports how much of the request's deadline budget is
// left (false when the request carries no deadline). The coordinator
// uses it to shed before fanning out and to decrement the budget its
// shard sub-requests inherit.
func RemainingBudget(ctx context.Context) (time.Duration, bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	return time.Until(dl), true
}

// Recovery wraps next with a panic recovery barrier: the stack is
// logged, the http.panics counter incremented, and the client gets a
// 500 with the unified envelope instead of a severed connection. It
// sits inside the metrics wrapper, so the 500 still lands in the
// route's status counters.
func Recovery(reg *obsv.Registry, next http.Handler) http.Handler {
	var panics *obsv.Counter
	if reg != nil {
		panics = reg.Counter("http.panics")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if panics != nil {
				panics.Inc()
			}
			stack := strings.TrimSpace(string(debug.Stack()))
			log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, stack)
			// Best effort: if the handler already wrote a status line the
			// envelope below lands mid-body, but the connection survives
			// either way.
			WriteError(w, http.StatusInternalServerError, ErrCodeInternal,
				fmt.Errorf("internal error serving %s", r.URL.Path))
		}()
		next.ServeHTTP(w, r)
	})
}
