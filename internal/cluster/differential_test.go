package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/browse"
	"repro/internal/hierarchy"
	"repro/internal/resilient"
	"repro/internal/serve"
	"repro/internal/textdb"
)

// clusterFixture builds a corpus big enough that a 3-way consistent-hash
// partition puts a meaningful slice on every shard, with facet terms in
// subsumption relationships (so the forest has depth), spread dates, and
// keyword-bearing text.
func clusterFixture(t testing.TB, nDocs int) *browse.Interface {
	t.Helper()
	cities := []string{"paris", "berlin", "boston", "london", "madrid"}
	topics := []string{"budget", "trade", "election", "stadium", "markets", "tour"}
	groups := [][]string{
		{"europe", "france"},
		{"europe", "germany"},
		{"sports", "baseball"},
		{"sports", "soccer"},
		{"europe", "france", "sports", "soccer"},
		{"europe"},
	}
	corpus := textdb.NewCorpus()
	docTerms := make([][]string, 0, nDocs)
	base := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < nDocs; i++ {
		text := fmt.Sprintf("%s dispatch about the %s and the %s in %s",
			cities[i%len(cities)], topics[i%len(topics)], topics[(i*2+1)%len(topics)], cities[(i+2)%len(cities)])
		corpus.Add(&textdb.Document{
			Title:  fmt.Sprintf("story %03d", i),
			Source: []string{"wire", "paper"}[i%2],
			Date:   base.AddDate(0, 0, i%11),
			Text:   text,
		})
		docTerms = append(docTerms, groups[i%len(groups)])
	}
	terms := []string{"europe", "france", "germany", "sports", "baseball", "soccer"}
	forest, err := hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	iface, err := browse.Build(corpus, forest, docTerms)
	if err != nil {
		t.Fatal(err)
	}
	iface.SetEpoch(1)
	return iface
}

// clusterTopology is a full in-process cluster: one single-node server
// over the whole corpus (the oracle), three shard servers over the
// ring's partition, and a coordinator fanning out to them.
type clusterTopology struct {
	single    *httptest.Server
	shardSrvs []*httptest.Server
	shards    []*Shard
	coord     *Coordinator
	coordSrv  *httptest.Server
}

func buildTopology(t testing.TB, iface *browse.Interface, cfg Config) *clusterTopology {
	t.Helper()
	names := []string{"shard-a", "shard-b", "shard-c"}
	ring, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	topo := &clusterTopology{}
	topo.single = httptest.NewServer(serve.New(iface, "single"))
	t.Cleanup(topo.single.Close)
	var peers []Peer
	for _, name := range names {
		sh, err := BuildShard(iface, ring, name)
		if err != nil {
			t.Fatal(err)
		}
		if sh.Len() == 0 {
			t.Fatalf("shard %s got an empty slice; grow the fixture", name)
		}
		srv := serve.New(sh.Interface(), name)
		sh.Register(srv)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		topo.shards = append(topo.shards, sh)
		topo.shardSrvs = append(topo.shardSrvs, ts)
		peers = append(peers, Peer{Name: name, BaseURL: ts.URL})
	}
	coord, err := NewCoordinator(peers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	topo.coord = coord
	topo.coordSrv = httptest.NewServer(coord)
	t.Cleanup(topo.coordSrv.Close)
	return topo
}

func fetchBytes(t testing.TB, base, pathAndQuery string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + pathAndQuery)
	if err != nil {
		t.Fatalf("GET %s: %v", pathAndQuery, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// differentialURLs enumerates the request shapes the suite compares:
// every public route crossed with facet selections, keyword queries,
// date ranges, limits, and the validation-error paths (whose 400 bodies
// must also be byte-identical).
func differentialURLs() []string {
	return []string{
		"/api/v1/facets",
		"/api/v1/facets?parent=europe",
		"/api/v1/facets?parent=sports",
		"/api/v1/facets?parent=no-such-facet",
		"/api/v1/facets?terms=europe",
		"/api/v1/facets?terms=europe,france",
		"/api/v1/facets?terms=no-such-facet",
		"/api/v1/facets?q=paris",
		"/api/v1/facets?q=paris+budget",
		"/api/v1/facets?q=zzzzz",
		"/api/v1/facets?limit=2",
		"/api/v1/facets?limit=1&parent=europe",
		"/api/v1/facets?from=2008-01-03&to=2008-01-07",
		"/api/v1/facets?terms=europe&q=paris&from=2008-01-02&to=2008-01-10",
		"/api/v1/facets?from=bogus",
		"/api/v1/facets?limit=0",
		"/api/v1/docs",
		"/api/v1/docs?limit=3",
		"/api/v1/docs?limit=500",
		"/api/v1/docs?terms=europe",
		"/api/v1/docs?terms=europe,soccer&limit=7",
		"/api/v1/docs?q=paris",
		"/api/v1/docs?q=paris+markets",
		"/api/v1/docs?q=zzzzz",
		"/api/v1/docs?from=2008-01-04",
		"/api/v1/docs?to=2008-01-04",
		"/api/v1/docs?from=2008-01-06&to=2008-01-03",
		"/api/v1/docs?terms=sports&q=stadium&limit=5",
		"/api/v1/docs?limit=9999",
		"/api/v1/dates",
		"/api/v1/dates?granularity=month",
		"/api/v1/dates?granularity=year",
		"/api/v1/dates?terms=europe",
		"/api/v1/dates?q=paris&granularity=day",
		"/api/v1/dates?granularity=fortnight",
		"/api/v1/cross?a=europe&b=sports",
		"/api/v1/cross?a=sports&b=europe",
		"/api/v1/cross?a=europe&b=sports&terms=france",
		"/api/v1/cross?a=europe&b=sports&q=paris",
		"/api/v1/cross?a=europe",
		"/api/v1/cross?a=no-such-facet&b=sports",
		"/api/v1/nonexistent",
	}
}

// TestDifferentialCoordinatorVsSingleNode is the tentpole proof: a
// 3-shard scatter-gather topology answers every request byte-identically
// to one node serving the whole corpus — status and body, success and
// error, cold and cached (each URL is fetched twice; the second hit
// exercises the shards' query caches).
func TestDifferentialCoordinatorVsSingleNode(t *testing.T) {
	iface := clusterFixture(t, 48)
	topo := buildTopology(t, iface, Config{Timeout: 10 * time.Second})
	for _, url := range differentialURLs() {
		for pass := 0; pass < 2; pass++ {
			wantStatus, wantBody := fetchBytes(t, topo.single.URL, url)
			gotStatus, gotBody := fetchBytes(t, topo.coordSrv.URL, url)
			if gotStatus != wantStatus {
				t.Errorf("%s (pass %d): status %d, single node %d", url, pass, gotStatus, wantStatus)
				continue
			}
			if string(gotBody) != string(wantBody) {
				t.Errorf("%s (pass %d): body diverges\ncoordinator: %s\nsingle node: %s",
					url, pass, gotBody, wantBody)
			}
		}
	}
}

// TestDifferentialShardCounts sanity-checks the partition itself: the
// shard slices are disjoint, exhaustive, and each shard's match count
// sums to the single node's.
func TestDifferentialShardCounts(t *testing.T) {
	iface := clusterFixture(t, 48)
	topo := buildTopology(t, iface, Config{Timeout: 10 * time.Second})
	totalDocs := 0
	for _, sh := range topo.shards {
		totalDocs += sh.Len()
	}
	if totalDocs != iface.Corpus().Len() {
		t.Fatalf("shards hold %d docs, corpus has %d", totalDocs, iface.Corpus().Len())
	}
	for _, sel := range []browse.Selection{
		{},
		{Terms: []string{"europe"}},
		{Terms: []string{"sports", "soccer"}},
		{Query: "paris"},
	} {
		sum := 0
		for _, sh := range topo.shards {
			sum += sh.Interface().MatchCount(sel)
		}
		if want := iface.MatchCount(sel); sum != want {
			t.Errorf("selection %+v: shard sum %d, single node %d", sel, sum, want)
		}
	}
}

// TestPartialResultsOneShardDown is the fault-injection differential:
// with one shard unreachable the coordinator still answers 200, the
// body carries an explicit degradation report naming the missing shard,
// and the merged counts equal the single node's minus exactly the dead
// shard's contribution — degraded, but honestly so.
func TestPartialResultsOneShardDown(t *testing.T) {
	iface := clusterFixture(t, 48)
	topo := buildTopology(t, iface, Config{
		Timeout: 10 * time.Second,
		// Threshold 1: the first refused connection opens the breaker, so
		// the test also covers the breaker-open shedding path on later
		// requests without needing retries to accumulate.
		Breaker: resilient.BreakerConfig{Threshold: 1, Cooldown: 1 << 20},
	})
	down := topo.shards[1]
	topo.shardSrvs[1].Close()

	status, body := fetchBytes(t, topo.coordSrv.URL, "/api/v1/facets")
	if status != http.StatusOK {
		t.Fatalf("one shard down: status %d, want 200 partial results; body %s", status, body)
	}
	var resp FacetsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded == nil {
		t.Fatalf("no degradation report in %s", body)
	}
	if resp.Degraded.ShardsTotal != 3 || len(resp.Degraded.MissingShards) != 1 ||
		resp.Degraded.MissingShards[0] != down.Name() {
		t.Fatalf("degradation report %+v, want exactly %q missing of 3", resp.Degraded, down.Name())
	}
	if resp.Degraded.Errors[down.Name()] == "" {
		t.Fatalf("degradation report carries no error for %s: %+v", down.Name(), resp.Degraded)
	}
	wantTotal := iface.MatchCount(browse.Selection{}) - down.Interface().MatchCount(browse.Selection{})
	if resp.Total != wantTotal {
		t.Fatalf("degraded total %d, want %d (whole corpus minus dead shard)", resp.Total, wantTotal)
	}

	// Docs: the surviving shards' documents, still in global id order.
	status, body = fetchBytes(t, topo.coordSrv.URL, "/api/v1/docs?limit=500")
	if status != http.StatusOK {
		t.Fatalf("docs with one shard down: status %d", status)
	}
	var docs DocsResponse
	if err := json.Unmarshal(body, &docs); err != nil {
		t.Fatal(err)
	}
	if docs.Degraded == nil || docs.Degraded.MissingShards[0] != down.Name() {
		t.Fatalf("docs degradation report %+v", docs.Degraded)
	}
	if want := iface.Corpus().Len() - down.Len(); docs.Total != want {
		t.Fatalf("degraded docs total %d, want %d", docs.Total, want)
	}
	for i := 1; i < len(docs.Docs); i++ {
		if docs.Docs[i-1].ID >= docs.Docs[i].ID {
			t.Fatalf("degraded docs not in ascending global order at %d", i)
		}
	}

	// Dates: degraded form wraps the bucket array and names the shard.
	status, body = fetchBytes(t, topo.coordSrv.URL, "/api/v1/dates")
	if status != http.StatusOK {
		t.Fatalf("dates with one shard down: status %d", status)
	}
	var dates DatesResponse
	if err := json.Unmarshal(body, &dates); err != nil {
		t.Fatal(err)
	}
	if dates.Degraded == nil || len(dates.Buckets) == 0 {
		t.Fatalf("dates degraded response %s", body)
	}

	// The breaker opened after the first refused connection, so readyz
	// now reports not-ready while queries keep serving partial results.
	status, body = fetchBytes(t, topo.coordSrv.URL, "/api/v1/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a tripped shard: status %d, body %s", status, body)
	}
	if !strings.Contains(string(body), down.Name()) {
		t.Fatalf("readyz does not name the tripped shard: %s", body)
	}

	// Metrics surface the degradation and the per-shard errors.
	snap := topo.coord.Metrics().Snapshot()
	raw, _ := json.Marshal(snap)
	if !strings.Contains(string(raw), "cluster.degraded_responses") {
		t.Fatalf("metrics snapshot missing degraded counter: %s", raw)
	}
}

// TestAllShardsDown: partial results need at least one answer; a full
// outage is an explicit 503, not an empty 200.
func TestAllShardsDown(t *testing.T) {
	iface := clusterFixture(t, 24)
	topo := buildTopology(t, iface, Config{Timeout: 10 * time.Second})
	for _, ts := range topo.shardSrvs {
		ts.Close()
	}
	status, body := fetchBytes(t, topo.coordSrv.URL, "/api/v1/facets")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all shards down: status %d, body %s", status, body)
	}
	var envelope struct {
		Error serve.ErrorDetail `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != serve.ErrCodeUnavailable {
		t.Fatalf("error code %q, want %q", envelope.Error.Code, serve.ErrCodeUnavailable)
	}
}

// TestParsePeers covers the -peers flag syntax.
func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:1, b=http://h2:2/,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].Name != "a" || peers[1].BaseURL != "http://h2:2" {
		t.Fatalf("peers = %+v", peers)
	}
	for _, bad := range []string{"", "nourl", "=http://h", "a="} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}
