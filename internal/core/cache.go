package core

import "sync"

// ResourceCache memoizes Context lookups per resource name, so that
// pipelines and evaluation harnesses sharing a cache across many
// configurations pay for each distinct (resource, term) query once — the
// offline precomputation strategy of Section V-D.
//
// The cache is safe for concurrent use: the parallel batch pipeline
// shares one instance across all derive-context workers. Entries are
// spread over sharded locks to keep hot-term lookups from serializing,
// and each entry carries a single-flight guard so a term that several
// workers miss simultaneously is derived exactly once — every other
// worker blocks on that first derivation and reuses its result.
type ResourceCache struct {
	shards [cacheShards]cacheShard
}

const cacheShards = 64

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

// cacheEntry is one (resource, term) slot; once guards the single
// derivation that fills ctx.
type cacheEntry struct {
	once sync.Once
	ctx  []string
}

// NewResourceCache returns an empty cache.
func NewResourceCache() *ResourceCache {
	c := &ResourceCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]*cacheEntry{}
	}
	return c
}

// Lookup queries the resource through the cache. Concurrent lookups of
// the same (resource, term) pair share one underlying Context call.
func (c *ResourceCache) Lookup(r Resource, term string) []string {
	key := r.Name() + "\x00" + term
	sh := &c.shards[fnv32a(key)%cacheShards]
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		e = &cacheEntry{}
		sh.m[key] = e
	}
	sh.mu.Unlock()
	e.once.Do(func() { e.ctx = r.Context(term) })
	return e.ctx
}

// Len returns the number of cached (resource, term) entries.
func (c *ResourceCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// fnv32a is the 32-bit FNV-1a hash, inlined to keep the shard selector
// allocation-free.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
