package eval

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/textdb"
)

// EfficiencyReport reproduces the Section V-D analysis: per-stage costs,
// separating real CPU time of the local algorithms from the virtual
// network time of the simulated web services (Yahoo Term Extraction at
// ~2.5 s/document, Google at ~1 s/query).
type EfficiencyReport struct {
	Docs int

	// Per-extractor cost over the sample.
	Extractors []StageCost
	// Per-resource cost of expanding the sample's important terms.
	Resources []StageCost

	// FacetSelection is the wall time of the Step-3 analysis ("extremely
	// fast — a few milliseconds" in the paper).
	FacetSelection time.Duration
	// HierarchyConstruction is the subsumption build time ("1-2 seconds").
	HierarchyConstruction time.Duration

	// LocalOnlyDocsPerSec: throughput of term extraction with only local
	// extractors (NE + Wikipedia) — the paper reports >100 docs/s.
	LocalOnlyDocsPerSec float64
}

// StageCost is one stage's measured cost.
type StageCost struct {
	Name        string
	CPUTime     time.Duration // real compute time over the sample
	VirtualTime time.Duration // simulated network latency charged
	Queries     int           // resource queries or documents processed
}

// PerDocTotal returns the effective per-document cost including virtual
// network time.
func (s StageCost) PerDocTotal(docs int) time.Duration {
	if docs == 0 {
		return 0
	}
	return (s.CPUTime + s.VirtualTime) / time.Duration(docs)
}

// Efficiency measures the pipeline stages over a document sample.
func Efficiency(dr *DataRun, sampleDocs int) (*EfficiencyReport, error) {
	if sampleDocs <= 0 || sampleDocs > dr.DS.Corpus.Len() {
		sampleDocs = dr.DS.Corpus.Len()
	}
	corpus := dr.DS.Corpus
	clock := dr.Lab.Clock
	rep := &EfficiencyReport{Docs: sampleDocs}

	texts := make([]string, sampleDocs)
	for i := 0; i < sampleDocs; i++ {
		doc := corpus.Doc(textdb.DocID(i))
		texts[i] = doc.Title + ". " + doc.Text
	}

	// Extractor stages.
	importantAll := make([][]string, sampleDocs)
	for _, name := range ExtractorOrder {
		ex := dr.Extractor(name)
		clock.Reset()
		start := time.Now()
		for i, text := range texts {
			terms := ex.Extract(text)
			importantAll[i] = append(importantAll[i], terms...)
		}
		rep.Extractors = append(rep.Extractors, StageCost{
			Name:        name,
			CPUTime:     time.Since(start),
			VirtualTime: clock.ServiceElapsed(name),
			Queries:     sampleDocs,
		})
	}

	// Local-only throughput (NE + Wikipedia, skipping the web service).
	start := time.Now()
	for _, text := range texts {
		dr.Extractor(ExtNE).Extract(text)
		dr.Extractor(ExtWikipedia).Extract(text)
	}
	localElapsed := time.Since(start)
	if localElapsed > 0 {
		rep.LocalOnlyDocsPerSec = float64(sampleDocs) / localElapsed.Seconds()
	}

	// Deduplicate important terms per doc for expansion.
	for i := range importantAll {
		seen := map[string]bool{}
		var ded []string
		for _, t := range importantAll[i] {
			if !seen[t] {
				seen[t] = true
				ded = append(ded, t)
			}
		}
		importantAll[i] = ded
	}

	// Resource stages: fresh cache so every distinct term costs a query.
	for _, name := range ResourceOrder {
		r := dr.Lab.Resource(name)
		clock.Reset()
		cache := core.NewResourceCache()
		start := time.Now()
		queries := 0
		seen := map[string]bool{}
		for _, terms := range importantAll {
			for _, t := range terms {
				if !seen[t] {
					seen[t] = true
					queries++
				}
				cache.Lookup(r, t)
			}
		}
		rep.Resources = append(rep.Resources, StageCost{
			Name:        name,
			CPUTime:     time.Since(start),
			VirtualTime: clock.ServiceElapsed(name),
			Queries:     queries,
		})
	}
	clock.Reset()

	// Facet selection (Step 3) on the sample with all resources.
	context := core.DeriveContext(importantAll, dr.Lab.Resources(ResourceOrder...), dr.Lab.cache)
	sub := subCorpus(corpus, sampleDocs)
	start = time.Now()
	result := core.Analyze(sub, context, 200)
	rep.FacetSelection = time.Since(start)

	// Hierarchy construction over the selected terms.
	terms := result.FacetTermStrings()
	docTerms := make([][]string, sampleDocs)
	termSet := map[string]bool{}
	for _, t := range terms {
		termSet[t] = true
	}
	for d := 0; d < sampleDocs; d++ {
		for _, id := range sub.DocTerms(textdb.DocID(d)) {
			if s := sub.Dict().String(id); termSet[s] {
				docTerms[d] = append(docTerms[d], s)
			}
		}
		for _, c := range context[d] {
			if termSet[c] {
				docTerms[d] = append(docTerms[d], c)
			}
		}
	}
	start = time.Now()
	if _, err := hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{}); err != nil {
		return nil, err
	}
	rep.HierarchyConstruction = time.Since(start)
	return rep, nil
}

// subCorpus views the first n documents of a corpus as a corpus sharing
// the same dictionary.
func subCorpus(c *textdb.Corpus, n int) *textdb.Corpus {
	if n >= c.Len() {
		return c
	}
	sub := textdb.NewCorpusSharing(c.Dict())
	for i := 0; i < n; i++ {
		d := *c.Doc(textdb.DocID(i))
		sub.Add(&d)
	}
	return sub
}

// Format renders the report.
func (r *EfficiencyReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Efficiency over %d documents\n\n", r.Docs)
	sb.WriteString("Term extractors (per-document cost, incl. simulated network time):\n")
	for _, s := range r.Extractors {
		fmt.Fprintf(&sb, "  %-12s cpu=%-12v net=%-12v per-doc=%v\n",
			s.Name, s.CPUTime.Round(time.Microsecond), s.VirtualTime, s.PerDocTotal(r.Docs).Round(time.Microsecond))
	}
	sb.WriteString("\nExternal resources (expansion of the sample's important terms):\n")
	for _, s := range r.Resources {
		per := time.Duration(0)
		if s.Queries > 0 {
			per = (s.CPUTime + s.VirtualTime) / time.Duration(s.Queries)
		}
		fmt.Fprintf(&sb, "  %-20s cpu=%-12v net=%-14v queries=%-6d per-query=%v\n",
			s.Name, s.CPUTime.Round(time.Microsecond), s.VirtualTime, s.Queries, per.Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, "\nFacet selection (Step 3): %v\n", r.FacetSelection.Round(time.Microsecond))
	fmt.Fprintf(&sb, "Hierarchy construction:   %v\n", r.HierarchyConstruction.Round(time.Microsecond))
	fmt.Fprintf(&sb, "Local-only extraction throughput: %.0f docs/s\n", r.LocalOnlyDocsPerSec)
	return sb.String()
}
