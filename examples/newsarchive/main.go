// Newsarchive: the paper's motivating scenario — a New York Times-style
// archive made explorable. Facets are extracted once over the archive,
// then a reader locates stories by combining facet navigation with
// keyword search, without knowing anything about the archive's structure
// up front.
package main

import (
	"fmt"
	"log"
	"strings"

	facet "repro"
)

func main() {
	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 600, 12)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := facet.NewSystem(env, facet.Options{TopK: 120})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		log.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		log.Fatal(err)
	}
	b, err := res.Browser(h)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Archive: %d stories. Extracted %d facet terms into %d-term hierarchy.\n\n",
		sys.Len(), len(res.Facets), h.Size())

	// A reader's session: start broad, narrow step by step.
	fmt.Println("Reader session: exploring the archive")
	sel := facet.Selection{}
	for step := 0; step < 3; step++ {
		options := b.Children("", sel)
		// Also surface children of already-selected facets.
		for _, t := range sel.Terms {
			options = append(options, b.Children(t, sel)...)
		}
		// Pick the most selective facet that still keeps >= 3 stories.
		var pick string
		pickCount := 1 << 30
		total := len(b.Docs(sel))
		for _, fc := range options {
			already := false
			for _, t := range sel.Terms {
				if t == fc.Term {
					already = true
				}
			}
			if already || fc.Count >= total || fc.Count < 3 {
				continue
			}
			if fc.Count < pickCount {
				pickCount = fc.Count
				pick = fc.Term
			}
		}
		if pick == "" {
			break
		}
		sel.Terms = append(sel.Terms, pick)
		fmt.Printf("  click %-26q -> %4d stories\n", pick, len(b.Docs(sel)))
	}
	fmt.Printf("\nSelection %v:\n", sel.Terms)
	for i, d := range b.Docs(sel) {
		if i >= 5 {
			break
		}
		doc := sys.Document(d)
		fmt.Printf("  [%s] %s\n", doc.Date.Format("2006-01-02"), doc.Title)
	}

	// Combine with a keyword.
	query := "election"
	withQuery := b.Docs(facet.Selection{Terms: sel.Terms[:1], Query: query})
	fmt.Printf("\nFacet %q + keyword %q -> %d stories\n", sel.Terms[0], query, len(withQuery))
	for i, d := range withQuery {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s\n", strings.TrimSpace(sys.Document(d).Title))
	}
}
