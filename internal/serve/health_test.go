package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/remote"
	"repro/internal/resilient"
)

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/api/v1/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var resp HealthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Status != "ok" {
		t.Fatalf("healthz body = %s (%v)", rec.Body.String(), err)
	}
}

// TestReadyzFollowsBreaker is the acceptance scenario: /api/v1/readyz
// answers 503 while a scripted outage holds a resource's circuit open,
// and recovers once the outage clears and the half-open probes succeed.
func TestReadyzFollowsBreaker(t *testing.T) {
	s := testServer(t)
	inj := remote.NewInjector(11, remote.NewClock())
	world := resilient.Wrap(
		inj.WrapResource(mapResource{m: map[string][]string{"x": {"y"}}}),
		resilient.Config{
			MaxAttempts: 1,
			Breaker:     resilient.BreakerConfig{Threshold: 2, Cooldown: 2, Probes: 2},
			Metrics:     s.Metrics(),
		})
	s.AddReadiness(world.Name(), world.Ready)

	if rec := get(t, s, "/api/v1/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz before outage = %d: %s", rec.Code, rec.Body.String())
	}

	// Scripted outage: failing calls trip the breaker.
	inj.Down("world", -1)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := world.ContextErr(ctx, "x"); err == nil {
			t.Fatal("want outage error")
		}
	}
	rec := get(t, s, "/api/v1/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during outage = %d, want 503", rec.Code)
	}
	var envelope ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatalf("readyz 503 is not the unified envelope: %s", rec.Body.String())
	}
	if envelope.Error.Code != ErrCodeNotReady || !strings.Contains(envelope.Error.Message, "world") {
		t.Fatalf("envelope = %+v", envelope)
	}

	// Breaker and retry metrics are visible in the metrics snapshot.
	metrics := get(t, s, "/api/v1/metrics").Body.String()
	for _, name := range []string{"resilient.world.trips", "resilient.world.breaker_state", "resilient.world.failures"} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("metrics snapshot missing %s", name)
		}
	}

	// The outage ends. Two shed calls elapse the cooldown, then two
	// half-open probes succeed and close the circuit.
	inj.Clear("world")
	for i := 0; i < 2; i++ {
		if _, err := world.ContextErr(ctx, "x"); !errors.Is(err, resilient.ErrOpen) {
			t.Fatalf("cooldown call %d: %v, want ErrOpen", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := world.ContextErr(ctx, "x"); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if rec := get(t, s, "/api/v1/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d: %s", rec.Code, rec.Body.String())
	}
}

// outageResource fails every lookup while down.
type outageResource struct {
	mapResource
	down atomic.Bool
}

func (r *outageResource) ContextErr(ctx context.Context, term string) ([]string, error) {
	if r.down.Load() {
		return nil, errors.New("world: down")
	}
	return r.m[term], nil
}

func (r *outageResource) Context(term string) []string {
	out, _ := r.ContextErr(context.Background(), term)
	return out
}

func TestDeadLetterEndpoints(t *testing.T) {
	res := &outageResource{mapResource: liveWorld()}
	ing, err := ingest.New(ingest.Config{
		Extractors: []core.Extractor{wordExtractor{}},
		Resources:  []core.Resource{res},
		Workers:    2,
		EpochDocs:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(liveDocs(3, 0), false); err != nil {
		t.Fatal(err)
	}
	s := New(ing.Current(), "dlq test")
	s.EnableIngest(ing)
	ing.Start()
	defer ing.Close(context.Background())

	// The resource goes down; a submitted document dead-letters.
	res.down.Store(true)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/ingest", ingestBody(liveDocs(1, 3))))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body.String())
	}
	deadline := time.Now().Add(10 * time.Second)
	for ing.Stats().DeadLetters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("document never dead-lettered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	rec = get(t, s, "/api/v1/ingest/deadletter")
	if rec.Code != http.StatusOK {
		t.Fatalf("deadletter = %d", rec.Code)
	}
	var dl DeadLetterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &dl); err != nil {
		t.Fatal(err)
	}
	if dl.Total != 1 || len(dl.DeadLetters) != 1 || dl.DeadLetters[0].Err == "" {
		t.Fatalf("deadletter payload = %+v", dl)
	}

	// The resource recovers; the retry endpoint admits the document.
	res.down.Store(false)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/ingest/retry", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("retry = %d: %s", rec.Code, rec.Body.String())
	}
	var rr RetryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Admitted != 1 || rr.Remaining != 0 {
		t.Fatalf("retry payload = %+v", rr)
	}
	if got := ing.Stats().DocsIngested; got != 4 {
		t.Fatalf("DocsIngested after retry = %d, want 4", got)
	}
}
