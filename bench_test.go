package facet

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md's experiment index), plus
// micro-benchmarks of the load-bearing components. Each table benchmark
// regenerates its artifact on a scaled-down dataset per iteration;
// cmd/experiments regenerates the full-size artifacts.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/lang"
	"repro/internal/newsgen"
	"repro/internal/ontology"
	"repro/internal/textdb"
	"repro/internal/wordnet"
)

// Shared fixtures, built once per process.
var (
	benchOnce sync.Once
	benchLab  *eval.Lab
	benchRuns map[string]*eval.DataRun
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		lab, err := eval.NewLab(42)
		if err != nil {
			panic(err)
		}
		benchLab = lab
		benchRuns = map[string]*eval.DataRun{}
		for name, p := range map[string]newsgen.Profile{
			"SNYT": newsgen.SNYT.WithDocs(300),
			"SNB":  newsgen.SNB.WithDocs(400),
			"MNYT": newsgen.MNYT.WithDocs(500),
		} {
			dr, err := lab.NewDataRun(p, 7)
			if err != nil {
				panic(err)
			}
			benchRuns[name] = dr
		}
	})
}

// --- Table I and the figures ---

func BenchmarkTable1Pilot(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := eval.PilotStudy(benchRuns["SNYT"], 300, 9, 2)
		if len(res.Facets) == 0 {
			b.Fatal("empty pilot result")
		}
	}
}

func BenchmarkFigure4GroundTruth(b *testing.B) {
	benchSetup(b)
	dr := benchRuns["SNYT"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gt := dr.Pool.BuildGroundTruth(dr.DS, dr.SampleIndices(300))
		if len(eval.Figure4(gt, 80)) == 0 {
			b.Fatal("empty figure 4")
		}
	}
}

func BenchmarkFigure5Baseline(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		terms, _, err := eval.Figure5(benchRuns["SNYT"], 25)
		if err != nil || len(terms) == 0 {
			b.Fatalf("figure 5 failed: %v", err)
		}
	}
}

// --- Recall tables (II, III, IV) ---

func benchRecall(b *testing.B, ds string) {
	benchSetup(b)
	dr := benchRuns[ds]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, _ := eval.RecallTable(dr, eval.RecallConfig{SampleSize: 300})
		if len(table.Rows) != 5 {
			b.Fatal("malformed table")
		}
	}
}

func BenchmarkTable2RecallSNYT(b *testing.B) { benchRecall(b, "SNYT") }
func BenchmarkTable3RecallSNB(b *testing.B)  { benchRecall(b, "SNB") }
func BenchmarkTable4RecallMNYT(b *testing.B) { benchRecall(b, "MNYT") }

// --- Precision tables (V, VI, VII) ---

func benchPrecision(b *testing.B, ds string) {
	benchSetup(b)
	dr := benchRuns[ds]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := eval.PrecisionTable(dr, eval.PrecisionConfig{TopK: 60})
		if err != nil || len(table.Rows) != 5 {
			b.Fatalf("precision table failed: %v", err)
		}
	}
}

func BenchmarkTable5PrecisionSNYT(b *testing.B) { benchPrecision(b, "SNYT") }
func BenchmarkTable6PrecisionSNB(b *testing.B)  { benchPrecision(b, "SNB") }
func BenchmarkTable7PrecisionMNYT(b *testing.B) { benchPrecision(b, "MNYT") }

// --- Sensitivity, efficiency, user study, ablations ---

func BenchmarkSensitivityCurve(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points := eval.Sensitivity(benchRuns["SNYT"], []int{50, 100, 200, 300})
		if len(points) != 4 {
			b.Fatal("bad curve")
		}
	}
}

func BenchmarkEfficiencyReport(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := eval.Efficiency(benchRuns["SNYT"], 100)
		if err != nil || len(rep.Extractors) == 0 {
			b.Fatalf("efficiency failed: %v", err)
		}
	}
}

func BenchmarkUserStudy(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := eval.UserStudy(benchRuns["SNYT"], 100, uint64(i))
		if err != nil || len(res.Sessions) == 0 {
			b.Fatalf("user study failed: %v", err)
		}
	}
}

func BenchmarkAblationScoring(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := eval.Ablation(benchRuns["SNYT"], 60)
		if err != nil || len(res.Variants) == 0 {
			b.Fatalf("ablation failed: %v", err)
		}
	}
}

// --- Per-stage efficiency micro-benchmarks (Section V-D granularity) ---

func BenchmarkStageExtractNE(b *testing.B)        { benchExtractor(b, eval.ExtNE) }
func BenchmarkStageExtractYahoo(b *testing.B)     { benchExtractor(b, eval.ExtYahoo) }
func BenchmarkStageExtractWikipedia(b *testing.B) { benchExtractor(b, eval.ExtWikipedia) }

func benchExtractor(b *testing.B, name string) {
	benchSetup(b)
	dr := benchRuns["SNYT"]
	ex := dr.Extractor(name)
	doc := dr.DS.Corpus.Doc(0)
	text := doc.Title + ". " + doc.Text
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Extract(text)
	}
}

func BenchmarkStageResourceGoogle(b *testing.B)    { benchResource(b, eval.ResGoogle) }
func BenchmarkStageResourceWordNet(b *testing.B)   { benchResource(b, eval.ResWordNet) }
func BenchmarkStageResourceWikiSyn(b *testing.B)   { benchResource(b, eval.ResWikiSyn) }
func BenchmarkStageResourceWikiGraph(b *testing.B) { benchResource(b, eval.ResWikiGraph) }

func benchResource(b *testing.B, name string) {
	benchSetup(b)
	r := benchLab.Resource(name)
	terms := []string{"france", "political leaders", "war in iraq", "baseball", "stock market"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Context(terms[i%len(terms)])
	}
}

// --- Component micro-benchmarks ---

func BenchmarkTokenize(b *testing.B) {
	benchSetup(b)
	text := benchRuns["SNYT"].DS.Corpus.Doc(0).Text
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lang.Tokenize(text)
	}
}

func BenchmarkPorterStem(b *testing.B) {
	words := []string{"relational", "organizations", "hierarchies", "leaders", "markets", "disasters"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lang.Stem(words[i%len(words)])
	}
}

func BenchmarkExtractTerms(b *testing.B) {
	benchSetup(b)
	text := benchRuns["SNYT"].DS.Corpus.Doc(0).Text
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textdb.ExtractTerms(text)
	}
}

func BenchmarkBM25Search(b *testing.B) {
	benchSetup(b)
	corpus := benchRuns["SNYT"].DS.Corpus
	ix := textdb.BuildIndex(corpus)
	queries := []string{"election campaign", "summit leaders", "market shares", "storm damage"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(queries[i%len(queries)], 10)
	}
}

func BenchmarkWordNetGenerateParse(b *testing.B) {
	kb, err := ontology.Build(ontology.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	lex := ontology.WordNetLexicon(kb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wordnet.FromIsa(lex); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	kb, err := ontology.Build(ontology.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := newsgen.Generate(kb, newsgen.SNYT.WithDocs(100), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndPipeline(b *testing.B) {
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 100, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(env, Options{TopK: 50})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range docs {
			sys.Add(d)
		}
		res, err := sys.ExtractFacets()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.BuildHierarchy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineWorkers measures end-to-end pipeline throughput
// (extract + hierarchy, docs/sec) across worker-pool sizes — the
// runtime counterpart of the ISSUE acceptance criterion that sharding
// scales. After the sub-benchmarks finish it records the curve in
// BENCH_pipeline.json via writePipelineBench, so the scaling numbers
// survive the run. On a single-CPU machine every worker count
// collapses to ~the sequential rate; the file records whatever the
// host could actually deliver.
func BenchmarkPipelineWorkers(b *testing.B) {
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	const nDocs = 200
	docs, err := env.GenerateNewsCorpus("SNYT", nDocs, 7)
	if err != nil {
		b.Fatal(err)
	}
	docsPerSec := map[int]float64{}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprint(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := NewSystem(env, Options{TopK: 80, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, d := range docs {
					sys.Add(d)
				}
				res, err := sys.ExtractFacets()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.BuildHierarchy(); err != nil {
					b.Fatal(err)
				}
			}
			rate := float64(nDocs*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "docs/s")
			docsPerSec[workers] = rate
		})
	}
	if err := writePipelineBench(docsPerSec); err != nil {
		b.Logf("writePipelineBench: %v", err)
	}
}

// pipelineBench is the BENCH_pipeline.json envelope (the scaling
// counterpart of serveBench for BENCH_serve.json). A recording is only
// meaningful as a scaling curve when made on a multi-core host, so
// either GOMAXPROCS > 1 or the recording must carry the explicit
// single_core annotation — TestBenchPipelineSchema rejects everything
// else, and CI re-records the file on an all-core runner.
type pipelineBench struct {
	Benchmark  string `json:"benchmark"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SingleCore marks a curve recorded with only one CPU available:
	// every worker count collapses to the sequential rate and the
	// speedup column carries no signal.
	SingleCore bool                 `json:"single_core,omitempty"`
	Points     []pipelineBenchPoint `json:"points"`
}

type pipelineBenchPoint struct {
	Workers    int     `json:"workers"`
	DocsPerSec float64 `json:"docs_per_sec"`
	Speedup    float64 `json:"speedup_vs_sequential"`
}

// writePipelineBench stores the worker-count → docs/sec curve from
// BenchmarkPipelineWorkers as BENCH_pipeline.json next to the package
// sources, with GOMAXPROCS recorded so a flat curve on a small host is
// interpretable.
func writePipelineBench(docsPerSec map[int]float64) error {
	if len(docsPerSec) == 0 {
		return nil
	}
	workers := make([]int, 0, len(docsPerSec))
	for w := range docsPerSec {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	out := pipelineBench{
		Benchmark:  "BenchmarkPipelineWorkers",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SingleCore: runtime.GOMAXPROCS(0) == 1,
	}
	base := docsPerSec[workers[0]]
	for _, w := range workers {
		sp := 0.0
		if base > 0 {
			sp = docsPerSec[w] / base
		}
		out.Points = append(out.Points, pipelineBenchPoint{Workers: w, DocsPerSec: docsPerSec[w], Speedup: sp})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644)
}
