package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/browse"
	"repro/internal/hierarchy"
	"repro/internal/textdb"
)

func testServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	corpus := textdb.NewCorpus()
	base := time.Date(2005, 11, 1, 0, 0, 0, 0, time.UTC)
	texts := []string{
		"chirac spoke in paris about the budget",
		"berlin hosted a summit on trade",
		"the election in france drew crowds",
		"a baseball game in boston went long",
	}
	docTerms := [][]string{
		{"europe", "france"},
		{"europe", "germany"},
		{"europe", "france"},
		{"sports"},
	}
	for i, text := range texts {
		corpus.Add(&textdb.Document{
			Title: "story " + text[:7], Source: "wire", Text: text,
			Date: base.AddDate(0, 0, i),
		})
	}
	terms := []string{"europe", "france", "germany", "sports"}
	forest, err := hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{MinDF: 1, MaxChildDFFraction: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	iface, err := browse.Build(corpus, forest, docTerms)
	if err != nil {
		t.Fatal(err)
	}
	return New(iface, "Test Archive", opts...)
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestFacetsEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/api/v1/facets")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp FacetsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 4 || len(resp.Facets) == 0 {
		t.Fatalf("resp = %+v", resp)
	}
	// Restricted by a facet term.
	rec = get(t, s, "/api/v1/facets?terms=europe&parent=europe")
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if resp.Total != 3 {
		t.Fatalf("europe total = %d", resp.Total)
	}
}

func TestDocsEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/api/v1/docs?terms=france&q=election")
	var resp DocsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 1 || len(resp.Docs) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if !strings.Contains(resp.Docs[0].Snippet, "election") {
		t.Fatalf("snippet = %q", resp.Docs[0].Snippet)
	}
	if rec := get(t, s, "/api/v1/docs?limit=0"); rec.Code != http.StatusBadRequest {
		t.Fatal("bad limit accepted")
	}
}

func TestDatesEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/api/v1/dates?granularity=day")
	var resp []DateBucket
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp) != 4 {
		t.Fatalf("buckets = %+v", resp)
	}
	if rec := get(t, s, "/api/v1/dates?granularity=decade"); rec.Code != http.StatusBadRequest {
		t.Fatal("bad granularity accepted")
	}
	// Date-range restriction.
	rec = get(t, s, "/api/v1/dates?granularity=day&from=2005-11-02&to=2005-11-04")
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if len(resp) != 2 {
		t.Fatalf("range buckets = %+v", resp)
	}
}

func TestCrossEndpoint(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/api/v1/cross?a=europe&b=sports")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, s, "/api/v1/cross?a=europe"); rec.Code != http.StatusBadRequest {
		t.Fatal("missing b accepted")
	}
	if rec := get(t, s, "/api/v1/cross?a=europe&b=nonexistent"); rec.Code != http.StatusBadRequest {
		t.Fatal("unknown facet accepted")
	}
}

func TestIndexPage(t *testing.T) {
	s := testServer(t)
	rec := get(t, s, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"Test Archive", "europe", "documents match"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index page missing %q", want)
		}
	}
	// Drill-down link state.
	rec = get(t, s, "/?terms=europe")
	body = rec.Body.String()
	if !strings.Contains(body, "3 documents match") {
		t.Fatalf("drilled page: %s", body)
	}
	if rec := get(t, s, "/nonexistent"); rec.Code != http.StatusNotFound {
		t.Fatal("unknown path should 404")
	}
}

func TestBadDateRejected(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/api/v1/docs?from=notadate"); rec.Code != http.StatusBadRequest {
		t.Fatal("bad date accepted")
	}
}

// TestErrorResponsesAreJSON: every 4xx carries the unified envelope
// {"error":{"code","message"}}, and limit validation rejects negative,
// zero, huge, and overflowing values.
func TestErrorResponsesAreJSON(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/api/v1/docs?limit=-5",
		"/api/v1/docs?limit=0",
		"/api/v1/docs?limit=billion",
		"/api/v1/docs?limit=501",
		"/api/v1/docs?limit=99999999999999999999", // overflows int64
		"/api/v1/docs?from=notadate",
		"/api/v1/facets?limit=0",
		"/api/v1/dates?granularity=decade",
		"/api/v1/cross?a=europe",
	} {
		rec := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, rec.Code)
			continue
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content-type %q", path, ct)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code != ErrCodeBadRequest || er.Error.Message == "" {
			t.Errorf("%s: body %q is not the unified error envelope", path, rec.Body.String())
		}
	}
	// A valid limit still works.
	if rec := get(t, s, "/api/v1/docs?limit=2"); rec.Code != http.StatusOK {
		t.Fatalf("valid limit rejected: %d", rec.Code)
	}
}

// TestPublishSwapsInterface: Publish atomically replaces what the
// handlers serve.
func TestPublishSwapsInterface(t *testing.T) {
	s := testServer(t)
	var before FacetsResponse
	json.Unmarshal(get(t, s, "/api/v1/facets").Body.Bytes(), &before)
	if before.Total != 4 {
		t.Fatalf("before swap: %d docs", before.Total)
	}

	corpus := textdb.NewCorpus()
	corpus.Add(&textdb.Document{Title: "solo", Source: "wire", Text: "one lonely document", Date: time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)})
	forest, err := hierarchy.BuildSubsumption([]string{"misc"}, [][]string{{"misc"}}, hierarchy.SubsumptionConfig{MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	iface, err := browse.Build(corpus, forest, [][]string{{"misc"}})
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(iface)

	var after FacetsResponse
	json.Unmarshal(get(t, s, "/api/v1/facets").Body.Bytes(), &after)
	if after.Total != 1 {
		t.Fatalf("after swap: %d docs, want 1", after.Total)
	}
}
