// Package lang provides the low-level text processing used by every other
// package in the repository: tokenization with original-case spans,
// sentence boundary detection, a stopword list, the Porter stemming
// algorithm, n-gram extraction, and phrase normalization.
//
// The pipeline in the paper operates over "terms", which are single words
// and multi-word phrases (footnote 2 of the paper). This package defines
// the common normalization rules so that the corpus generator, the term
// extractors, the external resources, and the comparative frequency
// analysis all agree on term identity.
package lang

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single word occurrence in a text.
type Token struct {
	Text  string // the token exactly as it appears in the text
	Norm  string // lowercased form used for term identity
	Start int    // byte offset of the first byte of the token
	End   int    // byte offset one past the last byte of the token

	// SentenceStart reports whether the token opens a sentence. The
	// named-entity tagger uses it: a capitalized word at sentence start is
	// weak evidence of an entity, while a capitalized word mid-sentence is
	// strong evidence.
	SentenceStart bool

	// PhraseStart reports whether the token opens a phrase segment:
	// sentence starts plus positions after commas, semicolons, colons, and
	// brackets. Multi-word terms never span phrase boundaries ("Paris,
	// London" is not the phrase "paris london").
	PhraseStart bool
}

// Tokenize splits text into tokens. A token is a maximal run of letters,
// digits, or internal apostrophes/hyphens/periods joining alphanumerics
// ("U.S.", "state-of-the-art", "don't" stay single tokens). Sentence
// boundaries are detected at '.', '!', '?' followed by whitespace and an
// uppercase letter, with an abbreviation guard for single-letter initials.
func Tokenize(text string) []Token {
	var tokens []Token
	n := len(text)
	sentenceStart := true
	phraseStart := true
	i := 0
	for i < n {
		c := text[i]
		if !isWordStart(text, i) {
			switch c {
			case '.', '!', '?':
				sentenceStart = true
				phraseStart = true
			case ',', ';', ':', '(', ')', '[', ']', '{', '}', '"':
				phraseStart = true
			}
			_, size := utf8.DecodeRuneInString(text[i:])
			i += size
			continue
		}
		start := i
		for i < n {
			c = text[i]
			if isWordStart(text, i) {
				_, size := utf8.DecodeRuneInString(text[i:])
				i += size
				continue
			}
			// Allow internal punctuation joining two word characters.
			if (c == '\'' || c == '-' || c == '.') && i+1 < n && isWordStart(text, i+1) && i > start {
				// A period only joins when the preceding run looks like an
				// initialism (single letter before it), e.g. "U.S." but not
				// "end.Of".
				if c == '.' && !isInitialism(text[start:i]) {
					break
				}
				i++
				continue
			}
			break
		}
		raw := text[start:i]
		tok := Token{
			Text:          raw,
			Norm:          strings.ToLower(raw),
			Start:         start,
			End:           i,
			SentenceStart: sentenceStart,
			PhraseStart:   sentenceStart || phraseStart,
		}
		sentenceStart = false
		phraseStart = false
		tokens = append(tokens, tok)
	}
	return tokens
}

// Phrases groups tokens into phrase segments using the PhraseStart flags;
// n-gram terms are built within segments only.
func Phrases(tokens []Token) [][]Token {
	var out [][]Token
	var cur []Token
	for _, t := range tokens {
		if t.PhraseStart && len(cur) > 0 {
			out = append(out, cur)
			cur = nil
		}
		cur = append(cur, t)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// isInitialism reports whether s looks like the prefix of an initialism:
// every letter followed by a period ("U", "U.S").
func isInitialism(s string) bool {
	// s is the text from token start up to (not including) the period under
	// consideration. It qualifies when each segment between periods is a
	// single letter.
	seg := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			if seg != 1 {
				return false
			}
			seg = 0
			continue
		}
		seg++
		if seg > 1 {
			return false
		}
	}
	return seg == 1
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// isWordStart reports whether a word character (ASCII alphanumeric, or
// any non-ASCII letter/digit — "Médecins", "Führer", "北京") starts at
// byte offset i.
func isWordStart(text string, i int) bool {
	c := text[i]
	if c < utf8.RuneSelf {
		return isWordByte(c)
	}
	r, _ := utf8.DecodeRuneInString(text[i:])
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Norms returns just the normalized forms of the tokens.
func Norms(tokens []Token) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.Norm
	}
	return out
}

// IsCapitalized reports whether the token starts with an uppercase letter.
func (t Token) IsCapitalized() bool {
	for _, r := range t.Text {
		return unicode.IsUpper(r)
	}
	return false
}

// IsAllUpper reports whether every letter in the token is uppercase and the
// token contains at least one letter ("NATO", "U.S.").
func (t Token) IsAllUpper() bool {
	hasLetter := false
	for _, r := range t.Text {
		if unicode.IsLetter(r) {
			hasLetter = true
			if !unicode.IsUpper(r) {
				return false
			}
		}
	}
	return hasLetter
}

// NormalizePhrase canonicalizes a multi-word phrase: lowercase, single
// spaces, surrounding punctuation stripped from each word. It is the
// identity rule for terms across the whole system.
func NormalizePhrase(s string) string {
	fields := strings.Fields(strings.ToLower(s))
	out := fields[:0]
	for _, f := range fields {
		f = strings.Trim(f, ".,;:!?\"'()[]{}")
		if f != "" {
			out = append(out, f)
		}
	}
	return strings.Join(out, " ")
}

// NGrams returns all n-grams (as space-joined strings) over the given
// normalized words, for sizes min..max inclusive.
func NGrams(words []string, min, max int) []string {
	if min < 1 {
		min = 1
	}
	var out []string
	for n := min; n <= max; n++ {
		if n > len(words) {
			break
		}
		for i := 0; i+n <= len(words); i++ {
			out = append(out, strings.Join(words[i:i+n], " "))
		}
	}
	return out
}

// Sentences groups tokens into sentences using the SentenceStart flags.
func Sentences(tokens []Token) [][]Token {
	var out [][]Token
	var cur []Token
	for _, t := range tokens {
		if t.SentenceStart && len(cur) > 0 {
			out = append(out, cur)
			cur = nil
		}
		cur = append(cur, t)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
