package facet

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestEnvConfigScaleValidation(t *testing.T) {
	for _, scale := range []float64{-1, -0.01, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewSimulatedEnvironment(EnvConfig{Scale: scale}); err == nil {
			t.Errorf("Scale %v accepted", scale)
		}
	}
	// Zero (default) and positive scales remain valid.
	for _, scale := range []float64{0, 0.5, 2} {
		if _, err := NewSimulatedEnvironment(EnvConfig{Seed: 3, Scale: scale}); err != nil {
			t.Errorf("Scale %v rejected: %v", scale, err)
		}
	}
}

// TestExtractFacetsContextCancellation: a canceled context aborts the
// pipeline with ctx.Err() instead of running the remaining stages.
func TestExtractFacetsContextCancellation(t *testing.T) {
	sys := loadedSystem(t, 150)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := sys.ExtractFacetsContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
	// An expired deadline aborts the same way.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := sys.ExtractFacetsContext(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestStageReport: the result carries wall-clock timing for every
// pipeline stage in execution order, and BuildHierarchy appends its own
// stage.
func TestStageReport(t *testing.T) {
	sys := loadedSystem(t, 120)
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	stages := res.StageReport()
	want := []string{"identify_important", "derive_context", "analyze"}
	if len(stages) != len(want) {
		t.Fatalf("StageReport = %+v, want stages %v", stages, want)
	}
	for i, st := range stages {
		if st.Stage != want[i] {
			t.Fatalf("stage[%d] = %q, want %q", i, st.Stage, want[i])
		}
		if st.Calls != 1 || st.Total < 0 {
			t.Fatalf("stage %q has calls=%d total=%v", st.Stage, st.Calls, st.Total)
		}
	}
	if _, err := res.BuildHierarchy(); err != nil {
		t.Fatal(err)
	}
	stages = res.StageReport()
	if len(stages) != 4 || stages[3].Stage != "build_hierarchy" {
		t.Fatalf("after BuildHierarchy StageReport = %+v, want build_hierarchy appended", stages)
	}
}
