package userstudy

import (
	"testing"

	"repro/internal/browse"
	"repro/internal/hierarchy"
	"repro/internal/newsgen"
	"repro/internal/ontology"
	"repro/internal/textdb"
)

// buildFixture assembles a small dataset with a ground-truth-based
// hierarchy (skipping facet extraction, which has its own tests): each
// document is annotated with its trace facets directly.
func buildFixture(t *testing.T) (*browse.Interface, *newsgen.Dataset) {
	t.Helper()
	kb, err := ontology.Build(ontology.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := newsgen.Generate(kb, newsgen.SNYT.WithDocs(120), 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var terms []string
	docTerms := make([][]string, ds.Corpus.Len())
	for i, tr := range ds.Traces {
		for _, f := range tr.Facets {
			name := kb.Concept(f).Name
			docTerms[i] = append(docTerms[i], name)
			if !seen[name] {
				seen[name] = true
				terms = append(terms, name)
			}
		}
	}
	forest, err := hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{Threshold: 0.6, MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	iface, err := browse.Build(ds.Corpus, forest, docTerms)
	if err != nil {
		t.Fatal(err)
	}
	return iface, ds
}

func TestRunProducesSessions(t *testing.T) {
	iface, ds := buildFixture(t)
	sessions, err := Run(iface, ds, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 5 {
		t.Fatalf("%d sessions", len(sessions))
	}
	for i, s := range sessions {
		if s.Session != i+1 {
			t.Fatalf("session numbering wrong: %+v", s)
		}
		if s.Satisfaction < 0 || s.Satisfaction > 3 {
			t.Fatalf("satisfaction %v outside scale", s.Satisfaction)
		}
		if s.Time <= 0 {
			t.Fatalf("session %d has no time", i+1)
		}
		if s.KeywordQueries < 0 || s.FacetClicks < 0 {
			t.Fatalf("negative counts: %+v", s)
		}
	}
}

func TestLearningShiftsTowardFacets(t *testing.T) {
	iface, ds := buildFixture(t)
	sessions, err := Run(iface, ds, Config{Seed: 11, Users: 20})
	if err != nil {
		t.Fatal(err)
	}
	first, last := sessions[0], sessions[len(sessions)-1]
	if last.KeywordQueries > first.KeywordQueries {
		t.Fatalf("keyword use grew: %.2f -> %.2f", first.KeywordQueries, last.KeywordQueries)
	}
	if last.FacetClicks < first.FacetClicks {
		t.Fatalf("facet use shrank: %.2f -> %.2f", first.FacetClicks, last.FacetClicks)
	}
}

func TestFirstSessionStartsWithKeyword(t *testing.T) {
	iface, ds := buildFixture(t)
	sessions, err := Run(iface, ds, Config{Seed: 7, Users: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Every first-session user issues at least one keyword query (the
	// paper's observed first-interaction pattern).
	if sessions[0].KeywordQueries < 1 {
		t.Fatalf("first session keyword mean %.2f < 1", sessions[0].KeywordQueries)
	}
}

func TestRunDeterministic(t *testing.T) {
	iface, ds := buildFixture(t)
	a, _ := Run(iface, ds, Config{Seed: 9})
	b, _ := Run(iface, ds, Config{Seed: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session %d differs across identical runs", i)
		}
	}
}

func TestRunEmptyCorpus(t *testing.T) {
	corpus := textdb.NewCorpus()
	forest, _ := hierarchy.BuildSubsumption(nil, nil, hierarchy.SubsumptionConfig{})
	iface, err := browse.Build(corpus, forest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(iface, &newsgen.Dataset{Corpus: corpus}, Config{}); err == nil {
		t.Fatal("expected error for empty corpus")
	}
}
