package resilient

import "testing"

// FuzzBreaker drives the breaker with an arbitrary outcome script and
// checks its safety invariants against an independent model:
//
//   - while Open, Allow never admits a call until Cooldown calls have
//     been shed;
//   - the first admitted call after shedding is a half-open probe —
//     the machine is in HalfOpen whenever it delivers one;
//   - Probes consecutive half-open successes close the circuit; any
//     half-open failure reopens it.
//
// Each input byte is one step: low bit = the delivered call's outcome
// (1 = success), remaining bits perturb nothing — the script's value is
// its length and outcome pattern.
func FuzzBreaker(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 1, 1, 1}, uint8(3), uint8(2), uint8(2))
	f.Add([]byte{1, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 1}, uint8(1), uint8(1), uint8(1))
	f.Add([]byte{0}, uint8(5), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, script []byte, threshold, cooldown, probes uint8) {
		cfg := BreakerConfig{
			Threshold: int(threshold%8) + 1,
			Cooldown:  int(cooldown%8) + 1,
			Probes:    int(probes%4) + 1,
		}
		b := NewBreaker(cfg, nil)

		// Independent model of the same machine.
		state := Closed
		consec, shed, probeOK := 0, 0, 0

		for i, step := range script {
			admitted := b.Allow() == nil

			// Model Allow.
			wantAdmit := true
			if state == Open {
				if shed >= cfg.Cooldown {
					state = HalfOpen
					probeOK = 0
				} else {
					shed++
					wantAdmit = false
				}
			}
			if admitted != wantAdmit {
				t.Fatalf("step %d: Allow admitted=%v, model wants %v (state %v)", i, admitted, wantAdmit, state)
			}
			if !admitted {
				if got := b.State(); got != Open {
					t.Fatalf("step %d: shed a call while %v", i, got)
				}
				continue
			}
			// Invariant: a delivered call happens only in Closed or HalfOpen.
			if got := b.State(); got == Open {
				t.Fatalf("step %d: delivered a call while open", i)
			}

			if step&1 == 1 {
				b.Success()
				switch state {
				case Closed:
					consec = 0
				case HalfOpen:
					probeOK++
					if probeOK >= cfg.Probes {
						state = Closed
						consec = 0
					}
				}
			} else {
				b.Failure()
				switch state {
				case Closed:
					consec++
					if consec >= cfg.Threshold {
						state, consec, shed, probeOK = Open, 0, 0, 0
					}
				case HalfOpen:
					state, consec, shed, probeOK = Open, 0, 0, 0
				}
			}
			if got := b.State(); got != state {
				t.Fatalf("step %d: breaker state %v, model %v", i, got, state)
			}
		}
	})
}
