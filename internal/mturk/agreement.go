package mturk

import "repro/internal/newsgen"

// Inter-annotator agreement statistics. The paper validates annotations by
// the >= 2-of-5 rule; a methodology section reporting that protocol would
// also report chance-corrected agreement, so the simulation exposes it:
// Fleiss' kappa over the (story, term) assignment matrix.

// FleissKappa computes Fleiss' kappa for a set of items each rated by the
// same number of annotators into two categories (assigned / not
// assigned). ratings[i] is the number of annotators (out of n) who
// assigned item i. Returns kappa in [-1, 1]; 1 is perfect agreement, 0 is
// chance level. Items with fewer than two raters are rejected via ok =
// false, as kappa is undefined.
func FleissKappa(ratings []int, annotators int) (kappa float64, ok bool) {
	if annotators < 2 || len(ratings) == 0 {
		return 0, false
	}
	n := float64(annotators)
	// Per-item agreement P_i and category proportions.
	var sumP, totalYes float64
	for _, r := range ratings {
		if r < 0 || r > annotators {
			return 0, false
		}
		yes := float64(r)
		no := n - yes
		sumP += (yes*(yes-1) + no*(no-1)) / (n * (n - 1))
		totalYes += yes
	}
	items := float64(len(ratings))
	pBar := sumP / items
	pYes := totalYes / (items * n)
	pNo := 1 - pYes
	pe := pYes*pYes + pNo*pNo
	if pe >= 1 {
		// All ratings in one category: agreement is trivially perfect.
		return 1, true
	}
	return (pBar - pe) / (1 - pe), true
}

// AgreementReport summarizes annotator agreement over a story sample.
type AgreementReport struct {
	Stories    int
	TermPairs  int     // distinct (story, candidate-term) items rated
	Kappa      float64 // Fleiss' kappa over assignment decisions
	MeanAgreed float64 // mean fraction of annotators agreeing per validated term
}

// MeasureAgreement annotates the given stories of a dataset and computes
// agreement over every (story, term) pair any annotator produced. A term
// an annotator did not list counts as a "not assigned" rating from that
// annotator.
func (p *Pool) MeasureAgreement(ds *newsgen.Dataset, storyIdx []int) AgreementReport {
	var ratings []int
	var agreedSum float64
	var validated int
	for _, i := range storyIdx {
		raw := p.AnnotateStory(i, ds.Traces[i].Facets)
		counts := map[string]int{}
		for _, list := range raw {
			seen := map[string]bool{}
			for _, t := range list {
				if !seen[t] {
					seen[t] = true
					counts[t]++
				}
			}
		}
		for _, c := range counts {
			ratings = append(ratings, c)
			if c >= p.cfg.MinAgreement {
				agreedSum += float64(c) / float64(p.cfg.AnnotatorsPerStory)
				validated++
			}
		}
	}
	rep := AgreementReport{Stories: len(storyIdx), TermPairs: len(ratings)}
	if k, ok := FleissKappa(ratings, p.cfg.AnnotatorsPerStory); ok {
		rep.Kappa = k
	}
	if validated > 0 {
		rep.MeanAgreed = agreedSum / float64(validated)
	}
	return rep
}
