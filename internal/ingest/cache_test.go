package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// countingResource counts real Context calls so tests can observe misses.
type countingResource struct {
	name  string
	calls atomic.Int64
}

func (r *countingResource) Name() string { return r.name }

func (r *countingResource) Context(term string) []string {
	r.calls.Add(1)
	return []string{"ctx-" + term}
}

func TestLRUCacheHitsAndEviction(t *testing.T) {
	r := &countingResource{name: "r"}
	c := newLRUCache(2)

	c.Lookup(r, "a") // miss
	c.Lookup(r, "a") // hit
	c.Lookup(r, "b") // miss
	c.Lookup(r, "a") // hit — refreshes a's recency
	c.Lookup(r, "c") // miss — evicts b (LRU)
	c.Lookup(r, "a") // hit — a survived
	c.Lookup(r, "b") // miss — b was evicted

	hits, misses := c.Counters()
	if hits != 3 || misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 3/4", hits, misses)
	}
	if got := r.calls.Load(); got != 4 {
		t.Fatalf("resource queried %d times, want 4", got)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
}

func TestLRUCacheKeysByResource(t *testing.T) {
	a := &countingResource{name: "a"}
	b := &countingResource{name: "b"}
	c := newLRUCache(8)
	c.Lookup(a, "term")
	c.Lookup(b, "term")
	if a.calls.Load() != 1 || b.calls.Load() != 1 {
		t.Fatalf("same-term lookups collided across resources: a=%d b=%d", a.calls.Load(), b.calls.Load())
	}
}

// TestLRUCacheConcurrent hammers the cache from many goroutines; run
// under -race it verifies the locking discipline.
func TestLRUCacheConcurrent(t *testing.T) {
	r := &countingResource{name: "r"}
	c := newLRUCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				term := fmt.Sprintf("t%d", (g+i)%32) // half fit, half churn
				got := c.Lookup(r, term)
				if len(got) != 1 || got[0] != "ctx-"+term {
					t.Errorf("wrong context for %s: %v", term, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Counters()
	if hits+misses != 1600 {
		t.Fatalf("hits+misses = %d, want 1600", hits+misses)
	}
	if c.Len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
