package textdb

import (
	"math"
	"sort"
)

// DFTable accumulates document frequencies over a collection. The
// comparative term-frequency analysis (Step 3, Figure 3 of the paper)
// builds one table for the original database D and one for the
// contextualized database C(D), both sharing a dictionary.
type DFTable struct {
	dict *Dictionary
	df   []int32
	docs int
}

// NewDFTable returns an empty table counting into the given dictionary.
func NewDFTable(dict *Dictionary) *DFTable {
	return &DFTable{dict: dict}
}

// AddDoc counts one document given its deduplicated term IDs.
func (t *DFTable) AddDoc(termIDs []TermID) {
	t.docs++
	for _, id := range termIDs {
		t.ensure(id)
		t.df[id]++
	}
}

// ensure grows the count array to cover id. Growth doubles capacity so
// a stream of rising term IDs costs amortized O(1) allocations, and
// reslicing into existing capacity allocates nothing (the re-exposed
// region is zeroed explicitly rather than trusting its history — the
// table never shrinks today, but a stale nonzero count would corrupt
// frequencies silently).
func (t *DFTable) ensure(id TermID) {
	need := int(id) + 1
	if need <= len(t.df) {
		return
	}
	if need <= cap(t.df) {
		clear(t.df[len(t.df):need])
		t.df = t.df[:need]
		return
	}
	newCap := 2 * cap(t.df)
	if newCap < need {
		newCap = need
	}
	grown := make([]int32, need, newCap)
	copy(grown, t.df)
	t.df = grown
}

// Clone returns an independent copy of the table (sharing the
// dictionary). The live ingestion subsystem clones its incrementally
// maintained tables under lock and scores candidates off-lock.
func (t *DFTable) Clone() *DFTable {
	return &DFTable{dict: t.dict, df: append([]int32(nil), t.df...), docs: t.docs}
}

// Merge folds another table's counts into t. Document frequencies are
// additive across disjoint document shards, so the parallel batch
// pipeline has each worker accumulate a private delta table over its
// shard and merges the deltas here before the comparative analysis —
// the result is identical to counting every document into one table.
// Both tables must share t's dictionary.
func (t *DFTable) Merge(other *DFTable) {
	if other == nil || other.docs == 0 && len(other.df) == 0 {
		return
	}
	t.docs += other.docs
	if n := len(other.df); n > 0 {
		t.ensure(TermID(n - 1))
		for id, c := range other.df {
			t.df[id] += c
		}
	}
}

// DF returns the document frequency of a term (0 for never-seen terms).
func (t *DFTable) DF(id TermID) int {
	if int(id) >= len(t.df) || id < 0 {
		return 0
	}
	return int(t.df[id])
}

// NumDocs returns the number of documents counted.
func (t *DFTable) NumDocs() int { return t.docs }

// Dict returns the dictionary the table counts into.
func (t *DFTable) Dict() *Dictionary { return t.dict }

// RankTable assigns each term its frequency rank (1 = most frequent).
// Terms absent from the collection share the sentinel rank maxRank+1,
// which places them in the deepest bin — exactly the behaviour Step 3
// needs for facet terms that never occur in the original database.
type RankTable struct {
	rank    []int32
	maxRank int32
}

// Ranks computes the rank table for the current counts. Ties are broken
// by term text so that results are deterministic.
func (t *DFTable) Ranks() *RankTable {
	type entry struct {
		id TermID
		df int32
	}
	entries := make([]entry, 0, len(t.df))
	for id, df := range t.df {
		if df > 0 {
			entries = append(entries, entry{TermID(id), df})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].df != entries[b].df {
			return entries[a].df > entries[b].df
		}
		return t.dict.String(entries[a].id) < t.dict.String(entries[b].id)
	})
	rt := &RankTable{
		rank:    make([]int32, len(t.df)),
		maxRank: int32(len(entries)),
	}
	for i := range rt.rank {
		rt.rank[i] = rt.maxRank + 1
	}
	for i, e := range entries {
		rt.rank[e.id] = int32(i + 1)
	}
	return rt
}

// Rank returns the 1-based frequency rank of the term; unseen terms get
// maxRank+1.
func (r *RankTable) Rank(id TermID) int {
	if int(id) >= len(r.rank) || id < 0 {
		return int(r.maxRank + 1)
	}
	return int(r.rank[id])
}

// MaxRank returns the number of ranked (seen) terms.
func (r *RankTable) MaxRank() int { return int(r.maxRank) }

// Bin implements the paper's binning function B(t) = ceil(log2(Rank(t))).
// Rank 1 maps to bin 0.
func Bin(rank int) int {
	if rank <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(rank))))
}

// TopTerms returns the k most frequent terms (by document frequency,
// ties by text), excluding terms with df below minDF.
func (t *DFTable) TopTerms(k, minDF int) []TermID {
	type entry struct {
		id TermID
		df int32
	}
	var entries []entry
	for id, df := range t.df {
		if int(df) >= minDF && df > 0 {
			entries = append(entries, entry{TermID(id), df})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].df != entries[b].df {
			return entries[a].df > entries[b].df
		}
		return t.dict.String(entries[a].id) < t.dict.String(entries[b].id)
	})
	if k > len(entries) {
		k = len(entries)
	}
	out := make([]TermID, k)
	for i := 0; i < k; i++ {
		out[i] = entries[i].id
	}
	return out
}
