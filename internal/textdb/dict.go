// Package textdb implements the text database engine the facet-extraction
// pipeline runs against: a document store, a string-interning dictionary,
// per-document term extraction (words and multi-word phrases, per the
// paper's definition of "term"), document-frequency statistics with the
// rank table and logarithmic binning used by Step 3 of the algorithm, and
// an inverted index with BM25 ranking and snippet generation that backs
// the web-search simulator.
package textdb

import (
	"sort"
	"sync"
)

// TermID is a dense identifier for an interned term.
type TermID int32

// NoTerm is returned by Lookup for unknown terms.
const NoTerm TermID = -1

// Dictionary interns term strings to dense IDs. The zero value is not
// usable; call NewDictionary.
//
// A Dictionary is safe for concurrent use. The live-ingestion subsystem
// shares one dictionary between the mutating intake corpus and the
// immutable corpus snapshots served behind the HTTP API, so query-time
// lookups (keyword search resolving terms) race against intake-time
// interning; the RWMutex keeps both sides coherent at negligible cost on
// the batch path.
type Dictionary struct {
	mu     sync.RWMutex
	byTerm map[string]TermID
	terms  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byTerm: make(map[string]TermID, 1<<16)}
}

// Intern returns the ID for the term, assigning a new one if needed.
func (d *Dictionary) Intern(term string) TermID {
	d.mu.RLock()
	id, ok := d.byTerm[term]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byTerm[term]; ok {
		return id
	}
	id = TermID(len(d.terms))
	d.terms = append(d.terms, term)
	d.byTerm[term] = id
	return id
}

// Lookup returns the ID for the term, or NoTerm if it was never interned.
func (d *Dictionary) Lookup(term string) TermID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id, ok := d.byTerm[term]; ok {
		return id
	}
	return NoTerm
}

// String returns the term text for an ID. It panics on an invalid ID.
func (d *Dictionary) String(id TermID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[id]
}

// Len returns the number of interned terms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// SortedIDs returns all term IDs ordered by term text; used where
// deterministic iteration over a dictionary is required.
func (d *Dictionary) SortedIDs() []TermID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]TermID, len(d.terms))
	for i := range ids {
		ids[i] = TermID(i)
	}
	sort.Slice(ids, func(a, b int) bool { return d.terms[ids[a]] < d.terms[ids[b]] })
	return ids
}
