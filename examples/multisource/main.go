// Multisource: the Newsblaster scenario (SNB) — one day of news from two
// dozen outlets. The same facet hierarchy organizes stories regardless of
// origin, and the facets make cross-source comparison trivial: for each
// top facet, how much does each source cover it?
package main

import (
	"fmt"
	"log"
	"sort"

	facet "repro"
)

func main() {
	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	docs, err := env.GenerateNewsCorpus("SNB", 800, 22)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := facet.NewSystem(env, facet.Options{TopK: 100})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		log.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		log.Fatal(err)
	}
	b, err := res.Browser(h)
	if err != nil {
		log.Fatal(err)
	}

	sources := map[string]int{}
	for i := 0; i < sys.Len(); i++ {
		sources[sys.Document(i).Source]++
	}
	fmt.Printf("Corpus: %d stories from %d sources.\n\n", sys.Len(), len(sources))

	roots := b.Children("", facet.Selection{})
	if len(roots) > 5 {
		roots = roots[:5]
	}
	fmt.Println("Coverage of the top facets by source (top 6 sources):")
	type srcCount struct {
		name string
		n    int
	}
	var ranked []srcCount
	for s, n := range sources {
		ranked = append(ranked, srcCount{s, n})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].n != ranked[b].n {
			return ranked[a].n > ranked[b].n
		}
		return ranked[a].name < ranked[b].name
	})
	if len(ranked) > 6 {
		ranked = ranked[:6]
	}
	fmt.Printf("%-26s", "facet \\ source")
	for _, s := range ranked {
		fmt.Printf("%10s", abbreviate(s.name))
	}
	fmt.Println()
	for _, fc := range roots {
		fmt.Printf("%-26s", fc.Term)
		for _, s := range ranked {
			n := 0
			for _, d := range b.Docs(facet.Selection{Terms: []string{fc.Term}}) {
				if sys.Document(d).Source == s.name {
					n++
				}
			}
			fmt.Printf("%10d", n)
		}
		fmt.Println()
	}
}

func abbreviate(s string) string {
	if len(s) <= 9 {
		return s
	}
	out := ""
	for _, w := range []byte(s) {
		if w >= 'A' && w <= 'Z' {
			out += string(w)
		}
	}
	if out == "" {
		return s[:9]
	}
	return out
}
