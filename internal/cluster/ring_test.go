package cluster

import (
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty shard name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
	r, err := NewRing([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Index("zzz"); err == nil {
		t.Fatal("non-member Index accepted")
	}
}

// TestRingDeterminism: placement must depend only on membership and the
// document id, never on process state, so independently built rings
// (e.g. one per shard server plus one in the coordinator) agree.
func TestRingDeterminism(t *testing.T) {
	shards := []string{"alpha", "beta", "gamma"}
	r1, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(append([]string(nil), shards...), 0)
	if err != nil {
		t.Fatal(err)
	}
	for doc := 0; doc < 5000; doc++ {
		if r1.Owner(doc) != r2.Owner(doc) {
			t.Fatalf("doc %d: %s vs %s", doc, r1.Owner(doc), r2.Owner(doc))
		}
	}
}

// TestRingPartition: every document lands on exactly one shard, slices
// are ascending, and Partition agrees with Owner.
func TestRingPartition(t *testing.T) {
	const n = 2000
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := r.Partition(n)
	if len(parts) != 3 {
		t.Fatalf("got %d partitions", len(parts))
	}
	seen := make([]bool, n)
	for s, part := range parts {
		prev := -1
		for _, doc := range part {
			if doc <= prev {
				t.Fatalf("shard %d: ids not strictly ascending at %d", s, doc)
			}
			prev = doc
			if seen[doc] {
				t.Fatalf("doc %d assigned twice", doc)
			}
			seen[doc] = true
			if got := r.OwnerIndex(doc); got != s {
				t.Fatalf("doc %d: Partition says shard %d, Owner says %d", doc, s, got)
			}
		}
	}
	for doc, ok := range seen {
		if !ok {
			t.Fatalf("doc %d unassigned", doc)
		}
	}
}

// TestRingBalance: with virtual nodes, no shard should own a wildly
// disproportionate share. The bound is loose (3x the fair share) — the
// point is to catch a broken hash, not to certify perfect spread.
func TestRingBalance(t *testing.T) {
	const n = 10000
	r, err := NewRing([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fair := n / 4
	for s, part := range r.Partition(n) {
		if len(part) > 3*fair || len(part) < fair/3 {
			t.Fatalf("shard %d owns %d of %d docs (fair share %d)", s, len(part), n, fair)
		}
	}
}

// TestRingConsistency: the consistent-hashing property. Growing the
// membership from 3 to 4 shards must only move documents TO the new
// shard — a document that stays on an old shard stays on the SAME old
// shard — and the moved fraction should be roughly 1/4, not 3/4 (which
// is what naive modulo hashing would reshuffle).
func TestRingConsistency(t *testing.T) {
	const n = 10000
	r3, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for doc := 0; doc < n; doc++ {
		was, is := r3.Owner(doc), r4.Owner(doc)
		if was == is {
			continue
		}
		if is != "d" {
			t.Fatalf("doc %d moved %s -> %s, not to the new shard", doc, was, is)
		}
		moved++
	}
	// Expect ~n/4 moves; allow a generous band.
	if moved < n/8 || moved > n/2 {
		t.Fatalf("adding a 4th shard moved %d of %d docs (expected around %d)", moved, n, n/4)
	}
}
