package hierarchy

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Export formats for the extracted hierarchies: Graphviz DOT for
// visualization and JSON for downstream tooling — the artifacts a team
// adopting the library would feed into their own UI.

// WriteDOT renders the forest as a Graphviz digraph. Node labels carry
// the term and its document frequency.
func WriteDOT(w io.Writer, f *Forest, graphName string) error {
	if graphName == "" {
		graphName = "facets"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", graphName); err != nil {
		return err
	}
	var writeErr error
	emit := func(format string, args ...any) {
		if writeErr == nil {
			_, writeErr = fmt.Fprintf(w, format, args...)
		}
	}
	f.Walk(func(n *Node, _ int) {
		emit("  %q [label=%q];\n", n.Term, fmt.Sprintf("%s (%d)", n.Term, n.DF))
		for _, c := range n.Children {
			emit("  %q -> %q;\n", n.Term, c.Term)
		}
	})
	emit("}\n")
	return writeErr
}

// JSONNode is the serialized form of a hierarchy node.
type JSONNode struct {
	Term     string      `json:"term"`
	DF       int         `json:"df"`
	Children []*JSONNode `json:"children,omitempty"`
}

// ToJSON converts the forest into serializable roots.
func ToJSON(f *Forest) []*JSONNode {
	var convert func(n *Node) *JSONNode
	convert = func(n *Node) *JSONNode {
		out := &JSONNode{Term: n.Term, DF: n.DF}
		for _, c := range n.Children {
			out.Children = append(out.Children, convert(c))
		}
		return out
	}
	roots := make([]*JSONNode, 0, len(f.Roots))
	for _, r := range f.Roots {
		roots = append(roots, convert(r))
	}
	return roots
}

// WriteJSON writes the forest as indented JSON.
func WriteJSON(w io.Writer, f *Forest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(f))
}

// FromJSON reconstructs a forest from serialized roots (inverse of
// ToJSON); used to load previously exported hierarchies.
func FromJSON(roots []*JSONNode) (*Forest, error) {
	f := &Forest{index: map[string]*Node{}}
	var convert func(j *JSONNode, parent *Node) (*Node, error)
	convert = func(j *JSONNode, parent *Node) (*Node, error) {
		if j.Term == "" {
			return nil, fmt.Errorf("hierarchy: empty term in JSON")
		}
		if _, dup := f.index[j.Term]; dup {
			return nil, fmt.Errorf("hierarchy: duplicate term %q in JSON", j.Term)
		}
		n := &Node{Term: j.Term, DF: j.DF, Parent: parent}
		f.index[j.Term] = n
		for _, c := range j.Children {
			child, err := convert(c, n)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
		}
		return n, nil
	}
	for _, r := range roots {
		root, err := convert(r, nil)
		if err != nil {
			return nil, err
		}
		f.Roots = append(f.Roots, root)
	}
	return f, nil
}

// ReadJSON parses a forest previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Forest, error) {
	var roots []*JSONNode
	dec := json.NewDecoder(r)
	if err := dec.Decode(&roots); err != nil {
		return nil, fmt.Errorf("hierarchy: %w", err)
	}
	return FromJSON(roots)
}

// FormatTree renders the forest as an indented text tree (the format the
// CLI tools print).
func FormatTree(f *Forest) string {
	var sb strings.Builder
	f.Walk(func(n *Node, depth int) {
		fmt.Fprintf(&sb, "%s%s (%d)\n", strings.Repeat("  ", depth), n.Term, n.DF)
	})
	return sb.String()
}
