package cluster

import (
	"net/http"

	"repro/internal/browse"
	"repro/internal/serve"
	"repro/internal/textdb"
)

// Shard is one partition of the corpus served by the existing indexed
// browse engine. The engine is built over the shard's slice only — its
// posting lists, keyword index, date order, and query cache cover just
// the local documents — while global keeps the mapping from local
// document ids back to the corpus-wide ids the coordinator merges on.
type Shard struct {
	name   string
	iface  *browse.Interface
	global []int32 // global[i] = corpus-wide id of local doc i, ascending
}

// BuildShard slices the full interface down to the partition the ring
// assigns to the named shard and builds a fresh browse engine over it.
// The hierarchy is shared globally (every shard serves the same facet
// tree; only the documents differ), and the slice's local ids are the
// ascending renumbering of its global ids, so per-shard document
// answers merge back into global order.
func BuildShard(iface *browse.Interface, ring *Ring, name string) (*Shard, error) {
	idx, err := ring.Index(name)
	if err != nil {
		return nil, err
	}
	part := ring.Partition(iface.Corpus().Len())[idx]
	corpus := textdb.NewCorpus()
	rows := make([][]string, 0, len(part))
	global := make([]int32, 0, len(part))
	allRows := iface.DocTermRows()
	for _, d := range part {
		doc := iface.Corpus().Doc(textdb.DocID(d))
		// Copy the document: Corpus.Add assigns the (local) ID in place,
		// and the full interface's corpus must keep its own ids.
		corpus.Add(&textdb.Document{Title: doc.Title, Source: doc.Source, Date: doc.Date, Text: doc.Text})
		rows = append(rows, allRows[d])
		global = append(global, int32(d))
	}
	sub, err := browse.Build(corpus, iface.Forest(), rows)
	if err != nil {
		return nil, err
	}
	sub.SetEpoch(iface.Epoch())
	return &Shard{name: name, iface: sub, global: global}, nil
}

// Name returns the shard's ring name.
func (sh *Shard) Name() string { return sh.name }

// Interface returns the shard-local browse engine (for tests and for
// serving the shard's own single-node routes).
func (sh *Shard) Interface() *browse.Interface { return sh.iface }

// Len returns the number of documents in the shard's slice.
func (sh *Shard) Len() int { return len(sh.global) }

// Register mounts the shard's scatter endpoints on a serve.Server:
//
//	GET /api/v1/cluster/facets  — children counts over the local slice
//	GET /api/v1/cluster/docs    — matching docs with GLOBAL ids
//	GET /api/v1/cluster/dates   — date histogram over the local slice
//	GET /api/v1/cluster/cross   — cross-tab cells over the local slice
//
// They accept exactly the public routes' query parameters (the
// coordinator forwards the client's raw query string verbatim) and
// answer in the same JSON envelope, so a shard is operable with curl
// like any other node. Like EnableIngest, Register must run before the
// server starts handling traffic.
func (sh *Shard) Register(srv *serve.Server) {
	srv.Handle(http.MethodGet, "cluster/facets", "cluster_facets", sh.handleFacets)
	srv.Handle(http.MethodGet, "cluster/docs", "cluster_docs", sh.handleDocs)
	srv.Handle(http.MethodGet, "cluster/dates", "cluster_dates", sh.handleDates)
	srv.Handle(http.MethodGet, "cluster/cross", "cluster_cross", sh.handleCross)
}

// ShardFacets is the GET /api/v1/cluster/facets payload: the shard's
// children counts under the selection, zero counts omitted. No limit is
// applied — truncation is only correct after the coordinator has summed
// counts across shards.
type ShardFacets struct {
	Epoch  uint64              `json:"epoch"`
	Total  int                 `json:"total"`
	Facets []browse.FacetCount `json:"facets"`
}

func (sh *Shard) handleFacets(w http.ResponseWriter, r *http.Request) {
	sel, err := serve.ParseSelection(r)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	parent := r.URL.Query().Get("parent")
	serve.WriteJSON(w, ShardFacets{
		Epoch:  sh.iface.Epoch(),
		Total:  sh.iface.MatchCount(sel),
		Facets: sh.iface.Children(parent, sel),
	})
}

// ShardDocs is the GET /api/v1/cluster/docs payload: the shard's first
// `limit` matching documents in ascending GLOBAL id order, plus the
// shard's total match count. Summaries (including snippets) are
// rendered shard-side, where the document text lives; the coordinator
// only merges and truncates.
type ShardDocs struct {
	Epoch uint64             `json:"epoch"`
	Total int                `json:"total"`
	Docs  []serve.DocSummary `json:"docs"`
}

func (sh *Shard) handleDocs(w http.ResponseWriter, r *http.Request) {
	sel, err := serve.ParseSelection(r)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	limit, err := serve.QueryBoundedInt(r, "limit", 20, 500)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	ids := sh.iface.Docs(sel)
	resp := ShardDocs{Epoch: sh.iface.Epoch(), Total: len(ids)}
	for i, id := range ids {
		if i >= limit {
			break
		}
		doc := sh.iface.Corpus().Doc(id)
		resp.Docs = append(resp.Docs, serve.DocSummary{
			ID:      int(sh.global[id]),
			Title:   doc.Title,
			Source:  doc.Source,
			Date:    doc.Date.Format("2006-01-02"),
			Snippet: textdb.Snippet(doc, sel.Query, 24),
		})
	}
	serve.WriteJSON(w, resp)
}

// ShardDates is the GET /api/v1/cluster/dates payload: the shard's
// date histogram under the selection, buckets ascending.
type ShardDates struct {
	Epoch   uint64             `json:"epoch"`
	Buckets []serve.DateBucket `json:"buckets"`
}

func (sh *Shard) handleDates(w http.ResponseWriter, r *http.Request) {
	sel, err := serve.ParseSelection(r)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	gran := r.URL.Query().Get("granularity")
	if gran == "" {
		gran = "day"
	}
	hist, err := sh.iface.DateHistogram(sel, gran)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	resp := ShardDates{Epoch: sh.iface.Epoch(), Buckets: make([]serve.DateBucket, len(hist))}
	for i, h := range hist {
		resp.Buckets[i] = serve.DateBucket{Bucket: h.Bucket.Format("2006-01-02"), Count: h.Count}
	}
	serve.WriteJSON(w, resp)
}

// ShardCross is the GET /api/v1/cluster/cross payload: the shard's
// cross-tabulation cells. Row and column terms come from the shared
// hierarchy, so every shard reports the same axes and cells sum.
type ShardCross struct {
	Epoch    uint64   `json:"epoch"`
	RowTerms []string `json:"row_terms"`
	ColTerms []string `json:"col_terms"`
	Cells    [][]int  `json:"cells"`
}

func (sh *Shard) handleCross(w http.ResponseWriter, r *http.Request) {
	sel, err := serve.ParseSelection(r)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest,
			errNeedAB)
		return
	}
	ct, err := sh.iface.Cross(a, b, sel)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err)
		return
	}
	serve.WriteJSON(w, ShardCross{
		Epoch:    sh.iface.Epoch(),
		RowTerms: ct.RowTerms,
		ColTerms: ct.ColTerms,
		Cells:    ct.Cells,
	})
}
