// Package snapshot persists the computed serving state of a faceted
// archive — the corpus, the facet hierarchy, the Step-3 DF statistics,
// and the per-facet-term posting lists — in a versioned, checksummed
// binary format. Loading a snapshot rehydrates a ready-to-serve
// browse.Interface without re-running any pipeline stage, which turns a
// facetserve restart from a full re-extraction into a warm start
// measured in milliseconds (see DESIGN §10).
//
// Layout (all integers little-endian):
//
//	magic "FSNP" | version u16 | reserved u16 | payloadLen u64 | crc32c u32 | payload
//
// The payload is a sequence of sections (meta, documents, facet stats,
// hierarchy, annotation rows, posting lists) encoded with uvarint
// lengths. Encoding is canonical — posting lists are sorted by term —
// so encode→decode→encode is byte-identical, which the regression suite
// checks. Decoding verifies the checksum before parsing and returns
// typed errors (ErrBadMagic, ErrChecksum, ErrTruncated, ErrCorrupt,
// *VersionError) so callers can distinguish an incompatible snapshot
// from a damaged one.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/browse"
	"repro/internal/hierarchy"
	"repro/internal/textdb"
)

// Version is the current format version; decoders reject others with a
// *VersionError.
const Version = 1

const magic = "FSNP"

// headerLen is the fixed prefix before the payload: magic(4) +
// version(2) + reserved(2) + payloadLen(8) + crc32c(4).
const headerLen = 4 + 2 + 2 + 8 + 4

// Typed decode errors. ErrTruncated covers inputs that end mid-value,
// ErrCorrupt covers structurally impossible values in an input that
// passed the checksum (which indicates an encoder bug rather than bit
// rot, but is still rejected loudly).
var (
	ErrBadMagic  = errors.New("snapshot: bad magic (not a snapshot file)")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrTruncated = errors.New("snapshot: truncated")
	ErrCorrupt   = errors.New("snapshot: corrupt")
)

// VersionError reports a well-formed snapshot written by an
// incompatible format version.
type VersionError struct {
	Got uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: unsupported format version %d (this build reads version %d)", e.Got, Version)
}

// Meta carries provenance for a snapshot.
type Meta struct {
	// Epoch is the ingest epoch the snapshot captures (0 for batch
	// builds); it seeds the rehydrated interface's cache keys.
	Epoch uint64
	// Profile and Seed identify the dataset for operator forensics.
	Profile string
	Seed    uint64
	// CreatedUnixNano timestamps the capture (0 when unknown).
	CreatedUnixNano int64
}

// Doc is one persisted document.
type Doc struct {
	Title  string
	Source string
	// DateUnixNano is the document date; math.MinInt64 encodes the zero
	// time (a date that was never set must not roundtrip into year 1754).
	DateUnixNano int64
	Text         string
}

// FacetStat is one row of the persisted DF table: the Step-3 statistics
// of a ranked facet term.
type FacetStat struct {
	Term   string
	DF     int
	DFC    int
	ShiftF int
	ShiftR int
	Score  float64
}

// Posting is one facet term's roll-up posting list.
type Posting struct {
	Term string
	Set  *bitset.Set
}

// Snapshot is the decoded (or to-be-encoded) serving state.
type Snapshot struct {
	Meta     Meta
	Docs     []Doc
	Facets   []FacetStat
	Roots    []*hierarchy.JSONNode
	DocTerms [][]string // one row per document, same order as Docs
	Postings []Posting  // sorted by term
}

// Capture assembles a Snapshot from a built browsing interface plus the
// extraction's facet statistics (nil is allowed when the stats are not
// at hand, e.g. on a live epoch re-save).
func Capture(iface *browse.Interface, meta Meta, facets []FacetStat) *Snapshot {
	corpus := iface.Corpus()
	s := &Snapshot{
		Meta:     meta,
		Docs:     make([]Doc, corpus.Len()),
		Facets:   facets,
		Roots:    hierarchy.ToJSON(iface.Forest()),
		DocTerms: iface.DocTermRows(),
	}
	for i := 0; i < corpus.Len(); i++ {
		d := corpus.Doc(textdb.DocID(i))
		nanos := int64(math.MinInt64)
		if !d.Date.IsZero() {
			nanos = d.Date.UnixNano()
		}
		s.Docs[i] = Doc{Title: d.Title, Source: d.Source, DateUnixNano: nanos, Text: d.Text}
	}
	postings := iface.Postings()
	s.Postings = make([]Posting, 0, len(postings))
	for term, set := range postings {
		s.Postings = append(s.Postings, Posting{Term: term, Set: set})
	}
	sort.Slice(s.Postings, func(a, b int) bool { return s.Postings[a].Term < s.Postings[b].Term })
	return s
}

// docDate converts a persisted date back to time.Time.
func docDate(nanos int64) time.Time {
	if nanos == math.MinInt64 {
		return time.Time{}
	}
	return time.Unix(0, nanos).UTC()
}

// BrowseInterface rehydrates a ready-to-serve engine: the corpus is
// rebuilt, the forest reconstructed, and the persisted posting lists
// installed directly — no pipeline stage runs.
func (s *Snapshot) BrowseInterface() (*browse.Interface, error) {
	corpus := textdb.NewCorpus()
	for i := range s.Docs {
		d := &s.Docs[i]
		corpus.Add(&textdb.Document{Title: d.Title, Source: d.Source, Date: docDate(d.DateUnixNano), Text: d.Text})
	}
	forest, err := hierarchy.FromJSON(s.Roots)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	postings := make(map[string]*bitset.Set, len(s.Postings))
	for _, p := range s.Postings {
		postings[p.Term] = p.Set
	}
	iface, err := browse.Rehydrate(corpus, forest, s.DocTerms, postings)
	if err != nil {
		return nil, err
	}
	iface.SetEpoch(s.Meta.Epoch)
	return iface, nil
}

// Verify recomputes the roll-up posting lists from the snapshot's own
// annotation rows and hierarchy and compares them bit-for-bit against
// the persisted ones — the deep consistency check facetserve runs in the
// background after a warm start (the checksum already guards against
// bit rot; Verify additionally guards against a snapshot written by a
// buggy or mismatched encoder).
func (s *Snapshot) Verify() error {
	corpus := textdb.NewCorpus()
	for i := range s.Docs {
		d := &s.Docs[i]
		corpus.Add(&textdb.Document{Title: d.Title, Source: d.Source, Date: docDate(d.DateUnixNano), Text: d.Text})
	}
	forest, err := hierarchy.FromJSON(s.Roots)
	if err != nil {
		return fmt.Errorf("snapshot: verify: %w", err)
	}
	rebuilt, err := browse.Build(corpus, forest, s.DocTerms)
	if err != nil {
		return fmt.Errorf("snapshot: verify: %w", err)
	}
	want := rebuilt.Postings()
	if len(want) != len(s.Postings) {
		return fmt.Errorf("snapshot: verify: %d posting lists persisted, hierarchy implies %d", len(s.Postings), len(want))
	}
	for _, p := range s.Postings {
		w, ok := want[p.Term]
		if !ok {
			return fmt.Errorf("snapshot: verify: posting list for %q has no hierarchy node", p.Term)
		}
		if !wordsEqual(w.Words(), p.Set.Words()) || w.Len() != p.Set.Len() {
			return fmt.Errorf("snapshot: verify: posting list for %q disagrees with recomputed roll-up", p.Term)
		}
	}
	return nil
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- encoding ---

// Encode serializes the snapshot canonically.
func Encode(s *Snapshot) ([]byte, error) {
	if len(s.DocTerms) != len(s.Docs) {
		return nil, fmt.Errorf("snapshot: %d docs but %d annotation rows", len(s.Docs), len(s.DocTerms))
	}
	var p []byte // payload

	// Meta.
	p = binary.AppendUvarint(p, s.Meta.Epoch)
	p = appendString(p, s.Meta.Profile)
	p = binary.AppendUvarint(p, s.Meta.Seed)
	p = binary.AppendVarint(p, s.Meta.CreatedUnixNano)

	// Documents.
	p = binary.AppendUvarint(p, uint64(len(s.Docs)))
	for i := range s.Docs {
		d := &s.Docs[i]
		p = appendString(p, d.Title)
		p = appendString(p, d.Source)
		p = binary.AppendVarint(p, d.DateUnixNano)
		p = appendString(p, d.Text)
	}

	// Facet statistics (the DF table of the ranked facet terms).
	p = binary.AppendUvarint(p, uint64(len(s.Facets)))
	for i := range s.Facets {
		f := &s.Facets[i]
		p = appendString(p, f.Term)
		p = binary.AppendVarint(p, int64(f.DF))
		p = binary.AppendVarint(p, int64(f.DFC))
		p = binary.AppendVarint(p, int64(f.ShiftF))
		p = binary.AppendVarint(p, int64(f.ShiftR))
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(f.Score))
	}

	// Hierarchy forest, preorder.
	var encodeNode func(n *hierarchy.JSONNode) error
	p = binary.AppendUvarint(p, uint64(len(s.Roots)))
	encodeNode = func(n *hierarchy.JSONNode) error {
		if n == nil {
			return fmt.Errorf("snapshot: nil hierarchy node")
		}
		p = appendString(p, n.Term)
		p = binary.AppendVarint(p, int64(n.DF))
		p = binary.AppendUvarint(p, uint64(len(n.Children)))
		for _, c := range n.Children {
			if err := encodeNode(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range s.Roots {
		if err := encodeNode(r); err != nil {
			return nil, err
		}
	}

	// Annotation rows (count implied by the document count).
	for _, row := range s.DocTerms {
		p = binary.AppendUvarint(p, uint64(len(row)))
		for _, t := range row {
			p = appendString(p, t)
		}
	}

	// Posting lists over a corpus of len(Docs) bits, sorted by term.
	postings := append([]Posting(nil), s.Postings...)
	sort.Slice(postings, func(a, b int) bool { return postings[a].Term < postings[b].Term })
	nbits := len(s.Docs)
	p = binary.AppendUvarint(p, uint64(len(postings)))
	for _, post := range postings {
		if post.Set == nil || post.Set.Len() != nbits {
			return nil, fmt.Errorf("snapshot: posting list %q covers %d bits, want %d", post.Term, post.Set.Len(), nbits)
		}
		p = appendString(p, post.Term)
		for _, w := range post.Set.Words() {
			p = binary.LittleEndian.AppendUint64(p, w)
		}
	}

	// Header.
	out := make([]byte, 0, headerLen+len(p))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint16(out, 0) // reserved
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(p, crcTable))
	return append(out, p...), nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

// --- decoding ---

// PeekEpoch returns the snapshot's ingest epoch by reading only the
// fixed header and the first payload varint — no posting list, document,
// or hierarchy is decoded, so replication peers can answer "is this
// newer than epoch N?" on multi-megabyte snapshots in nanoseconds. It
// validates magic, version, and the declared payload length, but
// deliberately does NOT verify the checksum (that would touch every
// payload byte, defeating the point); callers that go on to use the
// bytes must still run them through Decode, which does.
func PeekEpoch(data []byte) (uint64, error) {
	return peekEpochPrefix(data, int64(len(data)))
}

// peekEpochPrefix is PeekEpoch over a prefix of the snapshot bytes:
// totalSize (when >= 0) stands in for len(data) in the payload-length
// validation, so a caller holding only the first few hundred bytes of a
// file (PeekEpochFile) can still validate the declared length against
// the real file size.
func peekEpochPrefix(data []byte, totalSize int64) (uint64, error) {
	if len(data) < len(magic) {
		return 0, ErrTruncated
	}
	if string(data[:len(magic)]) != magic {
		return 0, ErrBadMagic
	}
	if len(data) < headerLen {
		return 0, ErrTruncated
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	if version != Version {
		return 0, &VersionError{Got: version}
	}
	payloadLen := binary.LittleEndian.Uint64(data[8:16])
	if totalSize >= 0 {
		if totalSize < int64(headerLen) || uint64(totalSize)-uint64(headerLen) < payloadLen {
			return 0, ErrTruncated
		}
		if uint64(totalSize)-uint64(headerLen) > payloadLen {
			return 0, fmt.Errorf("%w: %d trailing bytes after payload", ErrCorrupt, uint64(totalSize)-uint64(headerLen)-payloadLen)
		}
	}
	epoch, n := binary.Uvarint(data[headerLen:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: uvarint overflow", ErrCorrupt)
	}
	return epoch, nil
}

// Decode parses and validates a serialized snapshot.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic) {
		return nil, ErrTruncated
	}
	if string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if len(data) < headerLen {
		return nil, ErrTruncated
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	if version != Version {
		return nil, &VersionError{Got: version}
	}
	payloadLen := binary.LittleEndian.Uint64(data[8:16])
	sum := binary.LittleEndian.Uint32(data[16:20])
	payload := data[headerLen:]
	if uint64(len(payload)) < payloadLen {
		return nil, ErrTruncated
	}
	if uint64(len(payload)) > payloadLen {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload", ErrCorrupt, uint64(len(payload))-payloadLen)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, ErrChecksum
	}

	r := &reader{data: payload}
	s := &Snapshot{}

	// Meta.
	var err error
	if s.Meta.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	if s.Meta.Profile, err = r.str(); err != nil {
		return nil, err
	}
	if s.Meta.Seed, err = r.uvarint(); err != nil {
		return nil, err
	}
	if s.Meta.CreatedUnixNano, err = r.varint(); err != nil {
		return nil, err
	}

	// Documents.
	nDocs, err := r.count("documents")
	if err != nil {
		return nil, err
	}
	s.Docs = make([]Doc, 0, nDocs)
	for i := 0; i < nDocs; i++ {
		var d Doc
		if d.Title, err = r.str(); err != nil {
			return nil, err
		}
		if d.Source, err = r.str(); err != nil {
			return nil, err
		}
		if d.DateUnixNano, err = r.varint(); err != nil {
			return nil, err
		}
		if d.Text, err = r.str(); err != nil {
			return nil, err
		}
		s.Docs = append(s.Docs, d)
	}

	// Facet statistics.
	nFacets, err := r.count("facet stats")
	if err != nil {
		return nil, err
	}
	if nFacets > 0 {
		s.Facets = make([]FacetStat, 0, nFacets)
	}
	for i := 0; i < nFacets; i++ {
		var f FacetStat
		if f.Term, err = r.str(); err != nil {
			return nil, err
		}
		if f.DF, err = r.vint("facet df"); err != nil {
			return nil, err
		}
		if f.DFC, err = r.vint("facet dfc"); err != nil {
			return nil, err
		}
		if f.ShiftF, err = r.vint("facet shift_f"); err != nil {
			return nil, err
		}
		if f.ShiftR, err = r.vint("facet shift_r"); err != nil {
			return nil, err
		}
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		f.Score = math.Float64frombits(bits)
		s.Facets = append(s.Facets, f)
	}

	// Hierarchy forest.
	nRoots, err := r.count("hierarchy roots")
	if err != nil {
		return nil, err
	}
	var decodeNode func(depth int) (*hierarchy.JSONNode, error)
	decodeNode = func(depth int) (*hierarchy.JSONNode, error) {
		if depth > 10_000 {
			return nil, fmt.Errorf("%w: hierarchy deeper than 10000", ErrCorrupt)
		}
		n := &hierarchy.JSONNode{}
		var err error
		if n.Term, err = r.str(); err != nil {
			return nil, err
		}
		if n.DF, err = r.vint("node df"); err != nil {
			return nil, err
		}
		nc, err := r.count("node children")
		if err != nil {
			return nil, err
		}
		for i := 0; i < nc; i++ {
			c, err := decodeNode(depth + 1)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
		return n, nil
	}
	for i := 0; i < nRoots; i++ {
		root, err := decodeNode(0)
		if err != nil {
			return nil, err
		}
		s.Roots = append(s.Roots, root)
	}

	// Annotation rows.
	s.DocTerms = make([][]string, nDocs)
	for i := 0; i < nDocs; i++ {
		nt, err := r.count("annotation row")
		if err != nil {
			return nil, err
		}
		row := make([]string, 0, nt)
		for j := 0; j < nt; j++ {
			t, err := r.str()
			if err != nil {
				return nil, err
			}
			row = append(row, t)
		}
		s.DocTerms[i] = row
	}

	// Posting lists.
	nPost, err := r.count("posting lists")
	if err != nil {
		return nil, err
	}
	words := (nDocs + 63) / 64
	prevTerm := ""
	for i := 0; i < nPost; i++ {
		term, err := r.str()
		if err != nil {
			return nil, err
		}
		if i > 0 && term <= prevTerm {
			return nil, fmt.Errorf("%w: posting lists not in canonical term order (%q after %q)", ErrCorrupt, term, prevTerm)
		}
		prevTerm = term
		if r.remaining() < words*8 {
			return nil, ErrTruncated
		}
		ws := make([]uint64, words)
		for j := range ws {
			ws[j], _ = r.u64()
		}
		set, err := bitset.FromWords(ws, nDocs)
		if err != nil {
			return nil, fmt.Errorf("%w: posting list %q: %v", ErrCorrupt, term, err)
		}
		s.Postings = append(s.Postings, Posting{Term: term, Set: set})
	}

	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d unparsed payload bytes", ErrCorrupt, r.remaining())
	}
	return s, nil
}

// reader is a bounds-checked little-endian payload cursor.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: uvarint overflow", ErrCorrupt)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
	}
	r.off += n
	return v, nil
}

// vint decodes a varint that must fit in an int.
func (r *reader) vint(what string) (int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: %s %d out of range", ErrCorrupt, what, v)
	}
	return int(v), nil
}

// count decodes an element count and sanity-bounds it against the bytes
// actually remaining, so a corrupted count cannot drive a giant
// allocation before the per-element reads would fail anyway.
func (r *reader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, fmt.Errorf("%w: %s count %d exceeds remaining %d bytes", ErrCorrupt, what, v, r.remaining())
	}
	return int(v), nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", ErrTruncated
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *reader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}
