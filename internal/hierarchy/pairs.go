package hierarchy

import (
	"slices"

	"repro/internal/obsv"
)

// This file is the shared candidate-pair generator behind every
// co-occurrence builder's pairwise sweep. The dense formulation compares
// all n·(n−1) term pairs, but only pairs whose posting lists intersect
// can ever relate: P(x|y) ≥ θ needs co-occurrence, Jaccard similarity is
// zero without it, and the co-occurrence component of combined evidence
// vanishes. So instead of sweeping the full cross product, the builders
// walk an inverted "term → candidate partners" index derived from the
// bitset posting lists and score only pairs with co-occurrence ≥ 1 —
// on sparse corpora an order of magnitude fewer evaluations (see the
// hierarchy.pairs.* counters and DESIGN §8 for the cost model).
//
// The generator is deliberately deterministic: partners stream in
// ascending slot order with exact co-occurrence counts, so a pruned
// sweep visits a subset of the dense sweep's pairs with identical
// arithmetic — the dense and pruned forests are byte-identical, which
// TestPrunedSweepEquivalence and FuzzPairStream pin.

// pairIndex is the inverted doc → alive-term index over a termStats. It
// is immutable after construction and shared by all sweep workers; the
// mutable per-sweep state lives in pairScratch, one per worker.
type pairIndex struct {
	st *termStats
	// docTerms[d] lists the alive slots (indices into st.alive) of the
	// terms present in document d, ascending. Rows slice one shared slab.
	docTerms [][]int32
}

// newPairIndex inverts the alive terms' posting lists into per-document
// term lists. Cost is one pass over the postings — O(Σ df) — with a
// single backing slab shared by every row.
func newPairIndex(st *termStats) *pairIndex {
	counts := make([]int32, st.nDocs)
	total := 0
	for _, gi := range st.alive {
		st.sets[gi].ForEach(func(d int) bool {
			counts[d]++
			total++
			return true
		})
	}
	slab := make([]int32, 0, total)
	rows := make([][]int32, st.nDocs)
	for d, c := range counts {
		start := len(slab)
		slab = slab[:start+int(c)]
		rows[d] = slab[start:start:len(slab)]
	}
	// st.alive is sorted, so appending in alive order keeps each row
	// ascending by slot.
	for li, gi := range st.alive {
		st.sets[gi].ForEach(func(d int) bool {
			rows[d] = append(rows[d], int32(li))
			return true
		})
	}
	return &pairIndex{st: st, docTerms: rows}
}

// pairScratch is one worker's reusable accumulation state: a dense
// co-occurrence count array indexed by alive slot plus the list of slots
// touched during the current term's scan. Both are cleared between terms
// by walking the touched list, so a sweep allocates once per worker, not
// per pair.
type pairScratch struct {
	co      []int32
	touched []int32
}

// newScratch returns a scratch sized for this index's alive-term count.
func (ix *pairIndex) newScratch() *pairScratch {
	return &pairScratch{
		co:      make([]int32, len(ix.st.alive)),
		touched: make([]int32, 0, len(ix.st.alive)),
	}
}

// forCandidates streams term yi's candidate partners: every other alive
// slot xi whose posting list intersects yi's with |x ∩ y| ≥ minCo
// (minCo < 1 is treated as 1), in ascending slot order, with the exact
// co-occurrence count. Self-pairs are never yielded and each partner is
// yielded exactly once. sc must not be shared between concurrent calls;
// it is fully reset before forCandidates returns.
func (ix *pairIndex) forCandidates(yi int, sc *pairScratch, minCo int, fn func(xi, co int)) {
	if minCo < 1 {
		minCo = 1
	}
	ix.st.sets[ix.st.alive[yi]].ForEach(func(d int) bool {
		for _, xi := range ix.docTerms[d] {
			if sc.co[xi] == 0 {
				sc.touched = append(sc.touched, xi)
			}
			sc.co[xi]++
		}
		return true
	})
	// Touch order follows document order; sort so partners stream in
	// slot order regardless of which documents they co-occur in.
	// (slices.Sort, not sort.Slice: the latter allocates its closure on
	// every call, and forCandidates runs once per term per sweep.)
	slices.Sort(sc.touched)
	for _, xi := range sc.touched {
		co := int(sc.co[xi])
		sc.co[xi] = 0
		if int(xi) != yi && co >= minCo {
			fn(int(xi), co)
		}
	}
	sc.touched = sc.touched[:0]
}

// pairCounts is one worker's tally of sweep work, merged across workers
// and published to the obsv registry after the sweep:
//
//   - candidate: pairs the generator yielded (nonzero co-occurrence);
//   - evaluated: pairs the builder actually scored after its own cheap
//     structural filters (e.g. subsumption's df(x) > df(y));
//   - skipped: pairs the dense sweep would have iterated that the
//     pruned sweep never touched.
//
// candidate+skipped therefore reconstructs the dense sweep's iteration
// count, and (candidate+skipped)/evaluated is the pruning factor the
// stagereport experiment surfaces.
type pairCounts struct {
	candidate, evaluated, skipped int64
}

func (c *pairCounts) add(o pairCounts) {
	c.candidate += o.candidate
	c.evaluated += o.evaluated
	c.skipped += o.skipped
}

// publishPairCounts folds per-worker tallies into the registry's
// hierarchy.pairs.{candidate,evaluated,skipped} counters and records the
// sweep width in the hierarchy.sweep.terms gauge (so reports can compare
// evaluated pairs against the all-pairs count n·(n−1)/2). nil registries
// are ignored — instrumentation is opt-in.
func publishPairCounts(reg *obsv.Registry, perWorker []pairCounts, sweepTerms int) {
	if reg == nil {
		return
	}
	var total pairCounts
	for _, pc := range perWorker {
		total.add(pc)
	}
	reg.Counter("hierarchy.pairs.candidate").Add(total.candidate)
	reg.Counter("hierarchy.pairs.evaluated").Add(total.evaluated)
	reg.Counter("hierarchy.pairs.skipped").Add(total.skipped)
	reg.Gauge("hierarchy.sweep.terms").Set(int64(sweepTerms))
}

// sweepWorkers sizes per-worker state for a parallel.For sweep: worker
// IDs are in [0, max(1, workers)).
func sweepWorkers(workers int) int {
	if workers < 1 {
		return 1
	}
	return workers
}
