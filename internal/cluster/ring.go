// Package cluster scales the faceted serving layer beyond one process,
// along the two axes the ROADMAP's "millions of users" north star
// requires: corpus size (sharding) and read throughput (replication).
//
//   - Sharding: a consistent-hash ring over document ids partitions the
//     corpus across N shard servers, each running the existing
//     internal/browse indexed serving over its slice.
//   - Scatter-gather: a Coordinator fans each browse query out to every
//     shard over the /api/v1/ JSON envelope, sums per-facet counts,
//     unions and re-sorts document answers, and — because shards
//     partition the corpus — produces answers byte-identical to a
//     single node serving the whole corpus (the differential test
//     enforces exactly that).
//   - Replication: a leader ships each published epoch's
//     internal/snapshot bytes to stateless read replicas through a
//     pull-based endpoint; the epoch number is the replication
//     watermark, and replicas apply snapshots via the same atomic
//     interface swap live ingestion uses.
//
// Failure handling is partial-results by design: a shard that is down
// (breaker open, both hedged attempts failed) is dropped from the merge
// and named in the response's "degraded" report instead of failing the
// whole query.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual-node count. 64 points per
// shard keeps the worst/best shard load ratio within a few percent on
// realistic corpus sizes while the ring stays small enough to search in
// a handful of cache lines.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring assigning document ids to named
// shards. Placement is deterministic: it depends only on the shard
// names, the virtual-node count, and the document id — never on
// insertion order or map iteration — so every process that builds a
// ring from the same membership computes the same partition, which is
// what lets shard servers slice the corpus independently and still
// agree with the coordinator. Adding or removing one shard moves only
// the documents whose owning arc changed (the consistent-hashing
// property; see TestRingConsistency).
type Ring struct {
	shards []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int32 // index into shards
}

// NewRing builds a ring over the given shard names with vnodes virtual
// nodes per shard (0 selects DefaultVirtualNodes). Names must be
// non-empty and unique.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(shards))
	r := &Ring{
		shards: append([]string(nil), shards...),
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for i, name := range r.shards {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty shard name at position %d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			h := splitmix64(fnv64a(name) ^ uint64(v)*0x9E3779B97F4A7C15)
			r.points = append(r.points, ringPoint{hash: h, shard: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash collisions between virtual nodes are astronomically rare
		// but must still break deterministically: lower shard index wins.
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// Shards returns the shard names in construction order; callers must
// treat the slice as read-only.
func (r *Ring) Shards() []string { return r.shards }

// Index returns the position of the named shard, or an error if it is
// not a ring member.
func (r *Ring) Index(name string) (int, error) {
	for i, s := range r.shards {
		if s == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cluster: shard %q is not a ring member (have %v)", name, r.shards)
}

// Owner returns the shard that owns document id doc.
func (r *Ring) Owner(doc int) string { return r.shards[r.OwnerIndex(doc)] }

// OwnerIndex returns the index (into Shards) of the shard owning doc:
// the first virtual node at or clockwise after the document's hash.
func (r *Ring) OwnerIndex(doc int) int {
	h := splitmix64(uint64(doc) + 0x9E3779B97F4A7C15)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the ring
	}
	return int(r.points[i].shard)
}

// Partition assigns document ids 0..n-1 to shards, returning one
// ascending id slice per shard (indexed like Shards). Ascending order
// within each slice is what makes a shard's local ids a monotone
// renumbering of its global ids, so per-shard answers merge back into
// global id order with a single k-way merge.
func (r *Ring) Partition(n int) [][]int {
	out := make([][]int, len(r.shards))
	for doc := 0; doc < n; doc++ {
		s := r.OwnerIndex(doc)
		out[s] = append(out[s], doc)
	}
	return out
}

// splitmix64 / fnv64a mirror the deterministic hashing used across the
// repo (internal/remote, internal/resilient) so placement is stable
// without importing test-only seams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
