package ontology

import (
	"testing"
	"testing/quick"
)

func buildTest(t *testing.T) *KB {
	t.Helper()
	kb, err := Build(Config{Seed: 42})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return kb
}

func TestBuildDeterministic(t *testing.T) {
	a := buildTest(t)
	b := buildTest(t)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		ca, cb := a.Concept(ConceptID(i)), b.Concept(ConceptID(i))
		if ca.Name != cb.Name || ca.Kind != cb.Kind {
			t.Fatalf("concept %d differs: %q/%v vs %q/%v", i, ca.Name, ca.Kind, cb.Name, cb.Kind)
		}
	}
}

func TestBuildDifferentSeedsDiffer(t *testing.T) {
	a, _ := Build(Config{Seed: 1})
	b, _ := Build(Config{Seed: 2})
	same := 0
	ents1, ents2 := a.Entities(), b.Entities()
	n := min(len(ents1), len(ents2))
	for i := 0; i < n; i++ {
		if ents1[i].Name == ents2[i].Name {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical entity sets")
	}
}

func TestPopulationSizes(t *testing.T) {
	kb := buildTest(t)
	if n := len(kb.FacetTerms()); n < 250 || n > 1200 {
		t.Fatalf("facet-term count %d outside sane range", n)
	}
	if n := len(kb.Entities()); n < 700 || n > 6000 {
		t.Fatalf("entity count %d outside sane range", n)
	}
	if n := len(kb.Roots()); n < 10 {
		t.Fatalf("only %d facet roots", n)
	}
}

func TestByNameAndVariants(t *testing.T) {
	kb := buildTest(t)
	c, ok := kb.ByName("Political Leaders")
	if !ok || c.Kind != KindFacetTerm {
		t.Fatal("Political Leaders not found as facet term")
	}
	// Variant lookup: the G8 summit registers "G8".
	g8, ok := kb.ByName("g8")
	if !ok || g8.Class != ClassEvent {
		t.Fatal("G8 variant lookup failed")
	}
	if g8.Display != "2005 G8 Summit" {
		t.Fatalf("G8 resolves to %q", g8.Display)
	}
	if _, ok := kb.ByName("no such concept zzz"); ok {
		t.Fatal("nonexistent name resolved")
	}
}

func TestAncestorClosure(t *testing.T) {
	kb := buildTest(t)
	france, ok := kb.ByName("France")
	if !ok {
		t.Fatal("France missing")
	}
	europe, _ := kb.ByName("Europe")
	location, _ := kb.ByName("Location")
	if !kb.IsAncestor(europe.ID, france.ID) {
		t.Error("Europe should be ancestor of France")
	}
	if !kb.IsAncestor(location.ID, france.ID) {
		t.Error("Location should be transitive ancestor of France")
	}
	if kb.IsAncestor(france.ID, europe.ID) {
		t.Error("France must not be ancestor of Europe")
	}
	if kb.Root(france.ID) != location.ID {
		t.Errorf("Root(France) = %v", kb.Concept(kb.Root(france.ID)).Display)
	}
}

func TestEntitiesHaveFacetParents(t *testing.T) {
	kb := buildTest(t)
	for _, e := range kb.Entities() {
		if len(e.Parents) == 0 {
			t.Fatalf("entity %q has no parents", e.Display)
		}
		hasFacet := false
		for _, p := range e.Parents {
			if kb.Concept(p).IsFacet() {
				hasFacet = true
			}
		}
		if !hasFacet {
			t.Fatalf("entity %q has no facet parent", e.Display)
		}
	}
}

func TestFacetTermsReachRoots(t *testing.T) {
	kb := buildTest(t)
	for _, f := range kb.FacetTerms() {
		if f.Kind == KindFacetRoot {
			continue
		}
		if kb.Root(f.ID) == None {
			t.Fatalf("facet term %q does not reach a root", f.Display)
		}
	}
}

func TestPoliticianShape(t *testing.T) {
	kb := buildTest(t)
	pol, _ := kb.ByName("Political Leaders")
	var found *Concept
	for _, e := range kb.Entities() {
		for _, p := range e.Parents {
			if p == pol.ID {
				found = e
				break
			}
		}
		if found != nil {
			break
		}
	}
	if found == nil {
		t.Fatal("no politicians generated")
	}
	if found.Class != ClassPerson {
		t.Errorf("politician class = %v", found.Class)
	}
	if len(found.Variants) < 3 {
		t.Errorf("politician %q has %d variants, want >= 3", found.Display, len(found.Variants))
	}
	// A politician must belong to some country (have a Location-root ancestor).
	location, _ := kb.ByName("Location")
	if !kb.IsAncestor(location.ID, found.ID) {
		t.Errorf("politician %q has no location ancestry", found.Display)
	}
}

func TestIsaLexiconAcyclicAndRooted(t *testing.T) {
	lex := IsaLexicon()
	for w := range lex {
		seen := map[string]bool{w: true}
		cur := lex[w]
		steps := 0
		for cur != "" {
			if seen[cur] {
				t.Fatalf("is-a cycle at %q starting from %q", cur, w)
			}
			seen[cur] = true
			next, ok := lex[cur]
			if !ok {
				t.Fatalf("dangling hypernym %q (from %q)", cur, w)
			}
			cur = next
			if steps++; steps > 30 {
				t.Fatalf("chain too deep from %q", w)
			}
		}
	}
}

func TestHypernymChain(t *testing.T) {
	chain := HypernymChain("senator")
	if len(chain) < 3 {
		t.Fatalf("chain for senator too short: %v", chain)
	}
	if chain[0] != "politician" {
		t.Fatalf("chain[0] = %q", chain[0])
	}
	if HypernymChain("jacques") != nil {
		t.Fatal("named-entity token should have no chain")
	}
	if HypernymChain("entity") != nil {
		t.Fatal("root should have empty chain")
	}
}

func TestFacetCitiesPromoted(t *testing.T) {
	kb := buildTest(t)
	ny, ok := kb.ByName("New York")
	if !ok {
		t.Fatal("New York missing")
	}
	if ny.Kind != KindFacetTerm {
		t.Errorf("New York kind = %v, want facet term", ny.Kind)
	}
	lyon, ok := kb.ByName("Lyon")
	if !ok {
		t.Fatal("Lyon missing")
	}
	if lyon.Kind != KindEntity {
		t.Errorf("Lyon kind = %v, want entity", lyon.Kind)
	}
}

func TestScaleChangesEntityCount(t *testing.T) {
	small, err := Build(Config{Seed: 42, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	big := buildTest(t)
	if len(small.Entities()) >= len(big.Entities()) {
		t.Fatalf("scale 0.5 (%d entities) not smaller than scale 1 (%d)",
			len(small.Entities()), len(big.Entities()))
	}
}

func TestNegativeScaleRejected(t *testing.T) {
	if _, err := Build(Config{Seed: 1, Scale: -1}); err == nil {
		t.Fatal("expected error for negative scale")
	}
}

func TestRelatedEdgesValid(t *testing.T) {
	kb := buildTest(t)
	for i := 0; i < kb.Len(); i++ {
		c := kb.Concept(ConceptID(i))
		for _, r := range c.Related {
			if int(r) < 0 || int(r) >= kb.Len() {
				t.Fatalf("concept %q has out-of-range related id %d", c.Name, r)
			}
			if r == c.ID {
				t.Fatalf("concept %q related to itself", c.Name)
			}
		}
	}
}

func TestQuickAncestorsNeverContainSelf(t *testing.T) {
	kb := buildTest(t)
	f := func(raw uint16) bool {
		id := ConceptID(int(raw) % kb.Len())
		for _, a := range kb.FacetAncestors(id) {
			if a == id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
