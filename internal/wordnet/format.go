// Package wordnet implements the WordNet lexical database (Fellbaum 1998)
// as used by the paper's "WordNet Hypernyms" external resource: a writer
// and a hand-written parser for the real WordNet database file format
// (index.noun / data.noun), an in-memory synset graph, and hypernym /
// hyponym queries.
//
// The environment is offline, so the noun taxonomy itself is generated
// from the ontology's common-noun is-a lexicon; but it is serialized into
// the genuine WordNet 3.0 file format and then loaded back exclusively
// through the parser, so the code path a real deployment would use
// (shipping data.noun/index.noun files) is fully exercised.
//
// File format reference (wndb(5WN)):
//
//	data.noun:  synset_offset lex_filenum ss_type w_cnt word lex_id
//	            [word lex_id...] p_cnt [ptr...] | gloss
//	  ptr:      pointer_symbol synset_offset pos source/target
//	index.noun: lemma pos synset_cnt p_cnt [ptr_symbol...] sense_cnt
//	            tagsense_cnt synset_offset [synset_offset...]
//
// synset_offset is the byte offset of the synset's line within data.noun,
// w_cnt is two hexadecimal digits, p_cnt is three decimal digits, and the
// first lines of every file form a license block whose lines begin with
// two spaces. All of that is honored here.
package wordnet

import (
	"fmt"
	"sort"
	"strings"
)

// Pointer symbols used in the noun files (subset relevant to hierarchy
// construction; the full set is accepted by the parser).
const (
	PtrHypernym = "@"
	PtrHyponym  = "~"
)

// licenseHeader mimics the WordNet license block: every line begins with
// two spaces, which is how real parsers (and ours) recognize and skip it.
var licenseHeader = []string{
	"  1 This software and database is being provided to you, the LICENSEE, by",
	"  2 a synthetic reproduction of the WordNet database file format for the",
	"  3 purposes of offline experimentation. It follows the layout of the",
	"  4 files distributed with WordNet 3.0 (wndb(5WN)): data.noun carries one",
	"  5 synset per line addressed by byte offset, and index.noun maps each",
	"  6 lemma to the offsets of its senses. Lines of this header begin with",
	"  7 two spaces so that offset arithmetic matches the genuine files.",
	"  8 ",
}

// Generate serializes a noun taxonomy into WordNet database file format.
// The taxonomy maps each lemma (spaces allowed; they become underscores)
// to its immediate hypernym lemma, with roots mapping to "". Glosses are
// synthesized. It returns the contents of index.noun and data.noun.
func Generate(isa map[string]string) (indexNoun, dataNoun []byte, err error) {
	// Validate: every hypernym must itself be present.
	lemmas := make([]string, 0, len(isa))
	for lemma, parent := range isa {
		if lemma == "" {
			return nil, nil, fmt.Errorf("wordnet: empty lemma")
		}
		if parent != "" {
			if _, ok := isa[parent]; !ok {
				return nil, nil, fmt.Errorf("wordnet: lemma %q has unknown hypernym %q", lemma, parent)
			}
		}
		lemmas = append(lemmas, lemma)
	}
	sort.Strings(lemmas)

	// Children index for hyponym pointers.
	children := map[string][]string{}
	for _, lemma := range lemmas {
		if p := isa[lemma]; p != "" {
			children[p] = append(children[p], lemma)
		}
	}
	for _, c := range children {
		sort.Strings(c)
	}

	// One synset per lemma. First pass: build each data line with dummy
	// offsets; because offsets are fixed-width (8 digits), line lengths are
	// final and real offsets can be computed before the second pass.
	type synsetPlan struct {
		lemma string
		line  string // with placeholder offsets
		off   int
	}
	plans := make([]*synsetPlan, len(lemmas))
	lineFor := func(lemma string, fill func(string) string) string {
		var sb strings.Builder
		sb.WriteString(fill(lemma)) // synset_offset placeholder or real
		sb.WriteString(" 03 n 01 ") // lex_filenum (noun.object), ss_type, w_cnt
		sb.WriteString(underscore(lemma))
		sb.WriteString(" 0 ")
		var ptrs []string
		if p := isa[lemma]; p != "" {
			ptrs = append(ptrs, fmt.Sprintf("%s %s n 0000", PtrHypernym, fill(p)))
		}
		for _, c := range children[lemma] {
			ptrs = append(ptrs, fmt.Sprintf("%s %s n 0000", PtrHyponym, fill(c)))
		}
		fmt.Fprintf(&sb, "%03d", len(ptrs))
		for _, p := range ptrs {
			sb.WriteString(" ")
			sb.WriteString(p)
		}
		sb.WriteString(" | ")
		if p := isa[lemma]; p != "" {
			sb.WriteString("a kind of " + p)
		} else {
			sb.WriteString("a most general concept")
		}
		return sb.String()
	}

	placeholder := func(string) string { return "00000000" }
	offset := 0
	for _, h := range licenseHeader {
		offset += len(h) + 1
	}
	offsets := map[string]int{}
	for i, lemma := range lemmas {
		line := lineFor(lemma, placeholder)
		plans[i] = &synsetPlan{lemma: lemma, line: line, off: offset}
		offsets[lemma] = offset
		offset += len(line) + 1
	}
	// Second pass with real offsets.
	real := func(lemma string) string { return fmt.Sprintf("%08d", offsets[lemma]) }
	var data strings.Builder
	for _, h := range licenseHeader {
		data.WriteString(h)
		data.WriteByte('\n')
	}
	for _, p := range plans {
		line := lineFor(p.lemma, real)
		if len(line) != len(p.line) {
			return nil, nil, fmt.Errorf("wordnet: offset layout drifted for %q", p.lemma)
		}
		data.WriteString(line)
		data.WriteByte('\n')
	}

	// index.noun: lemma pos synset_cnt p_cnt [ptr_symbol...] sense_cnt
	// tagsense_cnt synset_offset. Every lemma has exactly one sense here.
	var index strings.Builder
	for _, h := range licenseHeader {
		index.WriteString(h)
		index.WriteByte('\n')
	}
	for _, lemma := range lemmas {
		symbols := []string{}
		if isa[lemma] != "" {
			symbols = append(symbols, PtrHypernym)
		}
		if len(children[lemma]) > 0 {
			symbols = append(symbols, PtrHyponym)
		}
		fmt.Fprintf(&index, "%s n 1 %d", underscore(lemma), len(symbols))
		for _, s := range symbols {
			index.WriteString(" " + s)
		}
		fmt.Fprintf(&index, " 1 0 %08d\n", offsets[lemma])
	}
	return []byte(index.String()), []byte(data.String()), nil
}

// underscore converts a lemma to file form (spaces → underscores, lowercase).
func underscore(lemma string) string {
	return strings.ReplaceAll(strings.ToLower(lemma), " ", "_")
}

// deunderscore converts a file-form lemma back to a phrase.
func deunderscore(lemma string) string {
	return strings.ReplaceAll(lemma, "_", " ")
}
