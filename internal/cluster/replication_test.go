package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/browse"
	"repro/internal/obsv"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

// leaderAndReplica wires a leader (serving the snapshot endpoint via a
// Shipper) and a replica publishing into its own serve.Server.
func leaderAndReplica(t *testing.T, reg *obsv.Registry) (*httptest.Server, *Shipper, *httptest.Server, *Replica, *serve.Server) {
	t.Helper()
	iface := clusterFixture(t, 24)
	leaderSrv := serve.New(iface, "leader")
	ship := NewShipper("test", 42, reg)
	ship.Register(leaderSrv)
	if err := ship.Publish(iface); err != nil {
		t.Fatal(err)
	}
	leader := httptest.NewServer(leaderSrv)
	t.Cleanup(leader.Close)

	// The replica's server starts with the same build; what matters is
	// that Publish atomically swaps in each shipped epoch.
	replicaSrv := serve.New(clusterFixture(t, 24), "replica")
	rep, err := NewReplica(ReplicaConfig{
		LeaderURL: leader.URL,
		Metrics:   reg,
	}, replicaSrv.Publish)
	if err != nil {
		t.Fatal(err)
	}
	replicaSrv.AddReadiness("replication", rep.Ready)
	replica := httptest.NewServer(replicaSrv)
	t.Cleanup(replica.Close)
	return leader, ship, replica, rep, replicaSrv
}

// TestReplicationAcrossEpochSwap is the replication differential: the
// replica applies the leader's shipped epoch and answers byte-identically
// to the leader; the leader then publishes a NEW epoch (grown corpus) and
// after one poll the replica converges on it — the differential holds on
// both sides of the atomic swap.
func TestReplicationAcrossEpochSwap(t *testing.T) {
	reg := obsv.NewRegistry()
	leader, ship, replica, rep, _ := leaderAndReplica(t, reg)
	ctx := context.Background()

	// Before the first sync the replica is explicitly not ready.
	if err := rep.Ready(); err == nil {
		t.Fatal("replica ready before first sync")
	}
	epoch, applied, err := rep.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !applied || epoch != 1 {
		t.Fatalf("first poll: applied=%v epoch=%d, want applied epoch 1", applied, epoch)
	}
	if err := rep.Ready(); err != nil {
		t.Fatalf("replica not ready after sync: %v", err)
	}
	if lag, ok := rep.Lag(); !ok || lag != 0 {
		t.Fatalf("lag = %d,%v after sync, want 0", lag, ok)
	}

	compare := func(label string) {
		t.Helper()
		for _, url := range differentialURLs() {
			wantStatus, wantBody := fetchBytes(t, leader.URL, url)
			gotStatus, gotBody := fetchBytes(t, replica.URL, url)
			if gotStatus != wantStatus || string(gotBody) != string(wantBody) {
				t.Fatalf("%s: %s diverges (replica %d vs leader %d)\nreplica: %s\nleader: %s",
					label, url, gotStatus, wantStatus, gotBody, wantBody)
			}
		}
	}
	compare("epoch 1")

	// A no-op poll: the leader has nothing newer, so the replica answers
	// 204 to itself and applies nothing.
	if _, applied, err := rep.Poll(ctx); err != nil || applied {
		t.Fatalf("idle poll: applied=%v err=%v", applied, err)
	}

	// Leader swaps in a new epoch over a grown corpus and ships it.
	iface2 := clusterFixture(t, 36)
	iface2.SetEpoch(2)
	// leaderSrv.Publish is what a live leader does; here the httptest
	// handler holds the serve.Server, so re-publish through the shipper
	// and the leader's own swap.
	if err := ship.Publish(iface2); err != nil {
		t.Fatal(err)
	}
	leaderSrv, ok := leader.Config.Handler.(*serve.Server)
	if !ok {
		t.Fatalf("leader handler is %T", leader.Config.Handler)
	}
	leaderSrv.Publish(iface2)

	epoch, applied, err = rep.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !applied || epoch != 2 {
		t.Fatalf("post-swap poll: applied=%v epoch=%d, want applied epoch 2", applied, epoch)
	}
	compare("epoch 2")

	if got, ok := ship.Epoch(); !ok || got != 2 {
		t.Fatalf("shipper epoch %d,%v", got, ok)
	}
	if got, ok := rep.AppliedEpoch(); !ok || got != 2 {
		t.Fatalf("replica applied epoch %d,%v", got, ok)
	}
}

// TestSnapshotWireRoundTrip proves the shipped bytes are the canonical
// encoding: serve over HTTP, decode, re-encode, and the fixed point
// holds (decode(encode(x)) re-encodes to the same bytes) — so a replica
// could itself act as a snapshot source without drift.
func TestSnapshotWireRoundTrip(t *testing.T) {
	iface := clusterFixture(t, 24)
	srv := serve.New(iface, "leader")
	ship := NewShipper("test", 7, nil)
	ship.Register(srv)
	if err := ship.Publish(iface); err != nil {
		t.Fatal(err)
	}
	leader := httptest.NewServer(srv)
	defer leader.Close()

	resp, err := http.Get(leader.URL + "/api/v1/cluster/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	wire, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot fetch: %d %s", resp.StatusCode, wire)
	}
	if got := resp.Header.Get(EpochHeader); got != "1" {
		t.Fatalf("epoch header %q", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Header-only epoch peek agrees with the full decode.
	peeked, err := snapshot.PeekEpoch(wire)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if peeked != snap.Meta.Epoch || peeked != 1 {
		t.Fatalf("peeked epoch %d, decoded %d", peeked, snap.Meta.Epoch)
	}

	// Canonical fixed point: re-encoding the decoded snapshot reproduces
	// the wire bytes exactly.
	again, err := snapshot.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(wire) {
		t.Fatalf("re-encode is not a fixed point: %d vs %d bytes", len(again), len(wire))
	}

	// Rehydration serves: the decoded interface answers like the leader.
	riface, err := snap.BrowseInterface()
	if err != nil {
		t.Fatal(err)
	}
	if riface.Corpus().Len() != iface.Corpus().Len() {
		t.Fatalf("rehydrated corpus %d docs, want %d", riface.Corpus().Len(), iface.Corpus().Len())
	}

	// Truncated and corrupted wire bytes fail with typed errors, never a
	// panic, and a replica poll surfaces them as errors.
	for _, n := range []int{0, 3, len(wire) / 2, len(wire) - 1} {
		if _, err := snapshot.Decode(wire[:n]); !errors.Is(err, snapshot.ErrTruncated) && !errors.Is(err, snapshot.ErrBadMagic) {
			t.Fatalf("truncated to %d bytes: err = %v", n, err)
		}
	}
	flipped := append([]byte(nil), wire...)
	flipped[len(flipped)/2] ^= 0xFF
	if _, err := snapshot.Decode(flipped); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("bit flip: err = %v", err)
	}

	// 204 watermark: asking for nothing newer than the current epoch.
	resp, err = http.Get(leader.URL + "/api/v1/cluster/snapshot?since=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent || resp.Header.Get(EpochHeader) != "1" {
		t.Fatalf("since=current: %d, epoch header %q", resp.StatusCode, resp.Header.Get(EpochHeader))
	}
	// Bad since parameter.
	resp, err = http.Get(leader.URL + "/api/v1/cluster/snapshot?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("since=banana: %d", resp.StatusCode)
	}
}

// TestReplicaHandlesBadLeader: a leader serving garbage (truncated or
// corrupt snapshot bytes, error statuses) produces typed poll errors and
// leaves the replica's serving state untouched.
func TestReplicaHandlesBadLeader(t *testing.T) {
	iface := clusterFixture(t, 24)
	good, err := snapshot.Encode(snapshot.Capture(iface, snapshot.Meta{Epoch: 1}, nil))
	if err != nil {
		t.Fatal(err)
	}
	var mode string
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode {
		case "truncated":
			w.Write(good[:len(good)/3])
		case "corrupt":
			bad := append([]byte(nil), good...)
			bad[len(bad)-2] ^= 0x01
			w.Write(bad)
		case "error":
			http.Error(w, "leader exploding", http.StatusInternalServerError)
		}
	}))
	defer leader.Close()

	published := 0
	rep, err := NewReplica(ReplicaConfig{LeaderURL: leader.URL},
		func(*browse.Interface) { published++ })
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		mode string
		want error // nil = any error acceptable, just not success
	}{
		{"truncated", snapshot.ErrTruncated},
		{"corrupt", snapshot.ErrChecksum},
		{"error", nil},
	}
	for _, tc := range cases {
		mode = tc.mode
		_, applied, err := rep.Poll(context.Background())
		if err == nil || applied {
			t.Fatalf("%s leader: applied=%v err=%v, want failure", tc.mode, applied, err)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Fatalf("%s leader: err = %v, want %v", tc.mode, err, tc.want)
		}
	}
	if published != 0 {
		t.Fatalf("bad leader caused %d publishes", published)
	}
	if err := rep.Ready(); err == nil {
		t.Fatal("replica ready despite never syncing")
	}
}
