// Command browsedemo builds a faceted browsing interface over a generated
// news archive and walks through OLAP-style interactions: root facet
// counts, drill-down, keyword+facet combination, and a slice-and-dice
// cross-tabulation (the Section V-F scenario).
package main

import (
	"flag"
	"fmt"
	"log"

	facet "repro"
)

func main() {
	log.SetFlags(0)
	docs := flag.Int("docs", 400, "number of documents")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := env.GenerateNewsCorpus("SNYT", *docs, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := facet.NewSystem(env, facet.Options{TopK: 120})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range corpus {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		log.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		log.Fatal(err)
	}
	b, err := res.Browser(h)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Archive of %d documents, %d facet terms extracted.\n\n", sys.Len(), len(res.Facets))
	fmt.Println("Top-level facets:")
	roots := b.Children("", facet.Selection{})
	for i, fc := range roots {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-28s %4d docs\n", fc.Term, fc.Count)
	}
	if len(roots) == 0 {
		return
	}

	top := roots[0].Term
	fmt.Printf("\nDrill into %q:\n", top)
	sel := facet.Selection{Terms: []string{top}}
	for i, fc := range b.Children(top, sel) {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-28s %4d docs\n", fc.Term, fc.Count)
	}

	fmt.Printf("\nCombine facet %q with a keyword query:\n", top)
	kids := b.Children(top, sel)
	query := "summit"
	combined := b.Docs(facet.Selection{Terms: []string{top}, Query: query})
	fmt.Printf("  facet=%q AND query=%q -> %d docs\n", top, query, len(combined))
	for i, d := range combined {
		if i >= 3 {
			break
		}
		fmt.Printf("    %s\n", sys.Document(d).Title)
	}
	_ = kids

	if len(roots) >= 2 {
		a, c := roots[0].Term, roots[1].Term
		fmt.Printf("\nSlice-and-dice: documents under both %q and %q: %d\n",
			a, c, len(b.Docs(facet.Selection{Terms: []string{a, c}})))
	}
}
