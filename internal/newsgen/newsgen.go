// Package newsgen generates the synthetic news corpora that stand in for
// the paper's three datasets: SNYT (1,000 New York Times stories from one
// day), SNB (17,000 Newsblaster stories from 24 sources), and MNYT
// (30,000 NYT stories covering a month).
//
// Every story is sampled from the ground-truth ontology: a topic is a
// small set of related concepts (a politician, an event, a company, ...);
// the story text mentions the concrete entities explicitly — capitalized,
// with realistic variant mentions ("Jacques Chirac" then "Chirac") — while
// the *general facet terms* that characterize the story mostly stay
// latent: each appears in the text only with probability FacetLeakProb.
// The paper's pilot study (Section III) found facet terms missing from
// 65% of the stories they should annotate; FacetLeakProb defaults to 0.35
// to match.
//
// Alongside the corpus the generator emits a Trace per document recording
// which concepts were mentioned and which facet concepts are the story's
// ground truth; the simulated Mechanical Turk annotators (internal/mturk)
// annotate from the trace, exactly as the paper's annotators annotated
// from their own world knowledge.
package newsgen

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/lang"
	"repro/internal/ontology"
	"repro/internal/textdb"
	"repro/internal/xrand"
)

// Profile describes one dataset to generate.
type Profile struct {
	Name    string
	NumDocs int
	Sources []string
	Days    int
	// TopicSkew is the Zipf exponent over entities; higher concentrates
	// stories on fewer topics, lower spreads them (multi-source corpora
	// cover more ground).
	TopicSkew float64
	// FacetLeakProb is the probability that a latent facet term of the
	// story actually appears in the text.
	FacetLeakProb float64
}

// The three dataset profiles of the paper (Section V-A). Document counts
// are the paper's; tests use scaled-down copies via WithDocs.
var (
	// A single outlet's daily coverage is editorially concentrated (high
	// topic skew); Newsblaster's 24 sources spread over more of the world
	// (low skew), and a month of one outlet sits between — this is what
	// makes the annotated facet vocabulary grow from SNYT to SNB/MNYT as
	// the paper reports (633 → 756 / 703 terms).
	SNYT = Profile{Name: "SNYT", NumDocs: 1000, Sources: []string{"The New York Times"}, Days: 1, TopicSkew: 1.45, FacetLeakProb: 0.35}
	SNB  = Profile{Name: "SNB", NumDocs: 17000, Sources: newsblasterSources, Days: 1, TopicSkew: 0.85, FacetLeakProb: 0.35}
	MNYT = Profile{Name: "MNYT", NumDocs: 30000, Sources: []string{"The New York Times"}, Days: 30, TopicSkew: 1.15, FacetLeakProb: 0.35}
)

var newsblasterSources = []string{
	"The New York Times", "The Washington Post", "Los Angeles Times",
	"Chicago Tribune", "The Boston Globe", "USA Today", "Reuters",
	"Associated Press", "Agence France-Presse", "BBC News", "The Guardian",
	"The Times of London", "The Daily Telegraph", "CNN", "ABC News",
	"CBS News", "NBC News", "Fox News", "The Miami Herald",
	"The Seattle Times", "The Denver Post", "Houston Chronicle",
	"San Francisco Chronicle", "The Atlanta Journal",
}

// WithDocs returns a copy of the profile with a different document count;
// used by tests and the sensitivity experiment.
func (p Profile) WithDocs(n int) Profile {
	p.NumDocs = n
	return p
}

// Trace is the generation record for one document.
type Trace struct {
	// Mentioned lists concepts whose names (or variants) literally appear
	// in the text: the seed entities plus any leaked facet terms.
	Mentioned []ontology.ConceptID
	// Facets is the story's ground-truth facet set: every facet concept
	// that a knowledgeable annotator could use to classify the story
	// (facet ancestors of mentioned concepts, whether or not their names
	// appear in the text).
	Facets []ontology.ConceptID
}

// Dataset bundles a generated corpus with its traces.
type Dataset struct {
	Profile Profile
	Corpus  *textdb.Corpus
	Traces  []Trace
	KB      *ontology.KB
}

// Generate builds the dataset. Generation is deterministic in (kb, profile
// fields, seed); each document draws from an order-independent sub-stream.
func Generate(kb *ontology.KB, p Profile, seed uint64) (*Dataset, error) {
	if p.NumDocs <= 0 {
		return nil, fmt.Errorf("newsgen: profile %q has no documents", p.Name)
	}
	if len(p.Sources) == 0 {
		return nil, fmt.Errorf("newsgen: profile %q has no sources", p.Name)
	}
	if p.Days <= 0 {
		p.Days = 1
	}
	if p.TopicSkew == 0 {
		p.TopicSkew = 1.0
	}
	if p.FacetLeakProb == 0 {
		p.FacetLeakProb = 0.35
	}
	g := &generator{
		kb:      kb,
		p:       p,
		rng:     xrand.New(seed).Sub("newsgen-" + p.Name),
		ents:    kb.Entities(),
		byFacet: map[ontology.ConceptID][]*ontology.Concept{},
	}
	// Index entities by their immediate facet parents: stories are
	// topically coherent, so secondary entities are drawn from the
	// primary's facet neighborhood.
	for _, e := range g.ents {
		for _, parent := range e.Parents {
			if kb.Concept(parent).IsFacet() {
				g.byFacet[parent] = append(g.byFacet[parent], e)
			}
		}
	}
	// A dataset-specific permutation decides which entities are "hot".
	perm := g.rng.Sub("perm").Perm(len(g.ents))
	g.entityOrder = make([]*ontology.Concept, len(g.ents))
	for i, j := range perm {
		g.entityOrder[i] = g.ents[j]
	}
	g.zipf = xrand.NewZipf(g.rng.Sub("zipf"), len(g.ents), p.TopicSkew)

	ds := &Dataset{Profile: p, Corpus: textdb.NewCorpus(), KB: kb}
	base := time.Date(2005, time.November, 7, 0, 0, 0, 0, time.UTC)
	for i := 0; i < p.NumDocs; i++ {
		drng := g.rng.SubInt("doc", i)
		doc, trace := g.story(drng)
		doc.Source = p.Sources[drng.Intn(len(p.Sources))]
		doc.Date = base.AddDate(0, 0, drng.Intn(p.Days))
		ds.Corpus.Add(doc)
		ds.Traces = append(ds.Traces, trace)
	}
	if err := ds.Corpus.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

type generator struct {
	kb          *ontology.KB
	p           Profile
	rng         *xrand.RNG
	ents        []*ontology.Concept
	entityOrder []*ontology.Concept
	zipf        *xrand.Zipf
	byFacet     map[ontology.ConceptID][]*ontology.Concept
}

// story generates one document and its trace.
func (g *generator) story(rng *xrand.RNG) (*textdb.Document, Trace) {
	// 1. Pick seed entities: one primary by Zipf rank, then 1–3 related or
	// random secondary entities.
	zipf := xrand.NewZipf(rng, g.zipf.N(), g.p.TopicSkew)
	primary := g.entityOrder[zipf.Next()]
	seeds := []*ontology.Concept{primary}
	want := 1 + rng.Intn(3)
	for _, rel := range primary.Related {
		if len(seeds) > want {
			break
		}
		rc := g.kb.Concept(rel)
		if rc.Kind == ontology.KindEntity && rng.Bool(0.6) {
			seeds = append(seeds, rc)
		}
	}
	// Remaining secondary entities come from the primary's facet
	// neighborhood — real stories are topically coherent; a small share
	// of cross-topic pairings keeps the corpus from being block-diagonal.
	for guard := 0; len(seeds) <= want && guard < 16; guard++ {
		var cand *ontology.Concept
		if rng.Bool(0.85) && len(primary.Parents) > 0 {
			parent := primary.Parents[rng.Intn(len(primary.Parents))]
			pool := g.byFacet[parent]
			if len(pool) > 0 {
				cand = pool[rng.Intn(len(pool))]
			}
		}
		if cand == nil {
			cand = g.entityOrder[zipf.Next()]
		}
		if cand.ID == primary.ID {
			continue
		}
		seeds = append(seeds, cand)
	}

	// 2. Ground-truth facet set: facet ancestors of the seeds.
	facetSet := map[ontology.ConceptID]bool{}
	var facets []ontology.ConceptID
	addFacet := func(id ontology.ConceptID) {
		if !facetSet[id] {
			facetSet[id] = true
			facets = append(facets, id)
		}
	}
	for _, s := range seeds {
		if s.IsFacet() {
			addFacet(s.ID)
		}
		for _, a := range g.kb.FacetAncestors(s.ID) {
			addFacet(a)
		}
	}

	// 3. Vocabulary pool for this story.
	pool := g.wordPool(seeds, facets)

	// 4. Leaked facet terms: each ground-truth facet term appears in the
	// text with probability FacetLeakProb.
	var leaked []*ontology.Concept
	for _, f := range facets {
		if rng.Bool(g.p.FacetLeakProb) {
			leaked = append(leaked, g.kb.Concept(f))
		}
	}

	// 5. Compose the text.
	var sb strings.Builder
	nSentences := 10 + rng.Intn(10)
	mentions := g.mentionPlan(rng, seeds, leaked, nSentences)
	for s := 0; s < nSentences; s++ {
		sb.WriteString(g.sentence(rng, pool, mentions[s]))
		sb.WriteString(" ")
	}
	title := g.title(rng, primary, pool)

	trace := Trace{Facets: facets}
	for _, s := range seeds {
		trace.Mentioned = append(trace.Mentioned, s.ID)
	}
	for _, l := range leaked {
		trace.Mentioned = append(trace.Mentioned, l.ID)
	}
	return &textdb.Document{Title: title, Text: strings.TrimSpace(sb.String())}, trace
}

// wordPool assembles the story's content vocabulary with weights:
// concept-specific words strongest, then facet vocabulary, topical filler,
// and the generic news head words.
type weightedPool struct {
	words   []string
	weights []float64
}

func (g *generator) wordPool(seeds []*ontology.Concept, facets []ontology.ConceptID) *weightedPool {
	p := &weightedPool{}
	add := func(w string, wt float64) {
		p.words = append(p.words, w)
		p.weights = append(p.weights, wt)
	}
	for _, s := range seeds {
		for _, w := range s.Words {
			add(w, 6)
		}
	}
	for _, f := range facets {
		for _, w := range g.kb.Concept(f).Words {
			add(w, 3)
		}
	}
	for i, w := range lang.GenericNewsWords {
		// Zipf-ish head: earlier generic words are much more frequent.
		add(w, 12.0/float64(1+i/8))
	}
	for i, w := range topicalFillerSample {
		add(w, 1.5/float64(1+i/40))
	}
	return p
}

func (p *weightedPool) pick(rng *xrand.RNG) string {
	return p.words[rng.Weighted(p.weights)]
}

// mentionPlan distributes entity and leaked-facet mentions over the
// sentences: seeds get 1–3 mentions each (first mention uses the full
// display name, later ones a variant), leaks get one mention.
type mention struct {
	text  string
	first bool
}

func (g *generator) mentionPlan(rng *xrand.RNG, seeds, leaked []*ontology.Concept, nSentences int) [][]mention {
	plan := make([][]mention, nSentences)
	place := func(m mention, at int) {
		plan[at] = append(plan[at], m)
	}
	slot := 0
	for _, s := range seeds {
		times := 1 + rng.Intn(3)
		for k := 0; k < times; k++ {
			text := s.Display
			if k > 0 && len(s.Variants) > 0 {
				text = xrand.Pick(rng, s.Variants)
			}
			place(mention{text: text, first: k == 0}, slot%nSentences)
			slot += 1 + rng.Intn(3)
		}
	}
	for _, l := range leaked {
		// A leaked facet term surfaces as prose. Proper-noun facets
		// (countries, cities) keep their capitalization; general terms
		// appear lowercased ("the political leaders of..."). Either kind
		// occasionally surfaces through a name variant, which is what the
		// Wikipedia Synonyms resource exists to resolve.
		form := l.Display
		if len(l.Variants) > 0 && rng.Bool(0.35) {
			form = xrand.Pick(rng, l.Variants)
		}
		if l.Class != ontology.ClassPlace {
			form = strings.ToLower(form)
		}
		place(mention{text: form}, rng.Intn(nSentences))
	}
	return plan
}

var verbs = []string{
	"announced", "said", "reported", "declared", "confirmed", "rejected",
	"planned", "launched", "criticized", "supported", "visited", "warned",
	"urged", "discussed", "reviewed", "proposed", "defended", "denied",
	"approved", "suspended", "examined", "outlined", "praised", "disputed",
	"described", "questioned", "welcomed", "dismissed", "predicted",
	"acknowledged", "demanded", "requested", "postponed", "canceled",
	"endorsed", "condemned", "authorized", "blocked", "challenged",
	"considered", "completed", "expanded", "reduced", "increased",
	"revealed", "disclosed", "estimated", "projected", "signaled",
	"highlighted", "emphasized", "downplayed", "clarified", "repeated",
	"negotiated", "arranged", "organized", "monitored", "inspected",
	"evaluated", "recommended", "accepted", "refused", "delayed",
	"unveiled", "presented", "introduced", "withdrew", "abandoned",
}

var connectives = []string{
	"as", "while", "after", "before", "because", "although", "when",
}

var openers = []string{
	"Officials", "Analysts", "Witnesses", "Observers", "Investigators",
	"Residents", "Experts", "Critics", "Supporters", "Negotiators",
}

// sentence builds one sentence: subject, verb, object noun phrase, an
// optional subordinate clause, with the planned mentions woven in.
func (g *generator) sentence(rng *xrand.RNG, pool *weightedPool, mentions []mention) string {
	var parts []string
	subjectDone := len(mentions) > 0
	if subjectDone {
		parts = append(parts, mentions[0].text)
	}
	if !subjectDone {
		if rng.Bool(0.4) {
			parts = append(parts, xrand.Pick(rng, openers))
		} else {
			parts = append(parts, "The "+pool.pick(rng))
		}
	}
	parts = append(parts, xrand.Pick(rng, verbs))
	parts = append(parts, "the "+pool.pick(rng))
	if rng.Bool(0.6) {
		parts = append(parts, "of the "+pool.pick(rng))
	}
	// Weave remaining mentions as prepositional attachments.
	for i, m := range mentions {
		if i == 0 {
			continue
		}
		prep := xrand.Pick(rng, []string{"with", "near", "involving", "alongside"})
		parts = append(parts, prep+" "+m.text)
	}
	if rng.Bool(0.5) {
		parts = append(parts, xrand.Pick(rng, connectives)+" the "+pool.pick(rng)+" "+xrand.Pick(rng, verbs)+" the "+pool.pick(rng))
	}
	s := strings.Join(parts, " ") + "."
	// Capitalize the first letter without touching the rest.
	return strings.ToUpper(s[:1]) + s[1:]
}

func (g *generator) title(rng *xrand.RNG, primary *ontology.Concept, pool *weightedPool) string {
	w := pool.pick(rng)
	v := xrand.Pick(rng, verbs)
	return primary.Display + " " + capitalize(v) + " " + capitalize(w)
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// topicalFillerSample is a mid-frequency vocabulary shared across stories;
// kept here (rather than importing the ontology's private list) so the
// generator's language model is self-contained.
var topicalFillerSample = []string{
	"agreement", "analysis", "approach", "argument", "assessment",
	"attempt", "authority", "balance", "benefit", "challenge", "claim",
	"comment", "concern", "conclusion", "condition", "conflict",
	"consequence", "contract", "contribution", "control", "criticism",
	"damage", "debate", "decline", "delay", "demand", "development",
	"difference", "difficulty", "direction", "discussion", "document",
	"doubt", "effect", "emergency", "estimate", "evidence", "example",
	"expansion", "experience", "explanation", "failure", "feature",
	"figure", "focus", "foundation", "framework", "function", "goal",
	"guidance", "impact", "importance", "improvement", "incident",
	"increase", "indication", "influence", "information", "initiative",
	"intention", "interest", "involvement", "knowledge", "level",
	"limit", "majority", "management", "margin", "material", "matter",
	"measure", "meeting", "message", "method", "minority", "moment",
	"movement", "objective", "observation", "obstacle", "occasion",
	"operation", "opinion", "opportunity", "opposition", "option",
	"outcome", "output", "pattern", "performance", "period",
	"perspective", "phase", "position", "possibility", "practice",
	"presence", "pressure", "principle", "priority", "problem",
	"procedure", "process", "progress", "project", "promise",
	"proposal", "prospect", "protection", "purpose", "quality",
	"quantity", "range", "reaction", "reality", "recognition",
	"recovery", "reduction", "reference", "reform", "relation",
	"relationship", "release", "relief", "requirement", "resistance",
	"resolution", "resource", "response", "responsibility",
	"restriction", "review", "risk", "role", "scale", "scene", "scope",
	"section", "selection", "sense", "sequence", "session", "setting",
	"shortage", "significance", "situation", "solution", "source",
	"speech", "standard", "statement", "status", "strategy",
	"strength", "structure", "struggle", "subject", "success",
	"suggestion", "supply", "task", "tendency", "tension", "theme",
	"theory", "threat", "tradition", "transition", "trend", "value",
	"variety", "version", "view", "vision", "volume", "warning",
	"weakness", "willingness", "withdrawal",
}
