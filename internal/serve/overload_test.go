package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/obsv"
	"repro/internal/overload"
)

// tinyGovernor admits exactly one request per class with no wait queue,
// so a held slot sheds the next arrival instantly and deterministically.
func tinyGovernor(reg *obsv.Registry) *overload.Governor {
	one := overload.Config{InitialLimit: 1, MaxLimit: 1, Queue: -1}
	return overload.NewGovernor(overload.GovernorConfig{Read: one, Expensive: one, Write: one, Metrics: reg})
}

// holdSlot saturates one class and returns its release.
func holdSlot(t *testing.T, gov *overload.Governor, class overload.Class) func() {
	t.Helper()
	release, err := gov.Acquire(context.Background(), class)
	if err != nil {
		t.Fatalf("acquire %s: %v", class, err)
	}
	return func() { release(0) }
}

func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("body %q is not the error envelope: %v", rec.Body.String(), err)
	}
	return er
}

// TestShedPaths saturates each admission class and asserts the shed
// response contract: the class-appropriate status (503 for reads and
// expensive cross-tabs, 429 for writes), a Retry-After header of at
// least one second, and the unified envelope with code "overloaded" —
// while the exempt probe and metrics routes keep answering 200 so
// transient shedding never flips readiness.
func TestShedPaths(t *testing.T) {
	reg := obsv.NewRegistry()
	gov := tinyGovernor(reg)
	ing := liveIngester(t, 100, nil)
	if err := ing.Bootstrap(liveDocs(3, 0), false); err != nil {
		t.Fatal(err)
	}
	s := New(ing.Current(), "shed test", WithMetrics(reg), WithOverload(gov))
	s.EnableIngest(ing)

	for _, class := range overload.Classes {
		defer holdSlot(t, gov, class)()
	}

	cases := []struct {
		name       string
		method     string
		path       string
		class      overload.Class
		wantStatus int
	}{
		{"facets read", http.MethodGet, "/api/v1/facets", overload.ClassRead, http.StatusServiceUnavailable},
		{"docs read", http.MethodGet, "/api/v1/docs?limit=5", overload.ClassRead, http.StatusServiceUnavailable},
		{"dates read", http.MethodGet, "/api/v1/dates?granularity=day", overload.ClassRead, http.StatusServiceUnavailable},
		{"cross expensive", http.MethodGet, "/api/v1/cross?a=france&b=germany", overload.ClassExpensive, http.StatusServiceUnavailable},
		{"ingest write", http.MethodPost, "/api/v1/ingest", overload.ClassWrite, http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (%s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Errorf("Retry-After %q, want an integer >= 1", rec.Header().Get("Retry-After"))
			}
			if er := decodeEnvelope(t, rec); er.Error.Code != ErrCodeOverloaded || er.Error.Message == "" {
				t.Errorf("envelope %+v, want code %q", er, ErrCodeOverloaded)
			}
			if ShedStatus(tc.class) != tc.wantStatus {
				t.Errorf("ShedStatus(%s) = %d, want %d", tc.class, ShedStatus(tc.class), tc.wantStatus)
			}
		})
	}

	// Probes and metrics are exempt: an overloaded node must stay
	// observable and must NOT report unready from shedding alone.
	for _, path := range []string{"/api/v1/healthz", "/api/v1/readyz", "/api/v1/metrics"} {
		if rec := get(t, s, path); rec.Code != http.StatusOK {
			t.Errorf("%s during saturation: status %d, want 200", path, rec.Code)
		}
	}

	snap := reg.Snapshot()
	if snap.Counters["overload.read.shed"] < 3 {
		t.Errorf("overload.read.shed = %d, want >= 3", snap.Counters["overload.read.shed"])
	}
	if snap.Counters["overload.expensive.shed"] < 1 || snap.Counters["overload.write.shed"] < 1 {
		t.Errorf("shed counters: %+v", snap.Counters)
	}
}

// TestShedReleaseRestoresService proves shedding is transient: once the
// held slot releases, the same routes answer 200 again.
func TestShedReleaseRestoresService(t *testing.T) {
	reg := obsv.NewRegistry()
	gov := tinyGovernor(reg)
	s := testServer(t, WithMetrics(reg), WithOverload(gov))
	release := holdSlot(t, gov, overload.ClassRead)
	if rec := get(t, s, "/api/v1/facets"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated status %d, want 503", rec.Code)
	}
	release()
	if rec := get(t, s, "/api/v1/facets"); rec.Code != http.StatusOK {
		t.Fatalf("post-release status %d, want 200: %s", rec.Code, rec.Body.String())
	}
}

// TestPanicRecovery: a panicking handler becomes a 500 with the unified
// envelope (code "internal"), the http.panics counter increments, and
// the server keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	reg := obsv.NewRegistry()
	s := testServer(t, WithMetrics(reg))
	s.Handle("GET", "boom", "boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := get(t, s, "/api/v1/boom")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if er := decodeEnvelope(t, rec); er.Error.Code != ErrCodeInternal {
		t.Fatalf("envelope %+v, want code %q", er, ErrCodeInternal)
	}
	if n := reg.Snapshot().Counters["http.panics"]; n != 1 {
		t.Fatalf("http.panics = %d, want 1", n)
	}
	if rec := get(t, s, "/api/v1/facets"); rec.Code != http.StatusOK {
		t.Fatalf("server dead after panic: status %d", rec.Code)
	}
}

// TestBudgetHeader: malformed, non-positive, and oversized deadline
// budgets are 400s with the envelope; valid forms pass through.
func TestBudgetHeader(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		budget string
		want   int
	}{
		{"250ms", http.StatusOK},
		{"1.5s", http.StatusOK},
		{"250", http.StatusOK}, // bare integer = milliseconds
		{"bogus", http.StatusBadRequest},
		{"-5ms", http.StatusBadRequest},
		{"0", http.StatusBadRequest},
		{"11m", http.StatusBadRequest}, // above MaxBudget
		{"99999999999999999999", http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodGet, "/api/v1/facets", nil)
		req.Header.Set(overload.BudgetHeader, tc.budget)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("budget %q: status %d, want %d", tc.budget, rec.Code, tc.want)
		}
		if tc.want == http.StatusBadRequest {
			if er := decodeEnvelope(t, rec); er.Error.Code != ErrCodeBadRequest {
				t.Errorf("budget %q: envelope code %q, want %q", tc.budget, er.Error.Code, ErrCodeBadRequest)
			}
		}
	}
}

// TestIngestQueueFull429: a saturated intake queue maps to 429 +
// Retry-After with the overloaded envelope, and the rejection shows up
// in ingest.queue_rejections.
func TestIngestQueueFull429(t *testing.T) {
	ing, err := ingest.New(ingest.Config{
		Extractors: []core.Extractor{wordExtractor{}},
		Resources:  []core.Resource{liveWorld()},
		QueueSize:  1,
		EpochDocs:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(liveDocs(3, 0), false); err != nil {
		t.Fatal(err)
	}
	// The ingester is never Started, so the queue never drains: the first
	// submitted document fills it and the second must be rejected.
	reg := obsv.NewRegistry()
	s := New(ing.Current(), "queue full", WithMetrics(reg))
	s.EnableIngest(ing)

	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", ingestBody(liveDocs(2, 3)))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("missing Retry-After on queue-full 429")
	}
	er := decodeEnvelope(t, rec)
	if er.Error.Code != ErrCodeOverloaded || !strings.Contains(er.Error.Message, "accepted 1 of 2") {
		t.Errorf("envelope %+v, want overloaded with partial-accept count", er)
	}
	if n := reg.Snapshot().Gauges["ingest.queue_rejections"]; n < 1 {
		t.Errorf("ingest.queue_rejections = %d, want >= 1", n)
	}
}

// TestOverloadDifferential is the correctness guarantee under pressure:
// with a deliberately tiny limit and concurrent clients hammering the
// API, every ADMITTED response must be byte-identical to the same
// query against an unloaded server — shedding may reject work but must
// never corrupt it — and the latency of admitted requests stays
// bounded because excess load never queues behind the limit.
func TestOverloadDifferential(t *testing.T) {
	paths := []string{
		"/api/v1/facets",
		"/api/v1/facets?terms=europe&parent=europe",
		"/api/v1/docs?terms=france&limit=10",
		"/api/v1/dates?granularity=day",
		"/api/v1/cross?a=europe&b=sports",
	}
	unloaded := testServer(t)
	want := make(map[string]string, len(paths))
	for _, p := range paths {
		rec := get(t, unloaded, p)
		if rec.Code != http.StatusOK {
			t.Fatalf("baseline %s: status %d", p, rec.Code)
		}
		want[p] = rec.Body.String()
	}

	for _, clients := range []int{1, 8} {
		t.Run("clients="+strconv.Itoa(clients), func(t *testing.T) {
			reg := obsv.NewRegistry()
			gov := tinyGovernor(reg)
			s := testServer(t, WithMetrics(reg), WithOverload(gov))
			const perClient = 200
			var (
				mu       sync.Mutex
				admitted int
				shed     int
				lats     []time.Duration
			)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						p := paths[(c+i)%len(paths)]
						req := httptest.NewRequest(http.MethodGet, p, nil)
						req.Header.Set(overload.BudgetHeader, "5s")
						rec := httptest.NewRecorder()
						start := time.Now()
						s.ServeHTTP(rec, req)
						el := time.Since(start)
						mu.Lock()
						switch rec.Code {
						case http.StatusOK:
							admitted++
							lats = append(lats, el)
							if rec.Body.String() != want[p] {
								t.Errorf("%s: admitted response differs from unloaded server", p)
							}
						case http.StatusServiceUnavailable:
							shed++
							if rec.Header().Get("Retry-After") == "" {
								t.Errorf("%s: shed without Retry-After", p)
							}
						default:
							t.Errorf("%s: unexpected status %d", p, rec.Code)
						}
						mu.Unlock()
					}
				}(c)
			}
			wg.Wait()
			if admitted == 0 {
				t.Fatal("no requests admitted")
			}
			if clients == 1 && shed != 0 {
				t.Errorf("single closed-loop client shed %d times; limit 1 should admit all", shed)
			}
			t.Logf("clients=%d: admitted %d, shed %d", clients, admitted, shed)
			// Concurrent overlap on the tiny limit is scheduling-dependent,
			// so force one shed deterministically and assert it is
			// well-formed rather than betting on the race above.
			release := holdSlot(t, gov, overload.ClassRead)
			rec := get(t, s, "/api/v1/facets")
			release()
			if rec.Code != http.StatusServiceUnavailable {
				t.Fatalf("saturated status %d, want 503", rec.Code)
			}
			if rec.Header().Get("Retry-After") == "" {
				t.Error("shed without Retry-After")
			}
			if er := decodeEnvelope(t, rec); er.Error.Code != ErrCodeOverloaded {
				t.Errorf("shed envelope code %q, want %q", er.Error.Code, ErrCodeOverloaded)
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			// Loose bound: admitted requests answer promptly even under 8x
			// concurrency because contenders are shed, not queued.
			if p99 := lats[len(lats)*99/100]; p99 > 2*time.Second {
				t.Errorf("admitted p99 = %v, want < 2s", p99)
			}
		})
	}
}
