package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/browse"
	"repro/internal/obsv"
)

// Save atomically writes the snapshot to path (temp file + rename, so a
// crash mid-write never leaves a half-snapshot where a loader will find
// it). When reg is non-nil it records snapshot.save_duration and
// snapshot.size_bytes.
func Save(path string, s *Snapshot, reg *obsv.Registry) error {
	start := time.Now()
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: save: %w", werr)
	}
	if reg != nil {
		reg.Histogram("snapshot.save_duration").Observe(time.Since(start))
		reg.Gauge("snapshot.size_bytes").Set(int64(len(data)))
	}
	return nil
}

// Load reads and decodes a snapshot file. When reg is non-nil it records
// snapshot.load_duration (read + decode, not rehydration).
func Load(path string, reg *obsv.Registry) (*Snapshot, error) {
	start := time.Now()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load %s: %w", path, err)
	}
	if reg != nil {
		reg.Histogram("snapshot.load_duration").Observe(time.Since(start))
		reg.Gauge("snapshot.size_bytes").Set(int64(len(data)))
	}
	return s, nil
}

// LoadBrowse is the warm-start path: load the snapshot at path and
// rehydrate a ready-to-serve browsing interface from it without running
// any pipeline stage. Timings land in snapshot.load_duration and
// snapshot.rehydrate_duration.
func LoadBrowse(path string, reg *obsv.Registry) (*browse.Interface, *Snapshot, error) {
	s, err := Load(path, reg)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	iface, err := s.BrowseInterface()
	if err != nil {
		return nil, nil, err
	}
	if reg != nil {
		reg.Histogram("snapshot.rehydrate_duration").Observe(time.Since(start))
		iface.SetMetrics(reg)
	}
	return iface, s, nil
}
