package obsv

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	c.Inc()
	c.Add(4)
	if got := reg.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := reg.Gauge("g").Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	reg.GaugeFunc("lazy", func() int64 { return 42 })
	snap := reg.Snapshot()
	if snap.Counters["c"] != 5 || snap.Gauges["g"] != 7 || snap.Gauges["lazy"] != 42 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	for _, d := range []time.Duration{
		500 * time.Microsecond, // bucket 0
		time.Millisecond,       // bucket 0 (inclusive upper bound)
		5 * time.Millisecond,   // bucket 1
		50 * time.Millisecond,  // bucket 2
		time.Second,            // overflow
	} {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.Snapshot()
	wantCum := []int64{2, 3, 4} // cumulative; overflow only in Count
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cum = %d, want %d (%+v)", i, b.Count, wantCum[i], s.Buckets)
		}
	}
	wantSum := float64(1056500000) / float64(time.Millisecond)
	if s.SumMillis != wantSum {
		t.Fatalf("sum = %v, want %v", s.SumMillis, wantSum)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	if len(h.bounds) != len(DefBuckets) {
		t.Fatalf("bounds = %d, want %d", len(h.bounds), len(DefBuckets))
	}
	if reg.Histogram("lat") != h {
		t.Fatal("get-or-create returned a different histogram")
	}
}

func TestStageTimerOrderAndTotals(t *testing.T) {
	st := NewStageTimer()
	st.Record("identify_important", 30*time.Millisecond)
	st.Record("derive_context", 20*time.Millisecond)
	st.Record("identify_important", 10*time.Millisecond)
	done := st.Start("analyze")
	done()
	rep := st.Report()
	if len(rep) != 3 {
		t.Fatalf("stages = %+v", rep)
	}
	if rep[0].Stage != "identify_important" || rep[0].Calls != 2 || rep[0].Total != 40*time.Millisecond {
		t.Fatalf("stage 0 = %+v", rep[0])
	}
	if rep[1].Stage != "derive_context" || rep[2].Stage != "analyze" {
		t.Fatalf("order = %+v", rep)
	}
	if st.Total() < 60*time.Millisecond {
		t.Fatalf("total = %v", st.Total())
	}
	table := FormatReport(rep)
	for _, want := range []string{"identify_important", "derive_context", "analyze", "total"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestRegistryConcurrent exercises every instrument from many goroutines;
// run under -race it proves recording and snapshotting never conflict.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("fn", func() int64 { return 1 })
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("shared").Inc()
				reg.Gauge("depth").Set(int64(i))
				reg.Histogram("lat").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if snap.Counters["shared"] != workers*iters {
		t.Fatalf("shared = %d, want %d", snap.Counters["shared"], workers*iters)
	}
	if snap.Histograms["lat"].Count != workers*iters {
		t.Fatalf("lat count = %d", snap.Histograms["lat"].Count)
	}
}

func TestHTTPMetricsWrap(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	var logBuf bytes.Buffer
	m.SetAccessLog(&logBuf)

	h := m.Wrap("echo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("fail") != "" {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		w.Write([]byte("ok"))
	}))
	for _, path := range []string{"/x", "/x", "/x?fail=1"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}
	snap := reg.Snapshot()
	if snap.Counters["http.requests.echo"] != 3 {
		t.Fatalf("requests = %d", snap.Counters["http.requests.echo"])
	}
	if snap.Counters["http.status.echo.2xx"] != 2 || snap.Counters["http.status.echo.4xx"] != 1 {
		t.Fatalf("status classes = %+v", snap.Counters)
	}
	if snap.Histograms["http.latency.echo"].Count != 3 {
		t.Fatalf("latency count = %d", snap.Histograms["http.latency.echo"].Count)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log lines = %d:\n%s", len(lines), logBuf.String())
	}
	var rec struct {
		Method string `json:"method"`
		Route  string `json:"route"`
		Status int    `json:"status"`
		Bytes  int64  `json:"bytes"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v", err)
	}
	if rec.Method != "GET" || rec.Route != "echo" || rec.Status != 200 || rec.Bytes != 2 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestStatusClass(t *testing.T) {
	for status, want := range map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 503: "5xx"} {
		if got := statusClass(status); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", status, got, want)
		}
	}
}
