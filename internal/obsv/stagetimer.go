package obsv

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// StageTimer attributes wall-clock time to named pipeline phases — the
// runtime counterpart of the paper's Section V-D per-stage cost table.
// Stages are reported in first-start order, so a report over the facet
// pipeline reads in execution order: important-term extraction, context
// derivation, comparative analysis, hierarchy build.
type StageTimer struct {
	mu    sync.Mutex
	order []string
	agg   map[string]*stageAgg
}

type stageAgg struct {
	calls int64
	total time.Duration
}

// StageSample is one stage's accumulated cost.
type StageSample struct {
	Stage string        `json:"stage"`
	Calls int64         `json:"calls"`
	Total time.Duration `json:"total"`
}

// NewStageTimer returns an empty timer.
func NewStageTimer() *StageTimer {
	return &StageTimer{agg: map[string]*stageAgg{}}
}

// Start begins timing one invocation of the stage and returns the
// function that records its elapsed time:
//
//	done := timer.Start("derive_context")
//	...
//	done()
func (t *StageTimer) Start(stage string) func() {
	start := time.Now()
	return func() { t.Record(stage, time.Since(start)) }
}

// Record adds one invocation of the stage with an explicit duration.
func (t *StageTimer) Record(stage string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.agg[stage]
	if a == nil {
		a = &stageAgg{}
		t.agg[stage] = a
		t.order = append(t.order, stage)
	}
	a.calls++
	a.total += d
}

// Report returns every stage in first-start order.
func (t *StageTimer) Report() []StageSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageSample, 0, len(t.order))
	for _, stage := range t.order {
		a := t.agg[stage]
		out = append(out, StageSample{Stage: stage, Calls: a.calls, Total: a.total})
	}
	return out
}

// Total returns the sum of all stages' recorded time.
func (t *StageTimer) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total time.Duration
	for _, a := range t.agg {
		total += a.total
	}
	return total
}

// FormatReport renders samples as an aligned text table (stage, calls,
// total, share of the grand total) — what cmd/experiments prints.
func FormatReport(samples []StageSample) string {
	var grand time.Duration
	for _, s := range samples {
		grand += s.Total
	}
	width := len("stage")
	for _, s := range samples {
		if len(s.Stage) > width {
			width = len(s.Stage)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s  %8s  %12s  %6s\n", width, "stage", "calls", "total", "share")
	for _, s := range samples {
		share := 0.0
		if grand > 0 {
			share = 100 * float64(s.Total) / float64(grand)
		}
		fmt.Fprintf(&sb, "%-*s  %8d  %12s  %5.1f%%\n",
			width, s.Stage, s.Calls, s.Total.Round(time.Microsecond), share)
	}
	fmt.Fprintf(&sb, "%-*s  %8s  %12s\n", width, "total", "", grand.Round(time.Microsecond))
	return sb.String()
}
