// Package remote models the latency of the paper's web-based services
// (Yahoo Term Extraction, Google) on a virtual clock, so the efficiency
// experiment (Section V-D) can be reproduced offline: the paper reports
// term extraction at 2–3 seconds per document with Yahoo as the
// bottleneck, ~1 second per Google expansion query, and >100 documents
// per second when only local resources (NER, Wikipedia, WordNet) are used.
//
// Simulated services charge their per-call cost to a Clock instead of
// sleeping; experiment harnesses read the accumulated virtual time, while
// unit benchmarks measure the real CPU cost of the algorithms themselves.
package remote

import (
	"sync"
	"time"
)

// Clock accumulates virtual service time. It is safe for concurrent use.
type Clock struct {
	mu      sync.Mutex
	elapsed time.Duration
	calls   map[string]int
	perSvc  map[string]time.Duration
}

// NewClock returns an empty clock.
func NewClock() *Clock {
	return &Clock{calls: map[string]int{}, perSvc: map[string]time.Duration{}}
}

// Charge records d of virtual time against the named service.
func (c *Clock) Charge(service string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.elapsed += d
	c.calls[service]++
	c.perSvc[service] += d
}

// Elapsed returns the total virtual time across all services.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Calls returns how many calls the named service received.
func (c *Clock) Calls(service string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[service]
}

// ServiceElapsed returns the virtual time charged by the named service.
func (c *Clock) ServiceElapsed(service string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perSvc[service]
}

// Reset zeroes the clock.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.elapsed = 0
	c.calls = map[string]int{}
	c.perSvc = map[string]time.Duration{}
}

// Latencies matching the paper's reported service behaviour.
const (
	// YahooPerDoc is the per-document cost of the Yahoo Term Extraction
	// service ("2-3 seconds per document, and the main bottleneck").
	YahooPerDoc = 2500 * time.Millisecond
	// GooglePerQuery is the per-term web search cost ("approximately 1
	// second per document when using Google").
	GooglePerQuery = 1 * time.Second
)
