package main

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	facet "repro"
	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/remote"
	"repro/internal/resilient"
	"repro/internal/textdb"
)

// faultReport measures how injected transient faults at the external-
// resource boundary affect the facet output, and what the retry layer
// costs in virtual time to absorb them. For each injected error rate the
// full pipeline runs over an SNYT corpus with every extractor and
// resource wrapped in the fault injector and the resilient retry layer;
// the report shows output stability (Jaccard overlap of the top-K facet
// terms against the fault-free run), the retry traffic, how many
// dependencies degraded past MaxAttempts, and the virtual-clock cost of
// the calls and backoff waits. With retries enabled, low error rates are
// fully absorbed (Jaccard 1.0); stability only erodes once the
// per-lookup chance of exhausting all attempts becomes material.
func faultReport(w io.Writer, seed uint64, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const (
		numDocs     = 250
		topK        = 50
		maxAttempts = 5
		perCall     = 20 * time.Millisecond
	)
	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: seed})
	if err != nil {
		return err
	}
	docs, err := env.GenerateNewsCorpus("SNYT", numDocs, seed+1)
	if err != nil {
		return err
	}
	sys, err := facet.NewSystem(env, facet.Options{TopK: topK, Workers: workers})
	if err != nil {
		return err
	}
	corpus := textdb.NewCorpus()
	for _, d := range docs {
		sys.Add(d)
		corpus.Add(&textdb.Document{Title: d.Title, Source: d.Source, Date: d.Date, Text: d.Text})
	}

	type row struct {
		rate     float64
		jaccard  float64
		attempts int64
		retries  int64
		failures int64
		degraded int
		callTime time.Duration
		backoff  time.Duration
	}

	runAt := func(rate float64) (map[string]bool, row, error) {
		clock := remote.NewClock()
		inj := remote.NewInjector(seed, clock)
		reg := obsv.NewRegistry()
		rcfg := resilient.Config{
			MaxAttempts: maxAttempts,
			BaseBackoff: 50 * time.Millisecond,
			Seed:        seed,
			Clock:       clock,
			Metrics:     reg,
			// The breaker is disabled so the report isolates the
			// retry/stability trade-off: with it enabled, high rates trip
			// circuits and the measurement becomes outage behaviour.
			Breaker: resilient.BreakerConfig{Threshold: -1},
		}
		var names []string
		var extractors []core.Extractor
		for _, e := range sys.CoreExtractors() {
			names = append(names, e.Name())
			inj.SetFaults(e.Name(), remote.FaultConfig{ErrorRate: rate, Latency: perCall})
			extractors = append(extractors, resilient.WrapExtractor(inj.WrapExtractor(e), rcfg))
		}
		var resources []core.Resource
		for _, r := range sys.CoreResources() {
			names = append(names, r.Name())
			inj.SetFaults(r.Name(), remote.FaultConfig{ErrorRate: rate, Latency: perCall})
			resources = append(resources, resilient.Wrap(inj.WrapResource(r), rcfg))
		}
		p, err := core.New(core.Config{
			Extractors: extractors,
			Resources:  resources,
			TopK:       topK,
			Workers:    workers,
		})
		if err != nil {
			return nil, row{}, err
		}
		res, err := p.Run(corpus)
		if err != nil {
			return nil, row{}, err
		}
		terms := map[string]bool{}
		for _, t := range res.FacetTermStrings() {
			terms[t] = true
		}
		r := row{rate: rate, degraded: len(res.Degradations)}
		snap := reg.Snapshot()
		for _, n := range names {
			r.attempts += snap.Counters["resilient."+n+".attempts"]
			r.retries += snap.Counters["resilient."+n+".retries"]
			r.failures += snap.Counters["resilient."+n+".failures"]
			r.backoff += clock.ServiceElapsed("backoff:" + n)
		}
		r.callTime = clock.Elapsed() - r.backoff
		return terms, r, nil
	}

	baseline, base, err := runAt(0)
	if err != nil {
		return err
	}
	base.jaccard = 1
	rows := []row{base}
	for _, rate := range []float64{0.1, 0.3, 0.5} {
		terms, r, err := runAt(rate)
		if err != nil {
			return err
		}
		r.jaccard = jaccard(terms, baseline)
		rows = append(rows, r)
	}

	fmt.Fprintf(w, "SNYT %d docs, top-%d facet terms, MaxAttempts=%d, per-call virtual latency %v\n\n",
		numDocs, topK, maxAttempts, perCall)
	fmt.Fprintf(w, "%-6s  %-10s  %9s  %8s  %9s  %9s  %13s  %13s\n",
		"rate", "jaccard@K", "attempts", "retries", "failures", "degraded", "call time", "backoff time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6.2f  %-10.3f  %9d  %8d  %9d  %9d  %13v  %13v\n",
			r.rate, r.jaccard, r.attempts, r.retries, r.failures, r.degraded,
			r.callTime.Round(time.Millisecond), r.backoff.Round(time.Millisecond))
	}
	fmt.Fprintln(w, "\njaccard@K: overlap of the top-K facet terms with the fault-free run;")
	fmt.Fprintln(w, "degraded: dependencies whose failures exhausted every retry for some lookup;")
	fmt.Fprintln(w, "call/backoff time: virtual-clock cost of delivered attempts and retry waits.")

	// A second view: which services paid the most retry traffic at the
	// highest rate. Rerun at 0.5 and break retries down per service.
	clock := remote.NewClock()
	inj := remote.NewInjector(seed, clock)
	reg := obsv.NewRegistry()
	rcfg := resilient.Config{
		MaxAttempts: maxAttempts,
		BaseBackoff: 50 * time.Millisecond,
		Seed:        seed,
		Clock:       clock,
		Metrics:     reg,
		Breaker:     resilient.BreakerConfig{Threshold: -1},
	}
	var names []string
	var extractors []core.Extractor
	for _, e := range sys.CoreExtractors() {
		names = append(names, e.Name())
		inj.SetFaults(e.Name(), remote.FaultConfig{ErrorRate: 0.5, Latency: perCall})
		extractors = append(extractors, resilient.WrapExtractor(inj.WrapExtractor(e), rcfg))
	}
	var resources []core.Resource
	for _, r := range sys.CoreResources() {
		names = append(names, r.Name())
		inj.SetFaults(r.Name(), remote.FaultConfig{ErrorRate: 0.5, Latency: perCall})
		resources = append(resources, resilient.Wrap(inj.WrapResource(r), rcfg))
	}
	p, err := core.New(core.Config{Extractors: extractors, Resources: resources, TopK: topK, Workers: workers})
	if err != nil {
		return err
	}
	if _, err := p.Run(corpus); err != nil {
		return err
	}
	snap := reg.Snapshot()
	sort.Strings(names)
	fmt.Fprintf(w, "\nper-service retry traffic at rate 0.50:\n")
	fmt.Fprintf(w, "%-24s  %9s  %8s  %13s\n", "service", "attempts", "retries", "backoff time")
	for _, n := range names {
		fmt.Fprintf(w, "%-24s  %9d  %8d  %13v\n",
			n, snap.Counters["resilient."+n+".attempts"], snap.Counters["resilient."+n+".retries"],
			clock.ServiceElapsed("backoff:"+n).Round(time.Millisecond))
	}
	return nil
}

// jaccard computes |a ∩ b| / |a ∪ b| over term sets.
func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
