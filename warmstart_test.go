package facet

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/browse"
	"repro/internal/obsv"
	"repro/internal/snapshot"
)

// TestSnapshotWarmStartRunsNoPipelineStages is the warm-start acceptance
// test: serving from a snapshot must answer the first query without
// running any pipeline stage. The cold build records core.stage.*
// histograms into its registry; the warm start gets a fresh registry and
// must leave every pipeline-stage instrument absent (zero increments)
// while still answering identically.
func TestSnapshotWarmStartRunsNoPipelineStages(t *testing.T) {
	// Cold path: full pipeline, instrumented.
	coldReg := obsv.NewRegistry()
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(env, Options{TopK: 60})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMetrics(coldReg)
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	iface, err := res.BrowseEngine(h)
	if err != nil {
		t.Fatal(err)
	}
	if n := countStageObservations(coldReg); n == 0 {
		t.Fatal("cold build recorded no core.stage.* observations; the control side of this test is broken")
	}

	// Persist, then warm-start through the same entry point facetserve
	// -snapshot uses, with a fresh registry.
	path := filepath.Join(t.TempDir(), "state.fsnp")
	stats := make([]snapshot.FacetStat, len(res.Facets))
	for i, f := range res.Facets {
		stats[i] = snapshot.FacetStat{Term: f.Term, DF: f.DF, DFC: f.DFC, ShiftF: f.ShiftF, ShiftR: f.ShiftR, Score: f.Score}
	}
	if err := snapshot.Save(path, snapshot.Capture(iface, snapshot.Meta{Profile: "SNYT", Seed: 42}, stats), coldReg); err != nil {
		t.Fatal(err)
	}
	warmReg := obsv.NewRegistry()
	warm, snap, err := snapshot.LoadBrowse(path, warmReg)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("background validation of the saved snapshot failed: %v", err)
	}

	// First queries answer identically to the cold engine...
	roots := iface.Children("", browse.Selection{})
	if len(roots) == 0 {
		t.Fatal("no root facets")
	}
	sels := []browse.Selection{
		{},
		{Terms: []string{roots[0].Term}},
		{Query: "minister"},
	}
	for i, sel := range sels {
		if got, want := warm.Docs(sel), iface.Docs(sel); !reflect.DeepEqual(got, want) {
			t.Errorf("sel%d: warm Docs = %v, cold = %v", i, got, want)
		}
		if got, want := warm.Children("", sel), iface.Children("", sel); !reflect.DeepEqual(got, want) {
			t.Errorf("sel%d: warm root menu = %v, cold = %v", i, got, want)
		}
	}

	// ...and no pipeline stage ever ran: the warm registry holds snapshot
	// and browse instruments only.
	if n := countStageObservations(warmReg); n != 0 {
		t.Fatalf("warm start recorded %d pipeline-stage observations; snapshot serving must not run the pipeline", n)
	}
	ms := warmReg.Snapshot()
	for name := range ms.Counters {
		if strings.HasPrefix(name, "core.") {
			t.Fatalf("warm registry contains pipeline counter %q", name)
		}
	}
	if ms.Histograms["snapshot.load_duration"].Count != 1 || ms.Histograms["snapshot.rehydrate_duration"].Count != 1 {
		t.Fatal("warm start did not record snapshot load/rehydrate timings")
	}
}

// countStageObservations sums core.stage.* histogram counts in a
// registry snapshot.
func countStageObservations(reg *obsv.Registry) int64 {
	var n int64
	for name, h := range reg.Snapshot().Histograms {
		if strings.HasPrefix(name, "core.stage.") {
			n += h.Count
		}
	}
	return n
}
