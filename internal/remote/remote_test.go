package remote

import (
	"sync"
	"testing"
	"time"
)

func TestClockAccumulates(t *testing.T) {
	c := NewClock()
	c.Charge("Yahoo", 2*time.Second)
	c.Charge("Yahoo", 3*time.Second)
	c.Charge("Google", time.Second)
	if c.Elapsed() != 6*time.Second {
		t.Fatalf("elapsed = %v", c.Elapsed())
	}
	if c.Calls("Yahoo") != 2 || c.Calls("Google") != 1 || c.Calls("other") != 0 {
		t.Fatal("call counts wrong")
	}
	if c.ServiceElapsed("Yahoo") != 5*time.Second {
		t.Fatalf("yahoo elapsed = %v", c.ServiceElapsed("Yahoo"))
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Charge("Yahoo", time.Second)
	c.Reset()
	if c.Elapsed() != 0 || c.Calls("Yahoo") != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Charge("svc", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if c.Calls("svc") != 8000 {
		t.Fatalf("calls = %d", c.Calls("svc"))
	}
	if c.Elapsed() != 8000*time.Millisecond {
		t.Fatalf("elapsed = %v", c.Elapsed())
	}
}
