// Quickstart: extract facet hierarchies from a small text database in
// five steps — build an environment, load documents, extract facet terms,
// build the hierarchy, browse.
package main

import (
	"fmt"
	"log"

	facet "repro"
)

func main() {
	// 1. The environment holds the external resources (Wikipedia, WordNet,
	//    web search). Here everything is synthesized from a seed.
	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load documents. Any text works; we generate a small news set.
	docs, err := env.GenerateNewsCorpus("SNYT", 200, 2)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := facet.NewSystem(env, facet.Options{TopK: 60})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}

	// 3. Extract facet terms: important terms per document, context
	//    expansion through the external resources, comparative frequency
	//    analysis.
	res, err := sys.ExtractFacets()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Ten most significant facet terms:")
	for i, f := range res.Facets {
		if i >= 10 {
			break
		}
		fmt.Printf("  %2d. %-24s (appears in %d docs, %d after expansion)\n", i+1, f.Term, f.DF, f.DFC)
	}

	// 4. Organize the terms into browsing hierarchies (subsumption).
	h, err := res.BuildHierarchy()
	if err != nil {
		log.Fatal(err)
	}

	// 5. Browse: counts per facet, drill-down.
	b, err := res.Browser(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTop-level facets with document counts:")
	for i, fc := range b.Children("", facet.Selection{}) {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-24s %d docs\n", fc.Term, fc.Count)
	}
}
