// Package ner implements the named-entity tagger that plays the role of
// LingPipe in the paper's "Named Entities" term extractor (Section IV-A):
// a gazetteer-backed capitalization-sequence tagger.
//
// The tagger is intentionally entity-only: it finds proper names but not
// general noun phrases, which is why — as the paper reports — the NE
// extractor combined with WordNet or Wikipedia Synonyms yields the lowest
// recall numbers in Tables II–IV (those resources need exactly the kinds
// of terms a NE tagger does not produce).
package ner

import (
	"strings"

	"repro/internal/lang"
)

// Tagger recognizes named-entity mentions in text.
type Tagger struct {
	gazetteer map[string]bool // normalized known names (incl. variants)
	maxWords  int
}

// Option configures the tagger.
type Option func(*Tagger)

// WithGazetteer adds known entity names (any case; normalized internally).
// A gazetteer is how trained taggers recognize single-token mentions at
// sentence starts, where capitalization alone is uninformative.
func WithGazetteer(names []string) Option {
	return func(t *Tagger) {
		for _, n := range names {
			norm := lang.NormalizePhrase(n)
			if norm != "" {
				t.gazetteer[norm] = true
			}
		}
	}
}

// New returns a tagger with the given options.
func New(opts ...Option) *Tagger {
	t := &Tagger{gazetteer: map[string]bool{}, maxWords: 6}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Name implements the core.Extractor convention.
func (t *Tagger) Name() string { return "NE" }

// Extract returns the normalized entity mentions found in the text.
func (t *Tagger) Extract(text string) []string {
	tokens := lang.Tokenize(text)
	var out []string
	seen := map[string]bool{}
	emit := func(run []lang.Token) {
		if len(run) == 0 {
			return
		}
		// Single-token runs at sentence start are ambiguous: keep them
		// only when the gazetteer or an all-caps form vouches for them.
		if len(run) == 1 && run[0].SentenceStart {
			norm := run[0].Norm
			if !t.gazetteer[norm] && !run[0].IsAllUpper() {
				return
			}
		}
		words := make([]string, len(run))
		for i, tok := range run {
			words[i] = tok.Norm
		}
		phrase := strings.Join(words, " ")
		if !seen[phrase] {
			seen[phrase] = true
			out = append(out, phrase)
		}
	}
	var run []lang.Token
	for i, tok := range tokens {
		if tok.SentenceStart && len(run) > 0 {
			// Proper-name runs never span sentence boundaries.
			emit(run)
			run = nil
		}
		switch {
		case isNameToken(tok):
			if tok.SentenceStart && discourseAdverbs[tok.Norm] {
				// "Yesterday", "Meanwhile", ... carry capitalization only
				// by position; they never open a name.
				emit(run)
				run = nil
				continue
			}
			run = append(run, tok)
		case isDigits(tok.Norm) && i+1 < len(tokens) && isNameToken(tokens[i+1]) && !tokens[i+1].SentenceStart:
			// A number immediately preceding a name token joins the run
			// ("2005 G8 Summit").
			run = append(run, tok)
		default:
			emit(run)
			run = nil
		}
	}
	emit(run)
	return out
}

// discourseAdverbs are words that open news sentences with positional
// capitalization; real taggers carry a similar exclusion dictionary.
var discourseAdverbs = map[string]bool{
	"yesterday": true, "today": true, "tomorrow": true, "meanwhile": true,
	"however": true, "earlier": true, "later": true, "separately": true,
	"still": true, "overall": true, "elsewhere": true, "recently": true,
	"officials": true, "analysts": true, "witnesses": true,
	"observers": true, "investigators": true, "residents": true,
	"experts": true, "critics": true, "supporters": true,
	"negotiators": true,
}

// isNameToken reports whether the token can be part of a proper-name run:
// capitalized or an all-caps initialism, and not a capitalized stopword
// ("The" at sentence start).
func isNameToken(tok lang.Token) bool {
	if !tok.IsCapitalized() && !tok.IsAllUpper() {
		return false
	}
	if lang.IsStopword(tok.Norm) {
		return false
	}
	// Short alphanumeric codes like "G8" count; bare digits do not.
	if isDigits(tok.Norm) {
		return false
	}
	return true
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
