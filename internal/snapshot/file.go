package snapshot

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/browse"
	"repro/internal/obsv"
)

// Save atomically writes the snapshot to path (temp file + rename, so a
// crash mid-write never leaves a half-snapshot where a loader will find
// it). When reg is non-nil it records snapshot.save_duration and
// snapshot.size_bytes.
func Save(path string, s *Snapshot, reg *obsv.Registry) error {
	start := time.Now()
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: save: %w", werr)
	}
	if reg != nil {
		reg.Histogram("snapshot.save_duration").Observe(time.Since(start))
		reg.Gauge("snapshot.size_bytes").Set(int64(len(data)))
	}
	return nil
}

// Load reads and decodes a snapshot file. When reg is non-nil it records
// snapshot.load_duration (read + decode, not rehydration).
func Load(path string, reg *obsv.Registry) (*Snapshot, error) {
	start := time.Now()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load %s: %w", path, err)
	}
	if reg != nil {
		reg.Histogram("snapshot.load_duration").Observe(time.Since(start))
		reg.Gauge("snapshot.size_bytes").Set(int64(len(data)))
	}
	return s, nil
}

// PeekEpochFile reports the ingest epoch of the snapshot at path by
// reading only the header and the first payload varint (see PeekEpoch).
// Replicas use it to answer since= freshness checks against an on-disk
// snapshot without deserializing the browse payload.
func PeekEpochFile(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("snapshot: peek: %w", err)
	}
	defer f.Close()
	// headerLen bytes of fixed prefix plus up to one maximal uvarint.
	buf := make([]byte, headerLen+binary.MaxVarintLen64)
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.ErrUnexpectedEOF {
		return 0, fmt.Errorf("snapshot: peek %s: %w", path, err)
	}
	buf = buf[:n]
	// A snapshot shorter than the probe window is legal (tiny payload):
	// PeekEpoch's own truncation checks are authoritative, but its
	// payload-length validation needs the real file size, so substitute
	// the declared length check with the actual remaining size.
	epoch, perr := peekEpochPrefix(buf, fileSize(f))
	if perr != nil {
		return 0, fmt.Errorf("snapshot: peek %s: %w", path, perr)
	}
	return epoch, nil
}

func fileSize(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return -1
	}
	return st.Size()
}

// LoadBrowse is the warm-start path: load the snapshot at path and
// rehydrate a ready-to-serve browsing interface from it without running
// any pipeline stage. Timings land in snapshot.load_duration and
// snapshot.rehydrate_duration.
func LoadBrowse(path string, reg *obsv.Registry) (*browse.Interface, *Snapshot, error) {
	s, err := Load(path, reg)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	iface, err := s.BrowseInterface()
	if err != nil {
		return nil, nil, err
	}
	if reg != nil {
		reg.Histogram("snapshot.rehydrate_duration").Observe(time.Since(start))
		iface.SetMetrics(reg)
	}
	return iface, s, nil
}
