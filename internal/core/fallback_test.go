package core

import (
	"context"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/textdb"
)

// countingRes is an okRes that counts lookups, to prove the fallback is
// never consulted on healthy runs.
type countingRes struct {
	name  string
	calls atomic.Int64
}

func (c *countingRes) Name() string { return c.name }
func (c *countingRes) Context(term string) []string {
	c.calls.Add(1)
	return []string{c.name + " of " + term}
}

func TestFallbackRescuesWhenAllResourcesDown(t *testing.T) {
	important := [][]string{
		{"alpha", "beta"},
		{"beta"},
		{},
		{"gamma"},
	}
	for _, workers := range []int{1, 4} {
		out, degs, rescued, err := DeriveContextFallbackReport(context.Background(), important,
			[]Resource{downRes{"dead1"}, downRes{"dead2"}}, okRes{"corpus"}, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out[0]) != 2 || out[0][0] != "corpus of alpha" || out[0][1] != "corpus of beta" {
			t.Fatalf("workers=%d: out[0] = %v, want corpus context", workers, out[0])
		}
		if rescued != 4 {
			t.Fatalf("workers=%d: rescued = %d, want 4 (one per failed (doc, term) pair)", workers, rescued)
		}
		// Both dead resources still show up in the degradation report.
		if len(degs) != 2 || degs[0].Name != "dead1" || degs[1].Name != "dead2" {
			t.Fatalf("workers=%d: degs = %+v", workers, degs)
		}
	}
}

func TestFallbackUntouchedOnHealthyRun(t *testing.T) {
	important := [][]string{{"alpha", "beta"}, {"gamma"}}
	fb := &countingRes{name: "corpus"}
	withFB, degs, rescued, err := DeriveContextFallbackReport(context.Background(), important,
		[]Resource{okRes{"live"}}, fb, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	without, _, err2 := DeriveContextReport(context.Background(), important,
		[]Resource{okRes{"live"}}, nil, 2)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !reflect.DeepEqual(withFB, without) {
		t.Fatalf("healthy run perturbed by fallback:\n%v\nvs\n%v", withFB, without)
	}
	if rescued != 0 || len(degs) != 0 {
		t.Fatalf("rescued=%d degs=%+v on a healthy run", rescued, degs)
	}
	if fb.calls.Load() != 0 {
		t.Fatalf("fallback consulted %d times on a healthy run", fb.calls.Load())
	}
}

func TestFallbackNotConsultedOnPartialFailure(t *testing.T) {
	// One resource answers: the pair is degraded but NOT context-free, so
	// the fallback stays out of it.
	important := [][]string{{"alpha"}}
	fb := &countingRes{name: "corpus"}
	out, degs, rescued, err := DeriveContextFallbackReport(context.Background(), important,
		[]Resource{downRes{"dead"}, okRes{"live"}}, fb, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rescued != 0 || fb.calls.Load() != 0 {
		t.Fatalf("fallback used despite a surviving resource (rescued=%d calls=%d)", rescued, fb.calls.Load())
	}
	if len(out[0]) != 1 || out[0][0] != "live of alpha" {
		t.Fatalf("out[0] = %v", out[0])
	}
	if len(degs) != 1 || degs[0].Name != "dead" {
		t.Fatalf("degs = %+v", degs)
	}
}

func TestFallbackFailureRecordedAsDegradation(t *testing.T) {
	important := [][]string{{"alpha"}}
	out, degs, rescued, err := DeriveContextFallbackReport(context.Background(), important,
		[]Resource{downRes{"dead"}}, downRes{"corpus"}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rescued != 0 || len(out[0]) != 0 {
		t.Fatalf("rescued=%d out[0]=%v from a dead fallback", rescued, out[0])
	}
	names := []string{degs[0].Name, degs[1].Name}
	if len(degs) != 2 || names[0] != "corpus" || names[1] != "dead" {
		t.Fatalf("degs = %+v, want corpus and dead", degs)
	}
}

func TestRunContextFallbackLookups(t *testing.T) {
	corpus := textdb.NewCorpus()
	for i := 0; i < 6; i++ {
		corpus.Add(&textdb.Document{
			Title: "jazz concert",
			Text:  fmt.Sprintf("jazz concert downtown number %d", i),
		})
	}
	p, err := New(Config{
		Extractors: []Extractor{okExtractor{}},
		Resources:  []Resource{downRes{"dead"}},
		Fallback:   okRes{"corpus"},
		TopK:       10,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackLookups != 6 {
		t.Fatalf("FallbackLookups = %d, want 6 (one per document's single term)", res.FallbackLookups)
	}
	// The rescued context feeds Step 3: the corpus-of-jazz term gains
	// contextual occurrences and becomes a candidate.
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates from fallback-derived context")
	}
	if len(res.Degradations) != 1 || res.Degradations[0].Name != "dead" {
		t.Fatalf("Degradations = %+v", res.Degradations)
	}
}
