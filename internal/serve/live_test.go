package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unicode"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/textdb"
)

// Minimal deterministic pipeline substrates for live-mode tests.
type wordExtractor struct{}

func (wordExtractor) Name() string { return "words" }

func (wordExtractor) Extract(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

type mapResource struct {
	m map[string][]string
}

func (mapResource) Name() string                   { return "world" }
func (r mapResource) Context(term string) []string { return r.m[term] }

func liveWorld() mapResource {
	return mapResource{m: map[string][]string{
		"chirac":   {"politicians", "france"},
		"paris":    {"france", "locations"},
		"merkel":   {"politicians", "germany"},
		"berlin":   {"germany", "locations"},
		"yankees":  {"sports", "teams"},
		"baseball": {"sports"},
	}}
}

func liveDocs(n, offset int) []*textdb.Document {
	texts := []string{
		"Chirac spoke in Paris about the budget",
		"Merkel hosted a Berlin summit on trade",
		"The Yankees played baseball into the night",
	}
	base := time.Date(2006, 8, 1, 0, 0, 0, 0, time.UTC)
	out := make([]*textdb.Document, n)
	for i := range out {
		out[i] = &textdb.Document{
			Title:  fmt.Sprintf("story %d", offset+i),
			Source: "wire",
			Date:   base.AddDate(0, 0, (offset+i)%28),
			Text:   texts[(offset+i)%len(texts)],
		}
	}
	return out
}

func liveIngester(t *testing.T, epochDocs int, store *textdb.Store) *ingest.Ingester {
	t.Helper()
	ing, err := ingest.New(ingest.Config{
		Extractors: []core.Extractor{wordExtractor{}},
		Resources:  []core.Resource{liveWorld()},
		Workers:    4,
		EpochDocs:  epochDocs,
		Store:      store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ing
}

func ingestBody(docs []*textdb.Document) *bytes.Reader {
	req := IngestRequest{}
	for _, d := range docs {
		req.Documents = append(req.Documents, IngestDoc{
			Title: d.Title, Source: d.Source, Date: d.Date.Format("2006-01-02"), Text: d.Text,
		})
	}
	body, _ := json.Marshal(req)
	return bytes.NewReader(body)
}

// TestIngestEndpoints exercises POST /api/ingest and GET
// /api/ingest/stats end to end, including payload validation.
func TestIngestEndpoints(t *testing.T) {
	ing := liveIngester(t, 10, nil)
	if err := ing.Bootstrap(liveDocs(6, 0), false); err != nil {
		t.Fatal(err)
	}
	s := New(ing.Current(), "live test")
	s.EnableIngest(ing)
	ing.SetOnPublish(s.Publish)
	ing.Start()
	defer ing.Close(context.Background())

	post := func(body *bytes.Reader) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", body)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec
	}

	rec := post(ingestBody(liveDocs(14, 6)))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
	}
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Accepted != 14 {
		t.Fatalf("ingest response %s", rec.Body.String())
	}

	// Malformed payloads are rejected with JSON errors.
	for name, body := range map[string]string{
		"not json":   "{",
		"no docs":    `{"documents":[]}`,
		"empty text": `{"documents":[{"title":"x","text":"  "}]}`,
		"bad date":   `{"documents":[{"title":"x","text":"words","date":"tomorrow"}]}`,
	} {
		rec := post(bytes.NewReader([]byte(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code != ErrCodeBadRequest || er.Error.Message == "" {
			t.Errorf("%s: body %q is not the unified error envelope", name, rec.Body.String())
		}
	}

	// Stats surface after the intake settles.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ing.Stats().DocsIngested == 20 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/ingest/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var st ingest.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.DocsIngested != 20 {
		t.Fatalf("stats docs_ingested = %d, want 20", st.DocsIngested)
	}
	if st.CacheHits == 0 {
		t.Fatalf("repeated entities produced no cache hits: %+v", st)
	}
}

// TestConcurrentIngestAndQuery hammers the read API while documents
// stream in — run under -race it proves there are no torn reads across
// the atomic interface swap, and functionally it asserts every response
// is internally consistent: a facet count can never exceed the epoch's
// total, and totals only grow.
func TestConcurrentIngestAndQuery(t *testing.T) {
	const bootstrapDocs = 15
	ing := liveIngester(t, 10, nil)
	if err := ing.Bootstrap(liveDocs(bootstrapDocs, 0), false); err != nil {
		t.Fatal(err)
	}
	s := New(ing.Current(), "live race")
	s.EnableIngest(ing)
	ing.SetOnPublish(s.Publish)
	ing.Start()

	const (
		readers = 4
		batches = 8
		perPost = 25
	)
	var posted atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			paths := []string{"/api/v1/facets", "/api/v1/docs?limit=5", "/api/v1/facets?terms=france", "/api/v1/ingest/stats", "/api/v1/metrics"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(g+i)%len(paths)]
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s: status %d", path, rec.Code)
					return
				}
				if strings.HasPrefix(path, "/api/v1/facets") && !strings.Contains(path, "terms") {
					var resp FacetsResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Errorf("%s: %v", path, err)
						return
					}
					// Consistency across the swap: an epoch's facet counts
					// never exceed its own total, and the total never
					// exceeds everything accepted so far.
					hi := bootstrapDocs + int(posted.Load())
					if resp.Total < bootstrapDocs || resp.Total > hi {
						t.Errorf("torn total %d outside [%d, %d]", resp.Total, bootstrapDocs, hi)
						return
					}
					for _, fc := range resp.Facets {
						if fc.Count > resp.Total {
							t.Errorf("facet %q count %d exceeds total %d", fc.Term, fc.Count, resp.Total)
							return
						}
					}
				}
			}
		}(g)
	}

	for b := 0; b < batches; b++ {
		req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", ingestBody(liveDocs(perPost, bootstrapDocs+b*perPost)))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest batch %d: status %d: %s", b, rec.Code, rec.Body.String())
		}
		posted.Add(perPost)
	}

	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	total := bootstrapDocs + batches*perPost
	var final FacetsResponse
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/facets", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &final); err != nil {
		t.Fatal(err)
	}
	if final.Total != total {
		t.Fatalf("final total %d, want %d", final.Total, total)
	}
	st := ing.Stats()
	if st.Epochs < 2 {
		t.Fatalf("completed %d epochs, want >= 2", st.Epochs)
	}
	if st.CacheHitRate == 0 {
		t.Fatal("resource cache never hit")
	}

	// The shared registry saw the whole run: per-route HTTP series plus
	// the ingester's gauges, all snapshotted concurrently above.
	snap := s.Metrics().Snapshot()
	if snap.Counters["http.requests.ingest"] != int64(batches) {
		t.Errorf("ingest requests = %d, want %d", snap.Counters["http.requests.ingest"], batches)
	}
	if got := snap.Gauges["ingest.docs_published"]; got != int64(total) {
		t.Errorf("ingest.docs_published gauge = %d, want %d", got, total)
	}
	if snap.Gauges["ingest.epochs"] < 2 {
		t.Errorf("ingest.epochs gauge = %d, want >= 2", snap.Gauges["ingest.epochs"])
	}
	// The bootstrap epoch predates EnableIngest's registry wiring, so only
	// the epochs after it are timed.
	if h := snap.Histograms["ingest.epoch_duration"]; h.Count < 1 {
		t.Errorf("epoch_duration histogram count = %d, want >= 1", h.Count)
	}
}
