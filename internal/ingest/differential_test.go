package ingest

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/browse"
)

// swapSelections enumerates selection shapes against the testDocs corpus
// (facets from the map resource, keywords from the templates, dates from
// the August 2006 spread).
func swapSelections() []browse.Selection {
	day := func(d int) time.Time { return time.Date(2006, 8, d, 0, 0, 0, 0, time.UTC) }
	return []browse.Selection{
		{},
		{Terms: []string{"france"}},
		{Terms: []string{"germany"}},
		{Terms: []string{"locations"}},
		{Terms: []string{"france", "locations"}},
		{Terms: []string{"no-such-facet"}},
		{Query: "budget"},
		{Query: "the"}, // stopword-only query
		{Terms: []string{"sports"}, Query: "baseball"},
		{From: day(3), To: day(12)},
		{Terms: []string{"france"}, From: day(1), To: day(20)},
	}
}

// checkIndexedMatchesScan asserts the posting-list + cache path answers
// byte-identically to the naive full-scan reference on one interface.
// Each selection is asked twice, so both the cold and the cached paths
// are compared.
func checkIndexedMatchesScan(t *testing.T, label string, iface *browse.Interface) {
	t.Helper()
	for i, sel := range swapSelections() {
		want := iface.ScanDocs(sel)
		for _, pass := range []string{"cold", "cached"} {
			got := iface.Docs(sel)
			if len(got) != len(want) {
				t.Fatalf("%s sel%d/%s: indexed %v, naive %v", label, i, pass, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s sel%d/%s: indexed %v, naive %v", label, i, pass, got, want)
				}
			}
		}
		if got, want := iface.MatchCount(sel), iface.ScanMatchCount(sel); got != want {
			t.Fatalf("%s sel%d: MatchCount %d, naive %d", label, i, got, want)
		}
	}
}

// TestDifferentialAcrossEpochSwap proves the indexed + cached serving
// path equals the naive scan before, during, and after a live ingest
// epoch swap, at Workers 1 and 8. Run under -race in CI, the concurrent
// phase additionally proves the published interfaces are safe to query
// while the swap lands.
func TestDifferentialAcrossEpochSwap(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := testConfig()
			cfg.Workers = workers
			cfg.EpochDocs = 5
			ing, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			docs := testDocs(30)
			if err := ing.Bootstrap(docs[:10], false); err != nil {
				t.Fatal(err)
			}
			pre := ing.Current()
			preEpoch := pre.Epoch()
			if preEpoch == 0 {
				t.Fatal("bootstrap interface has no epoch stamp")
			}
			checkIndexedMatchesScan(t, "pre-swap", pre)

			// Hammer whatever interface is current while epochs swap
			// beneath the readers.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			sels := swapSelections()
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for rep := 0; ; rep++ {
						select {
						case <-stop:
							return
						default:
						}
						iface := ing.Current()
						sel := sels[(g+rep)%len(sels)]
						got := iface.Docs(sel)
						want := iface.ScanDocs(sel)
						if len(got) != len(want) {
							t.Errorf("concurrent: indexed %v, naive %v (sel %+v)", got, want, sel)
							return
						}
						for j := range got {
							if got[j] != want[j] {
								t.Errorf("concurrent: indexed %v, naive %v (sel %+v)", got, want, sel)
								return
							}
						}
					}
				}(g)
			}

			ing.Start()
			for _, d := range docs[10:] {
				if err := ing.SubmitWait(context.Background(), d); err != nil {
					t.Fatal(err)
				}
			}
			if err := ing.Close(context.Background()); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()

			post := ing.Current()
			if post.Epoch() <= preEpoch {
				t.Fatalf("epoch did not advance across the swap: pre %d, post %d", preEpoch, post.Epoch())
			}
			if got := post.MatchCount(browse.Selection{}); got != len(docs) {
				t.Fatalf("post-swap interface serves %d docs, want %d", got, len(docs))
			}
			checkIndexedMatchesScan(t, "post-swap", post)
			// The superseded epoch remains internally consistent: its cache
			// keys carry its own epoch, so late readers finish correctly.
			checkIndexedMatchesScan(t, "superseded", pre)
		})
	}
}
