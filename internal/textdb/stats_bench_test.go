package textdb

import (
	"fmt"
	"testing"
)

// benchDeltas builds the per-worker delta tables the parallel pipeline
// merges at the end of an epoch: overlapping term ranges so Merge hits
// both the add-into-existing and the grow paths.
func benchDeltas(dict *Dictionary, workers, nTerms int) []*DFTable {
	deltas := make([]*DFTable, workers)
	row := make([]TermID, 0, 64)
	for w := range deltas {
		d := NewDFTable(dict)
		for doc := 0; doc < 32; doc++ {
			row = row[:0]
			start := (w*311 + doc*67) % nTerms
			for k := 0; k < 64; k++ {
				row = append(row, TermID((start+k)%nTerms))
			}
			d.AddDoc(row)
		}
		deltas[w] = d
	}
	return deltas
}

// BenchmarkDFTableMerge measures the epoch-boundary fold of per-worker
// DF deltas into the master table — the textdb hot path the ensure
// rewrite targets (amortized-doubling growth, zero allocations once the
// table covers the dictionary).
func BenchmarkDFTableMerge(b *testing.B) {
	dict := NewDictionary()
	const nTerms = 4096
	for i := 0; i < nTerms; i++ {
		dict.Intern(fmt.Sprintf("term%05d", i))
	}
	deltas := benchDeltas(dict, 8, nTerms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := NewDFTable(dict)
		for _, d := range deltas {
			total.Merge(d)
		}
		if total.NumDocs() == 0 {
			b.Fatal("empty merge")
		}
	}
}

// TestDFTableMergeAllocs pins the steady-state allocation ceiling: once
// the master table covers the incoming ID range, Merge and AddDoc must
// not allocate at all.
func TestDFTableMergeAllocs(t *testing.T) {
	dict := NewDictionary()
	ids := make([]TermID, 512)
	for i := range ids {
		ids[i] = TermID(i)
	}
	delta := NewDFTable(dict)
	delta.AddDoc(ids)
	total := NewDFTable(dict)
	total.Merge(delta) // first merge grows the count array
	if allocs := testing.AllocsPerRun(100, func() { total.Merge(delta) }); allocs > 0 {
		t.Errorf("steady-state Merge allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { total.AddDoc(ids) }); allocs > 0 {
		t.Errorf("steady-state AddDoc allocates %v times per run, want 0", allocs)
	}
}

// TestDFTableEnsureGrowth exercises the doubling growth path one ID at a
// time: counts must survive every growth step and the re-exposed region
// must read as zero.
func TestDFTableEnsureGrowth(t *testing.T) {
	table := NewDFTable(NewDictionary())
	for id := 0; id < 1000; id++ {
		table.AddDoc([]TermID{TermID(id)})
	}
	for id := 0; id < 1000; id++ {
		if got := table.DF(TermID(id)); got != 1 {
			t.Fatalf("DF(%d) = %d after incremental growth, want 1", id, got)
		}
	}
	if got := table.DF(TermID(5000)); got != 0 {
		t.Fatalf("DF beyond the table = %d, want 0", got)
	}
	if table.NumDocs() != 1000 {
		t.Fatalf("NumDocs = %d, want 1000", table.NumDocs())
	}
}
