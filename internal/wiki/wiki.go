// Package wiki implements the synthetic Wikipedia substrate: a page per
// ontology concept, redirect pages for name variants, anchor-text
// statistics, and the inter-page link graph. On top of it live the three
// Wikipedia-based tools of the paper:
//
//   - TitleExtractor (Section IV-A, "Wikipedia Terms"): marks document
//     terms important when they match a page title or redirect, preferring
//     the longest title.
//   - GraphResource (Section IV-B, "Wikipedia Graph"): returns linked
//     entries scored log(N/in(t2))/out(t1), top k=50.
//   - SynonymResource (Section IV-B, "Wikipedia Synonyms"): returns name
//     variants from redirects plus anchor texts scored tf(p,t)/f(p).
//
// The page graph is generated from the ontology so it has the same shape
// as the real one at reduced scale: entity pages link "up" to general
// facet entries and "sideways" to related entities, producing a graph
// where general entries accumulate high in-degree — the property that the
// association scoring and, downstream, the comparative frequency analysis
// rely on.
package wiki

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
	"repro/internal/ontology"
	"repro/internal/xrand"
)

// PageID indexes a page within the Wiki.
type PageID int32

// Link is a directed edge from one page to another with its anchor text.
type Link struct {
	Target PageID
	Anchor string // surface form used in the source page
}

// Page is one Wikipedia entry.
type Page struct {
	ID      PageID
	Title   string // display-form title
	Concept ontology.ConceptID
	Text    string
	Links   []Link
}

// Wiki is the assembled encyclopedia.
type Wiki struct {
	kb    *ontology.KB
	pages []*Page

	byTitle   map[string]PageID // normalized canonical title → page
	redirects map[string]PageID // normalized variant title → page

	inDeg  []int
	outDeg []int

	// anchorTF[anchor][page] = number of links using this anchor text for
	// this target page; anchorPages[anchor] = number of distinct target
	// pages the anchor points to (the f(p) of the paper's s(p,t) score).
	anchorTF map[string]map[PageID]int

	maxTitleWords int
}

// Config controls wiki generation.
type Config struct {
	Seed uint64
	// VariantAnchorProb is the probability that a link uses a name variant
	// rather than the canonical title as anchor text.
	VariantAnchorProb float64
	// MaxFacetChildLinks bounds how many child links a facet page gets.
	MaxFacetChildLinks int
}

func (c *Config) defaults() {
	if c.VariantAnchorProb == 0 {
		c.VariantAnchorProb = 0.25
	}
	if c.MaxFacetChildLinks == 0 {
		c.MaxFacetChildLinks = 12
	}
}

// Build generates the wiki from the knowledge base.
func Build(kb *ontology.KB, cfg Config) (*Wiki, error) {
	cfg.defaults()
	w := &Wiki{
		kb:        kb,
		byTitle:   make(map[string]PageID, kb.Len()),
		redirects: make(map[string]PageID),
		anchorTF:  make(map[string]map[PageID]int),
	}
	rng := xrand.New(cfg.Seed).Sub("wiki")

	// Pass 1: create a page per concept and register titles/redirects.
	for i := 0; i < kb.Len(); i++ {
		c := kb.Concept(ontology.ConceptID(i))
		p := &Page{ID: PageID(len(w.pages)), Title: c.Display, Concept: c.ID}
		w.pages = append(w.pages, p)
		norm := lang.NormalizePhrase(c.Display)
		if _, taken := w.byTitle[norm]; !taken {
			w.byTitle[norm] = p.ID
		}
		if n := len(strings.Fields(norm)); n > w.maxTitleWords {
			w.maxTitleWords = n
		}
		for _, v := range c.Variants {
			nv := lang.NormalizePhrase(v)
			if nv == norm {
				continue
			}
			if _, taken := w.byTitle[nv]; taken {
				continue
			}
			if _, taken := w.redirects[nv]; !taken {
				w.redirects[nv] = p.ID
				if n := len(strings.Fields(nv)); n > w.maxTitleWords {
					w.maxTitleWords = n
				}
			}
		}
	}

	// Pass 2: wire links and generate text.
	w.inDeg = make([]int, len(w.pages))
	w.outDeg = make([]int, len(w.pages))
	for _, p := range w.pages {
		prng := rng.SubInt("page", int(p.ID))
		c := kb.Concept(p.Concept)
		var targets []ontology.ConceptID
		targets = append(targets, c.Parents...)
		// Transitive facet ancestors beyond the immediate parents are
		// linked with lower probability (a politician's page mentions
		// "Europe" less reliably than "France").
		for _, a := range kb.FacetAncestors(p.Concept) {
			if containsID(c.Parents, a) {
				continue
			}
			if prng.Bool(0.45) {
				targets = append(targets, a)
			}
		}
		targets = append(targets, c.Related...)
		// Facet pages link to a sample of sibling facets under the same
		// root, mimicking category cross-links.
		if c.IsFacet() && len(targets) < cfg.MaxFacetChildLinks {
			root := kb.Root(c.ID)
			if root != ontology.None && root != c.ID && prng.Bool(0.5) {
				targets = append(targets, root)
			}
		}
		seen := map[ontology.ConceptID]bool{p.Concept: true}
		for _, tgt := range targets {
			if seen[tgt] {
				continue
			}
			seen[tgt] = true
			tp := w.pages[int(tgt)] // page IDs mirror concept IDs
			anchor := tp.Title
			tc := kb.Concept(tgt)
			if len(tc.Variants) > 0 && prng.Bool(cfg.VariantAnchorProb) {
				anchor = xrand.Pick(prng, tc.Variants)
			}
			p.Links = append(p.Links, Link{Target: tp.ID, Anchor: anchor})
			w.outDeg[p.ID]++
			w.inDeg[tp.ID]++
			na := lang.NormalizePhrase(anchor)
			if w.anchorTF[na] == nil {
				w.anchorTF[na] = map[PageID]int{}
			}
			w.anchorTF[na][tp.ID]++
		}
		p.Text = w.generateText(prng, c)
	}
	if len(w.pages) == 0 {
		return nil, fmt.Errorf("wiki: empty knowledge base")
	}
	return w, nil
}

func containsID(ids []ontology.ConceptID, id ontology.ConceptID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// generateText writes a short encyclopedic article: the concept name, its
// facet ancestry (the "context terms" a human reads off the page), its
// topical vocabulary, and the names of related concepts.
func (w *Wiki) generateText(rng *xrand.RNG, c *ontology.Concept) string {
	var sb strings.Builder
	sb.WriteString(c.Display)
	switch {
	case c.Kind == ontology.KindEntity:
		sb.WriteString(" is ")
	default:
		sb.WriteString(" concerns ")
	}
	anc := w.kb.FacetAncestors(c.ID)
	for i, a := range anc {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(w.kb.Concept(a).Display)
	}
	if len(anc) == 0 {
		sb.WriteString("a general subject")
	}
	sb.WriteString(". ")
	// The page's topical vocabulary: the concept's own words plus a small
	// sample of ancestor vocabulary. Keeping the ancestor share small
	// matters: ancestor words are shared across whole subtrees, and pages
	// that all carry them would make those words look query-relevant to
	// the snippet-mining resource for every query in the subtree.
	words := append([]string{}, c.Words...)
	var ancWords []string
	for _, a := range anc {
		ancWords = append(ancWords, w.kb.Concept(a).Words...)
	}
	if len(ancWords) > 0 {
		words = append(words, xrand.PickN(rng, ancWords, 3)...)
	}
	if len(words) > 0 {
		// Topic vocabulary as a comma-separated list: commas are phrase
		// boundaries, so adjacent list entries never form spurious phrases
		// when snippets are mined downstream.
		sb.WriteString(xrand.Pick(rng, glueOpeners))
		n := min(len(words), 8+rng.Intn(5))
		picked := xrand.PickN(rng, words, n)
		sb.WriteString(strings.Join(picked, ", "))
		sb.WriteString(". ")
	}
	if len(c.Related) > 0 {
		sb.WriteString(xrand.Pick(rng, seeAlsoOpeners))
		for i, r := range c.Related {
			if i >= 4 {
				break
			}
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(w.kb.Concept(r).Display)
		}
		sb.WriteString(".")
	}
	return sb.String()
}

// glueOpeners and seeAlsoOpeners vary the boilerplate phrasing across
// pages. The small variant count is deliberate: each glue word then
// appears on a large fraction of all pages, so the web-search resource's
// background-frequency cut recognizes it as boilerplate.
var glueOpeners = []string{
	"The article mentions ",
	"The entry covers ",
	"The page refers to ",
	"The text addresses ",
}

var seeAlsoOpeners = []string{
	"See also ",
	"Compare with ",
}

// Len returns the number of pages.
func (w *Wiki) Len() int { return len(w.pages) }

// Page returns a page by ID.
func (w *Wiki) Page(id PageID) *Page { return w.pages[id] }

// Pages returns all pages; callers must not mutate the slice.
func (w *Wiki) Pages() []*Page { return w.pages }

// Resolve maps a (possibly variant) title to its page, following
// redirects, mirroring Wikipedia's title resolution.
func (w *Wiki) Resolve(title string) (*Page, bool) {
	norm := lang.NormalizePhrase(title)
	if id, ok := w.byTitle[norm]; ok {
		return w.pages[id], true
	}
	if id, ok := w.redirects[norm]; ok {
		return w.pages[id], true
	}
	return nil, false
}

// InDegree and OutDegree expose the link-graph degrees used by the
// association score.
func (w *Wiki) InDegree(id PageID) int  { return w.inDeg[id] }
func (w *Wiki) OutDegree(id PageID) int { return w.outDeg[id] }

// RedirectGroup returns all registered variant titles (normalized) that
// redirect to the page, sorted.
func (w *Wiki) RedirectGroup(id PageID) []string {
	var out []string
	for v, pid := range w.redirects {
		if pid == id {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// AnchorsFor returns the anchor texts (normalized) used across the wiki to
// link to the page, with their s(p,t) = tf(p,t)/f(p) scores, sorted by
// score descending then text.
func (w *Wiki) AnchorsFor(id PageID) []ScoredTerm {
	var out []ScoredTerm
	for anchor, tfs := range w.anchorTF {
		tf, ok := tfs[id]
		if !ok {
			continue
		}
		out = append(out, ScoredTerm{Term: anchor, Score: float64(tf) / float64(len(tfs))})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Term < out[b].Term
	})
	return out
}

// ScoredTerm pairs a normalized term with a score.
type ScoredTerm struct {
	Term  string
	Score float64
}

// MaxTitleWords returns the longest registered title length in words;
// the title extractor uses it to bound n-gram scanning.
func (w *Wiki) MaxTitleWords() int { return w.maxTitleWords }
