package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Fatalf("Workers(-3) = %d, want %d", got, want)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 503
		var hits [n]atomic.Int32
		if err := For(context.Background(), n, workers, func(_, i int) {
			hits[i].Add(1)
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForWorkerIDsAreStable(t *testing.T) {
	// Every invocation with a given worker ID must run on that worker's
	// goroutine: per-worker accumulators appended here without locking
	// must survive the race detector.
	const n, workers = 1000, 8
	acc := make([][]int, workers)
	if err := For(context.Background(), n, workers, func(w, i int) {
		acc[w] = append(acc[w], i)
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, a := range acc {
		total += len(a)
	}
	if total != n {
		t.Fatalf("accumulated %d items, want %d", total, n)
	}
}

func TestForSequentialWhenSingleWorker(t *testing.T) {
	var order []int
	if err := For(context.Background(), 10, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("worker id %d on sequential path", w)
		}
		order = append(order, i)
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential path out of order: %v", order)
		}
	}
}

func TestForHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	err := For(ctx, 100000, 4, func(_, i int) {
		if done.Add(1) == 10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done.Load() == 100000 {
		t.Fatal("cancellation did not stop the loop early")
	}
}

func TestForZeroItems(t *testing.T) {
	if err := For(context.Background(), 0, 8, func(_, _ int) {
		t.Fatal("fn called for empty range")
	}); err != nil {
		t.Fatal(err)
	}
}
