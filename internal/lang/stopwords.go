package lang

// stopwords is a standard English stopword list (the classic van
// Rijsbergen / SMART-derived set, trimmed to words that actually occur in
// news prose). Facet-term candidates and extracted phrases never begin or
// end with a stopword.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range stopwordList {
		stopwords[w] = struct{}{}
	}
}

var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "also", "am",
	"an", "and", "any", "are", "aren't", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"can't", "cannot", "could", "couldn't", "did", "didn't", "do", "does",
	"doesn't", "doing", "don't", "down", "during", "each", "few", "for",
	"from", "further", "had", "hadn't", "has", "hasn't", "have", "haven't",
	"having", "he", "he'd", "he'll", "he's", "her", "here", "here's", "hers",
	"herself", "him", "himself", "his", "how", "how's", "i", "i'd", "i'll",
	"i'm", "i've", "if", "in", "into", "is", "isn't", "it", "it's", "its",
	"itself", "let's", "me", "more", "most", "mustn't", "my", "myself", "no",
	"nor", "not", "of", "off", "on", "once", "only", "or", "other", "ought",
	"our", "ours", "ourselves", "out", "over", "own", "same", "shan't",
	"she", "she'd", "she'll", "she's", "should", "shouldn't", "so", "some",
	"such", "than", "that", "that's", "the", "their", "theirs", "them",
	"themselves", "then", "there", "there's", "these", "they", "they'd",
	"they'll", "they're", "they've", "this", "those", "through", "to", "too",
	"under", "until", "up", "very", "was", "wasn't", "we", "we'd", "we'll",
	"we're", "we've", "were", "weren't", "what", "what's", "when", "when's",
	"where", "where's", "which", "while", "who", "who's", "whom", "why",
	"why's", "with", "won't", "would", "wouldn't", "you", "you'd", "you'll",
	"you're", "you've", "your", "yours", "yourself", "yourselves",
	// Reporting-verb function words common in news prose.
	"said", "say", "says", "will", "one", "also", "according", "would",
}

// GenericNewsWords are high-frequency words of news prose that are NOT
// stopwords but carry no facet information ("year", "people", "report").
// The corpus generator emits them near the head of the Zipf distribution;
// the paper's Figure 5 shows that a subsumption baseline without document
// expansion surfaces exactly these words, which is the failure mode the
// facet-extraction pipeline is designed to avoid.
var GenericNewsWords = []string{
	"year", "new", "time", "people", "state", "work", "school", "home",
	"mr", "report", "game", "million", "week", "percent", "help", "right",
	"plan", "house", "high", "world", "american", "month", "live", "call",
	"thing", "day", "man", "woman", "group", "part", "place", "case",
	"company", "number", "point", "fact", "way", "area", "money", "story",
	"night", "water", "word", "family", "head", "hand", "official", "city",
	"country", "billion", "street", "room", "end", "life", "team", "member",
	"president", "director", "question", "program", "office", "service",
	"system", "issue", "side", "kind", "job", "car", "price", "result",
	"change", "reason", "effort", "decision", "deal", "share", "record",
}

// IsStopword reports whether the normalized word is a stopword.
func IsStopword(w string) bool {
	_, ok := stopwords[w]
	return ok
}

// StopwordCount returns the size of the stopword list (used by tests and
// by the Zipfian vocabulary builder, which places stopwords at the head of
// the frequency distribution).
func StopwordCount() int { return len(stopwordList) }

// Stopwords returns a copy of the stopword list in declaration order.
func Stopwords() []string {
	out := make([]string, len(stopwordList))
	copy(out, stopwordList)
	return out
}

// TrimStopwords removes leading and trailing stopwords from a normalized
// phrase (given as words) and returns the trimmed words. It returns nil if
// nothing remains.
func TrimStopwords(words []string) []string {
	start, end := 0, len(words)
	for start < end && IsStopword(words[start]) {
		start++
	}
	for end > start && IsStopword(words[end-1]) {
		end--
	}
	if start >= end {
		return nil
	}
	return words[start:end]
}
