package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HTTPMetrics instruments HTTP handlers: per-route request counters,
// status-class counters, latency histograms, and an optional structured
// (JSON lines) access log. One HTTPMetrics wraps every route of a
// server, all recording into one Registry under the names
//
//	http.requests.<route>        counter
//	http.status.<route>.<class>  counter (class is "2xx".."5xx")
//	http.latency.<route>         histogram
type HTTPMetrics struct {
	reg *Registry
	log atomic.Pointer[AccessLog]
}

// NewHTTPMetrics returns middleware recording into reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	return &HTTPMetrics{reg: reg}
}

// Registry returns the backing registry.
func (m *HTTPMetrics) Registry() *Registry { return m.reg }

// SetAccessLog starts writing one JSON line per request to w (nil
// disables). Safe to call while traffic is being served.
func (m *HTTPMetrics) SetAccessLog(w io.Writer) {
	if w == nil {
		m.log.Store(nil)
		return
	}
	m.log.Store(&AccessLog{w: w})
}

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// Wrap instruments next under the given route name. The route is a
// stable label ("facets", "docs", "ingest"), not the request path, so
// versioned and legacy aliases of the same endpoint share one series.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	requests := m.reg.Counter("http.requests." + route)
	latency := m.reg.Histogram("http.latency." + route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		requests.Inc()
		m.reg.Counter("http.status." + route + "." + statusClass(sw.status)).Inc()
		latency.Observe(elapsed)
		if l := m.log.Load(); l != nil {
			l.Record(r.Method, route, r.URL.Path, sw.status, sw.bytes, elapsed)
		}
	})
}

// AccessLog serializes request records as JSON lines. Writes are
// serialized under a mutex so concurrent handlers never interleave
// mid-line.
type AccessLog struct {
	mu sync.Mutex
	w  io.Writer
}

// accessRecord is one structured access-log line.
type accessRecord struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Route    string  `json:"route"`
	Path     string  `json:"path"`
	Status   int     `json:"status"`
	Bytes    int64   `json:"bytes"`
	ElapsedM float64 `json:"elapsed_millis"`
}

// Record writes one line; marshal errors are swallowed (logging must
// never fail a request).
func (l *AccessLog) Record(method, route, path string, status int, bytes int64, elapsed time.Duration) {
	line, err := json.Marshal(accessRecord{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		Method:   method,
		Route:    route,
		Path:     path,
		Status:   status,
		Bytes:    bytes,
		ElapsedM: float64(elapsed) / float64(time.Millisecond),
	})
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(append(line, '\n'))
}
