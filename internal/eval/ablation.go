package eval

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// AblationResult compares design choices of Step 3 (Section IV-C): the
// ranking statistic (log-likelihood vs. chi-square vs. raw frequency
// shift) and the shift gating (both tests vs. each alone).
type AblationResult struct {
	Variants []AblationVariant
}

// AblationVariant is one configuration's outcome.
type AblationVariant struct {
	Name string
	// Candidates passing the gates.
	Candidates int
	// UsefulAtK: fraction of the top-K ranked terms that denote true
	// facets (the cheap usefulness oracle, without a judging round).
	UsefulAtK float64
	// RecallAtK against the ground truth.
	RecallAtK float64
}

// Ablation runs the variants on the All×All cell of a dataset.
func Ablation(dr *DataRun, topK int) (*AblationResult, error) {
	if topK == 0 {
		topK = 100
	}
	important := dr.Important(ExtAll)
	context := core.DeriveContext(important, dr.Lab.Resources(ResourceOrder...), labCache(dr))
	gt := dr.Pool.BuildGroundTruth(dr.DS, dr.SampleIndices(1000))

	variants := []struct {
		name string
		opts core.AnalyzeOptions
	}{
		{"log-likelihood + both shifts (paper)", core.AnalyzeOptions{}},
		{"chi-square + both shifts", core.AnalyzeOptions{Scorer: stats.ChiSquare}},
		{"raw Shift_f ranking + both shifts", core.AnalyzeOptions{Scorer: func(df, dfC, n int) float64 {
			return float64(dfC - df)
		}}},
		{"log-likelihood, Shift_f only", core.AnalyzeOptions{SkipShiftR: true}},
		{"log-likelihood, Shift_r only", core.AnalyzeOptions{SkipShiftF: true}},
		{"log-likelihood, no shift gates", core.AnalyzeOptions{SkipShiftF: true, SkipShiftR: true}},
	}
	res := &AblationResult{}
	for _, v := range variants {
		r := core.AnalyzeWith(dr.DS.Corpus, context, topK, v.opts)
		terms := r.FacetTermStrings()
		res.Variants = append(res.Variants, AblationVariant{
			Name:       v.name,
			Candidates: len(r.Candidates),
			UsefulAtK:  dr.Pool.UsefulRate(terms),
			RecallAtK:  gt.Recall(terms),
		})
	}
	return res, nil
}

// labCache exposes the lab's shared resource cache to the ablations.
func labCache(dr *DataRun) *core.ResourceCache { return dr.Lab.cache }

// Format renders the ablation table.
func (r *AblationResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %12s %12s %12s\n", "Variant", "Candidates", "Useful@K", "Recall@K")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, v := range r.Variants {
		fmt.Fprintf(&sb, "%-42s %12d %12.3f %12.3f\n", v.Name, v.Candidates, v.UsefulAtK, v.RecallAtK)
	}
	return sb.String()
}
