package ingest

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/browse"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/textdb"
)

// runEpoch executes one incremental rebuild: snapshot the pipeline state
// under lock, persist the epoch's intake, re-run Step 3 candidate
// selection over the incrementally maintained DF tables, rebuild the
// subsumption hierarchy, assemble a fresh browsing interface over the
// immutable corpus snapshot, and publish it with one atomic swap. Only
// the snapshot step holds the intake lock; extraction and intake continue
// while the rebuild runs. runEpoch is never called concurrently (it runs
// on the scheduler goroutine, or before Start / after scheduler shutdown).
func (ing *Ingester) runEpoch() error {
	start := time.Now()

	ing.mu.Lock()
	n := ing.corpus.Len()
	snap := ing.corpus.Snapshot()
	important := append([][]string(nil), ing.important...)
	votes := append([]map[string]int(nil), ing.votes...)
	dfD := ing.dfD.Clone()
	dfC := ing.dfC.Clone()
	ctxTerms := make(map[textdb.TermID]bool, len(ing.ctxTerms))
	for id := range ing.ctxTerms {
		ctxTerms[id] = true
	}
	newDocs := ing.pending
	ing.pending = nil
	epochDocs := ing.unpublished
	ing.unpublished = 0
	ing.mu.Unlock()

	// Durability first: a crash during the rebuild must not lose accepted
	// intake. Each epoch's documents form one segment; Store.Append is
	// crash-safe (segment fsync + atomic manifest rename).
	if ing.cfg.Store != nil && len(newDocs) > 0 {
		if err := ing.cfg.Store.Append(newDocs); err != nil {
			ing.mu.Lock()
			ing.pending = append(append([]*textdb.Document(nil), newDocs...), ing.pending...)
			ing.unpublished += epochDocs
			ing.mu.Unlock()
			return err
		}
		ing.persistedDocs.Add(int64(len(newDocs)))
		ing.persistedSegments.Add(1)
	}

	// Step 3 over the delta-merged statistics, then hierarchy + browse.
	// Candidate scoring and the pairwise subsumption sweep shard across
	// the same worker pool that sizes intake (results are identical for
	// any worker count, so live and batch builds still agree).
	res := core.AnalyzeTables(snap.Dict(), dfD, dfC, ctxTerms, n, ing.cfg.TopK, core.AnalyzeOptions{Workers: ing.cfg.Workers})
	terms := res.FacetTermStrings()
	docTerms := assignDocTerms(snap, important, votes, terms)
	builderName := ing.cfg.HierarchyBuilder
	if builderName == "" {
		builderName = "subsumption"
	}
	builder, ok := hierarchy.Lookup(builderName)
	if !ok {
		return fmt.Errorf("ingest: unknown hierarchy builder %q", builderName)
	}
	forest, err := builder.Build(context.Background(), terms, docTerms, hierarchy.BuildConfig{
		Threshold: ing.cfg.SubsumptionThreshold,
		Workers:   ing.cfg.Workers,
		Metrics:   ing.cfg.Metrics, // hierarchy.pairs.* pruning counters per epoch; nil disables
	})
	if err != nil {
		return err
	}
	iface, err := browse.Build(snap, forest, docTerms)
	if err != nil {
		return err
	}

	// Stamp the interface with its epoch (distinct per rebuild, so query
	// cache keys from different hierarchy builds can never collide) and
	// attach the query-serving instrumentation before it becomes visible.
	iface.SetEpoch(uint64(ing.epochs.Load()) + 1)
	if ing.cfg.Metrics != nil {
		iface.SetMetrics(ing.cfg.Metrics)
	}

	elapsed := time.Since(start)
	ing.current.Store(iface)
	ing.publishedTerms.Store(&terms)
	ing.docsPublished.Store(int64(n))
	ing.facetTerms.Store(int64(len(terms)))
	ing.epochs.Add(1)
	ing.lastEpochDocs.Store(int64(epochDocs))
	ing.lastEpochMillis.Store(elapsed.Milliseconds())
	if ing.cfg.Metrics != nil {
		ing.cfg.Metrics.Histogram("ingest.epoch_duration").Observe(elapsed)
		ing.cfg.Metrics.Counter("ingest.epoch_published_docs").Add(int64(epochDocs))
	}
	if ing.cfg.OnPublish != nil {
		ing.cfg.OnPublish(iface)
	}
	return nil
}

// persistPending durably appends any unpersisted documents without
// rebuilding; Close falls back to it when its context has expired.
func (ing *Ingester) persistPending() error {
	ing.mu.Lock()
	newDocs := ing.pending
	ing.pending = nil
	ing.mu.Unlock()
	if ing.cfg.Store == nil || len(newDocs) == 0 {
		return nil
	}
	if err := ing.cfg.Store.Append(newDocs); err != nil {
		ing.mu.Lock()
		ing.pending = append(append([]*textdb.Document(nil), newDocs...), ing.pending...)
		ing.mu.Unlock()
		return err
	}
	ing.persistedDocs.Add(int64(len(newDocs)))
	ing.persistedSegments.Add(1)
	return nil
}

// assignDocTerms computes the document-to-facet assignment for browsing:
// facet terms appearing in the document text, plus context terms
// corroborated by at least two of the document's important terms (one
// when the document has fewer than two). This mirrors the batch facade's
// assignment so live and batch builds of the same corpus agree.
func assignDocTerms(corpus *textdb.Corpus, important [][]string, votes []map[string]int, terms []string) [][]string {
	termSet := make(map[string]bool, len(terms))
	for _, t := range terms {
		termSet[t] = true
	}
	dict := corpus.Dict()
	docTerms := make([][]string, corpus.Len())
	for d := 0; d < corpus.Len(); d++ {
		present := map[string]bool{}
		for _, id := range corpus.DocTerms(textdb.DocID(d)) {
			if s := dict.String(id); termSet[s] {
				present[s] = true
			}
		}
		need := 2
		if len(important[d]) < 2 {
			need = 1
		}
		for c, v := range votes[d] {
			if v >= need && termSet[c] {
				present[c] = true
			}
		}
		for t := range present {
			docTerms[d] = append(docTerms[d], t)
		}
		sort.Strings(docTerms[d])
	}
	return docTerms
}

// Stats is a point-in-time snapshot of the subsystem's health, exposed
// over GET /api/ingest/stats.
type Stats struct {
	DocsIngested        int64   `json:"docs_ingested"`           // accepted into the pipeline (incl. bootstrap)
	DocsPublished       int64   `json:"docs_published"`          // visible in the served interface
	QueueDepth          int     `json:"queue_depth"`             // documents waiting in the intake queue
	Epochs              int64   `json:"epochs"`                  // completed rebuild epochs
	LastEpochDocs       int64   `json:"last_epoch_docs"`         // documents newly published by the last epoch
	LastEpochMillis     int64   `json:"last_epoch_millis"`       // wall-clock latency of the last epoch
	LastEpochDocsPerSec float64 `json:"last_epoch_docs_per_sec"` // publication throughput of the last epoch
	FacetTerms          int64   `json:"facet_terms"`             // facet terms in the served hierarchy
	CacheHits           int64   `json:"cache_hits"`              // resource-cache hits
	CacheMisses         int64   `json:"cache_misses"`            // resource-cache misses
	CacheHitRate        float64 `json:"cache_hit_rate"`          // hits / (hits + misses)
	CacheEntries        int     `json:"cache_entries"`           // live LRU entries
	PersistedDocs       int64   `json:"persisted_docs"`          // documents durable in the segment store
	PersistedSegments   int64   `json:"persisted_segments"`      // segments in the store
	DeadLetters         int     `json:"dead_letters"`            // documents awaiting retry in the DLQ
	DeadLetterDropped   int64   `json:"dead_letter_dropped"`     // DLQ entries evicted by the bound
	AnalysisFailures    int64   `json:"analysis_failures"`       // failed document analyses (incl. retries)
	FallbackLookups     int64   `json:"fallback_lookups"`        // term expansions rescued by Config.Fallback
}

// Stats returns a consistent snapshot of the counters.
func (ing *Ingester) Stats() Stats {
	hits, misses := ing.cache.Counters()
	s := Stats{
		DocsIngested:      ing.docsIngested.Load(),
		DocsPublished:     ing.docsPublished.Load(),
		QueueDepth:        len(ing.queue),
		Epochs:            ing.epochs.Load(),
		LastEpochDocs:     ing.lastEpochDocs.Load(),
		LastEpochMillis:   ing.lastEpochMillis.Load(),
		FacetTerms:        ing.facetTerms.Load(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheEntries:      ing.cache.Len(),
		PersistedDocs:     ing.persistedDocs.Load(),
		PersistedSegments: ing.persistedSegments.Load(),
		DeadLetterDropped: ing.dlqDropped.Load(),
		AnalysisFailures:  ing.analysisFailures.Load(),
		FallbackLookups:   ing.fallbackLookups.Load(),
	}
	ing.dlqMu.Lock()
	s.DeadLetters = len(ing.dlq)
	ing.dlqMu.Unlock()
	if total := hits + misses; total > 0 {
		s.CacheHitRate = float64(hits) / float64(total)
	}
	if s.LastEpochMillis > 0 {
		s.LastEpochDocsPerSec = float64(s.LastEpochDocs) / (float64(s.LastEpochMillis) / 1000)
	}
	return s
}
