package hierarchy

import (
	"context"
	"sort"
)

// ChainProvider supplies is-a ancestor chains (nearest first) for a term,
// e.g. WordNet hypernym chains via wordnet.DB. Terms without a chain
// return nil.
type ChainProvider interface {
	Chain(term string) []string
}

// ChainFunc adapts a function to ChainProvider.
type ChainFunc func(term string) []string

// Chain implements ChainProvider.
func (f ChainFunc) Chain(term string) []string { return f(term) }

// BuildTreeMinimization implements the Stoica–Hearst approach the paper
// cites as prior work (HLT-NAACL 2004/2007): each term contributes its
// hypernym path; the paths are merged into one tree, and the tree is then
// minimized by eliminating every internal node that is not itself an
// input term and has exactly one child. Terms with no chain become
// roots — which is precisely the named-entity weakness the paper's
// technique addresses.
func BuildTreeMinimization(terms []string, chains ChainProvider) *Forest {
	forest := &Forest{index: map[string]*Node{}}
	nodeFor := func(term string) *Node {
		if n, ok := forest.index[term]; ok {
			return n
		}
		n := &Node{Term: term}
		forest.index[term] = n
		return n
	}
	inputSet := map[string]bool{}
	for _, t := range terms {
		inputSet[t] = true
	}
	// Merge paths root→...→term.
	for _, t := range terms {
		chain := chains.Chain(t)
		path := make([]string, 0, len(chain)+1)
		for i := len(chain) - 1; i >= 0; i-- {
			path = append(path, chain[i])
		}
		path = append(path, t)
		var parent *Node
		for _, term := range path {
			n := nodeFor(term)
			if parent != nil && n.Parent == nil && n != parent && !isAncestorNode(n, parent) {
				n.Parent = parent
				parent.Children = append(parent.Children, n)
			}
			parent = n
		}
	}
	for _, n := range forest.index {
		if n.Parent == nil {
			forest.Roots = append(forest.Roots, n)
		}
	}
	// Minimization: splice out non-input single-child internal nodes.
	var minimize func(n *Node) *Node
	minimize = func(n *Node) *Node {
		for i, c := range n.Children {
			n.Children[i] = minimize(c)
			n.Children[i].Parent = n
		}
		if !inputSet[n.Term] && len(n.Children) == 1 {
			child := n.Children[0]
			child.Parent = n.Parent
			delete(forest.index, n.Term)
			return child
		}
		return n
	}
	for i, r := range forest.Roots {
		m := minimize(r)
		m.Parent = nil
		forest.Roots[i] = m
	}
	// Drop non-input leaf roots (chains whose term was pruned elsewhere).
	roots := forest.Roots[:0]
	for _, r := range forest.Roots {
		if len(r.Children) == 0 && !inputSet[r.Term] {
			delete(forest.index, r.Term)
			continue
		}
		roots = append(roots, r)
	}
	forest.Roots = roots
	sort.Slice(forest.Roots, func(i, j int) bool { return forest.Roots[i].Term < forest.Roots[j].Term })
	forest.Walk(func(n *Node, _ int) {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Term < n.Children[j].Term })
	})
	return forest
}

// treeminBuilder is the registered "treemin" strategy: it adapts
// BuildTreeMinimization to the Builder contract using cfg.Chains as the
// chain provider. docTerms and the co-occurrence knobs are ignored — the
// hierarchy comes entirely from the taxonomy chains, so there is no
// pairwise co-occurrence sweep to prune: the candidate-pair generator
// (pairIndex) and the hierarchy.pairs.* counters do not apply here, and
// cfg.denseSweep is a no-op. Cost is O(Σ chain length), not O(terms²).
type treeminBuilder struct{}

// Name implements Builder.
func (treeminBuilder) Name() string { return "treemin" }

// Build implements Builder.
func (treeminBuilder) Build(ctx context.Context, terms []string, docTerms [][]string, cfg BuildConfig) (*Forest, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	chains := cfg.Chains
	if chains == nil {
		chains = ChainFunc(func(string) []string { return nil })
	}
	return BuildTreeMinimization(terms, chains), nil
}

func isAncestorNode(a, b *Node) bool {
	for cur := b; cur != nil; cur = cur.Parent {
		if cur == a {
			return true
		}
	}
	return false
}
