package ingest

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
	"unicode"

	"repro/internal/browse"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/textdb"
)

// wordExtractor marks every word important — a deterministic stand-in
// for the Fig. 1 extractors.
type wordExtractor struct{}

func (wordExtractor) Name() string { return "words" }

func (wordExtractor) Extract(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// mapResource is a thesaurus-backed stand-in for the Fig. 2 resources.
type mapResource struct {
	name string
	m    map[string][]string
}

func (r mapResource) Name() string                 { return r.name }
func (r mapResource) Context(term string) []string { return r.m[term] }

func testResource() mapResource {
	return mapResource{name: "world", m: map[string][]string{
		"chirac":   {"politicians", "france"},
		"paris":    {"france", "locations"},
		"merkel":   {"politicians", "germany"},
		"berlin":   {"germany", "locations"},
		"yankees":  {"sports", "teams"},
		"baseball": {"sports"},
	}}
}

// testDocs cycles three story templates so every context facet recurs.
func testDocs(n int) []*textdb.Document {
	// Titles stay clear of the context vocabulary: a context term that
	// already occurs in the documents gains no frequency shift and is
	// correctly rejected as a facet candidate.
	templates := []struct{ title, text string }{
		{"alpha", "Chirac spoke in Paris about the budget"},
		{"beta", "Merkel hosted a Berlin summit on trade"},
		{"gamma", "The Yankees played baseball into the night"},
	}
	base := time.Date(2006, 8, 1, 0, 0, 0, 0, time.UTC)
	out := make([]*textdb.Document, n)
	for i := range out {
		tpl := templates[i%len(templates)]
		out[i] = &textdb.Document{
			Title:  fmt.Sprintf("%s story %d", tpl.title, i),
			Source: "wire",
			Date:   base.AddDate(0, 0, i%28),
			Text:   tpl.text,
		}
	}
	return out
}

func testConfig() Config {
	return Config{
		Extractors: []core.Extractor{wordExtractor{}},
		Resources:  []core.Resource{testResource()},
		Workers:    4,
	}
}

func facetTermSet(iface *browse.Interface) map[string]bool {
	out := map[string]bool{}
	iface.Forest().Walk(func(n *hierarchy.Node, _ int) { out[n.Term] = true })
	return out
}

func drain(t *testing.T, ing *Ingester) {
	t.Helper()
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMatchesBatch is the core correctness property: streaming
// documents through the incremental DF tables must select exactly the
// facet terms the batch pipeline selects over the same corpus.
func TestIncrementalMatchesBatch(t *testing.T) {
	const n = 42

	// Batch run.
	corpus := textdb.NewCorpus()
	for _, d := range testDocs(n) {
		corpus.Add(d)
	}
	p, err := core.New(core.Config{
		Extractors: []core.Extractor{wordExtractor{}},
		Resources:  []core.Resource{testResource()},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Facets) == 0 {
		t.Fatal("batch pipeline found no facet terms")
	}

	// Incremental run: bootstrap a prefix, stream the rest across several
	// epochs.
	cfg := testConfig()
	cfg.EpochDocs = 7
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(n)
	if err := ing.Bootstrap(docs[:10], false); err != nil {
		t.Fatal(err)
	}
	ing.Start()
	for _, d := range docs[10:] {
		if err := ing.SubmitWait(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, ing)

	iface := ing.Current()
	if got := iface.MatchCount(browse.Selection{}); got != n {
		t.Fatalf("published %d docs, want %d", got, n)
	}
	// The incremental DF tables must select exactly the batch ranking.
	want := make([]string, len(batch.Facets))
	for i, f := range batch.Facets {
		want[i] = f.Term
	}
	got := ing.FacetTerms()
	if len(got) != len(want) {
		t.Fatalf("live selected %d facet terms %v, batch selected %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: live %q, batch %q", i, got[i], want[i])
		}
	}
	// Terms with multi-vote document support survive into the hierarchy
	// and carry documents.
	forest := facetTermSet(iface)
	for _, term := range []string{"france", "germany", "sports"} {
		if !forest[term] {
			t.Errorf("facet %q missing from the live hierarchy", term)
		}
		if iface.Count(term) == 0 {
			t.Errorf("facet %q has no documents in the live interface", term)
		}
	}
	if st := ing.Stats(); st.Epochs < 2 {
		t.Fatalf("expected >= 2 epochs (bootstrap + increments), got %d", st.Epochs)
	}
}

// TestEpochTriggerAndCache exercises the doc-count trigger and the LRU
// over repeated entities.
func TestEpochTriggerAndCache(t *testing.T) {
	cfg := testConfig()
	cfg.EpochDocs = 5
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(nil, false); err != nil {
		t.Fatal(err)
	}
	ing.Start()
	for _, d := range testDocs(20) {
		if err := ing.SubmitWait(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, ing)

	st := ing.Stats()
	if st.DocsIngested != 20 || st.DocsPublished != 20 {
		t.Fatalf("ingested=%d published=%d, want 20/20", st.DocsIngested, st.DocsPublished)
	}
	if st.Epochs < 2 {
		t.Fatalf("epochs = %d, want >= 2", st.Epochs)
	}
	// Every template repeats, so re-expansions must hit the cache.
	if st.CacheHitRate == 0 {
		t.Fatalf("cache hit rate is zero: %+v", st)
	}
	if st.CacheMisses == 0 {
		t.Fatal("expected at least one cold miss")
	}
	if got := ing.Current().MatchCount(browse.Selection{}); got != 20 {
		t.Fatalf("served %d docs, want 20", got)
	}
}

// TestMaxStalenessTrigger verifies the timer path publishes without the
// doc-count threshold being reached.
func TestMaxStalenessTrigger(t *testing.T) {
	cfg := testConfig()
	cfg.EpochDocs = 1000 // never trigger by count
	cfg.MaxStaleness = 20 * time.Millisecond
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(nil, false); err != nil {
		t.Fatal(err)
	}
	ing.Start()
	for _, d := range testDocs(3) {
		if err := ing.SubmitWait(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "staleness timer publish", func() bool { return ing.Stats().DocsPublished == 3 })
	drain(t, ing)
}

// TestWarmStart persists intake through the segment store, then restarts
// a fresh ingester from disk and checks the collection survived intact.
func TestWarmStart(t *testing.T) {
	dir := t.TempDir()
	store, err := textdb.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.EpochDocs = 4
	cfg.Store = store
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(12)
	if err := ing.Bootstrap(docs[:5], true); err != nil {
		t.Fatal(err)
	}
	ing.Start()
	for _, d := range docs[5:] {
		if err := ing.SubmitWait(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, ing)
	if st := ing.Stats(); st.PersistedDocs != 12 {
		t.Fatalf("persisted %d docs, want 12 (%+v)", st.PersistedDocs, st)
	}

	// Restart: reopen the store, replay, verify the same collection.
	store2, err := textdb.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Docs() != 12 {
		t.Fatalf("store holds %d docs after restart, want 12", store2.Docs())
	}
	loaded, err := store2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig()
	cfg2.Store = store2
	ing2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing2.Bootstrap(loaded.Docs(), false); err != nil {
		t.Fatal(err)
	}
	if got := ing2.Current().MatchCount(browse.Selection{}); got != 12 {
		t.Fatalf("warm-started interface serves %d docs, want 12", got)
	}
	// Replayed documents must not be appended again.
	if st := ing2.Stats(); st.PersistedDocs != 12 {
		t.Fatalf("warm start re-persisted: %d docs", st.PersistedDocs)
	}
	drain(t, ing2)
	if store2.Docs() != 12 {
		t.Fatalf("store grew to %d docs across a replay-only session", store2.Docs())
	}
}

// TestGracefulDrain checks Close finishes queued work: everything
// submitted before Close must be published afterwards.
func TestGracefulDrain(t *testing.T) {
	cfg := testConfig()
	cfg.EpochDocs = 1000 // force the final epoch to do the publishing
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(testDocs(2), false); err != nil {
		t.Fatal(err)
	}
	ing.Start()
	for _, d := range testDocs(9) {
		if err := ing.SubmitWait(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, ing)
	if got := ing.Current().MatchCount(browse.Selection{}); got != 11 {
		t.Fatalf("after drain interface serves %d docs, want 11", got)
	}
	if err := ing.Submit(testDocs(1)[0]); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitBackpressure: a saturated queue fails fast before workers
// start draining it.
func TestSubmitBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueSize = 2
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(3)
	if err := ing.Submit(docs[0]); err != nil {
		t.Fatal(err)
	}
	if err := ing.Submit(docs[1]); err != nil {
		t.Fatal(err)
	}
	if err := ing.Submit(docs[2]); err != ErrQueueFull {
		t.Fatalf("overfull Submit = %v, want ErrQueueFull", err)
	}
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Resources: []core.Resource{testResource()}}); err == nil {
		t.Fatal("no extractors accepted")
	}
	if _, err := New(Config{Extractors: []core.Extractor{wordExtractor{}}}); err == nil {
		t.Fatal("no resources accepted")
	}
}
