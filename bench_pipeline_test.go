package facet

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchPipelineSchema validates BENCH_pipeline.json when present (CI
// re-records it on an all-core runner and then runs this): the envelope
// must parse, the points must be sane, and — because a scaling curve
// measured on one core is noise — the recording must either come from a
// multi-core host (gomaxprocs > 1) or carry the explicit single_core
// annotation writePipelineBench stamps on one-CPU machines.
func TestBenchPipelineSchema(t *testing.T) {
	data, err := os.ReadFile("BENCH_pipeline.json")
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("BENCH_pipeline.json not present (run BenchmarkPipelineWorkers to produce it)")
		}
		t.Fatal(err)
	}
	var got pipelineBench
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("BENCH_pipeline.json does not parse: %v", err)
	}
	if got.Benchmark != "BenchmarkPipelineWorkers" {
		t.Fatalf("benchmark = %q, want BenchmarkPipelineWorkers", got.Benchmark)
	}
	if got.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs = %d", got.GOMAXPROCS)
	}
	if got.GOMAXPROCS == 1 && !got.SingleCore {
		t.Fatal("gomaxprocs = 1 without the single_core annotation — re-record on a multi-core host or annotate")
	}
	if got.GOMAXPROCS > 1 && got.SingleCore {
		t.Fatalf("single_core annotation on a gomaxprocs=%d recording", got.GOMAXPROCS)
	}
	if len(got.Points) == 0 {
		t.Fatal("no points")
	}
	lastWorkers := 0
	for _, p := range got.Points {
		if p.Workers <= lastWorkers {
			t.Fatalf("points not strictly increasing in workers: %+v", got.Points)
		}
		lastWorkers = p.Workers
		if p.DocsPerSec <= 0 || p.Speedup <= 0 {
			t.Fatalf("malformed point %+v", p)
		}
	}
}
