package cluster

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMultiProcessSmoke runs the real facetserve binary as separate OS
// processes — three shards, a coordinator, and a single-node reference —
// on loopback ports, and checks the cross-process differential plus the
// kill-a-shard degradation path. This is the closest the test suite gets
// to the deployed topology; CI runs it as its own step.
func TestMultiProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "facetserve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/facetserve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Every node generates the same deterministic corpus (profile+seed),
	// so the shards' independently built rings and hierarchies agree.
	corpusArgs := []string{"-docs", "120", "-profile", "SNYT", "-seed", "42", "-addr", "127.0.0.1:0"}
	names := []string{"a", "b", "c"}
	procs := map[string]*nodeProc{}
	t.Cleanup(func() {
		for _, p := range procs {
			p.stop()
		}
	})
	for _, name := range names {
		args := append([]string{"-role", "shard", "-shard-name", name, "-cluster-shards", "a,b,c"}, corpusArgs...)
		procs[name] = startNode(t, bin, args...)
	}
	procs["single"] = startNode(t, bin, corpusArgs...)
	for _, name := range append(names, "single") {
		procs[name].waitAddr(t, 90*time.Second)
	}
	var peers []string
	for _, name := range names {
		peers = append(peers, name+"="+procs[name].addr)
	}
	procs["coord"] = startNode(t, bin,
		"-role", "coordinator", "-peers", strings.Join(peers, ","), "-addr", "127.0.0.1:0")
	procs["coord"].waitAddr(t, 30*time.Second)

	single, coord := procs["single"].addr, procs["coord"].addr
	urls := []string{
		"/api/v1/facets",
		"/api/v1/facets?limit=5",
		"/api/v1/docs?limit=10",
		"/api/v1/dates?granularity=month",
		"/api/v1/facets?from=bogus",
	}
	for _, url := range urls {
		wantStatus, wantBody := httpGet(t, single+url)
		gotStatus, gotBody := httpGet(t, coord+url)
		if gotStatus != wantStatus || gotBody != wantBody {
			t.Fatalf("%s: coordinator (%d) and single node (%d) diverge\ncoordinator: %s\nsingle node: %s",
				url, gotStatus, wantStatus, gotBody, wantBody)
		}
	}

	// Fault injection: kill one shard process; the coordinator must keep
	// answering 200 with an explicit degradation report naming it.
	procs["b"].stop()
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, body := httpGet(t, coord+"/api/v1/facets")
		if status != http.StatusOK {
			t.Fatalf("shard killed: coordinator answered %d: %s", status, body)
		}
		var resp FacetsResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Degraded != nil {
			if len(resp.Degraded.MissingShards) != 1 || resp.Degraded.MissingShards[0] != "b" {
				t.Fatalf("degradation report %+v, want shard b missing", resp.Degraded)
			}
			break
		}
		// The kill may not have landed yet; retry briefly.
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never reported degradation after shard kill: %s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// nodeProc is one spawned facetserve process plus the address it logged.
type nodeProc struct {
	cmd    *exec.Cmd
	addrCh chan string
	addr   string
}

// startNode launches the binary and scans its stderr for the
// "listening on http://..." line (every role logs it after net.Listen,
// which is what makes -addr 127.0.0.1:0 usable here).
func startNode(t *testing.T, bin string, args ...string) *nodeProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &nodeProc{cmd: cmd, addrCh: make(chan string, 1)}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				select {
				case p.addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	return p
}

func (p *nodeProc) waitAddr(t *testing.T, timeout time.Duration) {
	t.Helper()
	select {
	case p.addr = <-p.addrCh:
	case <-time.After(timeout):
		t.Fatalf("node %v never logged its listen address", p.cmd.Args)
	}
}

func (p *nodeProc) stop() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_, _ = p.cmd.Process.Wait()
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	// Deadline-bounded retry rather than a fixed attempt count: a slow
	// runner gets the full window, a healthy one pays ~one round trip.
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for {
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	t.Fatalf("GET %s: %v", url, lastErr)
	return 0, ""
}
