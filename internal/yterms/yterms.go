// Package yterms implements the significant-term extractor standing in
// for the "Yahoo Term Extraction" web service of the paper (Section IV-A):
// given a document, it returns a list of significant words and phrases.
//
// The paper could not document the service's internals ("we could not
// locate any documentation about the internal mechanisms"); we use the
// standard open equivalent: tf·idf scoring against background corpus
// statistics, with a pointwise-mutual-information cohesion test for
// multi-word phrases. The output is the same mixture the service
// produced — named entities plus topical noun phrases — which is what
// gives the "Yahoo" extractor column its higher recall in Tables II–IV.
package yterms

import (
	"math"
	"sort"
	"strings"

	"repro/internal/lang"
	"repro/internal/remote"
	"repro/internal/textdb"
)

// Extractor scores document terms against background statistics.
type Extractor struct {
	bg    *textdb.DFTable
	topK  int
	clock *remote.Clock
}

// New returns an extractor using the given background document-frequency
// table (typically built over the whole corpus). topK <= 0 defaults to 12,
// roughly what the web service returned per document. A non-nil clock
// charges the paper's per-document web-service latency as virtual time.
func New(bg *textdb.DFTable, topK int, clock *remote.Clock) *Extractor {
	if topK <= 0 {
		topK = 12
	}
	return &Extractor{bg: bg, topK: topK, clock: clock}
}

// Name implements the core.Extractor convention.
func (e *Extractor) Name() string { return "Yahoo" }

// Extract returns the topK significant terms of the text, normalized.
func (e *Extractor) Extract(text string) []string {
	if e.clock != nil {
		e.clock.Charge(e.Name(), remote.YahooPerDoc)
	}
	tokens := lang.Tokenize(text)
	// Term frequencies within the document.
	tf := map[string]int{}
	unigramTF := map[string]int{}
	var order []string
	for _, sent := range lang.Phrases(tokens) {
		words := lang.Norms(sent)
		for i, w := range words {
			if len(w) > 1 && !lang.IsStopword(w) {
				if tf[w] == 0 {
					order = append(order, w)
				}
				tf[w]++
				unigramTF[w]++
			}
			for n := 2; n <= 3; n++ {
				if i+n > len(words) {
					break
				}
				if lang.IsStopword(words[i]) || lang.IsStopword(words[i+n-1]) {
					continue
				}
				p := strings.Join(words[i:i+n], " ")
				if tf[p] == 0 {
					order = append(order, p)
				}
				tf[p]++
			}
		}
	}
	total := 0
	for _, c := range unigramTF {
		total += c
	}
	if total == 0 {
		return nil
	}

	n := float64(e.bg.NumDocs())
	if n < 1 {
		n = 1
	}
	type scored struct {
		term  string
		score float64
	}
	var cands []scored
	for _, term := range order {
		words := strings.Split(term, " ")
		if len(words) > 1 && !cohesive(words, tf[term], unigramTF, total) {
			continue
		}
		df := float64(e.bg.DF(e.bg.Dict().Lookup(term)))
		idf := math.Log((n + 1) / (df + 1))
		score := float64(tf[term]) * idf
		// Longer phrases carry more information per occurrence.
		score *= 1 + 0.35*float64(len(words)-1)
		cands = append(cands, scored{term, score})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].term < cands[b].term
	})
	if len(cands) > e.topK {
		cands = cands[:e.topK]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.term
	}
	return out
}

// cohesive applies a pointwise-mutual-information test: a phrase is kept
// only when its observed probability exceeds what the component unigram
// frequencies predict under independence (positive PMI with a margin).
func cohesive(words []string, phraseTF int, unigramTF map[string]int, total int) bool {
	// A collocation needs frequency support: a phrase seen once is
	// indistinguishable from chance adjacency.
	if phraseTF < 2 || total == 0 {
		return false
	}
	expected := 1.0
	parts := 0
	for _, w := range words {
		if lang.IsStopword(w) {
			continue
		}
		if unigramTF[w] == 0 {
			return false
		}
		expected *= float64(unigramTF[w]) / float64(total)
		parts++
	}
	if parts < 2 {
		// A phrase whose content reduces to one word ("state of") carries
		// no collocation evidence.
		return false
	}
	observed := float64(phraseTF) / float64(total)
	return observed > 1.5*expected
}
