// Package obsv is the observability layer: a dependency-free metrics
// subsystem (atomic counters, gauges, and fixed-bucket latency
// histograms in a named registry) plus a StageTimer for pipeline phases
// and HTTP middleware for per-route request accounting.
//
// The paper's efficiency analysis (Section V-D) attributes pipeline cost
// to individual stages — term extraction vs. context expansion vs.
// comparative analysis — and a deployed archive needs the same
// attribution continuously, not just in a one-off experiment. Every hot
// path (core pipeline, live ingestion, segment store, HTTP server)
// records into a Registry, and GET /api/v1/metrics serializes a
// consistent JSON snapshot.
//
// All instruments are safe for concurrent use and built purely on
// sync/atomic: recording on a hot path is a single atomic add (plus one
// binary search for histograms), never a lock.
package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default latency histogram layout: 1ms..10s in a
// roughly logarithmic progression, wide enough for both sub-millisecond
// API reads and multi-second epoch rebuilds.
var DefBuckets = []time.Duration{
	1 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
	25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
	250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// Histogram accumulates durations into fixed buckets. Bounds are upper
// bounds, ascending; observations above the last bound land in an
// implicit overflow bucket. Count and Sum are exact regardless of the
// bucket layout.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64   // nanoseconds
	count  atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// LeMillis is the bucket's inclusive upper bound in milliseconds.
	LeMillis float64 `json:"le_millis"`
	// Count is the cumulative number of observations ≤ LeMillis.
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serializable state of a Histogram. Buckets
// are cumulative; observations above the last bound are included in
// Count but not in any bucket.
type HistogramSnapshot struct {
	Count      int64         `json:"count"`
	SumMillis  float64       `json:"sum_millis"`
	MeanMillis float64       `json:"mean_millis"`
	Buckets    []BucketCount `json:"buckets"`
}

// Snapshot returns a point-in-time copy. Concurrent observations may
// straddle the copy; each individual bucket is still internally exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:     h.count.Load(),
		SumMillis: float64(h.sum.Load()) / float64(time.Millisecond),
	}
	if s.Count > 0 {
		s.MeanMillis = s.SumMillis / float64(s.Count)
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, BucketCount{
			LeMillis: float64(b) / float64(time.Millisecond),
			Count:    cum,
		})
	}
	return s
}

// Registry is a named collection of instruments. Counter, Gauge, and
// Histogram are get-or-create: the first caller allocates, later callers
// with the same name share the instrument, so independently wired
// subsystems can meet at a name without coordination.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() int64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a lazy gauge evaluated at snapshot
// time — the natural shape for values another subsystem already
// maintains (queue depth, cache entries).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (DefBuckets when none) on first use. Later callers get
// the existing histogram regardless of the bounds they pass.
func (r *Registry) Histogram(name string, bounds ...time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is the serializable state of a whole registry — the payload
// of GET /api/v1/metrics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument. Lazy gauges are evaluated outside
// the registry lock so a slow callback cannot stall concurrent
// recording.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for name, fn := range fns {
		s.Gauges[name] = fn()
	}
	for name, h := range hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
