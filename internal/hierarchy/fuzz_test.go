package hierarchy

import (
	"fmt"
	"testing"
)

// fuzzTerms is the closed vocabulary the subsumption fuzzer draws from.
var fuzzTerms = [16]string{
	"news", "sports", "politics", "france", "paris", "chirac", "iraq",
	"war", "trial", "court", "art", "music", "opera", "film", "europe", "asia",
}

// decodeFuzzCollection turns fuzz bytes into (terms, docTerms): two
// bytes per document form a 16-bit term-presence mask.
func decodeFuzzCollection(data []byte) ([]string, [][]string) {
	terms := fuzzTerms[:]
	var docTerms [][]string
	const maxDocs = 96
	for d := 0; d+1 < len(data) && len(docTerms) < maxDocs; d += 2 {
		mask := uint16(data[d]) | uint16(data[d+1])<<8
		var row []string
		for b := 0; b < 16; b++ {
			if mask&(1<<b) != 0 {
				row = append(row, fuzzTerms[b])
			}
		}
		docTerms = append(docTerms, row)
	}
	return terms, docTerms
}

// checkForestInvariants verifies structural soundness of a built forest:
// acyclic parent chains, every indexed node reachable from a root
// exactly once, and Parent/Children pointers mutually consistent.
func checkForestInvariants(t *testing.T, f *Forest) {
	t.Helper()
	size := f.Size()
	visited := map[*Node]bool{}
	f.Walk(func(n *Node, depth int) {
		if visited[n] {
			t.Fatalf("node %q visited twice — forest has a cycle or shared subtree", n.Term)
		}
		visited[n] = true
		if depth > size {
			t.Fatalf("node %q at depth %d exceeds forest size %d — parent cycle", n.Term, depth, size)
		}
		for _, c := range n.Children {
			if c.Parent != n {
				t.Fatalf("child %q of %q has Parent %v", c.Term, n.Term, c.Parent)
			}
		}
	})
	if len(visited) != size {
		t.Fatalf("walk reached %d nodes, index holds %d — unreachable (cyclic) nodes exist", len(visited), size)
	}
	for _, r := range f.Roots {
		if r.Parent != nil {
			t.Fatalf("root %q has a parent %q", r.Term, r.Parent.Term)
		}
	}
	// Independent acyclicity check through the Parent pointers themselves.
	for term, start := range f.index {
		steps := 0
		for n := start; n.Parent != nil; n = n.Parent {
			steps++
			if steps > size {
				t.Fatalf("parent chain from %q does not terminate", term)
			}
		}
	}
}

// FuzzSubsumption builds subsumption forests over arbitrary document
// collections, thresholds, and worker counts, checking that construction
// never fails or panics, the result is a true forest (acyclic, every
// term reachable exactly once), and the sharded pairwise sweep renders
// the identical tree to the sequential one.
func FuzzSubsumption(f *testing.F) {
	f.Add([]byte{0x07, 0x00, 0x03, 0x00, 0x01, 0x00, 0x07, 0x00}, uint8(80), uint8(4))
	f.Add([]byte{0xff, 0xff, 0x0f, 0x00, 0xf0, 0x00}, uint8(50), uint8(0))
	f.Add([]byte{}, uint8(100), uint8(2))
	f.Add([]byte{0x01, 0x80, 0x01, 0x80, 0x03, 0xc0}, uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, thresholdPct, workers uint8) {
		terms, docTerms := decodeFuzzCollection(data)
		threshold := float64(thresholdPct%100+1) / 100 // (0, 1]
		cfg := SubsumptionConfig{Threshold: threshold, Workers: int(workers % 8)}
		forest, err := BuildSubsumption(terms, docTerms, cfg)
		if err != nil {
			t.Fatalf("BuildSubsumption(threshold=%v): %v", threshold, err)
		}
		checkForestInvariants(t, forest)

		seqCfg := cfg
		seqCfg.Workers = 1
		seq, err := BuildSubsumption(terms, docTerms, seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := FormatTree(forest), FormatTree(seq); got != want {
			t.Fatalf("workers=%d forest diverges from sequential:\n--- parallel ---\n%s\n--- sequential ---\n%s",
				cfg.Workers, got, want)
		}
	})
}

// TestSubsumptionWorkersEquivalence pins the worker-count determinism of
// the pairwise sweep on a fixed skewed collection, without the fuzzer.
func TestSubsumptionWorkersEquivalence(t *testing.T) {
	var docTerms [][]string
	for i := 0; i < 60; i++ {
		row := []string{"news"}
		if i%2 == 0 {
			row = append(row, "sports")
		}
		if i%4 == 0 {
			row = append(row, "football", fmt.Sprintf("team%d", i%8))
		}
		if i%3 == 0 {
			row = append(row, "politics")
		}
		if i%6 == 0 {
			row = append(row, "election")
		}
		docTerms = append(docTerms, row)
	}
	terms := []string{"news", "sports", "football", "politics", "election",
		"team0", "team4", "team1", "team2", "team3"}
	seq, err := BuildSubsumption(terms, docTerms, SubsumptionConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5, 16} {
		par, err := BuildSubsumption(terms, docTerms, SubsumptionConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := FormatTree(par), FormatTree(seq); got != want {
			t.Fatalf("workers=%d forest diverges:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}
