package websearch

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/remote"
	"repro/internal/textdb"
	"repro/internal/wiki"
)

func buildEngine(t *testing.T) (*ontology.KB, *Engine) {
	t.Helper()
	kb, err := ontology.Build(ontology.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	w, err := wiki.Build(kb, wiki.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return kb, NewEngineFromWiki(w)
}

func TestSearchReturnsRelevantPages(t *testing.T) {
	_, e := buildEngine(t)
	results := e.Search("France", 10)
	if len(results) == 0 {
		t.Fatal("no results for France")
	}
	found := false
	for _, r := range results {
		if r.Title == "France" {
			found = true
		}
		if r.Snippet == "" {
			t.Fatalf("empty snippet for %q", r.Title)
		}
	}
	if !found {
		t.Fatalf("France page not among results: %+v", results[:min(3, len(results))])
	}
}

func TestResourceContextContainsGeneralTerms(t *testing.T) {
	kb, e := buildEngine(t)
	r := NewResource(e, 10, 10, nil)
	// Query with a politician; the snippets of pages mentioning them (and
	// of similar pages) should surface general political vocabulary.
	polFacet, _ := kb.ByName("Political Leaders")
	var pol *ontology.Concept
	for _, ent := range kb.Entities() {
		for _, p := range ent.Parents {
			if p == polFacet.ID {
				pol = ent
			}
		}
		if pol != nil {
			break
		}
	}
	ctx := r.Context(pol.Display)
	if len(ctx) == 0 {
		t.Fatalf("no context for %q", pol.Display)
	}
	// Query words themselves must be excluded.
	for _, c := range ctx {
		if c == pol.Name {
			t.Fatalf("query term echoed in context: %v", ctx)
		}
	}
}

func TestResourceUnknownTerm(t *testing.T) {
	_, e := buildEngine(t)
	r := NewResource(e, 10, 10, nil)
	if got := r.Context("zzqy unknown blob"); got != nil {
		t.Fatalf("unknown term returned %v", got)
	}
}

func TestResourceMTermsHonored(t *testing.T) {
	_, e := buildEngine(t)
	r := NewResource(e, 10, 3, nil)
	ctx := r.Context("France")
	if len(ctx) > 3 {
		t.Fatalf("mTerms violated: %d terms", len(ctx))
	}
}

func TestResourceChargesClock(t *testing.T) {
	_, e := buildEngine(t)
	clock := remote.NewClock()
	r := NewResource(e, 10, 10, clock)
	r.Context("France")
	r.Context("Germany")
	if clock.Calls("Google") != 2 {
		t.Fatalf("calls = %d", clock.Calls("Google"))
	}
	if clock.ServiceElapsed("Google") != 2*remote.GooglePerQuery {
		t.Fatalf("elapsed = %v", clock.ServiceElapsed("Google"))
	}
}

func TestEngineOverPlainCorpus(t *testing.T) {
	c := textdb.NewCorpus()
	c.Add(&textdb.Document{Title: "alpha", Text: "the quick brown fox jumped over the lazy dog"})
	c.Add(&textdb.Document{Title: "beta", Text: "foxes hunt rabbits in the forest at night"})
	e := NewEngine(c)
	res := e.Search("fox", 5)
	if len(res) != 1 || res[0].Title != "alpha" {
		t.Fatalf("got %+v", res)
	}
}
