package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSubStreamIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Sub("alpha")
	// Drawing from the parent must not change what a later Sub returns.
	r2 := New(7)
	for i := 0; i < 10; i++ {
		r2.Uint64()
	}
	s2 := r2.Sub("alpha")
	if s1.Uint64() != s2.Uint64() {
		t.Fatal("Sub depends on parent stream position")
	}
	if New(7).Sub("alpha").Uint64() == New(7).Sub("beta").Uint64() {
		t.Fatal("different labels produced identical sub-streams")
	}
}

func TestSubIntDistinct(t *testing.T) {
	r := New(3)
	seen := map[uint64]int{}
	for i := 0; i < 500; i++ {
		v := r.SubInt("doc", i).Uint64()
		if j, ok := seen[v]; ok {
			t.Fatalf("SubInt collision between %d and %d", i, j)
		}
		seen[v] = i
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		n := 1 + i%37
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("bucket %d has probability %.4f, want ~0.1", i, got)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(5)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	trues := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	if p := float64(trues) / 100000; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) empirical probability %.4f", p)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean = %.4f, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("variance = %.4f, want ~4", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 20, 100} {
		r := New(uint64(mean * 1000))
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) empirical mean %.3f", mean, got)
		}
	}
	if New(1).Poisson(0) != 0 || New(1).Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(2)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPickN(t *testing.T) {
	r := New(8)
	items := []int{1, 2, 3, 4, 5}
	got := PickN(r, items, 3)
	if len(got) != 3 {
		t.Fatalf("PickN returned %d items", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate in PickN result: %v", got)
		}
		seen[v] = true
	}
	all := PickN(r, items, 10)
	if len(all) != 5 {
		t.Fatalf("PickN with n>len returned %d items", len(all))
	}
}

func TestWeighted(t *testing.T) {
	r := New(13)
	counts := [3]int{}
	for i := 0; i < 90000; i++ {
		counts[r.Weighted([]float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Fatal("zero-weight index was selected")
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-2) > 0.1 {
		t.Fatalf("weight ratio %.3f, want ~2", ratio)
	}
}

func TestWeightedPanicsAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Weighted([]float64{0, 0})
}

func TestZipfMonotoneFrequencies(t *testing.T) {
	r := New(21)
	z := NewZipf(r, 50, 1.1)
	counts := make([]int, 50)
	for i := 0; i < 200000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate and low ranks should be (noisily) decreasing.
	if counts[0] <= counts[5] || counts[5] <= counts[30] {
		t.Fatalf("Zipf counts not decreasing: %v", counts[:10])
	}
	// Check the head probability against the analytic value.
	var h float64
	for k := 1; k <= 50; k++ {
		h += 1 / math.Pow(float64(k), 1.1)
	}
	want := 1 / h
	got := float64(counts[0]) / 200000
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("P(rank 0) = %.4f, want %.4f", got, want)
	}
}

func TestHashStringStability(t *testing.T) {
	// Regression pin: seeds derived from labels must never change, or every
	// experiment in the repository changes silently.
	if HashString("") == HashString("a") {
		t.Fatal("degenerate hash")
	}
	a := HashString("annotator-1")
	b := HashString("annotator-1")
	if a != b {
		t.Fatal("hash not stable within a process")
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		v := New(seed).Intn(int(n))
		return v >= 0 && v < int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubDeterministic(t *testing.T) {
	f := func(seed uint64, label string) bool {
		return New(seed).Sub(label).Uint64() == New(seed).Sub(label).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
