package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
	"repro/internal/mturk"
	"repro/internal/ontology"
)

// DimensionRecall breaks the All×All recall down by facet dimension
// (Location, People, Markets, ...): which browsing dimensions the pipeline
// recovers well and which it misses. The paper reports only aggregate
// recall; this diagnostic shows where the aggregate comes from.
type DimensionRecall struct {
	Rows []DimensionRow
}

// DimensionRow is one facet root's recall.
type DimensionRow struct {
	Dimension string
	GTTerms   int
	Found     int
	Recall    float64
}

// RecallByDimension evaluates the All×All cell per facet root. Ground
// truth terms that do not resolve to a facet concept (annotator noise)
// are grouped under "(unmapped)".
func RecallByDimension(dr *DataRun, gt *mturk.GroundTruth) *DimensionRecall {
	result := dr.RunCell(ExtAll, ResAll, 1)
	found := map[string]bool{}
	for _, t := range result.CandidateStrings() {
		found[t] = true
	}
	kb := dr.Lab.KB
	type agg struct{ gt, found int }
	byRoot := map[string]*agg{}
	bump := func(root string, hit bool) {
		a := byRoot[root]
		if a == nil {
			a = &agg{}
			byRoot[root] = a
		}
		a.gt++
		if hit {
			a.found++
		}
	}
	for _, term := range gt.Terms {
		rootName := "(unmapped)"
		if c, ok := kb.ByName(term); ok {
			if root := kb.Root(c.ID); root != ontology.None {
				rootName = kb.Concept(root).Display
			}
		}
		// A GT term counts as found if any extracted candidate matches it
		// at the stem level; reuse the GroundTruth matcher by testing the
		// exact term against the found set via stems.
		hit := false
		if found[term] {
			hit = true
		} else {
			for f := range found {
				if stemEqual(f, term) {
					hit = true
					break
				}
			}
		}
		bump(rootName, hit)
	}
	out := &DimensionRecall{}
	for name, a := range byRoot {
		out.Rows = append(out.Rows, DimensionRow{
			Dimension: name,
			GTTerms:   a.gt,
			Found:     a.found,
			Recall:    float64(a.found) / float64(a.gt),
		})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].GTTerms != out.Rows[j].GTTerms {
			return out.Rows[i].GTTerms > out.Rows[j].GTTerms
		}
		return out.Rows[i].Dimension < out.Rows[j].Dimension
	})
	return out
}

// stemEqual compares two terms at stem level (the matching rule used by
// GroundTruth.Recall).
func stemEqual(a, b string) bool {
	return lang.StemPhrase(lang.NormalizePhrase(a)) == lang.StemPhrase(lang.NormalizePhrase(b))
}

// Format renders the breakdown.
func (d *DimensionRecall) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %8s %8s %8s\n", "Dimension", "GTTerms", "Found", "Recall")
	sb.WriteString(strings.Repeat("-", 56) + "\n")
	for _, r := range d.Rows {
		fmt.Fprintf(&sb, "%-28s %8d %8d %8.3f\n", r.Dimension, r.GTTerms, r.Found, r.Recall)
	}
	return sb.String()
}
