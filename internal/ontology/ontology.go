// Package ontology defines the ground-truth knowledge base that underlies
// every simulated substrate in this reproduction: the facet taxonomy that
// plays the role of the "accumulated knowledge" human annotators used in
// the paper's pilot study (Section III), the named entities that news
// stories mention, the common-noun is-a lexicon that the synthetic WordNet
// is generated from, and the concept links that the synthetic Wikipedia's
// page graph is generated from.
//
// The paper evaluates against human judgments (Mechanical Turk annotators
// who know, e.g., that "Jacques Chirac" belongs under "Political Leaders"
// and "France"). In an offline reproduction that shared knowledge must be
// made explicit; this package is that explicit knowledge. Every evaluation
// number in the repository is measured against annotations derived from
// this ontology, exactly as the paper's numbers are measured against
// annotations derived from the annotators' world knowledge.
package ontology

import (
	"fmt"
	"sort"

	"repro/internal/lang"
)

// ConceptID identifies a concept within a KB. IDs are dense and stable for
// a given (seed, scale) configuration.
type ConceptID int32

// None is the zero ConceptID sentinel (no concept).
const None ConceptID = -1

// Kind classifies a concept.
type Kind uint8

const (
	// KindFacetRoot is a top-level facet dimension ("Location", "People").
	KindFacetRoot Kind = iota
	// KindFacetTerm is a general term suitable for faceted browsing
	// ("Political Leaders", "France", "Natural Disasters").
	KindFacetTerm
	// KindEntity is a concrete named entity mentioned in documents
	// ("Jacques Chirac", "2005 G8 Summit").
	KindEntity
	// KindCommon is a common noun used for the WordNet lexicon and filler
	// vocabulary; it is not a browsing facet by itself.
	KindCommon
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindFacetRoot:
		return "facet-root"
	case KindFacetTerm:
		return "facet-term"
	case KindEntity:
		return "entity"
	case KindCommon:
		return "common"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// EntityClass classifies named entities; the NE tagger and the Wikipedia
// generator treat classes differently (persons get initials variants,
// organizations get suffix variants, and so on).
type EntityClass uint8

const (
	ClassNone EntityClass = iota
	ClassPerson
	ClassOrganization
	ClassPlace
	ClassEvent
)

// String returns the class name.
func (c EntityClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassPerson:
		return "person"
	case ClassOrganization:
		return "organization"
	case ClassPlace:
		return "place"
	case ClassEvent:
		return "event"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Concept is a node in the knowledge base.
type Concept struct {
	ID      ConceptID
	Name    string // canonical normalized name (lang.NormalizePhrase form)
	Display string // cased display form ("Political Leaders", "Jacques Chirac")
	Kind    Kind
	Class   EntityClass

	// Parents are broader-than / is-a edges. For an entity these are the
	// facet terms it belongs to ("Jacques Chirac" → "political leaders",
	// "france"); for a facet term they are broader facet terms up to a
	// facet root; for a common noun they are WordNet-style hypernyms.
	Parents []ConceptID

	// Related are associative (non-hierarchical) edges: a politician to the
	// other politicians of the same country, a company to its chief
	// executive, an event to its location. The Wikipedia link graph is
	// generated from Parents ∪ Related.
	Related []ConceptID

	// Variants are alternative display forms ("Chirac, Jacques",
	// "J. Chirac"); they become Wikipedia redirect titles and document
	// mention variants.
	Variants []string

	// Words is the topical vocabulary associated with the concept; the
	// corpus generator emits these words in stories about the concept and
	// the Wikipedia generator writes them into the concept's page.
	Words []string
}

// IsFacet reports whether the concept is usable as a facet term (root or
// term).
func (c *Concept) IsFacet() bool {
	return c.Kind == KindFacetRoot || c.Kind == KindFacetTerm
}

// KB is the assembled knowledge base.
type KB struct {
	concepts []*Concept
	byName   map[string]ConceptID // canonical and variant names → concept

	facetTerms []ConceptID // all KindFacetRoot + KindFacetTerm, sorted by ID
	entities   []ConceptID
	commons    []ConceptID
	roots      []ConceptID

	// ancestors[id] is the transitive closure of Parents restricted to
	// facet concepts, precomputed at build time.
	ancestors [][]ConceptID
}

// Len returns the number of concepts.
func (kb *KB) Len() int { return len(kb.concepts) }

// Concept returns the concept with the given ID. It panics on an invalid
// ID; IDs only come from the KB itself, so an invalid ID is a bug.
func (kb *KB) Concept(id ConceptID) *Concept {
	return kb.concepts[id]
}

// ByName looks up a concept by any of its names (canonical or variant),
// normalizing the query first.
func (kb *KB) ByName(name string) (*Concept, bool) {
	id, ok := kb.byName[lang.NormalizePhrase(name)]
	if !ok {
		return nil, false
	}
	return kb.concepts[id], true
}

// Roots returns the facet roots in ID order.
func (kb *KB) Roots() []*Concept { return kb.byIDs(kb.roots) }

// FacetTerms returns all facet concepts (roots and terms) in ID order.
func (kb *KB) FacetTerms() []*Concept { return kb.byIDs(kb.facetTerms) }

// Entities returns all entities in ID order.
func (kb *KB) Entities() []*Concept { return kb.byIDs(kb.entities) }

// Commons returns all common-noun concepts in ID order.
func (kb *KB) Commons() []*Concept { return kb.byIDs(kb.commons) }

func (kb *KB) byIDs(ids []ConceptID) []*Concept {
	out := make([]*Concept, len(ids))
	for i, id := range ids {
		out[i] = kb.concepts[id]
	}
	return out
}

// FacetAncestors returns the transitive facet-concept ancestors of id
// (excluding id itself), nearest first. The slice is shared; callers must
// not mutate it.
func (kb *KB) FacetAncestors(id ConceptID) []ConceptID {
	return kb.ancestors[id]
}

// IsAncestor reports whether a is a (transitive) facet ancestor of b.
func (kb *KB) IsAncestor(a, b ConceptID) bool {
	for _, x := range kb.ancestors[b] {
		if x == a {
			return true
		}
	}
	return false
}

// Root returns the facet root above the given concept, or None when the
// concept has no facet-root ancestor.
func (kb *KB) Root(id ConceptID) ConceptID {
	if kb.concepts[id].Kind == KindFacetRoot {
		return id
	}
	for _, a := range kb.ancestors[id] {
		if kb.concepts[a].Kind == KindFacetRoot {
			return a
		}
	}
	return None
}

// add inserts a concept, registering canonical name and variants. It
// returns the assigned ID. Name collisions keep the first registration
// (mirroring Wikipedia's "first page wins the title" behaviour); the
// colliding concept is still added under its remaining free names.
func (kb *KB) add(c *Concept) ConceptID {
	id := ConceptID(len(kb.concepts))
	c.ID = id
	if c.Name == "" {
		c.Name = lang.NormalizePhrase(c.Display)
	}
	kb.concepts = append(kb.concepts, c)
	if _, taken := kb.byName[c.Name]; !taken {
		kb.byName[c.Name] = id
	}
	for _, v := range c.Variants {
		n := lang.NormalizePhrase(v)
		if _, taken := kb.byName[n]; !taken && n != c.Name {
			kb.byName[n] = id
		}
	}
	return id
}

// finalize computes the derived indexes. It must be called once after all
// concepts are added.
func (kb *KB) finalize() error {
	kb.ancestors = make([][]ConceptID, len(kb.concepts))
	for _, c := range kb.concepts {
		switch c.Kind {
		case KindFacetRoot:
			kb.roots = append(kb.roots, c.ID)
			kb.facetTerms = append(kb.facetTerms, c.ID)
		case KindFacetTerm:
			kb.facetTerms = append(kb.facetTerms, c.ID)
		case KindEntity:
			kb.entities = append(kb.entities, c.ID)
		case KindCommon:
			kb.commons = append(kb.commons, c.ID)
		}
	}
	// Ancestor closure via DFS with cycle detection. Parents always point
	// to earlier or later IDs, so we memoize with explicit states.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make([]uint8, len(kb.concepts))
	var visit func(id ConceptID) error
	visit = func(id ConceptID) error {
		switch state[id] {
		case gray:
			return fmt.Errorf("ontology: cycle through %q", kb.concepts[id].Name)
		case black:
			return nil
		}
		state[id] = gray
		seen := map[ConceptID]bool{}
		var anc []ConceptID
		for _, p := range kb.concepts[id].Parents {
			pc := kb.concepts[p]
			if !pc.IsFacet() && pc.Kind != KindCommon {
				return fmt.Errorf("ontology: %q has non-hierarchical parent %q", kb.concepts[id].Name, pc.Name)
			}
			if err := visit(p); err != nil {
				return err
			}
			if !seen[p] {
				seen[p] = true
				anc = append(anc, p)
			}
			for _, g := range kb.ancestors[p] {
				if !seen[g] {
					seen[g] = true
					anc = append(anc, g)
				}
			}
		}
		kb.ancestors[id] = anc
		state[id] = black
		return nil
	}
	for _, c := range kb.concepts {
		if err := visit(c.ID); err != nil {
			return err
		}
	}
	return nil
}

// FacetTermNames returns the sorted canonical names of all facet concepts;
// convenient for evaluation code.
func (kb *KB) FacetTermNames() []string {
	names := make([]string, 0, len(kb.facetTerms))
	for _, id := range kb.facetTerms {
		names = append(names, kb.concepts[id].Name)
	}
	sort.Strings(names)
	return names
}
