package hierarchy

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// TaxonomicEvidence scores the hypothesis "parent is-a-broader-term-of
// child" from one knowledge source, in [0, 1]. This is the extension the
// paper points at ("newer algorithms [5] may give even better results",
// citing Snow, Jurafsky & Ng 2006): instead of relying on document
// co-occurrence alone, evidence from heterogeneous sources is combined.
type TaxonomicEvidence interface {
	Name() string
	Score(parent, child string) float64
}

// EvidenceFunc adapts a function to TaxonomicEvidence.
type EvidenceFunc struct {
	EvidenceName string
	Fn           func(parent, child string) float64
}

// Name implements TaxonomicEvidence.
func (e EvidenceFunc) Name() string { return e.EvidenceName }

// Score implements TaxonomicEvidence.
func (e EvidenceFunc) Score(parent, child string) float64 { return e.Fn(parent, child) }

// EvidenceConfig parameterizes BuildWithEvidence.
//
// Deprecated: use BuildConfig with the "evidence" Builder — the fields
// map onto BuildConfig.{MinDF, Workers} and the nested EvidenceOptions.
// This struct is kept so external callers compile.
type EvidenceConfig struct {
	// SubsumptionWeight as in EvidenceOptions; 0 selects 1.0.
	SubsumptionWeight float64
	// Weights per evidence source, aligned with Sources; nil gives every
	// source weight 1.
	Weights []float64
	Sources []TaxonomicEvidence
	// Threshold is the minimum combined score for attaching a child to a
	// parent; 0 selects 0.8 (comparable to plain subsumption's θ).
	Threshold float64
	// MinDF as in BuildConfig.
	MinDF int
	// Workers as in BuildConfig. Sources must be safe for concurrent use
	// when Workers > 1.
	Workers int
}

// BuildWithEvidence builds a forest like BuildSubsumption but chooses each
// term's parent by the maximum combined evidence score. A candidate must
// still satisfy P(y|x) < 1 (directionality) and reach the threshold.
func BuildWithEvidence(terms []string, docTerms [][]string, cfg EvidenceConfig) (*Forest, error) {
	return BuildWithEvidenceContext(context.Background(), terms, docTerms, cfg)
}

// BuildWithEvidenceContext is BuildWithEvidence with cancellation: ctx is
// checked between terms of the sharded pairwise evidence sweep, and a
// canceled build returns ctx's error instead of a partial forest.
func BuildWithEvidenceContext(ctx context.Context, terms []string, docTerms [][]string, cfg EvidenceConfig) (*Forest, error) {
	return evidenceBuilder{}.Build(ctx, terms, docTerms, BuildConfig{
		MinDF:   cfg.MinDF,
		Workers: cfg.Workers,
		Evidence: EvidenceOptions{
			SubsumptionWeight: cfg.SubsumptionWeight,
			Weights:           cfg.Weights,
			Sources:           cfg.Sources,
			Threshold:         cfg.Threshold,
		},
	})
}

// evidenceBuilder is the registered "evidence" strategy.
type evidenceBuilder struct{}

// Name implements Builder.
func (evidenceBuilder) Name() string { return "evidence" }

// Build implements Builder.
func (evidenceBuilder) Build(ctx context.Context, terms []string, docTerms [][]string, cfg BuildConfig) (*Forest, error) {
	opts := cfg.Evidence
	if opts.SubsumptionWeight == 0 {
		opts.SubsumptionWeight = 1.0
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = cfg.Threshold
	}
	if threshold == 0 {
		threshold = 0.8
	}
	if cfg.MinDF == 0 {
		cfg.MinDF = 2
	}
	if opts.Weights != nil && len(opts.Weights) != len(opts.Sources) {
		return nil, fmt.Errorf("hierarchy: %d weights for %d sources", len(opts.Weights), len(opts.Sources))
	}
	weight := func(i int) float64 {
		if opts.Weights == nil {
			return 1
		}
		return opts.Weights[i]
	}
	totalWeight := opts.SubsumptionWeight
	for i := range opts.Sources {
		totalWeight += weight(i)
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("hierarchy: non-positive total evidence weight")
	}

	st := newTermStats(terms, docTerms, cfg.MinDF)
	uniq, sets, df, alive := st.uniq, st.sets, st.df, st.alive

	// Pruning gate. A pair with empty posting-list intersection scores
	// at most maxZeroCoScore — the external sources' full endorsement
	// with zero co-occurrence evidence — so when the attachment
	// threshold exceeds that ceiling, zero-co pairs can neither reach
	// the threshold nor displace a candidate that does, and the sweep
	// can run over the pairIndex candidates alone. When the threshold
	// sits at or below the ceiling (or the caller forces the dense
	// reference), taxonomy evidence alone can attach terms that never
	// co-occur and the sweep must stay dense for correctness.
	maxZeroCoScore := 0.0
	for i := range opts.Sources {
		if w := weight(i); w > 0 {
			maxZeroCoScore += w
		}
	}
	maxZeroCoScore /= totalWeight
	pruned := !cfg.denseSweep && threshold > maxZeroCoScore

	// As in BuildSubsumption, every term's best parent is computed
	// independently, so the pairwise evidence combination shards across
	// workers into per-term slots merged deterministically afterwards.
	// The best-candidate tie-break (max score, then lexicographically
	// smallest term) is a total order, so the pruned sweep's different
	// visit order cannot change the winner.
	parents := make([]int, len(alive))
	var ix *pairIndex
	var scratches []*pairScratch
	var counts []pairCounts
	if pruned {
		ix = newPairIndex(st)
		nw := sweepWorkers(cfg.Workers)
		scratches = make([]*pairScratch, nw)
		counts = make([]pairCounts, nw)
	}
	err := parallel.For(ctx, len(alive), cfg.Workers, func(w, yi int) {
		y := alive[yi]
		bestScore := 0.0
		bestIdx := -1
		consider := func(x, co int) {
			pyx := float64(co) / float64(df[x])
			if pyx >= 1 {
				return
			}
			score := opts.SubsumptionWeight * float64(co) / float64(df[y])
			for i, src := range opts.Sources {
				score += weight(i) * clamp01(src.Score(uniq[x], uniq[y]))
			}
			score /= totalWeight
			if score > bestScore || (score == bestScore && bestIdx >= 0 && uniq[x] < uniq[bestIdx]) {
				bestScore = score
				bestIdx = x
			}
		}
		if pruned {
			sc := scratches[w]
			if sc == nil {
				sc = ix.newScratch()
				scratches[w] = sc
			}
			yielded := int64(0)
			ix.forCandidates(yi, sc, 1, func(xi, co int) {
				yielded++
				consider(alive[xi], co)
			})
			counts[w].candidate += yielded
			counts[w].evaluated += yielded
			counts[w].skipped += int64(len(alive)-1) - yielded
		} else {
			for _, x := range alive {
				if x == y {
					continue
				}
				consider(x, sets[x].AndCount(sets[y]))
			}
		}
		parents[yi] = -1
		if bestIdx >= 0 && bestScore >= threshold {
			parents[yi] = bestIdx
		}
	})
	if err != nil {
		return nil, err
	}
	if pruned {
		publishPairCounts(cfg.Metrics, counts, len(alive))
	}
	parentOf := map[int]int{}
	for yi, y := range alive {
		if parents[yi] >= 0 {
			parentOf[y] = parents[yi]
		}
	}
	return assembleForest(st, parentOf), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
