// Package serve exposes a faceted browsing interface over HTTP: a JSON
// API (facet counts, documents, date histogram, cross-tabulation) plus a
// minimal server-rendered HTML front end with clickable facet links —
// the Flamenco-style deployment surface for the extracted hierarchies.
package serve

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/browse"
	"repro/internal/ingest"
	"repro/internal/textdb"
)

// Server handles HTTP requests over a built browsing interface. The
// interface is held behind an atomic pointer so a live-ingestion epoch
// can republish it mid-flight: every request loads the pointer exactly
// once and serves that complete, immutable epoch — concurrent swaps can
// never produce a torn read mixing counts from two hierarchies.
type Server struct {
	iface atomic.Pointer[browse.Interface]
	mux   *http.ServeMux
	title string
}

// New builds the server over an initial interface.
func New(iface *browse.Interface, title string) *Server {
	s := &Server{title: title}
	s.iface.Store(iface)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/facets", s.handleFacets)
	mux.HandleFunc("GET /api/docs", s.handleDocs)
	mux.HandleFunc("GET /api/dates", s.handleDates)
	mux.HandleFunc("GET /api/cross", s.handleCross)
	mux.HandleFunc("GET /", s.handleIndex)
	s.mux = mux
	return s
}

// Publish atomically swaps the served browsing interface; in-flight
// requests finish on the epoch they started with. It is the OnPublish
// hook a live Ingester calls after every rebuild.
func (s *Server) Publish(iface *browse.Interface) {
	s.iface.Store(iface)
}

// current returns the interface snapshot a request should serve.
func (s *Server) current() *browse.Interface {
	return s.iface.Load()
}

// EnableIngest registers the live-ingestion endpoints: POST /api/ingest
// (accept documents) and GET /api/ingest/stats (subsystem health). It
// must be called before the server starts handling traffic.
func (s *Server) EnableIngest(ing *ingest.Ingester) {
	s.mux.HandleFunc("POST /api/ingest", func(w http.ResponseWriter, r *http.Request) {
		s.handleIngest(w, r, ing)
	})
	s.mux.HandleFunc("GET /api/ingest/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ing.Stats())
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// selection parses the shared query parameters: terms (comma separated),
// q, from, to (RFC 3339 dates or YYYY-MM-DD).
func parseSelection(r *http.Request) (browse.Selection, error) {
	sel := browse.Selection{Query: r.URL.Query().Get("q")}
	if raw := r.URL.Query().Get("terms"); raw != "" {
		for _, t := range strings.Split(raw, ",") {
			t = strings.TrimSpace(t)
			if t != "" {
				sel.Terms = append(sel.Terms, t)
			}
		}
	}
	parseDate := func(key string) (time.Time, error) {
		raw := r.URL.Query().Get(key)
		if raw == "" {
			return time.Time{}, nil
		}
		if t, err := time.Parse(time.RFC3339, raw); err == nil {
			return t, nil
		}
		t, err := time.Parse("2006-01-02", raw)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad %s %q (want RFC3339 or YYYY-MM-DD)", key, raw)
		}
		return t, nil
	}
	var err error
	if sel.From, err = parseDate("from"); err != nil {
		return sel, err
	}
	if sel.To, err = parseDate("to"); err != nil {
		return sel, err
	}
	return sel, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorResponse is the JSON body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ErrorResponse{Error: err.Error()})
}

func badRequest(w http.ResponseWriter, err error) {
	writeError(w, http.StatusBadRequest, err)
}

// parseLimit validates an optional positive bounded integer query
// parameter; strconv.Atoi alone would admit negative, zero, and
// overflowing values that misbehave downstream.
func parseLimit(r *http.Request, def, max int) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return def, nil
	}
	limit, err := strconv.Atoi(raw)
	if err != nil || limit < 1 || limit > max {
		return 0, fmt.Errorf("bad limit %q (want 1..%d)", raw, max)
	}
	return limit, nil
}

// FacetsResponse is the /api/facets payload.
type FacetsResponse struct {
	Parent string              `json:"parent"`
	Total  int                 `json:"total"`
	Facets []browse.FacetCount `json:"facets"`
}

func (s *Server) handleFacets(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	iface := s.current()
	parent := r.URL.Query().Get("parent")
	writeJSON(w, FacetsResponse{
		Parent: parent,
		Total:  iface.MatchCount(sel),
		Facets: iface.Children(parent, sel),
	})
}

// DocSummary is one document in the /api/docs payload.
type DocSummary struct {
	ID      int    `json:"id"`
	Title   string `json:"title"`
	Source  string `json:"source"`
	Date    string `json:"date"`
	Snippet string `json:"snippet"`
}

// DocsResponse is the /api/docs payload.
type DocsResponse struct {
	Total int          `json:"total"`
	Docs  []DocSummary `json:"docs"`
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	limit, err := parseLimit(r, 20, 500)
	if err != nil {
		badRequest(w, err)
		return
	}
	iface := s.current()
	ids := iface.Docs(sel)
	resp := DocsResponse{Total: len(ids)}
	for i, id := range ids {
		if i >= limit {
			break
		}
		doc := iface.Corpus().Doc(id)
		resp.Docs = append(resp.Docs, DocSummary{
			ID:      int(id),
			Title:   doc.Title,
			Source:  doc.Source,
			Date:    doc.Date.Format("2006-01-02"),
			Snippet: textdb.Snippet(doc, sel.Query, 24),
		})
	}
	writeJSON(w, resp)
}

// DateBucket is one histogram bucket in the /api/dates payload.
type DateBucket struct {
	Bucket string `json:"bucket"`
	Count  int    `json:"count"`
}

func (s *Server) handleDates(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	gran := r.URL.Query().Get("granularity")
	if gran == "" {
		gran = "day"
	}
	hist, err := s.current().DateHistogram(sel, gran)
	if err != nil {
		badRequest(w, err)
		return
	}
	out := make([]DateBucket, len(hist))
	for i, h := range hist {
		out[i] = DateBucket{Bucket: h.Bucket.Format("2006-01-02"), Count: h.Count}
	}
	writeJSON(w, out)
}

func (s *Server) handleCross(w http.ResponseWriter, r *http.Request) {
	sel, err := parseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		badRequest(w, fmt.Errorf("need a and b facet parameters"))
		return
	}
	ct, err := s.current().Cross(a, b, sel)
	if err != nil {
		badRequest(w, err)
		return
	}
	writeJSON(w, ct)
}

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 70em; }
.facets { float: left; width: 20em; }
.docs { margin-left: 22em; }
.facet a { text-decoration: none; }
.count { color: #888; }
.sel { background: #eef; padding: 0.2em 0.5em; margin-right: 0.4em; }
</style></head><body>
<h1>{{.Title}}</h1>
<form method="get">
<input type="text" name="q" value="{{.Query}}" placeholder="keyword search">
<input type="hidden" name="terms" value="{{.TermsRaw}}">
<button>Search</button>
</form>
<p>
{{range .Selected}}<span class="sel">{{.Name}} <a href="{{.RemoveURL}}">×</a></span>{{end}}
{{.Total}} documents match.
</p>
<div class="facets"><h2>Facets</h2>
{{range .Facets}}<div class="facet"><a href="{{.URL}}">{{.Name}}</a> <span class="count">({{.Count}})</span></div>{{end}}
</div>
<div class="docs"><h2>Documents</h2>
{{range .Docs}}<p><b>{{.Title}}</b><br><small>{{.Source}} — {{.Date}}</small><br>{{.Snippet}}</p>{{end}}
</div>
</body></html>`))

type indexSelected struct {
	Name      string
	RemoveURL string
}

type indexFacet struct {
	Name  string
	Count int
	URL   string
}

type indexData struct {
	Title    string
	Query    string
	TermsRaw string
	Total    int
	Selected []indexSelected
	Facets   []indexFacet
	Docs     []DocSummary
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	sel, err := parseSelection(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	iface := s.current()
	data := indexData{
		Title:    s.title,
		Query:    sel.Query,
		TermsRaw: strings.Join(sel.Terms, ","),
		Total:    iface.MatchCount(sel),
	}
	urlFor := func(terms []string) string {
		q := "/?terms=" + strings.Join(terms, ",")
		if sel.Query != "" {
			q += "&q=" + sel.Query
		}
		return q
	}
	for i, t := range sel.Terms {
		rest := append(append([]string{}, sel.Terms[:i]...), sel.Terms[i+1:]...)
		data.Selected = append(data.Selected, indexSelected{Name: t, RemoveURL: urlFor(rest)})
	}
	// Facet links: roots plus children of selected terms.
	appendFacets := func(parent string) {
		for _, fc := range iface.Children(parent, sel) {
			data.Facets = append(data.Facets, indexFacet{
				Name:  fc.Term,
				Count: fc.Count,
				URL:   urlFor(append(append([]string{}, sel.Terms...), fc.Term)),
			})
		}
	}
	appendFacets("")
	for _, t := range sel.Terms {
		appendFacets(t)
	}
	if len(data.Facets) > 40 {
		data.Facets = data.Facets[:40]
	}
	for i, id := range iface.Docs(sel) {
		if i >= 15 {
			break
		}
		doc := iface.Corpus().Doc(id)
		data.Docs = append(data.Docs, DocSummary{
			ID: int(id), Title: doc.Title, Source: doc.Source,
			Date:    doc.Date.Format("2006-01-02"),
			Snippet: textdb.Snippet(doc, sel.Query, 24),
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTemplate.Execute(w, data)
}

// IngestDoc is one document in the POST /api/ingest payload. Date
// accepts RFC 3339 or YYYY-MM-DD and defaults to the server's current
// time when empty.
type IngestDoc struct {
	Title  string `json:"title"`
	Source string `json:"source"`
	Date   string `json:"date"`
	Text   string `json:"text"`
}

// IngestRequest is the POST /api/ingest payload.
type IngestRequest struct {
	Documents []IngestDoc `json:"documents"`
}

// IngestResponse is the POST /api/ingest reply.
type IngestResponse struct {
	Accepted int `json:"accepted"`
}

const maxIngestBody = 64 << 20 // bytes; one request cannot exhaust memory

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, ing *ingest.Ingester) {
	var req IngestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody)).Decode(&req); err != nil {
		badRequest(w, fmt.Errorf("bad ingest payload: %w", err))
		return
	}
	if len(req.Documents) == 0 {
		badRequest(w, fmt.Errorf("no documents in payload"))
		return
	}
	docs := make([]*textdb.Document, len(req.Documents))
	for i, d := range req.Documents {
		if strings.TrimSpace(d.Text) == "" {
			badRequest(w, fmt.Errorf("document %d has empty text", i))
			return
		}
		date := time.Now().UTC()
		if d.Date != "" {
			var err error
			if date, err = time.Parse(time.RFC3339, d.Date); err != nil {
				if date, err = time.Parse("2006-01-02", d.Date); err != nil {
					badRequest(w, fmt.Errorf("document %d: bad date %q (want RFC3339 or YYYY-MM-DD)", i, d.Date))
					return
				}
			}
		}
		docs[i] = &textdb.Document{Title: d.Title, Source: d.Source, Date: date, Text: d.Text}
	}
	// SubmitWait blocks on a saturated queue (backpressure) until the
	// client gives up or the server drains.
	for i, doc := range docs {
		if err := ing.SubmitWait(r.Context(), doc); err != nil {
			status := http.StatusServiceUnavailable
			writeError(w, status, fmt.Errorf("accepted %d of %d documents: %w", i, len(docs), err))
			return
		}
	}
	writeJSON(w, IngestResponse{Accepted: len(docs)})
}
