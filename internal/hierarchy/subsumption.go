// Package hierarchy builds browsing hierarchies over extracted facet
// terms. The primary algorithm is the subsumption method of Sanderson &
// Croft (SIGIR 1999), which the paper uses for hierarchy construction
// ("we used the subsumption algorithm ... that gave satisfactory
// results"): term x subsumes term y when P(x|y) ≥ θ (θ = 0.8) and
// P(y|x) < 1, with probabilities estimated from document co-occurrence.
//
// Two comparators are included: a Stoica–Hearst-style tree-minimization
// builder over WordNet hypernym paths (the prior work the paper contrasts
// with), and a Snow-style evidence-combination builder (the "newer
// algorithms [5] may give even better results" note), which merges
// subsumption evidence with taxonomy evidence from external resources.
package hierarchy

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/parallel"
)

// Node is one term in a hierarchy.
type Node struct {
	Term     string
	DF       int // document frequency of the term in the analyzed collection
	Children []*Node
	Parent   *Node
}

// Forest is a set of per-facet trees.
type Forest struct {
	Roots []*Node
	index map[string]*Node
}

// Find returns the node for a term, if present.
func (f *Forest) Find(term string) (*Node, bool) {
	n, ok := f.index[term]
	return n, ok
}

// Size returns the number of nodes in the forest.
func (f *Forest) Size() int { return len(f.index) }

// Walk visits every node depth-first, parents before children.
func (f *Forest) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		fn(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	for _, r := range f.Roots {
		rec(r, 0)
	}
}

// SubsumptionConfig parameterizes BuildSubsumption.
type SubsumptionConfig struct {
	// Threshold is θ in P(x|y) ≥ θ; 0 selects the standard 0.8.
	Threshold float64
	// MinDF drops terms observed in fewer documents; co-occurrence
	// estimates below a handful of documents are noise. 0 selects 2.
	MinDF int
	// MaxChildDFFraction: a term present in more than this fraction of
	// the collection is a facet DIMENSION — it stays a root and is never
	// attached as a child (at such densities P(x|y) ≥ θ holds against
	// almost any x by saturation, not by meaning). 0 selects 0.6;
	// set >= 1 to disable.
	MaxChildDFFraction float64
	// Workers shards the O(terms²) pairwise co-occurrence counting — the
	// dominant cost of hierarchy construction — across a bounded worker
	// pool. <= 1 (the zero value) runs sequentially; the forest is
	// identical for every worker count, since each term's parent is
	// selected independently from the frozen bitsets.
	Workers int
}

// BuildSubsumption builds a subsumption forest over the given terms.
// docTerms lists, for every document, which of the terms occur in it
// (term strings must come from terms; unknown strings are ignored).
//
// For every term y, the chosen parent is the most specific subsumer: the
// subsuming term x with the smallest df(x) (ties broken by higher P(x|y),
// then lexicographically), which produces deeper, more informative trees
// than attaching everything to the most frequent subsumer.
func BuildSubsumption(terms []string, docTerms [][]string, cfg SubsumptionConfig) (*Forest, error) {
	return BuildSubsumptionContext(context.Background(), terms, docTerms, cfg)
}

// BuildSubsumptionContext is BuildSubsumption with cancellation: ctx is
// checked between terms of the sharded O(terms²) sweep, and a canceled
// build returns ctx's error instead of a partially attached forest.
func BuildSubsumptionContext(ctx context.Context, terms []string, docTerms [][]string, cfg SubsumptionConfig) (*Forest, error) {
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.8
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("hierarchy: threshold %v outside [0,1]", cfg.Threshold)
	}
	if cfg.MinDF == 0 {
		cfg.MinDF = 2
	}
	if cfg.MaxChildDFFraction == 0 {
		cfg.MaxChildDFFraction = 0.6
	}
	idx := make(map[string]int, len(terms))
	uniq := make([]string, 0, len(terms))
	for _, t := range terms {
		if _, dup := idx[t]; !dup {
			idx[t] = len(uniq)
			uniq = append(uniq, t)
		}
	}
	nDocs := len(docTerms)
	sets := make([]*bitset.Set, len(uniq))
	for i := range sets {
		sets[i] = bitset.New(nDocs)
	}
	for d, ts := range docTerms {
		for _, t := range ts {
			if i, ok := idx[t]; ok {
				sets[i].Set(d)
			}
		}
	}
	df := make([]int, len(uniq))
	for i, s := range sets {
		df[i] = s.Count()
	}

	// Candidate terms surviving the df floor, in deterministic order.
	var alive []int
	for i := range uniq {
		if df[i] >= cfg.MinDF {
			alive = append(alive, i)
		}
	}
	sort.Slice(alive, func(a, b int) bool { return uniq[alive[a]] < uniq[alive[b]] })

	nodes := make(map[int]*Node, len(alive))
	for _, i := range alive {
		nodes[i] = &Node{Term: uniq[i], DF: df[i]}
	}

	// Parent selection. A subsumer must be strictly more general
	// (df(x) > df(y)): with P(x|y)·df(y) = P(y|x)·df(x), this is exactly
	// Sanderson & Croft's directionality P(x|y) > P(y|x); enforcing it on
	// document frequencies keeps the forest layered even when the
	// co-occurrence estimates saturate.
	// Each term's parent is selected independently from the frozen
	// bitsets, so the O(terms²) AndCount sweep shards across workers;
	// every worker writes only its own terms' slots, and the slot array
	// is folded into parentOf in deterministic order afterwards.
	parents := make([]int, len(alive))
	maxChildDF := int(cfg.MaxChildDFFraction * float64(nDocs))
	err := parallel.For(ctx, len(alive), cfg.Workers, func(_, yi int) {
		parents[yi] = -1
		y := alive[yi]
		if nDocs > 0 && df[y] > maxChildDF {
			return // saturated term: keep as a facet-dimension root
		}
		var best *parentCand
		for _, x := range alive {
			if x == y || df[x] <= df[y] {
				continue
			}
			co := sets[x].AndCount(sets[y])
			pxy := float64(co) / float64(df[y])
			pyx := float64(co) / float64(df[x])
			if pxy < cfg.Threshold || pyx >= 1 {
				continue
			}
			cand := &parentCand{idx: x, pxy: pxy, dfx: df[x], term: uniq[x]}
			if best == nil || moreSpecific(cand, best) {
				best = cand
			}
		}
		if best != nil {
			parents[yi] = best.idx
		}
	})
	if err != nil {
		return nil, err
	}
	parentOf := make(map[int]int)
	for yi, y := range alive {
		if parents[yi] >= 0 {
			parentOf[y] = parents[yi]
		}
	}

	// Cycle guard: subsumption with P(y|x) < 1 cannot create 2-cycles on
	// exact ties, but transitive chains through floating-point equalities
	// are broken defensively by walking up and cutting back-edges.
	for _, y := range alive {
		seen := map[int]bool{y: true}
		cur, ok := parentOf[y]
		for ok {
			if seen[cur] {
				delete(parentOf, y) // cut: y becomes a root
				break
			}
			seen[cur] = true
			cur, ok = parentOf[cur]
		}
	}

	forest := &Forest{index: map[string]*Node{}}
	for _, i := range alive {
		forest.index[uniq[i]] = nodes[i]
	}
	for _, y := range alive {
		if p, ok := parentOf[y]; ok {
			nodes[y].Parent = nodes[p]
			nodes[p].Children = append(nodes[p].Children, nodes[y])
		} else {
			forest.Roots = append(forest.Roots, nodes[y])
		}
	}
	// Deterministic child and root order: by descending DF then term.
	less := func(a, b *Node) bool {
		if a.DF != b.DF {
			return a.DF > b.DF
		}
		return a.Term < b.Term
	}
	forest.Walk(func(n *Node, _ int) {
		sort.Slice(n.Children, func(i, j int) bool { return less(n.Children[i], n.Children[j]) })
	})
	sort.Slice(forest.Roots, func(i, j int) bool { return less(forest.Roots[i], forest.Roots[j]) })
	return forest, nil
}

// parentCand is a candidate subsumer for a term.
type parentCand struct {
	idx  int
	pxy  float64
	dfx  int
	term string
}

// moreSpecific orders parent candidates: smaller df first (most specific
// subsumer), then higher P(x|y), then term text.
func moreSpecific(a, b *parentCand) bool {
	if a.dfx != b.dfx {
		return a.dfx < b.dfx
	}
	if a.pxy != b.pxy {
		return a.pxy > b.pxy
	}
	return a.term < b.term
}
