package textdb

import (
	"fmt"
	"time"

	"repro/internal/lang"
)

// DocID identifies a document within a Corpus.
type DocID int32

// Document is one text item in the database. Title and Text are free text;
// Source and Date carry the provenance the news datasets use (SNB draws
// from 24 sources, MNYT spans a month).
type Document struct {
	ID     DocID
	Title  string
	Source string
	Date   time.Time
	Text   string
}

// Corpus is an append-only document store with interned per-document term
// sets. It is the "database D" of the paper.
type Corpus struct {
	docs     []*Document
	dict     *Dictionary
	docTerms [][]TermID // deduplicated term IDs per document, lazily built
}

// NewCorpus returns an empty corpus with a fresh dictionary.
func NewCorpus() *Corpus {
	return &Corpus{dict: NewDictionary()}
}

// NewCorpusSharing returns an empty corpus that interns terms into the
// given dictionary; used when several collections (e.g. the original and
// an expanded database) must agree on term IDs.
func NewCorpusSharing(dict *Dictionary) *Corpus {
	return &Corpus{dict: dict}
}

// Add appends a document, assigns its ID, and returns it.
func (c *Corpus) Add(doc *Document) DocID {
	doc.ID = DocID(len(c.docs))
	c.docs = append(c.docs, doc)
	c.docTerms = append(c.docTerms, nil)
	return doc.ID
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.docs) }

// Doc returns the document with the given ID; it panics on out-of-range
// IDs (IDs come only from the corpus itself).
func (c *Corpus) Doc(id DocID) *Document { return c.docs[id] }

// Docs returns the underlying document slice; callers must not mutate it.
func (c *Corpus) Docs() []*Document { return c.docs }

// Dict returns the corpus dictionary.
func (c *Corpus) Dict() *Dictionary { return c.dict }

// DocTerms returns the deduplicated interned terms of a document (words
// and phrases, per ExtractTerms), computing and caching them on first use.
func (c *Corpus) DocTerms(id DocID) []TermID {
	if c.docTerms[id] != nil {
		return c.docTerms[id]
	}
	doc := c.docs[id]
	terms := ExtractTerms(doc.Title + ". " + doc.Text)
	ids := make([]TermID, 0, len(terms))
	seen := make(map[TermID]struct{}, len(terms))
	for _, t := range terms {
		tid := c.dict.Intern(t)
		if _, dup := seen[tid]; !dup {
			seen[tid] = struct{}{}
			ids = append(ids, tid)
		}
	}
	c.docTerms[id] = ids
	return ids
}

// Snapshot returns an immutable copy-on-write view of the corpus: a new
// Corpus sharing the dictionary, document pointers, and cached term sets.
// Later Adds to the original do not affect the snapshot, and documents
// are never mutated after Add, so a snapshot is safe for concurrent
// readers while the original keeps growing — the property the live
// ingestion subsystem relies on to serve one epoch while building the
// next. All lazily-built term sets are materialized first so snapshot
// readers never write the shared cache.
func (c *Corpus) Snapshot() *Corpus {
	for i := range c.docs {
		c.DocTerms(DocID(i))
	}
	return &Corpus{
		docs:     append([]*Document(nil), c.docs...),
		dict:     c.dict,
		docTerms: append([][]TermID(nil), c.docTerms...),
	}
}

// Validate checks internal consistency; it is used by tests and by the
// corpus generator's self-checks.
func (c *Corpus) Validate() error {
	for i, d := range c.docs {
		if d == nil {
			return fmt.Errorf("textdb: nil document at %d", i)
		}
		if d.ID != DocID(i) {
			return fmt.Errorf("textdb: document %d has ID %d", i, d.ID)
		}
		if d.Text == "" {
			return fmt.Errorf("textdb: document %d has empty text", i)
		}
	}
	return nil
}

// maxPhraseLen is the longest multi-word phrase counted as a term.
const maxPhraseLen = 3

// ExtractTerms returns the terms of a text: normalized unigrams (minus
// stopwords and single characters) plus 2- and 3-gram phrases that do not
// begin or end with a stopword and do not span sentence or phrase
// boundaries (commas, colons, brackets). This is the term universe over
// which document frequencies are computed (footnote 2 of the paper: "by
// term, we mean single words and multi-word phrases"). The result
// preserves first-occurrence order and may contain duplicates; callers
// that need a set deduplicate.
func ExtractTerms(text string) []string {
	tokens := lang.Tokenize(text)
	var out []string
	for _, sent := range lang.Phrases(tokens) {
		words := lang.Norms(sent)
		for i, w := range words {
			if len(w) > 1 && !lang.IsStopword(w) {
				out = append(out, w)
			}
			for n := 2; n <= maxPhraseLen; n++ {
				if i+n > len(words) {
					break
				}
				if lang.IsStopword(words[i]) || lang.IsStopword(words[i+n-1]) {
					continue
				}
				out = append(out, joinWords(words[i:i+n]))
			}
		}
	}
	return out
}

func joinWords(words []string) string {
	n := len(words) - 1
	for _, w := range words {
		n += len(w)
	}
	b := make([]byte, 0, n)
	for i, w := range words {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, w...)
	}
	return string(b)
}
