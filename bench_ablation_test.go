package facet

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/eval"
)

// TestBenchAblationSchema smoke-parses BENCH_ablation.json when present
// (CI regenerates it with `experiments -run resourceablation` and then
// runs this). Beyond schema shape, it pins the report's two load-bearing
// claims: the "none" subset yields no candidates (context is what the
// pipeline runs on), and the corpus-only distributional mode achieves
// nonzero facet precision AND recall against the ground-truth ontology —
// the acceptance bar for the resource-free extraction path.
func TestBenchAblationSchema(t *testing.T) {
	data, err := os.ReadFile("BENCH_ablation.json")
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("BENCH_ablation.json not present (run `experiments -run resourceablation` to produce it)")
		}
		t.Fatal(err)
	}
	var got eval.AblationBench
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("BENCH_ablation.json does not parse: %v", err)
	}
	if got.Benchmark != "resourceablation" {
		t.Fatalf("benchmark = %q, want resourceablation", got.Benchmark)
	}
	if got.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs = %d", got.GOMAXPROCS)
	}
	if got.Docs <= 0 || got.TopK <= 0 {
		t.Fatalf("docs = %d, top_k = %d", got.Docs, got.TopK)
	}
	rows := map[string]eval.AblationPoint{}
	for _, p := range got.Points {
		if p.Subset == "" {
			t.Fatalf("point with empty subset: %+v", p)
		}
		if _, dup := rows[p.Subset]; dup {
			t.Fatalf("duplicate subset %q", p.Subset)
		}
		rows[p.Subset] = p
		if p.Candidates < 0 || p.Millis < 0 {
			t.Fatalf("malformed point %+v", p)
		}
		for _, v := range []float64{p.UsefulAtK, p.TermRecall, p.FacetPrecision, p.FacetRecall, p.OrphanRate} {
			if v < 0 || v > 1 {
				t.Fatalf("rate outside [0,1] in point %+v", p)
			}
		}
	}
	for _, want := range []string{"none", "corpus-only", "external-only", "mixed"} {
		if _, ok := rows[want]; !ok {
			t.Fatalf("subset %q missing from trajectory", want)
		}
	}
	if none := rows["none"]; none.Candidates != 0 || len(none.Resources) != 0 {
		t.Fatalf("the context-free row should yield nothing: %+v", none)
	}
	co := rows["corpus-only"]
	if len(co.Resources) != 1 {
		t.Fatalf("corpus-only row ran with resources %v, want exactly the distributional model", co.Resources)
	}
	if co.Candidates == 0 {
		t.Fatalf("corpus-only row produced no candidates: %+v", co)
	}
	if co.FacetPrecision <= 0 || co.FacetRecall <= 0 {
		t.Fatalf("corpus-only mode must score nonzero facet precision AND recall, got prec=%v rec=%v",
			co.FacetPrecision, co.FacetRecall)
	}
}
