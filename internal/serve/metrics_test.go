package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obsv"
)

// TestLegacyAliasesRemoved: the unversioned /api/ aliases from the v1
// migration are gone — every former alias path now answers 404 with the
// unified error envelope and no Deprecation/Link migration headers,
// while its /api/v1/ successor still serves normally.
func TestLegacyAliasesRemoved(t *testing.T) {
	s := testServer(t)
	for _, route := range []string{
		"facets",
		"docs?terms=france",
		"dates?granularity=day",
		"cross?a=europe&b=sports",
		"metrics",
	} {
		v1 := get(t, s, "/api/v1/"+route)
		legacy := get(t, s, "/api/"+route)
		if v1.Code != http.StatusOK {
			t.Fatalf("%s: v1 status %d", route, v1.Code)
		}
		if legacy.Code != http.StatusNotFound {
			t.Fatalf("%s: removed alias status %d, want 404", route, legacy.Code)
		}
		var er ErrorResponse
		if err := json.Unmarshal(legacy.Body.Bytes(), &er); err != nil || er.Error.Code != ErrCodeNotFound {
			t.Errorf("%s: alias 404 body %q is not the unified envelope", route, legacy.Body.String())
		}
		if dep := legacy.Header().Get("Deprecation"); dep != "" {
			t.Errorf("%s: removed alias still carries Deprecation header %q", route, dep)
		}
		if link := legacy.Header().Get("Link"); strings.Contains(link, "successor-version") {
			t.Errorf("%s: removed alias still carries Link header %q", route, link)
		}
		if v1.Header().Get("Deprecation") != "" {
			t.Errorf("%s: v1 route carries a Deprecation header", route)
		}
	}
}

// TestMetricsEndpoint: the middleware records request counts, status
// classes, and latencies per route, and /api/v1/metrics serves the
// snapshot.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	get(t, s, "/api/v1/facets")
	get(t, s, "/api/v1/docs?limit=0")
	get(t, s, "/")

	rec := get(t, s, "/api/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap obsv.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics body is not a snapshot: %v", err)
	}
	if got := snap.Counters["http.requests.facets"]; got != 1 {
		t.Errorf("facets requests = %d, want 1", got)
	}
	if got := snap.Counters["http.status.facets.2xx"]; got != 1 {
		t.Errorf("facets 2xx = %d, want 1", got)
	}
	if got := snap.Counters["http.status.docs.4xx"]; got != 1 {
		t.Errorf("docs 4xx = %d, want 1", got)
	}
	if got := snap.Counters["http.requests.index"]; got != 1 {
		t.Errorf("index requests = %d, want 1", got)
	}
	for _, h := range []string{"http.latency.facets", "http.latency.docs"} {
		hist, ok := snap.Histograms[h]
		if !ok || hist.Count == 0 {
			t.Errorf("histogram %s missing or empty: %+v", h, hist)
		}
	}
	// The Server.Metrics accessor exposes the same registry.
	if s.Metrics().Counter("http.requests.facets").Value() != 1 {
		t.Error("Metrics() returned a different registry")
	}
}

// TestWithMetricsSharedRegistry: an externally supplied registry receives
// the HTTP series, the way facetserve shares one registry across layers.
func TestWithMetricsSharedRegistry(t *testing.T) {
	reg := obsv.NewRegistry()
	shared := New(testServer(t).current(), "shared", WithMetrics(reg))
	get(t, shared, "/api/v1/facets")
	if reg.Counter("http.requests.facets").Value() != 1 {
		t.Fatal("shared registry did not receive the request counter")
	}
	if shared.Metrics() != reg {
		t.Fatal("Metrics() is not the supplied registry")
	}
}

// TestPprofDisabledByDefault: the profiler is mounted only after
// EnablePprof.
func TestPprofDisabledByDefault(t *testing.T) {
	s := testServer(t)
	if rec := get(t, s, "/debug/pprof/"); rec.Code == http.StatusOK {
		t.Fatal("pprof served without EnablePprof")
	}
	s2 := testServer(t)
	s2.EnablePprof()
	if rec := get(t, s2, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("pprof index status %d after EnablePprof", rec.Code)
	}
}
