// Package core implements the paper's primary contribution: the
// unsupervised facet-term discovery pipeline of Section IV.
//
//  1. Identify the important terms of every document with one or more
//     term extractors (Figure 1).
//  2. Query one or more external resources with each important term and
//     expand the document with the returned context terms, producing the
//     contextualized database C(D) (Figure 2).
//  3. Compare term distributions between D and C(D): a term is a
//     candidate facet term when both the frequency shift
//     Shift_f(t) = df_C(t) − df(t) and the rank-bin shift
//     Shift_r(t) = B_D(t) − B_C(t) are positive; candidates are ranked by
//     Dunning's log-likelihood statistic −log λ and the top k returned
//     (Figure 3).
//
// Extractors and resources are interfaces; the substrates in
// internal/{ner,yterms,wiki,wordnet,websearch} provide the paper's five
// concrete implementations, and domain glossaries (Section VII) plug in
// through the same seams.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/obsv"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/textdb"
)

// Extractor identifies the important terms of a document (Section IV-A).
// Extract receives the document text (title and body) and returns
// normalized terms.
type Extractor interface {
	Name() string
	Extract(text string) []string
}

// Resource returns context terms for an important term (Section IV-B).
type Resource interface {
	Name() string
	Context(term string) []string
}

// ResourceErr is the fallible counterpart of Resource: the remote
// services behind the paper's resources (Google, Wikipedia) can fail,
// time out, or be down, and ContextErr surfaces that instead of
// silently returning nothing. Resources that also implement ResourceErr
// are upgraded automatically by the pipeline; failures are then recorded
// in Result.Degradations rather than mistaken for "no context".
type ResourceErr interface {
	Name() string
	ContextErr(ctx context.Context, term string) ([]string, error)
}

// ExtractorErr is the fallible counterpart of Extractor (the paper's
// Yahoo Term Extraction service is a remote call too).
type ExtractorErr interface {
	Name() string
	ExtractErr(ctx context.Context, text string) ([]string, error)
}

// infallibleResource adapts a plain Resource to ResourceErr; it never
// errors.
type infallibleResource struct{ Resource }

func (r infallibleResource) ContextErr(ctx context.Context, term string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.Context(term), nil
}

// AsResourceErr upgrades a Resource to its fallible interface when it
// implements one, and wraps it as never-failing otherwise.
func AsResourceErr(r Resource) ResourceErr {
	if re, ok := r.(ResourceErr); ok {
		return re
	}
	return infallibleResource{r}
}

// infallibleExtractor adapts a plain Extractor to ExtractorErr.
type infallibleExtractor struct{ Extractor }

func (e infallibleExtractor) ExtractErr(ctx context.Context, text string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.Extract(text), nil
}

// AsExtractorErr upgrades an Extractor to its fallible interface when it
// implements one, and wraps it as never-failing otherwise.
func AsExtractorErr(e Extractor) ExtractorErr {
	if ee, ok := e.(ExtractorErr); ok {
		return ee
	}
	return infallibleExtractor{e}
}

// Config assembles a pipeline.
type Config struct {
	Extractors []Extractor
	Resources  []Resource
	// TopK bounds the number of facet terms returned; 0 means the paper's
	// working value of 200.
	TopK int
	// MaxImportantPerDoc caps important terms per document (0 = no cap);
	// extractors already bound their own output, so this is a safety net.
	MaxImportantPerDoc int
	// Fallback, when set, is a last-resort context resource consulted for
	// an important term only when EVERY configured resource failed for
	// that (document, term) lookup — retries exhausted or circuit open.
	// With the distributional model (internal/distctx) here, a run whose
	// external resources are all dark degrades to corpus-only context
	// instead of running context-free. Healthy runs never touch it, so
	// the fault-free output is byte-identical with or without a Fallback.
	// Fallback is NOT added to Result.Resources: downstream vote-based
	// document assignment keeps using the primary resources only.
	Fallback Resource
	// Metrics, when set, additionally records each stage's duration into
	// the registry as core.stage.<name> histograms, so long-running
	// servers see pipeline cost continuously, not just per run.
	Metrics *obsv.Registry
	// Workers bounds the worker pool every pipeline stage shards across:
	// important-term identification, context derivation, DF-table
	// accumulation, and candidate scoring. 0 selects
	// runtime.GOMAXPROCS(0); 1 takes the sequential path. Output is
	// identical for every worker count — the stages shard documents (and
	// candidate terms) into per-worker slots and merge deterministically.
	// Extractors and Resources must be safe for concurrent use when
	// Workers > 1 (the built-in substrates are read-only after
	// construction).
	Workers int
}

// Pipeline is a configured facet-discovery run. It caches resource
// lookups, so expanding a corpus costs one resource query per distinct
// (resource, term) pair — the offline precomputation strategy the paper
// describes in Section V-D.
type Pipeline struct {
	cfg   Config
	cache *ResourceCache
}

// New validates the configuration and returns a pipeline.
func New(cfg Config) (*Pipeline, error) {
	if len(cfg.Extractors) == 0 {
		return nil, fmt.Errorf("core: no extractors configured")
	}
	if len(cfg.Resources) == 0 {
		return nil, fmt.Errorf("core: no resources configured")
	}
	if cfg.TopK == 0 {
		cfg.TopK = 200
	}
	if cfg.TopK < 0 {
		return nil, fmt.Errorf("core: negative TopK %d", cfg.TopK)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: negative Workers %d", cfg.Workers)
	}
	cfg.Workers = parallel.Workers(cfg.Workers)
	return &Pipeline{cfg: cfg, cache: NewResourceCache()}, nil
}

// background aliases context.Background() for use inside functions whose
// per-document context-term parameter shadows the context package.
var background = context.Background()

// FacetTerm is one discovered facet term with its evidence.
type FacetTerm struct {
	Term   string
	DF     int     // document frequency in the original database
	DFC    int     // document frequency in the contextualized database
	ShiftF int     // DFC − DF
	ShiftR int     // B_D − B_C
	Score  float64 // −log λ
}

// Result carries everything a run produces.
type Result struct {
	// Facets are the top-k facet terms, ranked by Score descending.
	Facets []FacetTerm
	// Candidates are all terms passing both shift tests, ranked like
	// Facets (Facets is its prefix).
	Candidates []FacetTerm
	// Important[i] lists the important terms identified in document i.
	Important [][]string
	// Context[i] lists the context terms added to document i.
	Context [][]string
	// Resources are the resources the run used; downstream consumers
	// (hierarchy population, browsing assignment) re-query them through
	// the shared cache.
	Resources []Resource
	// NumDocs is the collection size |D|.
	NumDocs int
	// Stages reports each pipeline stage's wall-clock cost in execution
	// order — the per-run counterpart of the Section V-D efficiency table.
	Stages []obsv.StageSample
	// FallbackLookups counts the (document, term) expansions answered by
	// Config.Fallback because every primary resource failed. 0 on a
	// healthy run; alongside Degradations it quantifies how much of the
	// context came from the corpus-only safety net.
	FallbackLookups int
	// Degradations reports, per external dependency, the lookups the run
	// completed WITHOUT because the dependency failed permanently (after
	// the resilience layer's retries, or with its circuit open). An empty
	// list means every extractor and resource answered every query: the
	// output is exactly the fault-free output. A non-empty list means the
	// run degraded gracefully — it proceeded with the surviving
	// dependencies — and quantifies the gap.
	Degradations []Degradation
}

// Degradation quantifies one external dependency's failures during a run.
type Degradation struct {
	// Name is the failing resource or extractor's Name().
	Name string
	// Kind is "resource" or "extractor".
	Kind string
	// Failures counts failed lookups: (document, term) expansion queries
	// for resources, documents for extractors.
	Failures int
	// Docs counts distinct documents with at least one failed lookup.
	Docs int
	// LastErr is the text of one representative error.
	LastErr string
}

// degAccum is one worker's running tally for a dependency; merged across
// workers into a Degradation afterwards.
type degAccum struct {
	failures int
	docs     int
	lastErr  string
}

// recordDeg tallies one failed lookup into a worker-local map.
func recordDeg(m map[string]*degAccum, name string, newDoc bool, err error) {
	a := m[name]
	if a == nil {
		a = &degAccum{}
		m[name] = a
	}
	a.failures++
	if newDoc {
		a.docs++
	}
	a.lastErr = err.Error()
}

// mergeDegradations folds per-worker tallies into a deterministic
// (name-sorted) report. Counts are additive across disjoint document
// shards; LastErr takes the first non-empty text in worker order.
func mergeDegradations(kind string, perWorker []map[string]*degAccum) []Degradation {
	merged := map[string]*Degradation{}
	for _, m := range perWorker {
		for name, a := range m {
			d := merged[name]
			if d == nil {
				d = &Degradation{Name: name, Kind: kind}
				merged[name] = d
			}
			d.Failures += a.failures
			d.Docs += a.docs
			if d.LastErr == "" {
				d.LastErr = a.lastErr
			}
		}
	}
	out := make([]Degradation, 0, len(merged))
	for _, d := range merged {
		out = append(out, *d)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Run executes the three steps over the corpus.
func (p *Pipeline) Run(corpus *textdb.Corpus) (*Result, error) {
	return p.RunContext(context.Background(), corpus)
}

// RunContext executes the three steps over the corpus, honoring
// cancellation: ctx is checked between stages and between documents
// inside the two expensive stages, so a canceled extraction stops within
// one document's worth of work.
func (p *Pipeline) RunContext(ctx context.Context, corpus *textdb.Corpus) (*Result, error) {
	if corpus.Len() == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	timer := obsv.NewStageTimer()
	observe := func(stage string, d time.Duration) {
		timer.Record(stage, d)
		if p.cfg.Metrics != nil {
			p.cfg.Metrics.Histogram("core.stage." + stage).Observe(d)
		}
	}

	start := time.Now()
	important, extractorDegs, err := IdentifyImportantReport(ctx, corpus, p.cfg.Extractors, p.cfg.MaxImportantPerDoc, p.cfg.Workers)
	if err != nil {
		return nil, err
	}
	observe("identify_important", time.Since(start))

	start = time.Now()
	contextTerms, resourceDegs, fallbackLookups, err := DeriveContextFallbackReport(ctx, important, p.cfg.Resources, p.cfg.Fallback, p.cache, p.cfg.Workers)
	if err != nil {
		return nil, err
	}
	observe("derive_context", time.Since(start))

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start = time.Now()
	res := AnalyzeWith(corpus, contextTerms, p.cfg.TopK, AnalyzeOptions{Workers: p.cfg.Workers})
	observe("analyze", time.Since(start))

	res.Important = important
	res.Context = contextTerms
	res.Resources = p.cfg.Resources
	res.Stages = timer.Report()
	res.Degradations = append(extractorDegs, resourceDegs...)
	res.FallbackLookups = fallbackLookups
	if p.cfg.Metrics != nil {
		for _, d := range res.Degradations {
			p.cfg.Metrics.Counter("core.degraded_lookups." + d.Name).Add(int64(d.Failures))
		}
		if fallbackLookups > 0 {
			p.cfg.Metrics.Counter("core.fallback_lookups").Add(int64(fallbackLookups))
		}
	}
	return res, nil
}

// IdentifyImportant is Step 1 (Figure 1): per document, the union of all
// extractors' terms, first-extractor-first order preserved. maxPerDoc <= 0
// means no cap.
func IdentifyImportant(corpus *textdb.Corpus, extractors []Extractor, maxPerDoc int) [][]string {
	out, _ := IdentifyImportantContext(context.Background(), corpus, extractors, maxPerDoc)
	return out
}

// IdentifyImportantContext is IdentifyImportant with cancellation: every
// worker checks ctx before each document and the first ctx error aborts
// the run. Documents are sharded across GOMAXPROCS workers; use
// IdentifyImportantWorkers for an explicit worker count.
func IdentifyImportantContext(ctx context.Context, corpus *textdb.Corpus, extractors []Extractor, maxPerDoc int) ([][]string, error) {
	return IdentifyImportantWorkers(ctx, corpus, extractors, maxPerDoc, 0)
}

// IdentifyImportantWorkers shards Step 1 across a bounded worker pool
// (workers <= 0 selects GOMAXPROCS, 1 runs sequentially on the calling
// goroutine): extraction is CPU-bound and per-document independent, and
// the built-in extractors are read-only after construction. Output is
// identical for every worker count — each worker writes only its own
// documents' slots.
func IdentifyImportantWorkers(ctx context.Context, corpus *textdb.Corpus, extractors []Extractor, maxPerDoc, workers int) ([][]string, error) {
	out, _, err := IdentifyImportantReport(ctx, corpus, extractors, maxPerDoc, workers)
	return out, err
}

// IdentifyImportantReport is IdentifyImportantWorkers with graceful
// degradation: an extractor that fails for a document (extractors
// implementing ExtractorErr can) is skipped for that document, the run
// proceeds with the surviving extractors, and the gap is quantified in
// the returned Degradations. Plain extractors never fail, so for them
// this is exactly IdentifyImportantWorkers.
func IdentifyImportantReport(ctx context.Context, corpus *textdb.Corpus, extractors []Extractor, maxPerDoc, workers int) ([][]string, []Degradation, error) {
	fallible := make([]ExtractorErr, len(extractors))
	for i, ex := range extractors {
		fallible[i] = AsExtractorErr(ex)
	}
	nw := parallel.Workers(workers)
	degs := make([]map[string]*degAccum, nw)
	for w := range degs {
		degs[w] = map[string]*degAccum{}
	}
	out := make([][]string, corpus.Len())
	err := parallel.For(ctx, corpus.Len(), nw, func(w, i int) {
		doc := corpus.Doc(textdb.DocID(i))
		text := doc.Title + ". " + doc.Text
		seen := map[string]bool{}
		var terms []string
		for _, ex := range fallible {
			extracted, eerr := ex.ExtractErr(ctx, text)
			if eerr != nil {
				if ctx.Err() != nil {
					return // cancellation, not a dependency failure
				}
				recordDeg(degs[w], ex.Name(), true, eerr)
				continue
			}
			for _, t := range extracted {
				if t == "" || seen[t] {
					continue
				}
				seen[t] = true
				terms = append(terms, t)
			}
		}
		if maxPerDoc > 0 && len(terms) > maxPerDoc {
			terms = terms[:maxPerDoc]
		}
		out[i] = terms
	})
	if err != nil {
		return nil, nil, err
	}
	return out, mergeDegradations("extractor", degs), nil
}

// DeriveContext is Step 2 (Figure 2): per document, the union of all
// resources' context terms for each important term, deduplicated. A nil
// cache allocates a private one.
func DeriveContext(important [][]string, resources []Resource, cache *ResourceCache) [][]string {
	out, _ := DeriveContextContext(context.Background(), important, resources, cache)
	return out
}

// DeriveContextContext is DeriveContext with cancellation, checked
// between documents — a canceled expansion stops after at most one
// document's resource queries. Documents are sharded across GOMAXPROCS
// workers; use DeriveContextWorkers for an explicit worker count.
func DeriveContextContext(ctx context.Context, important [][]string, resources []Resource, cache *ResourceCache) ([][]string, error) {
	return DeriveContextWorkers(ctx, important, resources, cache, 0)
}

// DeriveContextWorkers shards Step 2 across a bounded worker pool
// (workers <= 0 selects GOMAXPROCS, 1 runs sequentially). The shared
// cache is safe for this: lookups are single-flight per (resource,
// term), so a hot term missed by several workers at once is still
// derived exactly once. Output is identical for every worker count —
// per-document rows depend only on that document's important terms.
func DeriveContextWorkers(ctx context.Context, important [][]string, resources []Resource, cache *ResourceCache, workers int) ([][]string, error) {
	out, _, err := DeriveContextReport(ctx, important, resources, cache, workers)
	return out, err
}

// DeriveContextReport is DeriveContextWorkers with graceful degradation:
// a resource whose lookup fails permanently (resources implementing
// ResourceErr can — the resilience layer surfaces exhausted retries and
// open circuits here) contributes nothing for that (document, term)
// pair, the expansion proceeds with the surviving resources, and the gap
// is quantified in the returned Degradations. Failed lookups are never
// cached, so a recovering resource starts answering again immediately.
func DeriveContextReport(ctx context.Context, important [][]string, resources []Resource, cache *ResourceCache, workers int) ([][]string, []Degradation, error) {
	out, degs, _, err := DeriveContextFallbackReport(ctx, important, resources, nil, cache, workers)
	return out, degs, err
}

// DeriveContextFallbackReport is DeriveContextReport with a last-resort
// resource: when fallback is non-nil and EVERY primary resource's lookup
// failed for a (document, term) pair, the fallback is consulted for that
// term (through the same cache) and its context merged in; the number of
// such rescues is returned. When no resource fails — or fallback is nil —
// the output is exactly DeriveContextReport's, so configuring a fallback
// never perturbs healthy runs. A failing fallback (it can implement
// ResourceErr too) is recorded in the degradation report like any
// resource; the pair then completes context-free as before.
func DeriveContextFallbackReport(ctx context.Context, important [][]string, resources []Resource, fallback Resource, cache *ResourceCache, workers int) ([][]string, []Degradation, int, error) {
	if cache == nil {
		cache = NewResourceCache()
	}
	fallible := make([]ResourceErr, len(resources))
	for i, r := range resources {
		fallible[i] = AsResourceErr(r)
	}
	var fallbackErr ResourceErr
	if fallback != nil {
		fallbackErr = AsResourceErr(fallback)
	}
	nw := parallel.Workers(workers)
	degs := make([]map[string]*degAccum, nw)
	for w := range degs {
		degs[w] = map[string]*degAccum{}
	}
	rescues := make([]int, nw)
	out := make([][]string, len(important))
	err := parallel.For(ctx, len(important), nw, func(w, i int) {
		seen := map[string]bool{}
		failedDoc := map[string]bool{} // resources that already failed for this document
		var ctxTerms []string
		merge := func(terms []string) {
			for _, c := range terms {
				if c == "" || seen[c] {
					continue
				}
				seen[c] = true
				ctxTerms = append(ctxTerms, c)
			}
		}
		for _, t := range important[i] {
			failed := 0
			for _, r := range fallible {
				terms, lerr := cache.LookupErr(ctx, r, t)
				if lerr != nil {
					if ctx.Err() != nil {
						return // cancellation, not a dependency failure
					}
					name := r.Name()
					recordDeg(degs[w], name, !failedDoc[name], lerr)
					failedDoc[name] = true
					failed++
					continue
				}
				merge(terms)
			}
			if fallbackErr != nil && len(fallible) > 0 && failed == len(fallible) {
				terms, lerr := cache.LookupErr(ctx, fallbackErr, t)
				if lerr != nil {
					if ctx.Err() != nil {
						return
					}
					name := fallbackErr.Name()
					recordDeg(degs[w], name, !failedDoc[name], lerr)
					failedDoc[name] = true
					continue
				}
				rescues[w]++
				merge(terms)
			}
		}
		out[i] = ctxTerms
	})
	if err != nil {
		return nil, nil, 0, err
	}
	total := 0
	for _, r := range rescues {
		total += r
	}
	return out, mergeDegradations("resource", degs), total, nil
}

// AnalyzeOptions selects variants of Step 3 for ablation studies. The
// zero value is the paper's algorithm: both shift tests required, ranking
// by Dunning's log-likelihood.
type AnalyzeOptions struct {
	// SkipShiftF / SkipShiftR disable the respective gating test.
	SkipShiftF bool
	SkipShiftR bool
	// Scorer overrides the ranking statistic; nil selects the paper's
	// −log λ. The paper argues chi-square (stats.ChiSquare) misbehaves on
	// Zipfian frequencies; the ablation experiment substitutes it here.
	Scorer func(df, dfC, n int) float64
	// Workers shards DF-table accumulation and candidate scoring across a
	// bounded worker pool; <= 1 (the zero value) takes the sequential
	// path. Results are identical for every worker count: document
	// frequencies are additive across shards, and the final ranking's
	// (Score, Term) order is total. The Scorer must be safe for
	// concurrent use when Workers > 1 (a pure function of its arguments,
	// as both built-in statistics are).
	Workers int
}

// ExpandDocTerms builds one document's contextualized term row (the
// Fig. 2 → Fig. 3 hand-off): the document's own term IDs followed by its
// context terms, interned and deduplicated. IDs of terms that gained
// their first occurrence through context — the only terms able to pass
// Shift_f > 0 — are recorded in ctxSet (when non-nil). scratch is an
// optional reusable dedup map, cleared on entry; nil allocates one. Both
// the batch analysis and the live-ingestion delta path build their
// contextualized DF tables through this one helper, so the two always
// agree on what C(D) contains.
func ExpandDocTerms(dict *textdb.Dictionary, orig []textdb.TermID, context []string, scratch map[textdb.TermID]bool, ctxSet map[textdb.TermID]bool) []textdb.TermID {
	return ExpandDocTermsAppend(make([]textdb.TermID, 0, len(orig)+len(context)), dict, orig, context, scratch, ctxSet)
}

// ExpandDocTermsAppend is ExpandDocTerms writing into dst (appended to
// and returned like append). Callers expanding many documents pass the
// previous row's buffer as dst[:0] so the per-document row costs zero
// allocations once the buffer and scratch map reach steady-state size —
// this is the hot path of both the batch analysis (AnalyzeWith) and live
// ingestion.
func ExpandDocTermsAppend(dst []textdb.TermID, dict *textdb.Dictionary, orig []textdb.TermID, context []string, scratch map[textdb.TermID]bool, ctxSet map[textdb.TermID]bool) []textdb.TermID {
	if scratch == nil {
		scratch = make(map[textdb.TermID]bool, len(orig)+len(context))
	} else {
		clear(scratch)
	}
	for _, id := range orig {
		scratch[id] = true
		dst = append(dst, id)
	}
	for _, c := range context {
		id := dict.Intern(c)
		if !scratch[id] {
			scratch[id] = true
			dst = append(dst, id)
			if ctxSet != nil {
				ctxSet[id] = true
			}
		}
	}
	return dst
}

// ContextVotes returns, per document, how many distinct important terms
// contributed each context term (through any resource). The pipeline's
// Step 3 uses the flat union (DeriveContext); document-to-facet
// ASSIGNMENT for hierarchy population and browsing uses these vote
// counts: a facet term describes a document only when several of the
// document's own important terms independently pull it in, which keeps
// one stray entity mention from tagging the story with a whole unrelated
// dimension.
func ContextVotes(important [][]string, resources []Resource, cache *ResourceCache) []map[string]int {
	if cache == nil {
		cache = NewResourceCache()
	}
	out := make([]map[string]int, len(important))
	for i, terms := range important {
		votes := map[string]int{}
		for _, t := range terms {
			seen := map[string]bool{}
			for _, r := range resources {
				for _, c := range cache.Lookup(r, t) {
					if c != "" && !seen[c] {
						seen[c] = true
						votes[c]++
					}
				}
			}
		}
		out[i] = votes
	}
	return out
}

// Analyze is Step 3 (Figure 3): comparative term-frequency analysis over
// the original corpus and its per-document context expansions, with the
// paper's default options.
func Analyze(corpus *textdb.Corpus, context [][]string, topK int) *Result {
	return AnalyzeWith(corpus, context, topK, AnalyzeOptions{})
}

// AnalyzeWith is Analyze with explicit options. With opts.Workers > 1
// the DF tables for D and C(D) are accumulated as per-worker delta
// tables over document shards and merged before scoring; document
// frequencies are additive across disjoint shards, so the merged tables
// equal the sequentially built ones.
func AnalyzeWith(corpus *textdb.Corpus, context [][]string, topK int, opts AnalyzeOptions) *Result {
	dict := corpus.Dict()
	n := corpus.Len()

	workers := opts.Workers
	if workers <= 1 {
		// Sequential path: one pass, one table pair.
		dfD := textdb.NewDFTable(dict)
		for i := 0; i < n; i++ {
			dfD.AddDoc(corpus.DocTerms(textdb.DocID(i)))
		}
		dfC := textdb.NewDFTable(dict)
		ctxTermSet := map[textdb.TermID]bool{}
		scratch := map[textdb.TermID]bool{}
		var buf []textdb.TermID
		for i := 0; i < n; i++ {
			orig := corpus.DocTerms(textdb.DocID(i))
			buf = ExpandDocTermsAppend(buf[:0], dict, orig, context[i], scratch, ctxTermSet)
			dfC.AddDoc(buf)
		}
		return AnalyzeTables(dict, dfD, dfC, ctxTermSet, n, topK, opts)
	}

	// Parallel path: per-worker DF deltas and context-term sets, merged
	// in worker order below.
	type delta struct {
		dfD, dfC *textdb.DFTable
		ctxSet   map[textdb.TermID]bool
		scratch  map[textdb.TermID]bool
		buf      []textdb.TermID
	}
	deltas := make([]*delta, workers)
	for w := range deltas {
		deltas[w] = &delta{
			dfD:     textdb.NewDFTable(dict),
			dfC:     textdb.NewDFTable(dict),
			ctxSet:  map[textdb.TermID]bool{},
			scratch: map[textdb.TermID]bool{},
		}
	}
	parallel.For(background, n, workers, func(w, i int) {
		d := deltas[w]
		orig := corpus.DocTerms(textdb.DocID(i))
		d.dfD.AddDoc(orig)
		d.buf = ExpandDocTermsAppend(d.buf[:0], dict, orig, context[i], d.scratch, d.ctxSet)
		d.dfC.AddDoc(d.buf)
	})
	dfD, dfC := textdb.NewDFTable(dict), textdb.NewDFTable(dict)
	ctxTermSet := map[textdb.TermID]bool{}
	for _, d := range deltas {
		dfD.Merge(d.dfD)
		dfC.Merge(d.dfC)
		for id := range d.ctxSet {
			ctxTermSet[id] = true
		}
	}
	return AnalyzeTables(dict, dfD, dfC, ctxTermSet, n, topK, opts)
}

// AnalyzeTables runs the Step-3 candidate selection and ranking over
// prebuilt document-frequency tables: dfD counts the original database,
// dfC the contextualized one, and ctxTermSet holds every term that gained
// at least one contextual occurrence (the only terms that can pass
// Shift_f > 0). Batch runs (AnalyzeWith) build the tables by scanning the
// corpus; the live ingestion subsystem maintains them incrementally as
// documents stream in and calls this directly at every rebuild epoch, so
// both paths share one scoring implementation and produce identical
// rankings.
func AnalyzeTables(dict *textdb.Dictionary, dfD, dfC *textdb.DFTable, ctxTermSet map[textdb.TermID]bool, numDocs, topK int, opts AnalyzeOptions) *Result {
	if topK <= 0 {
		topK = 200
	}
	n := numDocs
	ranksD := dfD.Ranks()
	ranksC := dfC.Ranks()

	scorer := opts.Scorer
	if scorer == nil {
		scorer = stats.LogLikelihood
	}
	// Only terms that gained at least one contextual occurrence can pass
	// Shift_f > 0, so candidate enumeration is restricted to ctxTermSet.
	// Both shift tests and the score are pure functions of the frozen
	// tables, so candidates shard across workers; the final (Score, Term)
	// sort is a total order, making the ranking identical for every
	// worker count.
	score := func(id textdb.TermID) (FacetTerm, bool) {
		df := dfD.DF(id)
		dfc := dfC.DF(id)
		shiftF := dfc - df
		if shiftF <= 0 && !opts.SkipShiftF {
			return FacetTerm{}, false
		}
		shiftR := textdb.Bin(ranksD.Rank(id)) - textdb.Bin(ranksC.Rank(id))
		if shiftR <= 0 && !opts.SkipShiftR {
			return FacetTerm{}, false
		}
		return FacetTerm{
			Term:   dict.String(id),
			DF:     df,
			DFC:    dfc,
			ShiftF: shiftF,
			ShiftR: shiftR,
			Score:  scorer(df, dfc, n),
		}, true
	}
	var cands []FacetTerm
	if workers := opts.Workers; workers > 1 && len(ctxTermSet) > 1 {
		ids := make([]textdb.TermID, 0, len(ctxTermSet))
		for id := range ctxTermSet {
			ids = append(ids, id)
		}
		parts := make([][]FacetTerm, workers)
		parallel.For(background, len(ids), workers, func(w, i int) {
			if ft, ok := score(ids[i]); ok {
				parts[w] = append(parts[w], ft)
			}
		})
		for _, p := range parts {
			cands = append(cands, p...)
		}
	} else {
		for id := range ctxTermSet {
			if ft, ok := score(id); ok {
				cands = append(cands, ft)
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Score != cands[b].Score {
			return cands[a].Score > cands[b].Score
		}
		return cands[a].Term < cands[b].Term
	})
	res := &Result{Candidates: cands, NumDocs: n}
	if topK > len(cands) {
		topK = len(cands)
	}
	res.Facets = cands[:topK]
	return res
}

// FacetTermStrings returns just the facet term texts of the result.
func (r *Result) FacetTermStrings() []string {
	out := make([]string, len(r.Facets))
	for i, f := range r.Facets {
		out[i] = f.Term
	}
	return out
}

// CandidateStrings returns the texts of ALL terms that passed both shift
// tests (the full Facet(D) set before top-k truncation).
func (r *Result) CandidateStrings() []string {
	out := make([]string, len(r.Candidates))
	for i, f := range r.Candidates {
		out[i] = f.Term
	}
	return out
}
