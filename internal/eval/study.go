package eval

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/browse"
	"repro/internal/userstudy"
)

// UserStudyResult carries the Section V-E reproduction: per-session
// averages plus the headline deltas the paper reports.
type UserStudyResult struct {
	Sessions []userstudy.SessionStats
	// KeywordReduction: 1 − (last-session keyword use / first-session).
	KeywordReduction float64
	// TimeReduction: 1 − (last-session time / first-session time).
	TimeReduction float64
	// MeanSatisfaction across all sessions (paper: ~2.5 on 0–3).
	MeanSatisfaction float64
}

// UserStudy builds the full faceted interface from an All×All pipeline
// run and simulates the five-user study over it.
func UserStudy(dr *DataRun, topK int, seed uint64) (*UserStudyResult, error) {
	if topK == 0 {
		topK = 150
	}
	result := dr.RunCell(ExtAll, ResAll, topK)
	forest, err := BuildForest(dr, result, topK)
	if err != nil {
		return nil, err
	}
	docTerms := ExpandedDocTerms(dr, result, result.FacetTermStrings())
	iface, err := browse.Build(dr.DS.Corpus, forest, docTerms)
	if err != nil {
		return nil, err
	}
	// The paper ran 5 users; the simulation uses 25 so that per-session
	// averages reflect the behavioural model rather than draw noise (a
	// 5-user run shows the same trends with wide error bars).
	sessions, err := userstudy.Run(iface, dr.DS, userstudy.Config{Seed: seed, Users: 25})
	if err != nil {
		return nil, err
	}
	res := &UserStudyResult{Sessions: sessions}
	first, last := sessions[0], sessions[len(sessions)-1]
	if first.KeywordQueries > 0 {
		res.KeywordReduction = 1 - last.KeywordQueries/first.KeywordQueries
	}
	if first.Time > 0 {
		res.TimeReduction = 1 - float64(last.Time)/float64(first.Time)
	}
	var sat float64
	for _, s := range sessions {
		sat += s.Satisfaction
	}
	res.MeanSatisfaction = sat / float64(len(sessions))
	return res, nil
}

// Format renders the study result.
func (r *UserStudyResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Session   Keyword   FacetClicks   Time       Satisfaction   Success\n")
	for _, s := range r.Sessions {
		fmt.Fprintf(&sb, "%7d   %7.2f   %11.2f   %-9v  %12.2f   %7.2f\n",
			s.Session, s.KeywordQueries, s.FacetClicks, s.Time.Round(time.Second), s.Satisfaction, s.SuccessRate)
	}
	fmt.Fprintf(&sb, "\nKeyword-use reduction (first→last session): %.0f%%\n", r.KeywordReduction*100)
	fmt.Fprintf(&sb, "Task-time reduction (first→last session):   %.0f%%\n", r.TimeReduction*100)
	fmt.Fprintf(&sb, "Mean satisfaction (0-3):                    %.2f\n", r.MeanSatisfaction)
	return sb.String()
}
