package textdb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testDocs(n int, prefix string) []*Document {
	out := make([]*Document, n)
	for i := range out {
		out[i] = &Document{
			Title:  prefix + " title",
			Source: "The Test Wire",
			Date:   time.Date(2005, 11, 7, 0, 0, 0, 0, time.UTC).AddDate(0, 0, i),
			Text:   prefix + " body text with several words in it",
		}
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testDocs(3, "first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testDocs(2, "second")); err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 2 || s.Docs() != 5 {
		t.Fatalf("segments=%d docs=%d", s.Segments(), s.Docs())
	}
	// Reopen from disk.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Segments() != 2 || s2.Docs() != 5 {
		t.Fatalf("reopened: segments=%d docs=%d", s2.Segments(), s2.Docs())
	}
	c, err := s2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 {
		t.Fatalf("loaded %d docs", c.Len())
	}
	d := c.Doc(0)
	if d.Title != "first title" || d.Source != "The Test Wire" || d.Text == "" {
		t.Fatalf("doc 0 = %+v", d)
	}
	if !d.Date.Equal(time.Date(2005, 11, 7, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("date = %v", d.Date)
	}
	if c.Doc(3).Title != "second title" {
		t.Fatal("segment order lost")
	}
}

func TestStoreEmptyAppendRejected(t *testing.T) {
	s, _ := OpenStore(t.TempDir())
	if err := s.Append(nil); err == nil {
		t.Fatal("empty append accepted")
	}
}

func TestStoreCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	if err := s.Append(testDocs(2, "x")); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the segment.
	path := filepath.Join(dir, s.SegmentFiles()[0])
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := OpenStore(dir)
	if _, err := s2.LoadAll(); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestStoreOrphanSegments(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	if err := s.Append(testDocs(1, "real")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: a segment file exists but is not in the manifest.
	if err := os.WriteFile(filepath.Join(dir, "segment-000099.seg"), []byte(segMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := OpenStore(dir)
	orphans, err := s2.OrphanSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 1 || orphans[0] != "segment-000099.seg" {
		t.Fatalf("orphans = %v", orphans)
	}
	// The orphan must not be loaded.
	c, err := s2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("loaded %d docs, want 1", c.Len())
	}
}

func TestStoreBadManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir); err == nil {
		t.Fatal("bad manifest accepted")
	}
}

// TestStoreManifestReferencesMissingSegment is the inverse crash shape of
// TestStoreOrphanSegments: the manifest registers a segment whose file is
// gone (disk corruption or manual deletion — never a crashed Append,
// which orders file-then-manifest). The store must fail loudly at load,
// not silently serve a truncated collection.
func TestStoreManifestReferencesMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	if err := s.Append(testDocs(2, "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testDocs(3, "b")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, s.SegmentFiles()[0])); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir) // opening only reads the manifest
	if err != nil {
		t.Fatal(err)
	}
	if s2.Docs() != 5 {
		t.Fatalf("manifest docs = %d, want 5", s2.Docs())
	}
	if _, err := s2.LoadAll(); err == nil {
		t.Fatal("missing segment file not detected")
	}
}

// TestStoreManifestOverstatesDocCount: a manifest that promises more
// records than the segment holds (torn segment write that somehow passed
// the rename) must fail the load rather than under-read silently.
func TestStoreManifestOverstatesDocCount(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	if err := s.Append(testDocs(2, "x")); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, manifestName)
	data, _ := os.ReadFile(manifest)
	bad := strings.Replace(string(data), " 2", " 3", 1)
	if err := os.WriteFile(manifest, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadAll(); err == nil {
		t.Fatal("overstated doc count not detected")
	}
}

// TestStoreCompactCrashLeavesRecoverableState simulates a crash between
// Compact's manifest swap and its old-file cleanup: the merged segment is
// live, the stale files are orphans, and a restart loads the full
// collection then reclaims the orphans.
func TestStoreCompactCrashLeavesRecoverableState(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	for i := 0; i < 3; i++ {
		if err := s.Append(testDocs(2, "seg")); err != nil {
			t.Fatal(err)
		}
	}
	old := s.SegmentFiles()
	// Preserve copies of the pre-compact segment files, then compact and
	// restore them — the on-disk state of a crash after the manifest swap
	// but before cleanup.
	saved := map[string][]byte{}
	for _, name := range old {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		saved[name] = data
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for name, data := range saved {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 6 {
		t.Fatalf("recovered %d docs, want 6", c.Len())
	}
	orphans, err := s2.OrphanSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != len(old) {
		t.Fatalf("orphans = %v, want the %d stale segments", orphans, len(old))
	}
	for _, name := range orphans {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	orphans, _ = s2.OrphanSegments()
	if len(orphans) != 0 {
		t.Fatalf("orphans remain after reclaim: %v", orphans)
	}
	if c2, err := s2.LoadAll(); err != nil || c2.Len() != 6 {
		t.Fatalf("post-reclaim load: %d docs, err %v", c2.Len(), err)
	}
}

// TestStoreAppendAfterCrashOverwritesOrphan: a crashed Append leaves an
// unregistered segment file under the name the next Append will choose;
// the rewrite must supersede it cleanly.
func TestStoreAppendAfterCrashOverwritesOrphan(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	// Crash artifact: an orphan under the first segment name.
	if err := os.WriteFile(filepath.Join(dir, "segment-000000.seg"), []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testDocs(2, "fresh")); err != nil {
		t.Fatal(err)
	}
	c, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Doc(0).Title != "fresh title" {
		t.Fatalf("orphan not superseded: %d docs", c.Len())
	}
}

func TestQuickDocEncodeDecode(t *testing.T) {
	f := func(title, source, text string, unix uint32) bool {
		in := &Document{
			Title:  title,
			Source: source,
			Date:   time.Unix(int64(unix), 0).UTC(),
			Text:   text,
		}
		out, err := decodeDoc(encodeDoc(in))
		if err != nil {
			return false
		}
		return out.Title == in.Title && out.Source == in.Source &&
			out.Text == in.Text && out.Date.Equal(in.Date)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDocRejectsTruncation(t *testing.T) {
	payload := encodeDoc(&Document{Title: "t", Source: "s", Date: time.Unix(100, 0), Text: "body"})
	for cut := 1; cut < len(payload); cut++ {
		if _, err := decodeDoc(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := decodeDoc(append(payload, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir)
	for i := 0; i < 4; i++ {
		if err := s.Append(testDocs(2, "batch")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 1 || s.Docs() != 8 {
		t.Fatalf("after compact: segments=%d docs=%d", s.Segments(), s.Docs())
	}
	// Reopen and verify content survived.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 8 {
		t.Fatalf("loaded %d docs", c.Len())
	}
	// Old segment files are gone.
	orphans, _ := s2.OrphanSegments()
	if len(orphans) != 0 {
		t.Fatalf("orphans after compact: %v", orphans)
	}
	// Compacting a single segment is a no-op.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if s2.Segments() != 1 {
		t.Fatal("no-op compact changed segments")
	}
}
