// Package distctx builds a corpus-only context resource: distributional
// co-occurrence vectors over the corpus's own extracted important terms,
// standing in for the external resources (Google, Wikipedia, WordNet)
// that the paper's Step 2 uses to derive context. Bilu et al. ("What if
// we had no Wikipedia?", PAPERS.md) show domain-independent term
// extraction from the corpus alone is viable; this package applies the
// same idea to context derivation. Terms that appear in the same
// documents (or within a positional window of each other) are associated,
// pairs are weighted by PPMI or Dunning log-likelihood
// (internal/stats), and each term's top-N neighbors become its context —
// exactly the []string shape core.Resource.Context returns, so the rest
// of the pipeline (Step 3 comparative analysis, parallel sharding,
// caching, ingest epochs, snapshots) works unchanged.
//
// Build is deterministic for any worker count: the vocabulary is
// interned in corpus order on the calling goroutine, per-worker pair
// counters are merged additively (order-independent), and neighbor lists
// are sorted by (weight desc, term asc) before truncation.
package distctx

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// Weighting names accepted by Config.Weight.
const (
	WeightPPMI = "ppmi"
	WeightLLR  = "llr"
)

// DefaultName is the resource name the model reports unless
// Config.Name overrides it.
const DefaultName = "Distributional"

// Config tunes the distributional model. The zero value selects the
// defaults noted per field.
type Config struct {
	// TopN is the number of neighbors kept per term (0 = 10). A term's
	// context is at most TopN terms.
	TopN int
	// MinDF is the minimum document frequency for a term to receive a
	// vector (0 = 2). Hapax terms have no reliable distribution.
	MinDF int
	// MinCo is the minimum number of co-occurring documents for a pair
	// to be scored (0 = 2). Single-document coincidences are noise.
	MinCo int
	// Window restricts co-occurrence to term pairs within this many
	// positions of each other in a document's important-term sequence
	// (after intra-document deduplication). 0 means whole-document
	// co-occurrence, the paper-corpus default.
	Window int
	// Weight selects the association measure: WeightPPMI (default) or
	// WeightLLR.
	Weight string
	// Workers bounds build parallelism (<=0 = GOMAXPROCS).
	Workers int
	// Name overrides the resource name ("" = DefaultName).
	Name string
}

func (c Config) withDefaults() Config {
	if c.TopN == 0 {
		c.TopN = 10
	}
	if c.MinDF == 0 {
		c.MinDF = 2
	}
	if c.MinCo == 0 {
		c.MinCo = 2
	}
	if c.Weight == "" {
		c.Weight = WeightPPMI
	}
	if c.Name == "" {
		c.Name = DefaultName
	}
	return c
}

// Model is a built distributional context resource. It is read-only
// after Build and safe for concurrent use; it satisfies core.Resource
// structurally.
type Model struct {
	name      string
	neighbors map[string][]string
}

// Name reports the resource name for degradation records, cache keys,
// and the Result.Resources list.
func (m *Model) Name() string { return m.name }

// Context returns the term's top-N distributional neighbors (nil when
// the term is below MinDF or has no scored pairs). The returned slice
// is shared and must not be mutated — the same contract the other
// resources follow.
func (m *Model) Context(term string) []string {
	if m == nil {
		return nil
	}
	return m.neighbors[term]
}

// Len reports how many terms have a non-empty context — the model's
// effective coverage, surfaced by the resource-ablation report.
func (m *Model) Len() int {
	if m == nil {
		return 0
	}
	return len(m.neighbors)
}

// Build constructs the model from per-document important-term lists —
// the exact [][]string that core.IdentifyImportant produces — so the
// corpus-only path reuses Step 1's output rather than re-tokenizing.
// Duplicate terms within a document are collapsed (document frequency
// semantics: a pair co-occurs at most once per document), preserving
// first-occurrence order so Window offsets stay meaningful.
func Build(ctx context.Context, important [][]string, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.Weight != WeightPPMI && cfg.Weight != WeightLLR {
		return nil, fmt.Errorf("distctx: unknown weight %q (want %q or %q)", cfg.Weight, WeightPPMI, WeightLLR)
	}
	if cfg.TopN < 0 || cfg.MinDF < 0 || cfg.MinCo < 0 || cfg.Window < 0 {
		return nil, fmt.Errorf("distctx: negative knob in %+v", cfg)
	}

	// Intern the vocabulary sequentially in corpus order so term ids —
	// and therefore pair keys — are deterministic, and collapse each
	// document to its unique term-id sequence while counting df.
	ids := make(map[string]int)
	var terms []string
	df := []int{}
	docs := make([][]int32, len(important))
	var seen []int // term id -> last doc index that counted it
	for d, docTerms := range important {
		uniq := docs[d][:0]
		for _, t := range docTerms {
			id, ok := ids[t]
			if !ok {
				id = len(terms)
				ids[t] = id
				terms = append(terms, t)
				df = append(df, 0)
				seen = append(seen, -1)
			}
			if seen[id] == d {
				continue
			}
			seen[id] = d
			df[id]++
			uniq = append(uniq, int32(id))
		}
		docs[d] = uniq
	}
	n := len(important)

	// Count co-occurring documents per pair: per-worker maps keyed by
	// (loID<<32 | hiID), merged additively — integer addition commutes,
	// so the merge is deterministic regardless of scheduling.
	workers := parallel.Workers(cfg.Workers)
	counts := make([]map[uint64]int32, workers)
	for w := range counts {
		counts[w] = make(map[uint64]int32)
	}
	err := parallel.For(ctx, len(docs), workers, func(worker, d int) {
		pairs := counts[worker]
		uniq := docs[d]
		for i := 0; i < len(uniq); i++ {
			hi := len(uniq)
			if cfg.Window > 0 && i+cfg.Window+1 < hi {
				hi = i + cfg.Window + 1
			}
			for j := i + 1; j < hi; j++ {
				a, b := uniq[i], uniq[j]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				pairs[uint64(a)<<32|uint64(b&0x7fffffff)]++
			}
		}
	})
	if err != nil {
		return nil, err
	}
	merged := counts[0]
	for _, m := range counts[1:] {
		for k, v := range m {
			merged[k] += v
		}
	}

	// Score qualifying pairs and accumulate candidate neighbors on both
	// endpoints.
	type cand struct {
		id     int32
		weight float64
	}
	cands := make([][]cand, len(terms))
	for k, co := range merged {
		if int(co) < cfg.MinCo {
			continue
		}
		a := int32(k >> 32)
		b := int32(k & 0x7fffffff)
		if df[a] < cfg.MinDF || df[b] < cfg.MinDF {
			continue
		}
		var w float64
		switch cfg.Weight {
		case WeightLLR:
			w = stats.AssocLLR(int(co), df[a], df[b], n)
		default:
			w = stats.PPMI(int(co), df[a], df[b], n)
		}
		if w <= 0 {
			continue
		}
		cands[a] = append(cands[a], cand{id: b, weight: w})
		cands[b] = append(cands[b], cand{id: a, weight: w})
	}

	neighbors := make(map[string][]string)
	for id, cs := range cands {
		if len(cs) == 0 {
			continue
		}
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].weight != cs[j].weight {
				return cs[i].weight > cs[j].weight
			}
			return terms[cs[i].id] < terms[cs[j].id]
		})
		if len(cs) > cfg.TopN {
			cs = cs[:cfg.TopN]
		}
		out := make([]string, len(cs))
		for i, c := range cs {
			out[i] = terms[c.id]
		}
		neighbors[terms[id]] = out
	}
	return &Model{name: cfg.Name, neighbors: neighbors}, nil
}
