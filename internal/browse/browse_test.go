package browse

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/textdb"
)

// fixture: 6 docs over a tiny europe/sports hierarchy.
func fixture(t *testing.T) (*Interface, *textdb.Corpus) {
	t.Helper()
	corpus := textdb.NewCorpus()
	texts := []string{
		"chirac spoke in paris about the budget",   // france
		"berlin hosted a summit on trade",          // germany
		"the election in france drew crowds",       // france
		"a baseball game in boston went long",      // baseball
		"soccer fans filled the stadium in london", // soccer
		"markets rallied while paris stayed quiet", // france
	}
	for _, s := range texts {
		corpus.Add(&textdb.Document{Title: "t", Source: "s", Text: s})
	}
	terms := []string{"europe", "france", "germany", "sports", "baseball", "soccer"}
	docTerms := [][]string{
		{"europe", "france"},
		{"europe", "germany"},
		{"europe", "france"},
		{"sports", "baseball"},
		{"sports", "soccer"},
		{"europe", "france"},
	}
	forest, err := hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(corpus, forest, docTerms)
	if err != nil {
		t.Fatal(err)
	}
	return b, corpus
}

func TestRollupCounts(t *testing.T) {
	b, _ := fixture(t)
	if got := b.Count("europe"); got != 4 {
		t.Fatalf("Count(europe) = %d, want 4", got)
	}
	if got := b.Count("france"); got != 3 {
		t.Fatalf("Count(france) = %d", got)
	}
	if got := b.Count("sports"); got != 2 {
		t.Fatalf("Count(sports) = %d", got)
	}
	if got := b.Count("unknown"); got != 0 {
		t.Fatalf("Count(unknown) = %d", got)
	}
}

func TestDrillDown(t *testing.T) {
	b, _ := fixture(t)
	docs := b.Docs(Selection{Terms: []string{"europe", "france"}})
	want := []textdb.DocID{0, 2, 5}
	if !reflect.DeepEqual(docs, want) {
		t.Fatalf("got %v, want %v", docs, want)
	}
	if b.MatchCount(Selection{Terms: []string{"europe", "sports"}}) != 0 {
		t.Fatal("disjoint facets should intersect empty")
	}
	if b.MatchCount(Selection{Terms: []string{"nonexistent"}}) != 0 {
		t.Fatal("unknown facet term should match nothing")
	}
	if b.MatchCount(Selection{}) != 6 {
		t.Fatal("empty selection should match all docs")
	}
}

func TestChildrenCounts(t *testing.T) {
	b, _ := fixture(t)
	roots := b.Children("", Selection{})
	if len(roots) == 0 {
		t.Fatal("no root facets")
	}
	kids := b.Children("europe", Selection{})
	counts := map[string]int{}
	for _, fc := range kids {
		counts[fc.Term] = fc.Count
	}
	if counts["france"] != 3 || counts["germany"] != 1 {
		t.Fatalf("child counts = %v", counts)
	}
	// Under a restriction, counts shrink and zero-count children vanish.
	restricted := b.Children("europe", Selection{Query: "election"})
	if len(restricted) != 1 || restricted[0].Term != "france" || restricted[0].Count != 1 {
		t.Fatalf("restricted children = %v", restricted)
	}
}

func TestKeywordPlusFacet(t *testing.T) {
	b, _ := fixture(t)
	docs := b.Docs(Selection{Terms: []string{"france"}, Query: "paris"})
	want := []textdb.DocID{0, 5}
	if !reflect.DeepEqual(docs, want) {
		t.Fatalf("got %v, want %v", docs, want)
	}
}

func TestSearchOnly(t *testing.T) {
	b, _ := fixture(t)
	docs := b.Search("summit trade", 10)
	if len(docs) == 0 || docs[0] != 1 {
		t.Fatalf("got %v", docs)
	}
}

func TestCross(t *testing.T) {
	b, _ := fixture(t)
	// europe-children × sports-children: everything disjoint → zeros.
	ct, err := b.Cross("europe", "sports", Selection{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range ct.Cells {
		for _, c := range row {
			if c != 0 {
				t.Fatalf("expected empty cross-tab, got %v", ct.Cells)
			}
		}
	}
	if _, err := b.Cross("nope", "sports", Selection{}); err == nil {
		t.Fatal("expected error for unknown facet")
	}
}

func TestBuildValidation(t *testing.T) {
	corpus := textdb.NewCorpus()
	corpus.Add(&textdb.Document{Title: "t", Text: "x"})
	forest, _ := hierarchy.BuildSubsumption(nil, nil, hierarchy.SubsumptionConfig{})
	if _, err := Build(corpus, forest, nil); err == nil {
		t.Fatal("expected row-count mismatch error")
	}
}

func TestDateRangeSelection(t *testing.T) {
	corpus := textdb.NewCorpus()
	base := time.Date(2005, 11, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		corpus.Add(&textdb.Document{
			Title: "t", Source: "s",
			Text: "war report number x",
			Date: base.AddDate(0, 0, i),
		})
	}
	forest, _ := hierarchy.BuildSubsumption([]string{"war"}, rows(10, "war"), hierarchy.SubsumptionConfig{MinDF: 1})
	b, err := Build(corpus, forest, rows(10, "war"))
	if err != nil {
		t.Fatal(err)
	}
	sel := Selection{From: base.AddDate(0, 0, 3), To: base.AddDate(0, 0, 6)}
	if got := b.MatchCount(sel); got != 3 {
		t.Fatalf("date range matched %d docs, want 3", got)
	}
	// Open-ended bounds.
	if got := b.MatchCount(Selection{From: base.AddDate(0, 0, 8)}); got != 2 {
		t.Fatalf("open upper bound matched %d", got)
	}
	if got := b.MatchCount(Selection{To: base.AddDate(0, 0, 2)}); got != 2 {
		t.Fatalf("open lower bound matched %d", got)
	}
}

func rows(n int, term string) [][]string {
	out := make([][]string, n)
	for i := range out {
		out[i] = []string{term}
	}
	return out
}

func TestDateHistogram(t *testing.T) {
	corpus := textdb.NewCorpus()
	for i := 0; i < 6; i++ {
		month := time.Month(11)
		if i >= 4 {
			month = 12
		}
		corpus.Add(&textdb.Document{
			Title: "t", Source: "s", Text: "story text here",
			Date: time.Date(2005, month, 1+i, 10, 0, 0, 0, time.UTC),
		})
	}
	forest, _ := hierarchy.BuildSubsumption(nil, nil, hierarchy.SubsumptionConfig{})
	b, err := Build(corpus, forest, make([][]string, 6))
	if err != nil {
		t.Fatal(err)
	}
	months, err := b.DateHistogram(Selection{}, "month")
	if err != nil {
		t.Fatal(err)
	}
	if len(months) != 2 || months[0].Count != 4 || months[1].Count != 2 {
		t.Fatalf("month histogram = %+v", months)
	}
	days, err := b.DateHistogram(Selection{}, "day")
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 6 {
		t.Fatalf("day histogram has %d buckets", len(days))
	}
	if _, err := b.DateHistogram(Selection{}, "year"); err == nil {
		t.Fatal("unknown granularity accepted")
	}
}
