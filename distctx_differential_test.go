package facet

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/browse"
	"repro/internal/ingest"
	"repro/internal/snapshot"
	"repro/internal/textdb"
)

// toTextDocs converts facade documents to the ingest subsystem's type,
// the same mapping the facade and facetserve apply on intake.
func toTextDocs(in []Document) []*textdb.Document {
	out := make([]*textdb.Document, len(in))
	for i, d := range in {
		out[i] = &textdb.Document{Title: d.Title, Source: d.Source, Date: d.Date, Text: d.Text}
	}
	return out
}

// TestDistctxSequentialEquivalence is the differential harness for the
// corpus-only mode: the distributional model is built from sharded
// co-occurrence counting and then drives the sharded pipeline, so BOTH
// layers must be worker-count invariant. The same corpus runs with
// Workers=1 and Workers=8 and every observable output — ranking,
// statistics, per-document rows, rendered hierarchy — must be identical.
// CI runs this under -race.
func TestDistctxSequentialEquivalence(t *testing.T) {
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 150, 43)
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) (*Result, *Hierarchy) {
		t.Helper()
		sys, err := NewSystem(env, Options{TopK: 80, Workers: workers, Resources: []string{"corpus"}})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range docs {
			sys.Add(d)
		}
		res, err := sys.ExtractFacets()
		if err != nil {
			t.Fatal(err)
		}
		h, err := res.BuildHierarchy()
		if err != nil {
			t.Fatal(err)
		}
		return res, h
	}

	seqRes, seqH := run(1)
	parRes, parH := run(8)

	if len(seqRes.Facets) == 0 {
		t.Fatal("sequential corpus-only run extracted no facets; the differential test is vacuous")
	}
	if !reflect.DeepEqual(seqRes.Facets, parRes.Facets) {
		t.Errorf("corpus-only facet terms diverge between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(seqRes.inner.Candidates, parRes.inner.Candidates) {
		t.Errorf("corpus-only candidate ranking diverges between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(seqRes.inner.Important, parRes.inner.Important) {
		t.Errorf("per-document important terms diverge between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(seqRes.inner.Context, parRes.inner.Context) {
		t.Errorf("per-document distributional context rows diverge between Workers=1 and Workers=8")
	}
	if seq, par := seqH.FormatTree(), parH.FormatTree(); seq != par {
		t.Errorf("corpus-only hierarchy diverges between Workers=1 and Workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

// TestDistctxIncrementalMatchesBatch streams a corpus through ingest
// epochs with the distributional model as the ONLY context resource and
// requires the published facet ranking to equal the batch pipeline's over
// the same corpus — the corpus-only instance of the live/batch
// equivalence property. The model is built once over the full corpus
// (through the same CoreResources seam facetserve uses) and shared by
// both paths, as a warm-started server would.
func TestDistctxIncrementalMatchesBatch(t *testing.T) {
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(env, Options{TopK: 60, Resources: []string{"corpus"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	batch, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Facets) == 0 {
		t.Fatal("batch corpus-only pipeline found no facet terms")
	}

	cfg := ingest.Config{
		Extractors: sys.CoreExtractors(),
		Resources:  sys.CoreResources(),
		TopK:       60,
		EpochDocs:  13,
		Workers:    4,
	}
	ing, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(toTextDocs(docs[:20]), false); err != nil {
		t.Fatal(err)
	}
	ing.Start()
	for _, d := range toTextDocs(docs[20:]) {
		if err := ing.SubmitWait(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	want := make([]string, len(batch.Facets))
	for i, f := range batch.Facets {
		want[i] = f.Term
	}
	got := ing.FacetTerms()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("live corpus-only ranking (%d terms) != batch (%d terms)\nlive:  %v\nbatch: %v",
			len(got), len(want), got, want)
	}
}

// TestDistctxSnapshotRoundTrip saves a corpus-only build to a snapshot
// and warm-starts from it: the rehydrated interface must answer browse
// queries identically to the cold corpus-only engine.
func TestDistctxSnapshotRoundTrip(t *testing.T) {
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(env, Options{TopK: 60, Resources: []string{"corpus"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		t.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	iface, err := res.BrowseEngine(h)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "corpus_only.fsnp")
	stats := make([]snapshot.FacetStat, len(res.Facets))
	for i, f := range res.Facets {
		stats[i] = snapshot.FacetStat{Term: f.Term, DF: f.DF, DFC: f.DFC, ShiftF: f.ShiftF, ShiftR: f.ShiftR, Score: f.Score}
	}
	if err := snapshot.Save(path, snapshot.Capture(iface, snapshot.Meta{Profile: "SNYT", Seed: 42}, stats), nil); err != nil {
		t.Fatal(err)
	}
	warm, snap, err := snapshot.LoadBrowse(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("saved corpus-only snapshot fails validation: %v", err)
	}

	roots := iface.Children("", browse.Selection{})
	if len(roots) == 0 {
		t.Fatal("corpus-only build has no root facets")
	}
	sels := []browse.Selection{
		{},
		{Terms: []string{roots[0].Term}},
		{Query: "minister"},
	}
	for i, sel := range sels {
		if got, want := warm.Docs(sel), iface.Docs(sel); !reflect.DeepEqual(got, want) {
			t.Errorf("sel%d: warm Docs = %v, cold = %v", i, got, want)
		}
		if got, want := warm.Children("", sel), iface.Children("", sel); !reflect.DeepEqual(got, want) {
			t.Errorf("sel%d: warm root menu = %v, cold = %v", i, got, want)
		}
	}
}
