package facet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// benchTopology stands up an in-process scatter-gather cluster over the
// benchmark interface: n shard servers plus a coordinator.
func benchTopology(b *testing.B, n int) (coordinator *httptest.Server, cleanup func()) {
	b.Helper()
	iface := benchInterface(b)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	ring, err := cluster.NewRing(names, 0)
	if err != nil {
		b.Fatal(err)
	}
	var servers []*httptest.Server
	var peers []cluster.Peer
	for _, name := range names {
		sh, err := cluster.BuildShard(iface, ring, name)
		if err != nil {
			b.Fatal(err)
		}
		srv := serve.New(sh.Interface(), name)
		sh.Register(srv)
		ts := httptest.NewServer(srv)
		servers = append(servers, ts)
		peers = append(peers, cluster.Peer{Name: name, BaseURL: ts.URL})
	}
	coord, err := cluster.NewCoordinator(peers, cluster.Config{Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord)
	servers = append(servers, coordSrv)
	return coordSrv, func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
}

// BenchmarkClusterFanout measures end-to-end scatter-gather latency —
// coordinator HTTP in, N parallel shard sub-queries, count merge, HTTP
// out — at 1, 2, and 4 shards. On a single-machine loopback topology
// wider fan-out mostly adds merge and HTTP overhead; the point of the
// curve is to price that overhead, which is what a deployment trades for
// per-shard corpus capacity. Results land in BENCH_cluster.json.
func BenchmarkClusterFanout(b *testing.B) {
	queriesPerSec := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards_%d", n), func(b *testing.B) {
			coord, cleanup := benchTopology(b, n)
			defer cleanup()
			client := coord.Client()
			url := coord.URL + "/api/v1/facets"
			// One warm-up request primes every shard's query cache, so the
			// loop measures fan-out + merge, not posting-list work.
			if err := benchGet(client, url); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := benchGet(client, url); err != nil {
					b.Fatal(err)
				}
			}
			rate := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "queries/s")
			queriesPerSec[n] = rate
		})
	}
	if err := writeClusterBench(queriesPerSec); err != nil {
		b.Logf("writeClusterBench: %v", err)
	}
}

func benchGet(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return nil
}

// clusterPoint is one fan-out width's measured rate in BENCH_cluster.json.
type clusterPoint struct {
	Shards        int     `json:"shards"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
}

// clusterBench is the BENCH_cluster.json envelope — the same trajectory
// shape as BENCH_pipeline.json and BENCH_serve.json.
type clusterBench struct {
	Benchmark  string         `json:"benchmark"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Points     []clusterPoint `json:"points"`
}

func clusterBenchEnvelope(queriesPerSec map[int]float64) ([]byte, error) {
	widths := make([]int, 0, len(queriesPerSec))
	for n := range queriesPerSec {
		widths = append(widths, n)
	}
	sort.Ints(widths)
	out := clusterBench{Benchmark: "BenchmarkClusterFanout", GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, n := range widths {
		rate := queriesPerSec[n]
		lat := 0.0
		if rate > 0 {
			lat = 1000 / rate
		}
		out.Points = append(out.Points, clusterPoint{Shards: n, QueriesPerSec: rate, MeanLatencyMS: lat})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// writeClusterBench stores the fan-out width → query-rate curve next to
// the package sources.
func writeClusterBench(queriesPerSec map[int]float64) error {
	if len(queriesPerSec) == 0 {
		return nil
	}
	data, err := clusterBenchEnvelope(queriesPerSec)
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_cluster.json", data, 0o644)
}

// TestClusterBenchEnvelope pins the BENCH_cluster.json schema without
// running the benchmark: sorted points, shards/rate/latency fields, and
// the shared trajectory envelope.
func TestClusterBenchEnvelope(t *testing.T) {
	data, err := clusterBenchEnvelope(map[int]float64{4: 250, 1: 1000, 2: 500})
	if err != nil {
		t.Fatal(err)
	}
	var got clusterBench
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != "BenchmarkClusterFanout" || got.GOMAXPROCS < 1 {
		t.Fatalf("envelope header %+v", got)
	}
	if len(got.Points) != 3 || got.Points[0].Shards != 1 || got.Points[2].Shards != 4 {
		t.Fatalf("points not sorted by width: %+v", got.Points)
	}
	if got.Points[0].MeanLatencyMS != 1.0 {
		t.Fatalf("latency derivation wrong: %+v", got.Points[0])
	}
}
