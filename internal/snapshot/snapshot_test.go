package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/browse"
	"repro/internal/hierarchy"
	"repro/internal/obsv"
	"repro/internal/textdb"
)

// buildFixture assembles a small real engine (with dates) to capture.
func buildFixture(t *testing.T) *browse.Interface {
	t.Helper()
	corpus := textdb.NewCorpus()
	day := func(d int) time.Time { return time.Date(2008, 1, d, 0, 0, 0, 0, time.UTC) }
	texts := []string{
		"chirac spoke in paris about the budget",
		"berlin hosted a summit on trade",
		"the election in france drew crowds",
		"a baseball game in boston went long",
		"soccer fans filled the stadium in london",
		"markets rallied while paris stayed quiet",
	}
	for i, s := range texts {
		corpus.Add(&textdb.Document{Title: "t", Source: "s", Date: day(i + 1), Text: s})
	}
	terms := []string{"europe", "france", "germany", "sports", "baseball", "soccer"}
	docTerms := [][]string{
		{"europe", "france"},
		{"europe", "germany"},
		{"europe", "france"},
		{"sports", "baseball"},
		{"sports", "soccer"},
		{"europe", "france"},
	}
	forest, err := hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{MinDF: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := browse.Build(corpus, forest, docTerms)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func captureFixture(t *testing.T) *Snapshot {
	t.Helper()
	iface := buildFixture(t)
	return Capture(iface, Meta{Epoch: 3, Profile: "TEST", Seed: 42, CreatedUnixNano: 1_200_000_000_000_000_000}, []FacetStat{
		{Term: "europe", DF: 4, DFC: 5, ShiftF: 1, ShiftR: -2, Score: 12.5},
		{Term: "sports", DF: 2, DFC: 2, ShiftF: 0, ShiftR: 0, Score: 3.25},
	})
}

func TestEncodeDecodeEncodeByteIdentical(t *testing.T) {
	snap := captureFixture(t)
	first, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Encode(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("encode→decode→encode is not byte-identical")
	}
	if !reflect.DeepEqual(snap.Meta, decoded.Meta) {
		t.Fatalf("meta changed: %+v vs %+v", snap.Meta, decoded.Meta)
	}
	if !reflect.DeepEqual(snap.Facets, decoded.Facets) {
		t.Fatalf("facet stats changed: %+v vs %+v", snap.Facets, decoded.Facets)
	}
	if !reflect.DeepEqual(snap.DocTerms, decoded.DocTerms) {
		t.Fatal("annotation rows changed")
	}
}

func TestRehydratedEngineAnswersIdentically(t *testing.T) {
	iface := buildFixture(t)
	snap := Capture(iface, Meta{Epoch: 7}, nil)
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	re, err := decoded.BrowseInterface()
	if err != nil {
		t.Fatal(err)
	}
	if re.Epoch() != 7 {
		t.Fatalf("rehydrated epoch = %d, want 7", re.Epoch())
	}
	sels := []browse.Selection{
		{},
		{Terms: []string{"europe"}},
		{Terms: []string{"europe", "france"}},
		{Query: "paris"},
		{From: time.Date(2008, 1, 2, 0, 0, 0, 0, time.UTC), To: time.Date(2008, 1, 5, 0, 0, 0, 0, time.UTC)},
	}
	for i, sel := range sels {
		want := iface.Docs(sel)
		got := re.Docs(sel)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("sel%d: rehydrated Docs = %v, original = %v", i, got, want)
		}
	}
	if got, want := re.Children("", browse.Selection{}), iface.Children("", browse.Selection{}); !reflect.DeepEqual(got, want) {
		t.Errorf("root menu differs: %v vs %v", got, want)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data, err := Encode(captureFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("FS")); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short prefix: err = %v, want ErrTruncated", err)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	data, err := Encode(captureFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[4], bad[5] = 0xFF, 0x7F
	var verr *VersionError
	if _, err := Decode(bad); !errors.As(err, &verr) {
		t.Fatalf("err = %v, want *VersionError", err)
	} else if verr.Got != 0x7FFF {
		t.Fatalf("VersionError.Got = %d, want %d", verr.Got, 0x7FFF)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(captureFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the checksum must catch it.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x01
	if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped payload byte: err = %v, want ErrChecksum", err)
	}
	// Trailing garbage changes the observed payload length.
	if _, err := Decode(append(append([]byte(nil), data...), 0xAB)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsEveryTruncation(t *testing.T) {
	data, err := Encode(captureFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(data))
		}
	}
}

func TestVerifyCatchesTamperedPostings(t *testing.T) {
	snap := captureFixture(t)
	if err := snap.Verify(); err != nil {
		t.Fatalf("pristine snapshot failed Verify: %v", err)
	}
	// Rebuild one posting list with an extra document: structurally valid,
	// checksummable, but semantically wrong.
	words := snap.Postings[0].Set.Words()
	words[0] ^= 1 << 0
	tampered, err := bitset.FromWords(words, snap.Postings[0].Set.Len())
	if err != nil {
		t.Fatal(err)
	}
	snap.Postings[0].Set = tampered
	if err := snap.Verify(); err == nil {
		t.Fatal("Verify accepted a tampered posting list")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.fsnp")
	snap := captureFixture(t)
	reg := obsv.NewRegistry()
	if err := Save(path, snap, reg); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Meta, snap.Meta) {
		t.Fatalf("meta changed across save/load: %+v vs %+v", loaded.Meta, snap.Meta)
	}
	if reg.Histogram("snapshot.save_duration").Count() != 1 || reg.Histogram("snapshot.load_duration").Count() != 1 {
		t.Fatal("save/load timings not recorded")
	}
	if reg.Gauge("snapshot.size_bytes").Value() <= 0 {
		t.Fatal("snapshot.size_bytes not recorded")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after save, want just the snapshot", len(entries))
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.fsnp"), nil)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want wrapped os.ErrNotExist", err)
	}
}

func TestLoadBrowseWarmStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.fsnp")
	iface := buildFixture(t)
	if err := Save(path, Capture(iface, Meta{Epoch: 1}, nil), nil); err != nil {
		t.Fatal(err)
	}
	reg := obsv.NewRegistry()
	re, snap, err := LoadBrowse(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || re == nil {
		t.Fatal("LoadBrowse returned nil")
	}
	if got, want := re.MatchCount(browse.Selection{}), iface.MatchCount(browse.Selection{}); got != want {
		t.Fatalf("rehydrated MatchCount = %d, want %d", got, want)
	}
	if reg.Histogram("snapshot.rehydrate_duration").Count() != 1 {
		t.Fatal("rehydrate timing not recorded")
	}
	// LoadBrowse wires the query instruments: a repeated query must hit.
	re.Docs(browse.Selection{Terms: []string{"europe"}})
	re.Docs(browse.Selection{Terms: []string{"europe"}})
	if reg.Counter("browse.query_cache.hits").Value() != 1 {
		t.Fatal("rehydrated interface not wired into the metrics registry")
	}
}

func TestEncodeRejectsRaggedInput(t *testing.T) {
	snap := captureFixture(t)
	snap.DocTerms = snap.DocTerms[:len(snap.DocTerms)-1]
	if _, err := Encode(snap); err == nil {
		t.Fatal("Encode accepted mismatched doc/annotation counts")
	}
}

// TestPeekEpoch: the header-only epoch read agrees with the full decode,
// works through every truncation, and — by design — does NOT checksum,
// so it stays O(header) even on multi-gigabyte snapshots.
func TestPeekEpoch(t *testing.T) {
	snap := captureFixture(t)
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := PeekEpoch(data)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != snap.Meta.Epoch {
		t.Fatalf("PeekEpoch = %d, want %d", epoch, snap.Meta.Epoch)
	}
	// Every strict prefix fails typed, never panics. (A prefix that ends
	// inside the payload still fails: PeekEpoch validates the declared
	// payload length against the input size.)
	for n := 0; n < len(data); n++ {
		if _, err := PeekEpoch(data[:n]); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("prefix %d: err = %v, want ErrTruncated or ErrBadMagic", n, err)
		}
	}
	// Trailing garbage is corruption, same as Decode.
	if _, err := PeekEpoch(append(append([]byte(nil), data...), 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}
	// Bad magic and wrong version are rejected before any payload read.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := PeekEpoch(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v", err)
	}
	// Deliberate non-goal: a flipped PAYLOAD byte beyond the epoch varint
	// is invisible to the peek (no checksum pass); full Decode catches it.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0xFF
	if _, err := PeekEpoch(flipped); err != nil {
		t.Fatalf("peek should skip checksumming, got %v", err)
	}
	if _, err := Decode(flipped); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Decode of flipped payload: err = %v", err)
	}
}

// TestPeekEpochFile: same contract against an on-disk snapshot, reading
// only the probe window rather than the whole file.
func TestPeekEpochFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.fsnp")
	snap := captureFixture(t)
	if err := Save(path, snap, nil); err != nil {
		t.Fatal(err)
	}
	epoch, err := PeekEpochFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != snap.Meta.Epoch {
		t.Fatalf("PeekEpochFile = %d, want %d", epoch, snap.Meta.Epoch)
	}
	if _, err := PeekEpochFile(filepath.Join(dir, "absent.fsnp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v", err)
	}
	// A truncated file fails typed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(dir, "short.fsnp")
	if err := os.WriteFile(short, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekEpochFile(short); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated file: err = %v", err)
	}
}
