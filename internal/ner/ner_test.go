package ner

import (
	"reflect"
	"testing"
)

func TestExtractMultiTokenEntities(t *testing.T) {
	tagger := New()
	got := tagger.Extract("Yesterday Jacques Chirac met Angela Merkel in Berlin.")
	want := []string{"jacques chirac", "angela merkel", "berlin"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSentenceStartSingletonDropped(t *testing.T) {
	tagger := New()
	// "Officials" opens the sentence: capitalization is uninformative and
	// it is not in any gazetteer, so it must be dropped.
	got := tagger.Extract("Officials said the economy improved. Markets rallied.")
	for _, g := range got {
		if g == "officials" || g == "markets" {
			t.Fatalf("sentence-start singleton leaked: %v", got)
		}
	}
}

func TestGazetteerRescuesSentenceStart(t *testing.T) {
	tagger := New(WithGazetteer([]string{"Chirac"}))
	got := tagger.Extract("Chirac arrived early. Nobody else did.")
	found := false
	for _, g := range got {
		if g == "chirac" {
			found = true
		}
	}
	if !found {
		t.Fatalf("gazetteer name not extracted: %v", got)
	}
}

func TestAllCapsKeptAtSentenceStart(t *testing.T) {
	tagger := New()
	got := tagger.Extract("NATO approved the plan without delay.")
	if len(got) != 1 || got[0] != "nato" {
		t.Fatalf("got %v", got)
	}
}

func TestNumberJoinsFollowingName(t *testing.T) {
	tagger := New()
	got := tagger.Extract("Leaders gathered at the 2005 G8 Summit in Scotland.")
	found := false
	for _, g := range got {
		if g == "2005 g8 summit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("numeric prefix not joined: %v", got)
	}
}

func TestBareNumbersNotEntities(t *testing.T) {
	tagger := New()
	got := tagger.Extract("He paid 5000 for the painting in Paris.")
	for _, g := range got {
		if g == "5000" {
			t.Fatalf("bare number extracted: %v", got)
		}
	}
}

func TestCapitalizedStopwordsExcluded(t *testing.T) {
	tagger := New()
	got := tagger.Extract("He said The Hague would host the trial of Omar Hassan.")
	// "The" must not glue into the run; "Hague" alone survives mid-sentence.
	for _, g := range got {
		if g == "the hague" {
			t.Fatalf("capitalized stopword joined a run: %v", got)
		}
	}
	want := map[string]bool{"hague": true, "omar hassan": true}
	for _, g := range got {
		delete(want, g)
	}
	if len(want) != 0 {
		t.Fatalf("missing %v in %v", want, got)
	}
}

func TestDeduplication(t *testing.T) {
	tagger := New()
	got := tagger.Extract("Paris is large. He loves Paris. Paris again.")
	count := 0
	for _, g := range got {
		if g == "paris" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate mentions not collapsed: %v", got)
	}
}

func TestEmptyAndLowercaseText(t *testing.T) {
	tagger := New()
	if got := tagger.Extract(""); got != nil {
		t.Fatalf("empty text yielded %v", got)
	}
	if got := tagger.Extract("nothing capitalized in here at all"); got != nil {
		t.Fatalf("lowercase text yielded %v", got)
	}
}
