package ingest

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// lruCache memoizes Resource.Context lookups with a bounded LRU policy.
// News streams repeat entities heavily (the same politicians, places, and
// organizations recur story after story), so after a short warm-up almost
// every expansion of an incoming document hits the cache and skips the
// resource query entirely — the streaming analogue of the paper's
// Section V-D offline precomputation. Unlike core.ResourceCache it is
// bounded (a long-running server must not grow without limit) and safe
// for concurrent use by the intake worker pool.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key string
	ctx []string
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Lookup returns the context terms for (resource, term), querying the
// resource on a miss. Failures (for resources that also implement
// core.ResourceErr) are reported as empty context; use LookupErr to
// observe them.
func (c *lruCache) Lookup(r core.Resource, term string) []string {
	out, _ := c.LookupErr(context.Background(), core.AsResourceErr(r), term)
	return out
}

// LookupErr returns the context terms for (resource, term), querying the
// fallible resource on a miss. Errors are returned to the caller and
// NEVER cached — a failed expansion is retried on the next lookup, so a
// recovering resource starts answering again immediately. Two workers
// missing the same key concurrently may both query the resource; lookups
// are idempotent, so the duplicate work is harmless and cheaper than
// holding the lock across the query.
func (c *lruCache) LookupErr(ctx context.Context, r core.ResourceErr, term string) ([]string, error) {
	key := r.Name() + "\x00" + term
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		out := el.Value.(*cacheEntry).ctx
		c.mu.Unlock()
		c.hits.Add(1)
		return out, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)

	out, err := r.ContextErr(ctx, term)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok { // a concurrent miss filled it first
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).ctx, nil
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, ctx: out})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
	return out, nil
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns cumulative (hits, misses).
func (c *lruCache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
