package facet

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/browse"
)

// benchInterface builds one serving engine for the query benchmarks.
func benchInterface(b *testing.B) *browse.Interface {
	b.Helper()
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 150, 7)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(env, Options{TopK: 80})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		b.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		b.Fatal(err)
	}
	iface, err := res.BrowseEngine(h)
	if err != nil {
		b.Fatal(err)
	}
	return iface
}

// BenchmarkBrowseQuery measures query serving: cold (cache emptied every
// iteration, so the posting-list intersection runs) and warm (every
// iteration hits the LRU) at 1-facet and 3-facet conjunctions. After the
// sub-benchmarks finish it writes the rates to BENCH_serve.json in the
// same trajectory envelope as BENCH_pipeline.json.
func BenchmarkBrowseQuery(b *testing.B) {
	iface := benchInterface(b)
	roots := iface.Children("", browse.Selection{})
	if len(roots) < 2 {
		b.Fatalf("fixture hierarchy has %d root facets; need 2", len(roots))
	}
	// Three distinct facet terms for the conjunction: the two biggest
	// roots plus the first root's biggest child.
	children := iface.Children(roots[0].Term, browse.Selection{})
	if len(children) == 0 {
		b.Fatalf("root facet %q has no children", roots[0].Term)
	}
	sel1 := browse.Selection{Terms: []string{roots[0].Term}}
	sel3 := browse.Selection{Terms: []string{roots[0].Term, roots[1].Term, children[0].Term}}
	variants := []struct {
		name string
		sel  browse.Selection
		cold bool
	}{
		{"cold_1facet", sel1, true},
		{"cold_3facet", sel3, true},
		{"warm_1facet", sel1, false},
		{"warm_3facet", sel3, false},
	}
	qps := map[string]float64{}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			iface.ResetQueryCache()
			if !v.cold {
				iface.MatchCount(v.sel) // prime the cache
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v.cold {
					iface.ResetQueryCache()
				}
				iface.MatchCount(v.sel)
			}
			rate := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "queries/s")
			qps[v.name] = rate
		})
	}
	if err := writeServeBench(qps); err != nil {
		b.Logf("writeServeBench: %v", err)
	}
}

// servePoint is one variant's measured rate in BENCH_serve.json.
type servePoint struct {
	Variant       string  `json:"variant"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	SpeedupVsCold float64 `json:"speedup_vs_cold"`
}

// serveBench is the BENCH_serve.json envelope — the same trajectory
// shape as BENCH_pipeline.json (benchmark, gomaxprocs, points).
type serveBench struct {
	Benchmark  string       `json:"benchmark"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []servePoint `json:"points"`
}

// writeServeBench stores the cold/warm query-rate curve next to the
// package sources; warm variants report their speedup over the matching
// cold variant.
func writeServeBench(qps map[string]float64) error {
	if len(qps) == 0 {
		return nil
	}
	out := serveBench{Benchmark: "BenchmarkBrowseQuery", GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, name := range []string{"cold_1facet", "cold_3facet", "warm_1facet", "warm_3facet"} {
		rate, ok := qps[name]
		if !ok {
			continue
		}
		cold := qps["cold"+name[4:]]
		sp := 1.0
		if cold > 0 {
			sp = rate / cold
		}
		out.Points = append(out.Points, servePoint{Variant: name, QueriesPerSec: rate, SpeedupVsCold: sp})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644)
}

// TestBenchServeSchema smoke-parses BENCH_serve.json when present (CI
// regenerates it with -benchtime 1x and then runs this), so a format
// drift in the writer fails loudly rather than silently producing an
// unparseable trajectory.
func TestBenchServeSchema(t *testing.T) {
	data, err := os.ReadFile("BENCH_serve.json")
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("BENCH_serve.json not present (run BenchmarkBrowseQuery to produce it)")
		}
		t.Fatal(err)
	}
	var got serveBench
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("BENCH_serve.json does not parse: %v", err)
	}
	if got.Benchmark != "BenchmarkBrowseQuery" {
		t.Fatalf("benchmark = %q, want BenchmarkBrowseQuery", got.Benchmark)
	}
	if got.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs = %d", got.GOMAXPROCS)
	}
	if len(got.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range got.Points {
		if p.Variant == "" || p.QueriesPerSec <= 0 || p.SpeedupVsCold <= 0 {
			t.Fatalf("malformed point %+v", p)
		}
	}
}
