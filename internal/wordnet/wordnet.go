package wordnet

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Lookup returns the synsets containing the lemma (space form), or nil.
func (db *DB) Lookup(lemma string) []*Synset {
	offs := db.index[lemma]
	if offs == nil {
		return nil
	}
	out := make([]*Synset, 0, len(offs))
	for _, off := range offs {
		out = append(out, db.synsets[off])
	}
	return out
}

// Contains reports whether the lemma has at least one noun sense.
func (db *DB) Contains(lemma string) bool {
	_, ok := db.index[lemma]
	return ok
}

// Synset returns the synset at the given data.noun offset.
func (db *DB) Synset(off int64) (*Synset, bool) {
	ss, ok := db.synsets[off]
	return ss, ok
}

// Size returns the number of synsets.
func (db *DB) Size() int { return len(db.synsets) }

// Lemmas returns all indexed lemmas in sorted order.
func (db *DB) Lemmas() []string {
	out := make([]string, 0, len(db.index))
	for l := range db.index {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Hypernyms walks the hypernym closure of the lemma up to depth levels
// (depth 1 = immediate hypernyms) and returns the union of lemma forms,
// nearest level first, without duplicates. A lemma outside the database
// returns nil — this is the low-recall behaviour for named entities that
// the paper reports for the WordNet resource.
func (db *DB) Hypernyms(lemma string, depth int) []string {
	senses := db.index[lemma]
	if senses == nil || depth <= 0 {
		return nil
	}
	var out []string
	seenWord := map[string]bool{lemma: true}
	frontier := senses
	seenSyn := map[int64]bool{}
	for level := 0; level < depth && len(frontier) > 0; level++ {
		var next []int64
		for _, off := range frontier {
			for _, h := range db.synsets[off].Hypernyms {
				if seenSyn[h] {
					continue
				}
				seenSyn[h] = true
				for _, w := range db.synsets[h].Words {
					if !seenWord[w] {
						seenWord[w] = true
						out = append(out, w)
					}
				}
				next = append(next, h)
			}
		}
		frontier = next
	}
	return out
}

// Hyponyms returns the immediate hyponym lemmas of the given lemma.
func (db *DB) Hyponyms(lemma string) []string {
	senses := db.index[lemma]
	if senses == nil {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for _, off := range senses {
		for _, h := range db.synsets[off].Hyponyms {
			for _, w := range db.synsets[h].Words {
				if !seen[w] {
					seen[w] = true
					out = append(out, w)
				}
			}
		}
	}
	return out
}

// FromIsa generates database files from the is-a lexicon and parses them
// back, returning the resulting DB. This is the standard construction used
// across the repository: it guarantees the parser is on every code path.
func FromIsa(isa map[string]string) (*DB, error) {
	idx, data, err := Generate(isa)
	if err != nil {
		return nil, err
	}
	return Parse(bytes.NewReader(idx), bytes.NewReader(data))
}

// WriteFiles writes index.noun and data.noun under dir.
func WriteFiles(dir string, isa map[string]string) error {
	idx, data, err := Generate(isa)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "index.noun"), idx, 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "data.noun"), data, 0o644)
}

// LoadFiles parses index.noun and data.noun from dir.
func LoadFiles(dir string) (*DB, error) {
	idx, err := os.ReadFile(filepath.Join(dir, "index.noun"))
	if err != nil {
		return nil, fmt.Errorf("wordnet: %w", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "data.noun"))
	if err != nil {
		return nil, fmt.Errorf("wordnet: %w", err)
	}
	return Parse(bytes.NewReader(idx), bytes.NewReader(data))
}
