package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	facet "repro"
	"repro/internal/obsv"
	"repro/internal/overload"
	"repro/internal/serve"
)

// overloadReport drives a closed-loop capacity estimate and then
// synthetic open-loop load at 1x/3x/10x of that estimate against an
// in-process server running adaptive admission control. The route under
// test burns a fixed synthetic service cost per request, so capacity is
// known by construction (limit / cost) and the report shows whether the
// limiter holds it: goodput should stay near capacity at every
// multiplier while the excess is shed as well-formed 429/503 responses
// and the latency of ADMITTED requests stays bounded — the defining
// property of admission control (without it, 10x offered load drags
// every response down together).
func overloadReport(w io.Writer, seed uint64) error {
	const (
		serviceCost = 10 * time.Millisecond // synthetic per-request work
		initLimit   = 4
		maxLimit    = 8
		queueLen    = 8
		phaseDur    = 800 * time.Millisecond
		budget      = "250ms" // X-Deadline-Budget on every request
	)

	// A real serving stack, not a mock: corpus -> pipeline -> browse
	// engine -> serve.Server, with a deliberately small read limit so the
	// harness saturates at a load a laptop can generate.
	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: seed})
	if err != nil {
		return err
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 120, seed+1)
	if err != nil {
		return err
	}
	sys, err := facet.NewSystem(env, facet.Options{TopK: 60})
	if err != nil {
		return err
	}
	for _, d := range docs {
		sys.Add(d)
	}
	res, err := sys.ExtractFacets()
	if err != nil {
		return err
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		return err
	}
	iface, err := res.BrowseEngine(h)
	if err != nil {
		return err
	}
	reg := obsv.NewRegistry()
	gov := overload.NewGovernor(overload.GovernorConfig{
		Read:    overload.Config{InitialLimit: initLimit, MaxLimit: maxLimit, Queue: queueLen},
		Metrics: reg,
	})
	srv := serve.New(iface, "overload harness", serve.WithMetrics(reg), serve.WithOverload(gov))
	srv.Handle("GET", "work", "work", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(serviceCost) // the synthetic service cost, inside admission
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})

	do := func(withBudget bool) (code int, latency time.Duration) {
		req := httptest.NewRequest(http.MethodGet, "/api/v1/work", nil)
		if withBudget {
			req.Header.Set(overload.BudgetHeader, budget)
		}
		rec := httptest.NewRecorder()
		start := time.Now()
		srv.ServeHTTP(rec, req)
		return rec.Code, time.Since(start)
	}

	// Closed-loop calibration: initLimit workers issuing back-to-back
	// requests never overrun the initial limit, so the measured
	// throughput IS the un-shed capacity at that limit.
	const calN = 200
	var wg sync.WaitGroup
	calStart := time.Now()
	for i := 0; i < initLimit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < calN/initLimit; j++ {
				do(false)
			}
		}()
	}
	wg.Wait()
	capacity := float64(calN) / time.Since(calStart).Seconds()
	fmt.Fprintf(w, "route: GET /api/v1/work, synthetic service cost %v\n", serviceCost)
	fmt.Fprintf(w, "admission: class=read InitialLimit=%d MaxLimit=%d Queue=%d, budget header %s\n",
		initLimit, maxLimit, queueLen, budget)
	fmt.Fprintf(w, "calibrated capacity (closed loop, %d workers): %.0f req/s\n\n", initLimit, capacity)

	type phase struct {
		mult              float64
		offered, admitted int
		shed, other       int
		goodput           float64
		p50, p99          time.Duration
		limit             int64
	}
	runPhase := func(mult float64) phase {
		rate := capacity * mult
		n := int(rate * phaseDur.Seconds())
		interval := time.Duration(float64(time.Second) / rate)
		var mu sync.Mutex
		var lat []time.Duration
		p := phase{mult: mult, offered: n}
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < n; i++ {
			// Open-loop pacing off the phase start: a slow sleep tick never
			// lowers the offered rate, it just bursts the backlog.
			if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				code, el := do(true)
				mu.Lock()
				defer mu.Unlock()
				switch code {
				case http.StatusOK:
					p.admitted++
					lat = append(lat, el)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					p.shed++
				default:
					p.other++
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		p.goodput = float64(p.admitted) / elapsed.Seconds()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		if len(lat) > 0 {
			p.p50 = lat[len(lat)/2]
			p.p99 = lat[len(lat)*99/100]
		}
		p.limit = reg.Snapshot().Gauges["overload.read.limit"]
		return p
	}

	phases := []phase{}
	for _, mult := range []float64{1, 3, 10} {
		phases = append(phases, runPhase(mult))
	}

	fmt.Fprintf(w, "%-5s  %8s  %9s  %6s  %6s  %10s  %9s  %9s  %6s\n",
		"load", "offered", "admitted", "shed", "other", "goodput/s", "p50", "p99", "limit")
	for _, p := range phases {
		fmt.Fprintf(w, "%3.0fx  %8d  %9d  %6d  %6d  %10.0f  %9v  %9v  %6d\n",
			p.mult, p.offered, p.admitted, p.shed, p.other, p.goodput,
			p.p50.Round(100*time.Microsecond), p.p99.Round(100*time.Microsecond), p.limit)
	}

	snap := reg.Snapshot()
	fmt.Fprintf(w, "\ngovernor counters: admitted=%d shed=%d queued=%d (final limit %d, inflight %d)\n",
		snap.Counters["overload.read.admitted"], snap.Counters["overload.read.shed"],
		snap.Counters["overload.read.queued"], snap.Gauges["overload.read.limit"],
		snap.Gauges["overload.read.inflight"])
	fmt.Fprintln(w, "\ngoodput/s: admitted requests per second — should hold near calibrated capacity at")
	fmt.Fprintln(w, "every multiplier; p50/p99 are latencies of ADMITTED requests only and stay bounded")
	fmt.Fprintln(w, "because excess load is shed at the door (429/503 + Retry-After) instead of queuing.")
	g1, g10 := phases[0].goodput, phases[2].goodput
	if g1 > 0 {
		fmt.Fprintf(w, "goodput at 10x vs 1x: %.0f%%\n", 100*g10/g1)
	}
	return nil
}
