package eval

import (
	"repro/internal/hierarchy"
	"repro/internal/mturk"
)

// ForestScore is the ground-truth quality profile of one built hierarchy.
// Unlike JudgePrecision (which simulates noisy human judges, as the
// paper's Section V-C does), these numbers come straight from the
// knowledge base the corpus was generated from, so they are exact and
// comparable across builders.
type ForestScore struct {
	Builder string

	// Shape.
	Nodes     int     // terms placed in the forest
	Roots     int     // top-level trees
	MaxDepth  int     // deepest node (roots are depth 0)
	MeanDepth float64 // average node depth
	Branching float64 // mean children per internal node

	// Quality against the ground-truth ontology.
	// Precision: of the attached (non-root) nodes, the fraction whose
	// parent is KB-consistent (mturk.Pool.PlacedOK).
	Precision float64
	// Recall: of the ground-truth ancestor pairs among the input terms
	// (mturk.Pool.FacetAncestor), the fraction realized as ancestor
	// relations in the forest.
	Recall float64
	// OrphanRate: input terms that ended up unplaced — absent from the
	// forest or parked as childless roots — over all distinct input terms.
	OrphanRate float64

	// Millis is the builder's wall-clock, filled in by the bake-off.
	Millis float64
}

// ScoreForest profiles a built forest against the pool's ground truth.
// inputTerms is the term vocabulary the builder was asked to organize
// (used for recall and orphan accounting; duplicates are ignored).
func ScoreForest(pool *mturk.Pool, forest *hierarchy.Forest, inputTerms []string) ForestScore {
	var sc ForestScore

	// Shape + placement precision in one walk.
	var depthSum, internal, childSum, attached, wellPlaced int
	forest.Walk(func(n *hierarchy.Node, d int) {
		sc.Nodes++
		depthSum += d
		if d > sc.MaxDepth {
			sc.MaxDepth = d
		}
		if len(n.Children) > 0 {
			internal++
			childSum += len(n.Children)
		}
		if n.Parent != nil {
			attached++
			if pool.PlacedOK(n) {
				wellPlaced++
			}
		}
	})
	sc.Roots = len(forest.Roots)
	if sc.Nodes > 0 {
		sc.MeanDepth = float64(depthSum) / float64(sc.Nodes)
	}
	if internal > 0 {
		sc.Branching = float64(childSum) / float64(internal)
	}
	if attached > 0 {
		sc.Precision = float64(wellPlaced) / float64(attached)
	}

	uniq := make([]string, 0, len(inputTerms))
	seen := map[string]bool{}
	for _, t := range inputTerms {
		if !seen[t] {
			seen[t] = true
			uniq = append(uniq, t)
		}
	}

	// Orphans: an input term contributes nothing to browsing when the
	// forest dropped it or left it as a childless root.
	if len(uniq) > 0 {
		orphans := 0
		for _, t := range uniq {
			n, ok := forest.Find(t)
			if !ok || (n.Parent == nil && len(n.Children) == 0) {
				orphans++
			}
		}
		sc.OrphanRate = float64(orphans) / float64(len(uniq))
	}

	// Recall over ground-truth ancestor pairs among the input terms.
	gt, recovered := 0, 0
	for _, anc := range uniq {
		for _, desc := range uniq {
			if anc == desc || !pool.FacetAncestor(anc, desc) {
				continue
			}
			gt++
			a, okA := forest.Find(anc)
			d, okD := forest.Find(desc)
			if !okA || !okD {
				continue
			}
			for cur := d.Parent; cur != nil; cur = cur.Parent {
				if cur == a {
					recovered++
					break
				}
			}
		}
	}
	if gt > 0 {
		sc.Recall = float64(recovered) / float64(gt)
	}
	return sc
}
