package textdb

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func snapDoc(i int) *Document {
	return &Document{
		Title:  fmt.Sprintf("title %d", i),
		Source: "wire",
		Date:   time.Date(2006, 8, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, i),
		Text:   fmt.Sprintf("body text number %d with shared words", i),
	}
}

// TestCorpusSnapshotIsolation: a snapshot is frozen at its length while
// the original keeps growing, and both share the dictionary.
func TestCorpusSnapshotIsolation(t *testing.T) {
	c := NewCorpus()
	c.Add(snapDoc(0))
	c.Add(snapDoc(1))
	snap := c.Snapshot()
	c.Add(snapDoc(2))

	if snap.Len() != 2 {
		t.Fatalf("snapshot grew: %d docs", snap.Len())
	}
	if c.Len() != 3 {
		t.Fatalf("original = %d docs", c.Len())
	}
	if snap.Dict() != c.Dict() {
		t.Fatal("snapshot does not share the dictionary")
	}
	if snap.Doc(1) != c.Doc(1) {
		t.Fatal("snapshot copied documents instead of sharing them")
	}
	// Term sets were materialized at snapshot time.
	if len(snap.DocTerms(0)) == 0 || len(snap.DocTerms(1)) == 0 {
		t.Fatal("snapshot term sets empty")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCorpusSnapshotConcurrentReads: readers over a snapshot race against
// writers growing the original — the exact serve-while-ingest shape. Run
// under -race this guards the copy-on-write contract.
func TestCorpusSnapshotConcurrentReads(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 50; i++ {
		c.Add(snapDoc(i))
	}
	snap := c.Snapshot()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer keeps growing the original
		defer wg.Done()
		for i := 50; i < 200; i++ {
			c.Add(snapDoc(i))
			c.DocTerms(DocID(i))
		}
	}()
	go func() { // reader works the frozen snapshot
		defer wg.Done()
		for pass := 0; pass < 20; pass++ {
			for i := 0; i < snap.Len(); i++ {
				if len(snap.DocTerms(DocID(i))) == 0 {
					t.Error("empty term set in snapshot")
					return
				}
				_ = snap.Dict().String(snap.DocTerms(DocID(i))[0])
			}
		}
	}()
	wg.Wait()
}

func TestDFTableClone(t *testing.T) {
	c := NewCorpus()
	c.Add(snapDoc(0))
	c.Add(snapDoc(1))
	tbl := NewDFTable(c.Dict())
	tbl.AddDoc(c.DocTerms(0))
	clone := tbl.Clone()
	tbl.AddDoc(c.DocTerms(1))

	if clone.NumDocs() != 1 || tbl.NumDocs() != 2 {
		t.Fatalf("clone docs=%d original docs=%d, want 1/2", clone.NumDocs(), tbl.NumDocs())
	}
	shared := c.Dict().Lookup("shared words")
	if shared == NoTerm {
		t.Fatal("fixture term missing")
	}
	if clone.DF(shared) != 1 || tbl.DF(shared) != 2 {
		t.Fatalf("clone df=%d original df=%d, want 1/2", clone.DF(shared), tbl.DF(shared))
	}
	if clone.Dict() != tbl.Dict() {
		t.Fatal("clone does not share the dictionary")
	}
}

// TestDictionaryConcurrent interns overlapping term sets from many
// goroutines while readers resolve them; under -race this verifies the
// dictionary's locking, and functionally that every term keeps exactly
// one stable ID.
func TestDictionaryConcurrent(t *testing.T) {
	d := NewDictionary()
	const goroutines = 8
	const terms = 300
	ids := make([][]TermID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]TermID, terms)
			for i := 0; i < terms; i++ {
				ids[g][i] = d.Intern(fmt.Sprintf("term-%d", i))
				if got := d.String(ids[g][i]); got != fmt.Sprintf("term-%d", i) {
					t.Errorf("String(%d) = %q", ids[g][i], got)
					return
				}
				_ = d.Lookup("term-0")
				_ = d.Len()
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < terms; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("term-%d interned as both %d and %d", i, ids[0][i], ids[g][i])
			}
		}
	}
	if d.Len() != terms {
		t.Fatalf("dictionary holds %d terms, want %d", d.Len(), terms)
	}
}
