// Package xrand provides a small, deterministic pseudo-random number
// generator used throughout the repository. Every stochastic component
// (corpus generation, annotator simulation, user simulation) derives its
// randomness from an explicit seed so that experiments are byte-for-byte
// reproducible across runs and platforms.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014): tiny state,
// excellent statistical quality for simulation purposes, and trivially
// splittable into independent sub-streams, which we use to give each
// document, annotator, and user its own stream regardless of evaluation
// order.
package xrand

import "math"

// RNG is a deterministic splitmix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New.
type RNG struct {
	seed  uint64 // immutable; used to derive order-independent sub-streams
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{seed: seed, state: seed}
}

// NewString returns a generator seeded from an arbitrary label. Use it to
// derive named, order-independent sub-streams ("annotator-3", "doc-17").
func NewString(label string) *RNG {
	return New(HashString(label))
}

// HashString hashes a string to a 64-bit seed using FNV-1a followed by a
// splitmix64 finalizer to spread low-entropy inputs.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix(h)
}

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sub returns an independent generator derived from this generator's seed
// and the given label. Calling Sub does not advance the parent stream, so
// sub-stream creation order never affects results.
func (r *RNG) Sub(label string) *RNG {
	return New(mix(r.seed ^ HashString(label)))
}

// SubInt is Sub keyed by an integer (e.g. a document index).
func (r *RNG) SubInt(label string, n int) *RNG {
	return New(mix(mix(r.seed^HashString(label)) + uint64(n)*0x9e3779b97f4a7c15))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box–Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Poisson returns a Poisson-distributed value with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := int(math.Round(r.Norm(mean, math.Sqrt(mean))))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles a slice of ints in place (Fisher–Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice, mirroring Intn.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// PickN returns n distinct uniformly chosen elements of items (or all of
// them when n >= len(items)), in random order.
func PickN[T any](r *RNG, items []T, n int) []T {
	if n >= len(items) {
		out := make([]T, len(items))
		copy(out, items)
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	idx := r.Perm(len(items))[:n]
	out := make([]T, n)
	for i, j := range idx {
		out[i] = items[j]
	}
	return out
}

// Weighted picks an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero.
// It panics if no weight is positive.
func (r *RNG) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: Weighted called with no positive weight")
	}
	target := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("unreachable")
}

// Zipf samples ranks from a Zipf–Mandelbrot distribution over [0, n) with
// exponent s (s > 0): P(k) ∝ 1/(k+1)^s. Term-frequency distributions in
// text follow this law (Zipf 1949), and the paper's Step 3 explicitly
// reasons about it, so the corpus generator uses it for word selection.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s, drawing
// randomness from r.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf called with n <= 0")
	}
	cdf := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Next returns the next sampled rank in [0, n).
func (z *Zipf) Next() int {
	target := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }
