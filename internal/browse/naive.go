package browse

import (
	"sort"

	"repro/internal/hierarchy"
	"repro/internal/lang"
	"repro/internal/textdb"
)

// Naive reference implementations: answer selections by scanning every
// document, using neither the posting lists, the inverted index, nor the
// query cache. The differential tests assert that the indexed + cached
// fast paths return byte-identical answers; nothing in the serving path
// calls these.

// ScanDocs returns the documents matching the selection by full scan,
// in ascending ID order (the same order Docs produces).
func (b *Interface) ScanDocs(sel Selection) []textdb.DocID {
	var out []textdb.DocID
	b.scan(sel, func(d int) { out = append(out, textdb.DocID(d)) })
	return out
}

// ScanMatchCount returns |ScanDocs(sel)| without materializing the slice.
func (b *Interface) ScanMatchCount(sel Selection) int {
	n := 0
	b.scan(sel, func(int) { n++ })
	return n
}

// ScanChildren is the full-scan equivalent of Children: child facet
// terms of parent ("" for roots) with counts restricted to the
// selection, zero counts omitted, sorted by count descending then term.
func (b *Interface) ScanChildren(parent string, sel Selection) []FacetCount {
	var nodes []*hierarchy.Node
	if parent == "" {
		nodes = b.forest.Roots
	} else if n, ok := b.forest.Find(parent); ok {
		nodes = n.Children
	} else {
		return nil
	}
	matched := map[int]bool{}
	b.scan(sel, func(d int) { matched[d] = true })
	var out []FacetCount
	for _, n := range nodes {
		sub := subtreeTerms(n)
		c := 0
		for d := range matched {
			if docHasAny(b.docTerms[d], sub) {
				c++
			}
		}
		if c > 0 {
			out = append(out, FacetCount{Term: n.Term, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// scan walks every document in ID order and calls fn for each one
// matching the selection.
func (b *Interface) scan(sel Selection, fn func(d int)) {
	// Facet terms: a document matches term t when it is annotated with t
	// or any descendant of t (roll-up semantics). An unknown term matches
	// nothing.
	subtrees := make([]map[string]bool, 0, len(sel.Terms))
	for _, t := range sel.Terms {
		n, ok := b.forest.Find(t)
		if !ok {
			return
		}
		subtrees = append(subtrees, subtreeTerms(n))
	}
	// Keyword query: conjunctive containment of the normalized query
	// tokens, mirroring the index's tokenization (stopwords and
	// single-character tokens are not indexed; title tokens count).
	var qtoks []string
	if sel.Query != "" {
		seen := map[string]bool{}
		for _, tok := range lang.Tokenize(sel.Query) {
			if lang.IsStopword(tok.Norm) || len(tok.Norm) < 2 {
				continue
			}
			if !seen[tok.Norm] {
				seen[tok.Norm] = true
				qtoks = append(qtoks, tok.Norm)
			}
		}
		if len(qtoks) == 0 {
			// The indexed path returns no documents for a query that
			// normalizes to nothing (SearchAll yields no query IDs).
			return
		}
	}
	for d := 0; d < b.corpus.Len(); d++ {
		doc := b.corpus.Doc(textdb.DocID(d))
		ok := true
		for _, sub := range subtrees {
			if !docHasAny(b.docTerms[d], sub) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if len(qtoks) > 0 && !docContainsAll(doc, qtoks) {
			continue
		}
		if !sel.From.IsZero() && doc.Date.Before(sel.From) {
			continue
		}
		if !sel.To.IsZero() && !doc.Date.Before(sel.To) {
			continue
		}
		fn(d)
	}
}

// subtreeTerms collects the terms of a node and all its descendants.
func subtreeTerms(n *hierarchy.Node) map[string]bool {
	out := map[string]bool{}
	var rec func(m *hierarchy.Node)
	rec = func(m *hierarchy.Node) {
		out[m.Term] = true
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return out
}

// docHasAny reports whether any of the document's annotation terms falls
// in the set.
func docHasAny(terms []string, set map[string]bool) bool {
	for _, t := range terms {
		if set[t] {
			return true
		}
	}
	return false
}

// docContainsAll reports whether the document's text or title contains
// every query token, under the index's normalization.
func docContainsAll(doc *textdb.Document, qtoks []string) bool {
	present := map[string]bool{}
	for _, tok := range lang.Tokenize(doc.Text) {
		if lang.IsStopword(tok.Norm) || len(tok.Norm) < 2 {
			continue
		}
		present[tok.Norm] = true
	}
	for _, tok := range lang.Tokenize(doc.Title) {
		if lang.IsStopword(tok.Norm) || len(tok.Norm) < 2 {
			continue
		}
		present[tok.Norm] = true
	}
	for _, q := range qtoks {
		if !present[q] {
			return false
		}
	}
	return true
}
