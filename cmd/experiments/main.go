// Command experiments regenerates every table and figure of the paper's
// evaluation (Section V) plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	experiments [-run all|table1|figure4|figure5|table2..table7|sensitivity|efficiency|userstudy|ablation|stagereport|hierarchy|hierarchybakeoff|faultreport|overloadreport|resourceablation]
//	            [-full] [-docs N] [-seed N] [-workers N] [-hierarchy NAME] [-resources ...] [-out FILE]
//
// By default the datasets are scaled down (SNYT 1000 / SNB 3000 / MNYT
// 5000 documents) so a full regeneration finishes in minutes on a laptop;
// -full uses the paper's sizes (1000 / 17000 / 30000), and -docs N forces
// every profile to N documents (the CI smoke runs use a small N).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	facet "repro"
	"repro/internal/eval"
	"repro/internal/newsgen"
	"repro/internal/obsv"
)

func main() {
	log.SetFlags(0)
	run := flag.String("run", "all", "experiment to run (all, table1, figure4, figure5, table2..table7, sensitivity, efficiency, userstudy, ablation, stagereport, hierarchy, hierarchybakeoff, faultreport, overloadreport, resourceablation)")
	full := flag.Bool("full", false, "use the paper's full dataset sizes (17k/30k documents)")
	docs := flag.Int("docs", 0, "force every dataset profile to this many documents (0 = profile defaults; used by the CI bake-off smoke)")
	seed := flag.Uint64("seed", 42, "master seed")
	workers := flag.Int("workers", 0, "pipeline worker pool size for the stage report and hierarchy builders (0 = GOMAXPROCS)")
	hierarchyName := flag.String("hierarchy", "", "hierarchy builder for the stage report (registry name; \"\" = subsumption)")
	bench := flag.String("hierarchy-bench", "BENCH_hierarchy.json", "where hierarchybakeoff writes its bench trajectory (\"\" disables)")
	ablationBench := flag.String("ablation-bench", "BENCH_ablation.json", "where resourceablation writes its bench trajectory (\"\" disables)")
	resources := flag.String("resources", "", "context resource subset for the stage report (comma-separated; \"corpus\" selects the corpus-only distributional mode)")
	out := flag.String("out", "", "also write output to this file")
	csvDir := flag.String("csvdir", "", "also write each recall/precision table as CSV into this directory")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	cfg := runConfig{
		which:         *run,
		full:          *full,
		docs:          *docs,
		seed:          *seed,
		workers:       *workers,
		hierarchy:     *hierarchyName,
		benchPath:     *bench,
		ablationBench: *ablationBench,
		resources:     *resources,
		csvDir:        *csvDir,
	}
	if err := runAll(w, cfg); err != nil {
		log.Fatalf("experiments: %v", err)
	}
}

// runConfig carries the command-line knobs into runAll.
type runConfig struct {
	which         string
	full          bool
	docs          int
	seed          uint64
	workers       int
	hierarchy     string
	benchPath     string
	ablationBench string
	resources     string
	csvDir        string
}

// writeCSV stores a table as CSV under dir (no-op when dir is empty).
func writeCSV(dir, name string, table *eval.Table) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(table.CSV()), 0o644)
}

func runAll(w io.Writer, cfg runConfig) error {
	which, seed, workers, csvDir := cfg.which, cfg.seed, cfg.workers, cfg.csvDir
	start := time.Now()
	lab, err := eval.NewLab(seed)
	if err != nil {
		return err
	}
	snytDocs, snbDocs, mnytDocs := 1000, 3000, 5000
	if cfg.full {
		snbDocs, mnytDocs = 17000, 30000
	}
	if cfg.docs > 0 {
		snytDocs, snbDocs, mnytDocs = cfg.docs, cfg.docs, cfg.docs
	}
	profiles := map[string]newsgen.Profile{
		"SNYT": newsgen.SNYT.WithDocs(snytDocs),
		"SNB":  newsgen.SNB.WithDocs(snbDocs),
		"MNYT": newsgen.MNYT.WithDocs(mnytDocs),
	}
	runs := map[string]*eval.DataRun{}
	runFor := func(name string) (*eval.DataRun, error) {
		if dr, ok := runs[name]; ok {
			return dr, nil
		}
		dr, err := lab.NewDataRun(profiles[name], seed+uint64(len(name)))
		if err != nil {
			return nil, err
		}
		runs[name] = dr
		return dr, nil
	}
	want := func(name string) bool { return which == "all" || which == name }

	section := func(title string) {
		fmt.Fprintf(w, "\n%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	}

	if want("table1") {
		dr, err := runFor("SNYT")
		if err != nil {
			return err
		}
		section("Table I — Facets identified by annotators (pilot study, SNYT)")
		fmt.Fprintln(w, eval.PilotStudy(dr, 1000, 9, 2).Format())
	}
	if want("figure4") {
		dr, err := runFor("SNYT")
		if err != nil {
			return err
		}
		section("Figure 4 — Most frequent annotator facet terms (>=2 agreement)")
		gt := dr.Pool.BuildGroundTruth(dr.DS, dr.SampleIndices(1000))
		fmt.Fprintln(w, strings.Join(eval.Figure4(gt, 80), ", "))
	}
	if want("figure5") {
		dr, err := runFor("SNYT")
		if err != nil {
			return err
		}
		section("Figure 5 — Subsumption baseline WITHOUT expansion (generic terms)")
		terms, _, err := eval.Figure5(dr, 25)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, strings.Join(terms, ", "))
	}
	recallTables := []struct{ exp, ds string }{
		{"table2", "SNYT"}, {"table3", "SNB"}, {"table4", "MNYT"},
	}
	for _, rt := range recallTables {
		if !want(rt.exp) {
			continue
		}
		dr, err := runFor(rt.ds)
		if err != nil {
			return err
		}
		section(fmt.Sprintf("%s — Recall (%s)", strings.Title(rt.exp), rt.ds))
		table, gt := eval.RecallTable(dr, eval.RecallConfig{})
		fmt.Fprintln(w, table.Format())
		if err := writeCSV(csvDir, rt.exp, table); err != nil {
			return err
		}
		fmt.Fprintf(w, "(ground truth: %d validated facet terms)\n", len(gt.Terms))
		if rt.ds == "SNYT" {
			fmt.Fprintf(w, "\nRecall by facet dimension (All x All):\n%s", eval.RecallByDimension(dr, gt).Format())
		}
	}
	precTables := []struct{ exp, ds string }{
		{"table5", "SNYT"}, {"table6", "SNB"}, {"table7", "MNYT"},
	}
	for _, pt := range precTables {
		if !want(pt.exp) {
			continue
		}
		dr, err := runFor(pt.ds)
		if err != nil {
			return err
		}
		section(fmt.Sprintf("%s — Precision (%s)", strings.Title(pt.exp), pt.ds))
		table, err := eval.PrecisionTable(dr, eval.PrecisionConfig{})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, table.Format())
		if err := writeCSV(csvDir, pt.exp, table); err != nil {
			return err
		}
	}
	if want("sensitivity") {
		section("Sensitivity — facet terms found vs. sample size (Section V-B)")
		for _, name := range []string{"SNYT", "SNB", "MNYT"} {
			dr, err := runFor(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s:\n%s\n", name, eval.FormatSensitivity(eval.Sensitivity(dr, nil)))
		}
	}
	if want("efficiency") {
		dr, err := runFor("SNYT")
		if err != nil {
			return err
		}
		section("Efficiency — per-stage costs (Section V-D)")
		rep, err := eval.Efficiency(dr, 200)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, rep.Format())
	}
	if want("userstudy") {
		dr, err := runFor("SNYT")
		if err != nil {
			return err
		}
		section("User study — faceted vs. keyword interaction (Section V-E)")
		res, err := eval.UserStudy(dr, 150, seed+999)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Format())
	}
	if want("ablation") {
		dr, err := runFor("SNYT")
		if err != nil {
			return err
		}
		section("Ablation — scoring statistic and shift gating (Section IV-C)")
		res, err := eval.Ablation(dr, 100)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Format())
	}
	if want("stagereport") {
		section("Stage report — runtime per-stage timing (StageReport)")
		if err := stageReport(w, seed, workers, cfg.hierarchy, cfg.resources); err != nil {
			return err
		}
	}
	if want("hierarchy") {
		dr, err := runFor("SNYT")
		if err != nil {
			return err
		}
		section("Hierarchy construction comparison (Section VI/VII conjecture)")
		res, err := eval.CompareHierarchies(dr, 100)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Format())
	}
	if want("hierarchybakeoff") {
		dr, err := runFor("SNYT")
		if err != nil {
			return err
		}
		section("Hierarchy bake-off — every registered builder vs. ground truth")
		bk, err := eval.HierarchyBakeoff(context.Background(), dr, eval.BakeoffOptions{TopK: 100, Workers: workers})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, bk.Format())
		if cfg.benchPath != "" {
			data, err := json.MarshalIndent(bk.Bench(), "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(cfg.benchPath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "(bench trajectory written to %s)\n", cfg.benchPath)
		}
	}
	if want("resourceablation") {
		dr, err := runFor("SNYT")
		if err != nil {
			return err
		}
		section("Resource ablation — what each context resource buys (corpus-only vs. external)")
		res, err := eval.ResourceAblation(context.Background(), dr, 100, workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, res.Format())
		if cfg.ablationBench != "" {
			data, err := json.MarshalIndent(res.Bench(), "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(cfg.ablationBench, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "(bench trajectory written to %s)\n", cfg.ablationBench)
		}
	}
	if want("faultreport") {
		section("Fault report — injected error rate vs. output stability and retry cost")
		if err := faultReport(w, seed, workers); err != nil {
			return err
		}
	}
	if want("overloadreport") {
		section("Overload report — goodput and admitted-request latency under 1x/3x/10x load")
		if err := overloadReport(w, seed); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "\nTotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// stageReport runs the public facade end to end with latency charging on
// and prints Result.StageReport() — the same per-stage numbers any
// library user gets — next to the virtual network time the environment
// accumulated, the runtime complement to the Section V-D cost model. The
// pipeline runs twice, sequentially (Workers=1) and sharded across the
// requested worker pool, and the report includes the per-stage parallel
// speedup; the two runs produce identical facets by construction.
func stageReport(w io.Writer, seed uint64, workers int, hierarchyBuilder, resources string) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: seed, ChargeLatency: true})
	if err != nil {
		return err
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 300, seed+1)
	if err != nil {
		return err
	}
	runOnce := func(workers int) ([]facet.StageTiming, *obsv.Registry, error) {
		opts := facet.Options{Workers: workers, HierarchyBuilder: hierarchyBuilder}
		if resources != "" {
			opts.Resources = strings.Split(resources, ",")
		}
		sys, err := facet.NewSystem(env, opts)
		if err != nil {
			return nil, nil, err
		}
		reg := obsv.NewRegistry()
		sys.SetMetrics(reg)
		for _, d := range docs {
			sys.Add(d)
		}
		res, err := sys.ExtractFacets()
		if err != nil {
			return nil, nil, err
		}
		if _, err := res.BuildHierarchy(); err != nil {
			return nil, nil, err
		}
		return res.StageReport(), reg, nil
	}
	seq, _, err := runOnce(1)
	if err != nil {
		return err
	}
	par, parReg, err := runOnce(workers)
	if err != nil {
		return err
	}
	samples := make([]obsv.StageSample, 0, len(seq))
	for _, st := range seq {
		samples = append(samples, obsv.StageSample{Stage: st.Stage, Calls: st.Calls, Total: st.Total})
	}
	fmt.Fprintf(w, "sequential (workers=1):\n%s\n", obsv.FormatReport(samples))
	parByStage := make(map[string]time.Duration, len(par))
	for _, st := range par {
		parByStage[st.Stage] = st.Total
	}
	fmt.Fprintf(w, "parallel speedup (workers=%d):\n", workers)
	fmt.Fprintf(w, "%-20s  %12s  %12s  %8s\n", "stage", "sequential", "parallel", "speedup")
	var seqTotal, parTotal time.Duration
	for _, st := range seq {
		pt := parByStage[st.Stage]
		seqTotal += st.Total
		parTotal += pt
		speedup := "-"
		if pt > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(st.Total)/float64(pt))
		}
		fmt.Fprintf(w, "%-20s  %12s  %12s  %8s\n",
			st.Stage, st.Total.Round(time.Microsecond), pt.Round(time.Microsecond), speedup)
	}
	if parTotal > 0 {
		fmt.Fprintf(w, "%-20s  %12s  %12s  %7.2fx\n",
			"total", seqTotal.Round(time.Microsecond), parTotal.Round(time.Microsecond),
			float64(seqTotal)/float64(parTotal))
	}
	// Pair-pruning counters from the hierarchy sweep: the posting-list
	// candidate generator evaluates only co-occurring pairs, so on a
	// sparse corpus `evaluated` sits far below the all-pairs count the
	// dense formulation would sweep.
	snap := parReg.Snapshot()
	if n := snap.Gauges["hierarchy.sweep.terms"]; n > 0 {
		candidate := snap.Counters["hierarchy.pairs.candidate"]
		evaluated := snap.Counters["hierarchy.pairs.evaluated"]
		skipped := snap.Counters["hierarchy.pairs.skipped"]
		allPairs := n * (n - 1) / 2
		fmt.Fprintf(w, "\nhierarchy sweep pruning (%d terms, all-pairs baseline %d):\n", n, allPairs)
		fmt.Fprintf(w, "  hierarchy.pairs.candidate  %8d\n", candidate)
		fmt.Fprintf(w, "  hierarchy.pairs.evaluated  %8d\n", evaluated)
		fmt.Fprintf(w, "  hierarchy.pairs.skipped    %8d\n", skipped)
		if evaluated > 0 {
			fmt.Fprintf(w, "  reduction vs. all-pairs    %7.1fx\n", float64(allPairs)/float64(evaluated))
		}
	}

	fmt.Fprintf(w, "\nvirtual network time charged by the simulated services: %v\n",
		env.VirtualNetworkTime().Round(time.Microsecond))
	fmt.Fprintln(w, "(wall-clock stage totals above exclude virtual latency — the clock is charged, not slept)")
	return nil
}
