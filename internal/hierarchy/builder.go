package hierarchy

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/obsv"
)

// Builder constructs a facet hierarchy over extracted terms. terms is the
// ranked facet vocabulary; docTerms lists, for every document, which of
// the terms occur in it (strings not in terms are ignored by builders
// that use co-occurrence; taxonomy-only builders may ignore docTerms
// entirely). Builders must be deterministic — the same inputs and config
// yield the same Forest at every worker count — and must honor ctx
// cancellation by returning ctx's error instead of a partial forest.
//
// Implementations register themselves with Register and are selected by
// name through Lookup — the facade (`facet.Options.HierarchyBuilder`),
// the serving binaries' -hierarchy flags, and the experiments bake-off
// all dispatch through the registry, so adding a strategy is one new
// file plus one Register call.
type Builder interface {
	// Name is the registry key, a short lowercase identifier
	// ("subsumption", "evidence", "treemin", "agglomerative").
	Name() string
	// Build constructs the forest.
	Build(ctx context.Context, terms []string, docTerms [][]string, cfg BuildConfig) (*Forest, error)
}

// BuildConfig is the shared configuration for every Builder. Common
// knobs (document-frequency floor, worker count, threshold) live at the
// top level; builder-specific options are nested and ignored by builders
// they do not apply to. The zero value selects sensible defaults
// everywhere, so BuildConfig{} is a valid config for every builder.
type BuildConfig struct {
	// Threshold is the builder's main attachment threshold: θ in
	// P(x|y) ≥ θ for subsumption, the combined-score floor for evidence
	// (unless Evidence.Threshold overrides it). 0 selects the builder's
	// standard default (0.8 for subsumption and evidence).
	Threshold float64
	// MinDF drops terms observed in fewer documents; co-occurrence
	// estimates below a handful of documents are noise. 0 selects 2.
	// Taxonomy-only builders (treemin) ignore it.
	MinDF int
	// MaxChildDFFraction: a term present in more than this fraction of
	// the collection is a facet DIMENSION — it stays a root and is never
	// attached as a child (at such densities P(x|y) ≥ θ holds against
	// almost any x by saturation, not by meaning). 0 selects 0.6;
	// set >= 1 to disable. Only the subsumption builder applies it.
	MaxChildDFFraction float64
	// Workers shards each builder's pairwise sweep across a bounded
	// worker pool. <= 1 (the zero value) runs sequentially; the forest
	// is identical for every worker count.
	Workers int
	// Metrics, when set, receives the sweep's pair-pruning counters —
	// hierarchy.pairs.{candidate,evaluated,skipped} and the
	// hierarchy.sweep.terms gauge (see pairCounts). nil disables
	// instrumentation.
	Metrics *obsv.Registry

	// denseSweep forces the pre-pruning all-pairs sweep. It exists only
	// so the differential tests (TestPrunedSweepEquivalence and the
	// TestBuilderInvariants extension) can prove the posting-list-pruned
	// sweeps byte-identical to the dense reference; it is unexported so
	// external callers always get the pruned path.
	denseSweep bool

	// Evidence holds the evidence-combination builder's options.
	Evidence EvidenceOptions
	// Chains supplies is-a ancestor chains for the tree-minimization
	// builder; nil means no terms have chains (every term is a root).
	Chains ChainProvider
	// Agglomerative holds the co-occurrence clustering builder's options.
	Agglomerative AgglomerativeOptions
}

// EvidenceOptions configures the "evidence" builder (nested in
// BuildConfig; other builders ignore it).
type EvidenceOptions struct {
	// SubsumptionWeight scales the co-occurrence evidence P(x|y); the
	// remaining sources contribute with their own weights. 0 selects 1.0.
	SubsumptionWeight float64
	// Weights per evidence source, aligned with Sources; nil gives every
	// source weight 1.
	Weights []float64
	// Sources are the external taxonomy evidence sources to combine.
	// They must be safe for concurrent use when Workers > 1.
	Sources []TaxonomicEvidence
	// Threshold overrides BuildConfig.Threshold for the combined score;
	// 0 falls back to BuildConfig.Threshold, then to 0.8.
	Threshold float64
}

// AgglomerativeOptions configures the "agglomerative" builder (nested in
// BuildConfig; other builders ignore it).
type AgglomerativeOptions struct {
	// MinSimilarity stops the merge loop: clusters are merged while the
	// best average-linkage Jaccard similarity is at least this value.
	// 0 selects 0.25; higher values yield flatter, purer forests.
	MinSimilarity float64
}

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register adds a builder to the registry under b.Name(). It panics on a
// nil builder, an empty name, or a duplicate registration — all three are
// programmer errors at package-init time.
func Register(b Builder) {
	if b == nil {
		panic("hierarchy: Register(nil)")
	}
	name := b.Name()
	if name == "" {
		panic("hierarchy: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("hierarchy: duplicate builder %q", name))
	}
	registry[name] = b
}

// Lookup returns the registered builder with the given name.
func Lookup(name string) (Builder, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Names returns the registered builder names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(subsumptionBuilder{})
	Register(evidenceBuilder{})
	Register(treeminBuilder{})
	Register(agglomerativeBuilder{})
}

// termStats is the co-occurrence scaffolding shared by every builder that
// estimates relations from the corpus: deduplicated term list, per-term
// posting bitsets, document frequencies, and the df-floor survivor list
// in deterministic (lexicographic) order.
type termStats struct {
	uniq  []string
	idx   map[string]int
	sets  []*bitset.Set
	df    []int
	alive []int
	nDocs int
}

func newTermStats(terms []string, docTerms [][]string, minDF int) *termStats {
	st := &termStats{idx: make(map[string]int, len(terms)), nDocs: len(docTerms)}
	st.uniq = make([]string, 0, len(terms))
	for _, t := range terms {
		if _, dup := st.idx[t]; !dup {
			st.idx[t] = len(st.uniq)
			st.uniq = append(st.uniq, t)
		}
	}
	st.sets = make([]*bitset.Set, len(st.uniq))
	for i := range st.sets {
		st.sets[i] = bitset.New(st.nDocs)
	}
	for d, ts := range docTerms {
		for _, t := range ts {
			if i, ok := st.idx[t]; ok {
				st.sets[i].Set(d)
			}
		}
	}
	st.df = make([]int, len(st.uniq))
	for i, s := range st.sets {
		st.df[i] = s.Count()
	}
	for i := range st.uniq {
		if st.df[i] >= minDF {
			st.alive = append(st.alive, i)
		}
	}
	sort.Slice(st.alive, func(a, b int) bool { return st.uniq[st.alive[a]] < st.uniq[st.alive[b]] })
	return st
}

// assembleForest turns a parent assignment over st.alive into a Forest:
// it guards against cycles (walking up from every term and cutting
// back-edges), attaches children, and orders children and roots by
// descending DF then term — the deterministic convention every
// co-occurrence builder shares.
func assembleForest(st *termStats, parentOf map[int]int) *Forest {
	nodes := make(map[int]*Node, len(st.alive))
	for _, i := range st.alive {
		nodes[i] = &Node{Term: st.uniq[i], DF: st.df[i]}
	}
	// Cycle guard: pairwise relations with directionality cannot create
	// 2-cycles on exact ties, but transitive chains through
	// floating-point equalities are broken defensively by walking up and
	// cutting back-edges.
	for _, y := range st.alive {
		seen := map[int]bool{y: true}
		cur, ok := parentOf[y]
		for ok {
			if seen[cur] {
				delete(parentOf, y) // cut: y becomes a root
				break
			}
			seen[cur] = true
			cur, ok = parentOf[cur]
		}
	}
	forest := &Forest{index: map[string]*Node{}}
	for _, i := range st.alive {
		forest.index[st.uniq[i]] = nodes[i]
	}
	for _, y := range st.alive {
		if p, ok := parentOf[y]; ok {
			nodes[y].Parent = nodes[p]
			nodes[p].Children = append(nodes[p].Children, nodes[y])
		} else {
			forest.Roots = append(forest.Roots, nodes[y])
		}
	}
	// Deterministic child and root order: by descending DF then term.
	less := func(a, b *Node) bool {
		if a.DF != b.DF {
			return a.DF > b.DF
		}
		return a.Term < b.Term
	}
	forest.Walk(func(n *Node, _ int) {
		sort.Slice(n.Children, func(i, j int) bool { return less(n.Children[i], n.Children[j]) })
	})
	sort.Slice(forest.Roots, func(i, j int) bool { return less(forest.Roots[i], forest.Roots[j]) })
	return forest
}
