package textdb

import (
	"math"
	"sort"
	"strings"

	"repro/internal/lang"
)

// posting records one document's term frequency for a term.
type posting struct {
	doc DocID
	tf  int32
}

// Index is an inverted index over the unigram tokens of a corpus with
// Okapi BM25 ranking. It backs the web-search simulator (the paper's
// Google resource) and the keyword-search side of the user study.
type Index struct {
	corpus   *Corpus
	postings map[TermID][]posting
	docLen   []int32
	totalLen int64
}

// BM25 parameters (standard Robertson/Sparck-Jones defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// BuildIndex indexes every document in the corpus. Stopwords are not
// indexed. Title tokens are counted twice, a conventional field boost.
func BuildIndex(c *Corpus) *Index {
	ix := &Index{
		corpus:   c,
		postings: make(map[TermID][]posting, 1<<14),
		docLen:   make([]int32, c.Len()),
	}
	counts := map[TermID]int32{}
	for _, doc := range c.Docs() {
		clear(counts)
		var n int32
		for _, tok := range lang.Tokenize(doc.Text) {
			if lang.IsStopword(tok.Norm) || len(tok.Norm) < 2 {
				continue
			}
			counts[c.dict.Intern(tok.Norm)]++
			n++
		}
		for _, tok := range lang.Tokenize(doc.Title) {
			if lang.IsStopword(tok.Norm) || len(tok.Norm) < 2 {
				continue
			}
			counts[c.dict.Intern(tok.Norm)] += 2
			n += 2
		}
		ix.docLen[doc.ID] = n
		ix.totalLen += int64(n)
		// Deterministic posting order: docs are added in ID order.
		ids := make([]TermID, 0, len(counts))
		for id := range counts {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			ix.postings[id] = append(ix.postings[id], posting{doc.ID, counts[id]})
		}
	}
	return ix
}

// Hit is one search result.
type Hit struct {
	Doc   DocID
	Score float64
}

// Search ranks documents against the query with BM25 and returns the top
// k hits. The query is tokenized with the same normalization as indexing.
func (ix *Index) Search(query string, k int) []Hit {
	if k <= 0 {
		return nil
	}
	var queryIDs []TermID
	for _, tok := range lang.Tokenize(query) {
		if lang.IsStopword(tok.Norm) || len(tok.Norm) < 2 {
			continue
		}
		if id := ix.corpus.dict.Lookup(tok.Norm); id != NoTerm {
			queryIDs = append(queryIDs, id)
		}
	}
	if len(queryIDs) == 0 {
		return nil
	}
	n := float64(ix.corpus.Len())
	avgdl := 1.0
	if ix.corpus.Len() > 0 {
		avgdl = float64(ix.totalLen) / float64(ix.corpus.Len())
	}
	scores := map[DocID]float64{}
	for _, qid := range queryIDs {
		plist := ix.postings[qid]
		if len(plist) == 0 {
			continue
		}
		idf := idfBM25(n, float64(len(plist)))
		for _, p := range plist {
			tf := float64(p.tf)
			dl := float64(ix.docLen[p.doc])
			scores[p.doc] += idf * (tf * (bm25K1 + 1)) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgdl))
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{doc, s})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].Doc < hits[b].Doc
	})
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits
}

func idfBM25(n, df float64) float64 {
	// The +0.5 smoothing keeps idf positive for df close to n.
	v := (n - df + 0.5) / (df + 0.5)
	if v < 1e-9 {
		v = 1e-9
	}
	return math.Log(1 + v)
}

// SearchAll is Search with conjunctive (AND) semantics: only documents
// containing every query term are returned, ranked by BM25. Web engines
// default to AND; the browse engine uses this for its keyword filter.
func (ix *Index) SearchAll(query string, k int) []Hit {
	if k <= 0 {
		return nil
	}
	var queryIDs []TermID
	seen := map[TermID]bool{}
	for _, tok := range lang.Tokenize(query) {
		if lang.IsStopword(tok.Norm) || len(tok.Norm) < 2 {
			continue
		}
		id := ix.corpus.dict.Lookup(tok.Norm)
		if id == NoTerm {
			return nil // a term with no postings empties the conjunction
		}
		if !seen[id] {
			seen[id] = true
			queryIDs = append(queryIDs, id)
		}
	}
	if len(queryIDs) == 0 {
		return nil
	}
	hits := ix.Search(query, ix.corpus.Len())
	// Filter to documents matched by every term.
	need := len(queryIDs)
	matched := map[DocID]int{}
	for _, qid := range queryIDs {
		for _, p := range ix.postings[qid] {
			matched[p.doc]++
		}
	}
	out := hits[:0]
	for _, h := range hits {
		if matched[h.Doc] >= need {
			out = append(out, h)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// DocFreq returns the number of documents containing the term.
func (ix *Index) DocFreq(term string) int {
	id := ix.corpus.dict.Lookup(strings.ToLower(term))
	if id == NoTerm {
		return 0
	}
	return len(ix.postings[id])
}

// Snippet extracts a window of approximately windowTokens tokens from the
// document centered on the densest cluster of query-term occurrences; it
// is what the web-search simulator returns as the "result snippet".
func Snippet(doc *Document, query string, windowTokens int) string {
	if windowTokens <= 0 {
		windowTokens = 30
	}
	queryTerms := map[string]bool{}
	for _, tok := range lang.Tokenize(query) {
		if !lang.IsStopword(tok.Norm) {
			queryTerms[tok.Norm] = true
		}
	}
	tokens := lang.Tokenize(doc.Text)
	if len(tokens) == 0 {
		return ""
	}
	if len(tokens) <= windowTokens {
		return doc.Text
	}
	// Slide a token window, counting query matches.
	bestStart, bestCount := 0, -1
	count := 0
	match := make([]bool, len(tokens))
	for i, t := range tokens {
		match[i] = queryTerms[t.Norm]
	}
	for i := 0; i < len(tokens); i++ {
		if match[i] {
			count++
		}
		if i >= windowTokens && match[i-windowTokens] {
			count--
		}
		if i >= windowTokens-1 {
			start := i - windowTokens + 1
			if count > bestCount {
				bestCount = count
				bestStart = start
			}
		}
	}
	start := tokens[bestStart].Start
	end := tokens[bestStart+windowTokens-1].End
	return doc.Text[start:end]
}
