// Package browse implements the faceted browsing engine that the
// extracted hierarchies power: an OLAP-style view over a text database
// (the paper repeatedly frames the faceted interface as "an OLAP-style
// cube over the text documents" supporting slice-and-dice navigation).
//
// Every hierarchy node owns the set of documents annotated with its term
// or any descendant term (roll-up). Users — real ones through the example
// applications, simulated ones in internal/userstudy — combine facet
// selections (conjunctive drill-down), keyword search, and per-child
// counts exactly as in Flamenco-style faceted interfaces.
package browse

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/hierarchy"
	"repro/internal/obsv"
	"repro/internal/textdb"
)

// Interface is a faceted browsing engine over a corpus. Navigation is
// answered from precomputed per-facet-term posting lists (roll-up
// document bitsets) and an LRU query-result cache, so drill-down,
// multi-facet conjunction, and count-annotated facet menus are bitset
// intersections rather than document scans. An Interface is immutable
// after construction and safe for concurrent use; a live deployment
// republishes a fresh Interface per ingest epoch, which wholesale
// invalidates the superseded epoch's cache.
type Interface struct {
	corpus *textdb.Corpus
	forest *hierarchy.Forest
	index  *textdb.Index

	// docSets[term] is the posting list of the node: the roll-up set of
	// documents annotated with the term or any descendant term.
	docSets map[string]*bitset.Set
	all     *bitset.Set

	// docTerms keeps the annotation rows the engine was built from, for
	// the naive-scan reference path and snapshot capture.
	docTerms [][]string

	// byDate holds document indices sorted by (Date, ID): the posting
	// structure for the time facet, so a date-range filter is a binary
	// search plus a run of set bits instead of a full corpus scan.
	byDate []int32

	epoch uint64
	cache *queryCache

	// Optional instrumentation, wired by SetMetrics before serving.
	cacheHits, cacheMisses *obsv.Counter
	queryLatency           *obsv.Histogram
}

// Build assembles the engine. docTerms lists, for every document, the
// facet terms it is annotated with (typically: which facet terms occur in
// the document's expanded term set).
func Build(corpus *textdb.Corpus, forest *hierarchy.Forest, docTerms [][]string) (*Interface, error) {
	b, err := newInterface(corpus, forest, docTerms)
	if err != nil {
		return nil, err
	}
	// Leaf sets: direct term occurrences.
	direct := map[string]*bitset.Set{}
	forest.Walk(func(n *hierarchy.Node, _ int) {
		direct[n.Term] = bitset.New(corpus.Len())
	})
	for d, terms := range docTerms {
		for _, t := range terms {
			if s, ok := direct[t]; ok {
				s.Set(d)
			}
		}
	}
	// Roll-up: post-order union of children.
	var rollup func(n *hierarchy.Node) *bitset.Set
	rollup = func(n *hierarchy.Node) *bitset.Set {
		acc := direct[n.Term].Clone()
		for _, c := range n.Children {
			acc = acc.Or(rollup(c))
		}
		b.docSets[n.Term] = acc
		return acc
	}
	for _, r := range forest.Roots {
		rollup(r)
	}
	return b, nil
}

// Rehydrate assembles the engine from previously captured state — the
// warm-start path of the snapshot layer. The posting lists are taken as
// given (after structural validation) instead of being recomputed from
// the annotation rows, so rebuilding a served interface from a snapshot
// costs only the keyword index and the date order, never the roll-up
// sweep or any pipeline stage.
func Rehydrate(corpus *textdb.Corpus, forest *hierarchy.Forest, docTerms [][]string, postings map[string]*bitset.Set) (*Interface, error) {
	b, err := newInterface(corpus, forest, docTerms)
	if err != nil {
		return nil, err
	}
	var verr error
	forest.Walk(func(n *hierarchy.Node, _ int) {
		s, ok := postings[n.Term]
		if verr != nil {
			return
		}
		if !ok {
			verr = fmt.Errorf("browse: no posting list for facet term %q", n.Term)
			return
		}
		if s.Len() != corpus.Len() {
			verr = fmt.Errorf("browse: posting list for %q covers %d docs, corpus has %d", n.Term, s.Len(), corpus.Len())
			return
		}
		b.docSets[n.Term] = s
	})
	if verr != nil {
		return nil, verr
	}
	return b, nil
}

// newInterface builds the parts shared by Build and Rehydrate: the
// keyword index, the universal set, the date order, and an empty cache.
func newInterface(corpus *textdb.Corpus, forest *hierarchy.Forest, docTerms [][]string) (*Interface, error) {
	if corpus.Len() != len(docTerms) {
		return nil, fmt.Errorf("browse: %d docs but %d annotation rows", corpus.Len(), len(docTerms))
	}
	b := &Interface{
		corpus:   corpus,
		forest:   forest,
		index:    textdb.BuildIndex(corpus),
		docSets:  map[string]*bitset.Set{},
		all:      bitset.New(corpus.Len()),
		docTerms: docTerms,
		byDate:   make([]int32, corpus.Len()),
		cache:    newQueryCache(DefaultQueryCacheSize),
	}
	for i := 0; i < corpus.Len(); i++ {
		b.all.Set(i)
		b.byDate[i] = int32(i)
	}
	sort.SliceStable(b.byDate, func(x, y int) bool {
		dx := b.corpus.Doc(textdb.DocID(b.byDate[x])).Date
		dy := b.corpus.Doc(textdb.DocID(b.byDate[y])).Date
		if !dx.Equal(dy) {
			return dx.Before(dy)
		}
		return b.byDate[x] < b.byDate[y]
	})
	return b, nil
}

// SetEpoch tags the interface with its ingest epoch; the epoch is part
// of every cache key. Call before serving traffic.
func (b *Interface) SetEpoch(e uint64) { b.epoch = e }

// Epoch returns the ingest epoch this interface was built for.
func (b *Interface) Epoch() uint64 { return b.epoch }

// SetMetrics wires the engine's instruments into a registry:
// browse.query_cache.hits / browse.query_cache.misses counters and the
// browse.query_latency histogram (uncached resolution time). Instrument
// names are get-or-create, so successive epochs of a live deployment
// accumulate into the same monotonic series. Call before serving
// traffic.
func (b *Interface) SetMetrics(reg *obsv.Registry) {
	if reg == nil {
		return
	}
	b.cacheHits = reg.Counter("browse.query_cache.hits")
	b.cacheMisses = reg.Counter("browse.query_cache.misses")
	b.queryLatency = reg.Histogram("browse.query_latency")
}

// ResetQueryCache empties the query-result cache (benchmarking cold
// paths; never required for correctness).
func (b *Interface) ResetQueryCache() { b.cache.reset() }

// QueryCacheLen returns the number of live cache entries.
func (b *Interface) QueryCacheLen() int { return b.cache.len() }

// Postings returns the per-facet-term posting lists. The map is newly
// allocated but shares the underlying sets; callers must treat them as
// read-only. Snapshot capture serializes these.
func (b *Interface) Postings() map[string]*bitset.Set {
	out := make(map[string]*bitset.Set, len(b.docSets))
	for t, s := range b.docSets {
		out[t] = s
	}
	return out
}

// DocTermRows returns the per-document facet annotations the engine was
// built with; the rows are shared and must be treated as read-only.
func (b *Interface) DocTermRows() [][]string { return b.docTerms }

// Corpus returns the underlying corpus.
func (b *Interface) Corpus() *textdb.Corpus { return b.corpus }

// Forest returns the facet hierarchy.
func (b *Interface) Forest() *hierarchy.Forest { return b.forest }

// Count returns how many documents fall under the facet term (roll-up).
func (b *Interface) Count(term string) int {
	if s, ok := b.docSets[term]; ok {
		return s.Count()
	}
	return 0
}

// Selection is a conjunctive facet state plus an optional keyword query
// and an optional date range (the paper's TV-schedule example browses "by
// time" alongside the content facets).
type Selection struct {
	Terms []string  // selected facet terms, combined with AND
	Query string    // keyword query, empty = none
	From  time.Time // inclusive lower bound; zero = unbounded
	To    time.Time // exclusive upper bound; zero = unbounded
}

// Docs returns the documents matching the selection.
func (b *Interface) Docs(sel Selection) []textdb.DocID {
	set := b.resolve(sel)
	ids := make([]textdb.DocID, 0, set.Count())
	set.ForEach(func(i int) bool {
		ids = append(ids, textdb.DocID(i))
		return true
	})
	return ids
}

// MatchCount returns |Docs(sel)| without materializing the slice.
func (b *Interface) MatchCount(sel Selection) int {
	return b.resolve(sel).Count()
}

// resolve answers a selection from the query-result cache, computing and
// inserting on miss. Returned sets are shared with the cache and must be
// treated as read-only (every consumer is: Count, ForEach, AndCount).
func (b *Interface) resolve(sel Selection) *bitset.Set {
	key := cacheKey(sel, b.epoch)
	if s, ok := b.cache.get(key); ok {
		if b.cacheHits != nil {
			b.cacheHits.Inc()
		}
		return s
	}
	start := time.Now()
	s := b.resolveUncached(sel)
	if b.queryLatency != nil {
		b.queryLatency.Observe(time.Since(start))
	}
	if b.cacheMisses != nil {
		b.cacheMisses.Inc()
	}
	b.cache.put(key, s)
	return s
}

// resolveUncached intersects the posting lists for the selection: facet
// terms AND keyword matches AND the date-range run of the byDate order.
// The accumulator materializes on the first constraint and every later
// one intersects it in place (bitset.AndWith), so a k-constraint
// selection costs one set allocation rather than k.
func (b *Interface) resolveUncached(sel Selection) *bitset.Set {
	var acc *bitset.Set // nil until the first constraint; b.all is never mutated
	for _, t := range sel.Terms {
		s, ok := b.docSets[t]
		if !ok {
			return bitset.New(b.corpus.Len())
		}
		if acc == nil {
			acc = b.all.And(s)
		} else {
			acc.AndWith(s)
		}
	}
	if sel.Query != "" {
		qs := bitset.New(b.corpus.Len())
		for _, h := range b.index.SearchAll(sel.Query, b.corpus.Len()) {
			qs.Set(int(h.Doc))
		}
		if acc == nil {
			acc = qs.AndWith(b.all)
		} else {
			acc.AndWith(qs)
		}
	}
	if !sel.From.IsZero() || !sel.To.IsZero() {
		ds := bitset.New(b.corpus.Len())
		lo, hi := b.dateBounds(sel.From, sel.To)
		for _, i := range b.byDate[lo:hi] {
			ds.Set(int(i))
		}
		if acc == nil {
			acc = ds.AndWith(b.all)
		} else {
			acc.AndWith(ds)
		}
	}
	if acc == nil {
		acc = b.all.Clone()
	}
	return acc
}

// dateBounds binary-searches the byDate order for the run of documents
// with From ≤ Date < To (zero bounds are open).
func (b *Interface) dateBounds(from, to time.Time) (lo, hi int) {
	n := len(b.byDate)
	lo, hi = 0, n
	if !from.IsZero() {
		lo = sort.Search(n, func(i int) bool {
			return !b.corpus.Doc(textdb.DocID(b.byDate[i])).Date.Before(from)
		})
	}
	if !to.IsZero() {
		hi = sort.Search(n, func(i int) bool {
			return !b.corpus.Doc(textdb.DocID(b.byDate[i])).Date.Before(to)
		})
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// DateCount is one bucket of a date histogram.
type DateCount struct {
	Bucket time.Time // bucket start (UTC, truncated to the granularity)
	Count  int
}

// DateHistogram buckets the documents matching the selection by day
// ("day") or month ("month") — the time facet of the interface.
func (b *Interface) DateHistogram(sel Selection, granularity string) ([]DateCount, error) {
	var trunc func(time.Time) time.Time
	switch granularity {
	case "day":
		trunc = func(t time.Time) time.Time {
			return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
		}
	case "month":
		trunc = func(t time.Time) time.Time {
			return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
		}
	default:
		return nil, fmt.Errorf("browse: unknown granularity %q (want day or month)", granularity)
	}
	counts := map[time.Time]int{}
	b.resolve(sel).ForEach(func(i int) bool {
		counts[trunc(b.corpus.Doc(textdb.DocID(i)).Date.UTC())]++
		return true
	})
	out := make([]DateCount, 0, len(counts))
	for bucket, c := range counts {
		out = append(out, DateCount{bucket, c})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Bucket.Before(out[b].Bucket) })
	return out, nil
}

// FacetCount pairs a facet term with its count under a selection.
type FacetCount struct {
	Term  string `json:"term"`
	Count int    `json:"count"`
}

// Children returns the child facet terms of parent (or the roots when
// parent is "") with their counts restricted to the selection, omitting
// zero-count entries — the numbers a faceted UI displays next to each
// link. Results are sorted by count descending, then term.
func (b *Interface) Children(parent string, sel Selection) []FacetCount {
	var nodes []*hierarchy.Node
	if parent == "" {
		nodes = b.forest.Roots
	} else if n, ok := b.forest.Find(parent); ok {
		nodes = n.Children
	} else {
		return nil
	}
	current := b.resolve(sel)
	var out []FacetCount
	for _, n := range nodes {
		c := current.AndCount(b.docSets[n.Term])
		if c > 0 {
			out = append(out, FacetCount{Term: n.Term, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// CrossTab computes the slice-and-dice matrix between the children of two
// facet terms under a selection: cell [i][j] counts documents carrying
// both childrenA[i] and childrenB[j]. This is the OLAP-style pivot the
// paper's Section V-F describes ("show profit-margin distribution for
// users with this type of complaints").
type CrossTab struct {
	RowTerms []string
	ColTerms []string
	Cells    [][]int
}

// Cross computes the cross-tabulation of facetA's children against
// facetB's children, restricted to the selection.
func (b *Interface) Cross(facetA, facetB string, sel Selection) (*CrossTab, error) {
	na, ok := b.forest.Find(facetA)
	if !ok {
		return nil, fmt.Errorf("browse: unknown facet %q", facetA)
	}
	nb, ok := b.forest.Find(facetB)
	if !ok {
		return nil, fmt.Errorf("browse: unknown facet %q", facetB)
	}
	current := b.resolve(sel)
	ct := &CrossTab{}
	for _, c := range na.Children {
		ct.RowTerms = append(ct.RowTerms, c.Term)
	}
	for _, c := range nb.Children {
		ct.ColTerms = append(ct.ColTerms, c.Term)
	}
	ct.Cells = make([][]int, len(ct.RowTerms))
	for i, rt := range ct.RowTerms {
		row := make([]int, len(ct.ColTerms))
		rSet := current.And(b.docSets[rt])
		for j, ctm := range ct.ColTerms {
			row[j] = rSet.AndCount(b.docSets[ctm])
		}
		ct.Cells[i] = row
	}
	return ct, nil
}

// Search runs a plain keyword search (no facet restriction, conjunctive
// semantics) and returns up to k documents in rank order; the user-study
// simulator uses it for the keyword-only interaction mode.
func (b *Interface) Search(query string, k int) []textdb.DocID {
	hits := b.index.SearchAll(query, k)
	out := make([]textdb.DocID, len(hits))
	for i, h := range hits {
		out[i] = h.Doc
	}
	return out
}
