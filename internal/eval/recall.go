package eval

import (
	"fmt"

	"repro/internal/mturk"
)

// RecallConfig parameterizes the recall experiments (Tables II–IV).
type RecallConfig struct {
	// SampleSize stories are annotated for ground truth (paper: 1,000).
	SampleSize int
	// TopK truncates each cell's ranked facet terms before measuring
	// recall; 0 (the default) measures over every term passing both shift
	// tests — the paper's notion of "extracted by our techniques" — which
	// makes the All rows/columns proper unions of their parts.
	TopK int
}

func (c *RecallConfig) defaults() {
	if c.SampleSize == 0 {
		c.SampleSize = 1000
	}
}

// RecallTable reproduces one of Tables II/III/IV: the recall of every
// (external resource × term extractor) combination against the
// Mechanical-Turk-style ground truth, with "All" rows and columns.
func RecallTable(dr *DataRun, cfg RecallConfig) (*Table, *mturk.GroundTruth) {
	cfg.defaults()
	gt := dr.Pool.BuildGroundTruth(dr.DS, dr.SampleIndices(cfg.SampleSize))

	cols := append(append([]string{}, ExtractorOrder...), ExtAll)
	rows := append(append([]string{}, ResourceOrder...), ResAll)
	t := &Table{
		Title:     fmt.Sprintf("Recall of extracted facets, %s data set (|GT| = %d terms)", dr.DS.Profile.Name, len(gt.Terms)),
		RowHeader: "External Resource",
		ColHeader: "Term Extractors",
		Cols:      cols,
	}
	for _, res := range rows {
		row := TableRow{Name: res}
		for _, ext := range cols {
			result := dr.RunCell(ext, res, 1)
			terms := result.CandidateStrings()
			if cfg.TopK > 0 && cfg.TopK < len(terms) {
				terms = terms[:cfg.TopK]
			}
			row.Values = append(row.Values, gt.Recall(terms))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, gt
}
