package wiki

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/ontology"
)

func buildKB(t *testing.T) *ontology.KB {
	t.Helper()
	kb, err := ontology.Build(ontology.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func buildWiki(t *testing.T) (*ontology.KB, *Wiki) {
	t.Helper()
	kb := buildKB(t)
	w, err := Build(kb, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return kb, w
}

func TestBuildPagePerConcept(t *testing.T) {
	kb, w := buildWiki(t)
	if w.Len() != kb.Len() {
		t.Fatalf("pages = %d, concepts = %d", w.Len(), kb.Len())
	}
}

func TestResolveCanonicalAndRedirect(t *testing.T) {
	_, w := buildWiki(t)
	p, ok := w.Resolve("France")
	if !ok || p.Title != "France" {
		t.Fatal("canonical title resolution failed")
	}
	// The G8 summit registers redirect variants.
	p, ok = w.Resolve("G8")
	if !ok || p.Title != "2005 G8 Summit" {
		t.Fatalf("redirect resolution failed: %v %v", p, ok)
	}
	if _, ok := w.Resolve("Nonexistent Entry XYZ"); ok {
		t.Fatal("resolved nonexistent title")
	}
}

func TestDegreesConsistent(t *testing.T) {
	_, w := buildWiki(t)
	var totalIn, totalOut, totalLinks int
	for _, p := range w.Pages() {
		totalOut += w.OutDegree(p.ID)
		totalIn += w.InDegree(p.ID)
		totalLinks += len(p.Links)
	}
	if totalIn != totalOut || totalOut != totalLinks {
		t.Fatalf("degree bookkeeping: in=%d out=%d links=%d", totalIn, totalOut, totalLinks)
	}
	if totalLinks == 0 {
		t.Fatal("no links generated")
	}
}

func TestGeneralPagesHaveHighInDegree(t *testing.T) {
	kb, w := buildWiki(t)
	// A facet term like "Political Leaders" must have far higher in-degree
	// than a typical entity page; this is the property the association
	// score log(N/in)/out exploits.
	pol, _ := kb.ByName("Political Leaders")
	polPage, _ := w.Resolve("Political Leaders")
	if w.InDegree(polPage.ID) < 20 {
		t.Fatalf("Political Leaders in-degree = %d, want substantial", w.InDegree(polPage.ID))
	}
	_ = pol
}

func TestEntityPageLinksToFacetAncestors(t *testing.T) {
	kb, w := buildWiki(t)
	// Find a politician.
	polFacet, _ := kb.ByName("Political Leaders")
	var pol *ontology.Concept
	for _, e := range kb.Entities() {
		for _, p := range e.Parents {
			if p == polFacet.ID {
				pol = e
				break
			}
		}
		if pol != nil {
			break
		}
	}
	page, ok := w.Resolve(pol.Display)
	if !ok {
		t.Fatalf("politician %q has no page", pol.Display)
	}
	found := false
	for _, l := range page.Links {
		if w.Page(l.Target).Concept == polFacet.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("politician page %q does not link to Political Leaders", pol.Display)
	}
}

func TestPageTextMentionsAncestry(t *testing.T) {
	kb, w := buildWiki(t)
	france, _ := kb.ByName("France")
	page := w.Page(PageID(france.ID))
	if !strings.Contains(page.Text, "Europe") {
		t.Fatalf("France page text lacks ancestry: %q", page.Text)
	}
}

func TestTitleExtractorLongestMatch(t *testing.T) {
	_, w := buildWiki(t)
	ex := NewTitleExtractor(w)
	terms := ex.Extract("Leaders met at the 2005 G8 Summit in Europe.")
	joined := strings.Join(terms, "|")
	if !strings.Contains(joined, "2005 g8 summit") {
		t.Fatalf("longest match failed: %v", terms)
	}
	// "g8 summit" alone must not additionally appear.
	for _, tm := range terms {
		if tm == "g8 summit" || tm == "g8" {
			t.Fatalf("shorter overlapping match leaked: %v", terms)
		}
	}
}

func TestTitleExtractorResolvesVariants(t *testing.T) {
	kb, w := buildWiki(t)
	// Pick a politician and mention them by last name only.
	polFacet, _ := kb.ByName("Political Leaders")
	var pol *ontology.Concept
	for _, e := range kb.Entities() {
		for _, p := range e.Parents {
			if p == polFacet.ID && len(e.Variants) > 0 {
				pol = e
			}
		}
		if pol != nil {
			break
		}
	}
	lastName := pol.Variants[0]
	ex := NewTitleExtractor(w)
	terms := ex.Extract("A speech by " + lastName + " drew attention.")
	// The extractor returns the surface form; it must be resolvable to the
	// canonical page (resources resolve it downstream).
	want := lang.NormalizePhrase(lastName)
	found := false
	for _, tm := range terms {
		if tm == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("variant span %q not extracted: %v", lastName, terms)
	}
	page, ok := w.Resolve(want)
	if !ok || page.Title != pol.Display {
		t.Fatalf("surface form %q does not resolve to %q", want, pol.Display)
	}
}

func TestGraphResourceReturnsAncestorTerms(t *testing.T) {
	kb, w := buildWiki(t)
	polFacet, _ := kb.ByName("Political Leaders")
	var pol *ontology.Concept
	for _, e := range kb.Entities() {
		for _, p := range e.Parents {
			if p == polFacet.ID {
				pol = e
			}
		}
		if pol != nil {
			break
		}
	}
	r := NewGraphResource(w, 50)
	ctx := r.Context(pol.Display)
	if len(ctx) == 0 {
		t.Fatal("no context terms")
	}
	found := false
	for _, c := range ctx {
		if c == "political leaders" {
			found = true
		}
	}
	if !found {
		t.Fatalf("context for %q lacks 'political leaders': %v", pol.Display, ctx)
	}
	if r.Context("zzz unknown term") != nil {
		t.Fatal("unknown term should return nil")
	}
}

func TestGraphResourceScoringPrefersRarelyLinked(t *testing.T) {
	_, w := buildWiki(t)
	// Association score is log(N/in)/out: among two targets of the same
	// page, the one with smaller in-degree must score higher and sort
	// first.
	var page *Page
	for _, p := range w.Pages() {
		if len(p.Links) >= 2 {
			page = p
			break
		}
	}
	if page == nil {
		t.Skip("no page with 2 links")
	}
	r := NewGraphResource(w, 50)
	ctx := r.Context(page.Title)
	if len(ctx) < 2 {
		t.Fatalf("too few context terms: %v", ctx)
	}
	// Recompute in-degrees of the first two results; first must be <= second.
	p1, _ := w.Resolve(ctx[0])
	p2, _ := w.Resolve(ctx[1])
	if w.InDegree(p1.ID) > w.InDegree(p2.ID) {
		t.Fatalf("ordering violates association score: in(%s)=%d > in(%s)=%d",
			ctx[0], w.InDegree(p1.ID), ctx[1], w.InDegree(p2.ID))
	}
}

func TestGraphResourceK(t *testing.T) {
	_, w := buildWiki(t)
	r := NewGraphResource(w, 2)
	// Find a page with >2 links.
	for _, p := range w.Pages() {
		if len(p.Links) > 2 {
			if got := r.Context(p.Title); len(got) > 2 {
				t.Fatalf("k not honored: %d results", len(got))
			}
			return
		}
	}
}

func TestSynonymResource(t *testing.T) {
	kb, w := buildWiki(t)
	// The G8 summit has variants "G8 Summit" and "G8".
	r := NewSynonymResource(w)
	ctx := r.Context("2005 G8 Summit")
	set := map[string]bool{}
	for _, c := range ctx {
		set[c] = true
	}
	if !set["g8 summit"] || !set["g8"] {
		t.Fatalf("synonyms missing redirect variants: %v", ctx)
	}
	if set["2005 g8 summit"] {
		t.Fatal("query form must be excluded")
	}
	// Querying BY a variant returns the canonical title.
	ctx2 := r.Context("G8")
	found := false
	for _, c := range ctx2 {
		if c == "2005 g8 summit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("canonical title missing when querying variant: %v", ctx2)
	}
	_ = kb
}

func TestSynonymResourceNoFacetTerms(t *testing.T) {
	_, w := buildWiki(t)
	// Synonyms are variations of the SAME term — they must not include
	// hierarchy ancestors. This is why the paper measures low recall for
	// this resource: it rarely surfaces general facet terms.
	r := NewSynonymResource(w)
	ctx := r.Context("France")
	for _, c := range ctx {
		if c == "europe" || c == "location" {
			t.Fatalf("synonym resource leaked hierarchy term %q", c)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	kb := buildKB(t)
	w1, _ := Build(kb, Config{Seed: 7})
	w2, _ := Build(kb, Config{Seed: 7})
	for i := range w1.Pages() {
		a, b := w1.Page(PageID(i)), w2.Page(PageID(i))
		if a.Text != b.Text || len(a.Links) != len(b.Links) {
			t.Fatalf("page %d differs between identical builds", i)
		}
	}
}

func TestAnchorScores(t *testing.T) {
	_, w := buildWiki(t)
	// s(p,t) = tf(p,t)/f(p): strictly positive, and an anchor pointing at
	// several distinct pages must score below one that points only here
	// with the same tf. Verify positivity and descending sort order.
	for _, p := range w.Pages() {
		prev := -1.0
		for i, a := range w.AnchorsFor(p.ID) {
			if a.Score <= 0 {
				t.Fatalf("anchor %q for %q has non-positive score %v", a.Term, p.Title, a.Score)
			}
			if i > 0 && a.Score > prev {
				t.Fatalf("anchors for %q not sorted by score", p.Title)
			}
			prev = a.Score
		}
	}
}
