package facet

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/browse"
	"repro/internal/hierarchy"
)

// The corpus-only golden harness pins the observable output of the
// resource-free mode — the same corpus as the main golden fixture, but
// expanded through the distributional context model alone (Options.
// Resources = ["corpus"]), with no external resource consulted. Like the
// main harness, regenerate with `go test -run Golden -update` and review
// the testdata/golden diff before committing.

type corpusOnlyState struct {
	res    *Result
	hier   *Hierarchy
	iface  *browse.Interface
	outErr error
}

var (
	corpusOnlyOnce sync.Once
	corpusOnly     corpusOnlyState
)

func corpusOnlyFixture(t *testing.T) *corpusOnlyState {
	t.Helper()
	corpusOnlyOnce.Do(func() {
		env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
		if err != nil {
			corpusOnly.outErr = err
			return
		}
		docs, err := env.GenerateNewsCorpus("SNYT", 60, 7)
		if err != nil {
			corpusOnly.outErr = err
			return
		}
		sys, err := NewSystem(env, Options{TopK: 80, Resources: []string{"corpus"}})
		if err != nil {
			corpusOnly.outErr = err
			return
		}
		for _, d := range docs {
			sys.Add(d)
		}
		res, err := sys.ExtractFacets()
		if err != nil {
			corpusOnly.outErr = err
			return
		}
		hier, err := res.BuildHierarchy()
		if err != nil {
			corpusOnly.outErr = err
			return
		}
		iface, err := res.BrowseEngine(hier)
		if err != nil {
			corpusOnly.outErr = err
			return
		}
		corpusOnly = corpusOnlyState{res: res, hier: hier, iface: iface}
	})
	if corpusOnly.outErr != nil {
		t.Fatal(corpusOnly.outErr)
	}
	return &corpusOnly
}

// TestGoldenCorpusOnlyRanking pins the corpus-only candidate ranking with
// its full statistical evidence.
func TestGoldenCorpusOnlyRanking(t *testing.T) {
	g := corpusOnlyFixture(t)
	if len(g.res.Facets) == 0 {
		t.Fatal("corpus-only run extracted no facet terms")
	}
	var sb strings.Builder
	sb.WriteString("rank\tterm\tdf\tdfc\tshift_f\tshift_r\tscore\n")
	for i, f := range g.res.Facets {
		fmt.Fprintf(&sb, "%d\t%s\t%d\t%d\t%d\t%d\t%s\n",
			i+1, f.Term, f.DF, f.DFC, f.ShiftF, f.ShiftR,
			strconv.FormatFloat(f.Score, 'g', 17, 64))
	}
	compareGolden(t, "corpus_only_ranking.tsv", []byte(sb.String()))
}

// TestGoldenCorpusOnlyHierarchy pins the rendered corpus-only hierarchy.
func TestGoldenCorpusOnlyHierarchy(t *testing.T) {
	g := corpusOnlyFixture(t)
	compareGolden(t, "corpus_only_hierarchy.txt", []byte(hierarchy.FormatTree(g.hier.forest)))
}

// TestGoldenCorpusOnlyBrowseQueries pins end-to-end browse answers over
// the corpus-only hierarchy.
func TestGoldenCorpusOnlyBrowseQueries(t *testing.T) {
	g := corpusOnlyFixture(t)
	roots := g.iface.Children("", browse.Selection{})
	if len(roots) < 2 {
		t.Fatalf("corpus-only hierarchy has %d root facets; need at least 2", len(roots))
	}
	r0, r1 := roots[0].Term, roots[1].Term
	sels := []struct {
		label string
		sel   browse.Selection
	}{
		{"everything", browse.Selection{}},
		{"first root", browse.Selection{Terms: []string{r0}}},
		{"second root", browse.Selection{Terms: []string{r1}}},
		{"two-facet conjunction", browse.Selection{Terms: []string{r0, r1}}},
		{"keyword", browse.Selection{Query: "minister"}},
		{"facet plus keyword", browse.Selection{Terms: []string{r0}, Query: "minister"}},
	}
	out := make([]goldenQuery, 0, len(sels))
	for _, c := range sels {
		q := goldenQuery{
			Label: c.label, Terms: c.sel.Terms, Query: c.sel.Query,
			Count:    g.iface.MatchCount(c.sel),
			Docs:     []int{},
			RootMenu: g.iface.Children("", c.sel),
		}
		for _, id := range g.iface.Docs(c.sel) {
			q.Docs = append(q.Docs, int(id))
		}
		out = append(out, q)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "corpus_only_browse.json", append(data, '\n'))
}

// TestGoldenCorpusOnlyAnswersMatchNaiveScan cross-checks the corpus-only
// browse answers against the naive full-scan path, so the pinned files
// cannot encode an indexed-path bug.
func TestGoldenCorpusOnlyAnswersMatchNaiveScan(t *testing.T) {
	g := corpusOnlyFixture(t)
	roots := g.iface.Children("", browse.Selection{})
	if len(roots) == 0 {
		t.Fatal("no root facets")
	}
	for _, sel := range []browse.Selection{
		{Terms: []string{roots[0].Term}},
		{Query: "minister"},
	} {
		naive := g.iface.ScanDocs(sel)
		indexed := g.iface.Docs(sel)
		if len(naive) != len(indexed) {
			t.Fatalf("sel %+v: indexed %v != naive %v", sel, indexed, naive)
		}
		for i := range naive {
			if naive[i] != indexed[i] {
				t.Fatalf("sel %+v: indexed %v != naive %v", sel, indexed, naive)
			}
		}
	}
}
