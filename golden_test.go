package facet

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/browse"
	"repro/internal/hierarchy"
)

// The golden regression harness pins the full pipeline's observable
// output — corpus, facet ranking, rendered hierarchy, and browse query
// answers — byte for byte. Run `go test -run Golden ./...` to diff
// against the checked-in files and `go test -run Golden -update` to
// regenerate them after an intentional behavior change (review the git
// diff of testdata/golden/ before committing).

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden instead of diffing against them")

// goldenFixture is built once per test binary: a 60-document SNYT corpus
// through the full pipeline.
type goldenState struct {
	sys    *System
	res    *Result
	hier   *Hierarchy
	iface  *browse.Interface
	docs   []Document
	outErr error
}

var (
	goldenOnce sync.Once
	golden     goldenState
)

func goldenFixture(t *testing.T) *goldenState {
	t.Helper()
	goldenOnce.Do(func() {
		env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
		if err != nil {
			golden.outErr = err
			return
		}
		docs, err := env.GenerateNewsCorpus("SNYT", 60, 7)
		if err != nil {
			golden.outErr = err
			return
		}
		sys, err := NewSystem(env, Options{TopK: 80})
		if err != nil {
			golden.outErr = err
			return
		}
		for _, d := range docs {
			sys.Add(d)
		}
		res, err := sys.ExtractFacets()
		if err != nil {
			golden.outErr = err
			return
		}
		hier, err := res.BuildHierarchy()
		if err != nil {
			golden.outErr = err
			return
		}
		iface, err := res.BrowseEngine(hier)
		if err != nil {
			golden.outErr = err
			return
		}
		golden = goldenState{sys: sys, res: res, hier: hier, iface: iface, docs: docs}
	})
	if golden.outErr != nil {
		t.Fatal(golden.outErr)
	}
	return &golden
}

// compareGolden diffs got against testdata/golden/<name>, or rewrites
// the file under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s — run `go test -run Golden -update ./...` to create it: %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotLines, wantLines := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s differs from golden at line %d:\n  got:  %q\n  want: %q\n(run with -update after an intentional change)", name, i+1, g, w)
		}
	}
	t.Fatalf("%s differs from golden (run with -update after an intentional change)", name)
}

// TestGoldenCorpus pins the deterministic corpus itself: every document's
// identity fields. A diff here means generation changed, which would
// cascade into every other golden.
func TestGoldenCorpus(t *testing.T) {
	g := goldenFixture(t)
	var sb strings.Builder
	for i, d := range g.docs {
		fmt.Fprintf(&sb, "%03d\t%s\t%s\t%s\t%d\n", i, d.Title, d.Source, d.Date.UTC().Format(time.RFC3339), len(d.Text))
	}
	compareGolden(t, "corpus.tsv", []byte(sb.String()))
}

// TestGoldenFacetRanking pins the candidate ranking with its full
// statistical evidence (Step 3's output).
func TestGoldenFacetRanking(t *testing.T) {
	g := goldenFixture(t)
	var sb strings.Builder
	sb.WriteString("rank\tterm\tdf\tdfc\tshift_f\tshift_r\tscore\n")
	for i, f := range g.res.Facets {
		fmt.Fprintf(&sb, "%d\t%s\t%d\t%d\t%d\t%d\t%s\n",
			i+1, f.Term, f.DF, f.DFC, f.ShiftF, f.ShiftR,
			strconv.FormatFloat(f.Score, 'g', 17, 64))
	}
	compareGolden(t, "facet_ranking.tsv", []byte(sb.String()))
}

// TestGoldenHierarchy pins the rendered facet hierarchy.
func TestGoldenHierarchy(t *testing.T) {
	g := goldenFixture(t)
	compareGolden(t, "hierarchy.txt", []byte(hierarchy.FormatTree(g.hier.forest)))
}

// goldenQuery is one browse query and its pinned answer.
type goldenQuery struct {
	Label    string              `json:"label"`
	Terms    []string            `json:"terms,omitempty"`
	Query    string              `json:"query,omitempty"`
	From     string              `json:"from,omitempty"`
	To       string              `json:"to,omitempty"`
	Count    int                 `json:"count"`
	Docs     []int               `json:"docs"`
	RootMenu []browse.FacetCount `json:"root_menu"`
}

// TestGoldenBrowseQueries pins end-to-end browse answers: drill-down,
// conjunction, keyword search, and date ranges, each with its
// count-annotated root menu.
func TestGoldenBrowseQueries(t *testing.T) {
	g := goldenFixture(t)
	roots := g.iface.Children("", browse.Selection{})
	if len(roots) < 2 {
		t.Fatalf("fixture hierarchy has %d root facets; need at least 2", len(roots))
	}
	r0, r1 := roots[0].Term, roots[1].Term
	from := time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 6, 0)
	sels := []struct {
		label string
		sel   browse.Selection
	}{
		{"everything", browse.Selection{}},
		{"first root", browse.Selection{Terms: []string{r0}}},
		{"second root", browse.Selection{Terms: []string{r1}}},
		{"two-facet conjunction", browse.Selection{Terms: []string{r0, r1}}},
		{"keyword", browse.Selection{Query: "minister"}},
		{"facet plus keyword", browse.Selection{Terms: []string{r0}, Query: "minister"}},
		{"date range", browse.Selection{From: from, To: to}},
		{"facet plus dates", browse.Selection{Terms: []string{r0}, From: from, To: to}},
	}
	out := make([]goldenQuery, 0, len(sels))
	for _, c := range sels {
		q := goldenQuery{
			Label: c.label, Terms: c.sel.Terms, Query: c.sel.Query,
			Count:    g.iface.MatchCount(c.sel),
			Docs:     []int{},
			RootMenu: g.iface.Children("", c.sel),
		}
		if !c.sel.From.IsZero() {
			q.From = c.sel.From.UTC().Format(time.RFC3339)
		}
		if !c.sel.To.IsZero() {
			q.To = c.sel.To.UTC().Format(time.RFC3339)
		}
		for _, id := range g.iface.Docs(c.sel) {
			q.Docs = append(q.Docs, int(id))
		}
		out = append(out, q)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "browse_queries.json", append(data, '\n'))
}

// TestGoldenAnswersMatchNaiveScan cross-checks the golden browse answers
// against the naive full-scan path, so the pinned files cannot encode an
// indexed-path bug.
func TestGoldenAnswersMatchNaiveScan(t *testing.T) {
	g := goldenFixture(t)
	roots := g.iface.Children("", browse.Selection{})
	if len(roots) == 0 {
		t.Fatal("no root facets")
	}
	sel := browse.Selection{Terms: []string{roots[0].Term}}
	naive := g.iface.ScanDocs(sel)
	indexed := g.iface.Docs(sel)
	if len(naive) != len(indexed) {
		t.Fatalf("indexed %v != naive %v", indexed, naive)
	}
	for i := range naive {
		if naive[i] != indexed[i] {
			t.Fatalf("indexed %v != naive %v", indexed, naive)
		}
	}
}
