// Package resilient is the fault-tolerance layer around the pipeline's
// external-resource boundary. The paper's pipeline leans on remote
// services — Yahoo Term Extraction ("2–3 seconds per document, and the
// main bottleneck"), Google expansion queries, Wikipedia lookups
// (Sections IV, V-D) — and a production deployment must survive those
// services failing, slowing down, or disappearing. Wrap gives any
// fallible resource or extractor three defenses:
//
//   - a per-call virtual deadline (remote.WithBudget) so a slow service
//     times out on the simulated clock instead of stalling a worker;
//   - capped exponential backoff with deterministic jitter between
//     retries, charged to the virtual clock so retry overhead is
//     measurable (and reproducible) in experiments;
//   - a per-resource circuit breaker (closed→open→half-open) so a dead
//     service is shed cheaply instead of hammered, and probed for
//     recovery.
//
// Failures that survive all three (retries exhausted, circuit open)
// surface as errors from ContextErr/ExtractErr; the pipeline then
// degrades gracefully — it proceeds with the surviving dependencies and
// reports the gap in core.Result.Degradations — which is the
// "what if we had no Wikipedia?" scenario made operational.
//
// Determinism: with jitter derived from (Seed, name, key, attempt) and
// backoff charged to the virtual clock rather than slept, a run under
// injected transient faults with retries enabled is byte-identical to
// the fault-free run at every worker count (see the chaos differential
// test).
package resilient

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/remote"
)

// Config parameterizes a resilient wrapper.
type Config struct {
	// MaxAttempts bounds delivered attempts per call (retries =
	// attempts − 1). 0 selects 4.
	MaxAttempts int
	// BaseBackoff is the pre-jitter delay before the first retry,
	// doubling each retry up to MaxBackoff. 0 selects 50ms (base) and
	// 2s (cap).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Deadline, when positive, is attached to each attempt's context as
	// a virtual latency budget (remote.WithBudget): budget-aware
	// services fail the attempt with remote.ErrTimeout instead of
	// charging their full simulated latency.
	Deadline time.Duration
	// Breaker configures the per-resource circuit breaker.
	Breaker BreakerConfig
	// Seed drives the deterministic backoff jitter.
	Seed uint64
	// Clock, when set, is charged the backoff delays (as service
	// "backoff:<name>") so retry overhead shows up in the virtual-time
	// accounting the efficiency experiments read.
	Clock *remote.Clock
	// Sleep, when set, really waits between retries (production
	// behaviour); nil never sleeps — the offline default, where time is
	// virtual.
	Sleep func(time.Duration)
	// Metrics, when set, receives the wrapper's counters and latency
	// histogram: resilient.<name>.{attempts,retries,failures,shed,trips}
	// and resilient.<name>.latency, plus a resilient.<name>.breaker_state
	// gauge (0 closed, 1 open, 2 half-open).
	Metrics *obsv.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	return cfg
}

// guard is the shared retry/backoff/breaker engine behind Resource and
// Extractor.
type guard struct {
	name string
	cfg  Config
	br   *Breaker

	attempts *obsv.Counter
	retries  *obsv.Counter
	failures *obsv.Counter
	shed     *obsv.Counter
	latency  *obsv.Histogram
}

func newGuard(name string, cfg Config) *guard {
	cfg = cfg.withDefaults()
	g := &guard{name: name, cfg: cfg}
	var onTrip func()
	if reg := cfg.Metrics; reg != nil {
		g.attempts = reg.Counter("resilient." + name + ".attempts")
		g.retries = reg.Counter("resilient." + name + ".retries")
		g.failures = reg.Counter("resilient." + name + ".failures")
		g.shed = reg.Counter("resilient." + name + ".shed")
		trips := reg.Counter("resilient." + name + ".trips")
		onTrip = trips.Inc
		g.latency = reg.Histogram("resilient." + name + ".latency")
	}
	g.br = NewBreaker(cfg.Breaker, onTrip)
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("resilient."+name+".breaker_state", func() int64 {
			return int64(g.br.State())
		})
	}
	return g
}

// call runs fn under the full resilience policy. key individualizes the
// jitter (the term or document being looked up).
func (g *guard) call(ctx context.Context, key string, fn func(context.Context) error) error {
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := g.br.Allow(); err != nil {
			if g.shed != nil {
				g.shed.Inc()
			}
			return err
		}
		attemptCtx := ctx
		if g.cfg.Deadline > 0 {
			attemptCtx = remote.WithBudget(ctx, g.cfg.Deadline)
		}
		start := time.Now()
		err := fn(attemptCtx)
		if g.attempts != nil {
			g.attempts.Inc()
			g.latency.Observe(time.Since(start))
		}
		if err == nil {
			g.br.Success()
			return nil
		}
		g.br.Failure()
		if g.failures != nil {
			g.failures.Inc()
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			return cerr // the caller gave up; don't burn retries
		}
		if attempt >= g.cfg.MaxAttempts {
			return lastErr
		}
		if g.retries != nil {
			g.retries.Inc()
		}
		g.wait(g.backoff(key, attempt))
	}
}

// backoff returns the delay before retry #attempt: capped exponential
// with equal jitter — half fixed, half drawn deterministically from
// (seed, name, key, attempt) so reruns and different worker counts see
// the same schedule.
func (g *guard) backoff(key string, attempt int) time.Duration {
	d := g.cfg.BaseBackoff << (attempt - 1)
	if d <= 0 || d > g.cfg.MaxBackoff { // <= 0 catches shift overflow
		d = g.cfg.MaxBackoff
	}
	h := splitmix64(g.cfg.Seed ^ fnv64a(g.name) ^ fnv64a(key) ^ uint64(attempt)*0x9E3779B97F4A7C15)
	frac := float64(h>>11) / float64(uint64(1)<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

func (g *guard) wait(d time.Duration) {
	if d <= 0 {
		return
	}
	if g.cfg.Clock != nil {
		g.cfg.Clock.Charge("backoff:"+g.name, d)
	}
	if g.cfg.Sleep != nil {
		g.cfg.Sleep(d)
	}
}

// Ready returns nil while the circuit is closed and ErrOpen otherwise —
// the readiness-probe view of the breaker (half-open counts as not
// ready: the resource is still being probed).
func (g *guard) Ready() error {
	if g.br.State() != Closed {
		return ErrOpen
	}
	return nil
}

// Resource wraps a fallible resource with the resilience policy. It
// implements both core.Resource (errors become empty context) and
// core.ResourceErr (the pipeline's upgraded path, where errors feed
// Result.Degradations).
type Resource struct {
	inner core.ResourceErr
	g     *guard
}

// Wrap builds a resilient resource. Use core.AsResourceErr to wrap an
// infallible one (pointless but harmless: it never errors).
func Wrap(r core.ResourceErr, cfg Config) *Resource {
	return &Resource{inner: r, g: newGuard(r.Name(), cfg)}
}

// Name implements core.Resource.
func (r *Resource) Name() string { return r.inner.Name() }

// Context implements core.Resource; a permanently failed lookup yields
// no context terms.
func (r *Resource) Context(term string) []string {
	out, _ := r.ContextErr(context.Background(), term)
	return out
}

// ContextErr implements core.ResourceErr under the resilience policy:
// retries with backoff on transient errors, per-attempt virtual
// deadline, circuit breaking on persistent failure.
func (r *Resource) ContextErr(ctx context.Context, term string) ([]string, error) {
	var out []string
	err := r.g.call(ctx, term, func(ctx context.Context) error {
		var ierr error
		out, ierr = r.inner.ContextErr(ctx, term)
		return ierr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Breaker exposes the circuit breaker (for tests and health surfaces).
func (r *Resource) Breaker() *Breaker { return r.g.br }

// Ready reports readiness: nil while the circuit is closed.
func (r *Resource) Ready() error { return r.g.Ready() }

// Extractor wraps a fallible extractor with the same policy; see
// Resource.
type Extractor struct {
	inner core.ExtractorErr
	g     *guard
}

// WrapExtractor builds a resilient extractor.
func WrapExtractor(e core.ExtractorErr, cfg Config) *Extractor {
	return &Extractor{inner: e, g: newGuard(e.Name(), cfg)}
}

// Name implements core.Extractor.
func (e *Extractor) Name() string { return e.inner.Name() }

// Extract implements core.Extractor; a permanently failed extraction
// yields no terms.
func (e *Extractor) Extract(text string) []string {
	out, _ := e.ExtractErr(context.Background(), text)
	return out
}

// ExtractErr implements core.ExtractorErr under the resilience policy.
func (e *Extractor) ExtractErr(ctx context.Context, text string) ([]string, error) {
	var out []string
	err := e.g.call(ctx, text, func(ctx context.Context) error {
		var ierr error
		out, ierr = e.inner.ExtractErr(ctx, text)
		return ierr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Breaker exposes the circuit breaker.
func (e *Extractor) Breaker() *Breaker { return e.g.br }

// Ready reports readiness: nil while the circuit is closed.
func (e *Extractor) Ready() error { return e.g.Ready() }

// ReadyChecker is anything exposing breaker-backed readiness — both
// wrapper types satisfy it; internal/serve consumes it for /readyz.
type ReadyChecker interface {
	Name() string
	Ready() error
}

// Retryable reports whether an error is worth retrying: context
// cancellation and an open circuit are not; everything else (transient
// injected errors, timeouts, outages) is.
func Retryable(err error) bool {
	return err != nil &&
		!errors.Is(err, ErrOpen) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// splitmix64 / fnv64a mirror internal/remote's deterministic hashing so
// jitter draws are stable without importing test-only seams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
