package hierarchy

import (
	"context"
	"testing"
)

// builderFixture is a small corpus with clear nesting structure: baseball
// appears only inside sports documents, paris only inside france
// documents, and "rare" occurs once (below the default MinDF floor).
func builderFixture() (terms []string, docTerms [][]string) {
	terms = []string{"news", "sports", "baseball", "france", "paris", "election", "rare", "sports"} // dup on purpose
	docTerms = [][]string{
		{"news", "sports", "baseball"},
		{"news", "sports", "baseball"},
		{"news", "sports", "baseball"},
		{"news", "sports", "baseball"},
		{"news", "sports"},
		{"news", "sports"},
		{"news", "france", "paris"},
		{"news", "france", "paris"},
		{"news", "france", "paris"},
		{"news", "france"},
		{"news", "france"},
		{"news"},
		{"election"},
		{"election"},
		{"election"},
		{},
		{},
		{},
		{},
		{"rare"},
	}
	return terms, docTerms
}

// fixtureConfig exercises every nested option so taxonomy-backed builders
// get real inputs: an evidence source that endorses france→paris and
// hypernym chains for the concrete terms.
func fixtureConfig(workers int) BuildConfig {
	return BuildConfig{
		MinDF:   2,
		Workers: workers,
		Evidence: EvidenceOptions{
			Sources: []TaxonomicEvidence{EvidenceFunc{
				EvidenceName: "fixture",
				Fn: func(parent, child string) float64 {
					if parent == "france" && child == "paris" {
						return 1
					}
					return 0
				},
			}},
			Threshold: 0.6,
		},
		Chains: ChainFunc(func(term string) []string {
			switch term {
			case "baseball":
				return []string{"sports"}
			case "paris":
				return []string{"france", "europe"}
			case "election":
				return []string{"politics", "news"}
			}
			return nil
		}),
	}
}

// TestRegistry: the four stock builders are registered, Names is sorted,
// and Lookup round-trips every name to a builder that claims it.
func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("Names() = %v, want at least 4 builders", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, want := range []string{"agglomerative", "evidence", "subsumption", "treemin"} {
		b, ok := Lookup(want)
		if !ok {
			t.Fatalf("Lookup(%q) missing", want)
		}
		if b.Name() != want {
			t.Fatalf("Lookup(%q).Name() = %q", want, b.Name())
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown builder succeeded")
	}
}

type dummyBuilder struct{ name string }

func (d dummyBuilder) Name() string { return d.name }
func (d dummyBuilder) Build(context.Context, []string, [][]string, BuildConfig) (*Forest, error) {
	return &Forest{index: map[string]*Node{}}, nil
}

// TestRegisterPanics: nil builders, empty names, and duplicate names are
// programmer errors and panic at registration time.
func TestRegisterPanics(t *testing.T) {
	mustPanic := func(label string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", label)
			}
		}()
		fn()
	}
	mustPanic("nil", func() { Register(nil) })
	mustPanic("empty name", func() { Register(dummyBuilder{}) })
	mustPanic("duplicate", func() { Register(dummyBuilder{name: "subsumption"}) })
}

// TestBuilderInvariants runs the builder-agnostic contract over every
// registered strategy: structurally sound forests, every input term
// placed or dropped only for an explainable reason (df below the floor),
// byte-identical output at 1 and 8 workers, and honored cancellation.
// CI runs this test under -race so the worker-sharded sweeps are checked
// for data races, not just determinism.
func TestBuilderInvariants(t *testing.T) {
	terms, docTerms := builderFixture()
	df := map[string]int{}
	for _, row := range docTerms {
		seen := map[string]bool{}
		for _, term := range row {
			if !seen[term] {
				seen[term] = true
				df[term]++
			}
		}
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			b, ok := Lookup(name)
			if !ok {
				t.Fatalf("Lookup(%q) failed", name)
			}
			cfg := fixtureConfig(1)
			forest, err := b.Build(context.Background(), terms, docTerms, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkForestInvariants(t, forest)

			// Every distinct input term is either in the forest or sat
			// below the df floor (taxonomy-only builders place everything).
			for _, term := range terms {
				if _, placed := forest.Find(term); !placed && df[term] >= cfg.MinDF {
					t.Errorf("term %q (df %d) missing from %s forest with no explanation", term, df[term], name)
				}
			}

			// Determinism across worker counts.
			sequential := FormatTree(forest)
			parallelForest, err := b.Build(context.Background(), terms, docTerms, fixtureConfig(8))
			if err != nil {
				t.Fatal(err)
			}
			if got := FormatTree(parallelForest); got != sequential {
				t.Errorf("%s: Workers=8 forest differs from Workers=1:\n--- w1 ---\n%s\n--- w8 ---\n%s", name, sequential, got)
			}

			// Pruned-sweep equivalence: the posting-list-pruned sweep
			// (the default) must render the same forest as the dense
			// all-pairs reference. Registered builders inherit this
			// check, so a new strategy cannot ship a pruning shortcut
			// that silently drops pairs. (TestPrunedSweepEquivalence
			// repeats this on a larger skewed corpus.)
			denseCfg := fixtureConfig(1)
			denseCfg.denseSweep = true
			denseForest, err := b.Build(context.Background(), terms, docTerms, denseCfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := FormatTree(denseForest); got != sequential {
				t.Errorf("%s: dense reference sweep differs from pruned:\n--- pruned ---\n%s\n--- dense ---\n%s", name, sequential, got)
			}

			// A canceled context aborts the build with ctx's error, never a
			// partial forest.
			canceled, cancel := context.WithCancel(context.Background())
			cancel()
			if f, err := b.Build(canceled, terms, docTerms, cfg); err == nil {
				t.Errorf("%s: canceled build returned forest %v with nil error", name, f)
			}
		})
	}
}

// TestBuilderZeroConfig: BuildConfig{} is documented as valid for every
// builder — defaults kick in and the build succeeds.
func TestBuilderZeroConfig(t *testing.T) {
	terms, docTerms := builderFixture()
	for _, name := range Names() {
		b, _ := Lookup(name)
		forest, err := b.Build(context.Background(), terms, docTerms, BuildConfig{})
		if err != nil {
			t.Fatalf("%s: zero-config build failed: %v", name, err)
		}
		checkForestInvariants(t, forest)
	}
}
