package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/textdb"
)

// fallibleRes is a scriptable ResourceErr for cache and degradation
// tests. Its behaviour per call is popped from a script; an empty script
// succeeds.
type fallibleRes struct {
	name string

	mu     sync.Mutex
	script []error // nil entry = success; errPanic sentinel = panic
	calls  int
}

var errPanic = errors.New("panic sentinel")

func (f *fallibleRes) Name() string { return f.name }

func (f *fallibleRes) Context(term string) []string {
	out, _ := f.ContextErr(context.Background(), term)
	return out
}

func (f *fallibleRes) ContextErr(ctx context.Context, term string) ([]string, error) {
	f.mu.Lock()
	f.calls++
	var step error
	if len(f.script) > 0 {
		step = f.script[0]
		f.script = f.script[1:]
	}
	f.mu.Unlock()
	switch {
	case step == nil:
		return []string{"ctx:" + term}, nil
	case errors.Is(step, errPanic):
		panic("fallibleRes: scripted panic")
	default:
		return nil, step
	}
}

func (f *fallibleRes) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func TestCacheErrorNotCached(t *testing.T) {
	r := &fallibleRes{name: "svc", script: []error{errors.New("boom"), nil}}
	c := NewResourceCache()
	ctx := context.Background()

	if _, err := c.LookupErr(ctx, r, "jazz"); err == nil {
		t.Fatal("want first lookup to fail")
	}
	if c.Len() != 0 {
		t.Fatalf("failed lookup left %d cache entries", c.Len())
	}
	out, err := c.LookupErr(ctx, r, "jazz")
	if err != nil {
		t.Fatalf("second lookup: %v", err)
	}
	if len(out) != 1 || out[0] != "ctx:jazz" {
		t.Fatalf("out = %v", out)
	}
	// Third lookup is served from cache: no new resource call.
	before := r.callCount()
	if _, err := c.LookupErr(ctx, r, "jazz"); err != nil {
		t.Fatal(err)
	}
	if r.callCount() != before {
		t.Fatal("cached success re-queried the resource")
	}
}

// TestCacheErrorReleasesWaiters: a leader whose derivation errors must
// not wedge concurrent waiters — they elect a new leader and retry, and
// the eventual success is cached.
func TestCacheErrorReleasesWaiters(t *testing.T) {
	const waiters = 8
	r := &fallibleRes{name: "svc", script: []error{errors.New("boom")}} // first call fails, rest succeed
	c := NewResourceCache()

	var wg sync.WaitGroup
	var succ, fail atomic.Int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.LookupErr(context.Background(), r, "jazz"); err != nil {
				fail.Add(1)
			} else {
				succ.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters wedged after leader error")
	}
	// Exactly the leader that drew the scripted error fails; everyone
	// else retries into the cached success.
	if fail.Load() != 1 || succ.Load() != waiters-1 {
		t.Fatalf("succ=%d fail=%d, want %d/1", succ.Load(), fail.Load(), waiters-1)
	}
}

// TestCachePanicReleasesWaiters: a panicking leader must not wedge
// waiters either; the panic propagates to the leader's own caller only.
func TestCachePanicReleasesWaiters(t *testing.T) {
	const waiters = 8
	r := &fallibleRes{name: "svc", script: []error{errPanic}}
	c := NewResourceCache()

	var wg sync.WaitGroup
	var succ, panicked atomic.Int64
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					panicked.Add(1)
				}
			}()
			if _, err := c.LookupErr(context.Background(), r, "jazz"); err == nil {
				succ.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters wedged after leader panic")
	}
	if panicked.Load() != 1 || succ.Load() != waiters-1 {
		t.Fatalf("succ=%d panicked=%d, want %d/1", succ.Load(), panicked.Load(), waiters-1)
	}
	// And the cache is usable afterwards.
	if out := c.Lookup(r, "jazz"); len(out) != 1 {
		t.Fatalf("post-panic lookup = %v", out)
	}
}

func TestCacheLookupErrCancellation(t *testing.T) {
	// A waiter blocked on a slow leader can bail out through its context.
	block := make(chan struct{})
	r := &blockingRes{block: block}
	c := NewResourceCache()

	leaderStarted := make(chan struct{})
	go func() {
		close(leaderStarted)
		c.LookupErr(context.Background(), r, "jazz")
	}()
	<-leaderStarted
	for r.started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.LookupErr(ctx, r, "jazz"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(block) // release the leader
}

type blockingRes struct {
	block   chan struct{}
	started atomic.Int64
}

func (b *blockingRes) Name() string { return "blocking" }
func (b *blockingRes) Context(term string) []string {
	out, _ := b.ContextErr(context.Background(), term)
	return out
}
func (b *blockingRes) ContextErr(ctx context.Context, term string) ([]string, error) {
	b.started.Add(1)
	<-b.block
	return []string{"late"}, nil
}

// downRes always fails: a permanent outage as the degradation reporting
// sees it.
type downRes struct{ name string }

func (d downRes) Name() string { return d.name }
func (d downRes) Context(term string) []string {
	return nil
}
func (d downRes) ContextErr(ctx context.Context, term string) ([]string, error) {
	return nil, fmt.Errorf("%s: permanently down", d.name)
}

// okRes always succeeds.
type okRes struct{ name string }

func (o okRes) Name() string { return o.name }
func (o okRes) Context(term string) []string {
	return []string{o.name + " of " + term}
}

func TestDeriveContextReportDegradation(t *testing.T) {
	important := [][]string{
		{"alpha", "beta"},
		{"beta"},
		{},
		{"gamma"},
	}
	for _, workers := range []int{1, 4} {
		out, degs, err := DeriveContextReport(context.Background(), important,
			[]Resource{downRes{"dead"}, okRes{"live"}}, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// The run proceeds on the surviving resource.
		if len(out[0]) == 0 || out[0][0] != "live of alpha" {
			t.Fatalf("workers=%d: out[0] = %v", workers, out[0])
		}
		if len(degs) != 1 {
			t.Fatalf("workers=%d: degs = %+v", workers, degs)
		}
		d := degs[0]
		if d.Name != "dead" || d.Kind != "resource" {
			t.Fatalf("workers=%d: %+v", workers, d)
		}
		// 4 failed (doc, term) lookups across 3 distinct documents.
		if d.Failures != 4 || d.Docs != 3 {
			t.Fatalf("workers=%d: Failures=%d Docs=%d, want 4/3", workers, d.Failures, d.Docs)
		}
		if d.LastErr == "" {
			t.Fatalf("workers=%d: empty LastErr", workers)
		}
	}
}

// downExtractor fails every document.
type downExtractor struct{}

func (downExtractor) Name() string                 { return "dead-ex" }
func (downExtractor) Extract(text string) []string { return nil }
func (downExtractor) ExtractErr(ctx context.Context, text string) ([]string, error) {
	return nil, errors.New("dead-ex: down")
}

// okExtractor returns the document's first word.
type okExtractor struct{}

func (okExtractor) Name() string { return "ok-ex" }
func (okExtractor) Extract(text string) []string {
	terms := textdb.ExtractTerms(text)
	if len(terms) == 0 {
		return nil
	}
	return terms[:1]
}

func TestIdentifyImportantReportDegradation(t *testing.T) {
	corpus := textdb.NewCorpus()
	for i := 0; i < 5; i++ {
		corpus.Add(&textdb.Document{Title: "doc", Text: fmt.Sprintf("word%d here", i)})
	}
	for _, workers := range []int{1, 4} {
		out, degs, err := IdentifyImportantReport(context.Background(), corpus,
			[]Extractor{downExtractor{}, okExtractor{}}, 0, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, terms := range out {
			if len(terms) == 0 {
				t.Fatalf("workers=%d: doc %d got no terms from surviving extractor", workers, i)
			}
		}
		if len(degs) != 1 {
			t.Fatalf("workers=%d: degs = %+v", workers, degs)
		}
		d := degs[0]
		if d.Name != "dead-ex" || d.Kind != "extractor" || d.Failures != 5 || d.Docs != 5 {
			t.Fatalf("workers=%d: %+v", workers, d)
		}
	}
}

func TestRunContextReportsDegradations(t *testing.T) {
	corpus := textdb.NewCorpus()
	for i := 0; i < 6; i++ {
		corpus.Add(&textdb.Document{
			Title: "jazz concert",
			Text:  fmt.Sprintf("jazz concert downtown number %d", i),
		})
	}
	p, err := New(Config{
		Extractors: []Extractor{okExtractor{}},
		Resources:  []Resource{downRes{"dead"}, okRes{"live"}},
		TopK:       10,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degradations) != 1 || res.Degradations[0].Name != "dead" {
		t.Fatalf("Degradations = %+v", res.Degradations)
	}
}

func TestDegradationSkipsCancellation(t *testing.T) {
	// A canceled run must surface the context error, not fabricate
	// dependency degradations out of ctx.Err-caused failures.
	important := [][]string{{"a"}, {"b"}, {"c"}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, degs, err := DeriveContextReport(ctx, important, []Resource{okRes{"live"}}, nil, 2)
	if err == nil {
		t.Fatal("want error from canceled run")
	}
	if len(degs) != 0 {
		t.Fatalf("cancellation produced degradations: %+v", degs)
	}
}
