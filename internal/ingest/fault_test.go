package ingest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/browse"
	"repro/internal/core"
)

// toggleResource is a ResourceErr whose availability flips at runtime —
// the test's stand-in for a remote service outage and recovery.
type toggleResource struct {
	mapResource
	down atomic.Bool
}

func (r *toggleResource) ContextErr(ctx context.Context, term string) ([]string, error) {
	if r.down.Load() {
		return nil, errors.New("world: service down")
	}
	return r.m[term], nil
}

func (r *toggleResource) Context(term string) []string {
	out, _ := r.ContextErr(context.Background(), term)
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeadLetterAndRetry(t *testing.T) {
	res := &toggleResource{mapResource: testResource()}
	cfg := testConfig()
	cfg.Resources = []core.Resource{res}
	cfg.EpochDocs = 1000 // publish only on demand
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(testDocs(3), false); err != nil {
		t.Fatal(err)
	}
	ing.Start()
	defer drain(t, ing)

	// The resource goes down; the next submissions fail analysis and are
	// dead-lettered rather than half-ingested.
	res.down.Store(true)
	docs := testDocs(5)
	for _, d := range docs[3:5] {
		if err := ing.SubmitWait(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "dead letters", func() bool { return ing.Stats().DeadLetters == 2 })
	st := ing.Stats()
	if st.DocsIngested != 3 {
		t.Fatalf("failed documents were ingested: DocsIngested = %d, want 3", st.DocsIngested)
	}
	if st.AnalysisFailures != 2 {
		t.Fatalf("AnalysisFailures = %d, want 2", st.AnalysisFailures)
	}
	dls := ing.DeadLetters()
	if len(dls) != 2 {
		t.Fatalf("DeadLetters() returned %d entries", len(dls))
	}
	for _, dl := range dls {
		if dl.Attempts != 1 || dl.Err == "" || dl.Doc == nil {
			t.Fatalf("underspecified dead letter: %+v", dl)
		}
	}

	// Retrying while still down bumps attempts and re-queues.
	n, err := ing.RetryDeadLetters(context.Background())
	if err != nil || n != 0 {
		t.Fatalf("retry while down = (%d, %v), want (0, nil)", n, err)
	}
	if dls := ing.DeadLetters(); len(dls) != 2 || dls[0].Attempts != 2 {
		t.Fatalf("after failed retry: %+v", dls)
	}

	// The resource recovers; a retry admits everything.
	res.down.Store(false)
	n, err = ing.RetryDeadLetters(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("retry after recovery = (%d, %v), want (2, nil)", n, err)
	}
	if got := ing.Stats().DeadLetters; got != 0 {
		t.Fatalf("DLQ not drained: %d", got)
	}
	waitFor(t, "ingestion", func() bool { return ing.Stats().DocsIngested == 5 })
}

func TestDeadLetterBounded(t *testing.T) {
	res := &toggleResource{mapResource: testResource()}
	cfg := testConfig()
	cfg.Resources = []core.Resource{res}
	cfg.DeadLetterSize = 2
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(testDocs(2), false); err != nil {
		t.Fatal(err)
	}
	ing.Start()
	res.down.Store(true)
	docs := testDocs(6)
	for _, d := range docs[2:6] {
		if err := ing.SubmitWait(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "dead letters to settle", func() bool { return ing.Stats().AnalysisFailures == 4 })
	st := ing.Stats()
	if st.DeadLetters != 2 {
		t.Fatalf("DLQ size = %d, want bound 2", st.DeadLetters)
	}
	if st.DeadLetterDropped != 2 {
		t.Fatalf("DeadLetterDropped = %d, want 2", st.DeadLetterDropped)
	}
	res.down.Store(false)
	drain(t, ing)

	if _, err := ing.RetryDeadLetters(context.Background()); err != ErrClosed {
		t.Fatalf("RetryDeadLetters after Close = %v, want ErrClosed", err)
	}
}

// TestDrainUnderLoad is the satellite robustness check on shutdown: with
// producers still submitting, Close must (a) leak no goroutines, and (b)
// leave every document either fully ingested or definitively rejected —
// accepted submissions are never silently dropped.
func TestDrainUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := testConfig()
	cfg.EpochDocs = 1000
	cfg.QueueSize = 8 // small queue: Close races a full pipe
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const bootstrapped = 2
	if err := ing.Bootstrap(testDocs(bootstrapped), false); err != nil {
		t.Fatal(err)
	}
	ing.Start()

	const producers = 4
	const perProducer = 50
	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				doc := testDocs(1)[0]
				doc.Title = fmt.Sprintf("load %d-%d", p, i)
				switch err := ing.Submit(doc); err {
				case nil:
					accepted.Add(1)
				case ErrClosed, ErrQueueFull:
					rejected.Add(1) // definite rejection: the caller knows
				default:
					t.Errorf("Submit: unexpected error %v", err)
					return
				}
			}
		}(p)
	}

	// Close while producers are mid-flight: wait for real submissions to
	// be in progress instead of a blind sleep, so the race-window this
	// test exercises exists on slow CI runners too.
	waitFor(t, "producers in flight", func() bool { return accepted.Load()+rejected.Load() > 0 })
	if err := ing.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if got, want := accepted.Load()+rejected.Load(), int64(producers*perProducer); got != want {
		t.Fatalf("submissions unaccounted for: %d of %d", got, want)
	}
	// Every accepted document completed the pipeline before Close
	// returned; nothing queued was dropped.
	if got, want := ing.Stats().DocsIngested, accepted.Load()+bootstrapped; got != want {
		t.Fatalf("DocsIngested = %d, want %d accepted + %d bootstrap", got, accepted.Load(), bootstrapped)
	}
	if got := ing.Current().MatchCount(browse.Selection{}); int64(got) != accepted.Load()+bootstrapped {
		t.Fatalf("served interface has %d docs, want %d", got, accepted.Load()+bootstrapped)
	}

	// No goroutine leak: intake workers and the scheduler are gone.
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC() // nudge finalizer/timer goroutines to exit
		return runtime.NumGoroutine() <= before+2
	})
}

// TestLRUCacheErrorNotCached: the bounded LRU never caches failures, so
// a recovered resource is consulted again immediately.
func TestLRUCacheErrorNotCached(t *testing.T) {
	res := &toggleResource{mapResource: testResource()}
	c := newLRUCache(16)
	res.down.Store(true)
	if _, err := c.LookupErr(context.Background(), res, "chirac"); err == nil {
		t.Fatal("want error while down")
	}
	if c.Len() != 0 {
		t.Fatalf("error cached: %d entries", c.Len())
	}
	res.down.Store(false)
	out, err := c.LookupErr(context.Background(), res, "chirac")
	if err != nil || len(out) != 2 {
		t.Fatalf("after recovery: %v, %v", out, err)
	}
	if c.Len() != 1 {
		t.Fatalf("success not cached: %d entries", c.Len())
	}
}
