// Package overload is the admission-control layer that keeps the
// serving stack useful when offered load exceeds capacity. Without it
// the server has no behavior between "healthy" and "drowning": excess
// requests pile up unboundedly in the Go runtime, every response slows
// down together, and by the time latency is visible the queue is
// already hopeless. The paper's interactive faceted browsing model
// (Section V-E) only works if drill-down queries stay fast, so under
// saturation the right move is to serve fewer requests well — shed the
// excess quickly and keep tail latency bounded for what is admitted.
//
// The package has three pieces:
//
//   - Limiter: an adaptive concurrency limiter. The limit follows an
//     AIMD schedule driven by observed completion latency against a
//     moving baseline — additive increase while latency holds near the
//     baseline, multiplicative decrease when it degrades — so capacity
//     is discovered rather than configured. A small bounded wait queue
//     absorbs bursts; waiters are shed the moment their context
//     deadline fires, so the queue can never hide unbounded delay.
//   - Governor: per-route-class limiters. Cheap reads, expensive
//     cross-tabulations, and ingest writes saturate at very different
//     request counts, so each class adapts its own limit and a flood of
//     one class cannot starve the others.
//   - ParseBudget/FormatBudget: the X-Deadline-Budget header codec for
//     deadline propagation. A front end attaches its remaining latency
//     budget; the serve middleware turns it into a context deadline;
//     the cluster coordinator decrements it before scatter-gather so
//     shards inherit only what is left.
//
// Determinism: the limiter's state transitions depend solely on the
// sequence of Acquire/Release calls and the latency samples handed to
// Release — never on wall-clock reads — so tests drive the AIMD
// schedule with synthetic latencies and assert exact limit
// trajectories, the same virtual-clock discipline internal/resilient
// uses for its breaker.
package overload

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obsv"
)

// ErrShed is returned by Acquire when a request is refused admission —
// the limiter is at its limit and the wait queue is full, or the
// caller's context expired while queued. Handlers translate it into a
// 429/503 with Retry-After.
var ErrShed = errors.New("overload: shed")

// Class partitions requests by cost so each class adapts its own
// concurrency limit: a flood of cheap reads cannot starve ingest, and a
// handful of expensive cross-tabulations cannot freeze browsing.
type Class string

const (
	// ClassRead covers cheap indexed reads (facets, docs, dates, the
	// HTML front end).
	ClassRead Class = "read"
	// ClassExpensive covers cross-tabulations and other wide scans.
	ClassExpensive Class = "expensive"
	// ClassWrite covers ingest writes; sheds answer 429 (slow down)
	// where read sheds answer 503 (server busy).
	ClassWrite Class = "write"
)

// Classes lists every class a Governor maintains.
var Classes = []Class{ClassRead, ClassExpensive, ClassWrite}

// GovernorConfig assembles a Governor. Zero-value class configs select
// per-class defaults sized for their typical cost.
type GovernorConfig struct {
	Read      Config
	Expensive Config
	Write     Config

	// Now, when set, replaces time.Now for queue-wait measurement
	// (virtual-clock tests); the AIMD schedule itself never reads a
	// clock.
	Now func() time.Time
	// Metrics, when set, receives per-class instruments:
	// overload.<class>.{admitted,shed,queued} counters, an
	// overload.<class>.limit gauge, and an overload.<class>.queue_wait
	// histogram.
	Metrics *obsv.Registry
}

// Governor holds one adaptive Limiter per request class.
type Governor struct {
	limiters map[Class]*Limiter
}

// NewGovernor builds the per-class limiters. Class defaults: reads
// start at limit 64 (queue 128), expensive queries at 8 (queue 16),
// writes at 16 (queue 32); every class adapts from there.
func NewGovernor(cfg GovernorConfig) *Governor {
	defaults := func(c Config, limit, queue int) Config {
		if c.InitialLimit == 0 {
			c.InitialLimit = limit
		}
		if c.Queue == 0 {
			c.Queue = queue
		}
		if c.Now == nil {
			c.Now = cfg.Now
		}
		if c.Metrics == nil {
			c.Metrics = cfg.Metrics
		}
		return c
	}
	g := &Governor{limiters: map[Class]*Limiter{
		ClassRead:      NewLimiter(string(ClassRead), defaults(cfg.Read, 64, 128)),
		ClassExpensive: NewLimiter(string(ClassExpensive), defaults(cfg.Expensive, 8, 16)),
		ClassWrite:     NewLimiter(string(ClassWrite), defaults(cfg.Write, 16, 32)),
	}}
	return g
}

// Limiter returns the limiter backing a class (nil for unknown
// classes).
func (g *Governor) Limiter(class Class) *Limiter { return g.limiters[class] }

// Acquire admits one request of the given class, blocking in the
// class's bounded wait queue when the limiter is at its limit. The
// returned release must be called exactly once with the request's
// service latency (the AIMD signal). ErrShed (possibly wrapping the
// context error) means the request was refused and nothing must be
// released. An unknown class is admitted unconditionally — admission
// control must fail open, not 503 the world over a typo.
func (g *Governor) Acquire(ctx context.Context, class Class) (release func(latency time.Duration), err error) {
	l := g.limiters[class]
	if l == nil {
		return func(time.Duration) {}, nil
	}
	return l.Acquire(ctx)
}

// RetryAfterSeconds estimates how long a shed client should wait before
// retrying: the class's recent per-request latency times the number of
// requests ahead of it, clamped to [1s, 30s]. It is the Retry-After
// header value for shed responses.
func (g *Governor) RetryAfterSeconds(class Class) int {
	l := g.limiters[class]
	if l == nil {
		return 1
	}
	return l.retryAfterSeconds()
}

// Wrap is a convenience for non-HTTP callers: run fn under admission
// control, measuring its latency as the AIMD sample.
func (g *Governor) Wrap(ctx context.Context, class Class, fn func(context.Context) error) error {
	l := g.limiters[class]
	if l == nil {
		return fn(ctx)
	}
	release, err := l.Acquire(ctx)
	if err != nil {
		return err
	}
	start := l.cfg.Now()
	err = fn(ctx)
	release(l.cfg.Now().Sub(start))
	return err
}

// shedError builds the ErrShed chain for one refusal reason.
func shedError(reason string) error {
	return fmt.Errorf("%w: %s", ErrShed, reason)
}
