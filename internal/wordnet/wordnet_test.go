package wordnet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ontology"
)

var testIsa = map[string]string{
	"entity":         "",
	"organism":       "entity",
	"person":         "organism",
	"leader":         "person",
	"politician":     "leader",
	"senator":        "politician",
	"artifact":       "entity",
	"vehicle":        "artifact",
	"car":            "vehicle",
	"prime minister": "politician",
}

func buildTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := FromIsa(testIsa)
	if err != nil {
		t.Fatalf("FromIsa: %v", err)
	}
	return db
}

func TestGenerateParseRoundTrip(t *testing.T) {
	db := buildTestDB(t)
	if db.Size() != len(testIsa) {
		t.Fatalf("got %d synsets, want %d", db.Size(), len(testIsa))
	}
	for lemma := range testIsa {
		if !db.Contains(lemma) {
			t.Errorf("lemma %q missing after round trip", lemma)
		}
	}
}

func TestOffsetsAreRealByteOffsets(t *testing.T) {
	idx, data, err := Generate(testIsa)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Parse(bytes.NewReader(idx), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Every synset's line in data.noun must literally start at its offset —
	// this is the property real WordNet tools depend on.
	for off := range db.synsets {
		if int(off) >= len(data) {
			t.Fatalf("offset %d beyond file", off)
		}
		line := data[off:]
		end := bytes.IndexByte(line, '\n')
		if end < 0 {
			t.Fatalf("no line at offset %d", off)
		}
		fields := strings.Fields(string(line[:end]))
		if len(fields) == 0 || len(fields[0]) != 8 {
			t.Fatalf("offset %d does not start a synset line: %q", off, line[:end])
		}
	}
}

func TestHypernymsChain(t *testing.T) {
	db := buildTestDB(t)
	got := db.Hypernyms("senator", 3)
	want := []string{"politician", "leader", "person"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Hypernyms(senator,3) = %v, want %v", got, want)
	}
	if got := db.Hypernyms("senator", 1); !reflect.DeepEqual(got, []string{"politician"}) {
		t.Fatalf("depth 1 = %v", got)
	}
	if db.Hypernyms("entity", 3) != nil {
		t.Fatal("root should have no hypernyms")
	}
}

func TestNamedEntitiesNotCovered(t *testing.T) {
	db := buildTestDB(t)
	// The paper's central observation about WordNet: no coverage of named
	// entities.
	for _, ne := range []string{"jacques chirac", "hillary clinton", "2005 g8 summit"} {
		if db.Contains(ne) {
			t.Errorf("named entity %q should not be in WordNet", ne)
		}
		if db.Hypernyms(ne, 3) != nil {
			t.Errorf("named entity %q should have no hypernyms", ne)
		}
	}
}

func TestMultiWordLemma(t *testing.T) {
	db := buildTestDB(t)
	if !db.Contains("prime minister") {
		t.Fatal("collocation lost in round trip")
	}
	got := db.Hypernyms("prime minister", 2)
	want := []string{"politician", "leader"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// The file form must use underscores.
	idx, _, _ := Generate(testIsa)
	if !bytes.Contains(idx, []byte("prime_minister")) {
		t.Fatal("index.noun should store underscored lemma")
	}
}

func TestHyponyms(t *testing.T) {
	db := buildTestDB(t)
	got := db.Hyponyms("leader")
	if !reflect.DeepEqual(got, []string{"politician"}) {
		t.Fatalf("Hyponyms(leader) = %v", got)
	}
}

func TestGenerateRejectsDanglingHypernym(t *testing.T) {
	_, _, err := Generate(map[string]string{"car": "vehicle"})
	if err == nil {
		t.Fatal("expected error for dangling hypernym")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name  string
		index string
		data  string
	}{
		{"bad offset width", "", "123 03 n 01 car 0 000 | gloss\n"},
		{"bad w_cnt", "", "00000000 03 n zz car 0 000 | gloss\n"},
		{"truncated pointer", "", "00000000 03 n 01 car 0 001 @ 00000099\n"},
		{"bad ss_type", "", "00000000 03 v 01 car 0 000 | gloss\n"},
		{"dangling pointer", "", "00000000 03 n 01 car 0 001 @ 00000099 n 0000 | g\n"},
		{"bad index count", "car n x 0 1 0 00000000\n", "00000000 03 n 01 car 0 000 | g\n"},
		{"index points nowhere", "car n 1 0 1 0 00009999\n", "00000000 03 n 01 car 0 000 | g\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.index), strings.NewReader(tc.data))
			if err == nil {
				t.Fatalf("Parse accepted malformed input")
			}
		})
	}
}

func TestParseSkipsLicenseHeader(t *testing.T) {
	db := buildTestDB(t)
	// The generated files carry a two-space header; parsing succeeded, so
	// the header was skipped. Also verify header presence explicitly.
	idx, data, _ := Generate(testIsa)
	if !bytes.HasPrefix(idx, []byte("  1 ")) || !bytes.HasPrefix(data, []byte("  1 ")) {
		t.Fatal("generated files lack the license header block")
	}
	if db.Size() == 0 {
		t.Fatal("no synsets parsed")
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse(strings.NewReader(""), strings.NewReader("garbage line\n"))
	if err == nil {
		t.Fatal("expected parse error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.File != "data.noun" || pe.Line != 1 {
		t.Fatalf("position = %s:%d", pe.File, pe.Line)
	}
}

func TestFullOntologyLexiconRoundTrip(t *testing.T) {
	db, err := FromIsa(ontology.IsaLexicon())
	if err != nil {
		t.Fatalf("FromIsa(full lexicon): %v", err)
	}
	if db.Size() < 300 {
		t.Fatalf("full lexicon produced only %d synsets", db.Size())
	}
	// Spot-check a chain against the ontology's own traversal.
	want := ontology.HypernymChain("senator")
	got := db.Hypernyms("senator", len(want)+2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chains diverge: wordnet %v vs ontology %v", got, want)
	}
}

func TestWriteLoadFiles(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFiles(dir, testIsa); err != nil {
		t.Fatal(err)
	}
	db, err := LoadFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != len(testIsa) {
		t.Fatalf("loaded %d synsets", db.Size())
	}
	if _, err := LoadFiles(t.TempDir()); err == nil {
		t.Fatal("expected error for missing files")
	}
}

func TestLemmasSorted(t *testing.T) {
	db := buildTestDB(t)
	lemmas := db.Lemmas()
	if len(lemmas) != len(testIsa) {
		t.Fatalf("got %d lemmas", len(lemmas))
	}
	for i := 1; i < len(lemmas); i++ {
		if lemmas[i-1] >= lemmas[i] {
			t.Fatalf("lemmas not sorted at %d: %q >= %q", i, lemmas[i-1], lemmas[i])
		}
	}
}

func TestQuickGenerateParseAnyTree(t *testing.T) {
	// Property: any valid parent map (tree over a closed lemma set)
	// round-trips through the file format with hypernym chains intact.
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	f := func(parents [6]uint8) bool {
		isa := map[string]string{}
		for i, w := range words {
			p := int(parents[i]) % (i + 1) // parent must be an earlier word → acyclic
			if p == i || i == 0 {
				isa[w] = ""
			} else {
				isa[w] = words[p]
			}
		}
		db, err := FromIsa(isa)
		if err != nil {
			return false
		}
		for w, p := range isa {
			hyp := db.Hypernyms(w, 1)
			if p == "" {
				if hyp != nil {
					return false
				}
			} else if len(hyp) != 1 || hyp[0] != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceExcludesUniqueBeginners(t *testing.T) {
	db := buildTestDB(t)
	r := NewResource(db, 10)
	ctx := r.Context("senator")
	for _, c := range ctx {
		if c == "entity" || c == "organism" {
			t.Fatalf("unique beginner %q leaked into context: %v", c, ctx)
		}
	}
	if len(ctx) == 0 {
		t.Fatal("informative hypernyms should remain")
	}
	// A word whose entire chain is top-ontology yields nothing.
	if got := r.Context("organism"); got != nil {
		t.Fatalf("organism context = %v, want nil", got)
	}
}

func TestResourceMorphy(t *testing.T) {
	db := buildTestDB(t)
	r := NewResource(db, 2)
	plural := r.Context("senators")
	singular := r.Context("senator")
	if len(plural) == 0 || len(singular) == 0 {
		t.Fatal("morphy failed to resolve plural")
	}
	if plural[0] != singular[0] {
		t.Fatalf("plural %v vs singular %v", plural, singular)
	}
	if r.Context("jacques chirac") != nil {
		t.Fatal("named entity should resolve to nothing")
	}
}

func TestMorphyDetachments(t *testing.T) {
	db := buildTestDB(t)
	cases := map[string]string{
		"cars":            "car",
		"prime ministers": "prime minister",
	}
	for in, want := range cases {
		got, ok := db.Morphy(in)
		if !ok || got != want {
			t.Errorf("Morphy(%q) = %q/%v, want %q", in, got, ok, want)
		}
	}
	if _, ok := db.Morphy("xyzzys"); ok {
		t.Error("unknown plural resolved")
	}
}
