package facet

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/eval"
)

// TestBenchHierarchySchema smoke-parses BENCH_hierarchy.json when present
// (CI regenerates it with `experiments -run hierarchybakeoff` and then
// runs this), so a drift in the bake-off writer fails loudly rather than
// silently producing an unparseable trajectory.
func TestBenchHierarchySchema(t *testing.T) {
	data, err := os.ReadFile("BENCH_hierarchy.json")
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("BENCH_hierarchy.json not present (run `experiments -run hierarchybakeoff` to produce it)")
		}
		t.Fatal(err)
	}
	var got eval.BakeoffBench
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("BENCH_hierarchy.json does not parse: %v", err)
	}
	if got.Benchmark != "hierarchybakeoff" {
		t.Fatalf("benchmark = %q, want hierarchybakeoff", got.Benchmark)
	}
	if got.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs = %d", got.GOMAXPROCS)
	}
	if got.Docs <= 0 || got.TopK <= 0 {
		t.Fatalf("docs = %d, top_k = %d", got.Docs, got.TopK)
	}
	if len(got.Points) < 4 {
		t.Fatalf("%d points, want one per registered builder (>= 4)", len(got.Points))
	}
	seen := map[string]bool{}
	for _, p := range got.Points {
		if p.Builder == "" || seen[p.Builder] {
			t.Fatalf("malformed or duplicate builder in point %+v", p)
		}
		seen[p.Builder] = true
		if p.Nodes < 0 || p.Roots < 0 || p.Millis < 0 {
			t.Fatalf("malformed point %+v", p)
		}
		for _, v := range []float64{p.OrphanRate, p.Precision, p.Recall} {
			if v < 0 || v > 1 {
				t.Fatalf("rate outside [0,1] in point %+v", p)
			}
		}
	}
	for _, want := range []string{"subsumption", "evidence", "treemin", "agglomerative"} {
		if !seen[want] {
			t.Fatalf("builder %q missing from trajectory", want)
		}
	}
}
