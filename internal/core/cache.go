package core

import (
	"context"
	"sync"
)

// ResourceCache memoizes Context lookups per resource name, so that
// pipelines and evaluation harnesses sharing a cache across many
// configurations pay for each distinct (resource, term) query once — the
// offline precomputation strategy of Section V-D.
//
// The cache is safe for concurrent use: the parallel batch pipeline
// shares one instance across all derive-context workers. Entries are
// spread over sharded locks to keep hot-term lookups from serializing,
// and each entry carries a single-flight guard so a term that several
// workers miss simultaneously is derived exactly once — every other
// worker blocks on that first derivation and reuses its result.
//
// Failure semantics: only successful derivations are cached. When the
// in-flight leader's derivation returns an error — or panics — the entry
// is removed before the waiters are released, so they elect a new leader
// and retry rather than wedging forever or replaying a cached failure.
// A resource that is down therefore costs a (bounded, resilience-layer
// controlled) re-query on every lookup until it recovers, and recovers
// cleanly the moment it does.
type ResourceCache struct {
	shards [cacheShards]cacheShard
}

const cacheShards = 64

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

// cacheEntry is one (resource, term) slot. done is closed exactly once,
// when the leader either fills ctx (ok=true) or abandons the entry after
// an error or panic (ok=false, entry already removed from the map).
type cacheEntry struct {
	done chan struct{}
	ctx  []string
	ok   bool
}

// NewResourceCache returns an empty cache.
func NewResourceCache() *ResourceCache {
	c := &ResourceCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]*cacheEntry{}
	}
	return c
}

// Lookup queries the resource through the cache. Concurrent lookups of
// the same (resource, term) pair share one underlying Context call.
// Failures (for resources that also implement ResourceErr) are reported
// as empty context; use LookupErr to observe them.
func (c *ResourceCache) Lookup(r Resource, term string) []string {
	out, _ := c.LookupErr(context.Background(), AsResourceErr(r), term)
	return out
}

// LookupErr queries the fallible resource through the cache. Concurrent
// lookups of the same (resource, term) pair share one underlying
// ContextErr call; errors are returned to the caller that observed them
// and never cached, and waiting callers retry the derivation themselves
// when the leader fails. Waiting is interruptible through ctx.
func (c *ResourceCache) LookupErr(ctx context.Context, r ResourceErr, term string) ([]string, error) {
	key := r.Name() + "\x00" + term
	sh := &c.shards[fnv32a(key)%cacheShards]
	for {
		sh.mu.Lock()
		e, exists := sh.m[key]
		if !exists {
			e = &cacheEntry{done: make(chan struct{})}
			sh.m[key] = e
			sh.mu.Unlock()
			return c.fill(ctx, sh, key, e, r, term)
		}
		sh.mu.Unlock()
		select {
		case <-e.done:
			if e.ok {
				return e.ctx, nil
			}
			// The leader errored or panicked and removed the entry;
			// loop to elect a new leader — possibly this caller.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// fill runs the single derivation for an entry this caller leads. On any
// failure — error return or panic in the resource — the entry is removed
// from the map BEFORE done is closed, so released waiters re-enter the
// lookup loop and retry; the panic itself still propagates to the
// leader's caller.
func (c *ResourceCache) fill(ctx context.Context, sh *cacheShard, key string, e *cacheEntry, r ResourceErr, term string) (out []string, err error) {
	abandoned := true
	defer func() {
		if abandoned {
			sh.mu.Lock()
			if sh.m[key] == e {
				delete(sh.m, key)
			}
			sh.mu.Unlock()
		}
		close(e.done)
	}()
	out, err = r.ContextErr(ctx, term)
	if err != nil {
		return nil, err
	}
	e.ctx, e.ok = out, true
	abandoned = false
	return out, nil
}

// Len returns the number of cached (resource, term) entries, including
// in-flight derivations.
func (c *ResourceCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// fnv32a is the 32-bit FNV-1a hash, inlined to keep the shard selector
// allocation-free.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
