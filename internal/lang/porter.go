package lang

// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980). This is the classic five-step
// definition, implemented directly from the paper. The subsumption
// hierarchy builder and the significant-term extractor stem words so that
// "markets"/"market" and "leader"/"leaders" are counted as one term, as is
// standard in the IR systems the paper builds on (Sanderson & Croft 1999
// stem before computing subsumption).

// Stem returns the Porter stem of a lowercase word. Words shorter than
// three letters and words containing non a-z bytes are returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	b := []byte(word)
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isCons reports whether b[i] is a consonant in Porter's sense: not a
// vowel, and 'y' is a consonant only when preceded by a vowel position.
func isCons(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(b, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in b[:k].
func measure(b []byte) int {
	n := 0
	i := 0
	k := len(b)
	for i < k && isCons(b, i) {
		i++
	}
	for i < k {
		for i < k && !isCons(b, i) {
			i++
		}
		if i >= k {
			break
		}
		n++
		for i < k && isCons(b, i) {
			i++
		}
	}
	return n
}

// hasVowel reports whether b contains a vowel.
func hasVowel(b []byte) bool {
	for i := range b {
		if !isCons(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether b ends with a double consonant.
func endsDoubleCons(b []byte) bool {
	k := len(b)
	if k < 2 {
		return false
	}
	return b[k-1] == b[k-2] && isCons(b, k-1)
}

// endsCVC reports whether b ends consonant-vowel-consonant where the final
// consonant is not w, x, or y ("*o" condition in the paper).
func endsCVC(b []byte) bool {
	k := len(b)
	if k < 3 {
		return false
	}
	if !isCons(b, k-3) || isCons(b, k-2) || !isCons(b, k-1) {
		return false
	}
	switch b[k-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[len(b)-len(s):]) == s
}

// replaceSuffix replaces suffix old with new if the stem before old has
// measure > m. Returns the (possibly new) word and whether old matched.
func replaceSuffix(b []byte, old, new string, m int) ([]byte, bool) {
	if !hasSuffix(b, old) {
		return b, false
	}
	stem := b[:len(b)-len(old)]
	if measure(stem) > m {
		out := make([]byte, 0, len(stem)+len(new))
		out = append(out, stem...)
		out = append(out, new...)
		return out, true
	}
	return b, true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2]
	case hasSuffix(b, "ies"):
		return b[:len(b)-2]
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b[:len(b)-3]) > 0 {
			return b[:len(b)-1]
		}
		return b
	}
	var stem []byte
	switch {
	case hasSuffix(b, "ed") && hasVowel(b[:len(b)-2]):
		stem = b[:len(b)-2]
	case hasSuffix(b, "ing") && hasVowel(b[:len(b)-3]):
		stem = b[:len(b)-3]
	default:
		return b
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && hasVowel(b[:len(b)-1]) {
		out := make([]byte, len(b))
		copy(out, b)
		out[len(out)-1] = 'i'
		return out
	}
	return b
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		if out, matched := replaceSuffix(b, r.old, r.new, 0); matched {
			return out
		}
	}
	return b
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		if out, matched := replaceSuffix(b, r.old, r.new, 0); matched {
			return out
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stem := b[:len(b)-len(s)]
		if s == "ion" {
			if len(stem) == 0 {
				return b
			}
			last := stem[len(stem)-1]
			if last != 's' && last != 't' {
				return b
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return b
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stem := b[:len(b)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return b
}

func step5b(b []byte) []byte {
	if measure(b) > 1 && endsDoubleCons(b) && b[len(b)-1] == 'l' {
		return b[:len(b)-1]
	}
	return b
}

// StemPhrase stems each word of a normalized (space-separated) phrase.
func StemPhrase(phrase string) string {
	words := splitSpace(phrase)
	for i, w := range words {
		words[i] = Stem(w)
	}
	return joinSpace(words)
}

func splitSpace(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	return out
}

func joinSpace(words []string) string {
	n := 0
	for _, w := range words {
		n += len(w) + 1
	}
	if n == 0 {
		return ""
	}
	b := make([]byte, 0, n-1)
	for i, w := range words {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, w...)
	}
	return string(b)
}
