package distctx

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// FuzzDistctxContext feeds arbitrary corpora (docs separated by '\n',
// terms by ' ') through Build with fuzzer-chosen knobs and checks the
// invariants the rest of the pipeline depends on: no panics, output
// deterministic across worker counts, every neighbor list bounded by
// TopN and free of self-references, and Context stable across calls.
func FuzzDistctxContext(f *testing.F) {
	f.Add("jazz saxophone club\njazz saxophone\njazz radio\nweather radio", uint8(3), uint8(2), uint8(0), false)
	f.Add("a b c\na b c\na b\nd e", uint8(1), uint8(1), uint8(1), true)
	f.Add("", uint8(0), uint8(0), uint8(0), false)
	f.Add("x x x\nx y x y\ny y", uint8(5), uint8(2), uint8(2), true)
	f.Fuzz(func(t *testing.T, corpus string, topN, minCo, window uint8, llr bool) {
		var docs [][]string
		for _, line := range strings.Split(corpus, "\n") {
			docs = append(docs, strings.Fields(line))
		}
		cfg := Config{
			TopN:   int(topN%16) + 1,
			MinDF:  1,
			MinCo:  int(minCo%4) + 1,
			Window: int(window % 8),
		}
		if llr {
			cfg.Weight = WeightLLR
		}
		base, err := Build(context.Background(), docs, withWorkers(cfg, 1))
		if err != nil {
			t.Fatalf("Build(workers=1): %v", err)
		}
		again, err := Build(context.Background(), docs, withWorkers(cfg, 4))
		if err != nil {
			t.Fatalf("Build(workers=4): %v", err)
		}
		if !reflect.DeepEqual(base.neighbors, again.neighbors) {
			t.Fatalf("workers=4 model differs from sequential:\n%v\nvs\n%v", again.neighbors, base.neighbors)
		}
		for term, ns := range base.neighbors {
			if len(ns) > cfg.TopN {
				t.Fatalf("Context(%q) has %d neighbors, TopN=%d", term, len(ns), cfg.TopN)
			}
			for _, n := range ns {
				if n == term {
					t.Fatalf("Context(%q) contains itself", term)
				}
			}
			if got := base.Context(term); !reflect.DeepEqual(got, ns) {
				t.Fatalf("Context(%q) unstable across calls", term)
			}
		}
	})
}

func withWorkers(cfg Config, w int) Config {
	cfg.Workers = w
	return cfg
}
