// Package hierarchy builds browsing hierarchies over extracted facet
// terms. The primary algorithm is the subsumption method of Sanderson &
// Croft (SIGIR 1999), which the paper uses for hierarchy construction
// ("we used the subsumption algorithm ... that gave satisfactory
// results"): term x subsumes term y when P(x|y) ≥ θ (θ = 0.8) and
// P(y|x) < 1, with probabilities estimated from document co-occurrence.
//
// Construction is pluggable: every strategy implements Builder and is
// selected by name through the Register/Lookup/Names registry. Four are
// built in — "subsumption" (the paper's choice), "treemin" (a
// Stoica–Hearst-style tree-minimization builder over WordNet hypernym
// paths, the prior work the paper contrasts with), "evidence" (a
// Snow-style evidence-combination builder, the "newer algorithms [5] may
// give even better results" note), and "agglomerative" (average-linkage
// co-occurrence clustering over the posting bitsets).
package hierarchy

import (
	"context"
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Node is one term in a hierarchy.
type Node struct {
	Term     string
	DF       int // document frequency of the term in the analyzed collection
	Children []*Node
	Parent   *Node
}

// Forest is a set of per-facet trees.
type Forest struct {
	Roots []*Node
	index map[string]*Node
}

// Find returns the node for a term, if present.
func (f *Forest) Find(term string) (*Node, bool) {
	n, ok := f.index[term]
	return n, ok
}

// Size returns the number of nodes in the forest.
func (f *Forest) Size() int { return len(f.index) }

// Walk visits every node depth-first, parents before children.
func (f *Forest) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		fn(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	for _, r := range f.Roots {
		rec(r, 0)
	}
}

// SubsumptionConfig parameterizes BuildSubsumption.
//
// Deprecated: use BuildConfig with the "subsumption" Builder; the fields
// map one-to-one. This struct is kept so external callers compile.
type SubsumptionConfig struct {
	// Threshold is θ in P(x|y) ≥ θ; 0 selects the standard 0.8.
	Threshold float64
	// MinDF drops terms observed in fewer documents; 0 selects 2.
	MinDF int
	// MaxChildDFFraction as in BuildConfig; 0 selects 0.6.
	MaxChildDFFraction float64
	// Workers as in BuildConfig.
	Workers int
}

// BuildSubsumption builds a subsumption forest over the given terms.
// docTerms lists, for every document, which of the terms occur in it
// (term strings must come from terms; unknown strings are ignored).
//
// For every term y, the chosen parent is the most specific subsumer: the
// subsuming term x with the smallest df(x) (ties broken by higher P(x|y),
// then lexicographically), which produces deeper, more informative trees
// than attaching everything to the most frequent subsumer.
func BuildSubsumption(terms []string, docTerms [][]string, cfg SubsumptionConfig) (*Forest, error) {
	return BuildSubsumptionContext(context.Background(), terms, docTerms, cfg)
}

// BuildSubsumptionContext is BuildSubsumption with cancellation: ctx is
// checked between terms of the sharded O(terms²) sweep, and a canceled
// build returns ctx's error instead of a partially attached forest.
func BuildSubsumptionContext(ctx context.Context, terms []string, docTerms [][]string, cfg SubsumptionConfig) (*Forest, error) {
	return subsumptionBuilder{}.Build(ctx, terms, docTerms, BuildConfig{
		Threshold:          cfg.Threshold,
		MinDF:              cfg.MinDF,
		MaxChildDFFraction: cfg.MaxChildDFFraction,
		Workers:            cfg.Workers,
	})
}

// subsumptionBuilder is the registered "subsumption" strategy.
type subsumptionBuilder struct{}

// Name implements Builder.
func (subsumptionBuilder) Name() string { return "subsumption" }

// Build implements Builder.
func (subsumptionBuilder) Build(ctx context.Context, terms []string, docTerms [][]string, cfg BuildConfig) (*Forest, error) {
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.8
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("hierarchy: threshold %v outside [0,1]", cfg.Threshold)
	}
	if cfg.MinDF == 0 {
		cfg.MinDF = 2
	}
	if cfg.MaxChildDFFraction == 0 {
		cfg.MaxChildDFFraction = 0.6
	}
	st := newTermStats(terms, docTerms, cfg.MinDF)
	uniq, sets, df, alive, nDocs := st.uniq, st.sets, st.df, st.alive, st.nDocs

	// Parent selection. A subsumer must be strictly more general
	// (df(x) > df(y)): with P(x|y)·df(y) = P(y|x)·df(x), this is exactly
	// Sanderson & Croft's directionality P(x|y) > P(y|x); enforcing it on
	// document frequencies keeps the forest layered even when the
	// co-occurrence estimates saturate.
	//
	// Each term's parent is selected independently from the frozen
	// bitsets, so the sweep shards across workers; every worker writes
	// only its own terms' slots, and the slot array is folded into
	// parentOf in deterministic order afterwards. The default sweep is
	// pruned: P(x|y) ≥ θ > 0 needs co-occurrence, so only the candidate
	// partners the pairIndex yields can subsume y and everything else is
	// provably skippable. The dense all-pairs reference survives behind
	// cfg.denseSweep for the differential tests.
	parents := make([]int, len(alive))
	maxChildDF := int(cfg.MaxChildDFFraction * float64(nDocs))
	var ix *pairIndex
	var scratches []*pairScratch
	var counts []pairCounts
	if !cfg.denseSweep {
		ix = newPairIndex(st)
		nw := sweepWorkers(cfg.Workers)
		scratches = make([]*pairScratch, nw)
		counts = make([]pairCounts, nw)
	}
	err := parallel.For(ctx, len(alive), cfg.Workers, func(w, yi int) {
		parents[yi] = -1
		y := alive[yi]
		// Terms rejected by the cheap structural guards skip their whole
		// dense row — count it so candidate+skipped always reconstructs
		// the all-pairs iteration space.
		if df[y] == 0 { // degenerate posting list: nothing co-occurs with y
			if !cfg.denseSweep {
				counts[w].skipped += int64(len(alive) - 1)
			}
			return
		}
		if nDocs > 0 && df[y] > maxChildDF { // saturated term: keep as a facet-dimension root
			if !cfg.denseSweep {
				counts[w].skipped += int64(len(alive) - 1)
			}
			return
		}
		var best parentCand
		have := false
		consider := func(x, co int) {
			pxy := float64(co) / float64(df[y])
			pyx := float64(co) / float64(df[x])
			if pxy < cfg.Threshold || pyx >= 1 {
				return
			}
			cand := parentCand{idx: x, pxy: pxy, dfx: df[x], term: uniq[x]}
			if !have || moreSpecific(&cand, &best) {
				best, have = cand, true
			}
		}
		if cfg.denseSweep {
			for _, x := range alive {
				if x == y || df[x] <= df[y] {
					continue
				}
				consider(x, sets[x].AndCount(sets[y]))
			}
		} else {
			sc := scratches[w]
			if sc == nil {
				sc = ix.newScratch()
				scratches[w] = sc
			}
			yielded := int64(0)
			ix.forCandidates(yi, sc, thresholdMinCo(cfg.Threshold, df[y]), func(xi, co int) {
				yielded++
				x := alive[xi]
				if df[x] <= df[y] {
					return
				}
				counts[w].evaluated++
				consider(x, co)
			})
			counts[w].candidate += yielded
			counts[w].skipped += int64(len(alive)-1) - yielded
		}
		if have {
			parents[yi] = best.idx
		}
	})
	if err != nil {
		return nil, err
	}
	if !cfg.denseSweep {
		publishPairCounts(cfg.Metrics, counts, len(alive))
	}
	parentOf := make(map[int]int)
	for yi, y := range alive {
		if parents[yi] >= 0 {
			parentOf[y] = parents[yi]
		}
	}
	return assembleForest(st, parentOf), nil
}

// thresholdMinCo returns the smallest co-occurrence count whose
// P(x|y) = co/dfY reaches threshold under float64 arithmetic — the
// generator floor that lets the sweep skip pairs the P(x|y) ≥ θ test
// would reject anyway. The ceil estimate is corrected against the exact
// float predicate the scoring code uses (0.8·5 rounds above 4 in
// float64, yet 4.0/5.0 == 0.8), so the pruned sweep never drops a pair
// the dense reference would accept.
func thresholdMinCo(threshold float64, dfY int) int {
	c := int(math.Ceil(threshold * float64(dfY)))
	if c < 1 {
		c = 1
	}
	for c > 1 && float64(c-1)/float64(dfY) >= threshold {
		c--
	}
	for float64(c)/float64(dfY) < threshold {
		c++
	}
	return c
}

// parentCand is a candidate subsumer for a term.
type parentCand struct {
	idx  int
	pxy  float64
	dfx  int
	term string
}

// moreSpecific orders parent candidates: smaller df first (most specific
// subsumer), then higher P(x|y), then term text.
func moreSpecific(a, b *parentCand) bool {
	if a.dfx != b.dfx {
		return a.dfx < b.dfx
	}
	if a.pxy != b.pxy {
		return a.pxy > b.pxy
	}
	return a.term < b.term
}
