package browse

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/bitset"
)

// DefaultQueryCacheSize bounds the per-interface LRU query-result cache.
// Faceted navigation traffic is heavily skewed — the root menu and the
// first drill-down level dominate — so a few thousand distinct
// selections cover virtually all of a real workload.
const DefaultQueryCacheSize = 4096

// queryCache is a bounded LRU from normalized selection keys to resolved
// document sets. Cached sets are immutable by convention: resolve hands
// them to read-only consumers (Count, ForEach, AndCount) and never
// mutates a set after insertion.
//
// The cache belongs to one Interface, and an Interface is immutable
// after Build — so a cached answer can never go stale within its epoch.
// Ingest swaps publish a fresh Interface (with a fresh, empty cache) via
// one atomic pointer store, which is the invalidation rule: the key
// includes the epoch, and the cache of a superseded epoch becomes
// garbage wholesale the moment the swap lands.
type queryCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	set *bitset.Set
}

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		capacity = DefaultQueryCacheSize
	}
	return &queryCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

func (c *queryCache) get(key string) (*bitset.Set, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).set, true
}

func (c *queryCache) put(key string, set *bitset.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).set = set
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, set: set})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *queryCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.m)
}

// cacheKey normalizes a selection into a cache key. Facet terms are
// ANDed, so ordering and duplicates are semantically irrelevant and are
// canonicalized away (sort + dedup); the keyword query and date bounds
// are taken verbatim — two spellings of an equivalent query may occupy
// two entries, which costs a miss but can never cost correctness. The
// epoch is part of the key so entries from different hierarchy builds
// can never be confused even if a cache were shared.
func cacheKey(sel Selection, epoch uint64) string {
	terms := append([]string(nil), sel.Terms...)
	sort.Strings(terms)
	var sb strings.Builder
	sb.WriteString(strconv.FormatUint(epoch, 10))
	sb.WriteByte(0x1e)
	prev := ""
	for i, t := range terms {
		if i > 0 && t == prev {
			continue
		}
		prev = t
		sb.WriteString(t)
		sb.WriteByte(0x1f)
	}
	sb.WriteByte(0x1e)
	sb.WriteString(sel.Query)
	sb.WriteByte(0x1e)
	if !sel.From.IsZero() {
		sb.WriteString(strconv.FormatInt(sel.From.UnixNano(), 10))
	}
	sb.WriteByte(0x1e)
	if !sel.To.IsZero() {
		sb.WriteString(strconv.FormatInt(sel.To.UnixNano(), 10))
	}
	return sb.String()
}
