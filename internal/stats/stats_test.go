package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogLConventions(t *testing.T) {
	if got := LogL(0.5, 0, 0); got != 0 {
		t.Fatalf("LogL(.5,0,0) = %v", got)
	}
	// 0·log(0) = 0 convention: k=0 with p=0 must be finite.
	if got := LogL(0, 0, 10); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("LogL(0,0,10) = %v", got)
	}
	if got := LogL(1, 10, 10); got != 0 {
		t.Fatalf("LogL(1,10,10) = %v", got)
	}
	if got := LogL(0, 5, 10); !math.IsInf(got, -1) {
		t.Fatalf("LogL(0,5,10) = %v, want -inf", got)
	}
}

func TestLogLMaximizedAtMLE(t *testing.T) {
	// L(p, k, n) is maximized at p = k/n.
	k, n := 3, 10
	best := LogL(0.3, k, n)
	for _, p := range []float64{0.1, 0.2, 0.4, 0.5, 0.9} {
		if LogL(p, k, n) > best {
			t.Fatalf("LogL(%v) exceeds MLE value", p)
		}
	}
}

func TestLogLikelihoodZeroWhenEqual(t *testing.T) {
	for _, df := range []int{0, 1, 50, 100} {
		if got := LogLikelihood(df, df, 100); got > 1e-9 {
			t.Fatalf("LogLikelihood(%d,%d) = %v, want ~0", df, df, got)
		}
	}
}

func TestLogLikelihoodGrowsWithShift(t *testing.T) {
	small := LogLikelihood(10, 20, 1000)
	large := LogLikelihood(10, 200, 1000)
	if large <= small {
		t.Fatalf("larger shift should score higher: %v vs %v", large, small)
	}
	if small <= 0 {
		t.Fatalf("nonzero shift must score > 0: %v", small)
	}
}

func TestLogLikelihoodUnseenTerm(t *testing.T) {
	// A facet term absent from the original DB but frequent in the
	// expanded one is the headline case of the paper: the statistic must
	// be large and finite.
	got := LogLikelihood(0, 300, 1000)
	if math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
		t.Fatalf("LogLikelihood(0,300,1000) = %v", got)
	}
}

func TestLogLikelihoodSymmetry(t *testing.T) {
	// The statistic measures difference, not direction.
	a := LogLikelihood(10, 100, 1000)
	b := LogLikelihood(100, 10, 1000)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("asymmetric: %v vs %v", a, b)
	}
}

func TestLogLikelihoodDegenerate(t *testing.T) {
	if got := LogLikelihood(5, 10, 0); got != 0 {
		t.Fatalf("n=0 should yield 0, got %v", got)
	}
	if got := LogLikelihood(1000, 1000, 1000); got != 0 {
		t.Fatalf("full-df equal case = %v", got)
	}
}

func TestChiSquare(t *testing.T) {
	if got := ChiSquare(50, 50, 1000); got != 0 {
		t.Fatalf("equal frequencies chi2 = %v", got)
	}
	small := ChiSquare(10, 20, 1000)
	large := ChiSquare(10, 200, 1000)
	if large <= small || small <= 0 {
		t.Fatalf("chi2 ordering wrong: %v vs %v", small, large)
	}
	if got := ChiSquare(1, 2, 0); got != 0 {
		t.Fatalf("n=0 chi2 = %v", got)
	}
}

func TestMeanStddev(t *testing.T) {
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty-slice conventions broken")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := Stddev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestQuickLogLikelihoodNonNegativeFinite(t *testing.T) {
	f := func(a, b uint16, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		df := int(a) % (n + 1)
		dfC := int(b) % (n + 1)
		v := LogLikelihood(df, dfC, n)
		return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChiSquareNonNegative(t *testing.T) {
	f := func(a, b uint16, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		v := ChiSquare(int(a)%(n+1), int(b)%(n+1), n)
		return v >= 0 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
