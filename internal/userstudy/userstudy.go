// Package userstudy simulates the paper's user study (Section V-E): five
// users repeatedly locate news items of interest through an interface
// combining keyword search with the automatically extracted facet
// hierarchies. The paper observed that (a) in their first interaction
// users led with a keyword query, then narrowed with facet clicks, (b)
// over later sessions keyword use dropped by up to 50% as users shifted
// to the facet hierarchies, (c) task completion time dropped ~25%, and
// (d) satisfaction stayed steady near 2.5 on the 0–3 scale.
//
// The simulated users implement the same behavioural arc: a facet-affinity
// parameter grows with familiarity (calibrated to the paper's observed
// human learning), while everything downstream — how quickly facet clicks
// shrink the candidate set, whether the target is actually reachable —
// is measured against the real browse engine running on the really
// extracted hierarchies. If the extracted facets were useless, facet
// clicks would not shrink result sets and task times would not improve.
package userstudy

import (
	"fmt"
	"os"
	"time"

	"repro/internal/browse"
	"repro/internal/newsgen"
	"repro/internal/ontology"
	"repro/internal/textdb"
	"repro/internal/xrand"
)

// Config controls the simulation.
type Config struct {
	Seed         uint64
	Users        int // paper: 5
	TasksPerUser int // paper: 5 (one per session)
	// BaseFacetAffinity is the probability of choosing a facet action in
	// the first session; AffinityGain is added per subsequent session.
	BaseFacetAffinity float64
	AffinityGain      float64
	// FoundThreshold: the user stops when the candidate set is at most
	// this large and contains a target story.
	FoundThreshold int
	// MaxActions bounds a session (a user gives up past this).
	MaxActions int
}

func (c *Config) defaults() {
	if c.Users == 0 {
		c.Users = 5
	}
	if c.TasksPerUser == 0 {
		c.TasksPerUser = 5
	}
	if c.BaseFacetAffinity == 0 {
		c.BaseFacetAffinity = 0.35
	}
	if c.AffinityGain == 0 {
		c.AffinityGain = 0.13
	}
	if c.FoundThreshold == 0 {
		c.FoundThreshold = 12
	}
	if c.MaxActions == 0 {
		c.MaxActions = 40
	}
}

// Interaction costs on the virtual clock.
const (
	costKeyword = 9 * time.Second         // formulate and type a query
	costFacet   = 2500 * time.Millisecond // spot and click a facet link
	costPerDoc  = 3 * time.Second         // read a result enough to judge topicality
)

// SessionStats aggregates one session index across users.
type SessionStats struct {
	Session        int // 1-based
	KeywordQueries float64
	FacetClicks    float64
	Time           time.Duration
	Satisfaction   float64
	SuccessRate    float64
}

// Run simulates the study over a built browsing interface and the dataset
// it serves. It returns one aggregate row per session index.
func Run(b *browse.Interface, ds *newsgen.Dataset, cfg Config) ([]SessionStats, error) {
	cfg.defaults()
	if b.Corpus().Len() == 0 {
		return nil, fmt.Errorf("userstudy: empty corpus")
	}
	rng := xrand.New(cfg.Seed).Sub("userstudy")
	agg := make([]SessionStats, cfg.TasksPerUser)
	for s := range agg {
		agg[s].Session = s + 1
	}
	// Tasks concern broad topics (the paper's example: "war in Iraq"):
	// concepts that many stories mention, where keyword search alone
	// returns an unmanageable list.
	mentions := map[ontology.ConceptID]int{}
	for _, tr := range ds.Traces {
		for _, m := range tr.Mentioned {
			if ds.KB.Concept(m).Kind == ontology.KindEntity {
				mentions[m]++
			}
		}
	}
	minTopic := 12
	var topicDocs []textdb.DocID
	for {
		for i, tr := range ds.Traces {
			if len(tr.Mentioned) > 0 && mentions[tr.Mentioned[0]] >= minTopic {
				topicDocs = append(topicDocs, textdb.DocID(i))
			}
		}
		if len(topicDocs) > 0 || minTopic <= 1 {
			break
		}
		minTopic /= 2
	}
	for u := 0; u < cfg.Users; u++ {
		// The paper's users repeated the same task five times; the task
		// (topic) is a per-user draw, sessions vary only in behaviour.
		taskRng := rng.SubInt("user", u).Sub("task")
		for s := 0; s < cfg.TasksPerUser; s++ {
			urng := rng.SubInt("user", u).SubInt("session", s)
			st := runTask(b, ds, topicDocs, taskRng.Sub("stable"), urng, cfg, s)
			agg[s].KeywordQueries += st.KeywordQueries
			agg[s].FacetClicks += st.FacetClicks
			agg[s].Time += st.Time
			agg[s].Satisfaction += st.Satisfaction
			agg[s].SuccessRate += st.SuccessRate
		}
	}
	n := float64(cfg.Users)
	for s := range agg {
		agg[s].KeywordQueries /= n
		agg[s].FacetClicks /= n
		agg[s].Time = time.Duration(float64(agg[s].Time) / n)
		agg[s].Satisfaction /= n
		agg[s].SuccessRate /= n
	}
	return agg, nil
}

// runTask simulates one user session and returns its raw stats.
//
// The task mirrors the paper's: "locate news items of interest" on a
// topic. The user picks a topic (the subject of a randomly chosen target
// story), knows entity names to type as keyword queries, and recognizes
// the topic's facet terms when the interface shows them. The session ends
// when the user has scanned a short result list containing at least one
// on-topic story (success), or gives up.
func runTask(b *browse.Interface, ds *newsgen.Dataset, topicDocs []textdb.DocID, taskRng, rng *xrand.RNG, cfg Config, session int) SessionStats {
	var st SessionStats
	affinity := cfg.BaseFacetAffinity + cfg.AffinityGain*float64(session)
	if affinity > 0.92 {
		affinity = 0.92
	}

	// The topic is narrow: stories sharing the target's primary concept
	// plus at least one more of its concepts ("Chirac at the G8 summit",
	// not just "Chirac"), so a flat keyword result list is imprecise and
	// must be read selectively, while facet drill-down prunes precisely.
	kb := ds.KB
	var target textdb.DocID
	var trace newsgen.Trace
	var onTopicSet map[textdb.DocID]bool
	for attempt := 0; attempt < 40; attempt++ {
		target = topicDocs[taskRng.Intn(len(topicDocs))]
		trace = ds.Traces[target]
		primary := trace.Mentioned[0]
		// Stories about the primary concept.
		var primaryDocs []textdb.DocID
		for i, tr := range ds.Traces {
			for _, m := range tr.Mentioned {
				if m == primary {
					primaryDocs = append(primaryDocs, textdb.DocID(i))
					break
				}
			}
		}
		// The aspect: one of the target's facets that only a minority of
		// the primary's stories carry. A keyword query cannot express it
		// (facet terms rarely occur in text); the facet hierarchy can.
		var aspect ontology.ConceptID = ontology.None
		for _, f := range trace.Facets {
			n := 0
			for _, d := range primaryDocs {
				for _, g := range ds.Traces[d].Facets {
					if g == f {
						n++
						break
					}
				}
			}
			if n >= 4 && float64(n) <= 0.5*float64(len(primaryDocs)) {
				aspect = f
				break
			}
		}
		if aspect == ontology.None {
			continue
		}
		onTopicSet = map[textdb.DocID]bool{}
		for _, d := range primaryDocs {
			for _, g := range ds.Traces[d].Facets {
				if g == aspect {
					onTopicSet[d] = true
					break
				}
			}
		}
		if len(onTopicSet) >= 4 {
			break
		}
	}
	if len(onTopicSet) == 0 {
		// Degenerate corpus for this user: fall back to the primary topic.
		onTopicSet = map[textdb.DocID]bool{}
		for i, tr := range ds.Traces {
			for _, m := range tr.Mentioned {
				if m == trace.Mentioned[0] {
					onTopicSet[textdb.DocID(i)] = true
					break
				}
			}
		}
	}
	onTopic := func(d textdb.DocID) bool { return onTopicSet[d] }
	// Goals scale with how much on-topic material exists.
	narrowNeed := min(3, len(onTopicSet))
	manualNeed := min(4, len(onTopicSet))
	// Query material: the name of the topic's subject plus its variant
	// forms — keyword reformulation tries different spellings of the same
	// thing, which is why it hits diminishing returns and the facets win.
	primaryConcept := kb.Concept(trace.Mentioned[0])
	queries := []string{primaryConcept.Display}
	for _, v := range primaryConcept.Variants {
		queries = append(queries, v)
		if len(queries) >= 3 {
			break
		}
	}
	interest := map[string]bool{}
	for _, f := range trace.Facets {
		interest[kb.Concept(f).Name] = true
	}

	// The task succeeds when the user has assembled "a small subset of
	// news stories associated with the same topic": either a narrow
	// selection (<= FoundThreshold) containing at least two on-topic
	// stories, or four on-topic stories collected by reading lists.
	sel := browse.Selection{}
	elapsed := time.Duration(0)
	success := false
	nextQuery := 0
	scanned := map[textdb.DocID]bool{}
	found := 0
	// scan reads up to limit unread documents of the current view (ranked
	// when it is a pure keyword view) and reports whether anything new was
	// actually read.
	scan := func(limit int) bool {
		var docs []textdb.DocID
		if len(sel.Terms) == 0 && sel.Query != "" {
			docs = b.Search(sel.Query, limit+len(scanned)) // rank order
		} else {
			docs = b.Docs(sel)
		}
		read := false
		for _, d := range docs {
			if limit <= 0 {
				break
			}
			if scanned[d] {
				continue
			}
			scanned[d] = true
			read = true
			limit--
			elapsed += costPerDoc
			if onTopic(d) {
				found++
				if found >= manualNeed {
					success = true
					return true
				}
			}
		}
		return read
	}
	debug := os.Getenv("REPRO_TRACE") != ""
	tried := map[string]bool{}
	for action := 0; action < cfg.MaxActions && !success; action++ {
		count := b.MatchCount(sel)
		if debug {
			fmt.Printf("    action=%d count=%d sel=%v q=%q found=%d/%d scanned=%d elapsed=%v\n",
				action, count, sel.Terms, sel.Query, found, manualNeed, len(scanned), elapsed)
		}
		if count > 0 && count <= cfg.FoundThreshold && (len(sel.Terms) > 0 || sel.Query != "") {
			// Narrow view: read until the subset is assembled (or the view
			// is exhausted).
			onTopicHere := 0
			for _, d := range b.Docs(sel) {
				if !scanned[d] {
					scanned[d] = true
					elapsed += costPerDoc
				}
				if onTopic(d) {
					onTopicHere++
					if onTopicHere >= narrowNeed {
						break
					}
				}
			}
			if onTopicHere >= narrowNeed {
				success = true
				break
			}
			// Wrong branch: back out of the last facet selection and keep
			// exploring (the term stays marked as tried).
			if len(sel.Terms) > 0 {
				tried[sel.Terms[len(sel.Terms)-1]] = true
				sel.Terms = sel.Terms[:len(sel.Terms)-1]
				continue
			}
			// Query alone came back narrow but off-topic: reformulate if
			// anything is left to try, else fall back to the base query.
			if nextQuery < len(queries) {
				st.KeywordQueries++
				elapsed += costKeyword
				sel.Query = queries[nextQuery]
				nextQuery++
				scan(6)
				continue
			}
			if sel.Query != queries[0] {
				sel.Query = queries[0]
				continue
			}
			break
		}
		// Every session opens with a keyword query (the paper's observed
		// pattern); facets then narrow within the results.
		if action == 0 {
			st.KeywordQueries++
			elapsed += costKeyword
			sel.Query = queries[0]
			nextQuery = 1
			// Novices start reading the result list immediately; users who
			// have learned the facets skip straight to them.
			if !rng.Bool(affinity) {
				scan(6)
			}
			continue
		}
		useFacet := rng.Bool(affinity)
		facetTerm, facetOK := bestFacetMove(b, sel, interest, tried)
		if debug {
			fmt.Printf("      useFacet=%v facetOK=%v term=%q\n", useFacet, facetOK, facetTerm)
		}
		if useFacet && facetOK {
			st.FacetClicks++
			elapsed += costFacet
			sel.Terms = append(sel.Terms, facetTerm)
			continue
		}
		if !useFacet && nextQuery < len(queries) {
			// Keyword reformulation: type another query, skim the top of
			// the new result list.
			st.KeywordQueries++
			elapsed += costKeyword
			sel.Query = queries[nextQuery]
			nextQuery++
			scan(6)
			continue
		}
		// Keep reading the current list; when it is exhausted, fall back
		// to whatever interaction remains.
		if scan(12) {
			continue
		}
		if facetOK {
			st.FacetClicks++
			elapsed += costFacet
			sel.Terms = append(sel.Terms, facetTerm)
			continue
		}
		if nextQuery < len(queries) {
			st.KeywordQueries++
			elapsed += costKeyword
			sel.Query = queries[nextQuery]
			nextQuery++
			scan(6)
			continue
		}
		if sel.Query != queries[0] || len(sel.Terms) > 0 {
			// Back to the base result view for another pass.
			sel.Query = queries[0]
			sel.Terms = nil
			continue
		}
		break // nothing left to try
	}
	st.Time = elapsed
	if success {
		st.SuccessRate = 1
		// Fast completion satisfies; slow completion still satisfies
		// mildly (the paper reports a steady ~2.5 mean).
		sat := 3.0 - float64(elapsed)/float64(3*time.Minute)
		if sat < 2 {
			sat = 2
		}
		st.Satisfaction = sat + rng.Norm(0, 0.12)
	} else {
		st.Satisfaction = 1.2 + rng.Norm(0, 0.3)
	}
	if st.Satisfaction > 3 {
		st.Satisfaction = 3
	}
	if st.Satisfaction < 0 {
		st.Satisfaction = 0
	}
	return st
}

// bestFacetMove returns the interest facet that, among the children
// currently displayed (roots plus children of selected terms), best
// narrows the result set: the user clicks the most specific relevant
// facet link they can see.
func bestFacetMove(b *browse.Interface, sel browse.Selection, interest map[string]bool, tried map[string]bool) (string, bool) {
	already := map[string]bool{}
	for t := range tried {
		already[t] = true
	}
	for _, t := range sel.Terms {
		already[t] = true
	}
	total := b.MatchCount(sel)
	var best string
	bestCount := -1
	consider := func(fc browse.FacetCount) {
		if already[fc.Term] || !interest[fc.Term] {
			return
		}
		if fc.Count >= total {
			return // clicking it would not narrow anything
		}
		if fc.Count < 3 {
			return // suspiciously narrow: probably the wrong branch
		}
		// Prefer the smallest acceptable narrowing (most specific visible).
		if bestCount == -1 || fc.Count < bestCount {
			bestCount = fc.Count
			best = fc.Term
		}
	}
	// Faceted UIs show the facet dimensions with their top sub-values, so
	// the user sees roots, each root's children, and the children of
	// anything already selected.
	for _, fc := range b.Children("", sel) {
		consider(fc)
		for _, sub := range b.Children(fc.Term, sel) {
			consider(sub)
		}
	}
	for _, t := range sel.Terms {
		for _, fc := range b.Children(t, sel) {
			consider(fc)
		}
	}
	return best, bestCount > 0
}

func facetAvailable(b *browse.Interface, sel browse.Selection, interest map[string]bool) bool {
	_, ok := bestFacetMove(b, sel, interest, nil)
	return ok
}
