// Package facet is the public API of this repository: an implementation
// of "Automatic Extraction of Useful Facet Hierarchies from Text
// Databases" (Dakka & Ipeirotis, ICDE 2008).
//
// The library extracts, without supervision, the general terms that make
// good browsing facets for a database of text documents — terms like
// "Political Leaders" or "Natural Disasters" that mostly do NOT appear in
// the documents themselves — and organizes them into per-facet hierarchies
// that power an OLAP-style faceted browsing interface.
//
// # Usage
//
// Build an Environment (the external resources: Wikipedia, WordNet, a web
// search engine), load documents into a System, and extract:
//
//	env, _ := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: 42})
//	sys, _ := facet.NewSystem(env, facet.Options{})
//	for _, d := range docs {
//		sys.Add(d)
//	}
//	res, _ := sys.ExtractFacets()
//	hier, _ := res.BuildHierarchy()
//	browser, _ := res.Browser(hier)
//
// This module is offline and self-contained: the environment's Wikipedia,
// WordNet and web index are synthesized from a ground-truth ontology (see
// DESIGN.md for the substitution rationale), but every algorithm — the
// three pipeline steps, the WordNet database file parser, the subsumption
// hierarchy builder, the browsing engine — is the real thing and would
// run unchanged against real resource dumps.
package facet

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/browse"
	"repro/internal/core"
	"repro/internal/distctx"
	"repro/internal/hierarchy"
	"repro/internal/ner"
	"repro/internal/newsgen"
	"repro/internal/obsv"
	"repro/internal/ontology"
	"repro/internal/remote"
	"repro/internal/textdb"
	"repro/internal/websearch"
	"repro/internal/wiki"
	"repro/internal/wordnet"
	"repro/internal/yterms"
)

// Document is one text item to index.
type Document struct {
	Title  string
	Source string
	Date   time.Time
	Text   string
}

// EnvConfig controls the simulated environment.
type EnvConfig struct {
	// Seed drives the synthesized ontology, Wikipedia, and WordNet.
	Seed uint64
	// Scale multiplies the synthesized world's entity counts (default 1).
	Scale float64
	// ChargeLatency attaches the paper's virtual network latencies to the
	// web-based services (Yahoo-style extraction, Google-style search).
	ChargeLatency bool
}

// Environment is the set of external resources the pipeline consults.
type Environment struct {
	kb     *ontology.KB
	wiki   *wiki.Wiki
	wnet   *wordnet.DB
	engine *websearch.Engine
	clock  *remote.Clock
}

// NewSimulatedEnvironment synthesizes the full resource stack.
func NewSimulatedEnvironment(cfg EnvConfig) (*Environment, error) {
	// ontology.Build would silently misbehave on a negative or non-finite
	// Scale (entity counts truncate toward zero); reject loudly here.
	if cfg.Scale < 0 || math.IsNaN(cfg.Scale) || math.IsInf(cfg.Scale, 0) {
		return nil, fmt.Errorf("facet: invalid Scale %v (want a finite value >= 0; 0 selects the default of 1)", cfg.Scale)
	}
	kb, err := ontology.Build(ontology.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, err
	}
	w, err := wiki.Build(kb, wiki.Config{Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	wn, err := wordnet.FromIsa(ontology.WordNetLexicon(kb))
	if err != nil {
		return nil, err
	}
	env := &Environment{
		kb:     kb,
		wiki:   w,
		wnet:   wn,
		engine: websearch.NewEngineFromWiki(w),
	}
	if cfg.ChargeLatency {
		env.clock = remote.NewClock()
	}
	return env, nil
}

// VirtualNetworkTime returns the accumulated simulated network latency
// (zero unless ChargeLatency was set).
func (e *Environment) VirtualNetworkTime() time.Duration {
	if e.clock == nil {
		return 0
	}
	return e.clock.Elapsed()
}

// GenerateNewsCorpus produces a synthetic news dataset grounded in the
// environment's ontology: profile is one of "SNYT", "SNB", "MNYT".
// It returns the documents; use it to drive examples and experiments.
func (e *Environment) GenerateNewsCorpus(profile string, numDocs int, seed uint64) ([]Document, error) {
	var p newsgen.Profile
	switch profile {
	case "SNYT":
		p = newsgen.SNYT
	case "SNB":
		p = newsgen.SNB
	case "MNYT":
		p = newsgen.MNYT
	default:
		return nil, fmt.Errorf("facet: unknown profile %q (want SNYT, SNB, or MNYT)", profile)
	}
	if numDocs > 0 {
		p = p.WithDocs(numDocs)
	}
	ds, err := newsgen.Generate(e.kb, p, seed)
	if err != nil {
		return nil, err
	}
	out := make([]Document, ds.Corpus.Len())
	for i := range out {
		d := ds.Corpus.Doc(textdb.DocID(i))
		out[i] = Document{Title: d.Title, Source: d.Source, Date: d.Date, Text: d.Text}
	}
	return out, nil
}

// Options configures a System.
type Options struct {
	// TopK bounds the number of facet terms extracted (default 200).
	TopK int
	// Extractors selects term extractors by name: "NE", "Yahoo",
	// "Wikipedia". Empty selects all three.
	Extractors []string
	// Resources selects context resources by name: "Google",
	// "WordNet Hypernyms", "Wikipedia Synonyms", "Wikipedia Graph", and
	// "Distributional" (alias "corpus") — the corpus-only co-occurrence
	// model that needs no external service at all (README "Corpus-only
	// mode"). Empty selects the four external ones.
	Resources []string
	// CorpusFallback arms the degraded-fallback path: a distributional
	// model is built over the indexed corpus and consulted for exactly
	// those (document, term) expansions where EVERY configured resource
	// failed (retries exhausted, circuits open). Healthy runs are
	// byte-identical with or without it; a run whose external resources
	// are all dark degrades to corpus-only context instead of running
	// context-free. Result.FallbackLookups counts the rescues.
	CorpusFallback bool
	// SubsumptionThreshold is θ for hierarchy construction (default 0.8).
	SubsumptionThreshold float64
	// HierarchyBuilder selects the hierarchy-construction strategy by
	// registry name ("subsumption", "evidence", "treemin",
	// "agglomerative"; see hierarchy.Names). Empty selects "subsumption",
	// the paper's choice. Result.BuildHierarchy honors it; an explicit
	// Result.BuildHierarchyWith overrides it per call.
	HierarchyBuilder string
	// ExtraExtractors and ExtraResources plug domain-specific tools into
	// the pipeline alongside the built-in ones (Section VII of the paper;
	// see NewGlossaryExtractor / NewGlossaryResource).
	ExtraExtractors []TermExtractor
	ExtraResources  []ContextResource
	// Workers bounds the worker pool the pipeline stages and hierarchy
	// construction shard across. 0 selects GOMAXPROCS; 1 runs fully
	// sequentially. The result is identical for every worker count; see
	// README "Parallelism". ExtraExtractors and ExtraResources must be
	// safe for concurrent use when Workers != 1 (pure functions of their
	// input, like the built-ins, qualify).
	Workers int
}

// System is a facet-extraction session over a document collection.
type System struct {
	env     *Environment
	opts    Options
	corpus  *textdb.Corpus
	metrics *obsv.Registry
}

// SetMetrics instruments subsequent extractions: pipeline stage durations
// land in reg as core.stage.<name> histograms and degraded external
// lookups as core.degraded_lookups.<name> counters. A nil registry (the
// default) disables instrumentation. The warm-start test relies on these
// counters staying at zero when serving from a snapshot.
func (s *System) SetMetrics(reg *obsv.Registry) { s.metrics = reg }

// NewSystem validates options and returns an empty system.
func NewSystem(env *Environment, opts Options) (*System, error) {
	if env == nil {
		return nil, fmt.Errorf("facet: nil environment")
	}
	if opts.TopK < 0 {
		return nil, fmt.Errorf("facet: negative TopK")
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("facet: negative Workers")
	}
	for _, e := range opts.Extractors {
		switch e {
		case "NE", "Yahoo", "Wikipedia":
		default:
			return nil, fmt.Errorf("facet: unknown extractor %q", e)
		}
	}
	for _, r := range opts.Resources {
		switch r {
		case "Google", "WordNet Hypernyms", "Wikipedia Synonyms", "Wikipedia Graph",
			"Distributional", "corpus":
		default:
			return nil, fmt.Errorf("facet: unknown resource %q", r)
		}
	}
	if opts.HierarchyBuilder != "" {
		if _, ok := hierarchy.Lookup(opts.HierarchyBuilder); !ok {
			return nil, fmt.Errorf("facet: unknown hierarchy builder %q (registered: %s)",
				opts.HierarchyBuilder, strings.Join(hierarchy.Names(), ", "))
		}
	}
	return &System{env: env, opts: opts, corpus: textdb.NewCorpus()}, nil
}

// Add indexes one document and returns its position.
func (s *System) Add(d Document) int {
	id := s.corpus.Add(&textdb.Document{Title: d.Title, Source: d.Source, Date: d.Date, Text: d.Text})
	return int(id)
}

// Len returns the number of indexed documents.
func (s *System) Len() int { return s.corpus.Len() }

// buildExtractors assembles the selected extractors (defaults to all).
func (s *System) buildExtractors() []core.Extractor {
	names := s.opts.Extractors
	if len(names) == 0 {
		names = []string{"NE", "Yahoo", "Wikipedia"}
	}
	var gaz []string
	for _, e := range s.env.kb.Entities() {
		gaz = append(gaz, e.Display)
		gaz = append(gaz, e.Variants...)
	}
	bg := textdb.NewDFTable(s.corpus.Dict())
	for i := 0; i < s.corpus.Len(); i++ {
		bg.AddDoc(s.corpus.DocTerms(textdb.DocID(i)))
	}
	var out []core.Extractor
	for _, n := range names {
		switch n {
		case "NE":
			out = append(out, ner.New(ner.WithGazetteer(gaz)))
		case "Yahoo":
			out = append(out, yterms.New(bg, 12, s.env.clock))
		case "Wikipedia":
			out = append(out, wiki.NewTitleExtractor(s.env.wiki))
		}
	}
	for _, e := range s.opts.ExtraExtractors {
		out = append(out, e)
	}
	return out
}

// buildResources assembles the selected resources (defaults to all).
func (s *System) buildResources() []core.Resource {
	names := s.opts.Resources
	if len(names) == 0 {
		names = []string{"Google", "WordNet Hypernyms", "Wikipedia Synonyms", "Wikipedia Graph"}
	}
	var out []core.Resource
	for _, n := range names {
		switch n {
		case "Google":
			out = append(out, websearch.NewResource(s.env.engine, 10, 10, s.env.clock))
		case "WordNet Hypernyms":
			out = append(out, wordnet.NewResource(s.env.wnet, 2))
		case "Wikipedia Synonyms":
			out = append(out, wiki.NewSynonymResource(s.env.wiki))
		case "Wikipedia Graph":
			out = append(out, wiki.NewGraphResource(s.env.wiki, 50))
		case "Distributional", "corpus":
			out = append(out, s.buildDistributional())
		}
	}
	for _, r := range s.opts.ExtraResources {
		out = append(out, r)
	}
	return out
}

// buildDistributional builds the corpus-only context resource over the
// currently indexed documents: Step 1 runs once with the configured
// extractors to collect per-document important terms, and distctx.Build
// turns their co-occurrence structure into top-N neighbor vectors. The
// extraction cost is paid again when the pipeline proper runs — the
// model has to exist before Step 2 starts, and Step 1 is the cheap stage
// (see StageReport). An empty corpus yields an inert model that answers
// nil for every term.
func (s *System) buildDistributional() core.Resource {
	important, err := core.IdentifyImportantWorkers(context.Background(), s.corpus, s.buildExtractors(), 0, s.opts.Workers)
	if err != nil {
		important = nil
	}
	// Log-likelihood weighting, not PPMI: the resource ablation
	// (experiments -run resourceablation) shows LLR's preference for
	// evidence mass pulls the high-frequency general terms into the
	// neighbor lists, which is what the subsumption builder needs to
	// recover ancestor structure; PPMI's lift favors rare correlates and
	// leaves the hierarchy flat.
	m, err := distctx.Build(context.Background(), important, distctx.Config{Weight: distctx.WeightLLR, Workers: s.opts.Workers})
	if err != nil {
		// Unreachable with a background context and the default knobs;
		// degrade to an empty model rather than poison the resource list.
		m, _ = distctx.Build(context.Background(), nil, distctx.Config{})
	}
	return m
}

// CoreExtractors assembles the configured term extractors over the
// currently indexed documents (the Yahoo-style extractor calibrates its
// background statistics against them). Like BrowseEngine, this is a seam
// for in-module consumers — the live ingestion subsystem builds its
// worker pool from it; external users configure extraction through
// Options.
func (s *System) CoreExtractors() []core.Extractor { return s.buildExtractors() }

// CoreResources assembles the configured context-expansion resources; see
// CoreExtractors for the intended consumers.
func (s *System) CoreResources() []core.Resource { return s.buildResources() }

// CoreFallback assembles the corpus-only fallback resource when
// Options.CorpusFallback is set, and returns nil otherwise; the live
// ingestion subsystem passes it through ingest.Config.Fallback so
// streamed documents survive a total external-resource outage too.
func (s *System) CoreFallback() core.Resource {
	if !s.opts.CorpusFallback {
		return nil
	}
	return s.buildDistributional()
}

// FacetTerm is one extracted facet term with its statistical evidence.
type FacetTerm struct {
	Term   string
	DF     int     // document frequency in the original database
	DFC    int     // document frequency after context expansion
	ShiftF int     // frequency shift
	ShiftR int     // rank-bin shift
	Score  float64 // Dunning log-likelihood
}

// Degradation records one external dependency (an extractor or a context
// resource) that kept failing after retries during extraction. The
// pipeline proceeds without the failed dependency — its contribution is
// simply absent from the affected documents' term sets — and reports the
// gap here instead of failing the whole run (graceful degradation; see
// README "Failure model").
type Degradation struct {
	// Name is the failed extractor's or resource's name.
	Name string
	// Kind is "extractor" or "resource".
	Kind string
	// Failures counts failed lookups attributed to this dependency.
	Failures int
	// Docs counts the documents whose term sets are missing this
	// dependency's contribution.
	Docs int
	// LastErr is the text of the last error observed.
	LastErr string
}

// Result is the outcome of facet extraction.
type Result struct {
	// Facets are the top-K facet terms, most significant first.
	Facets []FacetTerm
	// Degradations lists external dependencies that failed during
	// extraction; empty when every extractor and resource answered every
	// lookup. A non-empty list means the facets were computed from the
	// surviving dependencies only.
	Degradations []Degradation
	// FallbackLookups counts the (document, term) expansions answered by
	// the corpus-only distributional model because every configured
	// resource failed (only possible with Options.CorpusFallback). 0 on a
	// healthy run.
	FallbackLookups int
	sys             *System
	inner           *core.Result
	stages          *obsv.StageTimer
}

// ExtractFacets runs the three pipeline steps over the indexed documents.
// It is the context-free wrapper around ExtractFacetsContext.
func (s *System) ExtractFacets() (*Result, error) {
	return s.ExtractFacetsContext(context.Background())
}

// ExtractFacetsContext runs the three pipeline steps over the indexed
// documents, honoring cancellation: ctx is checked between stages and
// between documents within the extraction and expansion stages, so a
// canceled call returns promptly with ctx's error.
func (s *System) ExtractFacetsContext(ctx context.Context) (*Result, error) {
	if s.corpus.Len() == 0 {
		return nil, fmt.Errorf("facet: no documents added")
	}
	cfg := core.Config{
		Extractors: s.buildExtractors(),
		Resources:  s.buildResources(),
		TopK:       s.opts.TopK,
		Workers:    s.opts.Workers,
		Metrics:    s.metrics,
	}
	if s.opts.CorpusFallback {
		cfg.Fallback = s.buildDistributional()
	}
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	inner, err := p.RunContext(ctx, s.corpus)
	if err != nil {
		return nil, err
	}
	res := &Result{sys: s, inner: inner, stages: obsv.NewStageTimer()}
	for _, st := range inner.Stages {
		res.stages.Record(st.Stage, st.Total)
	}
	for _, f := range inner.Facets {
		res.Facets = append(res.Facets, FacetTerm{
			Term: f.Term, DF: f.DF, DFC: f.DFC,
			ShiftF: f.ShiftF, ShiftR: f.ShiftR, Score: f.Score,
		})
	}
	for _, d := range inner.Degradations {
		res.Degradations = append(res.Degradations, Degradation{
			Name: d.Name, Kind: d.Kind, Failures: d.Failures,
			Docs: d.Docs, LastErr: d.LastErr,
		})
	}
	res.FallbackLookups = inner.FallbackLookups
	return res, nil
}

// StageTiming is one pipeline stage's accumulated wall-clock cost.
type StageTiming struct {
	// Stage names the phase: identify_important, derive_context, analyze,
	// and — after BuildHierarchy — build_hierarchy.
	Stage string
	// Calls is how many times the stage ran (hierarchy construction can
	// run more than once with different methods).
	Calls int64
	// Total is the stage's accumulated wall-clock time.
	Total time.Duration
}

// StageReport returns where this extraction's time went, stage by stage
// in execution order — the library-level counterpart of the paper's
// Section V-D efficiency analysis. Hierarchy construction is included
// once BuildHierarchy (or BuildHierarchyWith) has run.
func (r *Result) StageReport() []StageTiming {
	if r.stages == nil {
		return nil
	}
	samples := r.stages.Report()
	out := make([]StageTiming, len(samples))
	for i, s := range samples {
		out[i] = StageTiming{Stage: s.Stage, Calls: s.Calls, Total: s.Total}
	}
	return out
}

// Terms returns the extracted facet terms in rank order.
func (r *Result) Terms() []string {
	out := make([]string, len(r.Facets))
	for i, f := range r.Facets {
		out[i] = f.Term
	}
	return out
}

// Hierarchy is a set of facet trees ready for browsing.
type Hierarchy struct {
	forest   *hierarchy.Forest
	docTerms [][]string
}

// Node is one term in a facet hierarchy.
type Node struct {
	Term     string
	DF       int
	Children []*Node
}

// BuildHierarchy organizes the extracted facet terms into per-facet trees
// over the expanded document collection, using the strategy selected by
// Options.HierarchyBuilder (default: the Sanderson–Croft subsumption
// algorithm the paper uses).
func (r *Result) BuildHierarchy() (*Hierarchy, error) {
	return r.BuildHierarchyWith("")
}

// assignDocTerms computes the document-to-facet assignment: terms from
// the document text, plus context terms corroborated by at least two of
// the document's important terms (see core.ContextVotes).
func (r *Result) assignDocTerms(terms []string) [][]string {
	termSet := map[string]bool{}
	for _, t := range terms {
		termSet[t] = true
	}
	corpus := r.sys.corpus
	votes := core.ContextVotes(r.inner.Important, r.inner.Resources, nil)
	docTerms := make([][]string, corpus.Len())
	for d := 0; d < corpus.Len(); d++ {
		present := map[string]bool{}
		for _, id := range corpus.DocTerms(textdb.DocID(d)) {
			if s := corpus.Dict().String(id); termSet[s] {
				present[s] = true
			}
		}
		need := 2
		if len(r.inner.Important[d]) < 2 {
			need = 1
		}
		for c, v := range votes[d] {
			if v >= need && termSet[c] {
				present[c] = true
			}
		}
		for t := range present {
			docTerms[d] = append(docTerms[d], t)
		}
		sort.Strings(docTerms[d])
	}
	return docTerms
}

// Roots returns the top-level facets.
func (h *Hierarchy) Roots() []*Node {
	out := make([]*Node, 0, len(h.forest.Roots))
	for _, r := range h.forest.Roots {
		out = append(out, convertNode(r))
	}
	return out
}

func convertNode(n *hierarchy.Node) *Node {
	out := &Node{Term: n.Term, DF: n.DF}
	for _, c := range n.Children {
		out.Children = append(out.Children, convertNode(c))
	}
	return out
}

// Size returns the number of terms in the hierarchy.
func (h *Hierarchy) Size() int { return h.forest.Size() }

// Browser is the faceted browsing engine over the collection.
type Browser struct {
	iface *browse.Interface
}

// Selection narrows the collection: facet terms are ANDed, the query is
// keyword search (conjunctive), and the optional date range restricts by
// document date (From inclusive, To exclusive; zero values mean open).
type Selection struct {
	Terms []string
	Query string
	From  time.Time
	To    time.Time
}

// FacetCount pairs a facet term with its document count.
type FacetCount struct {
	Term  string
	Count int
}

// Browser builds the browsing engine for a hierarchy.
func (r *Result) Browser(h *Hierarchy) (*Browser, error) {
	iface, err := r.BrowseEngine(h)
	if err != nil {
		return nil, err
	}
	return &Browser{iface: iface}, nil
}

// BrowseEngine exposes the underlying browse.Interface for in-module
// consumers that need the full engine (the HTTP server, the experiment
// harness); external users work through Browser.
func (r *Result) BrowseEngine(h *Hierarchy) (*browse.Interface, error) {
	return browse.Build(r.sys.corpus, h.forest, h.docTerms)
}

// Count returns the number of documents under the facet term (including
// its descendants).
func (b *Browser) Count(term string) int { return b.iface.Count(term) }

func toBrowseSel(sel Selection) browse.Selection {
	return browse.Selection{Terms: sel.Terms, Query: sel.Query, From: sel.From, To: sel.To}
}

// Docs returns the positions of documents matching the selection.
func (b *Browser) Docs(sel Selection) []int {
	ids := b.iface.Docs(toBrowseSel(sel))
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// Children returns the child facets of parent ("" for roots) with counts
// under the selection, descending.
func (b *Browser) Children(parent string, sel Selection) []FacetCount {
	var out []FacetCount
	for _, fc := range b.iface.Children(parent, toBrowseSel(sel)) {
		out = append(out, FacetCount{Term: fc.Term, Count: fc.Count})
	}
	return out
}

// DateCount is one bucket of a date histogram.
type DateCount struct {
	Bucket time.Time
	Count  int
}

// DateHistogram buckets matching documents by "day" or "month" — the time
// facet of the interface.
func (b *Browser) DateHistogram(sel Selection, granularity string) ([]DateCount, error) {
	hist, err := b.iface.DateHistogram(toBrowseSel(sel), granularity)
	if err != nil {
		return nil, err
	}
	out := make([]DateCount, len(hist))
	for i, h := range hist {
		out[i] = DateCount{Bucket: h.Bucket, Count: h.Count}
	}
	return out, nil
}

// Document returns an indexed document by position.
func (s *System) Document(i int) Document {
	d := s.corpus.Doc(textdb.DocID(i))
	return Document{Title: d.Title, Source: d.Source, Date: d.Date, Text: d.Text}
}
