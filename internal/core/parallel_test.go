package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/textdb"
)

// countingResource records how many times each term is derived, safely,
// so tests can assert the cache's single-flight guarantee under load.
type countingResource struct {
	name  string
	mu    sync.Mutex
	calls map[string]int
}

func (c *countingResource) Name() string { return c.name }
func (c *countingResource) Context(term string) []string {
	c.mu.Lock()
	c.calls[term]++
	c.mu.Unlock()
	return []string{"ctx-a-" + term, "ctx-b-" + term}
}

// TestResourceCacheConcurrentHammer is the race regression test for the
// cache shared by the derive-context workers: 16 goroutines hammer
// overlapping terms through one cache. Run under -race (CI does) it
// fails on any unsynchronized access; the call counts additionally prove
// single-flight — every term is derived exactly once no matter how many
// workers miss it at the same instant.
func TestResourceCacheConcurrentHammer(t *testing.T) {
	res := &countingResource{name: "r", calls: map[string]int{}}
	cache := NewResourceCache()
	const goroutines = 16
	const iters = 400
	const distinctTerms = 37

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				term := fmt.Sprintf("term%02d", (g+i)%distinctTerms)
				got := cache.Lookup(res, term)
				if len(got) != 2 || got[0] != "ctx-a-"+term {
					t.Errorf("wrong context for %q: %v", term, got)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	res.mu.Lock()
	defer res.mu.Unlock()
	if len(res.calls) != distinctTerms {
		t.Fatalf("derived %d distinct terms, want %d", len(res.calls), distinctTerms)
	}
	for term, n := range res.calls {
		if n != 1 {
			t.Fatalf("term %q derived %d times, want exactly 1 (single-flight)", term, n)
		}
	}
	if got := cache.Len(); got != distinctTerms {
		t.Fatalf("cache.Len() = %d, want %d", got, distinctTerms)
	}
}

// slowFirstResource blocks the first derivation until released, so a
// test can pile concurrent lookups of the same term onto an in-flight
// derivation and verify they all wait for (and share) its result.
type slowFirstResource struct {
	name    string
	started chan struct{}
	release chan struct{}
	calls   atomic.Int64
}

func (s *slowFirstResource) Name() string { return s.name }
func (s *slowFirstResource) Context(term string) []string {
	if s.calls.Add(1) == 1 {
		close(s.started)
		<-s.release
	}
	return []string{"v:" + term}
}

func TestResourceCacheSingleFlightSharesInFlightDerivation(t *testing.T) {
	res := &slowFirstResource{name: "slow", started: make(chan struct{}), release: make(chan struct{})}
	cache := NewResourceCache()

	first := make(chan []string, 1)
	go func() { first <- cache.Lookup(res, "hot") }()
	<-res.started // the derivation is in flight

	var wg sync.WaitGroup
	results := make([][]string, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = cache.Lookup(res, "hot")
		}(i)
	}
	close(res.release)
	wg.Wait()
	want := <-first
	for i, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("waiter %d got %v, want %v", i, got, want)
		}
	}
	if n := res.calls.Load(); n != 1 {
		t.Fatalf("hot term derived %d times, want 1", n)
	}
}

// workerCorpus builds a corpus large enough that every worker count
// exercises real sharding.
func workerCorpus(t *testing.T) (*textdb.Corpus, []Extractor, []Resource) {
	t.Helper()
	var texts []string
	for i := 0; i < 90; i++ {
		texts = append(texts, fmt.Sprintf("entity%d met entity%d about issue %d in city%d", i%7, (i+2)%7, i, i%5))
	}
	corpus := miniCorpus(texts...)
	var terms []string
	ctx := map[string][]string{}
	for i := 0; i < 7; i++ {
		term := fmt.Sprintf("entity%d", i)
		terms = append(terms, term)
		ctx[term] = []string{fmt.Sprintf("general%d", i%3), "people", fmt.Sprintf("broad%d", i%2)}
	}
	ex := fakeExtractor{name: "a", terms: terms}
	res := &fakeResource{name: "r", ctx: ctx}
	return corpus, []Extractor{ex}, []Resource{res}
}

func TestIdentifyImportantWorkersEquivalence(t *testing.T) {
	corpus, exs, _ := workerCorpus(t)
	seq, err := IdentifyImportantWorkers(context.Background(), corpus, exs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 16} {
		par, err := IdentifyImportantWorkers(context.Background(), corpus, exs, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: important terms diverge from sequential", workers)
		}
	}
}

func TestDeriveContextWorkersEquivalence(t *testing.T) {
	corpus, exs, ress := workerCorpus(t)
	important, err := IdentifyImportantWorkers(context.Background(), corpus, exs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := DeriveContextWorkers(context.Background(), important, ress, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := DeriveContextWorkers(context.Background(), important, ress, NewResourceCache(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: context rows diverge from sequential", workers)
		}
	}
}

func TestAnalyzeWithWorkersEquivalence(t *testing.T) {
	corpus, exs, ress := workerCorpus(t)
	important, _ := IdentifyImportantWorkers(context.Background(), corpus, exs, 0, 1)
	ctxRows, _ := DeriveContextWorkers(context.Background(), important, ress, nil, 1)
	seq := AnalyzeWith(corpus, ctxRows, 0, AnalyzeOptions{Workers: 1})
	for _, workers := range []int{2, 4, 16} {
		par := AnalyzeWith(corpus, ctxRows, 0, AnalyzeOptions{Workers: workers})
		if !reflect.DeepEqual(seq.Candidates, par.Candidates) {
			t.Fatalf("workers=%d: candidate ranking diverges from sequential", workers)
		}
		if !reflect.DeepEqual(seq.Facets, par.Facets) {
			t.Fatalf("workers=%d: facets diverge from sequential", workers)
		}
	}
}

func TestPipelineWorkersEquivalence(t *testing.T) {
	corpus, exs, ress := workerCorpus(t)
	run := func(workers int) *Result {
		p, err := New(Config{Extractors: exs, Resources: ress, TopK: 25, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(corpus)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq.Facets, par.Facets) {
		t.Fatal("facets diverge between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(seq.Candidates, par.Candidates) {
		t.Fatal("candidates diverge between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(seq.Important, par.Important) {
		t.Fatal("important-term rows diverge between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(seq.Context, par.Context) {
		t.Fatal("context rows diverge between Workers=1 and Workers=8")
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	_, err := New(Config{
		Extractors: []Extractor{fakeExtractor{name: "a"}},
		Resources:  []Resource{&fakeResource{name: "r"}},
		Workers:    -2,
	})
	if err == nil {
		t.Fatal("expected error for negative Workers")
	}
}

func TestExpandDocTerms(t *testing.T) {
	dict := textdb.NewDictionary()
	a, b := dict.Intern("a"), dict.Intern("b")
	ctxSet := map[textdb.TermID]bool{}
	merged := ExpandDocTerms(dict, []textdb.TermID{a, b}, []string{"b", "c", "c", "a", "d"}, nil, ctxSet)
	c, d := dict.Lookup("c"), dict.Lookup("d")
	want := []textdb.TermID{a, b, c, d}
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged = %v, want %v", merged, want)
	}
	// Only context-only terms enter the candidate set.
	if len(ctxSet) != 2 || !ctxSet[c] || !ctxSet[d] {
		t.Fatalf("ctxSet = %v, want {c, d}", ctxSet)
	}
	// Reused scratch must be cleared between documents.
	scratch := map[textdb.TermID]bool{a: true}
	merged = ExpandDocTerms(dict, nil, []string{"a"}, scratch, nil)
	if !reflect.DeepEqual(merged, []textdb.TermID{a}) {
		t.Fatalf("stale scratch leaked: %v", merged)
	}
}
