// Command facetcli runs the full facet-extraction pipeline end to end:
// it synthesizes the resource environment and a news corpus, extracts
// facet terms, builds the hierarchy, and prints both.
//
//	facetcli [-docs N] [-profile SNYT|SNB|MNYT] [-topk K] [-seed N]
//	         [-workers N] [-extractors NE,Yahoo,Wikipedia] [-resources ...]
//	         [-hierarchy subsumption|evidence|treemin|agglomerative]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	facet "repro"
)

func main() {
	log.SetFlags(0)
	docs := flag.Int("docs", 500, "number of documents to generate")
	profile := flag.String("profile", "SNYT", "dataset profile (SNYT, SNB, MNYT)")
	topK := flag.Int("topk", 100, "facet terms to extract")
	seed := flag.Uint64("seed", 42, "seed")
	workers := flag.Int("workers", 0, "pipeline worker pool size (0 = GOMAXPROCS, 1 = sequential; output is identical)")
	extractors := flag.String("extractors", "", "comma-separated extractor subset (default: all)")
	resources := flag.String("resources", "", "comma-separated resource subset (default: all external; \"corpus\" selects the corpus-only distributional mode)")
	corpusFallback := flag.Bool("corpus-fallback", false, "fall back to corpus-only distributional context when every resource fails a lookup")
	hierarchyBuilder := flag.String("hierarchy", "", "hierarchy builder registry name (default: subsumption)")
	dotOut := flag.String("dot", "", "write the hierarchy as Graphviz DOT to this file")
	jsonOut := flag.String("json", "", "write the hierarchy as JSON to this file")
	flag.Parse()

	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := env.GenerateNewsCorpus(*profile, *docs, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	opts := facet.Options{TopK: *topK, Workers: *workers, HierarchyBuilder: *hierarchyBuilder, CorpusFallback: *corpusFallback}
	if *extractors != "" {
		opts.Extractors = strings.Split(*extractors, ",")
	}
	if *resources != "" {
		opts.Resources = strings.Split(*resources, ",")
	}
	sys, err := facet.NewSystem(env, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range corpus {
		sys.Add(d)
	}
	fmt.Printf("Extracting facets from %d %s documents...\n\n", sys.Len(), *profile)
	res, err := sys.ExtractFacets()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Top facet terms (%d):\n", len(res.Facets))
	for i, f := range res.Facets {
		if i >= 25 {
			fmt.Printf("  ... and %d more\n", len(res.Facets)-25)
			break
		}
		fmt.Printf("  %-28s score=%8.1f  df=%4d -> %4d\n", f.Term, f.Score, f.DF, f.DFC)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		log.Fatal(err)
	}
	b, err := res.Browser(h)
	if err != nil {
		log.Fatal(err)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := h.WriteDOT(f, "facets"); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("\nDOT graph written to %s\n", *dotOut)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := h.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("JSON hierarchy written to %s\n", *jsonOut)
	}
	fmt.Printf("\nFacet hierarchy (%d terms):\n", h.Size())
	var print func(n *facet.Node, depth int)
	print = func(n *facet.Node, depth int) {
		fmt.Printf("%s%s (%d)\n", strings.Repeat("  ", depth+1), n.Term, b.Count(n.Term))
		for _, c := range n.Children {
			print(c, depth+1)
		}
	}
	for i, r := range h.Roots() {
		if i >= 12 {
			fmt.Printf("  ... and %d more root facets\n", len(h.Roots())-12)
			break
		}
		print(r, 0)
	}
}
