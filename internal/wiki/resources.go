package wiki

import (
	"math"
	"sort"
	"strings"

	"repro/internal/lang"
)

// TitleExtractor identifies important document terms by matching text
// spans against Wikipedia page titles and redirects, picking the longest
// title when several candidates overlap (Section IV-A of the paper).
type TitleExtractor struct {
	w *Wiki
}

// NewTitleExtractor returns the extractor over the given wiki.
func NewTitleExtractor(w *Wiki) *TitleExtractor {
	return &TitleExtractor{w: w}
}

// Name implements the core.Extractor convention.
func (e *TitleExtractor) Name() string { return "Wikipedia" }

// Extract returns the normalized important terms of the text: every
// maximal span that matches a page title or redirect. Matching is greedy
// left-to-right with longest-match-first, so "New York Stock Exchange"
// beats "New York" when both are titles. The SURFACE span is returned
// (not the canonical title): variant resolution is the job of the
// downstream resources, which all resolve through the same redirect
// table — and the Wikipedia Synonyms resource in particular exists to
// map surface variants to their canonical entry.
func (e *TitleExtractor) Extract(text string) []string {
	tokens := lang.Tokenize(text)
	words := lang.Norms(tokens)
	maxN := e.w.MaxTitleWords()
	if maxN > 6 {
		maxN = 6
	}
	var out []string
	seen := map[string]bool{}
	i := 0
	for i < len(words) {
		matched := 0
		for n := min(maxN, len(words)-i); n >= 1; n-- {
			span := strings.Join(words[i:i+n], " ")
			if _, ok := e.w.Resolve(span); ok {
				if !seen[span] {
					seen[span] = true
					out = append(out, span)
				}
				matched = n
				break
			}
		}
		if matched > 0 {
			i += matched
			continue
		}
		i++
	}
	return out
}

// GraphResource derives context terms from the Wikipedia link graph: the
// entries linked from the queried entry, scored by the paper's
// association metric log(N/in(t2)) / out(t1), top k.
type GraphResource struct {
	w *Wiki
	k int
}

// NewGraphResource returns the resource; k <= 0 selects the paper's k=50.
func NewGraphResource(w *Wiki, k int) *GraphResource {
	if k <= 0 {
		k = 50
	}
	return &GraphResource{w: w, k: k}
}

// Name implements the core.Resource convention.
func (r *GraphResource) Name() string { return "Wikipedia Graph" }

// Context returns the top-k linked entries for the term, as normalized
// titles. Unknown terms return nil (the resource has nothing to say).
func (r *GraphResource) Context(term string) []string {
	page, ok := r.w.Resolve(term)
	if !ok {
		return nil
	}
	out1 := r.w.OutDegree(page.ID)
	if out1 == 0 {
		return nil
	}
	n := float64(r.w.Len())
	scored := make([]ScoredTerm, 0, len(page.Links))
	seen := map[PageID]bool{}
	for _, link := range page.Links {
		if seen[link.Target] {
			continue
		}
		seen[link.Target] = true
		in2 := r.w.InDegree(link.Target)
		if in2 == 0 {
			in2 = 1
		}
		score := math.Log(n/float64(in2)) / float64(out1)
		scored = append(scored, ScoredTerm{
			Term:  lang.NormalizePhrase(r.w.Page(link.Target).Title),
			Score: score,
		})
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Term < scored[b].Term
	})
	if len(scored) > r.k {
		scored = scored[:r.k]
	}
	out := make([]string, len(scored))
	for i, s := range scored {
		out[i] = s.Term
	}
	return out
}

// SynonymResource returns variations of a term: the redirect group of its
// page plus anchor texts passing the s(p,t) = tf(p,t)/f(p) threshold
// (Section IV-B, "Wikipedia Synonyms").
type SynonymResource struct {
	w *Wiki
	// minAnchorScore filters noisy anchors; the paper notes anchors are
	// "inherently noisier than redirects" and ranks them by s(p,t).
	minAnchorScore float64
}

// NewSynonymResource returns the resource with the default anchor
// threshold.
func NewSynonymResource(w *Wiki) *SynonymResource {
	return &SynonymResource{w: w, minAnchorScore: 0.5}
}

// Name implements the core.Resource convention.
func (r *SynonymResource) Name() string { return "Wikipedia Synonyms" }

// Context returns the synonyms of the term: canonical title, redirect
// variants, and high-scoring anchors, excluding the query form itself.
func (r *SynonymResource) Context(term string) []string {
	page, ok := r.w.Resolve(term)
	if !ok {
		return nil
	}
	query := lang.NormalizePhrase(term)
	var out []string
	seen := map[string]bool{query: true}
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	add(lang.NormalizePhrase(page.Title))
	for _, v := range r.w.RedirectGroup(page.ID) {
		add(v)
	}
	for _, a := range r.w.AnchorsFor(page.ID) {
		if a.Score >= r.minAnchorScore {
			add(a.Term)
		}
	}
	return out
}
