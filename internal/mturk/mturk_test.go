package mturk

import (
	"reflect"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/newsgen"
	"repro/internal/ontology"
)

func testKB(t *testing.T) *ontology.KB {
	t.Helper()
	kb, err := ontology.Build(ontology.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func TestValidateAgreement(t *testing.T) {
	raw := [][]string{
		{"war", "politics", "france"},
		{"war", "sports"},
		{"war", "politics"},
		{"music"},
		{"france", "france"}, // duplicates within one annotator count once
	}
	got := ValidateAgreement(raw, 2)
	want := []string{"france", "politics", "war"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got := ValidateAgreement(raw, 3); !reflect.DeepEqual(got, []string{"war"}) {
		t.Fatalf("minAgree=3 got %v", got)
	}
}

func TestAnnotateStoryDeterministicPerKey(t *testing.T) {
	kb := testKB(t)
	pool := NewPool(kb, Config{Seed: 7})
	facets := []ontology.ConceptID{kb.FacetTerms()[3].ID, kb.FacetTerms()[10].ID, kb.FacetTerms()[20].ID}
	a := pool.AnnotateStory(5, facets)
	b := pool.AnnotateStory(5, facets)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same story key produced different annotations")
	}
	c := pool.AnnotateStory(6, facets)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different story keys produced identical annotations")
	}
	if len(a) != 5 {
		t.Fatalf("annotators = %d, want 5", len(a))
	}
	for _, list := range a {
		if len(list) > 10 {
			t.Fatalf("annotator exceeded 10-term cap: %d", len(list))
		}
	}
}

func TestBuildGroundTruthFiltersNoise(t *testing.T) {
	kb := testKB(t)
	ds, err := newsgen.Generate(kb, newsgen.SNYT.WithDocs(100), 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(kb, Config{Seed: 7})
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	gt := pool.BuildGroundTruth(ds, idx)
	if len(gt.Terms) == 0 {
		t.Fatal("empty ground truth")
	}
	if len(gt.Stories) != 100 {
		t.Fatalf("stories = %d", len(gt.Stories))
	}
	// Validated per-story terms must be dominated by true trace facets:
	// count how many validated terms are genuine.
	genuine, total := 0, 0
	for i, story := range gt.Stories {
		truth := map[string]bool{}
		for _, f := range ds.Traces[i].Facets {
			truth[kb.Concept(f).Name] = true
		}
		for _, term := range story {
			total++
			if truth[term] {
				genuine++
			}
		}
	}
	if total == 0 {
		t.Fatal("no validated terms at all")
	}
	if rate := float64(genuine) / float64(total); rate < 0.85 {
		t.Fatalf("agreement validation kept %.2f genuine, want >= 0.85", rate)
	}
}

func TestGroundTruthRecallMatching(t *testing.T) {
	kb := testKB(t)
	ds, _ := newsgen.Generate(kb, newsgen.SNYT.WithDocs(30), 3)
	pool := NewPool(kb, Config{Seed: 7})
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	gt := pool.BuildGroundTruth(ds, idx)
	// Perfect extraction: recall 1.
	if r := gt.Recall(gt.Terms); r != 1 {
		t.Fatalf("self recall = %v", r)
	}
	// Stem variation still matches.
	if len(gt.Terms) > 0 {
		term := gt.Terms[0]
		if !gt.Contains(term + "s") {
			t.Logf("pluralized %q did not match (acceptable for irregulars)", term)
		}
	}
	if r := gt.Recall(nil); r != 0 {
		t.Fatalf("empty extraction recall = %v", r)
	}
	if r := gt.Recall([]string{"zzz", "qqq"}); r != 0 {
		t.Fatalf("junk extraction recall = %v", r)
	}
}

func TestMatchFacetStemAndAlias(t *testing.T) {
	kb := testKB(t)
	pool := NewPool(kb, Config{Seed: 1})
	// Direct stem match: "markets" facet via "market".
	if _, ok := pool.MatchFacet("market"); !ok {
		t.Fatal("stem match failed for market")
	}
	// Alias: "person" denotes People.
	id, ok := pool.MatchFacet("person")
	if !ok {
		t.Fatal("alias match failed for person")
	}
	people, _ := kb.ByName("People")
	if id != people.ID {
		t.Fatalf("person resolved to %q", kb.Concept(id).Display)
	}
	if _, ok := pool.MatchFacet("jacques chirac"); ok {
		t.Fatal("entity matched a facet")
	}
}

func TestQualificationFiltersBadJudges(t *testing.T) {
	kb := testKB(t)
	// Low-accuracy pool: almost nobody should pass 18/20.
	bad := NewPool(kb, Config{Seed: 5, JudgeAccuracy: 0.6})
	passedBad := 0
	for i := 0; i < 200; i++ {
		if bad.Qualify(i) {
			passedBad++
		}
	}
	good := NewPool(kb, Config{Seed: 5, JudgeAccuracy: 0.95})
	passedGood := 0
	for i := 0; i < 200; i++ {
		if good.Qualify(i) {
			passedGood++
		}
	}
	if passedBad >= passedGood {
		t.Fatalf("qualification not selective: bad=%d good=%d", passedBad, passedGood)
	}
	if passedGood < 50 {
		t.Fatalf("qualification too strict for competent judges: %d/200", passedGood)
	}
}

func TestQualifiedJudgesCount(t *testing.T) {
	kb := testKB(t)
	pool := NewPool(kb, Config{Seed: 5})
	judges := pool.QualifiedJudges(5)
	if len(judges) != 5 {
		t.Fatalf("got %d judges", len(judges))
	}
}

// buildForest builds a tiny hierarchy by hand through the subsumption
// builder, so nodes have correct Parent wiring.
func buildForest(t *testing.T, parentChild map[string][]string, roots []string) *hierarchy.Forest {
	t.Helper()
	// Encode the desired tree as co-occurrence: parent occurs in every doc
	// of each child, children disjoint.
	var terms []string
	var docs [][]string
	add := func(term string) {
		terms = append(terms, term)
	}
	for _, r := range roots {
		add(r)
	}
	var walk func(parent string, ancestors []string)
	walk = func(parent string, ancestors []string) {
		for _, c := range parentChild[parent] {
			add(c)
			full := append(append([]string{}, ancestors...), parent, c)
			for i := 0; i < 4; i++ {
				docs = append(docs, full)
			}
			walk(c, append(append([]string{}, ancestors...), parent))
		}
	}
	for _, r := range roots {
		walk(r, nil)
		docs = append(docs, []string{r}, []string{r})
	}
	// Padding documents keep every term below the saturation cutoff.
	for i, n := 0, 3*len(docs); i < n; i++ {
		docs = append(docs, nil)
	}
	f, err := hierarchy.BuildSubsumption(terms, docs, hierarchy.SubsumptionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestJudgePrecisionGoodHierarchy(t *testing.T) {
	kb := testKB(t)
	pool := NewPool(kb, Config{Seed: 9})
	// A correct mini-hierarchy: location > europe > france.
	f := buildForest(t, map[string][]string{
		"location": {"europe"},
		"europe":   {"france", "germany"},
	}, []string{"location"})
	judgments, precision := pool.JudgePrecision(f)
	if len(judgments) != 4 {
		t.Fatalf("judged %d terms", len(judgments))
	}
	if precision < 0.75 {
		t.Fatalf("precision of correct hierarchy = %v, want high", precision)
	}
}

func TestJudgePrecisionBadHierarchy(t *testing.T) {
	kb := testKB(t)
	pool := NewPool(kb, Config{Seed: 9})
	// Garbage terms under wrong parents.
	f := buildForest(t, map[string][]string{
		"zzqx":   {"wwvk"},
		"sports": {"france"}, // real terms, wrong placement
	}, []string{"zzqx", "sports"})
	judgments, precision := pool.JudgePrecision(f)
	badCount := 0
	for _, j := range judgments {
		if !j.Truth {
			badCount++
		}
	}
	if badCount < 3 {
		t.Fatalf("expected >= 3 ground-false terms, got %d", badCount)
	}
	if precision > 0.6 {
		t.Fatalf("precision of garbage hierarchy = %v, want low", precision)
	}
}

func TestJudgePrecisionEmptyForest(t *testing.T) {
	kb := testKB(t)
	pool := NewPool(kb, Config{Seed: 9})
	f, _ := hierarchy.BuildSubsumption(nil, nil, hierarchy.SubsumptionConfig{})
	j, p := pool.JudgePrecision(f)
	if j != nil || p != 0 {
		t.Fatal("empty forest should judge to nothing")
	}
}

func TestPlacedOKCommonNounChain(t *testing.T) {
	kb := testKB(t)
	pool := NewPool(kb, Config{Seed: 2})
	f := buildForest(t, map[string][]string{
		"leader": {"politician"},
	}, []string{"leader"})
	n, ok := f.Find("politician")
	if !ok || n.Parent == nil {
		t.Fatal("fixture broken")
	}
	if !pool.placedOK(n) {
		t.Fatal("politician under leader should be correctly placed (is-a chain)")
	}
}

func TestFacetSubsumes(t *testing.T) {
	kb := testKB(t)
	pool := NewPool(kb, Config{Seed: 3})
	gov, _ := kb.ByName("Government")
	pl, _ := kb.ByName("Political Leaders")
	// Every political leader is a government figure in the KB.
	if !pool.facetSubsumes(gov.ID, pl.ID) {
		t.Fatal("Government should plausibly subsume Political Leaders")
	}
	// The reverse fails: most government-related entities are not leaders?
	// (Politicians dominate Government, so test a clearly wrong pair.)
	sports, _ := kb.ByName("Sports")
	if pool.facetSubsumes(sports.ID, pl.ID) {
		t.Fatal("Sports must not subsume Political Leaders")
	}
	if pool.facetSubsumes(pl.ID, sports.ID) {
		t.Fatal("Political Leaders must not subsume Sports")
	}
}

func TestPlacedOKCrossDimension(t *testing.T) {
	kb := testKB(t)
	pool := NewPool(kb, Config{Seed: 3})
	f := buildForest(t, map[string][]string{
		"government": {"political leaders"},
	}, []string{"government"})
	n, ok := f.Find("political leaders")
	if !ok || n.Parent == nil {
		t.Fatal("fixture broken")
	}
	if !pool.placedOK(n) {
		t.Fatal("political leaders under government should be accepted")
	}
}

func TestFleissKappa(t *testing.T) {
	// Perfect agreement: everyone assigns or nobody does.
	k, ok := FleissKappa([]int{5, 5, 0, 0, 5}, 5)
	if !ok || k != 1 {
		t.Fatalf("perfect agreement kappa = %v %v", k, ok)
	}
	// Maximal disagreement on a two-category scale with 2 raters.
	k, ok = FleissKappa([]int{1, 1, 1, 1}, 2)
	if !ok || k >= 0 {
		t.Fatalf("coin-flip kappa = %v, want negative", k)
	}
	// Invalid inputs.
	if _, ok := FleissKappa(nil, 5); ok {
		t.Fatal("empty ratings accepted")
	}
	if _, ok := FleissKappa([]int{1}, 1); ok {
		t.Fatal("single annotator accepted")
	}
	if _, ok := FleissKappa([]int{7}, 5); ok {
		t.Fatal("rating above annotator count accepted")
	}
}

func TestMeasureAgreement(t *testing.T) {
	kb := testKB(t)
	ds, err := newsgen.Generate(kb, newsgen.SNYT.WithDocs(60), 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(kb, Config{Seed: 7})
	idx := make([]int, 60)
	for i := range idx {
		idx[i] = i
	}
	rep := pool.MeasureAgreement(ds, idx)
	if rep.Stories != 60 || rep.TermPairs == 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Binary per-term agreement is weak by design (per-term recall 0.6
	// plus idiosyncratic noise): kappa lands just above chance — which is
	// exactly why the paper validates with the lenient >= 2-of-5 rule
	// instead of requiring consensus. It must still be above chance and
	// far from perfect.
	if rep.Kappa <= 0 || rep.Kappa >= 0.8 {
		t.Fatalf("kappa = %v outside plausible band", rep.Kappa)
	}
	if rep.MeanAgreed <= 0.4 || rep.MeanAgreed > 1 {
		t.Fatalf("mean agreement = %v", rep.MeanAgreed)
	}
}
