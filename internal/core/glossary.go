package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// The paper's discussion section (VII) proposes plugging domain-specific
// controlled vocabularies (e.g. from Dow Jones' Taxonomy Warehouse) into
// the same two seams: a glossary used for term identification, and a
// thesaurus/ontology used for term expansion. GlossaryExtractor and
// GlossaryResource implement those, so a deployment for, say, financial
// literature can run the identical pipeline with a finance glossary.

// GlossaryExtractor marks document terms important when they appear in a
// fixed controlled vocabulary.
type GlossaryExtractor struct {
	name     string
	terms    map[string]bool
	maxWords int
}

// NewGlossaryExtractor builds an extractor from a vocabulary; entries are
// normalized. The name appears in experiment output.
func NewGlossaryExtractor(name string, vocabulary []string) (*GlossaryExtractor, error) {
	if len(vocabulary) == 0 {
		return nil, fmt.Errorf("core: empty glossary %q", name)
	}
	g := &GlossaryExtractor{name: name, terms: map[string]bool{}}
	for _, v := range vocabulary {
		n := lang.NormalizePhrase(v)
		if n == "" {
			continue
		}
		g.terms[n] = true
		if w := len(strings.Fields(n)); w > g.maxWords {
			g.maxWords = w
		}
	}
	if len(g.terms) == 0 {
		return nil, fmt.Errorf("core: glossary %q normalized to nothing", name)
	}
	return g, nil
}

// Name implements Extractor.
func (g *GlossaryExtractor) Name() string { return g.name }

// Extract returns glossary terms found in the text, longest match first.
func (g *GlossaryExtractor) Extract(text string) []string {
	words := lang.Norms(lang.Tokenize(text))
	var out []string
	seen := map[string]bool{}
	i := 0
	for i < len(words) {
		matched := 0
		for n := min(g.maxWords, len(words)-i); n >= 1; n-- {
			span := strings.Join(words[i:i+n], " ")
			if g.terms[span] {
				if !seen[span] {
					seen[span] = true
					out = append(out, span)
				}
				matched = n
				break
			}
		}
		if matched > 0 {
			i += matched
		} else {
			i++
		}
	}
	return out
}

// GlossaryResource expands terms through a fixed term → related-terms
// mapping (a thesaurus or small ontology).
type GlossaryResource struct {
	name    string
	related map[string][]string
}

// NewGlossaryResource builds a resource from a thesaurus map; keys and
// values are normalized.
func NewGlossaryResource(name string, thesaurus map[string][]string) (*GlossaryResource, error) {
	if len(thesaurus) == 0 {
		return nil, fmt.Errorf("core: empty thesaurus %q", name)
	}
	g := &GlossaryResource{name: name, related: map[string][]string{}}
	for k, vals := range thesaurus {
		key := lang.NormalizePhrase(k)
		if key == "" {
			continue
		}
		var norm []string
		seen := map[string]bool{}
		for _, v := range vals {
			n := lang.NormalizePhrase(v)
			if n == "" || n == key || seen[n] {
				continue
			}
			seen[n] = true
			norm = append(norm, n)
		}
		sort.Strings(norm)
		g.related[key] = norm
	}
	return g, nil
}

// Name implements Resource.
func (g *GlossaryResource) Name() string { return g.name }

// Context returns the thesaurus expansion of the term.
func (g *GlossaryResource) Context(term string) []string {
	return g.related[lang.NormalizePhrase(term)]
}
