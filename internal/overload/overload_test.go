package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
)

// drive feeds n completions of the given latency through an
// already-admitted slot sequence: acquire, release(latency), repeat.
// Every acquire must admit (the limiter is otherwise idle).
func drive(t *testing.T, l *Limiter, n int, latency time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		release, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		release(latency)
	}
}

func TestAIMDAdditiveIncrease(t *testing.T) {
	l := NewLimiter("t", Config{InitialLimit: 4, Interval: 4})
	// Three healthy windows: steady latency never exceeds the baseline
	// threshold, so each window bumps the limit by one.
	drive(t, l, 12, 10*time.Millisecond)
	if got := l.Limit(); got != 7 {
		t.Fatalf("limit after 3 healthy windows = %d, want 7", got)
	}
}

func TestAIMDMultiplicativeDecrease(t *testing.T) {
	l := NewLimiter("t", Config{InitialLimit: 16, Interval: 4, Threshold: 1.5, Decrease: 0.5})
	// Establish a 10ms baseline.
	drive(t, l, 4, 10*time.Millisecond)
	if got := l.Limit(); got != 17 {
		t.Fatalf("limit after healthy window = %d, want 17", got)
	}
	// A degraded window: mean latency 5x the baseline floor. The window
	// minimum stays near 10ms via one fast completion, so the baseline
	// keeps tracking the healthy floor while the mean explodes.
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release(10 * time.Millisecond)
	drive(t, l, 3, 80*time.Millisecond)
	if got := l.Limit(); got != 8 {
		t.Fatalf("limit after degraded window = %d, want 8 (17 * 0.5)", got)
	}
	// Recovery: healthy windows climb back additively.
	drive(t, l, 8, 10*time.Millisecond)
	if got := l.Limit(); got != 10 {
		t.Fatalf("limit after recovery = %d, want 10", got)
	}
}

func TestAIMDDeterministic(t *testing.T) {
	run := func() []int {
		l := NewLimiter("t", Config{InitialLimit: 8, Interval: 2})
		lats := []time.Duration{5, 5, 40, 50, 5, 6, 90, 100, 5, 5, 5, 5} // ms
		var limits []int
		for _, ms := range lats {
			release, err := l.Acquire(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			release(ms * time.Millisecond)
			limits = append(limits, l.Limit())
		}
		return limits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("limit trajectory diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestLimitBounds(t *testing.T) {
	l := NewLimiter("t", Config{InitialLimit: 2, MinLimit: 2, MaxLimit: 3, Interval: 1, Decrease: 0.5})
	drive(t, l, 10, 10*time.Millisecond)
	if got := l.Limit(); got != 3 {
		t.Fatalf("limit = %d, want MaxLimit 3", got)
	}
	// Alternate one fast and one catastrophically slow completion per
	// window; decreases must stop at MinLimit.
	for i := 0; i < 10; i++ {
		drive(t, l, 1, 500*time.Millisecond)
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit = %d, want MinLimit 2", got)
	}
}

func TestQueueFullSheds(t *testing.T) {
	reg := obsv.NewRegistry()
	l := NewLimiter("t", Config{InitialLimit: 1, Queue: 1, Metrics: reg})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	admitted := make(chan func(time.Duration), 1)
	go func() {
		r, err := l.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- r
	}()
	// Wait until the waiter is actually queued.
	for i := 0; ; i++ {
		reg2 := reg.Snapshot()
		if reg2.Counters["overload.t.queued"] == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// The queue is now full: the next acquire sheds immediately.
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	release(time.Millisecond)
	r2 := <-admitted
	r2(time.Millisecond)
	snap := reg.Snapshot()
	if snap.Counters["overload.t.admitted"] != 2 || snap.Counters["overload.t.shed"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Histograms["overload.t.queue_wait"].Count != 1 {
		t.Fatalf("queue_wait count = %d, want 1", snap.Histograms["overload.t.queue_wait"].Count)
	}
}

func TestQueuedWaiterShedOnDeadline(t *testing.T) {
	l := NewLimiter("t", Config{InitialLimit: 1, Queue: 4})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx); !errors.Is(err, ErrShed) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrShed wrapping DeadlineExceeded", err)
	}
	// The abandoned waiter left no residue: releasing the one slot makes
	// the limiter fully idle again.
	release(time.Millisecond)
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
	r, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after shed: %v", err)
	}
	r(time.Millisecond)
}

func TestSpentBudgetShedsBeforeQueueing(t *testing.T) {
	l := NewLimiter("t", Config{InitialLimit: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Acquire(ctx); !errors.Is(err, ErrShed) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrShed wrapping Canceled", err)
	}
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

func TestSlotHandoffFIFO(t *testing.T) {
	l := NewLimiter("t", Config{InitialLimit: 1, Queue: 8})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	starts := make(chan struct{}, 3)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize queue entry so FIFO order is well-defined.
			starts <- struct{}{}
			r, err := l.Acquire(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r(time.Millisecond)
		}(i)
		// Wait for goroutine i to be queued before launching i+1.
		for l.queueLen() < i {
			time.Sleep(time.Millisecond)
		}
	}
	release(time.Millisecond)
	wg.Wait()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("grant order = %v, want [1 2 3]", order)
	}
	<-starts
	<-starts
	<-starts
}

// queueLen is a test-only view of the wait queue depth.
func (l *Limiter) queueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiters)
}

func TestReleaseIdempotent(t *testing.T) {
	l := NewLimiter("t", Config{InitialLimit: 4})
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release(time.Millisecond)
	release(time.Millisecond) // second call must be a no-op
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

func TestGovernorClassIsolation(t *testing.T) {
	reg := obsv.NewRegistry()
	g := NewGovernor(GovernorConfig{
		Read:      Config{InitialLimit: 1, Queue: -1},
		Expensive: Config{InitialLimit: 1, Queue: -1},
		Write:     Config{InitialLimit: 1, Queue: -1},
		Metrics:   reg,
	})
	// Saturate reads; expensive and write must still admit.
	relRead, err := g.Acquire(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(context.Background(), ClassRead); !errors.Is(err, ErrShed) {
		t.Fatalf("second read: err = %v, want ErrShed", err)
	}
	relExp, err := g.Acquire(context.Background(), ClassExpensive)
	if err != nil {
		t.Fatalf("expensive admission during read saturation: %v", err)
	}
	relWrite, err := g.Acquire(context.Background(), ClassWrite)
	if err != nil {
		t.Fatalf("write admission during read saturation: %v", err)
	}
	relRead(time.Millisecond)
	relExp(time.Millisecond)
	relWrite(time.Millisecond)
	snap := reg.Snapshot()
	if snap.Counters["overload.read.shed"] != 1 {
		t.Fatalf("read shed = %d, want 1", snap.Counters["overload.read.shed"])
	}
	if snap.Gauges["overload.expensive.limit"] != 1 {
		t.Fatalf("expensive limit gauge = %d, want 1", snap.Gauges["overload.expensive.limit"])
	}
}

func TestGovernorUnknownClassFailsOpen(t *testing.T) {
	g := NewGovernor(GovernorConfig{})
	release, err := g.Acquire(context.Background(), Class("mystery"))
	if err != nil {
		t.Fatalf("unknown class must admit, got %v", err)
	}
	release(time.Millisecond)
	if sec := g.RetryAfterSeconds(Class("mystery")); sec != 1 {
		t.Fatalf("retry-after for unknown class = %d, want 1", sec)
	}
}

func TestRetryAfterClamped(t *testing.T) {
	l := NewLimiter("t", Config{InitialLimit: 1, Interval: 1})
	drive(t, l, 1, 2*time.Second) // recent = 2s, nothing ahead
	if sec := l.retryAfterSeconds(); sec < 1 || sec > 30 {
		t.Fatalf("retry-after = %d, want within [1, 30]", sec)
	}
}

func TestWrapMeasuresLatency(t *testing.T) {
	now := time.Unix(0, 0)
	g := NewGovernor(GovernorConfig{
		Read: Config{InitialLimit: 2, Interval: 1},
		Now:  func() time.Time { return now },
	})
	err := g.Wrap(context.Background(), ClassRead, func(context.Context) error {
		now = now.Add(40 * time.Millisecond) // virtual service time
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l := g.Limiter(ClassRead)
	l.mu.Lock()
	recent := l.recent
	l.mu.Unlock()
	if recent != float64(40*time.Millisecond) {
		t.Fatalf("recent latency = %v, want 40ms", time.Duration(recent))
	}
}
