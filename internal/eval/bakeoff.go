package eval

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/hierarchy"
)

// Bakeoff is the outcome of scoring every registered hierarchy builder
// on the same extracted terms against the ground-truth ontology — the
// quality comparison the ROADMAP calls for: subsumption is one of
// several viable strategies, and this table says what each one buys.
type Bakeoff struct {
	Profile string
	Docs    int
	TopK    int
	Rows    []ForestScore
}

// BakeoffOptions configures HierarchyBakeoff.
type BakeoffOptions struct {
	// TopK bounds the facet vocabulary every builder organizes (0 = 100,
	// matching CompareHierarchies).
	TopK int
	// Workers is passed to every builder.
	Workers int
}

// HierarchyBakeoff runs the All×All pipeline cell once, then hands the
// same terms and expanded document assignment to every builder in
// hierarchy.Names(), scoring each with ScoreForest plus wall-clock. All
// builders see one shared BuildConfig (lab-backed evidence sources and
// hypernym chains included), so the comparison isolates the strategy.
func HierarchyBakeoff(ctx context.Context, dr *DataRun, opts BakeoffOptions) (*Bakeoff, error) {
	topK := opts.TopK
	if topK == 0 {
		topK = 100
	}
	result := dr.RunCell(ExtAll, ResAll, topK)
	terms := result.FacetTermStrings()
	docTerms := ExpandedDocTerms(dr, result, terms)

	cfg := hierarchy.BuildConfig{
		Workers: opts.Workers,
		Evidence: hierarchy.EvidenceOptions{
			Sources:   dr.Lab.EvidenceSources(),
			Weights:   []float64{0.5, 0.5},
			Threshold: 0.6,
		},
		Chains: dr.Lab.HypernymChains(),
	}

	bk := &Bakeoff{Profile: dr.DS.Profile.Name, Docs: dr.DS.Corpus.Len(), TopK: topK}
	for _, name := range hierarchy.Names() {
		b, ok := hierarchy.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("eval: builder %q vanished from registry", name)
		}
		start := time.Now()
		forest, err := b.Build(ctx, terms, docTerms, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: builder %q: %w", name, err)
		}
		row := ScoreForest(dr.Pool, forest, terms)
		row.Builder = name
		row.Millis = float64(time.Since(start).Nanoseconds()) / 1e6
		bk.Rows = append(bk.Rows, row)
	}
	return bk, nil
}

// Format renders the per-builder table.
func (b *Bakeoff) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %6s %6s %6s %7s %7s %7s %9s %7s %9s\n",
		"Builder", "Nodes", "Roots", "MaxD", "MeanD", "Branch", "Orphan", "Precision", "Recall", "Millis")
	sb.WriteString(strings.Repeat("-", 88) + "\n")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-14s %6d %6d %6d %7.2f %7.2f %6.0f%% %9.3f %7.3f %9.1f\n",
			r.Builder, r.Nodes, r.Roots, r.MaxDepth, r.MeanDepth, r.Branching,
			100*r.OrphanRate, r.Precision, r.Recall, r.Millis)
	}
	return sb.String()
}

// BakeoffBench is the BENCH_hierarchy.json envelope, following the
// repository's bench-trajectory convention (cf. BENCH_serve.json,
// BENCH_cluster.json): a benchmark name, the GOMAXPROCS it ran at, and
// one point per builder.
type BakeoffBench struct {
	Benchmark  string         `json:"benchmark"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Profile    string         `json:"profile"`
	Docs       int            `json:"docs"`
	TopK       int            `json:"top_k"`
	Points     []BakeoffPoint `json:"points"`
}

// BakeoffPoint is one builder's scored outcome in the bench envelope.
type BakeoffPoint struct {
	Builder    string  `json:"builder"`
	Nodes      int     `json:"nodes"`
	Roots      int     `json:"roots"`
	MaxDepth   int     `json:"max_depth"`
	MeanDepth  float64 `json:"mean_depth"`
	Branching  float64 `json:"branching"`
	OrphanRate float64 `json:"orphan_rate"`
	Precision  float64 `json:"precision"`
	Recall     float64 `json:"recall"`
	Millis     float64 `json:"millis"`
}

// Bench converts the bake-off into its BENCH_hierarchy.json envelope.
func (b *Bakeoff) Bench() BakeoffBench {
	env := BakeoffBench{
		Benchmark:  "hierarchybakeoff",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Profile:    b.Profile,
		Docs:       b.Docs,
		TopK:       b.TopK,
	}
	for _, r := range b.Rows {
		env.Points = append(env.Points, BakeoffPoint{
			Builder:    r.Builder,
			Nodes:      r.Nodes,
			Roots:      r.Roots,
			MaxDepth:   r.MaxDepth,
			MeanDepth:  r.MeanDepth,
			Branching:  r.Branching,
			OrphanRate: r.OrphanRate,
			Precision:  r.Precision,
			Recall:     r.Recall,
			Millis:     r.Millis,
		})
	}
	return env
}
