// Command facetserve builds a faceted browsing interface over a news
// archive and serves it over HTTP: a server-rendered front end at /, a
// versioned JSON API under /api/v1/ (facets, docs, dates, cross,
// metrics; the deprecated unversioned /api/ aliases have been removed
// and now answer 404), and — with -live — streaming document intake
// with incremental facet rebuilds.
//
// Observability: GET /api/v1/metrics returns a JSON snapshot of every
// counter, gauge, and latency histogram (per-route HTTP metrics, ingest
// queue/epoch state, segment-store timing); -pprof additionally mounts
// the runtime profiler under /debug/pprof/; -access-log writes one JSON
// line per request to stderr.
//
// Batch mode (default) generates a corpus, extracts facets once, and
// serves the frozen interface:
//
//	facetserve [-addr :8080] [-docs 600] [-profile SNYT] [-seed 42]
//
// Live mode turns the server into a long-running ingestion service:
// documents POSTed to /api/v1/ingest stream through the extraction pipeline,
// the hierarchy is rebuilt every -epoch-docs documents (or -max-staleness
// interval), and the browsing interface is swapped atomically with zero
// downtime. With -store, accepted documents are durably persisted as
// append-only segments and a restarted server warm-starts from disk:
//
//	facetserve -live [-store DIR] [-epoch-docs 200] [-max-staleness 30s]
//
// Shutdown on SIGINT/SIGTERM is graceful: HTTP stops accepting, the
// intake queue drains, and a final epoch publishes and persists every
// accepted document before exit.
//
// Cluster mode (-role) scales serving beyond one process:
//
//	facetserve -role=shard -shard-name=a -cluster-shards=a,b,c   # one partition
//	facetserve -role=coordinator -peers=a=http://h1,b=http://h2,c=http://h3
//	facetserve -role=leader -snapshot state.fsnp                 # ships epochs
//	facetserve -role=replica -peers=http://leader:8080           # pulls epochs
//
// Shards build the same deterministic corpus and hierarchy, slice it by
// the consistent-hash ring, and serve their partition; the coordinator
// scatter-gathers across them and answers byte-identically to a single
// node (degrading explicitly when shards are down). A leader serves the
// whole corpus and ships each published epoch's snapshot bytes; replicas
// pull, rehydrate, and swap atomically, reporting replication lag via
// /api/v1/readyz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	facet "repro"
	"repro/internal/browse"
	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/obsv"
	"repro/internal/overload"
	"repro/internal/serve"
	"repro/internal/snapshot"
	"repro/internal/textdb"
)

// hardening carries the http.Server protection knobs: without explicit
// timeouts a single slow-loris client (or a stalled read) holds a
// connection and its goroutine forever, which is exactly the unbounded
// pile-up the overload work exists to prevent.
type hardening struct {
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	maxHeaderBytes    int
}

// server builds a hardened http.Server around handler.
func (h hardening) server(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: h.readHeaderTimeout,
		ReadTimeout:       h.readTimeout,
		WriteTimeout:      h.writeTimeout,
		IdleTimeout:       h.idleTimeout,
		MaxHeaderBytes:    h.maxHeaderBytes,
	}
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8080", "listen address")
	docs := flag.Int("docs", 600, "number of documents to generate")
	profile := flag.String("profile", "SNYT", "dataset profile")
	seed := flag.Uint64("seed", 42, "seed")
	topK := flag.Int("topk", 120, "facet terms to extract")
	resources := flag.String("resources", "", "comma-separated context resources (Google, WordNet Hypernyms, Wikipedia Synonyms, Wikipedia Graph, Distributional; alias corpus = corpus-only mode); empty = the four external ones")
	corpusFallback := flag.Bool("corpus-fallback", false, "degraded-fallback: when every external resource fails a lookup, fall back to a corpus-only distributional model instead of running context-free")
	hierarchyBuilder := flag.String("hierarchy", "", "hierarchy builder registry name (subsumption, evidence, treemin, agglomerative; \"\" = subsumption); live mode rebuilds every epoch with it")
	live := flag.Bool("live", false, "enable streaming ingestion (POST /api/v1/ingest) with incremental rebuilds")
	storeDir := flag.String("store", "", "segment store directory for durable intake (live mode; empty = in-memory only)")
	epochDocs := flag.Int("epoch-docs", 200, "rebuild the hierarchy after this many new documents (live mode)")
	maxStaleness := flag.Duration("max-staleness", 30*time.Second, "also rebuild when intake has waited this long (live mode; 0 disables)")
	queueSize := flag.Int("queue", 1024, "bounded intake queue capacity (live mode)")
	cacheSize := flag.Int("cache", 4096, "resource LRU cache entries (live mode)")
	pprofOn := flag.Bool("pprof", false, "mount the runtime profiler under /debug/pprof/")
	accessLog := flag.Bool("access-log", false, "write one JSON access-log line per request to stderr")
	snapPath := flag.String("snapshot", "", "serving-state snapshot file: batch mode warm-starts from it when present (skipping the pipeline) and writes it after a cold build; live mode rewrites it after every published epoch")
	role := flag.String("role", "", "cluster role: empty (single node), shard, coordinator, leader, or replica")
	peersRaw := flag.String("peers", "", "coordinator: shard peers as name=url,name=url; replica: the leader's base URL")
	shardName := flag.String("shard-name", "", "this shard's ring name (role=shard)")
	clusterShards := flag.String("cluster-shards", "", "comma-separated ring membership, identical on every shard (role=shard)")
	shardTimeout := flag.Duration("shard-timeout", 2*time.Second, "coordinator: per-shard fan-out deadline (hedged retry fires at a quarter of it)")
	pollInterval := flag.Duration("poll-interval", 2*time.Second, "replica: snapshot poll cadence")
	maxLag := flag.Uint64("max-lag", 1, "replica: replication lag in epochs beyond which readyz fails")
	overloadOn := flag.Bool("overload", true, "adaptive admission control: per-class concurrency limits (AIMD on observed latency) shedding excess load as 429/503 + Retry-After")
	overloadLimit := flag.Int("overload-limit", 0, "initial concurrency limit per admission class (0 = per-class defaults: read 64, expensive 8, write 16)")
	overloadQueue := flag.Int("overload-queue", 0, "bounded admission wait-queue length per class (0 = per-class defaults; queued requests shed when their deadline budget fires)")
	hard := hardening{}
	flag.DurationVar(&hard.readHeaderTimeout, "read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (closes slowloris connections)")
	flag.DurationVar(&hard.readTimeout, "read-timeout", 30*time.Second, "http.Server ReadTimeout (full request including body)")
	flag.DurationVar(&hard.writeTimeout, "write-timeout", 60*time.Second, "http.Server WriteTimeout (full response)")
	flag.DurationVar(&hard.idleTimeout, "idle-timeout", 120*time.Second, "http.Server IdleTimeout (keep-alive connections)")
	flag.IntVar(&hard.maxHeaderBytes, "max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
	flag.Parse()

	// One registry spans every layer: HTTP routes, the ingester, and the
	// segment store all surface through GET /api/v1/metrics.
	metrics := obsv.NewRegistry()
	serveOpts := []serve.Option{serve.WithMetrics(metrics)}
	if *accessLog {
		serveOpts = append(serveOpts, serve.WithAccessLog(os.Stderr))
	}

	// Admission control: one governor per process, shared by every route
	// class. -overload-limit / -overload-queue override the starting point
	// uniformly; the AIMD loop re-learns the real capacity either way.
	var gov *overload.Governor
	if *overloadOn {
		gcfg := overload.GovernorConfig{Metrics: metrics}
		if *overloadLimit > 0 {
			gcfg.Read.InitialLimit = *overloadLimit
			gcfg.Expensive.InitialLimit = *overloadLimit
			gcfg.Write.InitialLimit = *overloadLimit
		}
		if *overloadQueue > 0 {
			gcfg.Read.Queue = *overloadQueue
			gcfg.Expensive.Queue = *overloadQueue
			gcfg.Write.Queue = *overloadQueue
		}
		gov = overload.NewGovernor(gcfg)
		serveOpts = append(serveOpts, serve.WithOverload(gov))
	}

	// Cluster roles that never build a corpus dispatch immediately; shard
	// and leader fall through to the normal build paths and adjust what
	// gets served at the end.
	cl := &clusterOpts{role: *role, name: *shardName, shards: *clusterShards,
		profile: *profile, seed: *seed, metrics: metrics}
	switch *role {
	case "", "shard", "leader":
	case "coordinator":
		runCoordinator(*addr, *peersRaw, *shardTimeout, metrics, gov, hard)
		return
	case "replica":
		runReplica(*addr, *peersRaw, *pollInterval, *maxLag, metrics, serveOpts, *pprofOn, hard)
		return
	default:
		log.Fatalf("unknown -role %q (want shard, coordinator, leader, or replica)", *role)
	}
	if *role == "shard" {
		if *live {
			log.Fatal("-role=shard is incompatible with -live: shards slice a frozen epoch; use a leader with replicas for live serving")
		}
		if *shardName == "" || *clusterShards == "" {
			log.Fatal("-role=shard needs -shard-name and -cluster-shards")
		}
	}

	// Batch warm start: a loadable snapshot replaces corpus generation AND
	// the extraction pipeline entirely — rehydrate, serve, and deep-verify
	// the posting lists in the background.
	if !*live && *snapPath != "" {
		if iface, snap, err := snapshot.LoadBrowse(*snapPath, metrics); err == nil {
			title := fmt.Sprintf("%s archive — %d stories, %d facet terms (snapshot)", snap.Meta.Profile, len(snap.Docs), len(snap.Facets))
			log.Printf("warm start: %s (%d docs, %d posting lists, epoch %d); pipeline skipped", *snapPath, len(snap.Docs), len(snap.Postings), snap.Meta.Epoch)
			go validateSnapshot(snap, *snapPath, metrics)
			serveFrozen(iface, title, *addr, serveOpts, *pprofOn, cl, hard)
			return
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Printf("snapshot %s unusable (%v); rebuilding from the pipeline", *snapPath, err)
		}
	}

	env, err := facet.NewSimulatedEnvironment(facet.EnvConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the initial document set: warm-start from the segment
	// store when it already holds documents, generate otherwise.
	var store *textdb.Store
	var initial []facet.Document
	warmStart := false
	if *live && *storeDir != "" {
		if store, err = textdb.OpenStore(*storeDir); err != nil {
			log.Fatal(err)
		}
		store.SetMetrics(metrics)
		if orphans, err := store.OrphanSegments(); err == nil && len(orphans) > 0 {
			log.Printf("note: %d orphan segment(s) in %s from an interrupted append", len(orphans), *storeDir)
		}
		if store.Docs() > 0 {
			corpus, err := store.LoadAll()
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < corpus.Len(); i++ {
				d := corpus.Doc(textdb.DocID(i))
				initial = append(initial, facet.Document{Title: d.Title, Source: d.Source, Date: d.Date, Text: d.Text})
			}
			warmStart = true
			log.Printf("warm-starting from %s: %d documents in %d segments", *storeDir, store.Docs(), store.Segments())
		}
	}
	if !warmStart && *docs > 0 {
		if initial, err = env.GenerateNewsCorpus(*profile, *docs, *seed+1); err != nil {
			log.Fatal(err)
		}
	}

	opts := facet.Options{TopK: *topK, HierarchyBuilder: *hierarchyBuilder, CorpusFallback: *corpusFallback}
	if *resources != "" {
		opts.Resources = strings.Split(*resources, ",")
	}
	sys, err := facet.NewSystem(env, opts)
	if err != nil {
		log.Fatal(err)
	}
	sys.SetMetrics(metrics) // pipeline stage timings land in /api/v1/metrics
	for _, d := range initial {
		sys.Add(d)
	}

	if !*live {
		serveBatch(sys, *addr, *profile, *seed, *snapPath, metrics, serveOpts, *pprofOn, cl, hard)
		return
	}

	ing, err := ingest.New(ingest.Config{
		Extractors:       sys.CoreExtractors(),
		Resources:        sys.CoreResources(),
		Fallback:         sys.CoreFallback(),
		TopK:             *topK,
		HierarchyBuilder: *hierarchyBuilder,
		QueueSize:        *queueSize,
		EpochDocs:        *epochDocs,
		MaxStaleness:     *maxStaleness,
		CacheSize:        *cacheSize,
		Store:            store,
		Logf:             log.Printf,
		Metrics:          metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	bootstrap := make([]*textdb.Document, len(initial))
	for i, d := range initial {
		bootstrap[i] = &textdb.Document{Title: d.Title, Source: d.Source, Date: d.Date, Text: d.Text}
	}
	log.Printf("bootstrapping live pipeline over %d documents...", len(bootstrap))
	if err := ing.Bootstrap(bootstrap, !warmStart); err != nil {
		log.Fatal(err)
	}

	title := fmt.Sprintf("%s live archive — streaming ingestion enabled", *profile)
	srv := serve.New(ing.Current(), title, serveOpts...)
	srv.EnableIngest(ing)
	if *pprofOn {
		srv.EnablePprof()
	}
	var ship *cluster.Shipper
	if *role == "leader" {
		// A live leader ships every published epoch to pulling replicas;
		// the endpoint must be mounted before traffic starts.
		ship = cluster.NewShipper(*profile, *seed, metrics)
		ship.Register(srv)
		if err := ship.Publish(ing.Current()); err != nil {
			log.Fatal(err)
		}
		log.Printf("leader: shipping epochs at /api/v1/cluster/snapshot")
	}
	publish := srv.Publish
	if *snapPath != "" {
		// Persist the serving state after every swap: the save is atomic
		// (temp + rename), so a reader never observes a torn snapshot, and
		// a crashed server's last published epoch survives for a batch-mode
		// warm start. Epoch zero (the bootstrap build) is saved here too.
		saveEpoch := func(iface *browse.Interface) {
			snap := snapshot.Capture(iface, snapshot.Meta{
				Epoch: iface.Epoch(), Profile: *profile, Seed: *seed,
				CreatedUnixNano: time.Now().UnixNano(),
			}, nil)
			if err := snapshot.Save(*snapPath, snap, metrics); err != nil {
				log.Printf("snapshot save (epoch %d): %v", iface.Epoch(), err)
			}
		}
		saveEpoch(ing.Current())
		publish = func(iface *browse.Interface) {
			srv.Publish(iface)
			saveEpoch(iface)
		}
	}
	if ship != nil {
		inner := publish
		publish = func(iface *browse.Interface) {
			inner(iface)
			if err := ship.Publish(iface); err != nil {
				log.Printf("snapshot ship (epoch %d): %v", iface.Epoch(), err)
			}
		}
	}
	ing.SetOnPublish(publish) // every epoch swaps the served interface
	ing.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := hard.server(srv)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// ctx cancels the instant the signal lands, so main must wait on this
	// channel — not ctx — or it exits while Close is still persisting the
	// final epoch.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("shutting down: draining intake and finishing the epoch...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		if err := ing.Close(shutdownCtx); err != nil {
			log.Printf("ingest close: %v", err)
		}
	}()
	st := ing.Stats()
	log.Printf("serving %s (%d docs, %d facet terms)", title, st.DocsPublished, st.FacetTerms)
	log.Printf("listening on http://%s", ln.Addr())
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
	log.Printf("shutdown complete: %d documents ingested, %d persisted", ing.Stats().DocsIngested, ing.Stats().PersistedDocs)
}

// clusterOpts carries the -role flags into the serving tail: shards and
// leaders build the full corpus like any batch node, then change what is
// actually served.
type clusterOpts struct {
	role    string // "", "shard", or "leader" by the time it reaches serveFrozen
	name    string // -shard-name
	shards  string // -cluster-shards
	profile string
	seed    uint64
	metrics *obsv.Registry
}

// serveForever listens explicitly and logs the bound address before
// serving — with -addr :0 (tests, multi-process smoke runs) the log line
// is how callers learn the real port.
func serveForever(addr string, h http.Handler, hard hardening) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s", ln.Addr())
	log.Fatal(hard.server(h).Serve(ln))
}

// runCoordinator serves the scatter-gather front end: no corpus, no
// pipeline, just fan-out over the shard peers.
func runCoordinator(addr, peersRaw string, timeout time.Duration, metrics *obsv.Registry, gov *overload.Governor, hard hardening) {
	peers, err := cluster.ParsePeers(peersRaw)
	if err != nil {
		log.Fatalf("%v (coordinator needs -peers=name=url,name=url)", err)
	}
	coord, err := cluster.NewCoordinator(peers, cluster.Config{Timeout: timeout, Metrics: metrics, Governor: gov})
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(peers))
	for i, p := range peers {
		names[i] = p.Name
	}
	log.Printf("coordinator over %d shards: %s", len(peers), strings.Join(names, ", "))
	serveForever(addr, coord, hard)
}

// runReplica pulls the leader's snapshots: block until the first epoch
// is applied, then serve it and keep polling in the background. The
// replica holds no durable state — a restart just re-syncs.
func runReplica(addr, leaderURL string, interval time.Duration, maxLag uint64, metrics *obsv.Registry, opts []serve.Option, pprofOn bool, hard hardening) {
	if leaderURL == "" {
		log.Fatal("-role=replica needs -peers=<leader base URL>")
	}
	leaderURL = strings.TrimRight(leaderURL, "/")
	// The publish hook builds the server on the first applied snapshot
	// (serve.New needs an interface) and swaps atomically afterwards. The
	// first call happens below in WaitSynced, before any request traffic.
	var srv *serve.Server
	var rep *cluster.Replica
	var err error
	rep, err = cluster.NewReplica(cluster.ReplicaConfig{
		LeaderURL:    leaderURL,
		MaxLagEpochs: maxLag,
		Metrics:      metrics,
		Logf:         log.Printf,
	}, func(iface *browse.Interface) {
		if srv == nil {
			srv = serve.New(iface, "replica of "+leaderURL, opts...)
			srv.AddReadiness("replication", rep.Ready)
			if pprofOn {
				srv.EnablePprof()
			}
			return
		}
		srv.Publish(iface)
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("replica: syncing from %s...", leaderURL)
	if err := rep.WaitSynced(context.Background(), interval, 2*time.Minute); err != nil {
		log.Fatal(err)
	}
	epoch, _ := rep.AppliedEpoch()
	log.Printf("replica: serving epoch %d, polling every %v", epoch, interval)
	go rep.Run(context.Background(), interval)
	serveForever(addr, srv, hard)
}

// serveBatch is the frozen-corpus mode: run the pipeline once, optionally
// persist the result as a snapshot, and serve.
func serveBatch(sys *facet.System, addr, profile string, seed uint64, snapPath string, metrics *obsv.Registry, opts []serve.Option, pprofOn bool, cl *clusterOpts, hard hardening) {
	log.Printf("extracting facets from %d documents...", sys.Len())
	res, err := sys.ExtractFacets()
	if err != nil {
		log.Fatal(err)
	}
	h, err := res.BuildHierarchy()
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range res.StageReport() {
		log.Printf("stage %-20s %3d call(s)  %v", st.Stage, st.Calls, st.Total.Round(time.Millisecond))
	}
	iface, err := browseInterface(res, h)
	if err != nil {
		log.Fatal(err)
	}
	iface.SetMetrics(metrics)
	if snapPath != "" {
		stats := make([]snapshot.FacetStat, len(res.Facets))
		for i, f := range res.Facets {
			stats[i] = snapshot.FacetStat{Term: f.Term, DF: f.DF, DFC: f.DFC, ShiftF: f.ShiftF, ShiftR: f.ShiftR, Score: f.Score}
		}
		snap := snapshot.Capture(iface, snapshot.Meta{
			Profile: profile, Seed: seed, CreatedUnixNano: time.Now().UnixNano(),
		}, stats)
		if err := snapshot.Save(snapPath, snap, metrics); err != nil {
			log.Printf("snapshot save: %v", err)
		} else {
			log.Printf("snapshot saved to %s (next start warm-starts from it)", snapPath)
		}
	}
	title := fmt.Sprintf("%s archive — %d stories, %d facet terms", profile, sys.Len(), len(res.Facets))
	serveFrozen(iface, title, addr, opts, pprofOn, cl, hard)
}

// serveFrozen serves an already-built interface forever (shared by the
// cold batch path and the snapshot warm start). The cluster role decides
// what exactly goes on the wire: a shard serves its ring partition plus
// the scatter endpoints, a leader serves everything plus the snapshot
// shipping endpoint, a plain node just serves.
func serveFrozen(iface *browse.Interface, title, addr string, opts []serve.Option, pprofOn bool, cl *clusterOpts, hard hardening) {
	srv := serve.New(iface, title, opts...)
	switch cl.role {
	case "shard":
		names := strings.Split(cl.shards, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		ring, err := cluster.NewRing(names, 0)
		if err != nil {
			log.Fatal(err)
		}
		sh, err := cluster.BuildShard(iface, ring, cl.name)
		if err != nil {
			log.Fatal(err)
		}
		srv = serve.New(sh.Interface(), fmt.Sprintf("%s — shard %s", title, cl.name), opts...)
		sh.Register(srv)
		log.Printf("shard %s: serving %d of %d documents (ring of %d)",
			cl.name, sh.Len(), iface.Corpus().Len(), len(names))
	case "leader":
		ship := cluster.NewShipper(cl.profile, cl.seed, cl.metrics)
		ship.Register(srv)
		if err := ship.Publish(iface); err != nil {
			log.Fatal(err)
		}
		log.Printf("leader: shipping epoch %d at /api/v1/cluster/snapshot", iface.Epoch())
	}
	if pprofOn {
		srv.EnablePprof()
	}
	log.Printf("serving %s", title)
	serveForever(addr, srv, hard)
}

// validateSnapshot is the warm start's background deep check: recompute
// every posting list from the snapshot's own annotations and compare.
// The outcome lands in the metrics registry (snapshot.validate_ok /
// snapshot.validate_failures) so operators can alert on it.
func validateSnapshot(snap *snapshot.Snapshot, path string, metrics *obsv.Registry) {
	if err := snap.Verify(); err != nil {
		metrics.Counter("snapshot.validate_failures").Inc()
		log.Printf("snapshot %s FAILED background validation: %v (serving continues on the loaded state; rebuild without -snapshot to recover)", path, err)
		return
	}
	metrics.Counter("snapshot.validate_ok").Inc()
	log.Printf("snapshot %s passed background validation", path)
}

// browseInterface reaches beneath the facade for the internal browse
// engine the HTTP server needs.
func browseInterface(res *facet.Result, h *facet.Hierarchy) (*browse.Interface, error) {
	return res.BrowseEngine(h)
}
