package wordnet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Synset is one parsed synset from data.noun.
type Synset struct {
	Offset     int64    // byte offset in data.noun (the synset's identity)
	LexFilenum int      // lexicographer file number
	Words      []string // member lemmas, underscores resolved to spaces
	Hypernyms  []int64  // offsets of hypernym synsets (@ pointers)
	Hyponyms   []int64  // offsets of hyponym synsets (~ pointers)
	Gloss      string
}

// DB is a parsed WordNet noun database.
type DB struct {
	synsets map[int64]*Synset
	index   map[string][]int64 // lemma (space form) → sense offsets
}

// ParseError reports a malformed line with its position.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("wordnet: %s:%d: %s", e.File, e.Line, e.Msg)
}

// Parse reads index.noun and data.noun and returns the in-memory database.
// It validates that every index entry points at a parsed synset and that
// every hypernym/hyponym pointer resolves.
func Parse(indexNoun, dataNoun io.Reader) (*DB, error) {
	db := &DB{
		synsets: map[int64]*Synset{},
		index:   map[string][]int64{},
	}
	if err := db.parseData(dataNoun); err != nil {
		return nil, err
	}
	if err := db.parseIndex(indexNoun); err != nil {
		return nil, err
	}
	// Referential integrity.
	for _, ss := range db.synsets {
		for _, h := range ss.Hypernyms {
			if _, ok := db.synsets[h]; !ok {
				return nil, fmt.Errorf("wordnet: synset %08d has dangling hypernym %08d", ss.Offset, h)
			}
		}
		for _, h := range ss.Hyponyms {
			if _, ok := db.synsets[h]; !ok {
				return nil, fmt.Errorf("wordnet: synset %08d has dangling hyponym %08d", ss.Offset, h)
			}
		}
	}
	for lemma, offs := range db.index {
		for _, off := range offs {
			if _, ok := db.synsets[off]; !ok {
				return nil, fmt.Errorf("wordnet: index entry %q points at missing synset %08d", lemma, off)
			}
		}
	}
	return db, nil
}

// isHeaderLine reports whether a line belongs to the license block (the
// real files mark those lines with two leading spaces).
func isHeaderLine(line string) bool {
	return strings.HasPrefix(line, "  ")
}

func (db *DB) parseData(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || isHeaderLine(line) {
			continue
		}
		ss, err := parseDataLine(line)
		if err != nil {
			return &ParseError{File: "data.noun", Line: lineNo, Msg: err.Error()}
		}
		if _, dup := db.synsets[ss.Offset]; dup {
			return &ParseError{File: "data.noun", Line: lineNo, Msg: fmt.Sprintf("duplicate synset offset %08d", ss.Offset)}
		}
		db.synsets[ss.Offset] = ss
	}
	return sc.Err()
}

// parseDataLine parses one data.noun synset line.
func parseDataLine(line string) (*Synset, error) {
	gloss := ""
	if i := strings.Index(line, " | "); i >= 0 {
		gloss = line[i+3:]
		line = line[:i]
	}
	fields := strings.Fields(line)
	// synset_offset lex_filenum ss_type w_cnt word lex_id ... p_cnt ptrs...
	if len(fields) < 6 {
		return nil, fmt.Errorf("too few fields (%d)", len(fields))
	}
	off, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil || len(fields[0]) != 8 {
		return nil, fmt.Errorf("bad synset_offset %q", fields[0])
	}
	lexFile, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("bad lex_filenum %q", fields[1])
	}
	ssType := fields[2]
	if ssType != "n" {
		return nil, fmt.Errorf("unsupported ss_type %q (noun files only)", ssType)
	}
	wcnt, err := strconv.ParseInt(fields[3], 16, 32)
	if err != nil || wcnt < 1 {
		return nil, fmt.Errorf("bad w_cnt %q", fields[3])
	}
	pos := 4
	ss := &Synset{Offset: off, LexFilenum: lexFile, Gloss: gloss}
	for i := int64(0); i < wcnt; i++ {
		if pos+1 >= len(fields) {
			return nil, fmt.Errorf("truncated word list")
		}
		word := fields[pos]
		// lex_id is a hex digit; validate but discard.
		if _, err := strconv.ParseInt(fields[pos+1], 16, 32); err != nil {
			return nil, fmt.Errorf("bad lex_id %q for word %q", fields[pos+1], word)
		}
		ss.Words = append(ss.Words, deunderscore(word))
		pos += 2
	}
	if pos >= len(fields) {
		return nil, fmt.Errorf("missing p_cnt")
	}
	pcnt, err := strconv.Atoi(fields[pos])
	if err != nil || len(fields[pos]) != 3 {
		return nil, fmt.Errorf("bad p_cnt %q", fields[pos])
	}
	pos++
	for i := 0; i < pcnt; i++ {
		if pos+3 > len(fields) {
			return nil, fmt.Errorf("truncated pointer %d/%d", i+1, pcnt)
		}
		symbol := fields[pos]
		target, err := strconv.ParseInt(fields[pos+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad pointer offset %q", fields[pos+1])
		}
		ptrPOS := fields[pos+2]
		if ptrPOS != "n" && ptrPOS != "v" && ptrPOS != "a" && ptrPOS != "r" {
			return nil, fmt.Errorf("bad pointer pos %q", ptrPOS)
		}
		if len(fields)-pos < 4 {
			return nil, fmt.Errorf("missing source/target for pointer %d", i+1)
		}
		if _, err := strconv.ParseInt(fields[pos+3], 16, 32); err != nil || len(fields[pos+3]) != 4 {
			return nil, fmt.Errorf("bad source/target %q", fields[pos+3])
		}
		switch symbol {
		case PtrHypernym:
			ss.Hypernyms = append(ss.Hypernyms, target)
		case PtrHyponym:
			ss.Hyponyms = append(ss.Hyponyms, target)
		default:
			// Other relation types (meronyms, antonyms, ...) are accepted
			// and ignored; the resource only uses the hierarchy.
		}
		pos += 4
	}
	if pos != len(fields) {
		return nil, fmt.Errorf("%d trailing fields", len(fields)-pos)
	}
	return ss, nil
}

func (db *DB) parseIndex(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || isHeaderLine(line) {
			continue
		}
		fields := strings.Fields(line)
		// lemma pos synset_cnt p_cnt [syms...] sense_cnt tagsense_cnt offs...
		if len(fields) < 6 {
			return &ParseError{File: "index.noun", Line: lineNo, Msg: "too few fields"}
		}
		lemma := deunderscore(fields[0])
		if fields[1] != "n" {
			return &ParseError{File: "index.noun", Line: lineNo, Msg: fmt.Sprintf("unsupported pos %q", fields[1])}
		}
		synsetCnt, err := strconv.Atoi(fields[2])
		if err != nil || synsetCnt < 1 {
			return &ParseError{File: "index.noun", Line: lineNo, Msg: fmt.Sprintf("bad synset_cnt %q", fields[2])}
		}
		pcnt, err := strconv.Atoi(fields[3])
		if err != nil || pcnt < 0 {
			return &ParseError{File: "index.noun", Line: lineNo, Msg: fmt.Sprintf("bad p_cnt %q", fields[3])}
		}
		pos := 4 + pcnt // skip the ptr_symbol list
		if pos+2+synsetCnt > len(fields) {
			return &ParseError{File: "index.noun", Line: lineNo, Msg: "truncated entry"}
		}
		// sense_cnt and tagsense_cnt validated as integers.
		if _, err := strconv.Atoi(fields[pos]); err != nil {
			return &ParseError{File: "index.noun", Line: lineNo, Msg: fmt.Sprintf("bad sense_cnt %q", fields[pos])}
		}
		if _, err := strconv.Atoi(fields[pos+1]); err != nil {
			return &ParseError{File: "index.noun", Line: lineNo, Msg: fmt.Sprintf("bad tagsense_cnt %q", fields[pos+1])}
		}
		pos += 2
		var offs []int64
		for i := 0; i < synsetCnt; i++ {
			off, err := strconv.ParseInt(fields[pos+i], 10, 64)
			if err != nil {
				return &ParseError{File: "index.noun", Line: lineNo, Msg: fmt.Sprintf("bad offset %q", fields[pos+i])}
			}
			offs = append(offs, off)
		}
		if _, dup := db.index[lemma]; dup {
			return &ParseError{File: "index.noun", Line: lineNo, Msg: fmt.Sprintf("duplicate lemma %q", lemma)}
		}
		db.index[lemma] = offs
	}
	return sc.Err()
}
