package eval

import (
	"fmt"
	"strings"

	"repro/internal/hierarchy"
)

// HierarchyComparison tests the paper's closing conjecture about
// hierarchy construction ("newer algorithms [5] may give even better
// results", citing Snow et al.): the same extracted facet terms are
// organized by three builders and judged by the same qualified-annotator
// pool.
//
//   - subsumption: the paper's choice (Sanderson & Croft).
//   - evidence: subsumption combined with WordNet-hypernym and
//     Wikipedia-link evidence (Snow-style).
//   - tree-min: the Stoica–Hearst prior-work baseline (WordNet paths
//     only — no co-occurrence signal).
type HierarchyComparison struct {
	Methods []HierarchyMethodResult
}

// HierarchyMethodResult is one builder's outcome.
type HierarchyMethodResult struct {
	Name      string
	Terms     int // terms placed in the hierarchy
	Roots     int // top-level facets
	MaxDepth  int
	Precision float64 // judged by the annotator pool
}

// EvidenceSources builds the lab's taxonomy evidence sources for the
// evidence-combination builder: WordNet-hypernym and Wikipedia-link
// membership tests over the lab's substrates. Weight them 0.5 each with
// threshold 0.6 for the configuration the comparison experiments use.
func (l *Lab) EvidenceSources() []hierarchy.TaxonomicEvidence {
	wn := l.WordNet
	wnEvidence := hierarchy.EvidenceFunc{
		EvidenceName: "wordnet-hypernym",
		Fn: func(parent, child string) float64 {
			lemma, ok := wn.Morphy(child)
			if !ok {
				return 0
			}
			for _, h := range wn.Hypernyms(lemma, 6) {
				if h == parent {
					return 1
				}
			}
			return 0
		},
	}
	w := l.Wiki
	wikiEvidence := hierarchy.EvidenceFunc{
		EvidenceName: "wikipedia-link",
		Fn: func(parent, child string) float64 {
			cp, ok := w.Resolve(child)
			if !ok {
				return 0
			}
			pp, ok := w.Resolve(parent)
			if !ok {
				return 0
			}
			for _, l := range cp.Links {
				if l.Target == pp.ID {
					return 1
				}
			}
			return 0
		},
	}
	return []hierarchy.TaxonomicEvidence{wnEvidence, wikiEvidence}
}

// HypernymChains builds the lab's chain provider for the
// tree-minimization builder: WordNet hypernym chains up to depth 8.
func (l *Lab) HypernymChains() hierarchy.ChainProvider {
	wn := l.WordNet
	return hierarchy.ChainFunc(func(term string) []string {
		lemma, ok := wn.Morphy(term)
		if !ok {
			return nil
		}
		return wn.Hypernyms(lemma, 8)
	})
}

// CompareHierarchies runs the comparison on the All×All cell.
func CompareHierarchies(dr *DataRun, topK int) (*HierarchyComparison, error) {
	if topK == 0 {
		topK = 100
	}
	result := dr.RunCell(ExtAll, ResAll, topK)
	terms := result.FacetTermStrings()
	docTerms := ExpandedDocTerms(dr, result, terms)

	subsumption, err := hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{})
	if err != nil {
		return nil, err
	}
	evidence, err := hierarchy.BuildWithEvidence(terms, docTerms, hierarchy.EvidenceConfig{
		Sources:   dr.Lab.EvidenceSources(),
		Weights:   []float64{0.5, 0.5},
		Threshold: 0.6,
	})
	if err != nil {
		return nil, err
	}
	treeMin := hierarchy.BuildTreeMinimization(terms, dr.Lab.HypernymChains())

	cmp := &HierarchyComparison{}
	for _, m := range []struct {
		name   string
		forest *hierarchy.Forest
	}{
		{"subsumption (paper)", subsumption},
		{"evidence combination (Snow-style)", evidence},
		{"tree minimization (Stoica-Hearst)", treeMin},
	} {
		_, precision := dr.Pool.JudgePrecision(m.forest)
		depth := 0
		m.forest.Walk(func(_ *hierarchy.Node, d int) {
			if d > depth {
				depth = d
			}
		})
		cmp.Methods = append(cmp.Methods, HierarchyMethodResult{
			Name:      m.name,
			Terms:     m.forest.Size(),
			Roots:     len(m.forest.Roots),
			MaxDepth:  depth,
			Precision: precision,
		})
	}
	return cmp, nil
}

// Format renders the comparison.
func (c *HierarchyComparison) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %8s %8s %10s %10s\n", "Method", "Terms", "Roots", "MaxDepth", "Precision")
	sb.WriteString(strings.Repeat("-", 76) + "\n")
	for _, m := range c.Methods {
		fmt.Fprintf(&sb, "%-36s %8d %8d %10d %10.3f\n", m.Name, m.Terms, m.Roots, m.MaxDepth, m.Precision)
	}
	return sb.String()
}
