package textdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/obsv"
)

// Store is a disk-backed document store: documents are written in
// immutable, append-only segment files registered in a manifest. This is
// the persistence layer a deployed archive uses (the paper's NYT archive
// holds decades of stories); segments make ingestion crash-safe — a
// segment becomes visible only after it is fully written, synced, and the
// manifest update is atomically renamed into place.
//
// Segment file format (all integers unsigned varints):
//
//	magic "FDBSEG1\n"
//	repeated records:
//	  recordLen  — length of the payload that follows
//	  crc32      — IEEE CRC of the payload (4 bytes, big endian)
//	  payload:
//	    titleLen title sourceLen source unixDate textLen text
//
// The manifest ("MANIFEST") lists one "name docCount" line per segment in
// ingestion order, preceded by the header line "FDBMANIFEST1".
type Store struct {
	dir      string
	segments []segmentInfo
	metrics  *obsv.Registry
}

// SetMetrics starts recording segment flush and compaction timing into
// reg as textdb.segment_append / textdb.segment_compact histograms plus
// a textdb.appended_docs counter. Call before serving traffic.
func (s *Store) SetMetrics(reg *obsv.Registry) { s.metrics = reg }

type segmentInfo struct {
	name string
	docs int
}

const (
	segMagic       = "FDBSEG1\n"
	manifestHeader = "FDBMANIFEST1"
	manifestName   = "MANIFEST"
)

// OpenStore opens (or initializes) a store in dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("textdb: open store: %w", err)
	}
	s := &Store{dir: dir}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("textdb: read manifest: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] != manifestHeader {
		return nil, fmt.Errorf("textdb: bad manifest header")
	}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		var name string
		var docs int
		if _, err := fmt.Sscanf(line, "%s %d", &name, &docs); err != nil {
			return nil, fmt.Errorf("textdb: bad manifest line %q", line)
		}
		s.segments = append(s.segments, segmentInfo{name, docs})
	}
	return s, nil
}

// Segments returns the number of registered segments.
func (s *Store) Segments() int { return len(s.segments) }

// Docs returns the total number of persisted documents.
func (s *Store) Docs() int {
	n := 0
	for _, seg := range s.segments {
		n += seg.docs
	}
	return n
}

// Append durably writes the documents as one new segment and registers
// it. Documents become visible to LoadAll only after Append returns.
func (s *Store) Append(docs []*Document) error {
	if len(docs) == 0 {
		return fmt.Errorf("textdb: empty segment append")
	}
	if s.metrics != nil {
		defer func(start time.Time) {
			s.metrics.Histogram("textdb.segment_append").Observe(time.Since(start))
			s.metrics.Counter("textdb.appended_docs").Add(int64(len(docs)))
		}(time.Now())
	}
	name := fmt.Sprintf("segment-%06d.seg", len(s.segments))
	tmp := filepath.Join(s.dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("textdb: create segment: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	for _, d := range docs {
		if err := writeRecord(w, d); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("textdb: publish segment: %w", err)
	}
	s.segments = append(s.segments, segmentInfo{name, len(docs)})
	return s.writeManifest()
}

func (s *Store) writeManifest() error {
	var sb strings.Builder
	sb.WriteString(manifestHeader + "\n")
	for _, seg := range s.segments {
		fmt.Fprintf(&sb, "%s %d\n", seg.name, seg.docs)
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("textdb: write manifest: %w", err)
	}
	return os.Rename(tmp, filepath.Join(s.dir, manifestName))
}

func writeRecord(w *bufio.Writer, d *Document) error {
	payload := encodeDoc(d)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crcBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func encodeDoc(d *Document) []byte {
	var buf []byte
	appendString := func(s string) {
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(s)))
		buf = append(buf, lenBuf[:n]...)
		buf = append(buf, s...)
	}
	appendString(d.Title)
	appendString(d.Source)
	var dateBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(dateBuf[:], uint64(d.Date.Unix()))
	buf = append(buf, dateBuf[:n]...)
	appendString(d.Text)
	return buf
}

func decodeDoc(payload []byte) (*Document, error) {
	pos := 0
	readString := func() (string, error) {
		l, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return "", fmt.Errorf("bad varint")
		}
		pos += n
		if pos+int(l) > len(payload) {
			return "", fmt.Errorf("string overruns payload")
		}
		out := string(payload[pos : pos+int(l)])
		pos += int(l)
		return out, nil
	}
	d := &Document{}
	var err error
	if d.Title, err = readString(); err != nil {
		return nil, err
	}
	if d.Source, err = readString(); err != nil {
		return nil, err
	}
	unix, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("bad date varint")
	}
	pos += n
	d.Date = time.Unix(int64(unix), 0).UTC()
	if d.Text, err = readString(); err != nil {
		return nil, err
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%d trailing bytes", len(payload)-pos)
	}
	return d, nil
}

// LoadAll reads every registered segment, in order, into a fresh corpus.
// Unregistered segment files (from a crashed Append) are ignored; corrupt
// records fail loudly with the segment name and record index.
func (s *Store) LoadAll() (*Corpus, error) {
	c := NewCorpus()
	for _, seg := range s.segments {
		if err := s.loadSegment(seg, c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (s *Store) loadSegment(seg segmentInfo, c *Corpus) error {
	f, err := os.Open(filepath.Join(s.dir, seg.name))
	if err != nil {
		return fmt.Errorf("textdb: open %s: %w", seg.name, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segMagic {
		return fmt.Errorf("textdb: %s: bad magic", seg.name)
	}
	for rec := 0; rec < seg.docs; rec++ {
		l, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("textdb: %s record %d: %w", seg.name, rec, err)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return fmt.Errorf("textdb: %s record %d: %w", seg.name, rec, err)
		}
		payload := make([]byte, l)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("textdb: %s record %d: %w", seg.name, rec, err)
		}
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(crcBuf[:]) {
			return fmt.Errorf("textdb: %s record %d: checksum mismatch", seg.name, rec)
		}
		doc, err := decodeDoc(payload)
		if err != nil {
			return fmt.Errorf("textdb: %s record %d: %w", seg.name, rec, err)
		}
		c.Add(doc)
	}
	return nil
}

// SegmentFiles returns the registered segment file names in order; used
// by tooling and tests.
func (s *Store) SegmentFiles() []string {
	out := make([]string, len(s.segments))
	for i, seg := range s.segments {
		out[i] = seg.name
	}
	return out
}

// Compact merges every registered segment into one and removes the old
// files, reclaiming the per-segment overhead of a long ingestion history.
// The store stays consistent at every step: the merged segment is
// published under a fresh name and the manifest swap is atomic; old
// segment files are deleted only afterwards (a crash in between leaves
// harmless orphans).
func (s *Store) Compact() error {
	if len(s.segments) <= 1 {
		return nil
	}
	if s.metrics != nil {
		defer func(start time.Time) {
			s.metrics.Histogram("textdb.segment_compact").Observe(time.Since(start))
		}(time.Now())
	}
	corpus, err := s.LoadAll()
	if err != nil {
		return fmt.Errorf("textdb: compact: %w", err)
	}
	old := s.segments
	// Publish the merged segment under the next free index.
	s.segments = append([]segmentInfo{}, old...)
	if err := s.Append(corpus.Docs()); err != nil {
		s.segments = old
		return fmt.Errorf("textdb: compact: %w", err)
	}
	merged := s.segments[len(s.segments)-1]
	s.segments = []segmentInfo{merged}
	if err := s.writeManifest(); err != nil {
		return fmt.Errorf("textdb: compact: %w", err)
	}
	for _, seg := range old {
		if err := os.Remove(filepath.Join(s.dir, seg.name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("textdb: compact cleanup: %w", err)
		}
	}
	return nil
}

// OrphanSegments lists .seg files on disk that the manifest does not
// register (left by a crash between segment write and manifest update);
// they are safe to delete.
func (s *Store) OrphanSegments() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	registered := map[string]bool{}
	for _, seg := range s.segments {
		registered[seg.name] = true
	}
	var orphans []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".seg") && !registered[name] {
			orphans = append(orphans, name)
		}
	}
	sort.Strings(orphans)
	return orphans, nil
}
