package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/textdb"
)

// fuzzVocab is the closed term universe the fuzzer draws from; 8 terms
// is enough for every shift/gating combination while keeping the mutator
// productive.
var fuzzVocab = [8]string{"paris", "france", "europe", "chirac", "iraq", "war", "sports", "trial"}

// buildFuzzTables decodes fuzz bytes into a document collection — two
// bytes per document: a bitmask of original terms and a bitmask of
// context terms — and accumulates the DF tables exactly the way the
// pipeline does (AddDoc over ExpandDocTerms), so df(t) ≤ |D| and
// dfC ≥ df hold by construction for every input.
func buildFuzzTables(data []byte) (dict *textdb.Dictionary, dfD, dfC *textdb.DFTable, ctxSet map[textdb.TermID]bool, numDocs int) {
	dict = textdb.NewDictionary()
	dfD = textdb.NewDFTable(dict)
	dfC = textdb.NewDFTable(dict)
	ctxSet = map[textdb.TermID]bool{}
	scratch := map[textdb.TermID]bool{}
	const maxDocs = 64
	for d := 0; d+1 < len(data) && numDocs < maxDocs; d += 2 {
		var orig []textdb.TermID
		var ctx []string
		for b := 0; b < 8; b++ {
			if data[d]&(1<<b) != 0 {
				orig = append(orig, dict.Intern(fuzzVocab[b]))
			}
			if data[d+1]&(1<<b) != 0 {
				ctx = append(ctx, fuzzVocab[b])
			}
		}
		dfD.AddDoc(orig)
		dfC.AddDoc(ExpandDocTerms(dict, orig, ctx, scratch, ctxSet))
		numDocs++
	}
	return dict, dfD, dfC, ctxSet, numDocs
}

// FuzzAnalyzeTables drives the Step-3 candidate selection over arbitrary
// collections and checks the paper's invariants on every output row: the
// shift gates really gate (Shift_f > 0, Shift_r > 0), the reported
// shifts are consistent with the reported frequencies, the score is
// finite and non-negative, the ranking is the documented total order,
// Facets is a bounded prefix of Candidates — and the sharded scoring
// path agrees with the sequential one on the same tables.
func FuzzAnalyzeTables(f *testing.F) {
	f.Add([]byte{0x03, 0x07, 0x01, 0x0f, 0x10, 0x30}, 5, uint8(4))
	f.Add([]byte{0xff, 0xff, 0x00, 0xff, 0x55, 0xaa, 0x0f, 0xf0}, 0, uint8(9))
	f.Add([]byte{}, -3, uint8(0))
	f.Add([]byte{0x01, 0x01}, 1, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, topK int, workers uint8) {
		dict, dfD, dfC, ctxSet, numDocs := buildFuzzTables(data)
		res := AnalyzeTables(dict, dfD, dfC, ctxSet, numDocs, topK, AnalyzeOptions{})

		wantTopK := topK
		if wantTopK <= 0 {
			wantTopK = 200
		}
		if len(res.Facets) > wantTopK {
			t.Fatalf("len(Facets) = %d exceeds topK %d", len(res.Facets), wantTopK)
		}
		if len(res.Facets) > len(res.Candidates) {
			t.Fatalf("more facets (%d) than candidates (%d)", len(res.Facets), len(res.Candidates))
		}
		if !reflect.DeepEqual(res.Facets, res.Candidates[:len(res.Facets)]) {
			t.Fatal("Facets is not a prefix of Candidates")
		}
		for i, c := range res.Candidates {
			if c.ShiftF <= 0 {
				t.Fatalf("candidate %q passed with Shift_f = %d", c.Term, c.ShiftF)
			}
			if c.ShiftR <= 0 {
				t.Fatalf("candidate %q passed with Shift_r = %d", c.Term, c.ShiftR)
			}
			if c.ShiftF != c.DFC-c.DF {
				t.Fatalf("candidate %q: ShiftF %d != DFC-DF %d", c.Term, c.ShiftF, c.DFC-c.DF)
			}
			if c.DF < 0 || c.DFC > numDocs {
				t.Fatalf("candidate %q: df %d..%d outside [0,%d]", c.Term, c.DF, c.DFC, numDocs)
			}
			if math.IsNaN(c.Score) || math.IsInf(c.Score, 0) || c.Score < 0 {
				t.Fatalf("candidate %q: score %v not finite non-negative", c.Term, c.Score)
			}
			if i > 0 {
				prev := res.Candidates[i-1]
				if prev.Score < c.Score || (prev.Score == c.Score && prev.Term >= c.Term) {
					t.Fatalf("ranking violates (Score desc, Term asc) at %d: %+v then %+v", i, prev, c)
				}
			}
		}

		// Sharded scoring must reproduce the sequential ranking exactly.
		if w := int(workers%8) + 2; true {
			par := AnalyzeTables(dict, dfD, dfC, ctxSet, numDocs, topK, AnalyzeOptions{Workers: w})
			if !reflect.DeepEqual(res.Candidates, par.Candidates) {
				t.Fatalf("workers=%d candidate ranking diverges from sequential", w)
			}
		}
	})
}

// TestFuzzSeedsAnalyzeTables replays the fuzz seed corpus as a plain
// test so the invariants run on every `go test` even without -fuzz.
func TestFuzzSeedsAnalyzeTables(t *testing.T) {
	seeds := [][]byte{
		{0x03, 0x07, 0x01, 0x0f, 0x10, 0x30},
		{0xff, 0xff, 0x00, 0xff, 0x55, 0xaa, 0x0f, 0xf0},
		{},
		{0x01, 0x01},
	}
	for _, data := range seeds {
		dict, dfD, dfC, ctxSet, numDocs := buildFuzzTables(data)
		res := AnalyzeTables(dict, dfD, dfC, ctxSet, numDocs, 10, AnalyzeOptions{})
		for _, c := range res.Candidates {
			if c.ShiftF <= 0 || c.ShiftR <= 0 {
				t.Fatalf("seed %x: candidate %+v fails shift gates", data, c)
			}
		}
	}
}
