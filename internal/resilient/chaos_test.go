package resilient_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/resilient"
	"repro/internal/textdb"
)

// This file is the chaos differential test the robustness layer is built
// around: a pipeline run under injected transient faults, with retries
// enabled, must produce byte-identical output to the fault-free run — at
// every worker count and every injector seed — and a scripted permanent
// outage of one resource must produce exactly the output of a run
// configured without that resource, with the outage reported in
// Result.Degradations.

// chaosCorpus builds a small deterministic corpus with enough vocabulary
// overlap for the shift tests to pass on some terms.
func chaosCorpus() *textdb.Corpus {
	topics := []string{"jazz festival", "wine tasting", "film premiere", "science fair"}
	places := []string{"brooklyn", "harlem", "queens", "chelsea", "tribeca"}
	c := textdb.NewCorpus()
	for i := 0; i < 36; i++ {
		topic := topics[i%len(topics)]
		place := places[i%len(places)]
		c.Add(&textdb.Document{
			Title: fmt.Sprintf("%s in %s", topic, place),
			Text: fmt.Sprintf(
				"The %s drew a crowd in %s this weekend. Critics called the %s program number %d remarkable.",
				topic, place, topic, i),
		})
	}
	return c
}

// chaosExtractor deterministically picks the longer terms of a document.
type chaosExtractor struct{}

func (chaosExtractor) Name() string { return "chaos-extractor" }

func (chaosExtractor) Extract(text string) []string {
	var out []string
	for _, t := range textdb.ExtractTerms(text) {
		if len(t) >= 5 {
			out = append(out, t)
		}
		if len(out) == 8 {
			break
		}
	}
	return out
}

// chaosResource maps a term to deterministic context terms; the prefix
// makes svc-a and svc-b contribute distinguishable vocabulary.
type chaosResource struct{ name string }

func (r chaosResource) Name() string { return r.name }

func (r chaosResource) Context(term string) []string {
	return []string{
		fmt.Sprintf("%s cat %c", r.name, term[0]),
		fmt.Sprintf("%s len %d", r.name, len(term)%4),
	}
}

// run executes one pipeline over the chaos corpus.
func run(t *testing.T, workers int, extractor core.Extractor, resources ...core.Resource) *core.Result {
	t.Helper()
	p, err := core.New(core.Config{
		Extractors: []core.Extractor{extractor},
		Resources:  resources,
		TopK:       25,
		Workers:    workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(chaosCorpus())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mustEqual compares the output-bearing fields of two results.
func mustEqual(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Important, want.Important) {
		t.Fatalf("%s: Important differs", label)
	}
	if !reflect.DeepEqual(got.Context, want.Context) {
		t.Fatalf("%s: Context differs", label)
	}
	if !reflect.DeepEqual(got.Candidates, want.Candidates) {
		t.Fatalf("%s: Candidates differ\n got %v\nwant %v", label, got.Candidates, want.Candidates)
	}
	if !reflect.DeepEqual(got.Facets, want.Facets) {
		t.Fatalf("%s: Facets differ", label)
	}
}

func TestChaosDifferential(t *testing.T) {
	baseline := run(t, 1, chaosExtractor{}, chaosResource{"svc-a"}, chaosResource{"svc-b"})
	if len(baseline.Candidates) == 0 {
		t.Fatal("baseline produced no candidates; corpus too bland for a meaningful differential")
	}

	// Transient faults + retries must be invisible in the output: the
	// injector's per-(service, key, attempt) hashing and the cache's
	// single-flight retry loop make the fault schedule independent of
	// scheduling, and MaxAttempts 64 at rate 0.35 makes every key's
	// eventual success a statistical certainty (0.35^64).
	for _, seed := range []uint64{1, 2, 3} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("transient/seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				inj := remote.NewInjector(seed, remote.NewClock())
				rate := 0.35
				inj.SetFaults("chaos-extractor", remote.FaultConfig{ErrorRate: rate})
				inj.SetFaults("svc-a", remote.FaultConfig{ErrorRate: rate})
				inj.SetFaults("svc-b", remote.FaultConfig{ErrorRate: rate})
				rcfg := resilient.Config{
					MaxAttempts: 64,
					BaseBackoff: time.Millisecond,
					Seed:        seed,
					Breaker:     resilient.BreakerConfig{Threshold: -1},
				}
				ex := resilient.WrapExtractor(inj.WrapExtractor(chaosExtractor{}), rcfg)
				ra := resilient.Wrap(inj.WrapResource(chaosResource{"svc-a"}), rcfg)
				rb := resilient.Wrap(inj.WrapResource(chaosResource{"svc-b"}), rcfg)

				res := run(t, workers, ex, ra, rb)
				mustEqual(t, "transient", res, baseline)
				if len(res.Degradations) != 0 {
					t.Fatalf("transient faults leaked into Degradations: %+v", res.Degradations)
				}
			})
		}
	}

	// A permanent outage of svc-a must degrade to exactly the run that
	// never had svc-a, and the gap must be reported.
	withoutA := run(t, 1, chaosExtractor{}, chaosResource{"svc-b"})
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("outage/workers=%d", workers), func(t *testing.T) {
			inj := remote.NewInjector(99, remote.NewClock())
			inj.Down("svc-a", -1) // down until Clear — never here
			rcfg := resilient.Config{
				MaxAttempts: 2,
				BaseBackoff: time.Millisecond,
				Breaker:     resilient.BreakerConfig{Threshold: 3, Cooldown: 4, Probes: 2},
			}
			ra := resilient.Wrap(inj.WrapResource(chaosResource{"svc-a"}), rcfg)
			rb := resilient.Wrap(inj.WrapResource(chaosResource{"svc-b"}), rcfg)

			res := run(t, workers, chaosExtractor{}, ra, rb)
			mustEqual(t, "outage", res, withoutA)

			var deg *core.Degradation
			for i := range res.Degradations {
				if res.Degradations[i].Name == "svc-a" {
					deg = &res.Degradations[i]
				} else {
					t.Fatalf("unexpected degradation: %+v", res.Degradations[i])
				}
			}
			if deg == nil {
				t.Fatal("outage not reported in Degradations")
			}
			if deg.Kind != "resource" || deg.Failures == 0 || deg.Docs == 0 || deg.LastErr == "" {
				t.Fatalf("degradation underspecified: %+v", deg)
			}
		})
	}
}
