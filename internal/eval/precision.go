package eval

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/textdb"
)

// PrecisionConfig parameterizes the precision experiments (Tables V–VII).
type PrecisionConfig struct {
	// TopK facet terms per cell go into the judged hierarchy.
	TopK int
}

func (c *PrecisionConfig) defaults() {
	if c.TopK == 0 {
		c.TopK = 100
	}
}

// BuildForest constructs the facet hierarchy for a pipeline result using
// the paper's subsumption algorithm over the contextualized database
// (each document's term set = original terms plus corroborated context
// terms).
func BuildForest(dr *DataRun, result *core.Result, topK int) (*hierarchy.Forest, error) {
	terms := result.FacetTermStrings()
	if topK < len(terms) {
		terms = terms[:topK]
	}
	docTerms := ExpandedDocTerms(dr, result, terms)
	return hierarchy.BuildSubsumption(terms, docTerms, hierarchy.SubsumptionConfig{})
}

// assignmentVotes is the corroboration requirement for context-based
// document-to-facet assignment (see core.ContextVotes).
const assignmentVotes = 2

// ExpandedDocTerms lists, per document, which of the given terms describe
// the document: terms occurring in its text, plus context terms
// corroborated by at least assignmentVotes of the document's important
// terms. This is the co-occurrence basis for subsumption and for the
// faceted-browsing document assignment. result must carry the Important
// and Resources fields of the run that produced it.
func ExpandedDocTerms(dr *DataRun, result *core.Result, terms []string) [][]string {
	termSet := map[string]bool{}
	for _, t := range terms {
		termSet[t] = true
	}
	votes := core.ContextVotes(result.Important, result.Resources, labCache(dr))
	corpus := dr.DS.Corpus
	out := make([][]string, corpus.Len())
	for d := 0; d < corpus.Len(); d++ {
		present := map[string]bool{}
		for _, id := range corpus.DocTerms(textdb.DocID(d)) {
			s := corpus.Dict().String(id)
			if termSet[s] {
				present[s] = true
			}
		}
		need := assignmentVotes
		if len(result.Important[d]) < 2 {
			need = 1
		}
		for c, v := range votes[d] {
			if v >= need && termSet[c] {
				present[c] = true
			}
		}
		for s := range present {
			out[d] = append(out[d], s)
		}
		sort.Strings(out[d])
	}
	return out
}

// PrecisionTable reproduces one of Tables V/VI/VII: for every cell, the
// extracted facet terms are organized into a hierarchy and judged by
// qualified annotators; precision is the fraction judged precise (useful
// term, correctly placed) by at least 4 of 5 judges.
func PrecisionTable(dr *DataRun, cfg PrecisionConfig) (*Table, error) {
	cfg.defaults()
	cols := append(append([]string{}, ExtractorOrder...), ExtAll)
	rows := append(append([]string{}, ResourceOrder...), ResAll)
	t := &Table{
		Title:     fmt.Sprintf("Precision of extracted facets, %s data set", dr.DS.Profile.Name),
		RowHeader: "External Resource",
		ColHeader: "Term Extractors",
		Cols:      cols,
	}
	for _, res := range rows {
		row := TableRow{Name: res}
		for _, ext := range cols {
			result := dr.RunCell(ext, res, cfg.TopK)
			forest, err := BuildForest(dr, result, cfg.TopK)
			if err != nil {
				return nil, err
			}
			_, precision := dr.Pool.JudgePrecision(forest)
			row.Values = append(row.Values, precision)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
