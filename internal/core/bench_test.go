package core

import (
	"fmt"
	"testing"

	"repro/internal/textdb"
)

// benchScoringTables builds prebuilt DF tables with a skewed candidate
// population: every term appears in the original database, a subset
// gains contextual occurrences (the only ones AnalyzeTables scores).
func benchScoringTables(nTerms int) (*textdb.Dictionary, *textdb.DFTable, *textdb.DFTable, map[textdb.TermID]bool) {
	dict := textdb.NewDictionary()
	dfD := textdb.NewDFTable(dict)
	dfC := textdb.NewDFTable(dict)
	ctxSet := map[textdb.TermID]bool{}
	row := make([]textdb.TermID, 1)
	for i := 0; i < nTerms; i++ {
		id := dict.Intern(fmt.Sprintf("term%05d", i))
		row[0] = id
		base := 1 + i%32
		for k := 0; k < base; k++ {
			dfD.AddDoc(row)
			dfC.AddDoc(row)
		}
		if gain := i % 7; gain > 0 {
			for k := 0; k < gain; k++ {
				dfC.AddDoc(row)
			}
			ctxSet[id] = true
		}
	}
	return dict, dfD, dfC, ctxSet
}

// BenchmarkCandidateScoring measures the Step-3 candidate scoring sweep
// (shift tests + log-likelihood ranking) over prebuilt tables — the
// per-epoch hot path of live ingestion, which calls AnalyzeTables on
// every rebuild.
func BenchmarkCandidateScoring(b *testing.B) {
	dict, dfD, dfC, ctxSet := benchScoringTables(2000)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := AnalyzeTables(dict, dfD, dfC, ctxSet, 4096, 100, AnalyzeOptions{Workers: workers})
				if len(res.Facets) == 0 {
					b.Fatal("scoring produced no facets")
				}
			}
		})
	}
}

// TestExpandDocTermsAppendAllocs pins the document-expansion hot path at
// zero steady-state allocations: with a warm buffer and scratch map, and
// context terms already interned, expanding a document must not allocate.
func TestExpandDocTermsAppendAllocs(t *testing.T) {
	dict := textdb.NewDictionary()
	var orig []textdb.TermID
	for i := 0; i < 16; i++ {
		orig = append(orig, dict.Intern(fmt.Sprintf("word%d", i)))
	}
	context := make([]string, 8)
	for i := range context {
		context[i] = fmt.Sprintf("context%d", i)
		dict.Intern(context[i])
	}
	scratch := map[textdb.TermID]bool{}
	ctxSet := map[textdb.TermID]bool{}
	buf := make([]textdb.TermID, 0, len(orig)+len(context))
	buf = ExpandDocTermsAppend(buf[:0], dict, orig, context, scratch, ctxSet) // warm
	if allocs := testing.AllocsPerRun(200, func() {
		buf = ExpandDocTermsAppend(buf[:0], dict, orig, context, scratch, ctxSet)
	}); allocs > 0 {
		t.Errorf("steady-state ExpandDocTermsAppend allocates %v times per run, want 0", allocs)
	}
	if len(buf) != len(orig)+len(context) {
		t.Fatalf("expanded row has %d terms, want %d", len(buf), len(orig)+len(context))
	}
}
