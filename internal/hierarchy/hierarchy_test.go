package hierarchy

import (
	"strings"
	"testing"
	"testing/quick"
)

// docsWith builds docTerms where each entry lists the terms in one doc.
func docsWith(rows ...string) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		if r == "" {
			continue
		}
		out[i] = strings.Split(r, ",")
	}
	return out
}

// Classic subsumption setup: "europe" occurs in every doc that mentions
// "france" or "germany", plus more.
func subsumptionFixture() ([]string, [][]string) {
	terms := []string{"europe", "france", "germany", "sports"}
	docs := docsWith(
		"europe,france",
		"europe,france",
		"europe,france",
		"europe,germany",
		"europe,germany",
		"europe",
		"sports",
		"sports",
		"sports,europe", // keeps P(sports|europe) < 1 and vice versa
	)
	return terms, docs
}

func TestBuildSubsumptionBasic(t *testing.T) {
	terms, docs := subsumptionFixture()
	f, err := BuildSubsumption(terms, docs, SubsumptionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	europe, ok := f.Find("europe")
	if !ok {
		t.Fatal("europe missing")
	}
	if europe.Parent != nil {
		t.Fatalf("europe should be a root, has parent %q", europe.Parent.Term)
	}
	france, _ := f.Find("france")
	if france == nil || france.Parent == nil || france.Parent.Term != "europe" {
		t.Fatalf("france not under europe: %+v", france)
	}
	germany, _ := f.Find("germany")
	if germany.Parent == nil || germany.Parent.Term != "europe" {
		t.Fatal("germany not under europe")
	}
	sports, _ := f.Find("sports")
	if sports.Parent != nil {
		t.Fatalf("sports should be an independent root")
	}
}

func TestSubsumptionThreshold(t *testing.T) {
	terms := []string{"a", "b"}
	// P(a|b) = 2/3 < 0.8: no subsumption at θ=0.8, subsumption at θ=0.5.
	docs := docsWith("a,b", "a,b", "b", "a", "a")
	strict, _ := BuildSubsumption(terms, docs, SubsumptionConfig{Threshold: 0.8})
	b, _ := strict.Find("b")
	if b.Parent != nil {
		t.Fatal("θ=0.8 should not attach b")
	}
	loose, _ := BuildSubsumption(terms, docs, SubsumptionConfig{Threshold: 0.5})
	b2, _ := loose.Find("b")
	if b2.Parent == nil || b2.Parent.Term != "a" {
		t.Fatal("θ=0.5 should attach b under a")
	}
}

func TestSubsumptionDirectionality(t *testing.T) {
	// Perfect co-occurrence in both directions: P(y|x) = 1 blocks both.
	terms := []string{"x", "y"}
	docs := docsWith("x,y", "x,y", "x,y")
	f, _ := BuildSubsumption(terms, docs, SubsumptionConfig{})
	x, _ := f.Find("x")
	y, _ := f.Find("y")
	if x.Parent != nil || y.Parent != nil {
		t.Fatal("mutual full co-occurrence must not create a parent")
	}
}

func TestSubsumptionMinDF(t *testing.T) {
	terms := []string{"common", "rare"}
	docs := docsWith("common", "common", "common,rare")
	f, _ := BuildSubsumption(terms, docs, SubsumptionConfig{MinDF: 2})
	if _, ok := f.Find("rare"); ok {
		t.Fatal("df-1 term should be dropped at MinDF=2")
	}
	if _, ok := f.Find("common"); !ok {
		t.Fatal("frequent term missing")
	}
}

func TestSubsumptionMostSpecificParent(t *testing.T) {
	// location ⊃ europe ⊃ france; france must attach to europe, not
	// directly to the more general location.
	terms := []string{"location", "europe", "france"}
	docs := docsWith(
		"location,europe,france",
		"location,europe,france",
		"location,europe,france",
		"location,europe",
		"location,europe",
		"location",
		"location",
		"", "", "", "", "", "", // padding keeps df fractions below saturation
	)
	f, _ := BuildSubsumption(terms, docs, SubsumptionConfig{MaxChildDFFraction: 0.99})
	france, _ := f.Find("france")
	if france.Parent == nil || france.Parent.Term != "europe" {
		t.Fatalf("france parent = %v, want europe", france.Parent)
	}
	europe, _ := f.Find("europe")
	if europe.Parent == nil || europe.Parent.Term != "location" {
		t.Fatalf("europe parent = %v, want location", europe.Parent)
	}
}

func TestSubsumptionInvalidThreshold(t *testing.T) {
	if _, err := BuildSubsumption(nil, nil, SubsumptionConfig{Threshold: 1.5}); err == nil {
		t.Fatal("expected error")
	}
}

func TestForestWalkDepths(t *testing.T) {
	terms, docs := subsumptionFixture()
	f, _ := BuildSubsumption(terms, docs, SubsumptionConfig{})
	depths := map[string]int{}
	f.Walk(func(n *Node, d int) { depths[n.Term] = d })
	if depths["europe"] != 0 || depths["france"] != 1 {
		t.Fatalf("depths = %v", depths)
	}
	if f.Size() != 4 {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestTreeMinimization(t *testing.T) {
	chains := ChainFunc(func(term string) []string {
		switch term {
		case "france", "germany":
			return []string{"country", "region", "location", "entity"}
		case "war":
			return []string{"conflict", "event", "entity"}
		case "jacques chirac":
			return nil // named entity: WordNet has nothing
		}
		return nil
	})
	f := BuildTreeMinimization([]string{"france", "germany", "war", "jacques chirac"}, chains)
	// "country" has two children (france, germany) and must survive;
	// single-child chain nodes like "region"→"location" collapse.
	country, ok := f.Find("country")
	if !ok {
		t.Fatal("country node missing")
	}
	if len(country.Children) != 2 {
		t.Fatalf("country children = %d", len(country.Children))
	}
	if _, ok := f.Find("region"); ok {
		t.Fatal("single-child non-input node 'region' not minimized away")
	}
	// Named entity with no chain becomes a root of its own.
	jc, ok := f.Find("jacques chirac")
	if !ok || jc.Parent != nil {
		t.Fatal("chain-less term should be a root")
	}
	// "war" sits under some surviving ancestor or is a root subtree; its
	// node must exist.
	if _, ok := f.Find("war"); !ok {
		t.Fatal("war missing")
	}
}

func TestTreeMinimizationSharedRootSurvives(t *testing.T) {
	chains := ChainFunc(func(term string) []string {
		switch term {
		case "a":
			return []string{"mid1", "top"}
		case "b":
			return []string{"mid2", "top"}
		}
		return nil
	})
	f := BuildTreeMinimization([]string{"a", "b"}, chains)
	top, ok := f.Find("top")
	if !ok {
		t.Fatal("top missing")
	}
	if len(top.Children) != 2 {
		t.Fatalf("top children = %d, want 2 (a and b via collapsed mids)", len(top.Children))
	}
}

func TestBuildWithEvidencePromotesKnownIsA(t *testing.T) {
	// Co-occurrence alone is too weak (P(x|y) = 0.6 < 0.8), but WordNet
	// evidence pushes the combined score over the threshold.
	terms := []string{"europe", "france"}
	docs := docsWith("europe,france", "europe,france", "europe,france", "france", "france", "europe")
	wn := EvidenceFunc{EvidenceName: "wordnet", Fn: func(p, c string) float64 {
		if p == "europe" && c == "france" {
			return 1
		}
		return 0
	}}
	plain, _ := BuildSubsumption(terms, docs, SubsumptionConfig{})
	fr, _ := plain.Find("france")
	if fr.Parent != nil {
		t.Fatal("fixture broken: plain subsumption should not attach france")
	}
	combined, err := BuildWithEvidence(terms, docs, EvidenceConfig{
		Sources:   []TaxonomicEvidence{wn},
		Threshold: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	fr2, _ := combined.Find("france")
	if fr2.Parent == nil || fr2.Parent.Term != "europe" {
		t.Fatalf("evidence combination failed to attach france: %+v", fr2.Parent)
	}
}

func TestBuildWithEvidenceValidation(t *testing.T) {
	_, err := BuildWithEvidence(nil, nil, EvidenceConfig{
		Sources: []TaxonomicEvidence{EvidenceFunc{EvidenceName: "x", Fn: func(_, _ string) float64 { return 0 }}},
		Weights: []float64{1, 2},
	})
	if err == nil {
		t.Fatal("expected weight/source mismatch error")
	}
}

func TestBuildWithEvidenceDirectionalityStillHolds(t *testing.T) {
	terms := []string{"x", "y"}
	docs := docsWith("x,y", "x,y")
	ev := EvidenceFunc{EvidenceName: "always", Fn: func(_, _ string) float64 { return 1 }}
	f, _ := BuildWithEvidence(terms, docs, EvidenceConfig{Sources: []TaxonomicEvidence{ev}})
	x, _ := f.Find("x")
	y, _ := f.Find("y")
	if x.Parent != nil || y.Parent != nil {
		t.Fatal("P(y|x)=1 must still block attachment")
	}
}

func TestDuplicateTermsHandled(t *testing.T) {
	terms := []string{"a", "a", "b"}
	docs := docsWith("a,b", "a,b", "a")
	f, err := BuildSubsumption(terms, docs, SubsumptionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 {
		t.Fatalf("size = %d, want 2", f.Size())
	}
}

func TestSaturatedTermsStayRoots(t *testing.T) {
	// "everywhere" occurs in 90% of docs: at that density P(x|y) >= 0.8
	// holds against nearly anything by saturation, so it must remain a
	// root rather than attach under an even more frequent term.
	terms := []string{"everywhere", "common"}
	var docs [][]string
	for i := 0; i < 9; i++ {
		docs = append(docs, []string{"everywhere", "common"})
	}
	docs = append(docs, []string{"common"})
	f, err := BuildSubsumption(terms, docs, SubsumptionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := f.Find("everywhere")
	if ev.Parent != nil {
		t.Fatalf("saturated term attached under %q", ev.Parent.Term)
	}
	// Disabling the cutoff allows the attachment.
	f2, _ := BuildSubsumption(terms, docs, SubsumptionConfig{MaxChildDFFraction: 2})
	ev2, _ := f2.Find("everywhere")
	if ev2.Parent == nil {
		t.Fatal("cutoff-disabled build should attach the frequent term")
	}
}

func TestParentMustBeMoreGeneral(t *testing.T) {
	// df(x) <= df(y) blocks parenthood even when P(x|y) is high.
	terms := []string{"a", "b"}
	docs := docsWith("a,b", "a,b", "a,b", "a,b", "b", "", "", "", "", "")
	f, _ := BuildSubsumption(terms, docs, SubsumptionConfig{})
	a, _ := f.Find("a")
	if a.Parent == nil || a.Parent.Term != "b" {
		t.Fatalf("a (df=4) should sit under b (df=5), got %+v", a.Parent)
	}
	b, _ := f.Find("b")
	if b.Parent != nil {
		t.Fatal("more frequent term must not attach under less frequent one")
	}
}

func TestQuickSubsumptionInvariants(t *testing.T) {
	// Property: for any random co-occurrence structure, the forest is
	// acyclic, every parent is strictly more frequent than its child, and
	// every term meeting the df floor appears exactly once.
	f := func(seed uint16) bool {
		rng := int(seed)
		next := func(n int) int {
			rng = (rng*1103515245 + 12345) & 0x7fffffff
			return rng % n
		}
		terms := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
		docs := make([][]string, 40)
		for d := range docs {
			for _, tm := range terms {
				if next(3) == 0 {
					docs[d] = append(docs[d], tm)
				}
			}
		}
		forest, err := BuildSubsumption(terms, docs, SubsumptionConfig{MinDF: 1})
		if err != nil {
			return false
		}
		seen := map[string]int{}
		ok := true
		forest.Walk(func(n *Node, depth int) {
			seen[n.Term]++
			if n.Parent != nil && n.Parent.DF <= n.DF {
				ok = false
			}
			if depth > len(terms) {
				ok = false // cycle would show as unbounded depth
			}
		})
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestExportDOT(t *testing.T) {
	terms, docs := subsumptionFixture()
	f, _ := BuildSubsumption(terms, docs, SubsumptionConfig{})
	var buf strings.Builder
	if err := WriteDOT(&buf, f, "test"); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{"digraph", `"europe" -> "france"`, "(7)"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	terms, docs := subsumptionFixture()
	f, _ := BuildSubsumption(terms, docs, SubsumptionConfig{})
	var buf strings.Builder
	if err := WriteJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != f.Size() {
		t.Fatalf("round trip size %d vs %d", back.Size(), f.Size())
	}
	fr, ok := back.Find("france")
	if !ok || fr.Parent == nil || fr.Parent.Term != "europe" {
		t.Fatal("structure lost in round trip")
	}
	if fr.DF != 3 {
		t.Fatalf("df lost: %d", fr.DF)
	}
}

func TestFromJSONRejectsBadInput(t *testing.T) {
	if _, err := FromJSON([]*JSONNode{{Term: ""}}); err == nil {
		t.Fatal("empty term accepted")
	}
	if _, err := FromJSON([]*JSONNode{{Term: "a"}, {Term: "a"}}); err == nil {
		t.Fatal("duplicate term accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestFormatTree(t *testing.T) {
	terms, docs := subsumptionFixture()
	f, _ := BuildSubsumption(terms, docs, SubsumptionConfig{})
	out := FormatTree(f)
	if !strings.Contains(out, "  france (3)") {
		t.Fatalf("tree format wrong:\n%s", out)
	}
}
