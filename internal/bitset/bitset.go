// Package bitset provides a dense bitset used for document-set operations
// in the hierarchy builder (pairwise co-occurrence counts) and the faceted
// browsing engine (drill-down intersections).
package bitset

import (
	"errors"
	"fmt"
	"math/bits"
)

// Set is a fixed-capacity bitset. The zero value is an empty set of
// capacity 0; use New.
type Set struct {
	words []uint64
	n     int
}

// New returns a set able to hold n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCount returns |s ∩ t| without allocating.
func (s *Set) AndCount(t *Set) int {
	n := min(len(s.words), len(t.words))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// And returns a new set s ∩ t with capacity max(s.n, t.n).
func (s *Set) And(t *Set) *Set {
	out := New(max(s.n, t.n))
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		out.words[i] = s.words[i] & t.words[i]
	}
	return out
}

// AndWith intersects s with t in place and returns s. Bits of s beyond
// t's capacity are cleared (they cannot be in the intersection). The
// in-place form lets a conjunction over many posting lists reuse one
// accumulator instead of allocating an intermediate set per operand.
func (s *Set) AndWith(t *Set) *Set {
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		s.words[i] &= t.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
	return s
}

// Intersects reports whether s and t share at least one set bit. It is
// word-parallel with early exit — cheaper than AndCount when only
// emptiness matters.
func (s *Set) Intersects(t *Set) bool {
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// AndForEach calls fn for every bit set in both s and t in ascending
// order; fn returning false stops the iteration. It walks the
// intersection word-parallel without materializing it (And followed by
// ForEach allocates a whole set; this allocates nothing).
func (s *Set) AndForEach(t *Set, fn func(i int) bool) {
	n := min(len(s.words), len(t.words))
	for wi := 0; wi < n; wi++ {
		w := s.words[wi] & t.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*64 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Or returns a new set s ∪ t.
func (s *Set) Or(t *Set) *Set {
	out := New(max(s.n, t.n))
	for i := range out.words {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		out.words[i] = a | b
	}
	return out
}

// AndNot returns a new set s \ t.
func (s *Set) AndNot(t *Set) *Set {
	out := New(s.n)
	for i := range s.words {
		var b uint64
		if i < len(t.words) {
			b = t.words[i]
		}
		out.words[i] = s.words[i] &^ b
	}
	return out
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	out := New(s.n)
	copy(out.words, s.words)
	return out
}

// Words returns a copy of the backing 64-bit words, least-significant bit
// first. The snapshot layer serializes posting lists at word granularity
// rather than bit-by-bit.
func (s *Set) Words() []uint64 {
	return append([]uint64(nil), s.words...)
}

// FromWords reconstructs a set of capacity n bits from backing words as
// returned by Words. It rejects word slices that disagree with n (wrong
// length, or set bits beyond n) so a corrupted serialized posting list
// cannot materialize as an out-of-range document set.
func FromWords(words []uint64, n int) (*Set, error) {
	if n < 0 {
		return nil, errors.New("bitset: negative capacity")
	}
	if len(words) != (n+63)/64 {
		return nil, fmt.Errorf("bitset: %d words cannot back %d bits (want %d words)", len(words), n, (n+63)/64)
	}
	if rem := n & 63; rem != 0 && len(words) > 0 {
		if words[len(words)-1]&^(1<<uint(rem)-1) != 0 {
			return nil, fmt.Errorf("bitset: set bits beyond capacity %d", n)
		}
	}
	return &Set{words: append([]uint64(nil), words...), n: n}, nil
}

// ForEach calls fn for every set bit in ascending order; fn returning
// false stops the iteration.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*64 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the indices of all set bits.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}
