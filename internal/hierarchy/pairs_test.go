package hierarchy

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obsv"
)

// sweepCorpus builds a deterministic pseudo-random collection with the
// topical structure the pruning exploits: 16 disjoint topics of 3 terms
// each over 240 documents. Every document draws terms from one topic
// only (plus a corpus-wide "common" term in a third of the documents),
// so cross-topic pairs never co-occur and the candidate generator skips
// the bulk of the all-pairs space. Two degenerate rows ride along — a
// term that never occurs and one that occurs once.
func sweepCorpus() (terms []string, docTerms [][]string) {
	const topics, perTopic = 16, 3
	for t := 0; t < topics; t++ {
		for i := 0; i < perTopic; i++ {
			terms = append(terms, fmt.Sprintf("t%d%c", t, 'a'+i))
		}
	}
	terms = append(terms, "common", "never", "once")
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		// splitmix64 step: deterministic, seedless, good enough to
		// scatter term assignments.
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for d := 0; d < 240; d++ {
		topic := d % topics
		var row []string
		for i := 0; i < perTopic; i++ {
			// Term i of the topic appears with probability ~1/(1+i): the
			// first term anchors the topic, later ones nest inside it.
			if next()%uint64(1+i) == 0 {
				row = append(row, terms[topic*perTopic+i])
			}
		}
		if d%3 == 0 {
			row = append(row, "common")
		}
		docTerms = append(docTerms, row)
	}
	docTerms[7] = append(docTerms[7], "once")
	return terms, docTerms
}

// sweepConfigs enumerates the configurations the differential test runs
// every builder under: both worker counts the invariants test uses, and
// for the evidence builder a threshold that actually arms its pruning
// gate (threshold 0.6 > maxZeroCoScore 0.5 with one unit-weight source).
func sweepConfigs(workers int) BuildConfig {
	cfg := fixtureConfig(workers)
	cfg.Metrics = obsv.NewRegistry()
	return cfg
}

// TestPrunedSweepEquivalence is the differential wall for the tentpole:
// every registered builder must render a byte-identical forest whether
// the pairwise sweep runs pruned (the default, candidate pairs from the
// pairIndex) or dense (the pre-pruning all-pairs reference kept behind
// the unexported denseSweep flag), at 1 and 8 workers, on both the small
// fixture and a larger skewed corpus. CI runs this under -race.
func TestPrunedSweepEquivalence(t *testing.T) {
	type corpus struct {
		label    string
		terms    []string
		docTerms [][]string
	}
	ft, fd := builderFixture()
	st, sd := sweepCorpus()
	corpora := []corpus{{"fixture", ft, fd}, {"skewed", st, sd}}

	for _, name := range Names() {
		b, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		for _, c := range corpora {
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", name, c.label, workers), func(t *testing.T) {
					cfg := sweepConfigs(workers)
					pruned, err := b.Build(context.Background(), c.terms, c.docTerms, cfg)
					if err != nil {
						t.Fatal(err)
					}
					checkForestInvariants(t, pruned)

					dcfg := sweepConfigs(workers)
					dcfg.denseSweep = true
					dense, err := b.Build(context.Background(), c.terms, c.docTerms, dcfg)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := FormatTree(pruned), FormatTree(dense); got != want {
						t.Errorf("pruned sweep diverges from dense reference:\n--- pruned ---\n%s\n--- dense ---\n%s", got, want)
					}
				})
			}
		}
	}
}

// TestPrunedSweepCounters pins the counter semantics the stagereport
// experiment relies on: candidate+skipped reconstructs the dense
// iteration space, evaluated never exceeds candidate, and on the skewed
// corpus the subsumption sweep evaluates an order of magnitude fewer
// pairs than the all-pairs count.
func TestPrunedSweepCounters(t *testing.T) {
	terms, docTerms := sweepCorpus()
	reg := obsv.NewRegistry()
	cfg := BuildConfig{Workers: 4, Metrics: reg}
	b, _ := Lookup("subsumption")
	if _, err := b.Build(context.Background(), terms, docTerms, cfg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	candidate := snap.Counters["hierarchy.pairs.candidate"]
	evaluated := snap.Counters["hierarchy.pairs.evaluated"]
	skipped := snap.Counters["hierarchy.pairs.skipped"]
	n := snap.Gauges["hierarchy.sweep.terms"]
	if n == 0 {
		t.Fatal("hierarchy.sweep.terms gauge not set")
	}
	if dense := n * (n - 1); candidate+skipped != dense {
		t.Errorf("candidate(%d)+skipped(%d) = %d, want dense iteration count %d", candidate, skipped, candidate+skipped, dense)
	}
	if evaluated > candidate {
		t.Errorf("evaluated %d exceeds candidate %d", evaluated, candidate)
	}
	if allPairs := n * (n - 1) / 2; evaluated*10 > allPairs {
		t.Errorf("evaluated %d pairs, want >=10x below all-pairs %d on the skewed corpus", evaluated, allPairs)
	}
}

// TestAgglomerativeDegeneratePostings is the satellite fix's regression
// test: with the MinDF floor disabled, terms with empty or singleton
// posting lists must not inflate the similarity matrix — they surface as
// roots (empty lists can never merge; singletons only if they co-occur)
// and the sparse path stays byte-identical to the dense reference.
func TestAgglomerativeDegeneratePostings(t *testing.T) {
	terms := []string{"a", "b", "empty1", "empty2", "solo"}
	docTerms := [][]string{
		{"a", "b"},
		{"a", "b"},
		{"a"},
		{"solo"},
		{},
	}
	b, _ := Lookup("agglomerative")
	cfg := BuildConfig{MinDF: -1, Workers: 2} // negative floor keeps zero-DF terms alive
	pruned, err := b.Build(context.Background(), terms, docTerms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkForestInvariants(t, pruned)
	for _, term := range []string{"empty1", "empty2", "solo"} {
		node, ok := pruned.Find(term)
		if !ok {
			t.Fatalf("degenerate term %q missing from forest", term)
		}
		if node.Parent != nil || len(node.Children) != 0 {
			t.Errorf("degenerate term %q clustered (parent=%v, %d children), want isolated root", term, node.Parent, len(node.Children))
		}
	}
	if node, ok := pruned.Find("b"); !ok || node.Parent == nil || node.Parent.Term != "a" {
		t.Errorf("co-occurring pair did not cluster: b's parent = %v", node)
	}

	dcfg := cfg
	dcfg.denseSweep = true
	dense, err := b.Build(context.Background(), terms, docTerms, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatTree(pruned), FormatTree(dense); got != want {
		t.Errorf("degenerate corpus: sparse diverges from dense:\n--- sparse ---\n%s\n--- dense ---\n%s", got, want)
	}
}

// FuzzPairStream cross-checks the candidate-pair generator against the
// naive all-pairs AndCount loop on arbitrary collections: forCandidates
// must yield exactly the partners with co-occurrence >= minCo — never
// dropping a qualifying pair, never yielding a duplicate or self-pair —
// in ascending slot order with exact counts, and the scratch must reset
// cleanly between terms (one scratch serves the whole sweep).
func FuzzPairStream(f *testing.F) {
	f.Add([]byte{0x07, 0x00, 0x03, 0x00, 0x01, 0x00}, uint8(1), uint8(2))
	f.Add([]byte{0xff, 0xff, 0x0f, 0x00, 0xf0, 0x00, 0x00, 0x00}, uint8(2), uint8(0))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{0x01, 0x80, 0x01, 0x80, 0x03, 0xc0, 0xaa, 0x55}, uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, minCoRaw, minDFRaw uint8) {
		terms, docTerms := decodeFuzzCollection(data)
		minCo := int(minCoRaw%4) + 1            // [1, 4]
		minDF := []int{-1, 1, 2, 3}[minDFRaw%4] // include the no-floor case
		st := newTermStats(terms, docTerms, minDF)
		ix := newPairIndex(st)
		sc := ix.newScratch()
		for yi := range st.alive {
			prev := -1
			got := map[int]int{}
			ix.forCandidates(yi, sc, minCo, func(xi, co int) {
				if xi == yi {
					t.Fatalf("yi=%d: self-pair yielded", yi)
				}
				if xi <= prev {
					t.Fatalf("yi=%d: partner %d after %d — not ascending or duplicate", yi, xi, prev)
				}
				prev = xi
				got[xi] = co
			})
			for xi := range st.alive {
				if xi == yi {
					continue
				}
				want := st.sets[st.alive[xi]].AndCount(st.sets[st.alive[yi]])
				switch co, yielded := got[xi], want >= minCo; {
				case yielded && co != want:
					t.Fatalf("yi=%d xi=%d: co %d (want %d) with minCo %d, yielded=%v", yi, xi, co, want, minCo, co != 0)
				case !yielded && co != 0:
					t.Fatalf("yi=%d xi=%d: yielded co %d below minCo %d", yi, xi, co, minCo)
				}
			}
		}
		// The scratch must end every sweep fully zeroed.
		for i, c := range sc.co {
			if c != 0 {
				t.Fatalf("scratch co[%d] = %d after sweep, want 0", i, c)
			}
		}
		if len(sc.touched) != 0 {
			t.Fatalf("scratch touched list not reset: %v", sc.touched)
		}
	})
}
