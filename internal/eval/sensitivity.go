package eval

import (
	"fmt"
	"strings"
)

// SensitivityPoint is one point of the Section V-B sensitivity test.
type SensitivityPoint struct {
	Stories  int
	Terms    int     // distinct validated facet terms at this sample size
	Fraction float64 // Terms / Terms(max sample)
}

// Sensitivity reproduces the paper's sensitivity test: how the number of
// discovered ground-truth facet terms grows with the number of annotated
// stories (the paper reports ~40% at 100 stories and ~80% at 500,
// relative to the 1,000-story sample).
func Sensitivity(dr *DataRun, sizes []int) []SensitivityPoint {
	if len(sizes) == 0 {
		sizes = []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	}
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	// Annotate once at the largest size; prefixes give the smaller sizes
	// (stories are i.i.d. in the generator, so prefixes are random
	// samples).
	gt := dr.Pool.BuildGroundTruth(dr.DS, dr.SampleIndices(maxN))
	cum := map[string]bool{}
	termsAt := make(map[int]int)
	sizeSet := map[int]bool{}
	for _, n := range sizes {
		sizeSet[n] = true
	}
	for i, story := range gt.Stories {
		for _, t := range story {
			cum[t] = true
		}
		if sizeSet[i+1] {
			termsAt[i+1] = len(cum)
		}
	}
	total := len(cum)
	var out []SensitivityPoint
	for _, n := range sizes {
		terms := termsAt[n]
		if n >= len(gt.Stories) {
			terms = total
		}
		frac := 0.0
		if total > 0 {
			frac = float64(terms) / float64(total)
		}
		out = append(out, SensitivityPoint{Stories: n, Terms: terms, Fraction: frac})
	}
	return out
}

// FormatSensitivity renders the curve as a text table.
func FormatSensitivity(points []SensitivityPoint) string {
	var sb strings.Builder
	sb.WriteString("Stories   FacetTerms   Fraction\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%7d   %10d   %7.2f\n", p.Stories, p.Terms, p.Fraction)
	}
	return sb.String()
}
