package facet

import (
	"reflect"
	"testing"
)

// TestParallelSequentialEquivalence is the differential harness for the
// sharded pipeline: the same synthetic news corpus is processed with
// Workers=1 (the original sequential path) and Workers=8, and every
// observable output must be byte-for-byte identical — facet terms and
// their statistics, the full candidate ranking, the per-document
// important-term and context rows, and the rendered hierarchy. CI runs
// this under -race, so it doubles as the end-to-end race regression
// test for the worker pools, the shared ResourceCache, and the DF-table
// shard merge.
func TestParallelSequentialEquivalence(t *testing.T) {
	env, err := NewSimulatedEnvironment(EnvConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := env.GenerateNewsCorpus("SNYT", 150, 43)
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) (*Result, *Hierarchy) {
		t.Helper()
		sys, err := NewSystem(env, Options{TopK: 80, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range docs {
			sys.Add(d)
		}
		res, err := sys.ExtractFacets()
		if err != nil {
			t.Fatal(err)
		}
		h, err := res.BuildHierarchy()
		if err != nil {
			t.Fatal(err)
		}
		return res, h
	}

	seqRes, seqH := run(1)
	parRes, parH := run(8)

	if len(seqRes.Facets) == 0 {
		t.Fatal("sequential run extracted no facets; the differential test is vacuous")
	}
	if !reflect.DeepEqual(seqRes.Facets, parRes.Facets) {
		t.Errorf("facet terms diverge between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(seqRes.inner.Candidates, parRes.inner.Candidates) {
		t.Errorf("candidate ranking diverges between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(seqRes.inner.Important, parRes.inner.Important) {
		t.Errorf("per-document important terms diverge between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(seqRes.inner.Context, parRes.inner.Context) {
		t.Errorf("per-document context rows diverge between Workers=1 and Workers=8")
	}
	if seq, par := seqH.FormatTree(), parH.FormatTree(); seq != par {
		t.Errorf("hierarchy diverges between Workers=1 and Workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}

	// The evidence-combination builder shards its pairwise evidence
	// counting too; it must be just as deterministic.
	seqEv, err := seqRes.BuildHierarchyWith(HierarchyEvidence)
	if err != nil {
		t.Fatal(err)
	}
	parEv, err := parRes.BuildHierarchyWith(HierarchyEvidence)
	if err != nil {
		t.Fatal(err)
	}
	if seq, par := seqEv.FormatTree(), parEv.FormatTree(); seq != par {
		t.Errorf("evidence hierarchy diverges between Workers=1 and Workers=8")
	}
}
