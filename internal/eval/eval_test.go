package eval

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/newsgen"
)

// sharedLab and sharedRun are built once; experiments over a 200-document
// SNYT keep the test suite fast while exercising every runner.
var (
	sharedLab *Lab
	sharedRun *DataRun
)

func testRun(t *testing.T) *DataRun {
	t.Helper()
	if sharedRun != nil {
		return sharedRun
	}
	lab, err := NewLab(42)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := lab.NewDataRun(newsgen.SNYT.WithDocs(200), 7)
	if err != nil {
		t.Fatal(err)
	}
	sharedLab, sharedRun = lab, dr
	return dr
}

func TestRecallTableShape(t *testing.T) {
	dr := testRun(t)
	table, gt := RecallTable(dr, RecallConfig{SampleSize: 200})
	if len(gt.Terms) < 30 {
		t.Fatalf("ground truth too small: %d", len(gt.Terms))
	}
	if len(table.Rows) != 5 || len(table.Cols) != 4 {
		t.Fatalf("table shape %dx%d", len(table.Rows), len(table.Cols))
	}
	// Paper shape: Wikipedia Graph and Google dominate WordNet and
	// Synonyms; the All row is at least as good as any single resource at
	// the All-extractors column minus small analysis interactions.
	graph, _ := table.Cell(ResWikiGraph, ExtAll)
	google, _ := table.Cell(ResGoogle, ExtAll)
	wn, _ := table.Cell(ResWordNet, ExtAll)
	syn, _ := table.Cell(ResWikiSyn, ExtAll)
	all, _ := table.Cell(ResAll, ExtAll)
	if graph < 0.5 {
		t.Fatalf("Wikipedia Graph recall %.3f too low", graph)
	}
	if !(graph > wn && graph > syn && google > wn && google > syn) {
		t.Fatalf("resource ordering violated: graph=%.2f google=%.2f wn=%.2f syn=%.2f", graph, google, wn, syn)
	}
	if all < graph-0.1 {
		t.Fatalf("All row (%.3f) far below best single resource (%.3f)", all, graph)
	}
	// All values are probabilities.
	for _, row := range table.Rows {
		for _, v := range row.Values {
			if v < 0 || v > 1 {
				t.Fatalf("recall %v outside [0,1]", v)
			}
		}
	}
}

func TestPrecisionTableShape(t *testing.T) {
	dr := testRun(t)
	table, err := PrecisionTable(dr, PrecisionConfig{TopK: 60})
	if err != nil {
		t.Fatal(err)
	}
	wn, _ := table.Cell(ResWordNet, ExtAll)
	google, _ := table.Cell(ResGoogle, ExtAll)
	graph, _ := table.Cell(ResWikiGraph, ExtAll)
	// Paper shape: WordNet hypernyms give the most precise hierarchies;
	// Google is the noisiest.
	if wn < google {
		t.Fatalf("WordNet precision (%.3f) below Google (%.3f)", wn, google)
	}
	if graph < 0.4 {
		t.Fatalf("Wikipedia Graph precision %.3f implausibly low", graph)
	}
	for _, row := range table.Rows {
		for _, v := range row.Values {
			if v < 0 || v > 1 {
				t.Fatalf("precision %v outside [0,1]", v)
			}
		}
	}
}

func TestPilotStudy(t *testing.T) {
	dr := testRun(t)
	res := PilotStudy(dr, 200, 9, 2)
	if len(res.Facets) == 0 {
		t.Fatal("no pilot facets")
	}
	// The 65% observation: most annotator facet terms are absent from the
	// stories.
	if res.MissingRate < 0.4 || res.MissingRate > 0.9 {
		t.Fatalf("missing rate %.2f outside plausible band around the paper's 65%%", res.MissingRate)
	}
	// Counts descending.
	for i := 1; i < len(res.Facets); i++ {
		if res.Facets[i].Count > res.Facets[i-1].Count {
			t.Fatal("pilot facets not sorted by count")
		}
	}
	if !strings.Contains(res.Format(), "Facets") {
		t.Fatal("Format output malformed")
	}
}

func TestFigure4(t *testing.T) {
	dr := testRun(t)
	gt := dr.Pool.BuildGroundTruth(dr.DS, dr.SampleIndices(200))
	terms := Figure4(gt, 40)
	if len(terms) == 0 || len(terms) > 40 {
		t.Fatalf("figure 4 returned %d terms", len(terms))
	}
}

func TestFigure5BaselineIsGeneric(t *testing.T) {
	dr := testRun(t)
	terms, forest, err := Figure5(dr, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) == 0 || forest.Size() == 0 {
		t.Fatal("empty baseline")
	}
	// The baseline must be dominated by generic news vocabulary, not by
	// real facet terms — that is the paper's point.
	generic := 0
	genericSet := map[string]bool{}
	for _, w := range lang.GenericNewsWords {
		genericSet[w] = true
	}
	for _, term := range terms {
		if genericSet[term] {
			generic++
		}
	}
	if generic < len(terms)/3 {
		t.Fatalf("only %d/%d baseline terms are generic vocabulary: %v", generic, len(terms), terms)
	}
}

func TestSensitivityMonotone(t *testing.T) {
	dr := testRun(t)
	points := Sensitivity(dr, []int{50, 100, 150, 200})
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Terms < points[i-1].Terms {
			t.Fatal("term counts not monotone in sample size")
		}
	}
	if points[len(points)-1].Fraction != 1 {
		t.Fatalf("final fraction = %v, want 1", points[len(points)-1].Fraction)
	}
	// Sublinear growth: the 25% sample already finds a large share.
	if points[0].Fraction < 0.2 {
		t.Fatalf("quarter sample found only %.2f of terms", points[0].Fraction)
	}
	if FormatSensitivity(points) == "" {
		t.Fatal("empty formatting")
	}
}

func TestEfficiencyReport(t *testing.T) {
	dr := testRun(t)
	rep, err := Efficiency(dr, 50)
	if err != nil {
		t.Fatal(err)
	}
	var yahoo, ne StageCost
	for _, s := range rep.Extractors {
		switch s.Name {
		case ExtYahoo:
			yahoo = s
		case ExtNE:
			ne = s
		}
	}
	// The paper's bottleneck analysis: Yahoo's per-document cost (with
	// virtual network time) dwarfs the local extractors.
	if yahoo.PerDocTotal(rep.Docs) <= ne.PerDocTotal(rep.Docs) {
		t.Fatal("Yahoo should be the bottleneck")
	}
	if yahoo.VirtualTime == 0 {
		t.Fatal("Yahoo charged no virtual time")
	}
	if rep.LocalOnlyDocsPerSec < 100 {
		t.Fatalf("local-only throughput %.0f docs/s, paper reports >100", rep.LocalOnlyDocsPerSec)
	}
	var google StageCost
	for _, s := range rep.Resources {
		if s.Name == ResGoogle {
			google = s
		}
	}
	if google.VirtualTime == 0 || google.Queries == 0 {
		t.Fatal("Google stage not measured")
	}
	if rep.FacetSelection <= 0 || rep.HierarchyConstruction <= 0 {
		t.Fatal("analysis stages not timed")
	}
	if !strings.Contains(rep.Format(), "Facet selection") {
		t.Fatal("Format output malformed")
	}
}

func TestUserStudyShape(t *testing.T) {
	dr := testRun(t)
	res, err := UserStudy(dr, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 5 {
		t.Fatalf("%d sessions", len(res.Sessions))
	}
	// The paper's phenomena: keyword use drops across sessions, facet use
	// is substantial, satisfaction is steady and positive.
	first, last := res.Sessions[0], res.Sessions[len(res.Sessions)-1]
	if last.KeywordQueries > first.KeywordQueries {
		t.Fatalf("keyword use grew: %.2f -> %.2f", first.KeywordQueries, last.KeywordQueries)
	}
	if res.MeanSatisfaction < 1.5 || res.MeanSatisfaction > 3 {
		t.Fatalf("satisfaction %.2f outside band", res.MeanSatisfaction)
	}
	if last.FacetClicks == 0 {
		t.Fatal("no facet usage in final session")
	}
	if !strings.Contains(res.Format(), "Session") {
		t.Fatal("Format output malformed")
	}
}

func TestAblation(t *testing.T) {
	dr := testRun(t)
	res, err := Ablation(dr, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 6 {
		t.Fatalf("%d variants", len(res.Variants))
	}
	byName := map[string]AblationVariant{}
	for _, v := range res.Variants {
		byName[v.Name] = v
	}
	paper := byName["log-likelihood + both shifts (paper)"]
	noGates := byName["log-likelihood, no shift gates"]
	// The shift gates prune candidates.
	if noGates.Candidates < paper.Candidates {
		t.Fatal("removing gates reduced candidates")
	}
	// The paper's ranking should put more useful terms in the top-K than
	// raw frequency-shift ranking puts junk... at minimum it must be
	// competitive with chi-square.
	if paper.UsefulAtK <= 0 {
		t.Fatal("paper variant found nothing useful")
	}
	if res.Format() == "" {
		t.Fatal("empty formatting")
	}
}

func TestTableCellLookup(t *testing.T) {
	table := &Table{
		Cols: []string{"A", "B"},
		Rows: []TableRow{{Name: "r1", Values: []float64{1, 2}}},
	}
	if v, ok := table.Cell("r1", "B"); !ok || v != 2 {
		t.Fatalf("Cell = %v %v", v, ok)
	}
	if _, ok := table.Cell("r1", "C"); ok {
		t.Fatal("unknown column resolved")
	}
	if _, ok := table.Cell("rX", "A"); ok {
		t.Fatal("unknown row resolved")
	}
	if !strings.Contains(table.Format(), "r1") {
		t.Fatal("Format output malformed")
	}
}

func TestCompareHierarchies(t *testing.T) {
	dr := testRun(t)
	cmp, err := CompareHierarchies(dr, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Methods) != 3 {
		t.Fatalf("%d methods", len(cmp.Methods))
	}
	byName := map[string]HierarchyMethodResult{}
	for _, m := range cmp.Methods {
		if m.Terms == 0 {
			t.Fatalf("method %q placed no terms", m.Name)
		}
		if m.Precision < 0 || m.Precision > 1 {
			t.Fatalf("method %q precision %v", m.Name, m.Precision)
		}
		byName[m.Name] = m
	}
	// The paper's conjecture, reproduced here: evidence combination is at
	// least as precise as plain subsumption.
	if byName["evidence combination (Snow-style)"].Precision < byName["subsumption (paper)"].Precision {
		t.Fatalf("evidence (%v) below subsumption (%v)",
			byName["evidence combination (Snow-style)"].Precision,
			byName["subsumption (paper)"].Precision)
	}
	if !strings.Contains(cmp.Format(), "subsumption") {
		t.Fatal("Format output malformed")
	}
}

func TestRecallByDimension(t *testing.T) {
	dr := testRun(t)
	gt := dr.Pool.BuildGroundTruth(dr.DS, dr.SampleIndices(200))
	d := RecallByDimension(dr, gt)
	if len(d.Rows) == 0 {
		t.Fatal("no dimensions")
	}
	var totalGT, totalFound int
	for _, r := range d.Rows {
		if r.GTTerms <= 0 || r.Found > r.GTTerms {
			t.Fatalf("row %+v inconsistent", r)
		}
		totalGT += r.GTTerms
		totalFound += r.Found
	}
	if totalGT != len(gt.Terms) {
		t.Fatalf("dimension rows cover %d terms, GT has %d", totalGT, len(gt.Terms))
	}
	agg := float64(totalFound) / float64(totalGT)
	direct := gt.Recall(dr.RunCell(ExtAll, ResAll, 1).CandidateStrings())
	if agg < direct-0.05 || agg > direct+0.05 {
		t.Fatalf("dimension aggregate %.3f far from direct recall %.3f", agg, direct)
	}
	if !strings.Contains(d.Format(), "Dimension") {
		t.Fatal("Format output malformed")
	}
}

func TestTableCSV(t *testing.T) {
	table := &Table{
		RowHeader: "Resource",
		Cols:      []string{"NE", "All"},
		Rows: []TableRow{
			{Name: "Google", Values: []float64{0.5, 0.75}},
			{Name: "A,B \"quoted\"", Values: []float64{1, 0}},
		},
	}
	csv := table.CSV()
	want := "Resource,NE,All\nGoogle,0.5000,0.7500\n\"A,B \"\"quoted\"\"\",1.0000,0.0000\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}
