package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 65, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in empty set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	s.Clear(64)
	if s.Test(64) || s.Count() != 4 {
		t.Fatal("clear failed")
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(10)
	if s.Test(-1) || s.Test(10) {
		t.Fatal("out-of-range Test should be false")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Set(10)
}

func TestAndOrAndNot(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(50)
	a.Set(99)
	b.Set(50)
	b.Set(99)
	b.Set(2)
	if got := a.AndCount(b); got != 2 {
		t.Fatalf("AndCount = %d", got)
	}
	and := a.And(b)
	if and.Count() != 2 || !and.Test(50) || !and.Test(99) {
		t.Fatal("And wrong")
	}
	or := a.Or(b)
	if or.Count() != 4 {
		t.Fatalf("Or count = %d", or.Count())
	}
	diff := a.AndNot(b)
	if diff.Count() != 1 || !diff.Test(1) {
		t.Fatal("AndNot wrong")
	}
}

func TestMixedSizes(t *testing.T) {
	a, b := New(10), New(200)
	a.Set(3)
	b.Set(3)
	b.Set(150)
	if a.AndCount(b) != 1 {
		t.Fatal("AndCount across sizes")
	}
	or := a.Or(b)
	if !or.Test(3) || !or.Test(150) {
		t.Fatal("Or across sizes")
	}
}

func TestForEachAndSlice(t *testing.T) {
	s := New(300)
	want := []int{0, 64, 128, 255, 299}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestClone(t *testing.T) {
	a := New(70)
	a.Set(69)
	b := a.Clone()
	b.Clear(69)
	if !a.Test(69) {
		t.Fatal("clone aliases original")
	}
}

func TestQuickCountMatchesSlice(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		seen := map[int]bool{}
		for _, i := range idx {
			s.Set(int(i))
			seen[int(i)] = true
		}
		return s.Count() == len(seen) && len(s.Slice()) == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
