// Command corpusgen generates a synthetic news dataset and reports its
// statistics; with -dump it prints sample documents, and with -wordnet it
// writes the synthetic WordNet database files (index.noun / data.noun) to
// a directory, exercising the real-file-format code path.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/lang"
	"repro/internal/newsgen"
	"repro/internal/ontology"
	"repro/internal/textdb"
	"repro/internal/wordnet"
)

func main() {
	log.SetFlags(0)
	docs := flag.Int("docs", 1000, "number of documents")
	profile := flag.String("profile", "SNYT", "dataset profile (SNYT, SNB, MNYT)")
	seed := flag.Uint64("seed", 42, "seed")
	dump := flag.Int("dump", 0, "print the first N documents")
	wordnetDir := flag.String("wordnet", "", "write WordNet database files to this directory")
	storeDir := flag.String("store", "", "persist the corpus into a segment store at this directory and read it back")
	flag.Parse()

	kb, err := ontology.Build(ontology.Config{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Knowledge base: %d concepts (%d facet terms, %d entities, %d roots)\n",
		kb.Len(), len(kb.FacetTerms()), len(kb.Entities()), len(kb.Roots()))

	if *wordnetDir != "" {
		if err := wordnet.WriteFiles(*wordnetDir, ontology.WordNetLexicon(kb)); err != nil {
			log.Fatal(err)
		}
		db, err := wordnet.LoadFiles(*wordnetDir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("WordNet files written to %s and parsed back: %d synsets\n", *wordnetDir, db.Size())
	}

	var p newsgen.Profile
	switch *profile {
	case "SNYT":
		p = newsgen.SNYT
	case "SNB":
		p = newsgen.SNB
	case "MNYT":
		p = newsgen.MNYT
	default:
		log.Fatalf("unknown profile %q", *profile)
	}
	ds, err := newsgen.Generate(kb, p.WithDocs(*docs), *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	var tokens int
	sources := map[string]bool{}
	facetSet := map[ontology.ConceptID]bool{}
	for i := 0; i < ds.Corpus.Len(); i++ {
		d := ds.Corpus.Doc(textdb.DocID(i))
		tokens += len(lang.Tokenize(d.Text))
		sources[d.Source] = true
		for _, f := range ds.Traces[i].Facets {
			facetSet[f] = true
		}
	}
	fmt.Printf("Dataset %s: %d documents, %d sources, %.0f tokens/doc, %d distinct ground-truth facets\n",
		*profile, ds.Corpus.Len(), len(sources), float64(tokens)/float64(ds.Corpus.Len()), len(facetSet))

	if *storeDir != "" {
		store, err := textdb.OpenStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		// Persist in segments of up to 1,000 documents.
		const segSize = 1000
		for start := 0; start < ds.Corpus.Len(); start += segSize {
			end := min(start+segSize, ds.Corpus.Len())
			batch := make([]*textdb.Document, 0, end-start)
			for i := start; i < end; i++ {
				batch = append(batch, ds.Corpus.Doc(textdb.DocID(i)))
			}
			if err := store.Append(batch); err != nil {
				log.Fatal(err)
			}
		}
		reloaded, err := store.LoadAll()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Segment store at %s: %d segments, %d documents persisted and read back\n",
			*storeDir, store.Segments(), reloaded.Len())
	}

	for i := 0; i < *dump && i < ds.Corpus.Len(); i++ {
		d := ds.Corpus.Doc(textdb.DocID(i))
		fmt.Printf("\n--- [%s, %s] %s ---\n%s\n", d.Source, d.Date.Format("2006-01-02"), d.Title, d.Text)
		fmt.Print("ground-truth facets: ")
		for j, f := range ds.Traces[i].Facets {
			if j > 0 {
				fmt.Print(", ")
			}
			fmt.Print(kb.Concept(f).Name)
		}
		fmt.Println()
	}
}
