package remote

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
)

// This file is the fault-injection harness for the external-resource
// boundary. The paper's pipeline depends on remote services (Yahoo Term
// Extraction, Google expansion queries, Wikipedia lookups) that in a real
// deployment fail, slow down, and disappear; the Injector reproduces
// those behaviours deterministically so the fault-tolerance layer
// (internal/resilient, core degradation reporting) can be tested without
// a network, the same way the Clock reproduces their latency.
//
// Determinism is the design constraint everything hangs off: whether a
// given attempt fails is a pure hash of (seed, service, call key, attempt
// ordinal), never of wall-clock time or goroutine scheduling. Each
// (service, key) pair keeps its own attempt counter, and the pipeline's
// single-flight resource cache guarantees one sequential retry loop per
// (service, term) — so a run with injected transient faults and retries
// produces exactly the same fault schedule at every worker count, which
// is what lets the chaos differential tests demand byte-identical output.

// Sentinel fault errors. Wrapped errors from injected calls match these
// with errors.Is.
var (
	// ErrInjected is a transient, retryable failure (the simulated
	// service returned an error for this attempt only).
	ErrInjected = errors.New("remote: injected transient error")
	// ErrTimeout is returned when a call's injected latency exceeds the
	// caller's virtual budget (see WithBudget); the budget — not the full
	// latency — is charged to the clock, like a caller hanging up.
	ErrTimeout = errors.New("remote: virtual deadline exceeded")
	// ErrOutage is returned while a scripted outage (Down) holds the
	// service down; retrying during the outage cannot succeed.
	ErrOutage = errors.New("remote: service down")
)

// budgetKey carries the virtual per-call latency budget through a
// context. The budget is compared against *injected virtual* latency, so
// timeouts are simulated on the Clock without any real sleeping.
type budgetKey struct{}

// WithBudget attaches a virtual latency budget to ctx: an injected call
// whose simulated latency exceeds d fails with ErrTimeout after charging
// only d to the clock. The resilience layer uses this to enforce
// per-resource deadlines against the virtual clock.
func WithBudget(ctx context.Context, d time.Duration) context.Context {
	return context.WithValue(ctx, budgetKey{}, d)
}

// BudgetFrom returns the virtual latency budget attached by WithBudget.
func BudgetFrom(ctx context.Context) (time.Duration, bool) {
	d, ok := ctx.Value(budgetKey{}).(time.Duration)
	return d, ok
}

// FaultConfig describes one service's fault behaviour.
type FaultConfig struct {
	// ErrorRate is the per-attempt probability of an injected transient
	// error, decided by a deterministic hash of (seed, service, key,
	// attempt) — retrying the same key draws a fresh value, so with any
	// rate < 1 every key has a definite first succeeding attempt.
	ErrorRate float64
	// Latency is the virtual time charged to the clock per call.
	Latency time.Duration
	// SlowRate is the probability a call is slow; slow calls charge
	// SlowLatency instead of Latency. Combined with WithBudget this
	// injects deterministic timeouts.
	SlowRate    float64
	SlowLatency time.Duration
}

// svcState is one service's mutable injection state.
type svcState struct {
	cfg      FaultConfig
	calls    int            // total calls observed
	down     int            // >0: calls remaining in outage; <0: down until Clear
	attempts map[string]int // per-key attempt ordinals
}

// Injector decides, deterministically, the fate of every simulated
// service call. It is safe for concurrent use; the fault decision for a
// given (service, key, attempt) triple never depends on call order
// across keys, only the scripted outage window (Down) is call-ordered.
type Injector struct {
	seed  uint64
	clock *Clock

	mu  sync.Mutex
	svc map[string]*svcState
}

// NewInjector returns an injector with no faults configured. A nil clock
// is allowed; latency charging is then skipped.
func NewInjector(seed uint64, clock *Clock) *Injector {
	return &Injector{seed: seed, clock: clock, svc: map[string]*svcState{}}
}

func (inj *Injector) state(service string) *svcState {
	st := inj.svc[service]
	if st == nil {
		st = &svcState{attempts: map[string]int{}}
		inj.svc[service] = st
	}
	return st
}

// SetFaults installs the fault behaviour for a service (by Name()).
// Rates outside [0, 1] (or NaN) are clamped.
func (inj *Injector) SetFaults(service string, cfg FaultConfig) {
	cfg.ErrorRate = clampRate(cfg.ErrorRate)
	cfg.SlowRate = clampRate(cfg.SlowRate)
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.state(service).cfg = cfg
}

// Down scripts an outage: the next calls calls to the service fail with
// ErrOutage; calls < 0 keeps the service down until Clear.
func (inj *Injector) Down(service string, calls int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.state(service).down = calls
}

// Clear ends any scripted outage for the service.
func (inj *Injector) Clear(service string) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.state(service).down = 0
}

// Calls returns how many calls the injector has observed for the service.
func (inj *Injector) Calls(service string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.state(service).calls
}

// call runs the injection decision for one attempt at (service, key):
// charge latency (bounded by any virtual budget on ctx), then fail with
// an outage, timeout, or transient error as configured.
func (inj *Injector) call(ctx context.Context, service, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	inj.mu.Lock()
	st := inj.state(service)
	st.calls++
	attempt := st.attempts[key]
	st.attempts[key] = attempt + 1
	cfg := st.cfg
	down := st.down != 0
	if st.down > 0 {
		st.down--
	}
	inj.mu.Unlock()

	latency := cfg.Latency
	if cfg.SlowRate > 0 && inj.roll(service, key, attempt, saltSlow) < cfg.SlowRate {
		latency = cfg.SlowLatency
	}
	if budget, ok := BudgetFrom(ctx); ok && latency > budget {
		inj.charge(service, budget)
		return fmt.Errorf("%s: %w (needed %v, budget %v)", service, ErrTimeout, latency, budget)
	}
	inj.charge(service, latency)
	if down {
		return fmt.Errorf("%s: %w", service, ErrOutage)
	}
	if cfg.ErrorRate > 0 && inj.roll(service, key, attempt, saltError) < cfg.ErrorRate {
		return fmt.Errorf("%s: %w (attempt %d)", service, ErrInjected, attempt+1)
	}
	return nil
}

func (inj *Injector) charge(service string, d time.Duration) {
	if inj.clock != nil && d > 0 {
		inj.clock.Charge(service, d)
	}
}

const (
	saltError = 0x9E3779B97F4A7C15
	saltSlow  = 0xC2B2AE3D27D4EB4F
)

// roll maps (seed, service, key, attempt, salt) to a uniform value in
// [0, 1). splitmix64 over FNV-mixed inputs: cheap, stateless, and
// independent of call interleaving.
func (inj *Injector) roll(service, key string, attempt int, salt uint64) float64 {
	h := inj.seed ^ salt
	h = splitmix64(h ^ fnv64a(service))
	h = splitmix64(h ^ fnv64a(key))
	h = splitmix64(h ^ uint64(attempt))
	return float64(h>>11) / float64(uint64(1)<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// sanity check that rates make sense as probabilities.
func clampRate(r float64) float64 {
	if math.IsNaN(r) || r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// FaultyResource wraps a core.Resource with injected faults. It
// implements both the infallible core.Resource interface (errors are
// swallowed into empty context — the legacy view) and the fallible
// core.ResourceErr upgrade the pipeline and the resilience layer consume.
type FaultyResource struct {
	inner core.Resource
	inj   *Injector
}

// WrapResource attaches the injector to a resource. Faults are keyed by
// the resource's Name().
func (inj *Injector) WrapResource(r core.Resource) *FaultyResource {
	return &FaultyResource{inner: r, inj: inj}
}

// Name implements core.Resource.
func (f *FaultyResource) Name() string { return f.inner.Name() }

// Context implements core.Resource; injected failures yield nil context.
func (f *FaultyResource) Context(term string) []string {
	out, _ := f.ContextErr(context.Background(), term)
	return out
}

// ContextErr implements core.ResourceErr: the injector decides this
// attempt's fate before the underlying resource is consulted.
func (f *FaultyResource) ContextErr(ctx context.Context, term string) ([]string, error) {
	if err := f.inj.call(ctx, f.inner.Name(), term); err != nil {
		return nil, err
	}
	return f.inner.Context(term), nil
}

// FaultyExtractor wraps a core.Extractor with injected faults, keyed by
// the document text (the extractor's call granularity).
type FaultyExtractor struct {
	inner core.Extractor
	inj   *Injector
}

// WrapExtractor attaches the injector to an extractor.
func (inj *Injector) WrapExtractor(e core.Extractor) *FaultyExtractor {
	return &FaultyExtractor{inner: e, inj: inj}
}

// Name implements core.Extractor.
func (f *FaultyExtractor) Name() string { return f.inner.Name() }

// Extract implements core.Extractor; injected failures yield no terms.
func (f *FaultyExtractor) Extract(text string) []string {
	out, _ := f.ExtractErr(context.Background(), text)
	return out
}

// ExtractErr implements core.ExtractorErr.
func (f *FaultyExtractor) ExtractErr(ctx context.Context, text string) ([]string, error) {
	if err := f.inj.call(ctx, f.inner.Name(), text); err != nil {
		return nil, err
	}
	return f.inner.Extract(text), nil
}
