package distctx

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// docsFixture is a tiny corpus with a planted association: "jazz" and
// "saxophone" co-occur in 3 of 6 documents, while "weather" floats free.
func docsFixture() [][]string {
	return [][]string{
		{"jazz", "saxophone", "club"},
		{"jazz", "saxophone", "weather"},
		{"jazz", "saxophone"},
		{"jazz", "radio"},
		{"weather", "radio"},
		{"club", "radio", "weather"},
	}
}

func TestBuildAssociatesCooccurringTerms(t *testing.T) {
	m, err := Build(context.Background(), docsFixture(), Config{TopN: 2, MinDF: 2, MinCo: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got := m.Context("jazz")
	if len(got) == 0 || got[0] != "saxophone" {
		t.Fatalf("Context(jazz) = %v, want saxophone first", got)
	}
	if sax := m.Context("saxophone"); len(sax) == 0 || sax[0] != "jazz" {
		t.Fatalf("Context(saxophone) = %v, want jazz first", sax)
	}
	if m.Name() != DefaultName {
		t.Fatalf("Name = %q, want %q", m.Name(), DefaultName)
	}
}

func TestBuildPPMIHandComputed(t *testing.T) {
	// jazz df=4, saxophone df=3, co=3, n=6:
	// PPMI = log(3·6 / (4·3)) = log(1.5).
	m, err := Build(context.Background(), docsFixture(), Config{MinDF: 2, MinCo: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := math.Log(1.5)
	if got := stats.PPMI(3, 4, 3, 6); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PPMI(3,4,3,6) = %v, want %v", got, want)
	}
	// The pair must survive into the model under that weight.
	if got := m.Context("jazz"); len(got) == 0 {
		t.Fatalf("Context(jazz) empty, want saxophone scored at %v", want)
	}
}

func TestPPMIClipsBelowChance(t *testing.T) {
	// co=1, dfX=5, dfY=5, n=6: observed 1/6 < expected (5/6)(5/6) → PMI < 0 → 0.
	if got := stats.PPMI(1, 5, 5, 6); got != 0 {
		t.Fatalf("PPMI below chance = %v, want 0", got)
	}
	for _, bad := range [][4]int{{0, 1, 1, 1}, {2, 1, 2, 4}, {1, 0, 1, 4}, {1, 1, 1, 0}} {
		if got := stats.PPMI(bad[0], bad[1], bad[2], bad[3]); got != 0 {
			t.Fatalf("PPMI(%v) = %v, want 0", bad, got)
		}
	}
}

func TestAssocLLRRewardsEvidenceMass(t *testing.T) {
	// Same lift, 10× the evidence: LLR must grow, PPMI must not.
	small := stats.AssocLLR(2, 4, 4, 16)
	large := stats.AssocLLR(20, 40, 40, 160)
	if !(large > small && small > 0) {
		t.Fatalf("AssocLLR evidence scaling: small=%v large=%v", small, large)
	}
	if p1, p2 := stats.PPMI(2, 4, 4, 16), stats.PPMI(20, 40, 40, 160); math.Abs(p1-p2) > 1e-12 {
		t.Fatalf("PPMI should be lift-only: %v vs %v", p1, p2)
	}
	for _, bad := range [][4]int{{0, 1, 1, 1}, {2, 1, 2, 4}, {1, 2, 1, 1}} {
		if got := stats.AssocLLR(bad[0], bad[1], bad[2], bad[3]); got != 0 {
			t.Fatalf("AssocLLR(%v) = %v, want 0", bad, got)
		}
	}
}

func TestBuildLLRWeighting(t *testing.T) {
	m, err := Build(context.Background(), docsFixture(), Config{Weight: WeightLLR, MinDF: 2, MinCo: 2})
	if err != nil {
		t.Fatalf("Build(llr): %v", err)
	}
	if got := m.Context("jazz"); len(got) == 0 || got[0] != "saxophone" {
		t.Fatalf("LLR Context(jazz) = %v, want saxophone first", got)
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(context.Background(), nil, Config{Weight: "cosine"}); err == nil {
		t.Fatal("unknown weight accepted")
	}
	if _, err := Build(context.Background(), nil, Config{TopN: -1}); err == nil {
		t.Fatal("negative TopN accepted")
	}
}

func TestBuildTopNBound(t *testing.T) {
	// A clique of 12 terms all pairwise co-occurring: every term has 11
	// candidates, TopN=3 must cap each context at 3.
	var doc []string
	for i := 0; i < 12; i++ {
		doc = append(doc, fmt.Sprintf("t%02d", i))
	}
	corpus := [][]string{doc, doc, append([]string{"solo"}, doc[:2]...)}
	m, err := Build(context.Background(), corpus, Config{TopN: 3, MinDF: 1, MinCo: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := 0; i < 12; i++ {
		if got := m.Context(fmt.Sprintf("t%02d", i)); len(got) > 3 {
			t.Fatalf("Context(t%02d) has %d neighbors, want <= 3", i, len(got))
		}
	}
}

func TestBuildMinDFAndMinCoGates(t *testing.T) {
	corpus := [][]string{
		{"common", "rare"},
		{"common", "other"},
		{"common", "other"},
		{"pad1", "pad2"},
	}
	m, err := Build(context.Background(), corpus, Config{MinDF: 2, MinCo: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := m.Context("rare"); got != nil {
		t.Fatalf("Context(rare) = %v, want nil (df=1 < MinDF)", got)
	}
	if got := m.Context("common"); len(got) != 1 || got[0] != "other" {
		t.Fatalf("Context(common) = %v, want [other]", got)
	}
}

func TestBuildWindowRestrictsPairs(t *testing.T) {
	// With Window=1 only adjacent terms pair: "a"–"c" are 2 apart and
	// must not associate even though they share three documents. The
	// padding document keeps df < n so PPMI stays positive.
	corpus := [][]string{
		{"a", "b", "c"},
		{"a", "b", "c"},
		{"a", "b", "c"},
		{"pad1", "pad2"},
	}
	whole, err := Build(context.Background(), corpus, Config{MinDF: 1, MinCo: 2})
	if err != nil {
		t.Fatalf("Build(whole-doc): %v", err)
	}
	if got := whole.Context("a"); len(got) != 2 {
		t.Fatalf("whole-doc Context(a) = %v, want both b and c", got)
	}
	win, err := Build(context.Background(), corpus, Config{Window: 1, MinDF: 1, MinCo: 2})
	if err != nil {
		t.Fatalf("Build(window): %v", err)
	}
	if got := win.Context("a"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("window Context(a) = %v, want [b]", got)
	}
}

func TestBuildDeduplicatesWithinDocument(t *testing.T) {
	// Repeating a pair inside one document must not inflate co beyond
	// document-frequency semantics: PPMI's co <= min(dfX, dfY) guard
	// zeroes any over-counted pair, so the edge only survives if the
	// per-document dedupe kept co at 2.
	corpus := [][]string{
		{"x", "y", "x", "y", "x"},
		{"x", "y"},
		{"pad1", "pad2"},
	}
	m, err := Build(context.Background(), corpus, Config{MinDF: 2, MinCo: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := m.Context("x"); !reflect.DeepEqual(got, []string{"y"}) {
		t.Fatalf("Context(x) = %v, want [y] (co deduped to 2)", got)
	}
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%02d", i)
	}
	corpus := make([][]string, 300)
	for d := range corpus {
		k := 2 + rng.Intn(6)
		doc := make([]string, k)
		for i := range doc {
			doc[i] = vocab[rng.Intn(len(vocab))]
		}
		corpus[d] = doc
	}
	base, err := Build(context.Background(), corpus, Config{Workers: 1})
	if err != nil {
		t.Fatalf("Build(workers=1): %v", err)
	}
	for _, w := range []int{2, 4, 8} {
		m, err := Build(context.Background(), corpus, Config{Workers: w})
		if err != nil {
			t.Fatalf("Build(workers=%d): %v", w, err)
		}
		if !reflect.DeepEqual(m.neighbors, base.neighbors) {
			t.Fatalf("workers=%d model differs from sequential", w)
		}
	}
}

func TestBuildCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, docsFixture(), Config{Workers: 1}); err == nil {
		t.Fatal("Build with canceled context succeeded")
	}
}

func TestModelNilAndEmpty(t *testing.T) {
	var m *Model
	if m.Context("x") != nil || m.Len() != 0 {
		t.Fatal("nil model must be inert")
	}
	built, err := Build(context.Background(), nil, Config{})
	if err != nil {
		t.Fatalf("Build(empty): %v", err)
	}
	if built.Len() != 0 || built.Context("x") != nil {
		t.Fatal("empty corpus must yield empty model")
	}
}
