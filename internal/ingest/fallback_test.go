package ingest

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestFallbackAdmitsUnderTotalOutage: with every resource down and a
// fallback configured, submitted documents are admitted with the
// fallback's context instead of dead-lettered — the corpus-only degraded
// mode of the live path.
func TestFallbackAdmitsUnderTotalOutage(t *testing.T) {
	res := &toggleResource{mapResource: testResource()}
	fb := mapResource{name: "corpus", m: map[string][]string{
		"chirac": {"politicians", "france"},
		"merkel": {"politicians", "germany"},
	}}
	cfg := testConfig()
	cfg.Resources = []core.Resource{res}
	cfg.Fallback = fb
	cfg.EpochDocs = 1000
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(testDocs(3), false); err != nil {
		t.Fatal(err)
	}
	ing.Start()

	res.down.Store(true)
	docs := testDocs(5)
	for _, d := range docs[3:5] {
		if err := ing.SubmitWait(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "fallback admissions", func() bool { return ing.Stats().DocsIngested == 5 })
	st := ing.Stats()
	if st.DeadLetters != 0 || st.AnalysisFailures != 0 {
		t.Fatalf("documents dead-lettered despite fallback: %+v", st)
	}
	if st.FallbackLookups == 0 {
		t.Fatal("FallbackLookups = 0, want rescued lookups counted")
	}
	drain(t, ing)
}

// TestFallbackStaysOutOfPartialOutage: with only SOME resources down, the
// never-half-ingest rule still dead-letters — the fallback must not paper
// over a partial expansion.
func TestFallbackStaysOutOfPartialOutage(t *testing.T) {
	res := &toggleResource{mapResource: testResource()}
	healthy := mapResource{name: "healthy", m: map[string][]string{"chirac": {"leaders"}}}
	cfg := testConfig()
	cfg.Resources = []core.Resource{res, healthy}
	cfg.Fallback = mapResource{name: "corpus", m: map[string][]string{"chirac": {"politicians"}}}
	cfg.EpochDocs = 1000
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(testDocs(3), false); err != nil {
		t.Fatal(err)
	}
	ing.Start()
	defer drain(t, ing)

	res.down.Store(true)
	docs := testDocs(4)
	if err := ing.SubmitWait(context.Background(), docs[3]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "dead letter", func() bool { return ing.Stats().DeadLetters == 1 })
	if got := ing.Stats().FallbackLookups; got != 0 {
		t.Fatalf("FallbackLookups = %d during a partial outage, want 0", got)
	}
	if got := ing.Stats().DocsIngested; got != 3 {
		t.Fatalf("DocsIngested = %d, want 3 (no half-ingest)", got)
	}
}

// TestFallbackUntouchedWhenResourcesHealthy: healthy runs never consult
// the fallback, so configuring one cannot perturb normal ingestion.
func TestFallbackUntouchedWhenResourcesHealthy(t *testing.T) {
	cfg := testConfig()
	cfg.Fallback = mapResource{name: "corpus", m: map[string][]string{"chirac": {"SHOULD-NOT-APPEAR"}}}
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Bootstrap(testDocs(12), false); err != nil {
		t.Fatal(err)
	}
	if got := ing.Stats().FallbackLookups; got != 0 {
		t.Fatalf("FallbackLookups = %d on a healthy run, want 0", got)
	}
	if set := facetTermSet(ing.Current()); set["SHOULD-NOT-APPEAR"] {
		t.Fatal("fallback context leaked into a healthy run's facets")
	}
	drain(t, ing)
}
