// Package websearch implements the web-search simulator behind the
// paper's "Google" external resource (Section IV-B): a BM25 engine over a
// web-like page collection (the synthetic Wikipedia's pages serve as the
// web), returning ranked results with titles and snippets; the resource
// mines the most frequent words and phrases from the result snippets as
// context terms.
//
// As in the paper's implementation, only titles and snippets are mined —
// not full pages — "introducing a relatively large number of noisy
// terms", which is the documented reason the Google resource trades
// precision for recall in Tables V–VII.
package websearch

import (
	"sort"
	"strings"

	"repro/internal/lang"
	"repro/internal/remote"
	"repro/internal/textdb"
	"repro/internal/wiki"
)

// Engine is a searchable page collection.
type Engine struct {
	corpus *textdb.Corpus
	index  *textdb.Index
}

// NewEngineFromWiki indexes every wiki page as a web document.
func NewEngineFromWiki(w *wiki.Wiki) *Engine {
	c := textdb.NewCorpus()
	for _, p := range w.Pages() {
		c.Add(&textdb.Document{Title: p.Title, Source: "web", Text: p.Text})
	}
	return NewEngine(c)
}

// NewEngine wraps an existing corpus as a search engine.
func NewEngine(c *textdb.Corpus) *Engine {
	return &Engine{corpus: c, index: textdb.BuildIndex(c)}
}

// DocFreqFraction returns the fraction of indexed pages containing the
// term. For multi-word terms the minimum over component words is returned
// (an upper bound on the phrase's own document frequency).
func (e *Engine) DocFreqFraction(term string) float64 {
	if e.corpus.Len() == 0 {
		return 0
	}
	frac := 1.0
	for _, w := range strings.Fields(term) {
		f := float64(e.index.DocFreq(w)) / float64(e.corpus.Len())
		if f < frac {
			frac = f
		}
	}
	return frac
}

// Result is one search result: title plus snippet.
type Result struct {
	Title   string
	Snippet string
}

// Search returns the top-k results for the query.
func (e *Engine) Search(query string, k int) []Result {
	hits := e.index.Search(query, k)
	out := make([]Result, 0, len(hits))
	for _, h := range hits {
		doc := e.corpus.Doc(h.Doc)
		out = append(out, Result{
			Title:   doc.Title,
			Snippet: textdb.Snippet(doc, query, 24),
		})
	}
	return out
}

// Resource is the Google-style context resource.
type Resource struct {
	engine *Engine
	// results per query and context terms returned per query.
	kResults int
	mTerms   int
	clock    *remote.Clock
}

// NewResource returns the resource. kResults <= 0 defaults to 10 (one
// result page), mTerms <= 0 defaults to 10. A non-nil clock charges the
// paper's per-query latency as virtual time.
func NewResource(e *Engine, kResults, mTerms int, clock *remote.Clock) *Resource {
	if kResults <= 0 {
		kResults = 10
	}
	if mTerms <= 0 {
		mTerms = 10
	}
	return &Resource{engine: e, kResults: kResults, mTerms: mTerms, clock: clock}
}

// Name implements the core.Resource convention.
func (r *Resource) Name() string { return "Google" }

// Context queries the engine with the term and returns the most frequent
// words and phrases across the returned titles and snippets, excluding
// the query's own words.
func (r *Resource) Context(term string) []string {
	if r.clock != nil {
		r.clock.Charge(r.Name(), remote.GooglePerQuery)
	}
	results := r.engine.Search(term, r.kResults)
	if len(results) == 0 {
		return nil
	}
	queryWords := map[string]bool{}
	for _, w := range strings.Fields(lang.NormalizePhrase(term)) {
		queryWords[w] = true
	}
	freq := map[string]int{}
	var order []string
	count := func(text string) {
		for _, sent := range lang.Phrases(lang.Tokenize(text)) {
			words := lang.Norms(sent)
			for i, w := range words {
				if len(w) > 1 && !lang.IsStopword(w) && !queryWords[w] {
					if freq[w] == 0 {
						order = append(order, w)
					}
					freq[w]++
				}
				if i+2 <= len(words) {
					a, b := words[i], words[i+1]
					if lang.IsStopword(a) || lang.IsStopword(b) || queryWords[a] || queryWords[b] {
						continue
					}
					p := a + " " + b
					if freq[p] == 0 {
						order = append(order, p)
					}
					freq[p]++
				}
			}
		}
	}
	for _, res := range results {
		count(res.Title)
		count(res.Snippet)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if freq[order[a]] != freq[order[b]] {
			return freq[order[a]] > freq[order[b]]
		}
		return order[a] < order[b]
	})
	// Keep terms that appear in at least two results' text (low-support terms are
	// snippet noise), and drop web-wide boilerplate: a term occurring on a
	// large fraction of ALL pages carries no query-specific signal. Real
	// web-scale frequency mining has this property implicitly — no single
	// query inflates the web-wide background — so the explicit cut only
	// corrects for the reduced scale of the simulated web.
	var out []string
	for _, t := range order {
		if freq[t] < 3 {
			continue
		}
		if r.engine.DocFreqFraction(t) > maxBackgroundDF {
			continue
		}
		out = append(out, t)
		if len(out) >= r.mTerms {
			break
		}
	}
	return out
}

// maxBackgroundDF is the boilerplate cutoff: terms present on more than
// this fraction of all pages are never returned as context.
const maxBackgroundDF = 0.12
