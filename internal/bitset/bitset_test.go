package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 65, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in empty set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	s.Clear(64)
	if s.Test(64) || s.Count() != 4 {
		t.Fatal("clear failed")
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(10)
	if s.Test(-1) || s.Test(10) {
		t.Fatal("out-of-range Test should be false")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Set(10)
}

func TestAndOrAndNot(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(50)
	a.Set(99)
	b.Set(50)
	b.Set(99)
	b.Set(2)
	if got := a.AndCount(b); got != 2 {
		t.Fatalf("AndCount = %d", got)
	}
	and := a.And(b)
	if and.Count() != 2 || !and.Test(50) || !and.Test(99) {
		t.Fatal("And wrong")
	}
	or := a.Or(b)
	if or.Count() != 4 {
		t.Fatalf("Or count = %d", or.Count())
	}
	diff := a.AndNot(b)
	if diff.Count() != 1 || !diff.Test(1) {
		t.Fatal("AndNot wrong")
	}
}

func TestMixedSizes(t *testing.T) {
	a, b := New(10), New(200)
	a.Set(3)
	b.Set(3)
	b.Set(150)
	if a.AndCount(b) != 1 {
		t.Fatal("AndCount across sizes")
	}
	or := a.Or(b)
	if !or.Test(3) || !or.Test(150) {
		t.Fatal("Or across sizes")
	}
}

func TestForEachAndSlice(t *testing.T) {
	s := New(300)
	want := []int{0, 64, 128, 255, 299}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestClone(t *testing.T) {
	a := New(70)
	a.Set(69)
	b := a.Clone()
	b.Clear(69)
	if !a.Test(69) {
		t.Fatal("clone aliases original")
	}
}

func TestQuickCountMatchesSlice(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		seen := map[int]bool{}
		for _, i := range idx {
			s.Set(int(i))
			seen[int(i)] = true
		}
		return s.Count() == len(seen) && len(s.Slice()) == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAndWith(t *testing.T) {
	a, b := New(200), New(200)
	for _, i := range []int{1, 64, 130, 199} {
		a.Set(i)
	}
	b.Set(64)
	b.Set(199)
	b.Set(7)
	if got := a.AndWith(b); got != a {
		t.Fatal("AndWith should return its receiver")
	}
	if a.Count() != 2 || !a.Test(64) || !a.Test(199) {
		t.Fatalf("AndWith wrong: %v", a.Slice())
	}
	if !b.Test(7) {
		t.Fatal("AndWith mutated its argument")
	}
	// Bits beyond the argument's capacity are cleared: they cannot be in
	// the intersection.
	wide, narrow := New(200), New(10)
	wide.Set(5)
	wide.Set(150)
	narrow.Set(5)
	wide.AndWith(narrow)
	if wide.Count() != 1 || !wide.Test(5) {
		t.Fatalf("AndWith across sizes: %v", wide.Slice())
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(300), New(300)
	if a.Intersects(b) {
		t.Fatal("empty sets intersect")
	}
	a.Set(5)
	b.Set(255)
	if a.Intersects(b) {
		t.Fatal("disjoint sets intersect")
	}
	b.Set(5)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("Intersects missed the shared bit")
	}
	// Across sizes: only the common prefix can intersect.
	small := New(10)
	small.Set(5)
	if !small.Intersects(a) || !a.Intersects(small) {
		t.Fatal("Intersects across sizes")
	}
}

func TestAndForEach(t *testing.T) {
	a, b := New(300), New(300)
	for _, i := range []int{0, 63, 64, 128, 255, 299} {
		a.Set(i)
	}
	for _, i := range []int{63, 64, 200, 299} {
		b.Set(i)
	}
	var got []int
	a.AndForEach(b, func(i int) bool {
		got = append(got, i)
		return true
	})
	want := a.And(b).Slice()
	if len(got) != len(want) {
		t.Fatalf("AndForEach got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AndForEach got %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	a.AndForEach(b, func(int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestQuickAndWithMatchesAnd(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(1<<16), New(1<<16)
		for _, i := range xs {
			a.Set(int(i))
		}
		for _, i := range ys {
			b.Set(int(i))
		}
		want := a.And(b)
		inPlace := a.Clone().AndWith(b)
		if inPlace.Count() != want.Count() {
			return false
		}
		iter := 0
		a.AndForEach(b, func(int) bool { iter++; return true })
		return iter == want.Count() &&
			a.Intersects(b) == (want.Count() > 0) &&
			a.AndCount(b) == want.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
