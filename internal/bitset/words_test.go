package bitset

import (
	"reflect"
	"testing"
)

func TestWordsRoundtrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		s := New(n)
		for i := 0; i < n; i += 3 {
			s.Set(i)
		}
		got, err := FromWords(s.Words(), n)
		if err != nil {
			t.Fatalf("n=%d: FromWords: %v", n, err)
		}
		if !reflect.DeepEqual(got.Slice(), s.Slice()) {
			t.Fatalf("n=%d: roundtrip changed bits: %v vs %v", n, got.Slice(), s.Slice())
		}
	}
}

func TestWordsReturnsCopy(t *testing.T) {
	s := New(64)
	s.Set(3)
	w := s.Words()
	w[0] = 0
	if !s.Test(3) {
		t.Fatal("mutating the Words copy must not affect the set")
	}
}

func TestFromWordsRejectsBadInput(t *testing.T) {
	if _, err := FromWords([]uint64{0}, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := FromWords([]uint64{0, 0}, 64); err == nil {
		t.Fatal("wrong word count accepted")
	}
	// Bit 70 set in a 65-bit set's second word is fine; bit set beyond
	// capacity must be rejected.
	if _, err := FromWords([]uint64{0, 1 << 5}, 65); err == nil {
		t.Fatal("set bit beyond capacity accepted")
	}
	if _, err := FromWords([]uint64{0, 1}, 65); err != nil {
		t.Fatalf("valid 65-bit words rejected: %v", err)
	}
}
