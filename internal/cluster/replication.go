package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/browse"
	"repro/internal/obsv"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

// EpochHeader carries the leader's current epoch on every snapshot
// response (including 204s), so a replica learns how far behind it is
// without transferring a byte of payload.
const EpochHeader = "X-Snapshot-Epoch"

// Shipper is the leader side of replication: it keeps the encoded
// snapshot bytes of the most recently published epoch and serves them
// to pulling replicas. The epoch number doubles as the replication
// watermark — a replica at epoch N asks "anything newer than N?" and
// gets either the latest bytes or 204 No Content.
//
// Publish is wired as (part of) the ingester's OnPublish hook, so a
// live leader re-encodes and exposes each epoch the moment the atomic
// interface swap lands; a batch leader publishes its single build once.
type Shipper struct {
	profile string
	seed    uint64
	metrics *obsv.Registry

	cur atomic.Pointer[shippedEpoch]

	publishes *obsv.Counter
	served    *obsv.Counter
	bytesOut  *obsv.Counter
}

type shippedEpoch struct {
	epoch uint64
	data  []byte
}

// NewShipper builds a shipper; profile and seed are stamped into the
// shipped snapshots' provenance metadata. reg may be nil.
func NewShipper(profile string, seed uint64, reg *obsv.Registry) *Shipper {
	s := &Shipper{profile: profile, seed: seed, metrics: reg}
	if reg != nil {
		s.publishes = reg.Counter("cluster.ship.publishes")
		s.served = reg.Counter("cluster.ship.snapshots_served")
		s.bytesOut = reg.Counter("cluster.ship.bytes_served")
		reg.GaugeFunc("cluster.ship.epoch", func() int64 {
			if cur := s.cur.Load(); cur != nil {
				return int64(cur.epoch)
			}
			return -1
		})
	}
	return s
}

// Publish encodes the interface's serving state and makes it the
// shipped epoch. Encoding happens once per publish, not per replica
// pull. An encode failure leaves the previous epoch in place.
func (s *Shipper) Publish(iface *browse.Interface) error {
	snap := snapshot.Capture(iface, snapshot.Meta{
		Epoch: iface.Epoch(), Profile: s.profile, Seed: s.seed,
		CreatedUnixNano: time.Now().UnixNano(),
	}, nil)
	data, err := snapshot.Encode(snap)
	if err != nil {
		return fmt.Errorf("cluster: ship epoch %d: %w", iface.Epoch(), err)
	}
	s.cur.Store(&shippedEpoch{epoch: iface.Epoch(), data: data})
	if s.publishes != nil {
		s.publishes.Inc()
	}
	return nil
}

// Epoch returns the currently shipped epoch, or false before the first
// publish.
func (s *Shipper) Epoch() (uint64, bool) {
	if cur := s.cur.Load(); cur != nil {
		return cur.epoch, true
	}
	return 0, false
}

// Register mounts the replication endpoint on a serve.Server:
//
//	GET /api/v1/cluster/snapshot[?since=<epoch>]
//
// 200 with the snapshot bytes when the shipped epoch is newer than
// since (or since is absent), 204 with only the epoch header when the
// replica is already current, 503 before the first publish. Like
// EnableIngest, Register must run before traffic starts.
func (s *Shipper) Register(srv *serve.Server) {
	srv.Handle(http.MethodGet, "cluster/snapshot", "cluster_snapshot", s.handleSnapshot)
}

func (s *Shipper) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	cur := s.cur.Load()
	if cur == nil {
		serve.WriteError(w, http.StatusServiceUnavailable, serve.ErrCodeUnavailable,
			fmt.Errorf("no snapshot published yet"))
		return
	}
	w.Header().Set(EpochHeader, strconv.FormatUint(cur.epoch, 10))
	if raw := r.URL.Query().Get("since"); raw != "" {
		since, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			serve.WriteError(w, http.StatusBadRequest, serve.ErrCodeBadRequest,
				fmt.Errorf("bad since %q (want a non-negative epoch number)", raw))
			return
		}
		if cur.epoch <= since {
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(cur.data)))
	_, _ = w.Write(cur.data)
	if s.served != nil {
		s.served.Inc()
		s.bytesOut.Add(int64(len(cur.data)))
	}
}

// ReplicaConfig parameterizes a Replica.
type ReplicaConfig struct {
	// LeaderURL is the leader's base URL (no trailing slash).
	LeaderURL string
	// Client fetches snapshots; nil selects http.DefaultClient.
	Client *http.Client
	// Timeout bounds one pull (connect + transfer). 0 selects 30s —
	// snapshots are whole-corpus payloads, not pings.
	Timeout time.Duration
	// MaxLagEpochs is the replication lag (leader epoch minus applied
	// epoch) at which readyz starts failing. 0 selects 1: a replica one
	// epoch behind mid-transfer is still ready, two behind is not.
	MaxLagEpochs uint64
	// Metrics, when set, receives cluster.replica.lag (the watermark
	// gauge), cluster.replica.applied_epoch, and counters for applied
	// snapshots and poll errors. May be nil.
	Metrics *obsv.Registry
	// Logf, when set, receives one line per applied epoch and per poll
	// error.
	Logf func(format string, args ...any)
}

// Replica is the stateless read side of replication: it pulls the
// leader's snapshot endpoint with its applied epoch as the watermark,
// decodes any newer snapshot, and publishes the rehydrated interface
// through the same atomic swap live ingestion uses. It holds no durable
// state — a restarted replica simply pulls the latest snapshot again.
type Replica struct {
	cfg     ReplicaConfig
	publish func(*browse.Interface)

	applied atomic.Int64 // applied epoch; -1 before the first snapshot
	lag     atomic.Int64 // leader epoch - applied epoch; -1 while unknown

	appliedCount *obsv.Counter
	pollErrors   *obsv.Counter
	bytesIn      *obsv.Counter
}

// NewReplica builds a replica that hands each applied interface to
// publish (typically serve.Server.Publish).
func NewReplica(cfg ReplicaConfig, publish func(*browse.Interface)) (*Replica, error) {
	if cfg.LeaderURL == "" {
		return nil, fmt.Errorf("cluster: replica needs a leader URL")
	}
	if publish == nil {
		return nil, fmt.Errorf("cluster: replica needs a publish hook")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxLagEpochs == 0 {
		cfg.MaxLagEpochs = 1
	}
	r := &Replica{cfg: cfg, publish: publish}
	r.applied.Store(-1)
	r.lag.Store(-1)
	if reg := cfg.Metrics; reg != nil {
		r.appliedCount = reg.Counter("cluster.replica.snapshots_applied")
		r.pollErrors = reg.Counter("cluster.replica.poll_errors")
		r.bytesIn = reg.Counter("cluster.replica.bytes_fetched")
		reg.GaugeFunc("cluster.replica.applied_epoch", r.applied.Load)
		reg.GaugeFunc("cluster.replica.lag", r.lag.Load)
	}
	return r, nil
}

// AppliedEpoch returns the last applied epoch, or false before the
// first snapshot lands.
func (r *Replica) AppliedEpoch() (uint64, bool) {
	e := r.applied.Load()
	if e < 0 {
		return 0, false
	}
	return uint64(e), true
}

// Lag returns the last observed replication lag in epochs (leader
// epoch minus applied epoch), or false while it is unknown (no
// successful poll yet).
func (r *Replica) Lag() (uint64, bool) {
	l := r.lag.Load()
	if l < 0 {
		return 0, false
	}
	return uint64(l), true
}

// Ready is the replica's readiness check for /api/v1/readyz: an error
// until the first snapshot is applied, and again when the observed
// replication lag exceeds MaxLagEpochs.
func (r *Replica) Ready() error {
	if _, ok := r.AppliedEpoch(); !ok {
		return fmt.Errorf("no snapshot applied yet")
	}
	if lag, ok := r.Lag(); ok && lag > r.cfg.MaxLagEpochs {
		return fmt.Errorf("replication lag %d epochs (max %d)", lag, r.cfg.MaxLagEpochs)
	}
	return nil
}

// Poll runs one replication cycle: ask the leader for anything newer
// than the applied epoch, and decode + publish it if there is. It
// returns the applied epoch and whether a new snapshot was applied.
func (r *Replica) Poll(ctx context.Context) (uint64, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	url := r.cfg.LeaderURL + "/api/v1/cluster/snapshot"
	applied, haveApplied := r.AppliedEpoch()
	if haveApplied {
		url += "?since=" + strconv.FormatUint(applied, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, false, r.pollErr(err)
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return 0, false, r.pollErr(err)
	}
	defer resp.Body.Close()
	leaderEpoch, haveLeader := headerEpoch(resp.Header)
	switch resp.StatusCode {
	case http.StatusNoContent:
		if haveLeader && haveApplied {
			r.lag.Store(int64(leaderEpoch) - int64(applied))
		}
		return applied, false, nil
	case http.StatusOK:
		// fall through to apply
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return 0, false, r.pollErr(fmt.Errorf("leader answered HTTP %d: %s", resp.StatusCode, body))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
	if err != nil {
		return 0, false, r.pollErr(err)
	}
	if r.bytesIn != nil {
		r.bytesIn.Add(int64(len(data)))
	}
	// Cheap watermark check first: if the wire handed us an epoch we
	// already applied (a stale cache, a leader restart), skip the full
	// decode entirely.
	epoch, err := snapshot.PeekEpoch(data)
	if err != nil {
		return 0, false, r.pollErr(fmt.Errorf("peek shipped snapshot: %w", err))
	}
	if haveApplied && epoch <= applied {
		return applied, false, nil
	}
	snap, err := snapshot.Decode(data)
	if err != nil {
		return 0, false, r.pollErr(fmt.Errorf("decode shipped snapshot: %w", err))
	}
	iface, err := snap.BrowseInterface()
	if err != nil {
		return 0, false, r.pollErr(err)
	}
	if r.cfg.Metrics != nil {
		iface.SetMetrics(r.cfg.Metrics)
	}
	r.publish(iface)
	r.applied.Store(int64(epoch))
	if haveLeader {
		r.lag.Store(int64(leaderEpoch) - int64(epoch))
	} else {
		r.lag.Store(0)
	}
	if r.appliedCount != nil {
		r.appliedCount.Inc()
	}
	if r.cfg.Logf != nil {
		r.cfg.Logf("replica: applied epoch %d (%d docs, %d bytes)", epoch, len(snap.Docs), len(data))
	}
	return epoch, true, nil
}

func (r *Replica) pollErr(err error) error {
	if r.pollErrors != nil {
		r.pollErrors.Inc()
	}
	if r.cfg.Logf != nil {
		r.cfg.Logf("replica: poll: %v", err)
	}
	return err
}

// Run polls until ctx is cancelled, sleeping interval between cycles.
// Errors are counted and logged but never fatal — replication is a
// retry loop by nature.
func (r *Replica) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		_, _, _ = r.Poll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// WaitSynced blocks until the replica has applied its first snapshot
// (polling at interval), the context ends, or timeout elapses.
func (r *Replica) WaitSynced(ctx context.Context, interval, timeout time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		if _, _, err := r.Poll(ctx); err == nil {
			if _, ok := r.AppliedEpoch(); ok {
				return nil
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if timeout > 0 && time.Now().After(deadline) {
			return fmt.Errorf("cluster: replica not synced after %v", timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
}

// headerEpoch parses the leader's epoch header.
func headerEpoch(h http.Header) (uint64, bool) {
	raw := h.Get(EpochHeader)
	if raw == "" {
		return 0, false
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
