package lang

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("Jacques Chirac visited the 2005 G8 summit.")
	got := Norms(toks)
	want := []string{"jacques", "chirac", "visited", "the", "2005", "g8", "summit"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "Hello, world!"
	toks := Tokenize(text)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens", len(toks))
	}
	for _, tok := range toks {
		if text[tok.Start:tok.End] != tok.Text {
			t.Fatalf("offset mismatch: %q vs %q", text[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeInternalPunctuation(t *testing.T) {
	cases := map[string]string{
		"don't":            "don't",
		"state-of-the-art": "state-of-the-art",
		"U.S.":             "u.s",
	}
	for in, want := range cases {
		toks := Tokenize(in)
		if len(toks) != 1 {
			t.Fatalf("Tokenize(%q) = %d tokens: %v", in, len(toks), Norms(toks))
		}
		if toks[0].Norm != want {
			t.Fatalf("Tokenize(%q) norm = %q, want %q", in, toks[0].Norm, want)
		}
	}
}

func TestTokenizePeriodDoesNotJoinWords(t *testing.T) {
	toks := Tokenize("the end.Of story")
	got := Norms(toks)
	want := []string{"the", "end", "of", "story"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSentenceStarts(t *testing.T) {
	toks := Tokenize("The war ended. Peace talks began! Who attended?")
	var starts []string
	for _, tok := range toks {
		if tok.SentenceStart {
			starts = append(starts, tok.Norm)
		}
	}
	want := []string{"the", "peace", "who"}
	if !reflect.DeepEqual(starts, want) {
		t.Fatalf("sentence starts = %v, want %v", starts, want)
	}
}

func TestSentencesGrouping(t *testing.T) {
	toks := Tokenize("One two. Three four five. Six.")
	sents := Sentences(toks)
	if len(sents) != 3 {
		t.Fatalf("got %d sentences", len(sents))
	}
	if len(sents[0]) != 2 || len(sents[1]) != 3 || len(sents[2]) != 1 {
		t.Fatalf("sentence lengths wrong: %d %d %d", len(sents[0]), len(sents[1]), len(sents[2]))
	}
}

func TestCapitalization(t *testing.T) {
	toks := Tokenize("NATO met Jacques in paris")
	if !toks[0].IsAllUpper() {
		t.Error("NATO should be all-upper")
	}
	if !toks[2].IsCapitalized() {
		t.Error("Jacques should be capitalized")
	}
	if toks[3].IsCapitalized() {
		t.Error("paris should not be capitalized")
	}
	if toks[2].IsAllUpper() {
		t.Error("Jacques is not all-upper")
	}
}

func TestNormalizePhrase(t *testing.T) {
	cases := map[string]string{
		"  Jacques   Chirac ": "jacques chirac",
		"\"Global Warming\"":  "global warming",
		"(Africa) debt!":      "africa debt",
		"President of France": "president of france",
	}
	for in, want := range cases {
		if got := NormalizePhrase(in); got != want {
			t.Errorf("NormalizePhrase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNGrams(t *testing.T) {
	words := []string{"a", "b", "c"}
	got := NGrams(words, 1, 2)
	want := []string{"a", "b", "c", "a b", "b c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if NGrams(words, 4, 5) != nil {
		t.Fatal("expected nil for n > len")
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "of", "and", "said"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"france", "war", "leader", "summit"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}

func TestTrimStopwords(t *testing.T) {
	got := TrimStopwords([]string{"the", "war", "in", "iraq"})
	want := []string{"war", "in", "iraq"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if TrimStopwords([]string{"the", "of"}) != nil {
		t.Fatal("all-stopword phrase should trim to nil")
	}
}

// Porter's published vocabulary examples, taken from the 1980 paper and
// the reference implementation's test cases.
func TestPorterKnownStems(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	for _, w := range []string{"at", "g8", "u.s", "2005", "a"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemPhrase(t *testing.T) {
	if got := StemPhrase("political leaders"); got != "polit leader" {
		t.Fatalf("got %q", got)
	}
	if got := StemPhrase(""); got != "" {
		t.Fatalf("got %q", got)
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem again usually yields the same stem for typical news
	// vocabulary; pin that for a sample (full idempotence is not a Porter
	// guarantee, so we check a curated list the system relies on).
	for _, w := range []string{"market", "leader", "war", "polit", "govern", "elect"} {
		if Stem(w) != Stem(Stem(w)) {
			t.Errorf("stem not stable for %q: %q then %q", w, Stem(w), Stem(Stem(w)))
		}
	}
}

func TestQuickTokenizeOffsetsConsistent(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			if strings.ToLower(tok.Text) != tok.Norm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStemNeverPanicsOrGrows(t *testing.T) {
	f := func(s string) bool {
		st := Stem(strings.ToLower(s))
		return len(st) <= len(s)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	toks := Tokenize("Médecins Sans Frontières opened a clinic in São Paulo. 北京 hosted talks.")
	got := Norms(toks)
	want := []string{"médecins", "sans", "frontières", "opened", "a", "clinic", "in", "são", "paulo", "北京", "hosted", "talks"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Offsets still slice the original text correctly.
	text := "café in Zürich"
	for _, tok := range Tokenize(text) {
		if text[tok.Start:tok.End] != tok.Text {
			t.Fatalf("offset mismatch for %q", tok.Text)
		}
	}
}
