package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// do issues an arbitrary-method request against the in-process server.
func do(t *testing.T, s *Server, method, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

// assertEnvelope decodes the unified error envelope and checks its code.
func assertEnvelope(t *testing.T, rec *httptest.ResponseRecorder, path, wantCode string) {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s: content-type %q, want application/json", path, ct)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Errorf("%s: body %q is not JSON: %v", path, rec.Body.String(), err)
		return
	}
	if er.Error.Code != wantCode || er.Error.Message == "" {
		t.Errorf("%s: envelope %+v, want code %q with a message", path, er.Error, wantCode)
	}
}

// TestUnknownAPIRoutes404: unknown paths under both API prefixes answer
// 404 with the unified envelope, never net/http's plain-text default.
func TestUnknownAPIRoutes404(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/api/v1/nope",
		"/api/v1/facets/extra",
		"/api/v1/",
		"/api/nope",
		"/api/",
		"/api/v2/facets", // unknown version: 404, not a v1 route
		"/api/facets",    // removed unversioned alias: 404 even for known v1 paths
	} {
		rec := do(t, s, http.MethodGet, path)
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, rec.Code)
			continue
		}
		assertEnvelope(t, rec, path, ErrCodeNotFound)
	}
}

// TestWrongMethod405: a known path hit with the wrong method answers 405
// with an Allow header and the unified envelope. Every registered route
// is probed with a method it does not serve.
func TestWrongMethod405(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/api/v1/facets", "GET"},
		{http.MethodDelete, "/api/v1/facets", "GET"},
		{http.MethodPost, "/api/v1/docs", "GET"},
		{http.MethodPut, "/api/v1/dates", "GET"},
		{http.MethodPost, "/api/v1/cross", "GET"},
		{http.MethodPost, "/api/v1/metrics", "GET"},
		{http.MethodPost, "/api/v1/healthz", "GET"},
		{http.MethodPost, "/api/v1/readyz", "GET"},
	}
	for _, tc := range cases {
		rec := do(t, s, tc.method, tc.path)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, rec.Code)
			continue
		}
		if allow := rec.Header().Get("Allow"); allow != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
		assertEnvelope(t, rec, tc.path, ErrCodeMethodNotAllowed)
	}
}

// TestIngestRouteMethods: the POST-only and GET-only ingest routes
// answer 405 (with the right Allow set) once ingestion is enabled, and
// unknown ingest subpaths answer 404.
func TestIngestRouteMethods(t *testing.T) {
	ing := liveIngester(t, 10, nil)
	if err := ing.Bootstrap(liveDocs(4, 0), false); err != nil {
		t.Fatal(err)
	}
	s := New(ing.Current(), "route test")
	s.EnableIngest(ing)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/api/v1/ingest", "POST"},
		{http.MethodDelete, "/api/v1/ingest", "POST"},
		{http.MethodPost, "/api/v1/ingest/stats", "GET"},
		{http.MethodPost, "/api/v1/ingest/deadletter", "GET"},
		{http.MethodGet, "/api/v1/ingest/retry", "POST"},
	}
	for _, tc := range cases {
		rec := do(t, s, tc.method, tc.path)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, rec.Code)
			continue
		}
		if allow := rec.Header().Get("Allow"); allow != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
		assertEnvelope(t, rec, tc.path, ErrCodeMethodNotAllowed)
	}
	rec := do(t, s, http.MethodGet, "/api/v1/ingest/nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /api/v1/ingest/nope: status %d, want 404", rec.Code)
	}
	assertEnvelope(t, rec, "/api/v1/ingest/nope", ErrCodeNotFound)
}

// TestIndexMethodGuard: the HTML front end only serves GET/HEAD.
func TestIndexMethodGuard(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodPost, "/")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /: status %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
		t.Fatalf("POST /: Allow %q, want GET, HEAD", allow)
	}
	if rec := do(t, s, http.MethodGet, "/"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "<html") {
		t.Fatalf("GET / should still render the front end (status %d)", rec.Code)
	}
}
